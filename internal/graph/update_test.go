package graph

import (
	"errors"
	"testing"
)

func TestCapacityUpdateValidate(t *testing.T) {
	g := PaperFigure5()
	cases := []struct {
		name string
		u    CapacityUpdate
	}{
		{"empty", CapacityUpdate{}},
		{"length mismatch", CapacityUpdate{Edges: []int{0, 1}, Capacities: []float64{1}}},
		{"out of range", CapacityUpdate{Edges: []int{99}, Capacities: []float64{1}}},
		{"negative index", CapacityUpdate{Edges: []int{-1}, Capacities: []float64{1}}},
		{"duplicate edge", CapacityUpdate{Edges: []int{2, 2}, Capacities: []float64{1, 2}}},
		{"negative capacity", CapacityUpdate{Edges: []int{0}, Capacities: []float64{-1}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.u.Validate(g); err == nil {
				t.Fatalf("update %+v accepted", tc.u)
			}
			before := g.Edges()
			if _, err := g.Clone().ApplyCapacityUpdate(tc.u); err == nil {
				t.Fatalf("apply of %+v accepted", tc.u)
			}
			for i, e := range g.Edges() {
				if e != before[i] {
					t.Fatalf("failed apply mutated edge %d", i)
				}
			}
		})
	}
	if err := (CapacityUpdate{Edges: []int{0}, Capacities: []float64{0}}).Validate(nil); err == nil {
		t.Fatal("nil graph accepted")
	}
}

func TestApplyCapacityUpdate(t *testing.T) {
	g := PaperFigure5()
	rec, err := g.ApplyCapacityUpdate(CapacityUpdate{
		Edges:      []int{0, 3, 4},
		Capacities: []float64{5, 1, 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := []float64{rec.Previous[0], rec.Previous[1], rec.Previous[2]}; got[0] != 3 || got[1] != 1 || got[2] != 2 {
		t.Errorf("previous capacities %v, want [3 1 2]", got)
	}
	if rec.PositivityChanged {
		t.Errorf("no edge crossed zero, yet PositivityChanged is set")
	}
	if rec.Changed != 2 { // edge 3 kept its value
		t.Errorf("Changed = %d, want 2", rec.Changed)
	}
	if g.Edge(0).Capacity != 5 || g.Edge(3).Capacity != 1 || g.Edge(4).Capacity != 4 {
		t.Errorf("capacities not applied: %+v", g.Edges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}

	// Zeroing an edge must flip the positivity flag; so must reviving it.
	rec, err = g.ApplyCapacityUpdate(CapacityUpdate{Edges: []int{1}, Capacities: []float64{0}})
	if err != nil {
		t.Fatal(err)
	}
	if !rec.PositivityChanged {
		t.Error("zeroing edge 1 did not set PositivityChanged")
	}
	rec, err = g.ApplyCapacityUpdate(CapacityUpdate{Edges: []int{1}, Capacities: []float64{7}})
	if err != nil {
		t.Fatal(err)
	}
	if !rec.PositivityChanged {
		t.Error("reviving edge 1 did not set PositivityChanged")
	}
}

func TestApplyCapacityUpdateNegativeIsTyped(t *testing.T) {
	g := PaperFigure5()
	_, err := g.ApplyCapacityUpdate(CapacityUpdate{Edges: []int{0}, Capacities: []float64{-2}})
	if !errors.Is(err, ErrNegativeCapacity) {
		t.Fatalf("want ErrNegativeCapacity, got %v", err)
	}
}
