package graph

import (
	"fmt"
	"math"
)

// Flow is an assignment of flow values to the edges of a Graph, indexed by
// edge index.  It is the common output type of the classical algorithms in
// internal/maxflow and of the analog substrate in internal/core, so the two
// can be compared edge-by-edge.
type Flow struct {
	// Edge[i] is the flow f(e_i) on edge i.
	Edge []float64
	// Value is the net flow out of the source, |f|.
	Value float64
}

// NewFlow returns an all-zero flow for g.
func NewFlow(g *Graph) *Flow {
	return &Flow{Edge: make([]float64, g.NumEdges())}
}

// Clone returns a deep copy of the flow.
func (f *Flow) Clone() *Flow {
	c := &Flow{Edge: make([]float64, len(f.Edge)), Value: f.Value}
	copy(c.Edge, f.Edge)
	return c
}

// RecomputeValue recomputes Value as the net flow out of the source of g and
// stores and returns it.  It does not validate feasibility.
func (f *Flow) RecomputeValue(g *Graph) float64 {
	var v float64
	for _, idx := range g.OutEdges(g.Source()) {
		v += f.Edge[idx]
	}
	for _, idx := range g.InEdges(g.Source()) {
		v -= f.Edge[idx]
	}
	f.Value = v
	return v
}

// FeasibilityReport describes how far a flow is from being feasible for a
// graph: the largest capacity violation, the largest negative flow, and the
// largest conservation violation over the interior vertices.
type FeasibilityReport struct {
	MaxCapacityViolation     float64
	MaxNegativeFlow          float64
	MaxConservationViolation float64
	// WorstVertex is the interior vertex with the largest conservation
	// violation, or -1 if there is none.
	WorstVertex int
}

// Feasible reports whether all violations are within tol.
func (r FeasibilityReport) Feasible(tol float64) bool {
	return r.MaxCapacityViolation <= tol &&
		r.MaxNegativeFlow <= tol &&
		r.MaxConservationViolation <= tol
}

func (r FeasibilityReport) String() string {
	return fmt.Sprintf("feasibility{cap=%.3g neg=%.3g cons=%.3g worst=%d}",
		r.MaxCapacityViolation, r.MaxNegativeFlow, r.MaxConservationViolation, r.WorstVertex)
}

// CheckFeasibility measures constraint violations of f on g.  Analog solutions
// are only approximately feasible (quantization, finite op-amp gain), so the
// report is quantitative rather than a boolean.
func (f *Flow) CheckFeasibility(g *Graph) FeasibilityReport {
	rep := FeasibilityReport{WorstVertex: -1}
	for i, e := range g.Edges() {
		fe := f.Edge[i]
		if fe < 0 && -fe > rep.MaxNegativeFlow {
			rep.MaxNegativeFlow = -fe
		}
		if over := fe - e.Capacity; over > rep.MaxCapacityViolation {
			rep.MaxCapacityViolation = over
		}
	}
	for v := 0; v < g.NumVertices(); v++ {
		if v == g.Source() || v == g.Sink() {
			continue
		}
		var net float64
		for _, idx := range g.InEdges(v) {
			net += f.Edge[idx]
		}
		for _, idx := range g.OutEdges(v) {
			net -= f.Edge[idx]
		}
		if math.Abs(net) > rep.MaxConservationViolation {
			rep.MaxConservationViolation = math.Abs(net)
			rep.WorstVertex = v
		}
	}
	return rep
}

// RelativeError returns |f.Value - reference| / reference, the metric the
// paper plots on the right axis of Figure 10.  If reference is zero the
// absolute difference is returned.
func (f *Flow) RelativeError(reference float64) float64 {
	return RelativeError(f.Value, reference)
}

// RelativeError is the scalar form of Flow.RelativeError, shared by every
// layer that reports solution quality against a reference value.
func RelativeError(got, reference float64) float64 {
	if reference == 0 {
		return math.Abs(got)
	}
	return math.Abs(got-reference) / math.Abs(reference)
}

// Cut is an s-t cut: a partition of the vertices into a source side and a sink
// side, together with the indices of the edges crossing from the source side
// to the sink side and their total capacity.
type Cut struct {
	// SourceSide[v] is true if vertex v is on the source side of the cut.
	SourceSide []bool
	// Edges are indices of edges from the source side to the sink side.
	Edges []int
	// Capacity is the total capacity of the crossing edges.
	Capacity float64
}

// CutFromPartition builds a Cut from a source-side indicator vector.
func CutFromPartition(g *Graph, sourceSide []bool) (*Cut, error) {
	if len(sourceSide) != g.NumVertices() {
		return nil, fmt.Errorf("graph: partition has %d entries, graph has %d vertices", len(sourceSide), g.NumVertices())
	}
	if !sourceSide[g.Source()] {
		return nil, fmt.Errorf("graph: source not on source side of cut")
	}
	if sourceSide[g.Sink()] {
		return nil, fmt.Errorf("graph: sink on source side of cut")
	}
	c := &Cut{SourceSide: append([]bool(nil), sourceSide...)}
	for i, e := range g.Edges() {
		if sourceSide[e.From] && !sourceSide[e.To] {
			c.Edges = append(c.Edges, i)
			c.Capacity += e.Capacity
		}
	}
	return c, nil
}
