package graph

// This file provides the two worked examples from the paper as ready-made
// graphs.  They are used throughout the test suites, the examples, and the
// Figure 5 / Figure 8 / Figure 15 experiment harnesses.

// PaperFigure5 returns the max-flow instance of Figure 5a of the paper:
//
//	vertices: s, n1, n2, n3, t   (indices 0..4)
//	edges:    x1 = (s,  n1) cap 3
//	          x2 = (n1, n2) cap 2
//	          x3 = (n1, n3) cap 1
//	          x4 = (n2, t)  cap 1
//	          x5 = (n3, t)  cap 2
//
// Edge indices 0..4 correspond to the paper's x1..x5.  The exact max-flow
// value of the instance is 2 (the paper's Figure 8 "exact solution |f|=2"):
// each of the two s-t paths is limited to 1 by x4 and x3 respectively, so x1
// carries 2 in the optimum even though its own capacity is 3, matching the
// waveform of Figure 5c where V(x1) settles at 2 V and V(x3), V(x4) saturate
// at 1 V.
func PaperFigure5() *Graph {
	g := MustNew(5, 0, 4)
	g.MustAddEdge(0, 1, 3) // x1: s  -> n1
	g.MustAddEdge(1, 2, 2) // x2: n1 -> n2
	g.MustAddEdge(1, 3, 1) // x3: n1 -> n3
	g.MustAddEdge(2, 4, 1) // x4: n2 -> t
	g.MustAddEdge(3, 4, 2) // x5: n3 -> t
	return g
}

// PaperFigure5MaxFlow is the optimal flow value of the Figure 5a instance.
const PaperFigure5MaxFlow = 2.0

// PaperFigure15 returns the max-flow instance of Figure 15a / Equation (8) of
// the paper, used for the quasi-static trajectory study:
//
//	maximize x1
//	x1 = x2 + x3, 0 <= x1 <= 4, 0 <= x2 <= 1, 0 <= x3 <= 4
//
// The two "infinite capacity" edges of the figure are modelled with a
// capacity large enough never to bind (the paper uses them only so that the
// flow is limited by x1, x2 and x3), but small enough that the Table 1
// voltage quantizer still resolves the binding capacities.  Edge indices:
// 0=x1 (s->n1), 1=x2 (n1->n2), 2=x3 (n1->n3), 3=(n2->t, unconstrained),
// 4=(n3->t, unconstrained).
func PaperFigure15() *Graph {
	const unbounded = 8
	g := MustNew(5, 0, 4)
	g.MustAddEdge(0, 1, 4)         // x1
	g.MustAddEdge(1, 2, 1)         // x2
	g.MustAddEdge(1, 3, 4)         // x3
	g.MustAddEdge(2, 4, unbounded) // n2 -> t, effectively uncapacitated
	g.MustAddEdge(3, 4, unbounded) // n3 -> t, effectively uncapacitated
	return g
}

// PaperFigure15MaxFlow is the optimal flow value of the Figure 15a instance:
// x1 = 4 (x2 = 1, x3 = 3).
const PaperFigure15MaxFlow = 4.0
