package graph

import "sync"

// Pooled scratch for the per-solve analysis passes (prune, depth estimates).
// These run once per quantized solve in the hot path of the sweeps, and at
// 10^5–10^6 vertices their transient slices dominated the allocation profile.
// Only buffers whose contents die with the call are pooled; retained artifacts
// (the pruned graph, edge/vertex maps) are always freshly allocated.

// growInts returns s resized to n with unspecified contents, reusing the
// backing array when it is large enough; callers must overwrite every element.
func growInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

// growIntsCleared returns s resized to n with every element zeroed, reusing
// the backing array when it is large enough.
func growIntsCleared(s []int, n int) []int {
	s = growInts(s, n)
	for i := range s {
		s[i] = 0
	}
	return s
}

// growBoolsCleared is growIntsCleared for bool slices.
func growBoolsCleared(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = false
	}
	return s
}

// pruneScratch holds every transient buffer of one pruneToSTCore pass.
type pruneScratch struct {
	reachFromS, reachToT, keepVertex []bool
	newIndex, stack, outDeg, inDeg   []int
}

var pruneScratchPool = sync.Pool{New: func() any { return new(pruneScratch) }}

// bfsScratch holds the distance/queue buffers of the depth estimators.
type bfsScratch struct {
	dist  []int
	queue []int
}

var bfsScratchPool = sync.Pool{New: func() any { return new(bfsScratch) }}
