package graph

import "fmt"

// PruneResult is the outcome of PruneToSTCore: the reduced graph plus the
// mappings needed to translate solutions back to the original instance.
type PruneResult struct {
	// Graph is the pruned graph.
	Graph *Graph
	// EdgeMap[i] is the original edge index of pruned edge i.
	EdgeMap []int
	// VertexMap[v] is the original vertex index of pruned vertex v.
	VertexMap []int
	// RemovedEdges counts edges dropped by the pruning.
	RemovedEdges int
	// RemovedVertices counts vertices dropped by the pruning.
	RemovedVertices int
}

// PruneToSTCore removes the parts of the graph that cannot carry any s-t
// flow: vertices that are unreachable from the source or cannot reach the
// sink, edges incident to such vertices, edges directed into the source and
// edges directed out of the sink.  None of these can carry positive flow in
// at least one maximum flow, so the max-flow value is preserved exactly.
//
// The analog substrate benefits twice from the pass: the pruned instance
// needs fewer crossbar cells (Section 3), and the removed structures are
// precisely the ones whose conservation widgets add no information while
// still loading the circuit.
func PruneToSTCore(g *Graph) *PruneResult {
	return pruneToSTCore(g, nil)
}

// PruneToSTCoreWithCapacities prunes g as if edge i had capacity caps[i],
// and the pruned graph carries those capacities.  It is equivalent to
// g.WithCapacities(caps) followed by PruneToSTCore, without materialising
// the intermediate graph — the quantization pipeline of internal/core runs
// it once per solve.
func PruneToSTCoreWithCapacities(g *Graph, caps []float64) (*PruneResult, error) {
	if len(caps) != g.NumEdges() {
		return nil, fmt.Errorf("graph: capacity slice has %d entries, graph has %d edges", len(caps), g.NumEdges())
	}
	for _, c := range caps {
		if c < 0 {
			return nil, ErrNegativeCapacity
		}
	}
	return pruneToSTCore(g, caps), nil
}

func pruneToSTCore(g *Graph, caps []float64) *PruneResult {
	n := g.NumVertices()
	capOf := func(i int) float64 {
		if caps == nil {
			return g.Edge(i).Capacity
		}
		return caps[i]
	}
	// usable reports whether an edge may carry s-t flow structurally: it must
	// have positive capacity and must not re-enter the source or leave the
	// sink.  Reachability is computed over usable edges only so that the
	// result is a fixpoint (pruning a pruned graph changes nothing).
	//
	// Parked edges do NOT extend reachability: they carry no flow until
	// reclaimed, and a vertex alive only through a parked edge would be a
	// dead branch the substrate cannot settle (its widgets see zero drive
	// against ideal negative resistances).  A parked edge survives the prune
	// only when both endpoints stay alive through positive-capacity paths —
	// see keepEdge below — which is exactly the case where park/unpark is a
	// value-level update with an identical edge map before and after.
	usable := func(i int, e Edge) bool {
		return capOf(i) > 0 && e.To != g.Source() && e.From != g.Sink()
	}
	sc := pruneScratchPool.Get().(*pruneScratch)
	defer pruneScratchPool.Put(sc)
	reachFromS := growBoolsCleared(sc.reachFromS, n)
	sc.reachFromS = reachFromS
	reachFromS[g.Source()] = true
	stack := append(sc.stack[:0], g.Source())
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, idx := range g.OutEdges(v) {
			e := g.Edge(idx)
			if usable(idx, e) && !reachFromS[e.To] {
				reachFromS[e.To] = true
				stack = append(stack, e.To)
			}
		}
	}
	// Reverse reachability to the sink.
	reachToT := growBoolsCleared(sc.reachToT, n)
	sc.reachToT = reachToT
	reachToT[g.Sink()] = true
	stack = append(stack[:0], g.Sink())
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, idx := range g.InEdges(v) {
			e := g.Edge(idx)
			if usable(idx, e) && !reachToT[e.From] {
				reachToT[e.From] = true
				stack = append(stack, e.From)
			}
		}
	}

	sc.stack = stack[:0] // keep any grown capacity for the next pass
	keepVertex := growBoolsCleared(sc.keepVertex, n)
	sc.keepVertex = keepVertex
	for v := 0; v < n; v++ {
		keepVertex[v] = reachFromS[v] && reachToT[v]
	}
	// The terminals always survive so the pruned instance remains a valid
	// flow network even when no s-t path exists.
	keepVertex[g.Source()] = true
	keepVertex[g.Sink()] = true

	res := &PruneResult{}
	newIndex := growInts(sc.newIndex, n) // fully overwritten by the next loop
	sc.newIndex = newIndex
	for v := 0; v < n; v++ {
		newIndex[v] = -1
	}
	for v := 0; v < n; v++ {
		if keepVertex[v] {
			newIndex[v] = len(res.VertexMap)
			res.VertexMap = append(res.VertexMap, v)
		} else {
			res.RemovedVertices++
		}
	}
	pruned := MustNew(len(res.VertexMap), newIndex[g.Source()], newIndex[g.Sink()])
	// Prepass: count surviving edges and their per-vertex degrees so the
	// rebuilt graph is allocated exactly once instead of growing edge by edge.
	// A parked edge whose endpoints are both alive survives as a structural
	// slot (capacity 0, parked flag carried into the pruned graph), so a
	// later unpark re-stamps values without changing the edge map.
	keepEdge := func(i int, e Edge) bool {
		return keepVertex[e.From] && keepVertex[e.To] &&
			e.To != g.Source() && e.From != g.Sink() && (capOf(i) > 0 || g.ParkedEdge(i))
	}
	outDeg := growIntsCleared(sc.outDeg, len(res.VertexMap))
	sc.outDeg = outDeg
	inDeg := growIntsCleared(sc.inDeg, len(res.VertexMap))
	sc.inDeg = inDeg
	kept := 0
	for i, ne := 0, g.NumEdges(); i < ne; i++ {
		if e := g.Edge(i); keepEdge(i, e) {
			outDeg[newIndex[e.From]]++
			inDeg[newIndex[e.To]]++
			kept++
		}
	}
	pruned.reserve(kept, outDeg, inDeg)
	res.EdgeMap = make([]int, 0, kept)
	for i, ne := 0, g.NumEdges(); i < ne; i++ {
		e := g.Edge(i)
		if !keepEdge(i, e) {
			res.RemovedEdges++
			continue
		}
		idx := pruned.MustAddEdge(newIndex[e.From], newIndex[e.To], capOf(i))
		if g.ParkedEdge(i) {
			pruned.setParked(idx, true)
		}
		res.EdgeMap = append(res.EdgeMap, i)
	}
	res.Graph = pruned
	return res
}

// SamePruneEdges reports whether two prune results keep exactly the same
// original edges (nil matches nil, i.e. pruning disabled on both sides).  It
// is the structural-compatibility gate of the incremental-update pipeline:
// when it holds, solver state built on one prune's graph — residual
// networks, circuits, engine factorisations — remains index-compatible with
// the other's.
func SamePruneEdges(a, b *PruneResult) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	if len(a.EdgeMap) != len(b.EdgeMap) {
		return false
	}
	for i := range a.EdgeMap {
		if a.EdgeMap[i] != b.EdgeMap[i] {
			return false
		}
	}
	return true
}

// PruneExtends reports whether prune result b is a structural extension of a:
// the same surviving vertex set, a's kept edges as an identical prefix of b's,
// and any extra edges b keeps appended at the end (nil matches nil, i.e.
// pruning disabled on both sides).  It is the structural-extension gate of the
// incremental-update pipeline: warm state built on a's graph — residual
// networks, prepared instances — stays index-compatible as a prefix of b's, so
// appended edges can be spliced in without invalidating existing indices.
func PruneExtends(a, b *PruneResult) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	if len(a.EdgeMap) > len(b.EdgeMap) || len(a.VertexMap) != len(b.VertexMap) {
		return false
	}
	for i := range a.EdgeMap {
		if a.EdgeMap[i] != b.EdgeMap[i] {
			return false
		}
	}
	for i := range a.VertexMap {
		if a.VertexMap[i] != b.VertexMap[i] {
			return false
		}
	}
	return true
}

// ExpandFlow maps a flow on the pruned graph back onto the original graph's
// edge indexing (pruned-away edges carry zero flow).
func (r *PruneResult) ExpandFlow(original *Graph, pruned *Flow) *Flow {
	f := NewFlow(original)
	for i, orig := range r.EdgeMap {
		f.Edge[orig] = pruned.Edge[i]
	}
	f.RecomputeValue(original)
	return f
}

// STDepth returns the breadth-first distance (in edges) from the source to
// the sink, or -1 when the sink is unreachable.  The convergence-time model
// of the analog substrate uses it as the number of widget "hops" a settling
// wave must traverse.
func STDepth(g *Graph) int {
	sc := bfsScratchPool.Get().(*bfsScratch)
	defer bfsScratchPool.Put(sc)
	dist := growInts(sc.dist, g.NumVertices())
	sc.dist = dist
	for i := range dist {
		dist[i] = -1
	}
	dist[g.Source()] = 0
	queue := append(sc.queue[:0], g.Source())
	for qh := 0; qh < len(queue); qh++ {
		v := queue[qh]
		if v == g.Sink() {
			sc.queue = queue[:0]
			return dist[v]
		}
		for _, idx := range g.OutEdges(v) {
			e := g.Edge(idx)
			if e.Capacity > 0 && dist[e.To] < 0 {
				dist[e.To] = dist[v] + 1
				queue = append(queue, e.To)
			}
		}
	}
	sc.queue = queue[:0]
	return dist[g.Sink()]
}

// LongestAugmentingDepth returns an upper estimate of the longest simple s-t
// path length obtained from a DAG relaxation over BFS levels; the Vflow
// auto-scaling of the analog solver uses it to pick a drive voltage large
// enough to saturate the deepest chain of conservation widgets.
func LongestAugmentingDepth(g *Graph) int {
	// Longest path is NP-hard in general; a cheap, adequate proxy is the
	// number of BFS levels that contain at least one vertex on an s-t path.
	pr := PruneToSTCore(g)
	return LongestAugmentingDepthPruned(pr.Graph)
}

// LongestAugmentingDepthPruned is LongestAugmentingDepth for a graph that is
// already an s-t core (a fixpoint of PruneToSTCore, which preserves vertex
// and edge order, so the BFS levels are identical); it skips the redundant
// re-pruning pass, which matters in the per-instance hot path of the sweeps.
func LongestAugmentingDepthPruned(p *Graph) int {
	sc := bfsScratchPool.Get().(*bfsScratch)
	defer bfsScratchPool.Put(sc)
	dist := growInts(sc.dist, p.NumVertices())
	sc.dist = dist
	for i := range dist {
		dist[i] = -1
	}
	dist[p.Source()] = 0
	queue := append(sc.queue[:0], p.Source())
	maxLevel := 0
	for qh := 0; qh < len(queue); qh++ {
		v := queue[qh]
		for _, idx := range p.OutEdges(v) {
			e := p.Edge(idx)
			if dist[e.To] < 0 {
				dist[e.To] = dist[v] + 1
				if dist[e.To] > maxLevel {
					maxLevel = dist[e.To]
				}
				queue = append(queue, e.To)
			}
		}
	}
	sc.queue = queue[:0]
	if maxLevel == 0 {
		return 1
	}
	return maxLevel
}
