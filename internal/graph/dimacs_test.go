package graph

import (
	"bytes"
	"strings"
	"testing"
)

func mustRead(t *testing.T, text string) *Graph {
	t.Helper()
	g, err := ReadDIMACS(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestReadDIMACSValid(t *testing.T) {
	g := mustRead(t, "c comment\np max 4 3\nn 1 s\nn 4 t\na 1 2 2\na 2 3 1.5\na 3 4 1\n")
	if g.NumVertices() != 4 || g.NumEdges() != 3 || g.Source() != 0 || g.Sink() != 3 {
		t.Fatalf("parsed wrong shape: %v", g)
	}
	if c := g.Edge(1).Capacity; c != 1.5 {
		t.Errorf("edge 1 capacity %g, want 1.5", c)
	}
}

// TestReadDIMACSErrorPaths walks the malformed-input space: truncated files,
// arc-count mismatches, duplicate terminal designators, and field-level
// garbage.  Each case must fail with a descriptive error, never a panic or a
// silently wrong graph.
func TestReadDIMACSErrorPaths(t *testing.T) {
	cases := []struct {
		name    string
		text    string
		wantSub string
	}{
		{"empty file", "", "missing problem line"},
		{"truncated: no terminals", "p max 4 1\na 1 2 3\n", "missing source or sink"},
		{"truncated: missing sink", "p max 4 1\nn 1 s\na 1 2 3\n", "missing source or sink"},
		{"truncated: declared arcs missing", "p max 4 3\nn 1 s\nn 4 t\na 1 2 2\n", "declares 3 arcs, found 1"},
		{"too many arcs", "p max 3 1\nn 1 s\nn 3 t\na 1 2 1\na 2 3 1\n", "declares 1 arcs, found 2"},
		{"duplicate source", "p max 4 3\nn 1 s\nn 2 s\nn 4 t\na 1 2 2\na 2 3 1\na 3 4 1\n", "duplicate source"},
		{"duplicate sink", "p max 4 3\nn 1 s\nn 4 t\nn 3 t\na 1 2 2\na 2 3 1\na 3 4 1\n", "duplicate sink"},
		{"malformed problem line", "p max 4\n", "malformed problem line"},
		{"non-max problem", "p asn 4 3\n", "malformed problem line"},
		{"bad vertex count", "p max 1 0\n", "bad problem sizes"},
		{"negative arc count", "p max 4 -1\n", "bad problem sizes"},
		{"bad node id", "p max 4 0\nn zero s\n", "bad vertex id"},
		{"unknown designator", "p max 4 0\nn 1 x\n", "unknown node designator"},
		{"malformed arc", "p max 4 1\nn 1 s\nn 4 t\na 1 2\n", "malformed arc"},
		{"bad arc fields", "p max 4 1\nn 1 s\nn 4 t\na 1 two 3\n", "bad arc fields"},
		{"arc out of range", "p max 4 1\nn 1 s\nn 4 t\na 1 9 3\n", "out of range"},
		{"negative capacity", "p max 4 1\nn 1 s\nn 4 t\na 1 2 -3\n", "negative"},
		{"self loop arc", "p max 4 1\nn 1 s\nn 4 t\na 2 2 3\n", "self loop"},
		{"source equals sink", "p max 3 1\nn 1 s\nn 1 t\na 1 2 5\n", "source and sink must differ"},
		{"unknown record", "p max 4 0\nn 1 s\nn 4 t\nz whatever\n", "unknown record type"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadDIMACS(strings.NewReader(tc.text))
			if err == nil {
				t.Fatalf("accepted malformed input %q", tc.text)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

// TestDIMACSRoundTripExtended writes instances out and reads them back,
// requiring an identical graph (shape, terminals, edge order, capacities);
// it extends the basic round trip in graph_test.go with parallel edges and
// fractional capacities.
func TestDIMACSRoundTripExtended(t *testing.T) {
	graphs := map[string]*Graph{
		"figure5":  PaperFigure5(),
		"figure15": PaperFigure15(),
	}
	// An instance with parallel edges and a fractional capacity.
	multi := MustNew(3, 0, 2)
	multi.MustAddEdge(0, 1, 2.25)
	multi.MustAddEdge(0, 1, 1)
	multi.MustAddEdge(1, 2, 3)
	graphs["parallel-edges"] = multi

	for name, g := range graphs {
		t.Run(name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := WriteDIMACS(&buf, g); err != nil {
				t.Fatal(err)
			}
			back, err := ReadDIMACS(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("re-reading written instance: %v\n%s", err, buf.String())
			}
			if back.NumVertices() != g.NumVertices() || back.NumEdges() != g.NumEdges() ||
				back.Source() != g.Source() || back.Sink() != g.Sink() {
				t.Fatalf("round trip changed shape: %v -> %v", g, back)
			}
			for i := 0; i < g.NumEdges(); i++ {
				a, b := g.Edge(i), back.Edge(i)
				if a != b {
					t.Errorf("edge %d changed: %+v -> %+v", i, a, b)
				}
			}
		})
	}
}
