package graph

import (
	"fmt"
	"math"
	"math/rand"
)

// GridSpec describes a Width×Height pixel-grid flow network, the vision-style
// workload shape (Boykov–Kolmogorov image segmentation) the paper motivates
// its substrate with.  Vertex 0 is the virtual source, vertex 1 the virtual
// sink, and pixel (x, y) is vertex 2 + y*Width + x (see PixelVertex).
type GridSpec struct {
	Width, Height int
	// Eight selects the 8-neighbourhood (diagonal links included); the
	// default is the 4-neighbourhood.
	Eight bool
	// Capacity returns the capacity of the directed link from pixel (x1, y1)
	// to its neighbour (x2, y2).  It must be pure and non-negative: Grid
	// evaluates it once while sizing the graph and once while filling it.
	// Nil means unit capacities.
	Capacity func(x1, y1, x2, y2 int) float64
	// Terminal returns the source-link and sink-link capacities of pixel
	// (x, y); a non-positive value omits that link.  Like Capacity it must
	// be pure, as it is evaluated during both the sizing and filling passes.
	// Nil attaches the top-left pixel to the source and the bottom-right
	// pixel to the sink with capacity Width*Height each.
	Terminal func(x, y int) (src, sink float64)
}

// PixelVertex returns the vertex index of pixel (x, y) under the spec's
// layout.
func (s GridSpec) PixelVertex(x, y int) int { return 2 + y*s.Width + x }

// Vertices returns the total vertex count of the generated graph, terminals
// included.
func (s GridSpec) Vertices() int { return 2 + s.Width*s.Height }

// defaultTerminal implements the nil-Terminal corner seeding.
func (s GridSpec) defaultTerminal(x, y int) (src, sink float64) {
	strength := float64(s.Width * s.Height)
	if x == 0 && y == 0 {
		src = strength
	}
	if x == s.Width-1 && y == s.Height-1 {
		sink = strength
	}
	return src, sink
}

// Grid generates the flow network described by spec.  The generator is
// allocation-light: it sizes the edge list and every adjacency list exactly
// (single shared backing arrays, the Clone layout) before inserting a single
// edge, so a 10^6-vertex grid builds without any append growth.  Neighbour
// links are emitted in row-major pixel order — right, down, then the two
// down diagonals under Eight, each as a forward/backward pair — followed by
// the terminal links in row-major order, matching the layout of the original
// examples/imageseg construction.
func Grid(spec GridSpec) (*Graph, error) {
	w, h := spec.Width, spec.Height
	if w < 1 || h < 1 {
		return nil, fmt.Errorf("graph: grid dimensions %dx%d must be positive", w, h)
	}
	capFn := spec.Capacity
	if capFn == nil {
		capFn = func(int, int, int, int) float64 { return 1 }
	}
	termFn := spec.Terminal
	if termFn == nil {
		termFn = spec.defaultTerminal
	}
	g, err := New(spec.Vertices(), 0, 1)
	if err != nil {
		return nil, err
	}

	// Sizing pass: exact edge count and degree profile.
	outDeg := make([]int, g.n)
	inDeg := make([]int, g.n)
	edges := 0
	countLink := func(u, v int) {
		outDeg[u]++
		inDeg[v]++
		edges++
	}
	forEachNeighbour(spec, func(x1, y1, x2, y2 int) {
		u, v := spec.PixelVertex(x1, y1), spec.PixelVertex(x2, y2)
		countLink(u, v)
		countLink(v, u)
	})
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			src, sink := termFn(x, y)
			if src > 0 {
				countLink(0, spec.PixelVertex(x, y))
			}
			if sink > 0 {
				countLink(spec.PixelVertex(x, y), 1)
			}
		}
	}
	g.reserve(edges, outDeg, inDeg)

	// Filling pass, in the documented order.
	var addErr error
	forEachNeighbour(spec, func(x1, y1, x2, y2 int) {
		c := capFn(x1, y1, x2, y2)
		u, v := spec.PixelVertex(x1, y1), spec.PixelVertex(x2, y2)
		if _, err := g.AddEdge(u, v, c); err != nil && addErr == nil {
			addErr = err
		}
		if _, err := g.AddEdge(v, u, c); err != nil && addErr == nil {
			addErr = err
		}
	})
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			src, sink := termFn(x, y)
			if src > 0 {
				g.MustAddEdge(0, spec.PixelVertex(x, y), src)
			}
			if sink > 0 {
				g.MustAddEdge(spec.PixelVertex(x, y), 1, sink)
			}
		}
	}
	if addErr != nil {
		return nil, addErr
	}
	return g, nil
}

// MustGrid is Grid but panics on error, for tests and generators with known
// good specs.
func MustGrid(spec GridSpec) *Graph {
	g, err := Grid(spec)
	if err != nil {
		panic(err)
	}
	return g
}

// forEachNeighbour visits every unordered neighbour pair of the grid once,
// in row-major order: right, down, and under Eight the down-right and
// down-left diagonals.
func forEachNeighbour(spec GridSpec, visit func(x1, y1, x2, y2 int)) {
	w, h := spec.Width, spec.Height
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				visit(x, y, x+1, y)
			}
			if y+1 < h {
				visit(x, y, x, y+1)
			}
			if spec.Eight && y+1 < h {
				if x+1 < w {
					visit(x, y, x+1, y+1)
				}
				if x > 0 {
					visit(x, y, x-1, y+1)
				}
			}
		}
	}
}

// SegmentationGrid builds the synthetic image-segmentation instance promoted
// from examples/imageseg to arbitrary sizes: a bright disc on a shaded dark
// background, neighbour capacities 1 + 9·exp(−10·Δ²) that fall off across
// intensity edges, and terminal links of strength 20 attached by brightness
// (bright pixels to the source, dark pixels to the sink).  A non-zero seed
// adds deterministic per-pixel noise so repeated workloads differ; seed 0
// reproduces the exact original image (at 12×12, the original example).
func SegmentationGrid(width, height int, eight bool, seed int64) (*Graph, error) {
	if width < 1 || height < 1 {
		return nil, fmt.Errorf("graph: segmentation grid %dx%d must be positive", width, height)
	}
	img := make([]float64, width*height)
	side := width
	if height < side {
		side = height
	}
	cx, cy := float64(width-1)/2, float64(height-1)/2
	radius := 3.5 / 12.0 * float64(side)
	for y := 0; y < height; y++ {
		for x := 0; x < width; x++ {
			dx, dy := float64(x)-cx, float64(y)-cy
			if math.Sqrt(dx*dx+dy*dy) < radius {
				img[y*width+x] = 0.9
			} else {
				img[y*width+x] = 0.15 + 0.02*float64((x+y)%3)
			}
		}
	}
	if seed != 0 {
		rng := rand.New(rand.NewSource(seed))
		for i := range img {
			img[i] += 0.06 * (rng.Float64() - 0.5)
			if img[i] < 0.02 {
				img[i] = 0.02
			}
			if img[i] > 0.98 {
				img[i] = 0.98
			}
		}
	}
	return Grid(GridSpec{
		Width:  width,
		Height: height,
		Eight:  eight,
		Capacity: func(x1, y1, x2, y2 int) float64 {
			diff := img[y1*width+x1] - img[y2*width+x2]
			return 1 + 9*math.Exp(-10*diff*diff)
		},
		Terminal: func(x, y int) (src, sink float64) {
			bright := img[y*width+x]
			if bright > 0.5 {
				return 20 * bright, 0
			}
			return 0, 20 * (1 - bright)
		},
	})
}

// MustSegmentationGrid is SegmentationGrid but panics on error.
func MustSegmentationGrid(width, height int, eight bool, seed int64) *Graph {
	g, err := SegmentationGrid(width, height, eight, seed)
	if err != nil {
		panic(err)
	}
	return g
}

// LongPath returns the adversarial recursion-depth instance: a single chain
// s → v₁ → … → t of n vertices with unit capacities, whose one augmenting
// path touches every vertex.  Solvers that recurse along augmenting paths
// need Θ(n) stack here; the iterative kernels solve it in O(n) heap.
func LongPath(n int) *Graph {
	if n < 2 {
		panic(fmt.Sprintf("graph: long path needs at least 2 vertices, got %d", n))
	}
	g := MustNew(n, 0, n-1)
	outDeg := make([]int, n)
	inDeg := make([]int, n)
	for v := 0; v+1 < n; v++ {
		outDeg[v] = 1
		inDeg[v+1] = 1
	}
	g.reserve(n-1, outDeg, inDeg)
	for v := 0; v+1 < n; v++ {
		g.MustAddEdge(v, v+1, 1)
	}
	return g
}
