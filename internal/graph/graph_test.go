package graph

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	cases := []struct {
		name    string
		n, s, t int
		wantErr bool
	}{
		{"ok", 4, 0, 3, false},
		{"too small", 1, 0, 0, true},
		{"source out of range", 4, -1, 3, true},
		{"sink out of range", 4, 0, 4, true},
		{"source equals sink", 4, 2, 2, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := New(tc.n, tc.s, tc.t)
			if (err != nil) != tc.wantErr {
				t.Fatalf("New(%d,%d,%d) err=%v wantErr=%v", tc.n, tc.s, tc.t, err, tc.wantErr)
			}
		})
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew did not panic on invalid arguments")
		}
	}()
	MustNew(1, 0, 0)
}

func TestAddEdgeErrors(t *testing.T) {
	g := MustNew(3, 0, 2)
	if _, err := g.AddEdge(0, 0, 1); err != ErrSelfLoop {
		t.Errorf("self loop: got %v", err)
	}
	if _, err := g.AddEdge(0, 5, 1); err != ErrVertexRange {
		t.Errorf("range: got %v", err)
	}
	if _, err := g.AddEdge(0, 1, -1); err != ErrNegativeCapacity {
		t.Errorf("negative: got %v", err)
	}
	if _, err := g.AddEdge(0, 1, 2); err != nil {
		t.Errorf("valid edge: got %v", err)
	}
}

func TestAdjacency(t *testing.T) {
	g := PaperFigure5()
	if g.NumVertices() != 5 || g.NumEdges() != 5 {
		t.Fatalf("unexpected sizes: %v", g)
	}
	if got := g.OutDegree(1); got != 2 {
		t.Errorf("out degree of n1 = %d, want 2", got)
	}
	if got := g.InDegree(4); got != 2 {
		t.Errorf("in degree of t = %d, want 2", got)
	}
	if got := g.Degree(1); got != 3 {
		t.Errorf("degree of n1 = %d, want 3", got)
	}
	if !g.HasEdge(0, 1) || g.HasEdge(1, 0) {
		t.Errorf("HasEdge wrong for (0,1)/(1,0)")
	}
	if err := g.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestMaxAndTotalCapacity(t *testing.T) {
	g := PaperFigure5()
	if got := g.MaxCapacity(); got != 3 {
		t.Errorf("MaxCapacity = %g, want 3", got)
	}
	if got := g.TotalCapacity(); got != 9 { // 3+2+1+1+2
		t.Errorf("TotalCapacity = %g, want 9", got)
	}
	if got := g.SourceCapacity(); got != 3 {
		t.Errorf("SourceCapacity = %g, want 3", got)
	}
	empty := MustNew(2, 0, 1)
	if got := empty.MaxCapacity(); got != 0 {
		t.Errorf("empty MaxCapacity = %g, want 0", got)
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := PaperFigure5()
	c := g.Clone()
	c.MustAddEdge(0, 2, 7)
	if g.NumEdges() != 5 {
		t.Errorf("mutating clone changed original: %d edges", g.NumEdges())
	}
	if c.NumEdges() != 6 {
		t.Errorf("clone did not gain edge: %d edges", c.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Errorf("original invalid after clone mutation: %v", err)
	}
	if err := c.Validate(); err != nil {
		t.Errorf("clone invalid: %v", err)
	}
}

func TestWithCapacities(t *testing.T) {
	g := PaperFigure5()
	caps := []float64{1, 1, 1, 1, 1}
	q, err := g.WithCapacities(caps)
	if err != nil {
		t.Fatalf("WithCapacities: %v", err)
	}
	for i := 0; i < q.NumEdges(); i++ {
		if q.Edge(i).Capacity != 1 {
			t.Errorf("edge %d capacity %g, want 1", i, q.Edge(i).Capacity)
		}
	}
	if g.Edge(0).Capacity != 3 {
		t.Errorf("original capacity modified")
	}
	if _, err := g.WithCapacities([]float64{1}); err == nil {
		t.Errorf("short capacity slice accepted")
	}
	if _, err := g.WithCapacities([]float64{1, 1, 1, 1, -1}); err == nil {
		t.Errorf("negative capacity accepted")
	}
}

func TestAdjacencyMatrix(t *testing.T) {
	g := PaperFigure5()
	m := g.AdjacencyMatrix()
	if m[0][1] != 3 || m[1][2] != 2 || m[1][3] != 1 || m[2][4] != 1 || m[3][4] != 2 {
		t.Errorf("adjacency matrix wrong: %v", m)
	}
	var total float64
	for _, row := range m {
		for _, v := range row {
			total += v
		}
	}
	if total != g.TotalCapacity() {
		t.Errorf("matrix total %g != total capacity %g", total, g.TotalCapacity())
	}
}

func TestReachability(t *testing.T) {
	g := PaperFigure5()
	if !g.SinkReachable() {
		t.Errorf("sink should be reachable in Figure 5 graph")
	}
	// Disconnect the sink: zero-capacity edges do not count as reachable.
	caps := []float64{3, 0, 0, 1, 2}
	q, err := g.WithCapacities(caps)
	if err != nil {
		t.Fatal(err)
	}
	if q.SinkReachable() {
		t.Errorf("sink should be unreachable with zeroed middle edges")
	}
}

func TestFromUndirected(t *testing.T) {
	und := []Edge{{From: 0, To: 1, Capacity: 2}, {From: 1, To: 2, Capacity: 5}}
	g, err := FromUndirected(3, 0, 2, und)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 4 {
		t.Fatalf("expected 4 directed edges, got %d", g.NumEdges())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) || !g.HasEdge(1, 2) || !g.HasEdge(2, 1) {
		t.Errorf("missing reverse edges")
	}
}

func TestSortedEdgeIndicesByCapacity(t *testing.T) {
	g := PaperFigure5()
	idx := g.SortedEdgeIndicesByCapacity()
	for i := 1; i < len(idx); i++ {
		if g.Edge(idx[i-1]).Capacity < g.Edge(idx[i]).Capacity {
			t.Fatalf("not sorted descending at %d", i)
		}
	}
}

func TestFlowFeasibility(t *testing.T) {
	g := PaperFigure5()
	f := NewFlow(g)
	// Optimal flow for Figure 5: x1=2, x2=1, x3=1, x4=1, x5=1.
	f.Edge[0], f.Edge[1], f.Edge[2], f.Edge[3], f.Edge[4] = 2, 1, 1, 1, 1
	f.RecomputeValue(g)
	if f.Value != 2 {
		t.Errorf("flow value %g, want 2", f.Value)
	}
	rep := f.CheckFeasibility(g)
	if !rep.Feasible(1e-12) {
		t.Errorf("optimal flow reported infeasible: %v", rep)
	}
	// Violate conservation at n1.
	f.Edge[1] = 2
	rep = f.CheckFeasibility(g)
	if rep.Feasible(1e-12) {
		t.Errorf("conservation violation not detected")
	}
	if rep.WorstVertex != 1 {
		t.Errorf("worst vertex %d, want 1", rep.WorstVertex)
	}
	// Violate capacity.
	f2 := NewFlow(g)
	f2.Edge[0] = 10
	rep = f2.CheckFeasibility(g)
	if rep.MaxCapacityViolation != 7 {
		t.Errorf("capacity violation %g, want 7", rep.MaxCapacityViolation)
	}
	// Negative flow.
	f3 := NewFlow(g)
	f3.Edge[2] = -0.5
	rep = f3.CheckFeasibility(g)
	if rep.MaxNegativeFlow != 0.5 {
		t.Errorf("negative flow %g, want 0.5", rep.MaxNegativeFlow)
	}
}

func TestRelativeError(t *testing.T) {
	f := &Flow{Value: 2.1}
	if got := f.RelativeError(2.0); got < 0.049 || got > 0.051 {
		t.Errorf("relative error %g, want 0.05", got)
	}
	if got := f.RelativeError(0); got != 2.1 {
		t.Errorf("relative error with zero reference %g, want 2.1", got)
	}
}

func TestCutFromPartition(t *testing.T) {
	g := PaperFigure5()
	// The minimum cut of the Figure 5 instance is {s, n1, n2} vs {n3, t}:
	// crossing edges are x3 (n1->n3, capacity 1) and x4 (n2->t, capacity 1),
	// total capacity 2, matching the max-flow value the paper reports.
	part := []bool{true, true, true, false, false}
	cut, err := CutFromPartition(g, part)
	if err != nil {
		t.Fatal(err)
	}
	if cut.Capacity != 2 { // x3 (1) + x4 (1)
		t.Errorf("cut capacity %g, want 2", cut.Capacity)
	}
	if len(cut.Edges) != 2 {
		t.Errorf("cut has %d edges, want 2", len(cut.Edges))
	}
	if _, err := CutFromPartition(g, []bool{true}); err == nil {
		t.Errorf("short partition accepted")
	}
	bad := []bool{false, true, true, true, false}
	if _, err := CutFromPartition(g, bad); err == nil {
		t.Errorf("partition excluding source accepted")
	}
	bad2 := []bool{true, true, true, true, true}
	if _, err := CutFromPartition(g, bad2); err == nil {
		t.Errorf("partition including sink accepted")
	}
}

func TestDIMACSRoundTrip(t *testing.T) {
	g := PaperFigure5()
	var buf bytes.Buffer
	if err := WriteDIMACS(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadDIMACS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip changed sizes: %v vs %v", g2, g)
	}
	if g2.Source() != g.Source() || g2.Sink() != g.Sink() {
		t.Fatalf("round trip changed terminals")
	}
	for i := 0; i < g.NumEdges(); i++ {
		if g.Edge(i) != g2.Edge(i) {
			t.Errorf("edge %d mismatch: %v vs %v", i, g.Edge(i), g2.Edge(i))
		}
	}
}

func TestDIMACSErrors(t *testing.T) {
	cases := map[string]string{
		"missing problem":     "n 1 s\nn 2 t\na 1 2 3\n",
		"missing terminals":   "p max 2 1\na 1 2 3\n",
		"bad record":          "p max 2 1\nn 1 s\nn 2 t\nz 1 2 3\n",
		"bad arc":             "p max 2 1\nn 1 s\nn 2 t\na 1 2\n",
		"bad node designator": "p max 2 1\nn 1 q\nn 2 t\na 1 2 3\n",
		"arc count mismatch":  "p max 3 2\nn 1 s\nn 2 t\na 1 2 3\n",
		"bad problem line":    "p min 2 1\nn 1 s\nn 2 t\na 1 2 3\n",
	}
	for name, text := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := ReadDIMACS(strings.NewReader(text)); err == nil {
				t.Errorf("expected error for %q", name)
			}
		})
	}
}

func TestPaperFigure15Graph(t *testing.T) {
	g := PaperFigure15()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 5 {
		t.Fatalf("expected 5 edges, got %d", g.NumEdges())
	}
	if g.Edge(0).Capacity != 4 || g.Edge(1).Capacity != 1 || g.Edge(2).Capacity != 4 {
		t.Errorf("x1/x2/x3 capacities wrong")
	}
}

// Property: random graphs generated edge-by-edge always validate, clone to an
// equal structure, and have adjacency consistent with degree counts.
func TestRandomGraphInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		g := MustNew(n, 0, n-1)
		m := rng.Intn(60)
		for i := 0; i < m; i++ {
			u := rng.Intn(n)
			v := rng.Intn(n)
			if u == v {
				continue
			}
			g.MustAddEdge(u, v, float64(1+rng.Intn(100)))
		}
		if g.Validate() != nil {
			return false
		}
		totalOut := 0
		for v := 0; v < n; v++ {
			totalOut += g.OutDegree(v)
		}
		if totalOut != g.NumEdges() {
			return false
		}
		c := g.Clone()
		if c.NumEdges() != g.NumEdges() || c.Validate() != nil {
			return false
		}
		// DIMACS round trip preserves the instance.
		var buf bytes.Buffer
		if WriteDIMACS(&buf, g) != nil {
			return false
		}
		g2, err := ReadDIMACS(&buf)
		if err != nil || g2.NumEdges() != g.NumEdges() || g2.NumVertices() != g.NumVertices() {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
