package graph

import (
	"math"
	"testing"
)

func TestGridDimensionsAndCounts(t *testing.T) {
	cases := []struct {
		w, h  int
		eight bool
	}{
		{1, 1, false}, {4, 3, false}, {4, 3, true}, {7, 7, true}, {16, 2, false},
	}
	for _, tc := range cases {
		g, err := Grid(GridSpec{Width: tc.w, Height: tc.h, Eight: tc.eight})
		if err != nil {
			t.Fatalf("%dx%d: %v", tc.w, tc.h, err)
		}
		if g.NumVertices() != 2+tc.w*tc.h {
			t.Errorf("%dx%d: %d vertices, want %d", tc.w, tc.h, g.NumVertices(), 2+tc.w*tc.h)
		}
		pairs := tc.w*(tc.h-1) + tc.h*(tc.w-1)
		if tc.eight {
			pairs += 2 * (tc.w - 1) * (tc.h - 1)
		}
		want := 2*pairs + 2 // default Terminal: one source link, one sink link
		if g.NumEdges() != want {
			t.Errorf("%dx%d eight=%v: %d edges, want %d", tc.w, tc.h, tc.eight, g.NumEdges(), want)
		}
		if err := g.Validate(); err != nil {
			t.Errorf("%dx%d: %v", tc.w, tc.h, err)
		}
	}
}

func TestGridRejectsBadDimensions(t *testing.T) {
	for _, spec := range []GridSpec{{Width: 0, Height: 4}, {Width: 4, Height: 0}, {Width: -1, Height: -1}} {
		if _, err := Grid(spec); err == nil {
			t.Errorf("Grid(%dx%d) succeeded, want error", spec.Width, spec.Height)
		}
	}
}

func TestGridRejectsNegativeCapacity(t *testing.T) {
	_, err := Grid(GridSpec{
		Width: 3, Height: 3,
		Capacity: func(x1, y1, x2, y2 int) float64 { return -1 },
	})
	if err == nil {
		t.Fatal("negative capacity function accepted")
	}
}

// TestGridCustomFunctions pins the capacity/terminal plumbing: a 2x1 grid
// with one neighbour pair and asymmetric terminals has a hand-computable
// max-flow (min cut = min(src link, neighbour pair, sink link)).
func TestGridCustomFunctions(t *testing.T) {
	g, err := Grid(GridSpec{
		Width: 2, Height: 1,
		Capacity: func(x1, y1, x2, y2 int) float64 { return 3 },
		Terminal: func(x, y int) (float64, float64) {
			if x == 0 {
				return 5, 0
			}
			return 0, 2
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Edges: pixel0<->pixel1 at 3 each way, s->pixel0 at 5, pixel1->t at 2.
	if g.NumEdges() != 4 {
		t.Fatalf("%d edges, want 4", g.NumEdges())
	}
	// Max flow is limited by the sink link: 2.
	if v := mustMaxFlowValue(t, g); math.Abs(v-2) > 1e-9 {
		t.Errorf("max flow %g, want 2", v)
	}
}

// mustMaxFlowValue computes the max-flow value with a self-contained BFS
// augmenting-path solver so the graph package tests stay independent of
// internal/maxflow.
func mustMaxFlowValue(t *testing.T, g *Graph) float64 {
	t.Helper()
	type arc struct {
		to   int
		cap  float64
		pair int
	}
	arcs := make([]arc, 0, 2*g.NumEdges())
	adj := make([][]int, g.NumVertices())
	for i := 0; i < g.NumEdges(); i++ {
		e := g.Edge(i)
		adj[e.From] = append(adj[e.From], len(arcs))
		arcs = append(arcs, arc{to: e.To, cap: e.Capacity, pair: len(arcs) + 1})
		adj[e.To] = append(adj[e.To], len(arcs))
		arcs = append(arcs, arc{to: e.From, cap: 0, pair: len(arcs) - 1})
	}
	total := 0.0
	for {
		parent := make([]int, g.NumVertices())
		for i := range parent {
			parent[i] = -1
		}
		parent[g.Source()] = -2
		queue := []int{g.Source()}
		for qh := 0; qh < len(queue) && parent[g.Sink()] == -1; qh++ {
			v := queue[qh]
			for _, ai := range adj[v] {
				if arcs[ai].cap > 1e-12 && parent[arcs[ai].to] == -1 {
					parent[arcs[ai].to] = ai
					queue = append(queue, arcs[ai].to)
				}
			}
		}
		if parent[g.Sink()] == -1 {
			return total
		}
		bottleneck := math.Inf(1)
		for v := g.Sink(); v != g.Source(); {
			ai := parent[v]
			bottleneck = math.Min(bottleneck, arcs[ai].cap)
			v = arcs[arcs[ai].pair].to
		}
		for v := g.Sink(); v != g.Source(); {
			ai := parent[v]
			arcs[ai].cap -= bottleneck
			arcs[arcs[ai].pair].cap += bottleneck
			v = arcs[arcs[ai].pair].to
		}
		total += bottleneck
	}
}

// TestSegmentationGridMatchesOriginalExample rebuilds the 12x12 instance
// exactly the way examples/imageseg originally did and checks the generator
// reproduces it edge for edge (seed 0 disables noise).
func TestSegmentationGridMatchesOriginalExample(t *testing.T) {
	const width, height = 12, 12
	img := make([][]float64, height)
	for y := range img {
		img[y] = make([]float64, width)
		for x := range img[y] {
			dx, dy := float64(x)-5.5, float64(y)-5.5
			if math.Sqrt(dx*dx+dy*dy) < 3.5 {
				img[y][x] = 0.9
			} else {
				img[y][x] = 0.15 + 0.02*float64((x+y)%3)
			}
		}
	}
	pixel := func(x, y int) int { return 2 + y*width + x }
	want := MustNew(2+width*height, 0, 1)
	link := func(x1, y1, x2, y2 int) {
		diff := math.Abs(img[y1][x1] - img[y2][x2])
		capacity := 1 + 9*math.Exp(-10*diff*diff)
		want.MustAddEdge(pixel(x1, y1), pixel(x2, y2), capacity)
		want.MustAddEdge(pixel(x2, y2), pixel(x1, y1), capacity)
	}
	for y := 0; y < height; y++ {
		for x := 0; x < width; x++ {
			if x+1 < width {
				link(x, y, x+1, y)
			}
			if y+1 < height {
				link(x, y, x, y+1)
			}
		}
	}
	for y := 0; y < height; y++ {
		for x := 0; x < width; x++ {
			v := pixel(x, y)
			if bright := img[y][x]; bright > 0.5 {
				want.MustAddEdge(0, v, 20*bright)
			} else {
				want.MustAddEdge(v, 1, 20*(1-bright))
			}
		}
	}

	got, err := SegmentationGrid(width, height, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumEdges() != want.NumEdges() || got.NumVertices() != want.NumVertices() {
		t.Fatalf("got %d vertices / %d edges, want %d / %d",
			got.NumVertices(), got.NumEdges(), want.NumVertices(), want.NumEdges())
	}
	for i := 0; i < want.NumEdges(); i++ {
		ge, we := got.Edge(i), want.Edge(i)
		if ge.From != we.From || ge.To != we.To || math.Abs(ge.Capacity-we.Capacity) > 1e-12 {
			t.Fatalf("edge %d: got %+v, want %+v", i, ge, we)
		}
	}
}

func TestSegmentationGridSeedDeterminism(t *testing.T) {
	a := MustSegmentationGrid(16, 16, true, 7)
	b := MustSegmentationGrid(16, 16, true, 7)
	if a.NumEdges() != b.NumEdges() {
		t.Fatalf("same seed produced %d vs %d edges", a.NumEdges(), b.NumEdges())
	}
	for i := 0; i < a.NumEdges(); i++ {
		if a.Edge(i) != b.Edge(i) {
			t.Fatalf("same seed differs at edge %d", i)
		}
	}
	c := MustSegmentationGrid(16, 16, true, 8)
	same := a.NumEdges() == c.NumEdges()
	if same {
		same = false
		for i := 0; i < a.NumEdges(); i++ {
			if a.Edge(i) != c.Edge(i) {
				break
			}
			if i == a.NumEdges()-1 {
				same = true
			}
		}
	}
	if same {
		t.Error("different seeds produced identical instances")
	}
}

func TestSegmentationGridRejectsBadDimensions(t *testing.T) {
	if _, err := SegmentationGrid(0, 5, false, 1); err == nil {
		t.Error("0-width accepted")
	}
}

func TestLongPath(t *testing.T) {
	g := LongPath(1000)
	if g.NumVertices() != 1000 || g.NumEdges() != 999 {
		t.Fatalf("got %d vertices / %d edges", g.NumVertices(), g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if v := mustMaxFlowValue(t, g); math.Abs(v-1) > 1e-12 {
		t.Errorf("long path max flow %g, want 1", v)
	}
}

func TestLongPathRejectsTiny(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("LongPath(1) did not panic")
		}
	}()
	LongPath(1)
}
