// Package graph provides the directed flow-network representation used by
// every other subsystem in analogflow: the classical max-flow algorithms in
// internal/maxflow, the analog-circuit construction in internal/builder, and
// the crossbar mapping in internal/crossbar.
//
// A Graph is a directed multigraph with non-negative integral edge capacities,
// a designated source and sink, and stable edge indices.  Edge indices matter
// because the analog substrate identifies each edge with a circuit node (the
// paper's x_i), so the mapping between graph edges and circuit nodes must be
// deterministic and stable across the whole pipeline.
package graph

import (
	"errors"
	"fmt"
	"sort"
)

// Edge is a single directed, capacitated edge.  Edges are identified by their
// index in Graph.Edges; that index is used everywhere downstream (flows,
// circuit nodes, crossbar intersections).
type Edge struct {
	// From and To are vertex identifiers in [0, NumVertices).
	From, To int
	// Capacity is the non-negative edge capacity c_e.  The paper assumes
	// nonzero integral capacities; we store float64 so that quantized and
	// de-quantized capacities flow through the same type, but constructors
	// validate non-negativity.
	Capacity float64
}

// Graph is a directed flow network.  The zero value is an empty graph with no
// vertices; use New to create a graph with a fixed vertex count.
type Graph struct {
	n      int
	edges  []Edge
	out    [][]int // out[v] = indices of edges leaving v
	in     [][]int // in[v]  = indices of edges entering v
	source int
	sink   int
	// parked marks edges that are structurally resident but logically removed
	// (or pre-declared insertion slots): a parked edge keeps its index, its
	// adjacency entries, and — downstream — its circuit widgets and residual
	// arcs, but carries capacity 0 so it can never carry flow.  The s-t-core
	// prune retains parked edges regardless of capacity, which is what lets a
	// later unpark (StructuralUpdate.AddEdges reclaiming the slot) stay a pure
	// value-level update through every layer.  nil when no edge is parked.
	parked []bool
}

// Common errors returned by graph constructors and validators.
var (
	ErrVertexRange      = errors.New("graph: vertex out of range")
	ErrNegativeCapacity = errors.New("graph: negative edge capacity")
	ErrSelfLoop         = errors.New("graph: self loop not allowed")
	ErrSameSourceSink   = errors.New("graph: source and sink must differ")
)

// New returns an empty graph with n vertices, source s and sink t.
func New(n, s, t int) (*Graph, error) {
	if n < 2 {
		return nil, fmt.Errorf("graph: need at least 2 vertices, got %d", n)
	}
	if s < 0 || s >= n || t < 0 || t >= n {
		return nil, ErrVertexRange
	}
	if s == t {
		return nil, ErrSameSourceSink
	}
	return &Graph{
		n:      n,
		out:    make([][]int, n),
		in:     make([][]int, n),
		source: s,
		sink:   t,
	}, nil
}

// MustNew is New but panics on error.  Intended for tests and examples where
// the arguments are literals.
func MustNew(n, s, t int) *Graph {
	g, err := New(n, s, t)
	if err != nil {
		panic(err)
	}
	return g
}

// NumVertices returns the number of vertices |V|.
func (g *Graph) NumVertices() int { return g.n }

// NumEdges returns the number of edges |E|.
func (g *Graph) NumEdges() int { return len(g.edges) }

// Source returns the source vertex s.
func (g *Graph) Source() int { return g.source }

// Sink returns the sink vertex t.
func (g *Graph) Sink() int { return g.sink }

// Edge returns the edge with the given index.
func (g *Graph) Edge(i int) Edge { return g.edges[i] }

// Edges returns a copy of the edge list.  The copy keeps callers from
// accidentally invalidating the adjacency indices.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, len(g.edges))
	copy(out, g.edges)
	return out
}

// AddEdge appends a directed edge from u to v with the given capacity and
// returns its index.  Self loops and negative capacities are rejected.
// Parallel edges are allowed (they are common in reductions, e.g. undirected
// graphs converted to directed ones).
func (g *Graph) AddEdge(u, v int, capacity float64) (int, error) {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return -1, ErrVertexRange
	}
	if u == v {
		return -1, ErrSelfLoop
	}
	if capacity < 0 {
		return -1, ErrNegativeCapacity
	}
	idx := len(g.edges)
	g.edges = append(g.edges, Edge{From: u, To: v, Capacity: capacity})
	g.out[u] = append(g.out[u], idx)
	g.in[v] = append(g.in[v], idx)
	return idx, nil
}

// AddParkedEdge appends a parked edge from u to v: a capacity-0 edge that the
// s-t-core prune keeps resident, reserving the index (and, downstream, the
// circuit widgets and residual arcs) as a warm insertion slot for a later
// StructuralUpdate.  It returns the new edge's index.
func (g *Graph) AddParkedEdge(u, v int) (int, error) {
	idx, err := g.AddEdge(u, v, 0)
	if err != nil {
		return -1, err
	}
	g.setParked(idx, true)
	return idx, nil
}

// ParkedEdge reports whether edge i is parked.
func (g *Graph) ParkedEdge(i int) bool {
	return g.parked != nil && i >= 0 && i < len(g.parked) && g.parked[i]
}

// NumParked returns the number of parked edges.
func (g *Graph) NumParked() int {
	n := 0
	for _, p := range g.parked {
		if p {
			n++
		}
	}
	return n
}

// ParkedEdges returns the indices of all parked edges in ascending order.
func (g *Graph) ParkedEdges() []int {
	var out []int
	for i, p := range g.parked {
		if p {
			out = append(out, i)
		}
	}
	return out
}

// setParked flips the parked flag of edge i, materialising the flag slice on
// first use and releasing it when the last flag clears.
func (g *Graph) setParked(i int, parked bool) {
	if !parked {
		if g.parked == nil || i >= len(g.parked) {
			return
		}
		g.parked[i] = false
		if g.NumParked() == 0 {
			g.parked = nil
		}
		return
	}
	if g.parked == nil {
		g.parked = make([]bool, len(g.edges))
	} else if len(g.parked) < len(g.edges) {
		grown := make([]bool, len(g.edges))
		copy(grown, g.parked)
		g.parked = grown
	}
	g.parked[i] = true
}

// MustAddEdge is AddEdge but panics on error.
func (g *Graph) MustAddEdge(u, v int, capacity float64) int {
	idx, err := g.AddEdge(u, v, capacity)
	if err != nil {
		panic(err)
	}
	return idx
}

// ReserveEdges preallocates capacity for n additional edges in the edge
// list, avoiding repeated growth when the final edge count is known up front
// (generators and reductions).  Adjacency lists still grow on demand.
func (g *Graph) ReserveEdges(n int) {
	if cap(g.edges)-len(g.edges) < n {
		grown := make([]Edge, len(g.edges), len(g.edges)+n)
		copy(grown, g.edges)
		g.edges = grown
	}
}

// reserve preallocates the edge list and exact-capacity adjacency lists (one
// shared backing array each, like Clone) for a graph that will receive
// exactly the given degree profile.  Callers must add no more than outDeg[v]
// (resp. inDeg[v]) edges at any vertex, otherwise append falls back to a
// private reallocation and the backing array is partially wasted (never
// corrupted, because every sub-slice is capacity-clamped).
func (g *Graph) reserve(edges int, outDeg, inDeg []int) {
	g.edges = make([]Edge, 0, edges)
	outFlat := make([]int, edges)
	inFlat := make([]int, edges)
	pos := 0
	for v := 0; v < g.n; v++ {
		g.out[v] = outFlat[pos : pos : pos+outDeg[v]]
		pos += outDeg[v]
	}
	pos = 0
	for v := 0; v < g.n; v++ {
		g.in[v] = inFlat[pos : pos : pos+inDeg[v]]
		pos += inDeg[v]
	}
}

// OutEdges returns the indices of edges leaving v.
func (g *Graph) OutEdges(v int) []int { return g.out[v] }

// InEdges returns the indices of edges entering v.
func (g *Graph) InEdges(v int) []int { return g.in[v] }

// OutDegree returns the number of edges leaving v.
func (g *Graph) OutDegree(v int) int { return len(g.out[v]) }

// InDegree returns the number of edges entering v.
func (g *Graph) InDegree(v int) int { return len(g.in[v]) }

// Degree returns in-degree plus out-degree of v (the paper's N = j + k used to
// size the conservation widget's negative resistor).
func (g *Graph) Degree(v int) int { return len(g.in[v]) + len(g.out[v]) }

// MaxCapacity returns the largest edge capacity C, used by the quantizer.
// It returns 0 for a graph with no edges.
func (g *Graph) MaxCapacity() float64 {
	var c float64
	for _, e := range g.edges {
		if e.Capacity > c {
			c = e.Capacity
		}
	}
	return c
}

// TotalCapacity returns the sum of all edge capacities.
func (g *Graph) TotalCapacity() float64 {
	var c float64
	for _, e := range g.edges {
		c += e.Capacity
	}
	return c
}

// SourceCapacity returns the total capacity out of the source, an upper bound
// on the max-flow value.
func (g *Graph) SourceCapacity() float64 {
	var c float64
	for _, i := range g.out[g.source] {
		c += g.edges[i].Capacity
	}
	return c
}

// Clone returns a deep copy of the graph.  The adjacency lists are packed
// into two shared backing arrays (full-length sub-slices, so a later AddEdge
// on the clone reallocates the grown list instead of clobbering a neighbour),
// which keeps the copy at a handful of allocations instead of two per vertex
// — Clone sits under WithCapacities in the per-instance hot path of the
// experiment sweeps.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		n:      g.n,
		edges:  make([]Edge, len(g.edges)),
		out:    make([][]int, g.n),
		in:     make([][]int, g.n),
		source: g.source,
		sink:   g.sink,
	}
	copy(c.edges, g.edges)
	if g.parked != nil {
		c.parked = make([]bool, len(g.parked))
		copy(c.parked, g.parked)
	}
	backing := make([]int, 2*len(g.edges))
	outFlat, inFlat := backing[:len(g.edges)], backing[len(g.edges):]
	pos := 0
	for v := 0; v < g.n; v++ {
		next := pos + len(g.out[v])
		c.out[v] = outFlat[pos:next:next]
		copy(c.out[v], g.out[v])
		pos = next
	}
	pos = 0
	for v := 0; v < g.n; v++ {
		next := pos + len(g.in[v])
		c.in[v] = inFlat[pos:next:next]
		copy(c.in[v], g.in[v])
		pos = next
	}
	return c
}

// WithCapacities returns a copy of the graph whose edge capacities are
// replaced by caps (indexed by edge index).  It is used by the quantizer,
// which rewrites capacities onto discrete voltage levels.
func (g *Graph) WithCapacities(caps []float64) (*Graph, error) {
	if len(caps) != len(g.edges) {
		return nil, fmt.Errorf("graph: capacity slice has %d entries, graph has %d edges", len(caps), len(g.edges))
	}
	c := g.Clone()
	for i := range c.edges {
		if caps[i] < 0 {
			return nil, ErrNegativeCapacity
		}
		c.edges[i].Capacity = caps[i]
	}
	return c, nil
}

// Validate performs structural sanity checks: adjacency lists consistent with
// the edge list, all endpoints in range, no negative capacities.
func (g *Graph) Validate() error {
	if g.n < 2 {
		return fmt.Errorf("graph: %d vertices", g.n)
	}
	if g.source < 0 || g.source >= g.n || g.sink < 0 || g.sink >= g.n {
		return ErrVertexRange
	}
	if g.source == g.sink {
		return ErrSameSourceSink
	}
	for i, e := range g.edges {
		if e.From < 0 || e.From >= g.n || e.To < 0 || e.To >= g.n {
			return fmt.Errorf("graph: edge %d endpoint out of range", i)
		}
		if e.From == e.To {
			return fmt.Errorf("graph: edge %d is a self loop", i)
		}
		if e.Capacity < 0 {
			return fmt.Errorf("graph: edge %d has negative capacity", i)
		}
	}
	seenOut := 0
	for v := 0; v < g.n; v++ {
		for _, idx := range g.out[v] {
			if idx < 0 || idx >= len(g.edges) || g.edges[idx].From != v {
				return fmt.Errorf("graph: out adjacency of vertex %d inconsistent", v)
			}
			seenOut++
		}
		for _, idx := range g.in[v] {
			if idx < 0 || idx >= len(g.edges) || g.edges[idx].To != v {
				return fmt.Errorf("graph: in adjacency of vertex %d inconsistent", v)
			}
		}
	}
	if seenOut != len(g.edges) {
		return fmt.Errorf("graph: adjacency covers %d edges, graph has %d", seenOut, len(g.edges))
	}
	return nil
}

// String renders a short human-readable summary.
func (g *Graph) String() string {
	return fmt.Sprintf("Graph{|V|=%d |E|=%d s=%d t=%d}", g.n, len(g.edges), g.source, g.sink)
}

// Extends reports whether ext is a structural extension of base: the same
// vertex count and terminals, with base's edge list as an endpoint-identical
// prefix of ext's.  Capacities and parked flags are not compared.  The warm
// structural-update paths (maxflow.Network.StructureTo, the solve layer's
// slack accounting) use this to decide whether appended edges can be absorbed
// in place.
func Extends(base, ext *Graph) bool {
	if base == nil || ext == nil {
		return false
	}
	if base.n != ext.n || base.source != ext.source || base.sink != ext.sink {
		return false
	}
	if len(ext.edges) < len(base.edges) {
		return false
	}
	for i, e := range base.edges {
		if o := ext.edges[i]; e.From != o.From || e.To != o.To {
			return false
		}
	}
	return true
}

// HasEdge reports whether at least one edge u->v exists.
func (g *Graph) HasEdge(u, v int) bool {
	if u < 0 || u >= g.n {
		return false
	}
	for _, idx := range g.out[u] {
		if g.edges[idx].To == v {
			return true
		}
	}
	return false
}

// AdjacencyMatrix returns the n x n capacity adjacency matrix.  Parallel edges
// are summed.  The crossbar configuration in internal/crossbar is essentially
// a physical realisation of this matrix (Section 3 of the paper).
func (g *Graph) AdjacencyMatrix() [][]float64 {
	m := make([][]float64, g.n)
	for i := range m {
		m[i] = make([]float64, g.n)
	}
	for _, e := range g.edges {
		m[e.From][e.To] += e.Capacity
	}
	return m
}

// ReachableFromSource returns the set of vertices reachable from the source
// through edges of positive capacity, as a boolean slice.
func (g *Graph) ReachableFromSource() []bool {
	seen := make([]bool, g.n)
	stack := []int{g.source}
	seen[g.source] = true
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, idx := range g.out[v] {
			e := g.edges[idx]
			if e.Capacity > 0 && !seen[e.To] {
				seen[e.To] = true
				stack = append(stack, e.To)
			}
		}
	}
	return seen
}

// SinkReachable reports whether the sink is reachable from the source, i.e.
// whether a nonzero flow can exist at all.
func (g *Graph) SinkReachable() bool {
	return g.ReachableFromSource()[g.sink]
}

// FromUndirected builds a directed graph from an undirected edge list by
// allocating two opposite directed edges with the same capacity, which is the
// standard reduction the paper mentions in its footnote 1.
func FromUndirected(n, s, t int, undirected []Edge) (*Graph, error) {
	g, err := New(n, s, t)
	if err != nil {
		return nil, err
	}
	for _, e := range undirected {
		if _, err := g.AddEdge(e.From, e.To, e.Capacity); err != nil {
			return nil, err
		}
		if _, err := g.AddEdge(e.To, e.From, e.Capacity); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// SortedEdgeIndicesByCapacity returns edge indices sorted by descending
// capacity, tie-broken by index.  Used by heuristics in internal/cluster.
func (g *Graph) SortedEdgeIndicesByCapacity() []int {
	idx := make([]int, len(g.edges))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		ca, cb := g.edges[idx[a]].Capacity, g.edges[idx[b]].Capacity
		if ca != cb {
			return ca > cb
		}
		return idx[a] < idx[b]
	})
	return idx
}
