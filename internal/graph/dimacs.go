package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// This file implements reading and writing of max-flow instances in the
// DIMACS max-flow format, the de-facto interchange format for network-flow
// benchmarks.  The format is line oriented:
//
//	c <comment>
//	p max <vertices> <edges>
//	n <vertex> s            (source, 1-based)
//	n <vertex> t            (sink, 1-based)
//	a <from> <to> <capacity>
//
// Vertices are 1-based in the file and 0-based in Graph.

// WriteDIMACS writes g to w in DIMACS max-flow format.
func WriteDIMACS(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "c analogflow max-flow instance\n")
	fmt.Fprintf(bw, "p max %d %d\n", g.NumVertices(), g.NumEdges())
	fmt.Fprintf(bw, "n %d s\n", g.Source()+1)
	fmt.Fprintf(bw, "n %d t\n", g.Sink()+1)
	for _, e := range g.Edges() {
		fmt.Fprintf(bw, "a %d %d %g\n", e.From+1, e.To+1, e.Capacity)
	}
	return bw.Flush()
}

// ReadDIMACS parses a DIMACS max-flow instance from r.
func ReadDIMACS(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)

	var (
		g       *Graph
		n, m    int
		source  = -1
		sink    = -1
		arcs    [][3]float64
		gotProb bool
	)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "c":
			continue
		case "p":
			if len(fields) != 4 || fields[1] != "max" {
				return nil, fmt.Errorf("dimacs line %d: malformed problem line %q", lineNo, line)
			}
			var err1, err2 error
			n, err1 = strconv.Atoi(fields[2])
			m, err2 = strconv.Atoi(fields[3])
			if err1 != nil || err2 != nil || n < 2 || m < 0 {
				return nil, fmt.Errorf("dimacs line %d: bad problem sizes %q", lineNo, line)
			}
			gotProb = true
		case "n":
			if len(fields) != 3 {
				return nil, fmt.Errorf("dimacs line %d: malformed node descriptor %q", lineNo, line)
			}
			v, err := strconv.Atoi(fields[1])
			if err != nil || v < 1 {
				return nil, fmt.Errorf("dimacs line %d: bad vertex id %q", lineNo, fields[1])
			}
			switch fields[2] {
			case "s":
				if source >= 0 {
					return nil, fmt.Errorf("dimacs line %d: duplicate source designator (already vertex %d)", lineNo, source+1)
				}
				source = v - 1
			case "t":
				if sink >= 0 {
					return nil, fmt.Errorf("dimacs line %d: duplicate sink designator (already vertex %d)", lineNo, sink+1)
				}
				sink = v - 1
			default:
				return nil, fmt.Errorf("dimacs line %d: unknown node designator %q", lineNo, fields[2])
			}
		case "a":
			if len(fields) != 4 {
				return nil, fmt.Errorf("dimacs line %d: malformed arc %q", lineNo, line)
			}
			u, err1 := strconv.Atoi(fields[1])
			v, err2 := strconv.Atoi(fields[2])
			c, err3 := strconv.ParseFloat(fields[3], 64)
			if err1 != nil || err2 != nil || err3 != nil {
				return nil, fmt.Errorf("dimacs line %d: bad arc fields %q", lineNo, line)
			}
			arcs = append(arcs, [3]float64{float64(u - 1), float64(v - 1), c})
		default:
			return nil, fmt.Errorf("dimacs line %d: unknown record type %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !gotProb {
		return nil, fmt.Errorf("dimacs: missing problem line")
	}
	if source < 0 || sink < 0 {
		return nil, fmt.Errorf("dimacs: missing source or sink designator")
	}
	var err error
	g, err = New(n, source, sink)
	if err != nil {
		return nil, err
	}
	for _, a := range arcs {
		if _, err := g.AddEdge(int(a[0]), int(a[1]), a[2]); err != nil {
			return nil, fmt.Errorf("dimacs: arc %v: %w", a, err)
		}
	}
	if g.NumEdges() != m {
		return nil, fmt.Errorf("dimacs: problem line declares %d arcs, found %d", m, g.NumEdges())
	}
	return g, nil
}
