package graph

import "fmt"

// CapacityUpdate is a validated batch of capacity-only edge mutations: edge
// Edges[k] receives the new capacity Capacities[k].  Capacity updates never
// change the topology of a graph — the edge list, the adjacency structure and
// the terminals all survive — which is exactly the property the incremental
// re-solve pipeline exploits: the MNA sparsity pattern of the analog circuit
// and the residual-network structure of the combinatorial solvers both key on
// topology, so a capacity-only mutation can be absorbed by value-level
// re-stamping instead of a rebuild.
type CapacityUpdate struct {
	// Edges are the indices of the mutated edges (no duplicates).
	Edges []int
	// Capacities[k] is the new capacity of edge Edges[k] (non-negative).
	Capacities []float64
}

// Validate checks the update against a target graph: the index and value
// slices must pair up, every index must name an existing edge exactly once,
// and every new capacity must be non-negative.
func (u CapacityUpdate) Validate(g *Graph) error {
	if g == nil {
		return fmt.Errorf("graph: capacity update on a nil graph")
	}
	if len(u.Edges) != len(u.Capacities) {
		return fmt.Errorf("graph: capacity update pairs %d edges with %d capacities", len(u.Edges), len(u.Capacities))
	}
	if len(u.Edges) == 0 {
		return fmt.Errorf("graph: empty capacity update")
	}
	seen := make(map[int]bool, len(u.Edges))
	for k, e := range u.Edges {
		if e < 0 || e >= g.NumEdges() {
			return fmt.Errorf("graph: capacity update names edge %d, graph has %d edges", e, g.NumEdges())
		}
		if seen[e] {
			return fmt.Errorf("graph: capacity update names edge %d twice", e)
		}
		seen[e] = true
		if u.Capacities[k] < 0 {
			return fmt.Errorf("graph: capacity update sets edge %d to %g: %w", e, u.Capacities[k], ErrNegativeCapacity)
		}
	}
	return nil
}

// UpdateRecord describes an applied capacity update with enough detail for
// callers to invalidate (or keep) state derived from the previous capacities.
type UpdateRecord struct {
	// Previous[k] is the capacity edge Edges[k] carried before the update.
	Previous []float64
	// PositivityChanged reports whether any edge crossed zero in either
	// direction.  The s-t core of a graph depends on capacities only through
	// their positivity, so an update with PositivityChanged == false is
	// guaranteed to leave the pruned core structurally unchanged.
	PositivityChanged bool
	// Changed counts the edges whose capacity actually changed value.
	Changed int
}

// StructuralUpdate is a validated batch of topology mutations: edge removals
// and edge insertions.  Unlike CapacityUpdate it may change which edges exist,
// but it is engineered so a bounded number of mutations stay value-level:
//
//   - A removal parks the edge: capacity drops to 0 and the edge stays
//     resident (index, adjacency, circuit widgets, residual arcs all
//     survive).  The s-t-core prune keeps parked edges, so downstream solver
//     state remains index-compatible.
//
//   - An insertion first tries to reclaim a parked edge with the same
//     endpoints (a slot freed by an earlier removal, or pre-declared via
//     Graph.AddParkedEdge): the slot is unparked and re-capacitated — a pure
//     value-level change.  Only when no slot matches is a genuinely new edge
//     appended, which consumes one unit of the consumer's structural slack.
type StructuralUpdate struct {
	// AddEdges are the edges to insert; each needs in-range endpoints, no
	// self loop, and positive capacity (inserting a dead edge is a no-op the
	// update rejects as a likely caller bug).
	AddEdges []Edge
	// RemoveEdges are the indices of edges to remove (park).  No duplicates;
	// already-parked edges cannot be removed again.
	RemoveEdges []int
}

// Validate checks the update against a target graph.
func (u StructuralUpdate) Validate(g *Graph) error {
	if g == nil {
		return fmt.Errorf("graph: structural update on a nil graph")
	}
	if len(u.AddEdges) == 0 && len(u.RemoveEdges) == 0 {
		return fmt.Errorf("graph: empty structural update")
	}
	seen := make(map[int]bool, len(u.RemoveEdges))
	for _, e := range u.RemoveEdges {
		if e < 0 || e >= g.NumEdges() {
			return fmt.Errorf("graph: structural update removes edge %d, graph has %d edges", e, g.NumEdges())
		}
		if seen[e] {
			return fmt.Errorf("graph: structural update removes edge %d twice", e)
		}
		if g.ParkedEdge(e) {
			return fmt.Errorf("graph: structural update removes edge %d, which is already parked", e)
		}
		seen[e] = true
	}
	n := g.NumVertices()
	for k, e := range u.AddEdges {
		if e.From < 0 || e.From >= n || e.To < 0 || e.To >= n {
			return fmt.Errorf("graph: structural update add %d: %w", k, ErrVertexRange)
		}
		if e.From == e.To {
			return fmt.Errorf("graph: structural update add %d: %w", k, ErrSelfLoop)
		}
		if e.Capacity <= 0 {
			return fmt.Errorf("graph: structural update add %d needs positive capacity, got %g", k, e.Capacity)
		}
	}
	return nil
}

// StructuralRecord describes an applied structural update.
type StructuralRecord struct {
	// Parked are the edge indices the removals parked.
	Parked []int
	// Reclaimed are the previously parked edge indices the insertions
	// reclaimed (value-level absorption).
	Reclaimed []int
	// Appended are the freshly appended edge indices (each consumes one unit
	// of the consumer's structural slack).
	Appended []int
	// AddIndex[k] is the edge index AddEdges[k] ended up at, whether
	// reclaimed or appended.
	AddIndex []int
}

// ApplyStructuralUpdate validates u and applies it to g in place: removals
// park their edges (capacity 0, parked flag set), insertions reclaim a parked
// edge with matching endpoints when one exists and append otherwise.  Within
// one update, removals apply first, so an insertion can reclaim a slot the
// same batch freed.  On a validation error the graph is untouched.
func (g *Graph) ApplyStructuralUpdate(u StructuralUpdate) (*StructuralRecord, error) {
	if err := u.Validate(g); err != nil {
		return nil, err
	}
	rec := &StructuralRecord{AddIndex: make([]int, len(u.AddEdges))}
	for _, e := range u.RemoveEdges {
		g.edges[e].Capacity = 0
		g.setParked(e, true)
		rec.Parked = append(rec.Parked, e)
	}
	for k, e := range u.AddEdges {
		idx := -1
		for _, p := range g.ParkedEdges() {
			if pe := g.edges[p]; pe.From == e.From && pe.To == e.To {
				idx = p
				break
			}
		}
		if idx >= 0 {
			g.edges[idx].Capacity = e.Capacity
			g.setParked(idx, false)
			rec.Reclaimed = append(rec.Reclaimed, idx)
		} else {
			var err error
			idx, err = g.AddEdge(e.From, e.To, e.Capacity)
			if err != nil {
				return nil, err
			}
			rec.Appended = append(rec.Appended, idx)
		}
		rec.AddIndex[k] = idx
	}
	return rec, nil
}

// ApplyCapacityUpdate validates u and applies it to g in place, returning a
// record of what changed.  On a validation error the graph is untouched.
func (g *Graph) ApplyCapacityUpdate(u CapacityUpdate) (*UpdateRecord, error) {
	if err := u.Validate(g); err != nil {
		return nil, err
	}
	rec := &UpdateRecord{Previous: make([]float64, len(u.Edges))}
	for k, e := range u.Edges {
		old := g.edges[e].Capacity
		rec.Previous[k] = old
		next := u.Capacities[k]
		if old == next {
			continue
		}
		rec.Changed++
		if (old > 0) != (next > 0) {
			rec.PositivityChanged = true
		}
		g.edges[e].Capacity = next
	}
	return rec, nil
}
