package graph

import "fmt"

// CapacityUpdate is a validated batch of capacity-only edge mutations: edge
// Edges[k] receives the new capacity Capacities[k].  Capacity updates never
// change the topology of a graph — the edge list, the adjacency structure and
// the terminals all survive — which is exactly the property the incremental
// re-solve pipeline exploits: the MNA sparsity pattern of the analog circuit
// and the residual-network structure of the combinatorial solvers both key on
// topology, so a capacity-only mutation can be absorbed by value-level
// re-stamping instead of a rebuild.
type CapacityUpdate struct {
	// Edges are the indices of the mutated edges (no duplicates).
	Edges []int
	// Capacities[k] is the new capacity of edge Edges[k] (non-negative).
	Capacities []float64
}

// Validate checks the update against a target graph: the index and value
// slices must pair up, every index must name an existing edge exactly once,
// and every new capacity must be non-negative.
func (u CapacityUpdate) Validate(g *Graph) error {
	if g == nil {
		return fmt.Errorf("graph: capacity update on a nil graph")
	}
	if len(u.Edges) != len(u.Capacities) {
		return fmt.Errorf("graph: capacity update pairs %d edges with %d capacities", len(u.Edges), len(u.Capacities))
	}
	if len(u.Edges) == 0 {
		return fmt.Errorf("graph: empty capacity update")
	}
	seen := make(map[int]bool, len(u.Edges))
	for k, e := range u.Edges {
		if e < 0 || e >= g.NumEdges() {
			return fmt.Errorf("graph: capacity update names edge %d, graph has %d edges", e, g.NumEdges())
		}
		if seen[e] {
			return fmt.Errorf("graph: capacity update names edge %d twice", e)
		}
		seen[e] = true
		if u.Capacities[k] < 0 {
			return fmt.Errorf("graph: capacity update sets edge %d to %g: %w", e, u.Capacities[k], ErrNegativeCapacity)
		}
	}
	return nil
}

// UpdateRecord describes an applied capacity update with enough detail for
// callers to invalidate (or keep) state derived from the previous capacities.
type UpdateRecord struct {
	// Previous[k] is the capacity edge Edges[k] carried before the update.
	Previous []float64
	// PositivityChanged reports whether any edge crossed zero in either
	// direction.  The s-t core of a graph depends on capacities only through
	// their positivity, so an update with PositivityChanged == false is
	// guaranteed to leave the pruned core structurally unchanged.
	PositivityChanged bool
	// Changed counts the edges whose capacity actually changed value.
	Changed int
}

// ApplyCapacityUpdate validates u and applies it to g in place, returning a
// record of what changed.  On a validation error the graph is untouched.
func (g *Graph) ApplyCapacityUpdate(u CapacityUpdate) (*UpdateRecord, error) {
	if err := u.Validate(g); err != nil {
		return nil, err
	}
	rec := &UpdateRecord{Previous: make([]float64, len(u.Edges))}
	for k, e := range u.Edges {
		old := g.edges[e].Capacity
		rec.Previous[k] = old
		next := u.Capacities[k]
		if old == next {
			continue
		}
		rec.Changed++
		if (old > 0) != (next > 0) {
			rec.PositivityChanged = true
		}
		g.edges[e].Capacity = next
	}
	return rec, nil
}
