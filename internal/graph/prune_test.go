package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPruneKeepsFigure5Intact(t *testing.T) {
	g := PaperFigure5()
	pr := PruneToSTCore(g)
	if pr.RemovedEdges != 0 || pr.RemovedVertices != 0 {
		t.Errorf("Figure 5 graph should not be pruned: %+v", pr)
	}
	if pr.Graph.NumEdges() != g.NumEdges() || pr.Graph.NumVertices() != g.NumVertices() {
		t.Errorf("pruned sizes changed")
	}
}

func TestPruneRemovesDeadStructure(t *testing.T) {
	g := MustNew(7, 0, 6)
	g.MustAddEdge(0, 1, 2) // on the s-t path
	g.MustAddEdge(1, 6, 2)
	g.MustAddEdge(1, 2, 1) // vertex 2 is a dead end
	g.MustAddEdge(3, 1, 1) // vertex 3 cannot be reached from s
	g.MustAddEdge(1, 0, 1) // edge back into the source
	g.MustAddEdge(6, 1, 1) // edge out of the sink
	g.MustAddEdge(4, 5, 1) // disconnected component
	pr := PruneToSTCore(g)
	if pr.Graph.NumEdges() != 2 {
		t.Fatalf("pruned graph has %d edges, want 2", pr.Graph.NumEdges())
	}
	if pr.Graph.NumVertices() != 3 { // s, vertex 1, t
		t.Fatalf("pruned graph has %d vertices, want 3", pr.Graph.NumVertices())
	}
	if pr.RemovedEdges != 5 || pr.RemovedVertices != 4 {
		t.Errorf("removed counts wrong: %+v", pr)
	}
	// Edge map points back at the surviving original edges.
	for _, orig := range pr.EdgeMap {
		if orig != 0 && orig != 1 {
			t.Errorf("unexpected surviving edge %d", orig)
		}
	}
}

func TestPruneHandlesDisconnectedTerminals(t *testing.T) {
	g := MustNew(4, 0, 3)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(2, 3, 1)
	pr := PruneToSTCore(g)
	if pr.Graph.NumVertices() < 2 {
		t.Fatalf("terminals must survive pruning")
	}
	if pr.Graph.NumEdges() != 0 {
		t.Errorf("no edge can carry s-t flow, got %d", pr.Graph.NumEdges())
	}
}

func TestExpandFlow(t *testing.T) {
	g := MustNew(4, 0, 3)
	e0 := g.MustAddEdge(0, 1, 2)
	g.MustAddEdge(1, 2, 5) // vertex 2 is a dead end
	e2 := g.MustAddEdge(1, 3, 2)
	pr := PruneToSTCore(g)
	pf := NewFlow(pr.Graph)
	for i := range pf.Edge {
		pf.Edge[i] = 2
	}
	pf.RecomputeValue(pr.Graph)
	full := pr.ExpandFlow(g, pf)
	if full.Edge[e0] != 2 || full.Edge[e2] != 2 || full.Edge[1] != 0 {
		t.Errorf("expanded flow wrong: %v", full.Edge)
	}
	if full.Value != 2 {
		t.Errorf("expanded value %g, want 2", full.Value)
	}
}

func TestSTDepth(t *testing.T) {
	g := PaperFigure5()
	if d := STDepth(g); d != 3 {
		t.Errorf("Figure 5 depth %d, want 3", d)
	}
	iso := MustNew(3, 0, 2)
	iso.MustAddEdge(0, 1, 1)
	if d := STDepth(iso); d != -1 {
		t.Errorf("unreachable sink should give -1, got %d", d)
	}
	direct := MustNew(2, 0, 1)
	direct.MustAddEdge(0, 1, 1)
	if d := STDepth(direct); d != 1 {
		t.Errorf("single edge depth %d, want 1", d)
	}
}

func TestLongestAugmentingDepth(t *testing.T) {
	g := PaperFigure5()
	if d := LongestAugmentingDepth(g); d != 3 {
		t.Errorf("Figure 5 longest depth %d, want 3", d)
	}
	// A graph with no path still reports at least 1 so callers can divide by it.
	iso := MustNew(3, 0, 2)
	iso.MustAddEdge(0, 1, 1)
	if d := LongestAugmentingDepth(iso); d < 1 {
		t.Errorf("depth should be at least 1, got %d", d)
	}
}

// Property: pruning never changes the max-flow upper bound structure — the
// pruned graph's source capacity is at most the original's, the pruned graph
// validates, and pruning is idempotent.
func TestPruneInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(30)
		g := MustNew(n, 0, n-1)
		m := rng.Intn(4 * n)
		for i := 0; i < m; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			g.MustAddEdge(u, v, float64(1+rng.Intn(9)))
		}
		pr := PruneToSTCore(g)
		if pr.Graph.Validate() != nil {
			return false
		}
		if pr.Graph.SourceCapacity() > g.SourceCapacity()+1e-9 {
			return false
		}
		if len(pr.EdgeMap) != pr.Graph.NumEdges() {
			return false
		}
		// Idempotence.
		pr2 := PruneToSTCore(pr.Graph)
		return pr2.RemovedEdges == 0 && pr2.RemovedVertices == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
