package graph

import "testing"

// diamond builds the 4-vertex diamond used throughout the structural tests:
// s=0 -> {1,2} -> t=3.
func diamond(t *testing.T) *Graph {
	t.Helper()
	g := MustNew(4, 0, 3)
	g.MustAddEdge(0, 1, 10)
	g.MustAddEdge(0, 2, 5)
	g.MustAddEdge(1, 3, 8)
	g.MustAddEdge(2, 3, 7)
	return g
}

func TestStructuralUpdateValidate(t *testing.T) {
	g := diamond(t)
	cases := []struct {
		name string
		u    StructuralUpdate
	}{
		{"empty", StructuralUpdate{}},
		{"remove out of range", StructuralUpdate{RemoveEdges: []int{4}}},
		{"remove negative", StructuralUpdate{RemoveEdges: []int{-1}}},
		{"remove twice", StructuralUpdate{RemoveEdges: []int{1, 1}}},
		{"add self loop", StructuralUpdate{AddEdges: []Edge{{From: 1, To: 1, Capacity: 1}}}},
		{"add vertex range", StructuralUpdate{AddEdges: []Edge{{From: 0, To: 9, Capacity: 1}}}},
		{"add zero capacity", StructuralUpdate{AddEdges: []Edge{{From: 1, To: 2, Capacity: 0}}}},
	}
	for _, tc := range cases {
		if err := tc.u.Validate(g); err == nil {
			t.Errorf("%s: expected validation error", tc.name)
		}
	}
	if err := (StructuralUpdate{RemoveEdges: []int{1}}).Validate(g); err != nil {
		t.Fatalf("valid removal rejected: %v", err)
	}
	if _, err := g.ApplyStructuralUpdate(StructuralUpdate{RemoveEdges: []int{1}}); err != nil {
		t.Fatalf("apply: %v", err)
	}
	if err := (StructuralUpdate{RemoveEdges: []int{1}}).Validate(g); err == nil {
		t.Fatal("removing an already-parked edge should be rejected")
	}
}

func TestApplyStructuralUpdateParkReclaimAppend(t *testing.T) {
	g := diamond(t)
	rec, err := g.ApplyStructuralUpdate(StructuralUpdate{RemoveEdges: []int{1}})
	if err != nil {
		t.Fatalf("remove: %v", err)
	}
	if len(rec.Parked) != 1 || rec.Parked[0] != 1 {
		t.Fatalf("parked = %v, want [1]", rec.Parked)
	}
	if !g.ParkedEdge(1) || g.Edge(1).Capacity != 0 {
		t.Fatalf("edge 1 should be parked with capacity 0, got parked=%v cap=%g", g.ParkedEdge(1), g.Edge(1).Capacity)
	}
	if g.NumParked() != 1 {
		t.Fatalf("NumParked = %d, want 1", g.NumParked())
	}

	// Re-inserting the same endpoints reclaims the parked slot in place.
	rec, err = g.ApplyStructuralUpdate(StructuralUpdate{AddEdges: []Edge{{From: 0, To: 2, Capacity: 4}}})
	if err != nil {
		t.Fatalf("reclaim: %v", err)
	}
	if len(rec.Reclaimed) != 1 || rec.Reclaimed[0] != 1 || len(rec.Appended) != 0 {
		t.Fatalf("expected reclaim of edge 1, got %+v", rec)
	}
	if rec.AddIndex[0] != 1 {
		t.Fatalf("AddIndex = %v, want [1]", rec.AddIndex)
	}
	if g.ParkedEdge(1) || g.Edge(1).Capacity != 4 || g.NumEdges() != 4 {
		t.Fatalf("reclaim should be in place: parked=%v cap=%g edges=%d", g.ParkedEdge(1), g.Edge(1).Capacity, g.NumEdges())
	}

	// Inserting endpoints with no parked slot appends a new edge.
	rec, err = g.ApplyStructuralUpdate(StructuralUpdate{AddEdges: []Edge{{From: 1, To: 2, Capacity: 3}}})
	if err != nil {
		t.Fatalf("append: %v", err)
	}
	if len(rec.Appended) != 1 || rec.Appended[0] != 4 || rec.AddIndex[0] != 4 {
		t.Fatalf("expected append at index 4, got %+v", rec)
	}
	if g.NumEdges() != 5 {
		t.Fatalf("NumEdges = %d, want 5", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("graph invalid after structural updates: %v", err)
	}

	// A removal in the same batch frees a slot a later insertion reclaims.
	rec, err = g.ApplyStructuralUpdate(StructuralUpdate{
		RemoveEdges: []int{4},
		AddEdges:    []Edge{{From: 1, To: 2, Capacity: 6}},
	})
	if err != nil {
		t.Fatalf("mixed batch: %v", err)
	}
	if len(rec.Reclaimed) != 1 || rec.Reclaimed[0] != 4 {
		t.Fatalf("expected in-batch reclaim of edge 4, got %+v", rec)
	}
}

func TestAddParkedEdgeAndClone(t *testing.T) {
	g := diamond(t)
	idx, err := g.AddParkedEdge(1, 2)
	if err != nil {
		t.Fatalf("AddParkedEdge: %v", err)
	}
	if !g.ParkedEdge(idx) || g.Edge(idx).Capacity != 0 {
		t.Fatalf("parked slot should carry capacity 0")
	}
	c := g.Clone()
	if !c.ParkedEdge(idx) {
		t.Fatal("Clone dropped the parked flag")
	}
	c.setParked(idx, false)
	if !g.ParkedEdge(idx) {
		t.Fatal("clone shares parked state with the original")
	}
	wc, err := g.WithCapacities([]float64{10, 5, 8, 7, 0})
	if err != nil {
		t.Fatalf("WithCapacities: %v", err)
	}
	if !wc.ParkedEdge(idx) {
		t.Fatal("WithCapacities dropped the parked flag")
	}
}

func TestPruneKeepsParkedEdges(t *testing.T) {
	// Diamond plus a 1->2 crossover, so vertex 2 stays alive when 0->2 parks.
	g := diamond(t)
	g.MustAddEdge(1, 2, 4)
	base := PruneToSTCore(g)
	if _, err := g.ApplyStructuralUpdate(StructuralUpdate{RemoveEdges: []int{1}}); err != nil {
		t.Fatalf("park: %v", err)
	}
	after := PruneToSTCore(g)
	if !SamePruneEdges(base, after) {
		t.Fatalf("parking must not change the prune edge map: %v vs %v", base.EdgeMap, after.EdgeMap)
	}
	if !after.Graph.ParkedEdge(1) {
		t.Fatal("pruned graph lost the parked flag")
	}
	// A parked edge does not extend reachability: when it was the only way
	// into vertex 2, the whole branch — parked slot included — is pruned, and
	// the park is an honest structural change rather than a dead substrate
	// branch.
	gs := diamond(t)
	if _, err := gs.ApplyStructuralUpdate(StructuralUpdate{RemoveEdges: []int{1}}); err != nil {
		t.Fatalf("park: %v", err)
	}
	if pr := PruneToSTCore(gs); len(pr.EdgeMap) != 2 {
		t.Fatalf("a stranding park should prune the dead branch: EdgeMap=%v", pr.EdgeMap)
	}
	// A plain capacity-0 edge (not parked) is still pruned away.
	g2 := diamond(t)
	if _, err := g2.ApplyCapacityUpdate(CapacityUpdate{Edges: []int{1}, Capacities: []float64{0}}); err != nil {
		t.Fatalf("capacity update: %v", err)
	}
	if pr := PruneToSTCore(g2); len(pr.EdgeMap) != 2 {
		// Dropping edge 0->2 makes vertex 2 unreachable, taking 2->3 with it.
		t.Fatalf("unparked zero-capacity edge should be pruned: EdgeMap=%v", pr.EdgeMap)
	}
}

func TestExtends(t *testing.T) {
	g := diamond(t)
	ext := g.Clone()
	ext.MustAddEdge(1, 2, 3)
	if !Extends(g, ext) {
		t.Fatal("appending an edge should preserve Extends")
	}
	if Extends(ext, g) {
		t.Fatal("Extends is directional")
	}
	if !Extends(g, g) {
		t.Fatal("a graph extends itself")
	}
	other := MustNew(4, 0, 3)
	other.MustAddEdge(0, 2, 10)
	if Extends(g, other) {
		t.Fatal("different prefix endpoints must not extend")
	}
}
