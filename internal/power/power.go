// Package power implements the analytical power and energy model of
// Section 5.2 of the paper.  The dominant consumers on the substrate are the
// op-amps: one per edge present in the graph (the inverter widget's negative
// resistance) and one per vertex (the conservation widget's negative
// resistance), so a graph with |V| vertices and |E| edges dissipates roughly
//
//	P ≈ (|E| + |V|) * Pamp
//
// where Pamp is the quiescent power of one op-amp (500 µW at 1 V / 500 µA in
// the paper's 32 nm assumption).  Resistor dissipation can be scaled away by
// proportionally raising all resistances (Section 4.3.1), and op-amps of
// absent edges are power gated.
package power

import (
	"fmt"
	"math"

	"analogflow/internal/device"
	"analogflow/internal/graph"
)

// Model captures the power-model parameters.
type Model struct {
	// OpAmp provides Pamp via its supply voltage and current.
	OpAmp device.OpAmpModel
	// StaticOverhead is a fixed power term for bias generation, clamping
	// sources and readout (W); the paper neglects it, so it defaults to 0.
	StaticOverhead float64
}

// DefaultModel returns the paper's Section 5.2 assumptions.
func DefaultModel() Model {
	return Model{OpAmp: device.DefaultOpAmp()}
}

// Validate checks the model.
func (m Model) Validate() error {
	if err := m.OpAmp.Validate(); err != nil {
		return err
	}
	if m.StaticOverhead < 0 {
		return fmt.Errorf("power: negative static overhead %g", m.StaticOverhead)
	}
	return nil
}

// Pamp returns the per-op-amp power in watts.
func (m Model) Pamp() float64 { return m.OpAmp.Power() }

// SubstratePower returns the power drawn by a substrate configured for a
// graph with the given number of vertices and edges.
func (m Model) SubstratePower(vertices, edges int) float64 {
	if vertices < 0 {
		vertices = 0
	}
	if edges < 0 {
		edges = 0
	}
	return float64(vertices+edges)*m.Pamp() + m.StaticOverhead
}

// GraphPower returns the substrate power for a specific graph.
func (m Model) GraphPower(g *graph.Graph) float64 {
	return m.SubstratePower(g.NumVertices(), g.NumEdges())
}

// MaxEdgesForBudget returns how many active edges a power budget can support,
// assuming |V| << |E| as in Section 5.2 of the paper.
func (m Model) MaxEdgesForBudget(budget float64) int {
	if budget <= m.StaticOverhead {
		return 0
	}
	return int(math.Floor((budget - m.StaticOverhead) / m.Pamp()))
}

// Energy returns the energy consumed by a solve that keeps the substrate
// powered for the given convergence time.
func (m Model) Energy(vertices, edges int, convergenceTime float64) float64 {
	if convergenceTime < 0 {
		convergenceTime = 0
	}
	return m.SubstratePower(vertices, edges) * convergenceTime
}

// BudgetReport is one row of the paper's Section 5.2 discussion: a power
// budget and the number of edges the substrate can host within it.
type BudgetReport struct {
	Budget   float64
	MaxEdges int
}

// BudgetTable evaluates the model at the paper's two reference budgets (5 W
// embedded, 150 W server) plus any extra budgets supplied.
func (m Model) BudgetTable(extra ...float64) []BudgetReport {
	budgets := append([]float64{5, 150}, extra...)
	out := make([]BudgetReport, 0, len(budgets))
	for _, b := range budgets {
		out = append(out, BudgetReport{Budget: b, MaxEdges: m.MaxEdgesForBudget(b)})
	}
	return out
}

// EfficiencyGain compares substrate energy against a CPU baseline: it returns
// the ratio (CPU energy) / (substrate energy) given the respective solve
// times and a CPU power draw.
func EfficiencyGain(cpuTime, cpuPower, substrateTime, substratePower float64) float64 {
	se := substrateTime * substratePower
	if se <= 0 {
		return math.Inf(1)
	}
	return (cpuTime * cpuPower) / se
}
