package power

import (
	"math"
	"testing"

	"analogflow/internal/graph"
)

func TestModelValidate(t *testing.T) {
	if err := DefaultModel().Validate(); err != nil {
		t.Errorf("default model invalid: %v", err)
	}
	bad := DefaultModel()
	bad.StaticOverhead = -1
	if bad.Validate() == nil {
		t.Errorf("negative overhead accepted")
	}
	bad2 := DefaultModel()
	bad2.OpAmp.Gain = 0
	if bad2.Validate() == nil {
		t.Errorf("invalid op-amp accepted")
	}
}

func TestPamp(t *testing.T) {
	// Paper: 1 V supply, 500 µA -> 500 µW.
	if p := DefaultModel().Pamp(); math.Abs(p-500e-6) > 1e-12 {
		t.Errorf("Pamp = %g, want 500e-6", p)
	}
}

func TestSubstratePower(t *testing.T) {
	m := DefaultModel()
	// (|E| + |V|) * Pamp
	if p := m.SubstratePower(1000, 8000); math.Abs(p-9000*500e-6) > 1e-9 {
		t.Errorf("substrate power %g", p)
	}
	if p := m.SubstratePower(-5, -5); p != 0 {
		t.Errorf("negative sizes should clamp to zero, got %g", p)
	}
	m.StaticOverhead = 0.5
	if p := m.SubstratePower(0, 0); p != 0.5 {
		t.Errorf("static overhead not applied")
	}
	g := graph.PaperFigure5()
	base := DefaultModel()
	if p := base.GraphPower(g); math.Abs(p-10*500e-6) > 1e-12 {
		t.Errorf("graph power %g", p)
	}
}

// The paper's Section 5.2 headline numbers: a 5 W budget supports about 1e4
// edges and a 150 W budget about 3e5 edges.
func TestBudgetTableMatchesPaper(t *testing.T) {
	m := DefaultModel()
	table := m.BudgetTable()
	if len(table) != 2 {
		t.Fatalf("expected 2 default budgets, got %d", len(table))
	}
	if table[0].Budget != 5 || table[1].Budget != 150 {
		t.Fatalf("unexpected budgets: %+v", table)
	}
	if table[0].MaxEdges != 10000 {
		t.Errorf("5 W budget supports %d edges, want 10000", table[0].MaxEdges)
	}
	if table[1].MaxEdges != 300000 {
		t.Errorf("150 W budget supports %d edges, want 300000", table[1].MaxEdges)
	}
	withExtra := m.BudgetTable(1)
	if len(withExtra) != 3 || withExtra[2].MaxEdges != 2000 {
		t.Errorf("extra budget handling wrong: %+v", withExtra)
	}
}

func TestMaxEdgesForBudgetEdgeCases(t *testing.T) {
	m := DefaultModel()
	m.StaticOverhead = 1
	if n := m.MaxEdgesForBudget(0.5); n != 0 {
		t.Errorf("budget below overhead should support 0 edges, got %d", n)
	}
}

func TestEnergy(t *testing.T) {
	m := DefaultModel()
	e := m.Energy(100, 900, 1e-5)
	want := 1000 * 500e-6 * 1e-5
	if math.Abs(e-want) > 1e-15 {
		t.Errorf("energy %g, want %g", e, want)
	}
	if m.Energy(100, 900, -1) != 0 {
		t.Errorf("negative time should give zero energy")
	}
}

func TestEfficiencyGain(t *testing.T) {
	// CPU: 1 ms at 100 W = 0.1 J; substrate: 1 µs at 0.5 W = 5e-7 J.
	gain := EfficiencyGain(1e-3, 100, 1e-6, 0.5)
	if math.Abs(gain-2e5) > 1 {
		t.Errorf("efficiency gain %g, want 2e5", gain)
	}
	if !math.IsInf(EfficiencyGain(1, 1, 0, 1), 1) {
		t.Errorf("zero substrate energy should give +Inf gain")
	}
}
