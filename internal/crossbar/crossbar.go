// Package crossbar implements the reconfigurable memristor crossbar
// architecture of Section 3 of the paper: an n x n array of cells, each
// containing the analog widget for one potential edge (i, j) behind a
// memristor switch.  Programming the switches to the low-resistance state
// (LRS) for exactly the edges of a graph turns the crossbar into a physical
// copy of the graph's adjacency matrix; the first row implements the
// objective coupling for the source vertex.
//
// The package models the row-by-row half-select programming protocol of
// Section 3.1 at the device level (threshold switching with finite pulse
// times), provides verification and utilisation reporting, and exposes the
// post-fabrication tuning hook of Section 4.3.2.
package crossbar

import (
	"errors"
	"fmt"
	"math/rand"

	"analogflow/internal/device"
	"analogflow/internal/graph"
	"analogflow/internal/variation"
)

// Config describes a crossbar instance.
type Config struct {
	// Rows and Cols give the array dimensions; a graph with n vertices needs
	// an n x n array (Table 1 uses 1000 x 1000).
	Rows, Cols int
	// Memristor is the switch/resistor device model.
	Memristor device.MemristorModel
	// ProgramHigh and ProgramLow are the column and row programming voltages
	// of the half-select scheme; their difference must exceed the memristor
	// threshold while each in isolation must not.
	ProgramHigh, ProgramLow float64
	// CycleTime is the duration of one programming cycle (one row).
	CycleTime float64
	// VariationSigma, when positive, draws each cell's LRS resistance from a
	// lognormal distribution to model process variation.
	VariationSigma float64
	// Seed makes variation reproducible.
	Seed int64
}

// DefaultConfig returns the Table 1 crossbar: 1000 x 1000 cells, the default
// memristor model, and a conservative 100 ns programming cycle.
func DefaultConfig() Config {
	return Config{
		Rows:        1000,
		Cols:        1000,
		Memristor:   device.DefaultMemristor(),
		ProgramHigh: 1.0,
		ProgramLow:  -1.0,
		CycleTime:   100e-9,
	}
}

// Validate checks the configuration, including the half-select condition.
func (c Config) Validate() error {
	if c.Rows < 2 || c.Cols < 2 {
		return fmt.Errorf("crossbar: need at least a 2x2 array, got %dx%d", c.Rows, c.Cols)
	}
	if err := c.Memristor.Validate(); err != nil {
		return err
	}
	if c.CycleTime <= 0 {
		return fmt.Errorf("crossbar: cycle time must be positive, got %g", c.CycleTime)
	}
	full := c.ProgramHigh - c.ProgramLow
	if full <= c.Memristor.VThreshold {
		return fmt.Errorf("crossbar: full-select voltage %g does not exceed threshold %g", full, c.Memristor.VThreshold)
	}
	if c.ProgramHigh >= c.Memristor.VThreshold || -c.ProgramLow >= c.Memristor.VThreshold {
		return fmt.Errorf("crossbar: half-select voltages must stay below the threshold (high=%g low=%g threshold=%g)",
			c.ProgramHigh, c.ProgramLow, c.Memristor.VThreshold)
	}
	if c.CycleTime < c.Memristor.SwitchTime {
		return fmt.Errorf("crossbar: cycle time %g shorter than the memristor switch time %g", c.CycleTime, c.Memristor.SwitchTime)
	}
	if c.VariationSigma < 0 {
		return fmt.Errorf("crossbar: negative variation sigma")
	}
	return nil
}

// ErrGraphTooLarge is returned when a graph does not fit onto the array.
var ErrGraphTooLarge = errors.New("crossbar: graph does not fit onto the array")

// Crossbar is a programmable memristor array.
type Crossbar struct {
	cfg   Config
	cells [][]*device.Memristor
	// configuredFor remembers the last successfully configured graph.
	configuredFor *graph.Graph
	// programmingCycles counts total row cycles issued over the lifetime of
	// the array (endurance accounting).
	programmingCycles int
}

// New builds a crossbar with all cells in HRS.
func New(cfg Config) (*Crossbar, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	model := cfg.Memristor
	model.VariationSigma = cfg.VariationSigma
	cells := make([][]*device.Memristor, cfg.Rows)
	for i := range cells {
		cells[i] = make([]*device.Memristor, cfg.Cols)
		for j := range cells[i] {
			cells[i][j] = device.NewMemristorWithVariation(model, rng)
		}
	}
	return &Crossbar{cfg: cfg, cells: cells}, nil
}

// Config returns the crossbar configuration.
func (x *Crossbar) Config() Config { return x.cfg }

// Cell returns the memristor at intersection (row, col).
func (x *Crossbar) Cell(row, col int) *device.Memristor { return x.cells[row][col] }

// State returns the switch state at (row, col).
func (x *Crossbar) State(row, col int) device.MemristorState { return x.cells[row][col].State() }

// ProgrammingCycles returns the number of row programming cycles issued.
func (x *Crossbar) ProgrammingCycles() int { return x.programmingCycles }

// ConfigurationReport summarises one configuration run.
type ConfigurationReport struct {
	// Cycles is the number of row cycles used (one per row, Section 3.1).
	Cycles int
	// ProgrammingTime is Cycles * CycleTime.
	ProgrammingTime float64
	// CellsSet is the number of switches programmed to LRS.
	CellsSet int
	// CellsCleared is the number of switches reset to HRS.
	CellsCleared int
	// HalfSelectDisturbances counts cells that unintentionally changed state
	// during programming; it must be zero for a correct half-select design.
	HalfSelectDisturbances int
}

// Fits reports whether the graph can be mapped onto the array (one row and
// one column per vertex).
func (x *Crossbar) Fits(g *graph.Graph) bool {
	return g.NumVertices() <= x.cfg.Rows && g.NumVertices() <= x.cfg.Cols
}

// Configure programs the crossbar to encode the adjacency matrix of g using
// the row-by-row half-select protocol of Section 3.1, with device-level
// threshold switching.  Previously programmed cells that are not part of g
// are reset first.
func (x *Crossbar) Configure(g *graph.Graph) (*ConfigurationReport, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if !x.Fits(g) {
		return nil, fmt.Errorf("%w: %d vertices onto %dx%d", ErrGraphTooLarge, g.NumVertices(), x.cfg.Rows, x.cfg.Cols)
	}
	want := make([][]bool, x.cfg.Rows)
	for i := range want {
		want[i] = make([]bool, x.cfg.Cols)
	}
	for _, e := range g.Edges() {
		want[e.From][e.To] = true
	}

	rep := &ConfigurationReport{}
	before := make([][]device.MemristorState, x.cfg.Rows)
	for i := range before {
		before[i] = make([]device.MemristorState, x.cfg.Cols)
		for j := range before[i] {
			before[i][j] = x.cells[i][j].State()
		}
	}

	// Reset pass: rows whose cells need clearing get a reverse pulse on the
	// affected columns (same half-select scheme with inverted polarity).
	for row := 0; row < x.cfg.Rows; row++ {
		needsClear := false
		for col := 0; col < x.cfg.Cols; col++ {
			if !want[row][col] && x.cells[row][col].State() == device.LRS {
				needsClear = true
				break
			}
		}
		if !needsClear {
			continue
		}
		rep.Cycles++
		x.programmingCycles++
		for col := 0; col < x.cfg.Cols; col++ {
			v := x.cellProgrammingVoltage(true, !want[row][col] && x.cells[row][col].State() == device.LRS)
			if x.cells[row][col].ApplyStimulus(v, x.cfg.CycleTime) {
				rep.CellsCleared++
			}
		}
	}

	// Set pass: one cycle per row (Section 3.1: "The programming stage takes
	// n cycles to complete, one cycle for each row").
	for row := 0; row < g.NumVertices(); row++ {
		rep.Cycles++
		x.programmingCycles++
		for col := 0; col < x.cfg.Cols; col++ {
			v := x.cellProgrammingVoltage(false, want[row][col] && x.cells[row][col].State() == device.HRS)
			if x.cells[row][col].ApplyStimulus(v, x.cfg.CycleTime) {
				rep.CellsSet++
			}
		}
	}

	// Verify and count disturbances.
	for i := 0; i < x.cfg.Rows; i++ {
		for j := 0; j < x.cfg.Cols; j++ {
			wantState := device.HRS
			if want[i][j] {
				wantState = device.LRS
			}
			got := x.cells[i][j].State()
			if got != wantState {
				rep.HalfSelectDisturbances++
			}
		}
	}
	rep.ProgrammingTime = float64(rep.Cycles) * x.cfg.CycleTime
	if rep.HalfSelectDisturbances > 0 {
		return rep, fmt.Errorf("crossbar: %d cells in the wrong state after programming", rep.HalfSelectDisturbances)
	}
	x.configuredFor = g.Clone()
	return rep, nil
}

// cellProgrammingVoltage returns the voltage across a cell during one cycle
// of the half-select scheme.  reset selects the polarity; selected marks the
// cell as the target of the pulse (full select); unselected cells see only
// the half-select row or column voltage.
func (x *Crossbar) cellProgrammingVoltage(reset, selected bool) float64 {
	full := x.cfg.ProgramHigh - x.cfg.ProgramLow
	half := -x.cfg.ProgramLow
	if reset {
		full, half = -full, -half
	}
	if selected {
		return full
	}
	return half
}

// Verify checks that the programmed switch states encode exactly the
// adjacency matrix of g.
func (x *Crossbar) Verify(g *graph.Graph) error {
	if !x.Fits(g) {
		return ErrGraphTooLarge
	}
	want := make(map[[2]int]bool, g.NumEdges())
	for _, e := range g.Edges() {
		want[[2]int{e.From, e.To}] = true
	}
	for i := 0; i < x.cfg.Rows; i++ {
		for j := 0; j < x.cfg.Cols; j++ {
			expect := device.HRS
			if want[[2]int{i, j}] {
				expect = device.LRS
			}
			if got := x.cells[i][j].State(); got != expect {
				return fmt.Errorf("crossbar: cell (%d,%d) is %v, want %v", i, j, got, expect)
			}
		}
	}
	return nil
}

// Utilization returns the fraction of cells in LRS, the paper's motivation
// for the clustered architectures of Section 6.2 (sparse graphs waste most of
// a monolithic crossbar).
func (x *Crossbar) Utilization() float64 {
	on := 0
	for i := range x.cells {
		for _, c := range x.cells[i] {
			if c.State() == device.LRS {
				on++
			}
		}
	}
	return float64(on) / float64(x.cfg.Rows*x.cfg.Cols)
}

// ActiveCells returns the number of LRS cells (edges present).
func (x *Crossbar) ActiveCells() int {
	on := 0
	for i := range x.cells {
		for _, c := range x.cells[i] {
			if c.State() == device.LRS {
				on++
			}
		}
	}
	return on
}

// ReadBackGraph reconstructs the encoded adjacency (with unit capacities)
// from the switch states; the capacities themselves live in the clamp
// voltage sources, not the switches.
func (x *Crossbar) ReadBackGraph(source, sink, vertices int) (*graph.Graph, error) {
	if vertices > x.cfg.Rows || vertices > x.cfg.Cols {
		return nil, ErrGraphTooLarge
	}
	g, err := graph.New(vertices, source, sink)
	if err != nil {
		return nil, err
	}
	for i := 0; i < vertices; i++ {
		for j := 0; j < vertices; j++ {
			if i != j && x.cells[i][j].State() == device.LRS {
				if _, err := g.AddEdge(i, j, 1); err != nil {
					return nil, err
				}
			}
		}
	}
	return g, nil
}

// TuneActiveCells runs the Section 4.3.2 post-fabrication tuning procedure on
// every LRS cell, pulling its resistance toward the nominal LRS value.  It
// returns the worst and mean remaining relative error.
func (x *Crossbar) TuneActiveCells(spec variation.TuningSpec) (worst, mean float64, err error) {
	var active []*device.Memristor
	for i := range x.cells {
		for _, c := range x.cells[i] {
			if c.State() == device.LRS {
				active = append(active, c)
			}
		}
	}
	worst, mean, _, err = variation.TuneAll(active, x.cfg.Memristor.RLRS, spec)
	return worst, mean, err
}

// AreaReport summarises array sizing for a graph, used by the Section 6.2
// utilisation comparison between monolithic and clustered architectures.
type AreaReport struct {
	// CellsTotal is Rows*Cols of the smallest square array that fits the
	// graph (|V| x |V|).
	CellsTotal int
	// CellsUsed is the number of edges (LRS cells).
	CellsUsed int
	// Utilization is CellsUsed / CellsTotal.
	Utilization float64
}

// AreaFor reports the monolithic-crossbar area cost of a graph, independent
// of any particular array instance.
func AreaFor(g *graph.Graph) AreaReport {
	n := g.NumVertices()
	total := n * n
	used := g.NumEdges()
	return AreaReport{
		CellsTotal:  total,
		CellsUsed:   used,
		Utilization: float64(used) / float64(total),
	}
}
