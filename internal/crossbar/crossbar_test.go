package crossbar

import (
	"math"
	"testing"

	"analogflow/internal/device"
	"analogflow/internal/graph"
	"analogflow/internal/rmat"
	"analogflow/internal/variation"
)

// smallConfig returns a small array with fast programming for tests.
func smallConfig(n int) Config {
	cfg := DefaultConfig()
	cfg.Rows, cfg.Cols = n, n
	return cfg
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	cases := []func(*Config){
		func(c *Config) { c.Rows = 1 },
		func(c *Config) { c.Memristor.RLRS = 0 },
		func(c *Config) { c.CycleTime = 0 },
		func(c *Config) { c.ProgramHigh, c.ProgramLow = 0.5, -0.5 },    // full select below threshold
		func(c *Config) { c.ProgramHigh = 2 * c.Memristor.VThreshold }, // half select above threshold
		func(c *Config) { c.CycleTime = c.Memristor.SwitchTime / 2 },
		func(c *Config) { c.VariationSigma = -1 },
	}
	for i, mutate := range cases {
		cfg := DefaultConfig()
		mutate(&cfg)
		if cfg.Validate() == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	if _, err := New(Config{}); err == nil {
		t.Errorf("zero config accepted")
	}
}

func TestNewStartsAllHRS(t *testing.T) {
	x, err := New(smallConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	if x.ActiveCells() != 0 || x.Utilization() != 0 {
		t.Errorf("new crossbar should have no active cells")
	}
	if x.Config().Rows != 8 {
		t.Errorf("config accessor wrong")
	}
	if x.State(0, 0) != device.HRS {
		t.Errorf("cells should start in HRS")
	}
}

func TestConfigureFigure5(t *testing.T) {
	g := graph.PaperFigure5()
	x, err := New(smallConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := x.Configure(g)
	if err != nil {
		t.Fatalf("Configure: %v (report %+v)", err, rep)
	}
	if rep.CellsSet != g.NumEdges() {
		t.Errorf("cells set %d, want %d", rep.CellsSet, g.NumEdges())
	}
	if rep.HalfSelectDisturbances != 0 {
		t.Errorf("half-select disturbances: %d", rep.HalfSelectDisturbances)
	}
	if rep.Cycles != g.NumVertices() {
		t.Errorf("programming cycles %d, want %d (one per row)", rep.Cycles, g.NumVertices())
	}
	if math.Abs(rep.ProgrammingTime-float64(rep.Cycles)*x.Config().CycleTime) > 1e-18 {
		t.Errorf("programming time inconsistent")
	}
	if err := x.Verify(g); err != nil {
		t.Errorf("Verify: %v", err)
	}
	// The edge (s, n1) exists, (n1, s) does not.
	if x.State(0, 1) != device.LRS || x.State(1, 0) != device.HRS {
		t.Errorf("switch states do not match adjacency")
	}
	if x.ActiveCells() != g.NumEdges() {
		t.Errorf("active cells %d, want %d", x.ActiveCells(), g.NumEdges())
	}
	wantUtil := float64(g.NumEdges()) / 64
	if math.Abs(x.Utilization()-wantUtil) > 1e-12 {
		t.Errorf("utilization %g, want %g", x.Utilization(), wantUtil)
	}
	if x.ProgrammingCycles() != rep.Cycles {
		t.Errorf("lifetime cycle counter wrong")
	}
}

func TestReconfigure(t *testing.T) {
	x, err := New(smallConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	g1 := graph.PaperFigure5()
	if _, err := x.Configure(g1); err != nil {
		t.Fatal(err)
	}
	// Second graph with a different topology on the same substrate —
	// the central reconfigurability claim of the paper.
	g2 := graph.MustNew(4, 0, 3)
	g2.MustAddEdge(0, 2, 1)
	g2.MustAddEdge(2, 3, 1)
	rep, err := x.Configure(g2)
	if err != nil {
		t.Fatalf("reconfigure: %v", err)
	}
	if err := x.Verify(g2); err != nil {
		t.Errorf("after reconfiguration: %v", err)
	}
	if rep.CellsCleared == 0 {
		t.Errorf("reconfiguration should have cleared stale cells")
	}
	// Old edges are gone.
	if x.State(0, 1) != device.HRS {
		t.Errorf("stale cell (0,1) still set")
	}
}

func TestConfigureTooLarge(t *testing.T) {
	x, err := New(smallConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	g := rmat.MustGenerate(rmat.DefaultParams(16, 32, 1))
	if x.Fits(graph.PaperFigure5()) {
		t.Errorf("the 5-vertex Figure 5 graph should not fit a 4x4 array")
	}
	if _, err := x.Configure(g); err == nil {
		t.Errorf("oversized graph accepted")
	}
	if _, err := x.ReadBackGraph(0, 15, 16); err == nil {
		t.Errorf("oversized readback accepted")
	}
}

func TestReadBackGraph(t *testing.T) {
	g := graph.PaperFigure5()
	x, err := New(smallConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := x.Configure(g); err != nil {
		t.Fatal(err)
	}
	back, err := x.ReadBackGraph(g.Source(), g.Sink(), g.NumVertices())
	if err != nil {
		t.Fatal(err)
	}
	if back.NumEdges() != g.NumEdges() {
		t.Fatalf("read back %d edges, want %d", back.NumEdges(), g.NumEdges())
	}
	for _, e := range g.Edges() {
		if !back.HasEdge(e.From, e.To) {
			t.Errorf("edge (%d,%d) missing from readback", e.From, e.To)
		}
	}
}

func TestRandomGraphConfiguration(t *testing.T) {
	g := rmat.MustGenerate(rmat.DefaultParams(64, 256, 9))
	cfg := smallConfig(64)
	x, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := x.Configure(g)
	if err != nil {
		t.Fatalf("Configure: %v", err)
	}
	if rep.CellsSet != g.NumEdges() {
		t.Errorf("cells set %d, want %d", rep.CellsSet, g.NumEdges())
	}
	if err := x.Verify(g); err != nil {
		t.Errorf("Verify: %v", err)
	}
}

func TestTuneActiveCells(t *testing.T) {
	cfg := smallConfig(8)
	cfg.VariationSigma = 0.1
	cfg.Seed = 7
	x, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := x.Configure(graph.PaperFigure5()); err != nil {
		t.Fatal(err)
	}
	// Before tuning, at least one active cell deviates noticeably.
	preWorst := 0.0
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			if x.State(i, j) == device.LRS {
				dev := math.Abs(x.Cell(i, j).LRSResistance()-cfg.Memristor.RLRS) / cfg.Memristor.RLRS
				if dev > preWorst {
					preWorst = dev
				}
			}
		}
	}
	if preWorst < 0.01 {
		t.Fatalf("variation too small to exercise tuning: %g", preWorst)
	}
	worst, mean, err := x.TuneActiveCells(variation.DefaultTuning())
	if err != nil {
		t.Fatal(err)
	}
	if worst > variation.DefaultTuning().TargetPrecision || mean > worst {
		t.Errorf("tuning left worst=%g mean=%g", worst, mean)
	}
}

func TestAreaFor(t *testing.T) {
	g := graph.PaperFigure5()
	rep := AreaFor(g)
	if rep.CellsTotal != 25 || rep.CellsUsed != 5 {
		t.Errorf("area report wrong: %+v", rep)
	}
	if math.Abs(rep.Utilization-0.2) > 1e-12 {
		t.Errorf("utilization %g, want 0.2", rep.Utilization)
	}
}
