package maxflow

import (
	"context"
	"math"
	"testing"

	"analogflow/internal/graph"
)

func TestStructureToAppendsEdges(t *testing.T) {
	g := graph.MustNew(4, 0, 3)
	g.MustAddEdge(0, 1, 10)
	g.MustAddEdge(1, 3, 4)
	g.MustAddEdge(0, 2, 3)
	g.MustAddEdge(2, 3, 3)

	for _, alg := range []Algorithm{Dinic, PushRelabel, EdmondsKarp} {
		t.Run(alg.String(), func(t *testing.T) {
			net, err := NewNetwork(g)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := net.Solve(context.Background(), alg); err != nil {
				t.Fatal(err)
			}

			// Append a bypass edge 1->2 and widen 2->3: the warm state must
			// absorb both and re-augment to the fresh optimum.
			g2 := g.Clone()
			g2.MustAddEdge(1, 2, 5)
			caps := make([]float64, g2.NumEdges())
			for i := 0; i < g2.NumEdges(); i++ {
				caps[i] = g2.Edge(i).Capacity
			}
			caps[3] = 9
			g2, err = g2.WithCapacities(caps)
			if err != nil {
				t.Fatal(err)
			}
			if err := net.StructureTo(g2); err != nil {
				t.Fatalf("StructureTo: %v", err)
			}
			warm, err := net.Solve(context.Background(), alg)
			if err != nil {
				t.Fatalf("warm solve: %v", err)
			}
			cold, err := Solve(g2, alg)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(warm.Value-cold.Value) > 1e-9 {
				t.Fatalf("warm value %g != cold value %g", warm.Value, cold.Value)
			}
			if err := VerifyOptimal(g2, warm, 1e-9); err != nil {
				t.Fatalf("warm flow not optimal: %v", err)
			}
		})
	}
}

func TestStructureToDrainsParkedEdges(t *testing.T) {
	g := graph.MustNew(4, 0, 3)
	g.MustAddEdge(0, 1, 10)
	g.MustAddEdge(1, 3, 10)
	g.MustAddEdge(1, 2, 5)
	g.MustAddEdge(2, 3, 5)

	net, err := NewNetwork(g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Solve(context.Background(), Dinic); err != nil {
		t.Fatal(err)
	}

	// Park 1->2 (capacity to 0) while appending a new edge: the flow the
	// parked edge carried must drain, and the appended edge re-routes it.
	g2 := g.Clone()
	if _, err := g2.ApplyStructuralUpdate(graph.StructuralUpdate{
		RemoveEdges: []int{2},
		AddEdges:    []graph.Edge{{From: 0, To: 2, Capacity: 5}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := net.StructureTo(g2); err != nil {
		t.Fatalf("StructureTo: %v", err)
	}
	warm, err := net.Solve(context.Background(), Dinic)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Edge[2] != 0 {
		t.Fatalf("parked edge still carries flow %g", warm.Edge[2])
	}
	cold, err := Solve(g2, Dinic)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(warm.Value-cold.Value) > 1e-9 {
		t.Fatalf("warm value %g != cold value %g", warm.Value, cold.Value)
	}
	if err := VerifyOptimal(g2, warm, 1e-9); err != nil {
		t.Fatalf("warm flow not optimal: %v", err)
	}
}

func TestStructureToRejectsNonExtension(t *testing.T) {
	g := graph.MustNew(3, 0, 2)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 1)
	net, err := NewNetwork(g)
	if err != nil {
		t.Fatal(err)
	}
	other := graph.MustNew(3, 0, 2)
	other.MustAddEdge(1, 2, 1)
	other.MustAddEdge(0, 1, 1)
	if err := net.StructureTo(other); err == nil {
		t.Fatal("reordered edge list must be rejected")
	}
	if err := net.StructureTo(nil); err == nil {
		t.Fatal("nil graph must be rejected")
	}
}
