// Package maxflow implements the classical combinatorial max-flow algorithms
// the paper compares against: Goldberg-Tarjan push-relabel (the paper's CPU
// baseline), Dinic's blocking-flow algorithm, and Edmonds-Karp, together with
// minimum-cut extraction.  All algorithms operate on a shared residual-network
// representation and report results as graph.Flow so that they can be compared
// edge-by-edge with the analog substrate's solutions.
package maxflow

import (
	"context"
	"errors"
	"fmt"
	"math"

	"analogflow/internal/graph"
)

// Algorithm identifies one of the implemented solvers.
type Algorithm int

const (
	// PushRelabel is the Goldberg-Tarjan push-relabel algorithm with
	// highest-label selection, gap and global-relabelling heuristics — the
	// paper's CPU baseline in its large-graph configuration.
	PushRelabel Algorithm = iota
	// Dinic is Dinitz's blocking-flow algorithm.
	Dinic
	// EdmondsKarp is the BFS augmenting-path algorithm.
	EdmondsKarp
)

// String returns the conventional name of the algorithm.
func (a Algorithm) String() string {
	switch a {
	case PushRelabel:
		return "push-relabel"
	case Dinic:
		return "dinic"
	case EdmondsKarp:
		return "edmonds-karp"
	default:
		return fmt.Sprintf("algorithm(%d)", int(a))
	}
}

// ErrUnknownAlgorithm is returned by Solve for an unrecognised Algorithm.
var ErrUnknownAlgorithm = errors.New("maxflow: unknown algorithm")

// Solve runs the selected algorithm on g and returns the resulting flow.
func Solve(g *graph.Graph, alg Algorithm) (*graph.Flow, error) {
	return SolveContext(context.Background(), g, alg)
}

// SolveContext runs the selected algorithm with cooperative cancellation; see
// the per-algorithm Context variants for where the context is checked.
func SolveContext(ctx context.Context, g *graph.Graph, alg Algorithm) (*graph.Flow, error) {
	switch alg {
	case PushRelabel:
		return SolvePushRelabelContext(ctx, g)
	case Dinic:
		return SolveDinicContext(ctx, g)
	case EdmondsKarp:
		return SolveEdmondsKarpContext(ctx, g)
	default:
		return nil, ErrUnknownAlgorithm
	}
}

// arc is a directed arc in the residual network.  Original edges and their
// reverse (residual) arcs are stored in pairs: arc 2i is the forward copy of
// graph edge i and arc 2i+1 is its residual reverse.
type arc struct {
	to  int
	cap float64 // remaining residual capacity
}

// residual is a residual network with paired arcs and a flat (CSR-style)
// adjacency: adj[off[v]:off[v+1]] lists the arc indices out of v.  Within a
// vertex the arcs are ordered by descending index, the exact traversal order
// of the head-inserted linked list this layout replaced, so every algorithm
// visits arcs (and therefore routes flow) identically to the original
// representation while scanning contiguous memory.
type residual struct {
	n     int
	s, t  int
	arcs  []arc
	adj   []int32 // flat arc indices grouped by tail vertex
	off   []int   // len n+1; adjacency bounds per vertex
	gdeps *graph.Graph
	// pooled marks residuals drawn from residualPool (see pools.go); only
	// those are returned by release.
	pooled bool
}

// tail returns the tail vertex of arc a (the head of its paired reverse).
func (r *residual) tail(a int) int { return r.arcs[a^1].to }

// newResidual builds the residual network of g with freshly allocated
// arrays.  Network uses this constructor because it retains the residual
// indefinitely; one-shot solves go through newResidualPooled instead.
func newResidual(g *graph.Graph) *residual {
	r := &residual{}
	r.init(g)
	return r
}

// init (re)builds the residual network of g in place, reusing any backing
// arrays the receiver already holds.
func (r *residual) init(g *graph.Graph) {
	ne := g.NumEdges()
	n := g.NumVertices()
	r.n = n
	r.s = g.Source()
	r.t = g.Sink()
	r.gdeps = g
	r.arcs = growSlice(r.arcs, 2*ne)
	r.adj = growSlice(r.adj, 2*ne)
	r.off = growSlice(r.off, n+1)
	deg := getIntScratch(n)
	for v := range deg {
		deg[v] = 0
	}
	for i := 0; i < ne; i++ {
		e := g.Edge(i)
		r.arcs[2*i] = arc{to: e.To, cap: e.Capacity}
		r.arcs[2*i+1] = arc{to: e.From, cap: 0}
		deg[e.From]++
		deg[e.To]++
	}
	r.off[0] = 0
	for v := 0; v < n; v++ {
		r.off[v+1] = r.off[v] + deg[v]
	}
	// Fill each vertex's segment in descending arc order by scanning the arcs
	// from the highest index down.
	pos := deg // reuse the scratch: copy offsets over the spent degree counts
	copy(pos, r.off[:n])
	for a := 2*ne - 1; a >= 0; a-- {
		tail := r.tail(a)
		r.adj[pos[tail]] = int32(a)
		pos[tail]++
	}
	putIntScratch(deg)
}

// flow extracts the per-edge flow from the residual state: the flow on graph
// edge i equals the capacity accumulated on its reverse arc 2i+1.
func (r *residual) flow() *graph.Flow {
	f := graph.NewFlow(r.gdeps)
	for i := 0; i < r.gdeps.NumEdges(); i++ {
		f.Edge[i] = r.arcs[2*i+1].cap
	}
	f.RecomputeValue(r.gdeps)
	return f
}

// push moves delta units of flow along arc a (and back along its pair).
func (r *residual) push(a int, delta float64) {
	r.arcs[a].cap -= delta
	r.arcs[a^1].cap += delta
}

// maxArcCapacity returns the largest residual capacity, used for scaling
// epsilon tolerances on float capacities.
func (r *residual) maxArcCapacity() float64 {
	var m float64
	for _, a := range r.arcs {
		if a.cap > m {
			m = a.cap
		}
	}
	return m
}

// epsilonFor returns a tolerance used to treat tiny residual capacities as
// zero.  Capacities in this repository are either integers or quantized
// voltage levels, so a relative epsilon is safe.
func epsilonFor(c float64) float64 {
	if c == 0 {
		return 0
	}
	return c * 1e-12
}

// checkSolvable validates the instance before running any algorithm.
func checkSolvable(g *graph.Graph) error {
	if g == nil {
		return errors.New("maxflow: nil graph")
	}
	if err := g.Validate(); err != nil {
		return err
	}
	return nil
}

// MinCut computes a minimum s-t cut from an optimal flow by finding the set of
// vertices reachable from the source in the residual network.  The returned
// cut's capacity equals the max-flow value (max-flow/min-cut theorem), which
// the test-suite uses as a cross-check on every solver.
func MinCut(g *graph.Graph, f *graph.Flow) (*graph.Cut, error) {
	if err := checkSolvable(g); err != nil {
		return nil, err
	}
	if len(f.Edge) != g.NumEdges() {
		return nil, fmt.Errorf("maxflow: flow has %d edges, graph has %d", len(f.Edge), g.NumEdges())
	}
	eps := epsilonFor(g.MaxCapacity())
	// BFS over residual arcs: forward arcs with spare capacity, backward arcs
	// with positive flow.
	sourceSide := make([]bool, g.NumVertices())
	sourceSide[g.Source()] = true
	queue := []int{g.Source()}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, idx := range g.OutEdges(v) {
			e := g.Edge(idx)
			if !sourceSide[e.To] && e.Capacity-f.Edge[idx] > eps {
				sourceSide[e.To] = true
				queue = append(queue, e.To)
			}
		}
		for _, idx := range g.InEdges(v) {
			e := g.Edge(idx)
			if !sourceSide[e.From] && f.Edge[idx] > eps {
				sourceSide[e.From] = true
				queue = append(queue, e.From)
			}
		}
	}
	if sourceSide[g.Sink()] {
		return nil, errors.New("maxflow: flow is not maximum, sink reachable in residual network")
	}
	return graph.CutFromPartition(g, sourceSide)
}

// OptimalValue is a convenience that solves g with Dinic's algorithm (exact,
// strongly polynomial) and returns only the flow value.  The analog-substrate
// experiments use it as the reference for relative-error measurements.
func OptimalValue(g *graph.Graph) (float64, error) {
	return OptimalValueContext(context.Background(), g)
}

// OptimalValueContext is OptimalValue with cooperative cancellation.
func OptimalValueContext(ctx context.Context, g *graph.Graph) (float64, error) {
	f, err := SolveDinicContext(ctx, g)
	if err != nil {
		return 0, err
	}
	return f.Value, nil
}

// VerifyOptimal checks that f is a feasible flow for g whose value matches the
// capacity of some s-t cut within tol; by weak duality that certifies
// optimality.  It is used by tests and by the decomposition driver.
func VerifyOptimal(g *graph.Graph, f *graph.Flow, tol float64) error {
	rep := f.CheckFeasibility(g)
	if !rep.Feasible(tol) {
		return fmt.Errorf("maxflow: infeasible flow: %v", rep)
	}
	cut, err := MinCut(g, f)
	if err != nil {
		return err
	}
	if math.Abs(cut.Capacity-f.Value) > tol {
		return fmt.Errorf("maxflow: flow value %g does not match min-cut capacity %g", f.Value, cut.Capacity)
	}
	return nil
}
