package maxflow

import (
	"context"
	"errors"
	"fmt"

	"analogflow/internal/graph"
)

// Network is a warm-startable residual network: it keeps the residual state
// of the last solve so that a capacity-only update can be absorbed
// incrementally instead of re-solving from scratch.
//
//   - Capacity increases simply widen the forward residual arc; the old flow
//     stays feasible and the next Solve only re-augments.
//   - Capacity decreases below the current flow drain the overflow along
//     reverse (flow-carrying) paths first — cancelling existing s-t flow or
//     cycle flow through the edge — and then the next Solve re-augments to
//     recover whatever the rest of the network can still carry.
//
// Both moves preserve the residual invariants (forward + reverse arc capacity
// equals the edge capacity; the encoded flow is feasible), so any of the three
// algorithms can pick the state up.
//
// A Network is not safe for concurrent use; callers serialise access.
type Network struct {
	g *graph.Graph
	r *residual
}

// ErrCannotDrain is returned when an overflow cannot be drained, which only
// happens when the residual state and the graph disagree structurally.
var ErrCannotDrain = errors.New("maxflow: cannot drain capacity overflow")

// NewNetwork builds a zero-flow residual network for g.
func NewNetwork(g *graph.Graph) (*Network, error) {
	if err := checkSolvable(g); err != nil {
		return nil, err
	}
	return &Network{g: g, r: newResidual(g)}, nil
}

// Graph returns the graph whose capacities the network currently reflects.
func (n *Network) Graph() *graph.Graph { return n.g }

// Flow returns the flow currently encoded in the residual state (feasible by
// construction; maximum after a completed Solve).
func (n *Network) Flow() *graph.Flow { return n.r.flow() }

// Solve augments the current state to a maximum flow with the selected
// algorithm and returns the resulting flow.  Starting from a fresh network
// this is exactly the cold solve of SolveContext; starting from a previously
// solved state after UpdateTo it performs only the incremental work.
//
// On error the network must be discarded: a cancelled Dinic or Edmonds-Karp
// run stops between augmentations (the state is still a feasible flow), but
// a cancelled push-relabel run stops mid-discharge and leaves a preflow with
// unreturned excess — not a flow — so callers uniformly treat a failed Solve
// as poisoning the warm state.
func (n *Network) Solve(ctx context.Context, alg Algorithm) (*graph.Flow, error) {
	var err error
	switch alg {
	case PushRelabel:
		err = runPushRelabel(ctx, n.r)
	case Dinic:
		err = runDinic(ctx, n.r)
	case EdmondsKarp:
		err = runEdmondsKarp(ctx, n.r)
	default:
		err = ErrUnknownAlgorithm
	}
	if err != nil {
		return nil, err
	}
	return n.r.flow(), nil
}

// UpdateTo adjusts the residual state so that it reflects g2's capacities.
// g2 must be structurally identical to the network's graph (same vertices,
// terminals and edge list); only capacities may differ.  After UpdateTo the
// encoded flow is feasible for g2 but not necessarily maximum — call Solve to
// re-augment.
func (n *Network) UpdateTo(g2 *graph.Graph) error {
	r := n.r
	if g2 == nil {
		return fmt.Errorf("maxflow: UpdateTo(nil)")
	}
	if g2.NumVertices() != r.n || g2.NumEdges() != len(r.arcs)/2 ||
		g2.Source() != r.s || g2.Sink() != r.t {
		return fmt.Errorf("maxflow: updated graph %v is structurally different from the network's %v", g2, n.g)
	}
	ne := g2.NumEdges()
	for i := 0; i < ne; i++ {
		e := g2.Edge(i)
		if r.arcs[2*i].to != e.To || r.arcs[2*i+1].to != e.From {
			return fmt.Errorf("maxflow: updated graph edge %d (%d->%d) does not match the network's edge list", i, e.From, e.To)
		}
	}
	eps := epsilonFor(r.maxArcCapacity())
	// Pass 1: apply every capacity change that keeps the current flow
	// feasible; collect the edges whose flow now overflows the new capacity.
	var overflow []int
	for i := 0; i < ne; i++ {
		oldCap := r.arcs[2*i].cap + r.arcs[2*i+1].cap
		newCap := g2.Edge(i).Capacity
		if oldCap == newCap {
			continue
		}
		forward := r.arcs[2*i].cap + (newCap - oldCap)
		if forward >= 0 {
			r.arcs[2*i].cap = forward
		} else {
			overflow = append(overflow, i)
		}
	}
	// Pass 2: drain the overflowing edges.
	for _, i := range overflow {
		if err := n.drain(i, g2.Edge(i).Capacity, eps); err != nil {
			return err
		}
	}
	n.g = g2
	return nil
}

// StructureTo adjusts the residual state to reflect g2, which must be a
// structural extension of the network's graph (graph.Extends: same vertices
// and terminals, existing edge list as an endpoint-identical prefix).  The
// pre-existing edges keep their flow — capacity deltas widen or drain exactly
// like UpdateTo, including parked edges draining to capacity 0 — and every
// appended edge gets a fresh zero-flow arc pair spliced into a rebuilt
// adjacency.  The encoded flow stays feasible for g2 (new edges carry no
// flow), so a following Solve performs only the incremental augmentation.
// This is how the CPU backends absorb StructuralUpdate insertions within
// their slack budget instead of rebuilding the residual network.  On error
// the network must be discarded, like a failed UpdateTo.
func (n *Network) StructureTo(g2 *graph.Graph) error {
	if g2 == nil {
		return fmt.Errorf("maxflow: StructureTo(nil)")
	}
	if !graph.Extends(n.g, g2) {
		return fmt.Errorf("maxflow: graph %v is not a structural extension of the network's %v", g2, n.g)
	}
	if g2.NumEdges() == n.g.NumEdges() {
		return n.UpdateTo(g2)
	}
	r := n.r
	oldNE := len(r.arcs) / 2
	ne := g2.NumEdges()
	for i := oldNE; i < ne; i++ {
		e := g2.Edge(i)
		r.arcs = append(r.arcs, arc{to: e.To, cap: e.Capacity}, arc{to: e.From, cap: 0})
	}
	// Rebuild the CSR adjacency with the same descending-arc-order fill as
	// newResidual, so traversal order — and hence flow routing — matches a
	// residual network built fresh for g2.
	deg := make([]int, r.n)
	for i := 0; i < ne; i++ {
		e := g2.Edge(i)
		deg[e.From]++
		deg[e.To]++
	}
	r.adj = make([]int32, 2*ne)
	for v := 0; v < r.n; v++ {
		r.off[v+1] = r.off[v] + deg[v]
	}
	pos := make([]int, r.n)
	copy(pos, r.off)
	for a := 2*ne - 1; a >= 0; a-- {
		tail := r.tail(a)
		r.adj[pos[tail]] = int32(a)
		pos[tail]++
	}
	r.gdeps = g2
	n.g = g2
	// Capacity deltas on the pre-existing edges follow the UpdateTo
	// discipline: widen in place first, then drain the overflowing edges.
	eps := epsilonFor(r.maxArcCapacity())
	var overflow []int
	for i := 0; i < oldNE; i++ {
		oldCap := r.arcs[2*i].cap + r.arcs[2*i+1].cap
		newCap := g2.Edge(i).Capacity
		if oldCap == newCap {
			continue
		}
		forward := r.arcs[2*i].cap + (newCap - oldCap)
		if forward >= 0 {
			r.arcs[2*i].cap = forward
		} else {
			overflow = append(overflow, i)
		}
	}
	for _, i := range overflow {
		if err := n.drain(i, g2.Edge(i).Capacity, eps); err != nil {
			return err
		}
	}
	return nil
}

// drain reduces the flow on edge i to newCap by cancelling the excess along
// reverse (flow-carrying) paths.  With e = (u, v) carrying flow f > newCap,
// the d = f - newCap excess units must stop traversing e; every unit of them
// belongs, by flow decomposition, either to an s-t path through e or to a
// cycle through e.  Cancelling a path unit means walking flow-carrying arcs
// backwards from u to s and from v's downstream side back from t — which is a
// single u ⇝ v walk over reverse arcs once the implicit t→s return arc of the
// circulation formulation is added.  Cancelling a cycle unit is a direct
// u ⇝ v walk over reverse arcs.  drain therefore repeatedly finds a u ⇝ v
// path over reverse arcs, where reaching s additionally offers a free
// teleport to t (the implicit return arc), and pushes the bottleneck along
// it, until the whole excess is gone.
func (n *Network) drain(i int, newCap, eps float64) error {
	r := n.r
	// Earlier drains may already have reduced this edge's flow.
	f := r.arcs[2*i+1].cap
	if f <= newCap {
		r.arcs[2*i].cap = newCap - f
		return nil
	}
	d := f - newCap
	r.arcs[2*i].cap = 0
	r.arcs[2*i+1].cap = newCap
	u := r.tail(2 * i)
	v := r.arcs[2*i].to

	parent := make([]int, r.n) // arc used to reach the vertex, -1 unseen, -2 root, -3 teleport
	queue := make([]int, 0, r.n)
	for d > eps {
		for j := range parent {
			parent[j] = -1
		}
		parent[u] = -2
		queue = append(queue[:0], u)
		found := false
		// label marks a newly reached vertex; reaching the source additionally
		// unlocks the implicit t→s return arc of the circulation formulation,
		// so the cancellation can continue from the sink.
		var label func(x, via int)
		label = func(x, via int) {
			parent[x] = via
			if x == v {
				found = true
				return
			}
			queue = append(queue, x)
			if x == r.s && parent[r.t] == -1 {
				label(r.t, -3)
			}
		}
		if u == r.s && parent[r.t] == -1 {
			label(r.t, -3)
		}
		for qh := 0; qh < len(queue) && !found; qh++ {
			x := queue[qh]
			for p := r.off[x]; p < r.off[x+1]; p++ {
				a := int(r.adj[p])
				if a&1 == 0 {
					continue // reverse (flow-carrying) arcs only
				}
				to := r.arcs[a].to
				if r.arcs[a].cap <= eps || parent[to] != -1 {
					continue
				}
				label(to, a)
				if found {
					break
				}
			}
		}
		if !found {
			return fmt.Errorf("%w: edge %d still carries %g above its new capacity", ErrCannotDrain, i, d)
		}
		// Bottleneck over the real arcs of the path (the teleport is free).
		bottleneck := d
		for x := v; x != u; {
			a := parent[x]
			if a == -3 {
				x = r.s
				continue
			}
			if r.arcs[a].cap < bottleneck {
				bottleneck = r.arcs[a].cap
			}
			x = r.tail(a)
		}
		if bottleneck <= eps {
			return fmt.Errorf("%w: edge %d drain stalled with %g left", ErrCannotDrain, i, d)
		}
		for x := v; x != u; {
			a := parent[x]
			if a == -3 {
				x = r.s
				continue
			}
			r.push(a, bottleneck)
			x = r.tail(a)
		}
		d -= bottleneck
	}
	return nil
}
