package maxflow

import (
	"context"

	"analogflow/internal/graph"
)

// SolvePushRelabelFIFO is the retained pre-heuristic push-relabel kernel:
// FIFO active-vertex selection, a gap heuristic that scans all n vertices on
// every gap event, and global relabelling on a fixed every-n-relabels
// schedule.  Production dispatch (Algorithm PushRelabel, Network.Solve) uses
// the highest-label kernel in pushrelabel.go; this one is kept verbatim as
// the baseline that BenchmarkLargeGridSolve measures the heuristics against
// and as an independent differential oracle in the tests.  It is frozen:
// performance work goes into the highest-label kernel only.
func SolvePushRelabelFIFO(g *graph.Graph) (*graph.Flow, error) {
	return SolvePushRelabelFIFOContext(context.Background(), g)
}

// SolvePushRelabelFIFOContext is SolvePushRelabelFIFO with cooperative
// cancellation, checked every few thousand discharge operations.
func SolvePushRelabelFIFOContext(ctx context.Context, g *graph.Graph) (*graph.Flow, error) {
	if err := checkSolvable(g); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	r := newResidual(g)
	if err := runPushRelabelFIFO(ctx, r); err != nil {
		return nil, err
	}
	return r.flow(), nil
}

// runPushRelabelFIFO augments the residual network to a maximum flow with the
// FIFO push-relabel baseline.  Like the other run helpers it accepts any
// feasible starting state.
func runPushRelabelFIFO(ctx context.Context, r *residual) error {
	return newFIFOPushRelabelState(r).run(ctx)
}

type fifoPushRelabelState struct {
	r      *residual
	excess []float64
	height []int
	// countHeight[h] is the number of vertices at height h, used by the gap
	// heuristic.
	countHeight []int
	// active is a FIFO of active vertices: enqueue appends, the run loop pops
	// from qhead.  The slice is compacted whenever the dead prefix dominates.
	active  []int
	qhead   int
	inQueue []bool
	eps     float64
	// relabelBudget triggers a global relabelling once enough relabel
	// operations have occurred.
	relabelSinceGlobal int
	relabelThreshold   int
	// dist and bfsQueue are globalRelabel scratch buffers.
	dist     []int
	bfsQueue []int
}

func newFIFOPushRelabelState(r *residual) *fifoPushRelabelState {
	n := r.n
	st := &fifoPushRelabelState{
		r:           r,
		excess:      make([]float64, n),
		height:      make([]int, n),
		countHeight: make([]int, 2*n+1),
		active:      make([]int, 0, n),
		inQueue:     make([]bool, n),
		eps:         epsilonFor(r.maxArcCapacity()),
		dist:        make([]int, n),
		bfsQueue:    make([]int, 0, n),
	}
	st.relabelThreshold = n
	if st.relabelThreshold < 16 {
		st.relabelThreshold = 16
	}
	return st
}

func (st *fifoPushRelabelState) run(ctx context.Context) error {
	r := st.r
	n := r.n
	// Initialise: source at height n, saturate all source-adjacent arcs.
	st.height[r.s] = n
	for v := 0; v < n; v++ {
		if v != r.s {
			st.countHeight[0]++
		}
	}
	st.countHeight[n]++
	for p := r.off[r.s]; p < r.off[r.s+1]; p++ {
		a := int(r.adj[p])
		if r.arcs[a].cap > st.eps {
			delta := r.arcs[a].cap
			to := r.arcs[a].to
			r.push(a, delta)
			st.excess[to] += delta
			st.excess[r.s] -= delta
			st.enqueue(to)
		}
	}
	st.globalRelabel()

	discharges := 0
	for st.qhead < len(st.active) {
		discharges++
		if discharges&0xfff == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		v := st.active[st.qhead]
		st.qhead++
		if st.qhead > 1024 && st.qhead*2 > len(st.active) {
			st.active = append(st.active[:0], st.active[st.qhead:]...)
			st.qhead = 0
		}
		st.inQueue[v] = false
		st.discharge(v)
		if st.relabelSinceGlobal >= st.relabelThreshold {
			st.globalRelabel()
			st.relabelSinceGlobal = 0
		}
	}
	return nil
}

// enqueue marks v active if it carries excess and is neither terminal.
func (st *fifoPushRelabelState) enqueue(v int) {
	if v == st.r.s || v == st.r.t || st.inQueue[v] {
		return
	}
	if st.excess[v] > st.eps {
		st.inQueue[v] = true
		st.active = append(st.active, v)
	}
}

// discharge pushes the excess at v until it is exhausted or v is relabelled.
func (st *fifoPushRelabelState) discharge(v int) {
	r := st.r
	for st.excess[v] > st.eps {
		pushed := false
		for p := r.off[v]; p < r.off[v+1]; p++ {
			a := int(r.adj[p])
			arc := &r.arcs[a]
			if arc.cap <= st.eps || st.height[v] != st.height[arc.to]+1 {
				continue
			}
			delta := st.excess[v]
			if arc.cap < delta {
				delta = arc.cap
			}
			r.push(a, delta)
			st.excess[v] -= delta
			st.excess[arc.to] += delta
			st.enqueue(arc.to)
			pushed = true
			if st.excess[v] <= st.eps {
				break
			}
		}
		if st.excess[v] <= st.eps {
			return
		}
		if !pushed {
			if !st.relabel(v) {
				return
			}
		}
	}
}

// relabel raises v to one more than its lowest admissible neighbour.  It
// returns false when v became unreachable (height >= 2n), in which case its
// excess can never reach the sink and is abandoned (it flows back to the
// source implicitly via the height function).
func (st *fifoPushRelabelState) relabel(v int) bool {
	r := st.r
	oldHeight := st.height[v]
	minH := 2 * r.n
	for p := r.off[v]; p < r.off[v+1]; p++ {
		a := r.adj[p]
		if r.arcs[a].cap > st.eps && st.height[r.arcs[a].to] < minH {
			minH = st.height[r.arcs[a].to]
		}
	}
	newHeight := minH + 1
	if newHeight >= 2*r.n {
		newHeight = 2 * r.n
	}
	st.countHeight[oldHeight]--
	st.height[v] = newHeight
	st.countHeight[newHeight]++
	st.relabelSinceGlobal++

	// Gap heuristic: if no vertex remains at oldHeight and oldHeight < n,
	// every vertex above the gap can never route flow to the sink; lift them
	// all above n at once.
	if oldHeight < r.n && st.countHeight[oldHeight] == 0 {
		for u := 0; u < r.n; u++ {
			if u != r.s && st.height[u] > oldHeight && st.height[u] < r.n {
				st.countHeight[st.height[u]]--
				st.height[u] = r.n + 1
				st.countHeight[r.n+1]++
			}
		}
	}
	return st.height[v] < 2*r.n
}

// globalRelabel recomputes exact heights as BFS distances to the sink in the
// residual network (and to the source for disconnected vertices).
func (st *fifoPushRelabelState) globalRelabel() {
	r := st.r
	n := r.n
	const unreached = -1
	dist := st.dist
	for i := range dist {
		dist[i] = unreached
	}
	// Backward BFS from the sink over arcs with residual capacity in the
	// forward direction (i.e. arcs a with cap(a)>0 ending at the frontier).
	queue := append(st.bfsQueue[:0], r.t)
	dist[r.t] = 0
	for qh := 0; qh < len(queue); qh++ {
		v := queue[qh]
		for p := r.off[v]; p < r.off[v+1]; p++ {
			a := int(r.adj[p])
			// The arc a goes v->to; flow could move to->v if the paired arc
			// a^1 has residual capacity.
			to := r.arcs[a].to
			if dist[to] == unreached && r.arcs[a^1].cap > st.eps {
				dist[to] = dist[v] + 1
				queue = append(queue, to)
			}
		}
	}
	st.bfsQueue = queue // keep any grown capacity for the next pass
	for i := range st.countHeight {
		st.countHeight[i] = 0
	}
	for v := 0; v < n; v++ {
		switch {
		case v == r.s:
			st.height[v] = n
		case dist[v] != unreached:
			st.height[v] = dist[v]
		default:
			st.height[v] = n + 1
		}
		st.countHeight[st.height[v]]++
	}
	// Re-seed the active queue: heights changed, so admissibility changed.
	st.active = st.active[:0]
	st.qhead = 0
	for v := 0; v < n; v++ {
		st.inQueue[v] = false
	}
	for v := 0; v < n; v++ {
		st.enqueue(v)
	}
}
