package maxflow

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"analogflow/internal/graph"
	"analogflow/internal/rmat"
)

// applyUpdate returns a copy of g with the given capacity update applied.
func applyUpdate(t *testing.T, g *graph.Graph, u graph.CapacityUpdate) *graph.Graph {
	t.Helper()
	g2 := g.Clone()
	if _, err := g2.ApplyCapacityUpdate(u); err != nil {
		t.Fatal(err)
	}
	return g2
}

// TestNetworkColdMatchesSolve pins that a fresh Network's Solve is the same
// computation as the package-level entry points: identical flows, edge for
// edge.
func TestNetworkColdMatchesSolve(t *testing.T) {
	graphs := []*graph.Graph{
		graph.PaperFigure5(),
		rmat.MustGenerate(rmat.SparseParams(64, 3)),
		rmat.MustGenerate(rmat.DenseParams(48, 5)),
	}
	for _, g := range graphs {
		for _, alg := range []Algorithm{Dinic, EdmondsKarp, PushRelabel} {
			want, err := Solve(g, alg)
			if err != nil {
				t.Fatal(err)
			}
			net, err := NewNetwork(g)
			if err != nil {
				t.Fatal(err)
			}
			got, err := net.Solve(context.Background(), alg)
			if err != nil {
				t.Fatal(err)
			}
			if got.Value != want.Value {
				t.Fatalf("%s on %v: cold network value %g, direct %g", alg, g, got.Value, want.Value)
			}
			for i := range want.Edge {
				if got.Edge[i] != want.Edge[i] {
					t.Fatalf("%s on %v: edge %d flow %g, direct %g", alg, g, i, got.Edge[i], want.Edge[i])
				}
			}
		}
	}
}

// TestNetworkWarmMatchesCold runs a randomized sequence of capacity updates —
// increases, decreases below the carried flow (forcing drains), and zeroing —
// and checks after every step that the warm re-solve reaches exactly the cold
// max-flow value with a verified-optimal flow.
func TestNetworkWarmMatchesCold(t *testing.T) {
	for _, alg := range []Algorithm{Dinic, EdmondsKarp, PushRelabel} {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			g := rmat.MustGenerate(rmat.SparseParams(48, 11))
			net, err := NewNetwork(g)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := net.Solve(context.Background(), alg); err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(7))
			for step := 0; step < 12; step++ {
				// Mutate a handful of random edges; bias toward decreases so
				// the drain path is exercised hard.
				var upd graph.CapacityUpdate
				seen := map[int]bool{}
				for len(upd.Edges) < 5 {
					e := rng.Intn(g.NumEdges())
					if seen[e] {
						continue
					}
					seen[e] = true
					var c float64
					switch rng.Intn(4) {
					case 0:
						c = g.Edge(e).Capacity + float64(rng.Intn(50))
					case 1, 2:
						c = math.Floor(g.Edge(e).Capacity / 2)
					default:
						c = 0
					}
					upd.Edges = append(upd.Edges, e)
					upd.Capacities = append(upd.Capacities, c)
				}
				g = applyUpdate(t, g, upd)
				if err := net.UpdateTo(g); err != nil {
					t.Fatalf("step %d: UpdateTo: %v", step, err)
				}
				// The drained intermediate state must already be feasible.
				if rep := net.Flow().CheckFeasibility(g); !rep.Feasible(1e-9) {
					t.Fatalf("step %d: drained flow infeasible: %v", step, rep)
				}
				warm, err := net.Solve(context.Background(), alg)
				if err != nil {
					t.Fatalf("step %d: warm solve: %v", step, err)
				}
				cold, err := Solve(g, alg)
				if err != nil {
					t.Fatalf("step %d: cold solve: %v", step, err)
				}
				if warm.Value != cold.Value {
					t.Fatalf("step %d: warm value %g, cold value %g", step, warm.Value, cold.Value)
				}
				if err := VerifyOptimal(g, warm, 1e-6); err != nil {
					t.Fatalf("step %d: warm flow not optimal: %v", step, err)
				}
			}
		})
	}
}

// TestNetworkUpdateToRejectsStructuralChange pins that UpdateTo only accepts
// capacity-level differences.
func TestNetworkUpdateToRejectsStructuralChange(t *testing.T) {
	g := graph.PaperFigure5()
	net, err := NewNetwork(g)
	if err != nil {
		t.Fatal(err)
	}
	bigger := graph.MustNew(5, 0, 4)
	bigger.MustAddEdge(0, 1, 3)
	if err := net.UpdateTo(bigger); err == nil {
		t.Fatal("UpdateTo accepted a graph with a different edge count")
	}
	rewired := graph.MustNew(5, 0, 4)
	rewired.MustAddEdge(0, 1, 3)
	rewired.MustAddEdge(1, 2, 2)
	rewired.MustAddEdge(1, 3, 1)
	rewired.MustAddEdge(2, 4, 1)
	rewired.MustAddEdge(3, 2, 2) // endpoint differs from figure5's edge 4
	if err := net.UpdateTo(rewired); err == nil {
		t.Fatal("UpdateTo accepted a rewired edge list")
	}
	if err := net.UpdateTo(nil); err == nil {
		t.Fatal("UpdateTo accepted nil")
	}
}
