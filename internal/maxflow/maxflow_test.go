package maxflow

import (
	"math"
	"testing"
	"testing/quick"

	"analogflow/internal/graph"
	"analogflow/internal/rmat"
)

var allAlgorithms = []Algorithm{PushRelabel, Dinic, EdmondsKarp}

func solveOrFatal(t *testing.T, g *graph.Graph, alg Algorithm) *graph.Flow {
	t.Helper()
	f, err := Solve(g, alg)
	if err != nil {
		t.Fatalf("%v: %v", alg, err)
	}
	return f
}

func TestAlgorithmString(t *testing.T) {
	if PushRelabel.String() != "push-relabel" || Dinic.String() != "dinic" || EdmondsKarp.String() != "edmonds-karp" {
		t.Errorf("algorithm names wrong")
	}
	if Algorithm(99).String() == "" {
		t.Errorf("unknown algorithm should still stringify")
	}
}

func TestSolveUnknownAlgorithm(t *testing.T) {
	if _, err := Solve(graph.PaperFigure5(), Algorithm(99)); err != ErrUnknownAlgorithm {
		t.Errorf("expected ErrUnknownAlgorithm, got %v", err)
	}
}

func TestSolveNilGraph(t *testing.T) {
	for _, alg := range allAlgorithms {
		if _, err := Solve(nil, alg); err == nil {
			t.Errorf("%v accepted nil graph", alg)
		}
	}
}

func TestPaperFigure5(t *testing.T) {
	g := graph.PaperFigure5()
	for _, alg := range allAlgorithms {
		f := solveOrFatal(t, g, alg)
		if math.Abs(f.Value-graph.PaperFigure5MaxFlow) > 1e-9 {
			t.Errorf("%v: flow value %g, want %g", alg, f.Value, graph.PaperFigure5MaxFlow)
		}
		if err := VerifyOptimal(g, f, 1e-9); err != nil {
			t.Errorf("%v: %v", alg, err)
		}
		// The optimum is unique on this instance: x1=2, x2=1, x3=1, x4=1, x5=1.
		want := []float64{2, 1, 1, 1, 1}
		for i, w := range want {
			if math.Abs(f.Edge[i]-w) > 1e-9 {
				t.Errorf("%v: edge %d flow %g, want %g", alg, i, f.Edge[i], w)
			}
		}
	}
}

func TestPaperFigure15(t *testing.T) {
	g := graph.PaperFigure15()
	for _, alg := range allAlgorithms {
		f := solveOrFatal(t, g, alg)
		if math.Abs(f.Value-graph.PaperFigure15MaxFlow) > 1e-9 {
			t.Errorf("%v: flow value %g, want %g", alg, f.Value, graph.PaperFigure15MaxFlow)
		}
	}
}

func TestDisconnectedSink(t *testing.T) {
	g := graph.MustNew(4, 0, 3)
	g.MustAddEdge(0, 1, 5)
	g.MustAddEdge(1, 2, 5)
	// no edge into vertex 3
	for _, alg := range allAlgorithms {
		f := solveOrFatal(t, g, alg)
		if f.Value != 0 {
			t.Errorf("%v: flow on disconnected graph %g, want 0", alg, f.Value)
		}
	}
}

func TestNoEdges(t *testing.T) {
	g := graph.MustNew(2, 0, 1)
	for _, alg := range allAlgorithms {
		f := solveOrFatal(t, g, alg)
		if f.Value != 0 || len(f.Edge) != 0 {
			t.Errorf("%v: empty graph misbehaved", alg)
		}
	}
}

func TestSingleEdge(t *testing.T) {
	g := graph.MustNew(2, 0, 1)
	g.MustAddEdge(0, 1, 7.5)
	for _, alg := range allAlgorithms {
		f := solveOrFatal(t, g, alg)
		if math.Abs(f.Value-7.5) > 1e-9 {
			t.Errorf("%v: single edge flow %g, want 7.5", alg, f.Value)
		}
	}
}

func TestParallelEdges(t *testing.T) {
	g := graph.MustNew(3, 0, 2)
	g.MustAddEdge(0, 1, 2)
	g.MustAddEdge(0, 1, 3)
	g.MustAddEdge(1, 2, 4)
	for _, alg := range allAlgorithms {
		f := solveOrFatal(t, g, alg)
		if math.Abs(f.Value-4) > 1e-9 {
			t.Errorf("%v: parallel edge flow %g, want 4", alg, f.Value)
		}
	}
}

func TestAntiparallelEdges(t *testing.T) {
	g := graph.MustNew(4, 0, 3)
	g.MustAddEdge(0, 1, 10)
	g.MustAddEdge(0, 2, 10)
	g.MustAddEdge(1, 2, 5)
	g.MustAddEdge(2, 1, 5)
	g.MustAddEdge(1, 3, 10)
	g.MustAddEdge(2, 3, 10)
	for _, alg := range allAlgorithms {
		f := solveOrFatal(t, g, alg)
		if math.Abs(f.Value-20) > 1e-9 {
			t.Errorf("%v: flow %g, want 20", alg, f.Value)
		}
	}
}

func TestBottleneckDiamond(t *testing.T) {
	// Classic diamond with a cross edge that enables extra flow only if the
	// algorithm reroutes correctly.
	g := graph.MustNew(4, 0, 3)
	g.MustAddEdge(0, 1, 10)
	g.MustAddEdge(0, 2, 10)
	g.MustAddEdge(1, 2, 1)
	g.MustAddEdge(1, 3, 8)
	g.MustAddEdge(2, 3, 11)
	for _, alg := range allAlgorithms {
		f := solveOrFatal(t, g, alg)
		if math.Abs(f.Value-19) > 1e-9 {
			t.Errorf("%v: flow %g, want 19", alg, f.Value)
		}
		if err := VerifyOptimal(g, f, 1e-9); err != nil {
			t.Errorf("%v: %v", alg, err)
		}
	}
}

func TestFractionalCapacities(t *testing.T) {
	g := graph.MustNew(4, 0, 3)
	g.MustAddEdge(0, 1, 0.3)
	g.MustAddEdge(0, 2, 0.7)
	g.MustAddEdge(1, 3, 0.5)
	g.MustAddEdge(2, 3, 0.45)
	for _, alg := range allAlgorithms {
		f := solveOrFatal(t, g, alg)
		if math.Abs(f.Value-0.75) > 1e-9 {
			t.Errorf("%v: flow %g, want 0.75", alg, f.Value)
		}
	}
}

func TestMinCutMatchesFlow(t *testing.T) {
	g := graph.PaperFigure5()
	f := solveOrFatal(t, g, Dinic)
	cut, err := MinCut(g, f)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cut.Capacity-f.Value) > 1e-9 {
		t.Errorf("min cut %g != max flow %g", cut.Capacity, f.Value)
	}
	// The min cut of Figure 5 separates {s, n1, n2} from {n3, t}... or an
	// equivalent one; what matters is capacity 2 and a valid partition.
	if !cut.SourceSide[g.Source()] || cut.SourceSide[g.Sink()] {
		t.Errorf("cut partition does not separate terminals")
	}
}

func TestMinCutRejectsNonMaximumFlow(t *testing.T) {
	g := graph.PaperFigure5()
	f := graph.NewFlow(g) // zero flow is feasible but not maximum
	if _, err := MinCut(g, f); err == nil {
		t.Errorf("MinCut accepted a non-maximum flow")
	}
}

func TestMinCutFlowSizeMismatch(t *testing.T) {
	g := graph.PaperFigure5()
	if _, err := MinCut(g, &graph.Flow{Edge: []float64{1}}); err == nil {
		t.Errorf("MinCut accepted mismatched flow")
	}
}

func TestVerifyOptimalRejectsInfeasible(t *testing.T) {
	g := graph.PaperFigure5()
	f := graph.NewFlow(g)
	f.Edge[0] = 100 // violates capacity
	if err := VerifyOptimal(g, f, 1e-9); err == nil {
		t.Errorf("VerifyOptimal accepted an infeasible flow")
	}
}

func TestOptimalValue(t *testing.T) {
	v, err := OptimalValue(graph.PaperFigure5())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-2) > 1e-9 {
		t.Errorf("OptimalValue = %g, want 2", v)
	}
}

func TestLayeredLadderNetwork(t *testing.T) {
	// A deeper network exercising global relabelling: k layers of two
	// vertices each with crossing edges.
	const layers = 12
	n := 2 + 2*layers
	g := graph.MustNew(n, 0, n-1)
	// source to first layer
	g.MustAddEdge(0, 1, 6)
	g.MustAddEdge(0, 2, 6)
	for l := 0; l < layers-1; l++ {
		a, b := 1+2*l, 2+2*l
		c, d := 3+2*l, 4+2*l
		g.MustAddEdge(a, c, 4)
		g.MustAddEdge(a, d, 2)
		g.MustAddEdge(b, c, 2)
		g.MustAddEdge(b, d, 4)
	}
	g.MustAddEdge(n-3, n-1, 6)
	g.MustAddEdge(n-2, n-1, 6)
	want := 12.0
	for _, alg := range allAlgorithms {
		f := solveOrFatal(t, g, alg)
		if math.Abs(f.Value-want) > 1e-9 {
			t.Errorf("%v: ladder flow %g, want %g", alg, f.Value, want)
		}
		if err := VerifyOptimal(g, f, 1e-9); err != nil {
			t.Errorf("%v: %v", alg, err)
		}
	}
}

// Property test: on random R-MAT instances all three algorithms agree on the
// flow value, produce feasible flows, and match the min-cut capacity.
func TestAlgorithmsAgreeOnRandomGraphs(t *testing.T) {
	f := func(seed int64) bool {
		n := 10 + int(uint64(seed)%40)
		g, err := rmat.Generate(rmat.DefaultParams(n, 4*n, seed))
		if err != nil {
			return false
		}
		var values []float64
		for _, alg := range allAlgorithms {
			fl, err := Solve(g, alg)
			if err != nil {
				return false
			}
			if !fl.CheckFeasibility(g).Feasible(1e-6) {
				return false
			}
			values = append(values, fl.Value)
		}
		for i := 1; i < len(values); i++ {
			if math.Abs(values[i]-values[0]) > 1e-6 {
				return false
			}
		}
		// Min-cut duality for the Dinic solution.
		fl, _ := Solve(g, Dinic)
		cut, err := MinCut(g, fl)
		if err != nil {
			return false
		}
		return math.Abs(cut.Capacity-fl.Value) <= 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestLargeSparseInstance(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping large instance in -short mode")
	}
	g := rmat.MustGenerate(rmat.SparseParams(1000, 99))
	fPR := solveOrFatal(t, g, PushRelabel)
	fD := solveOrFatal(t, g, Dinic)
	if math.Abs(fPR.Value-fD.Value) > 1e-6 {
		t.Errorf("push-relabel %g vs dinic %g", fPR.Value, fD.Value)
	}
	if err := VerifyOptimal(g, fPR, 1e-6); err != nil {
		t.Errorf("push-relabel solution not optimal: %v", err)
	}
}
