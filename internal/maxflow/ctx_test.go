package maxflow

import (
	"context"
	"errors"
	"testing"

	"analogflow/internal/graph"
	"analogflow/internal/rmat"
)

// TestContextVariantsAbortWhenCancelled pins that every algorithm's Context
// variant returns the context's error instead of a flow once the context is
// cancelled — the checks live inside the augmenting-path / discharge loops,
// guarded by a cheap upfront check so even tiny instances observe it.
func TestContextVariantsAbortWhenCancelled(t *testing.T) {
	g := rmat.MustGenerate(rmat.SparseParams(96, 4))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, alg := range []Algorithm{PushRelabel, Dinic, EdmondsKarp} {
		if _, err := SolveContext(ctx, g, alg); !errors.Is(err, context.Canceled) {
			t.Errorf("%v: want context.Canceled, got %v", alg, err)
		}
	}
	if _, err := OptimalValueContext(ctx, g); !errors.Is(err, context.Canceled) {
		t.Errorf("OptimalValueContext: want context.Canceled, got %v", err)
	}
}

// TestContextVariantsMatchPlainSolve pins that a live context changes
// nothing: the Context variants produce the same flow value and the same
// per-edge flows as the plain entry points.
func TestContextVariantsMatchPlainSolve(t *testing.T) {
	for _, g := range []*graph.Graph{graph.PaperFigure5(), rmat.MustGenerate(rmat.SparseParams(64, 8))} {
		for _, alg := range []Algorithm{PushRelabel, Dinic, EdmondsKarp} {
			plain, err := Solve(g, alg)
			if err != nil {
				t.Fatal(err)
			}
			withCtx, err := SolveContext(context.Background(), g, alg)
			if err != nil {
				t.Fatal(err)
			}
			if plain.Value != withCtx.Value {
				t.Errorf("%v: value differs with context: %g vs %g", alg, plain.Value, withCtx.Value)
			}
			for i := range plain.Edge {
				if plain.Edge[i] != withCtx.Edge[i] {
					t.Errorf("%v: edge %d flow differs: %g vs %g", alg, i, plain.Edge[i], withCtx.Edge[i])
					break
				}
			}
		}
	}
}
