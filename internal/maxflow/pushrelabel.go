package maxflow

import (
	"context"

	"analogflow/internal/graph"
)

// SolvePushRelabel computes a maximum flow with the Goldberg-Tarjan
// push-relabel algorithm in its large-graph configuration: highest-label
// active-vertex selection through a height-indexed bucket structure, a gap
// heuristic that relocates exactly the vertices above a gap (per-height
// vertex lists instead of a full scan), and periodic global relabelling via
// reverse BFS on the residual network on a work-based schedule.  This is the
// configuration the reference implementations use once instances reach the
// 10^5–10^6 vertex range of the paper's vision-style grid workloads.
func SolvePushRelabel(g *graph.Graph) (*graph.Flow, error) {
	return SolvePushRelabelContext(context.Background(), g)
}

// SolvePushRelabelContext is SolvePushRelabel with cooperative cancellation,
// checked every few thousand discharge operations so the per-operation cost
// stays negligible while cancellation still lands promptly.
func SolvePushRelabelContext(ctx context.Context, g *graph.Graph) (*graph.Flow, error) {
	if err := checkSolvable(g); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	r := newResidualPooled(g)
	defer r.release()
	if err := runPushRelabel(ctx, r); err != nil {
		return nil, err
	}
	return r.flow(), nil
}

// runPushRelabel augments the residual network to a maximum flow with the
// highest-label push-relabel kernel.  Like the other run helpers it accepts
// any feasible starting state: the algorithm computes a maximum flow of the
// residual network, and the arc bookkeeping composes it with whatever flow
// the residual already encodes, which is what the warm path of Network.Solve
// relies on.  All per-solve state lives in a pooled scratch structure, so
// repeated solves allocate nothing once the pool is warm.
func runPushRelabel(ctx context.Context, r *residual) error {
	st := getPRState(r)
	err := st.run(ctx)
	putPRState(st)
	return err
}

// pushRelabelState is the pooled scratch of the highest-label kernel.  Widths
// are int32 throughout: heights and list links never exceed 2n+1, and halving
// the footprint keeps the working set cache-resident far longer on the
// 10^5–10^6 vertex instances this kernel is tuned for.
type pushRelabelState struct {
	r      *residual
	excess []float64
	height []int32
	// countHeight[h] is the number of vertices at height h (terminals
	// included); a bucket of some h < n dropping to zero is the gap signal.
	countHeight []int32
	// cur[v] is the current-arc cursor into adj[off[v]:off[v+1]].  It
	// persists across discharges and is rewound only when v is relabelled
	// (or by a global relabelling), so each arc is scanned at most once per
	// height of its tail.
	cur []int32
	// Per-height doubly-linked lists threading every non-terminal vertex
	// through the bucket of its height.  A gap event walks exactly the
	// populated buckets above the gap instead of scanning all n vertices.
	levHead, levNext, levPrev []int32
	// levMax is an upper bound on the highest height below n whose bucket is
	// non-empty; it bounds the gap walk.
	levMax int32
	// Per-height singly-linked lists of active vertices implement
	// highest-label selection.  inAct[v] reports whether v has a live entry
	// in the bucket of its current height; entries orphaned when a gap moves
	// a vertex are detected lazily by the height check on pop.
	actHead, actNext []int32
	inAct            []bool
	// Two bucket pointers split active processing into the classic phases.
	// highest bounds the greatest active height below n (vertices still
	// routing flow to the sink); hiHighest bounds the greatest active height
	// at or above n (vertices returning trapped excess to the source; empty
	// sentinel n-1).  The run loop drains the low band first — return-band
	// work can never enable sink-band work — so a gap lifting vertices to
	// n+1 never drags a bucket scan across the ~n empty heights in between.
	highest   int
	hiHighest int
	// gapSinceGlobal records that a gap parked vertices at a flat n+1 since
	// the last global relabelling; the low→high transition then refreshes
	// labels once so the return flow drains along exact source distances.
	gapSinceGlobal bool
	eps            float64
	// work accumulates relabel arc scans; once it passes workThreshold
	// (~alpha*(n+m)) a global relabelling recomputes exact heights.  This
	// work-based schedule replaces the fixed every-n-relabels trigger, which
	// fired far too rarely on sparse grids and far too often on dense cores.
	work          int
	workThreshold int
	// dist and bfsQueue are globalRelabel scratch buffers.
	dist     []int32
	bfsQueue []int32
}

// attach sizes the scratch for r and clears what run does not rebuild.
func (st *pushRelabelState) attach(r *residual) {
	n := r.n
	st.r = r
	st.eps = epsilonFor(r.maxArcCapacity())
	st.excess = growSlice(st.excess, n)
	for i := range st.excess {
		st.excess[i] = 0
	}
	st.height = growSlice(st.height, n)
	st.cur = growSlice(st.cur, n)
	st.levNext = growSlice(st.levNext, n)
	st.levPrev = growSlice(st.levPrev, n)
	st.actNext = growSlice(st.actNext, n)
	st.inAct = growSlice(st.inAct, n)
	st.countHeight = growSlice(st.countHeight, 2*n+1)
	st.levHead = growSlice(st.levHead, 2*n+1)
	st.actHead = growSlice(st.actHead, 2*n+1)
	st.dist = growSlice(st.dist, n)
	if cap(st.bfsQueue) < n {
		st.bfsQueue = make([]int32, 0, n)
	}
	st.workThreshold = 4*n + len(r.adj)
	st.work = 0
}

func (st *pushRelabelState) run(ctx context.Context) error {
	r := st.r
	// Initialise the preflow: saturate all source-adjacent arcs.  The first
	// global relabelling then builds every bucket structure from exact BFS
	// heights, including the conventional height[s] = n.
	for p := r.off[r.s]; p < r.off[r.s+1]; p++ {
		a := int(r.adj[p])
		if r.arcs[a].cap > st.eps {
			delta := r.arcs[a].cap
			to := r.arcs[a].to
			r.push(a, delta)
			st.excess[to] += delta
			st.excess[r.s] -= delta
		}
	}
	st.globalRelabel()

	discharges := 0
	for {
		var v int32
		switch {
		case st.highest >= 0:
			v = st.actHead[st.highest]
			if v < 0 {
				st.highest--
				continue
			}
			st.actHead[st.highest] = st.actNext[v]
			if int(st.height[v]) != st.highest {
				continue // orphaned by a gap; the live entry sits in another bucket
			}
		case st.hiHighest >= r.n:
			if st.gapSinceGlobal {
				// Entering the return band with gap-parked flat labels;
				// refresh once so excess descends exact source distances.
				st.globalRelabel()
				continue
			}
			v = st.actHead[st.hiHighest]
			if v < 0 {
				st.hiHighest--
				continue
			}
			st.actHead[st.hiHighest] = st.actNext[v]
			if int(st.height[v]) != st.hiHighest {
				continue
			}
		default:
			return nil
		}
		st.inAct[v] = false
		if st.excess[v] <= st.eps {
			continue
		}
		discharges++
		if discharges&0xfff == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		st.discharge(int(v))
		if st.work >= st.workThreshold {
			st.globalRelabel()
		}
	}
}

// discharge pushes the excess at v until it is exhausted or v is lifted past
// 2n.  v has just been popped from the active buckets; neighbours activated
// by pushes are registered, and v itself simply keeps discharging after a
// relabel — it remains the highest active vertex.
func (st *pushRelabelState) discharge(v int) {
	r := st.r
	h := st.height[v]
	for {
		p := st.cur[v]
		end := int32(r.off[v+1])
		for ; p < end; p++ {
			a := int(r.adj[p])
			arc := &r.arcs[a]
			to := arc.to
			if arc.cap <= st.eps || st.height[to]+1 != h {
				continue
			}
			delta := st.excess[v]
			if arc.cap < delta {
				delta = arc.cap
			}
			r.push(a, delta)
			st.excess[v] -= delta
			st.excess[to] += delta
			if to != r.s && to != r.t && !st.inAct[to] {
				st.actPush(int32(to), st.height[to])
			}
			if st.excess[v] <= st.eps {
				st.cur[v] = p
				return
			}
		}
		st.cur[v] = int32(r.off[v])
		if !st.relabel(v) {
			return
		}
		h = st.height[v]
	}
}

// actPush registers a live active-list entry for v in the bucket of height h,
// raising the band pointer the bucket belongs to.
func (st *pushRelabelState) actPush(v, h int32) {
	st.actNext[v] = st.actHead[h]
	st.actHead[h] = v
	st.inAct[v] = true
	if int(h) < st.r.n {
		if int(h) > st.highest {
			st.highest = int(h)
		}
	} else if int(h) > st.hiHighest {
		st.hiHighest = int(h)
	}
}

// levAdd inserts v at the head of the height-h vertex list.
func (st *pushRelabelState) levAdd(v, h int32) {
	head := st.levHead[h]
	st.levNext[v] = head
	st.levPrev[v] = -1
	if head >= 0 {
		st.levPrev[head] = v
	}
	st.levHead[h] = v
	if h < int32(st.r.n) && h > st.levMax {
		st.levMax = h
	}
}

// levDel unlinks v from the height-h vertex list.
func (st *pushRelabelState) levDel(v, h int32) {
	next, prev := st.levNext[v], st.levPrev[v]
	if prev >= 0 {
		st.levNext[prev] = next
	} else {
		st.levHead[h] = next
	}
	if next >= 0 {
		st.levPrev[next] = prev
	}
}

// relabel raises v to one more than its lowest residual neighbour and fires
// the gap heuristic when v's old bucket emptied.  It returns false when v
// reached height 2n, in which case its residual capacities are below the
// epsilon tolerance and its (tiny) excess is abandoned.
func (st *pushRelabelState) relabel(v int) bool {
	r := st.r
	lim := int32(2 * r.n)
	oldH := st.height[v]
	minH := lim
	st.work += r.off[v+1] - r.off[v]
	for p := r.off[v]; p < r.off[v+1]; p++ {
		a := r.adj[p]
		if r.arcs[a].cap > st.eps && st.height[r.arcs[a].to] < minH {
			minH = st.height[r.arcs[a].to]
		}
	}
	newH := minH + 1
	if newH >= lim {
		newH = lim
	}
	st.countHeight[oldH]--
	st.levDel(int32(v), oldH)
	st.height[v] = newH
	st.countHeight[newH]++
	st.levAdd(int32(v), newH)
	// Gap heuristic: if no vertex remains at oldH and oldH < n, every vertex
	// strictly above the gap (and below n) can never route flow to the sink
	// again; lift them all to n+1 at once.  That may include v itself, which
	// then simply continues discharging from n+1.
	if int(oldH) < r.n && st.countHeight[oldH] == 0 {
		st.gap(oldH)
		st.gapSinceGlobal = true
	}
	return st.height[v] < lim
}

// gap lifts every vertex with h < height < n to height n+1, walking only the
// populated height buckets in (h, levMax].  Active vertices among them get a
// fresh live entry; their old entries are skipped lazily on pop.
func (st *pushRelabelState) gap(h int32) {
	n1 := int32(st.r.n + 1)
	for hh := h + 1; hh <= st.levMax; hh++ {
		for v := st.levHead[hh]; v >= 0; {
			next := st.levNext[v]
			st.countHeight[hh]--
			st.height[v] = n1
			st.levAdd(v, n1)
			st.countHeight[n1]++
			if st.inAct[v] {
				st.actPush(v, n1)
			}
			v = next
		}
		st.levHead[hh] = -1
	}
	st.levMax = h - 1
}

// globalRelabel recomputes exact heights from two reverse BFS passes over
// the residual network.  Vertices that can still reach the sink get their
// exact distance to it.  Vertices that cannot — their excess must flow back
// to the source — get n plus their exact distance to the source, so the
// return flow drains downhill instead of thrashing on a flat n+1 plateau
// (on large grids with per-pixel terminal links most of the initial preflow
// is trapped, and a flat labelling made the return phase quadratic).
// Vertices that reach neither terminal can never hold excess (any excess has
// a residual path to the source) and park inertly at 2n.  The labelling is
// valid: a residual arc from a sink-unreachable to a sink-reachable vertex
// or from a source-unreachable to a source-reachable one would contradict
// the respective unreachability.
func (st *pushRelabelState) globalRelabel() {
	r := st.r
	n := r.n
	const unreached = int32(-1)
	dist := st.dist
	for i := range dist {
		dist[i] = unreached
	}
	// Pass 1: backward BFS from the sink over arcs with residual capacity in
	// the forward direction (i.e. arcs a with cap(a)>0 ending at the
	// frontier).
	queue := append(st.bfsQueue[:0], int32(r.t))
	dist[r.t] = 0
	for qh := 0; qh < len(queue); qh++ {
		v := int(queue[qh])
		for p := r.off[v]; p < r.off[v+1]; p++ {
			a := int(r.adj[p])
			// The arc a goes v->to; flow could move to->v if the paired arc
			// a^1 has residual capacity.
			to := r.arcs[a].to
			if dist[to] == unreached && r.arcs[a^1].cap > st.eps {
				dist[to] = dist[v] + 1
				queue = append(queue, int32(to))
			}
		}
	}
	// Pass 2: the same reverse BFS seeded at the source, restricted to the
	// vertices pass 1 did not reach, recording n + distance-to-source.  The
	// source's own slot is pinned to n first so the frontier arithmetic is
	// uniform; its height case below overrides whatever pass 1 found.
	dist[r.s] = int32(n)
	queue = append(queue[:0], int32(r.s))
	for qh := 0; qh < len(queue); qh++ {
		v := int(queue[qh])
		for p := r.off[v]; p < r.off[v+1]; p++ {
			a := int(r.adj[p])
			to := r.arcs[a].to
			if dist[to] == unreached && r.arcs[a^1].cap > st.eps {
				dist[to] = dist[v] + 1
				queue = append(queue, int32(to))
			}
		}
	}
	st.bfsQueue = queue[:0] // keep any grown capacity for the next pass

	for i := 0; i <= 2*n; i++ {
		st.countHeight[i] = 0
		st.levHead[i] = -1
		st.actHead[i] = -1
	}
	st.levMax = -1
	st.highest = -1
	st.hiHighest = n - 1
	st.gapSinceGlobal = false
	for v := 0; v < n; v++ {
		st.cur[v] = int32(r.off[v])
		st.inAct[v] = false
		var h int32
		switch {
		case v == r.s:
			h = int32(n)
		case dist[v] != unreached:
			h = dist[v]
		default:
			h = int32(2 * n)
		}
		st.height[v] = h
		st.countHeight[h]++
		if v != r.s && v != r.t {
			st.levAdd(int32(v), h)
			if st.excess[v] > st.eps {
				st.actPush(int32(v), h)
			}
		}
	}
	st.work = 0
}
