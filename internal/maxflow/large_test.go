package maxflow

import (
	"context"
	"math"
	"math/rand"
	"runtime/debug"
	"testing"

	"analogflow/internal/graph"
	"analogflow/internal/rmat"
)

// TestLongPathBoundedStack is the recursion-depth regression gate: every CPU
// backend must solve a 250k-vertex single-chain instance — whose one
// augmenting path touches every vertex — under a stack ceiling far below what
// per-vertex recursion would need (~25 MB of frames).  The recursive Dinic
// DFS this pins against blew the goroutine stack here; the iterative kernels
// need O(1) stack regardless of path length.
func TestLongPathBoundedStack(t *testing.T) {
	if testing.Short() {
		t.Skip("long-path instance is slow under -short")
	}
	old := debug.SetMaxStack(4 << 20)
	defer debug.SetMaxStack(old)

	const n = 250_000
	g := graph.LongPath(n)
	solvers := map[string]func(*graph.Graph) (*graph.Flow, error){
		"dinic":             SolveDinic,
		"edmonds-karp":      SolveEdmondsKarp,
		"push-relabel":      SolvePushRelabel,
		"push-relabel-fifo": SolvePushRelabelFIFO,
	}
	for name, solver := range solvers {
		t.Run(name, func(t *testing.T) {
			f, err := solver(g)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(f.Value-1) > 1e-9 {
				t.Fatalf("long-path flow %g, want 1", f.Value)
			}
		})
	}
}

// TestGridWarmUpdateChurn runs randomized capacity and structural churn on a
// segmentation grid through Network.UpdateTo/StructureTo, pinning after every
// step that the warm re-solve reaches exactly the cold max-flow value and
// that the warm flow verifies optimal.  This is the grid-shaped companion of
// TestNetworkWarmMatchesCold: neighbour links carry fractional capacities and
// the terminals attach per pixel, the regime the large-instance push-relabel
// heuristics are tuned for.
func TestGridWarmUpdateChurn(t *testing.T) {
	for _, alg := range []Algorithm{Dinic, PushRelabel} {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			g := graph.MustSegmentationGrid(16, 12, false, 5)
			net, err := NewNetwork(g)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := net.Solve(context.Background(), alg); err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(23))
			for step := 0; step < 10; step++ {
				if step%3 == 2 {
					// Structural churn: append a long-range link between two
					// random pixels (an extension, so warm state survives).
					g2 := g.Clone()
					u := 2 + rng.Intn(g.NumVertices()-2)
					v := 2 + rng.Intn(g.NumVertices()-2)
					for v == u {
						v = 2 + rng.Intn(g.NumVertices()-2)
					}
					if _, err := g2.AddEdge(u, v, 1+rng.Float64()*4); err != nil {
						t.Fatalf("step %d: %v", step, err)
					}
					g = g2
					if err := net.StructureTo(g); err != nil {
						t.Fatalf("step %d: StructureTo: %v", step, err)
					}
				} else {
					// Capacity churn, biased toward decreases so drains run.
					var upd graph.CapacityUpdate
					seen := map[int]bool{}
					for len(upd.Edges) < 8 {
						e := rng.Intn(g.NumEdges())
						if seen[e] {
							continue
						}
						seen[e] = true
						var c float64
						switch rng.Intn(4) {
						case 0:
							c = g.Edge(e).Capacity + rng.Float64()*10
						case 1, 2:
							c = g.Edge(e).Capacity / 2
						default:
							c = 0
						}
						upd.Edges = append(upd.Edges, e)
						upd.Capacities = append(upd.Capacities, c)
					}
					g = applyUpdate(t, g, upd)
					if err := net.UpdateTo(g); err != nil {
						t.Fatalf("step %d: UpdateTo: %v", step, err)
					}
				}
				if rep := net.Flow().CheckFeasibility(g); !rep.Feasible(1e-9) {
					t.Fatalf("step %d: intermediate flow infeasible: %v", step, rep)
				}
				warm, err := net.Solve(context.Background(), alg)
				if err != nil {
					t.Fatalf("step %d: warm solve: %v", step, err)
				}
				cold, err := Solve(g, alg)
				if err != nil {
					t.Fatalf("step %d: cold solve: %v", step, err)
				}
				// Grid capacities are fractional, so warm and cold runs may
				// route float round-off differently; the values must still
				// agree to ULP-level precision, and optimality is certified
				// independently below.
				if tol := 1e-11 * math.Max(1, cold.Value); math.Abs(warm.Value-cold.Value) > tol {
					t.Fatalf("step %d: warm value %v, cold value %v", step, warm.Value, cold.Value)
				}
				if err := VerifyOptimal(g, warm, 1e-6); err != nil {
					t.Fatalf("step %d: warm flow not optimal: %v", step, err)
				}
			}
		})
	}
}

// TestPushRelabelMatchesFIFOBaseline differentially tests the highest-label
// kernel against the frozen FIFO baseline (and Dinic as an independent
// referee) across grid, R-MAT and chain instances: all three must agree on
// the max-flow value and each flow must verify optimal.
func TestPushRelabelMatchesFIFOBaseline(t *testing.T) {
	instances := map[string]*graph.Graph{
		"grid-4n":     graph.MustSegmentationGrid(20, 14, false, 9),
		"grid-8n":     graph.MustSegmentationGrid(14, 14, true, 4),
		"rmat-sparse": rmat.MustGenerate(rmat.SparseParams(96, 17)),
		"rmat-dense":  rmat.MustGenerate(rmat.DenseParams(64, 29)),
		"chain":       graph.LongPath(512),
	}
	for name, g := range instances {
		t.Run(name, func(t *testing.T) {
			hi, err := SolvePushRelabel(g)
			if err != nil {
				t.Fatal(err)
			}
			fifo, err := SolvePushRelabelFIFO(g)
			if err != nil {
				t.Fatal(err)
			}
			ref, err := SolveDinic(g)
			if err != nil {
				t.Fatal(err)
			}
			tol := 1e-9 * math.Max(1, ref.Value)
			if math.Abs(hi.Value-fifo.Value) > tol || math.Abs(hi.Value-ref.Value) > tol {
				t.Fatalf("kernels disagree: highest-label %v, fifo %v, dinic %v", hi.Value, fifo.Value, ref.Value)
			}
			for fname, f := range map[string]*graph.Flow{"highest-label": hi, "fifo": fifo} {
				if err := VerifyOptimal(g, f, 1e-6); err != nil {
					t.Errorf("%s flow not optimal: %v", fname, err)
				}
			}
		})
	}
}
