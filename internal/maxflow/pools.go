package maxflow

import (
	"sync"

	"analogflow/internal/graph"
)

// Pooled scratch for the solver hot paths.  At 10^5–10^6 vertices the
// per-solve working set of each kernel is tens of megabytes; re-allocating it
// on every Service solve dominated the profile long before the algorithms
// did.  Each kernel therefore draws its scratch from a sync.Pool, growing the
// pooled arrays only when an instance exceeds every size seen before.
// Nothing pooled here retains pointers into a graph or residual after Put.

// growSlice returns s resized to length n, reusing its backing array when the
// capacity suffices.  Contents are unspecified; callers reinitialise.
func growSlice[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

var prStatePool sync.Pool

// getPRState returns a pushRelabelState sized and cleared for r.
func getPRState(r *residual) *pushRelabelState {
	st, _ := prStatePool.Get().(*pushRelabelState)
	if st == nil {
		st = &pushRelabelState{}
	}
	st.attach(r)
	return st
}

func putPRState(st *pushRelabelState) {
	st.r = nil
	prStatePool.Put(st)
}

// dinicScratch is the pooled per-solve state of runDinic: the level graph,
// the current-arc cursors, the BFS queue, and the DFS path stack.
type dinicScratch struct {
	level []int32
	iter  []int32
	queue []int32
	path  []int32 // arc indices along the active DFS path
}

var dinicScratchPool sync.Pool

func getDinicScratch(n int) *dinicScratch {
	sc, _ := dinicScratchPool.Get().(*dinicScratch)
	if sc == nil {
		sc = &dinicScratch{}
	}
	sc.level = growSlice(sc.level, n)
	sc.iter = growSlice(sc.iter, n)
	if cap(sc.queue) < n {
		sc.queue = make([]int32, 0, n)
	}
	return sc
}

func putDinicScratch(sc *dinicScratch) {
	dinicScratchPool.Put(sc)
}

// ekScratch is the pooled per-solve state of runEdmondsKarp.
type ekScratch struct {
	parentArc []int32
	queue     []int32
}

var ekScratchPool sync.Pool

func getEKScratch(n int) *ekScratch {
	sc, _ := ekScratchPool.Get().(*ekScratch)
	if sc == nil {
		sc = &ekScratch{}
	}
	sc.parentArc = growSlice(sc.parentArc, n)
	if cap(sc.queue) < n {
		sc.queue = make([]int32, 0, n)
	}
	return sc
}

func putEKScratch(sc *ekScratch) {
	ekScratchPool.Put(sc)
}

// intScratchPool recycles the degree/position arrays used while building a
// residual's CSR adjacency.
var intScratchPool sync.Pool

func getIntScratch(n int) []int {
	p, _ := intScratchPool.Get().(*[]int)
	if p == nil || cap(*p) < n {
		return make([]int, n)
	}
	return (*p)[:n]
}

func putIntScratch(s []int) {
	intScratchPool.Put(&s)
}

// residualPool recycles whole residual networks — the arc array is by far
// the largest allocation of a one-shot solve.  Only the one-shot entry
// points (SolveContext and friends) draw from it; Network retains its
// residual indefinitely and allocates a fresh one.
var residualPool sync.Pool

// newResidualPooled is newResidual backed by pooled arrays.  The caller must
// call release once the residual (and anything aliasing its arrays) is dead;
// flow() copies its result out, so releasing after flow() is safe.
func newResidualPooled(g *graph.Graph) *residual {
	r, _ := residualPool.Get().(*residual)
	if r == nil {
		r = &residual{pooled: true}
	}
	r.init(g)
	return r
}

// release returns a pooled residual's arrays to the pool.  It is a no-op for
// residuals built by newResidual, so callers may release unconditionally.
func (r *residual) release() {
	if r == nil || !r.pooled {
		return
	}
	r.gdeps = nil
	residualPool.Put(r)
}
