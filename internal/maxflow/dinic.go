package maxflow

import (
	"context"

	"analogflow/internal/graph"
)

// SolveDinic computes a maximum flow with Dinitz's blocking-flow algorithm
// (O(V²E) in general, O(E√V) on unit-capacity networks).  It is the exact
// reference solver used to compute the "optimal solution" against which the
// paper's Figure 10 relative errors are measured.
func SolveDinic(g *graph.Graph) (*graph.Flow, error) {
	return SolveDinicContext(context.Background(), g)
}

// SolveDinicContext is SolveDinic with cooperative cancellation: the context
// is checked once per blocking-flow phase (there are at most O(V) phases), so
// a cancelled or expired context aborts the solve between phases and returns
// the context's error.
func SolveDinicContext(ctx context.Context, g *graph.Graph) (*graph.Flow, error) {
	if err := checkSolvable(g); err != nil {
		return nil, err
	}
	r := newResidualPooled(g)
	defer r.release()
	if err := runDinic(ctx, r); err != nil {
		return nil, err
	}
	return r.flow(), nil
}

// runDinic augments the residual network to a maximum flow with Dinitz's
// algorithm.  It works from any feasible starting state, so it serves both
// the cold entry points above and the warm-start path of Network.  All
// per-phase scratch (level graph, current-arc cursors, BFS queue, DFS path)
// is pooled, so repeated solves allocate nothing once the pool is warm.
func runDinic(ctx context.Context, r *residual) error {
	eps := epsilonFor(r.maxArcCapacity())
	sc := getDinicScratch(r.n)
	defer putDinicScratch(sc)

	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		if !dinicBFS(r, sc, eps) {
			break
		}
		// Rewind the current-arc cursors: the level graph changed, so arcs
		// exhausted in the previous phase may be admissible again.  Within a
		// phase the cursors persist across augmentations, so each arc is
		// scanned at most once per phase.
		for v := 0; v < r.n; v++ {
			sc.iter[v] = int32(r.off[v])
		}
		dinicBlockingFlow(r, sc, eps)
	}
	return nil
}

const inf = 1e300

// dinicBFS builds the level graph; it returns false when the sink is no
// longer reachable, which terminates the algorithm.  The queue buffer lives
// in the pooled scratch so that the per-phase BFS allocates nothing.
func dinicBFS(r *residual, sc *dinicScratch, eps float64) bool {
	level := sc.level
	for i := range level {
		level[i] = -1
	}
	level[r.s] = 0
	queue := append(sc.queue[:0], int32(r.s))
	for qh := 0; qh < len(queue); qh++ {
		v := int(queue[qh])
		for p := r.off[v]; p < r.off[v+1]; p++ {
			a := r.adj[p]
			to := r.arcs[a].to
			if r.arcs[a].cap > eps && level[to] < 0 {
				level[to] = level[v] + 1
				queue = append(queue, int32(to))
			}
		}
	}
	sc.queue = queue[:0] // keep any grown capacity for the next phase
	return level[r.t] >= 0
}

// dinicBlockingFlow sends a blocking flow through the current level graph
// with an explicit-stack DFS: sc.path holds the arcs of the active s→v path
// and sc.iter the current-arc cursor of every vertex.  The recursive
// formulation this replaces needed one stack frame per path vertex and blew
// goroutine stacks once augmenting paths reached ~10^5 vertices; the
// iterative form is stack-safe at 10^6 and follows the exact same
// current-arc order, so it routes flow identically.
func dinicBlockingFlow(r *residual, sc *dinicScratch, eps float64) {
	path := sc.path[:0]
	v := r.s
	for {
		if v == r.t {
			// Augment: push the bottleneck along the path, then retreat to
			// the tail of the shallowest saturated arc and keep searching.
			bottleneck := inf
			for _, a := range path {
				if r.arcs[a].cap < bottleneck {
					bottleneck = r.arcs[a].cap
				}
			}
			trunc := len(path)
			for i, a := range path {
				r.push(int(a), bottleneck)
				if r.arcs[a].cap <= eps && i < trunc {
					trunc = i
				}
			}
			path = path[:trunc]
			if trunc == 0 {
				v = r.s
			} else {
				v = r.arcs[path[trunc-1]].to
			}
			continue
		}
		advanced := false
		end := int32(r.off[v+1])
		for p := sc.iter[v]; p < end; p++ {
			a := r.adj[p]
			to := r.arcs[a].to
			if r.arcs[a].cap > eps && sc.level[to] == sc.level[v]+1 {
				sc.iter[v] = p
				path = append(path, a)
				v = to
				advanced = true
				break
			}
		}
		if !advanced {
			// Dead end: prune v from the level graph so no later descent
			// re-enters it, and retreat one arc.
			sc.iter[v] = end
			sc.level[v] = -1
			if v == r.s {
				break
			}
			a := path[len(path)-1]
			path = path[:len(path)-1]
			v = r.tail(int(a))
		}
	}
	sc.path = path[:0]
}

// SolveEdmondsKarp computes a maximum flow by repeatedly augmenting along
// shortest (fewest-edge) residual paths.  It is the simplest exact solver in
// the package and serves as an independent cross-check of the other two in
// the property-based tests.
func SolveEdmondsKarp(g *graph.Graph) (*graph.Flow, error) {
	return SolveEdmondsKarpContext(context.Background(), g)
}

// SolveEdmondsKarpContext is SolveEdmondsKarp with cooperative cancellation,
// checked once per augmenting-path iteration.
func SolveEdmondsKarpContext(ctx context.Context, g *graph.Graph) (*graph.Flow, error) {
	if err := checkSolvable(g); err != nil {
		return nil, err
	}
	r := newResidualPooled(g)
	defer r.release()
	if err := runEdmondsKarp(ctx, r); err != nil {
		return nil, err
	}
	return r.flow(), nil
}

// runEdmondsKarp augments the residual network to a maximum flow along
// shortest residual paths, from any feasible starting state.  The BFS
// parent/queue scratch is pooled and reused across iterations.
func runEdmondsKarp(ctx context.Context, r *residual) error {
	eps := epsilonFor(r.maxArcCapacity())
	sc := getEKScratch(r.n)
	defer putEKScratch(sc)
	parentArc := sc.parentArc

	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		// BFS for an augmenting path.
		for i := range parentArc {
			parentArc[i] = -1
		}
		parentArc[r.s] = -2
		queue := append(sc.queue[:0], int32(r.s))
		found := false
		for qh := 0; qh < len(queue) && !found; qh++ {
			v := int(queue[qh])
			for p := r.off[v]; p < r.off[v+1]; p++ {
				a := int(r.adj[p])
				to := r.arcs[a].to
				if r.arcs[a].cap > eps && parentArc[to] == -1 {
					parentArc[to] = int32(a)
					if to == r.t {
						found = true
						break
					}
					queue = append(queue, int32(to))
				}
			}
		}
		sc.queue = queue[:0]
		if !found {
			break
		}
		// Bottleneck along the path.
		bottleneck := inf
		for v := r.t; v != r.s; {
			a := int(parentArc[v])
			if r.arcs[a].cap < bottleneck {
				bottleneck = r.arcs[a].cap
			}
			v = r.arcs[a^1].to
		}
		// Augment.
		for v := r.t; v != r.s; {
			a := int(parentArc[v])
			r.push(a, bottleneck)
			v = r.arcs[a^1].to
		}
	}
	return nil
}
