package maxflow

import (
	"context"

	"analogflow/internal/graph"
)

// SolveDinic computes a maximum flow with Dinitz's blocking-flow algorithm
// (O(V²E) in general, O(E√V) on unit-capacity networks).  It is the exact
// reference solver used to compute the "optimal solution" against which the
// paper's Figure 10 relative errors are measured.
func SolveDinic(g *graph.Graph) (*graph.Flow, error) {
	return SolveDinicContext(context.Background(), g)
}

// SolveDinicContext is SolveDinic with cooperative cancellation: the context
// is checked once per blocking-flow phase (there are at most O(V) phases), so
// a cancelled or expired context aborts the solve between phases and returns
// the context's error.
func SolveDinicContext(ctx context.Context, g *graph.Graph) (*graph.Flow, error) {
	if err := checkSolvable(g); err != nil {
		return nil, err
	}
	r := newResidual(g)
	if err := runDinic(ctx, r); err != nil {
		return nil, err
	}
	return r.flow(), nil
}

// runDinic augments the residual network to a maximum flow with Dinitz's
// algorithm.  It works from any feasible starting state, so it serves both
// the cold entry points above and the warm-start path of Network.
func runDinic(ctx context.Context, r *residual) error {
	eps := epsilonFor(r.maxArcCapacity())
	level := make([]int, r.n)
	iter := make([]int, r.n)
	queue := make([]int, 0, r.n)

	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		if !dinicBFS(r, level, queue, eps) {
			break
		}
		copy(iter, r.off[:r.n])
		for {
			pushed := dinicDFS(r, level, iter, r.s, inf, eps)
			if pushed <= eps {
				break
			}
		}
	}
	return nil
}

const inf = 1e300

// dinicBFS builds the level graph; it returns false when the sink is no
// longer reachable, which terminates the algorithm.  The queue buffer is
// supplied by the caller so that the per-phase BFS allocates nothing.
func dinicBFS(r *residual, level, queue []int, eps float64) bool {
	for i := range level {
		level[i] = -1
	}
	level[r.s] = 0
	queue = append(queue[:0], r.s)
	for qh := 0; qh < len(queue); qh++ {
		v := queue[qh]
		for p := r.off[v]; p < r.off[v+1]; p++ {
			a := r.adj[p]
			to := r.arcs[a].to
			if r.arcs[a].cap > eps && level[to] < 0 {
				level[to] = level[v] + 1
				queue = append(queue, to)
			}
		}
	}
	return level[r.t] >= 0
}

// dinicDFS sends a blocking-flow augmentation from v toward the sink along
// strictly increasing levels, using iter as the current-arc positions within
// each vertex's adjacency segment.
func dinicDFS(r *residual, level, iter []int, v int, limit, eps float64) float64 {
	if v == r.t {
		return limit
	}
	for ; iter[v] < r.off[v+1]; iter[v]++ {
		a := r.adj[iter[v]]
		to := r.arcs[a].to
		if r.arcs[a].cap <= eps || level[to] != level[v]+1 {
			continue
		}
		avail := limit
		if r.arcs[a].cap < avail {
			avail = r.arcs[a].cap
		}
		pushed := dinicDFS(r, level, iter, to, avail, eps)
		if pushed > eps {
			r.push(int(a), pushed)
			return pushed
		}
	}
	return 0
}

// SolveEdmondsKarp computes a maximum flow by repeatedly augmenting along
// shortest (fewest-edge) residual paths.  It is the simplest exact solver in
// the package and serves as an independent cross-check of the other two in
// the property-based tests.
func SolveEdmondsKarp(g *graph.Graph) (*graph.Flow, error) {
	return SolveEdmondsKarpContext(context.Background(), g)
}

// SolveEdmondsKarpContext is SolveEdmondsKarp with cooperative cancellation,
// checked once per augmenting-path iteration.
func SolveEdmondsKarpContext(ctx context.Context, g *graph.Graph) (*graph.Flow, error) {
	if err := checkSolvable(g); err != nil {
		return nil, err
	}
	r := newResidual(g)
	if err := runEdmondsKarp(ctx, r); err != nil {
		return nil, err
	}
	return r.flow(), nil
}

// runEdmondsKarp augments the residual network to a maximum flow along
// shortest residual paths, from any feasible starting state.
func runEdmondsKarp(ctx context.Context, r *residual) error {
	eps := epsilonFor(r.maxArcCapacity())
	parentArc := make([]int, r.n)

	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		// BFS for an augmenting path.
		for i := range parentArc {
			parentArc[i] = -1
		}
		parentArc[r.s] = -2
		queue := []int{r.s}
		found := false
		for len(queue) > 0 && !found {
			v := queue[0]
			queue = queue[1:]
			for p := r.off[v]; p < r.off[v+1]; p++ {
				a := int(r.adj[p])
				to := r.arcs[a].to
				if r.arcs[a].cap > eps && parentArc[to] == -1 {
					parentArc[to] = a
					if to == r.t {
						found = true
						break
					}
					queue = append(queue, to)
				}
			}
		}
		if !found {
			break
		}
		// Bottleneck along the path.
		bottleneck := inf
		for v := r.t; v != r.s; {
			a := parentArc[v]
			if r.arcs[a].cap < bottleneck {
				bottleneck = r.arcs[a].cap
			}
			v = r.arcs[a^1].to
		}
		// Augment.
		for v := r.t; v != r.s; {
			a := parentArc[v]
			r.push(a, bottleneck)
			v = r.arcs[a^1].to
		}
	}
	return nil
}
