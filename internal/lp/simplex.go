// Package lp provides a small dense linear-programming toolkit: a standard
// two-phase primal simplex solver and the max-flow / min-cut LP formulations
// the paper works with (Section 2 states max-flow as the restricted LP the
// circuit solves; Figure 12 gives the dual min-cut LP).
//
// The solver exists as an independent cross-check of the combinatorial
// algorithms in internal/maxflow and of the analog substrate: all three must
// agree on the optimal value.  It is a dense tableau implementation intended
// for the instance sizes of the paper's examples and the unit tests, not for
// the 8000-edge sweeps.
package lp

import (
	"context"
	"errors"
	"fmt"
	"math"
)

// Problem is a linear program in the canonical form
//
//	maximize   c^T x
//	subject to A x <= b,  x >= 0
//
// (inequalities only; equalities are expressed as a pair of inequalities by
// the formulation helpers).
type Problem struct {
	// C is the objective vector (length n).
	C []float64
	// A is the constraint matrix (m rows, each of length n).
	A [][]float64
	// B is the right-hand side (length m).
	B []float64
}

// Validate checks dimensional consistency.
func (p *Problem) Validate() error {
	n := len(p.C)
	if n == 0 {
		return errors.New("lp: empty objective")
	}
	if len(p.A) != len(p.B) {
		return fmt.Errorf("lp: %d constraint rows but %d right-hand sides", len(p.A), len(p.B))
	}
	for i, row := range p.A {
		if len(row) != n {
			return fmt.Errorf("lp: row %d has %d coefficients, want %d", i, len(row), n)
		}
	}
	return nil
}

// Result is the outcome of solving a Problem.
type Result struct {
	// X is the optimal primal solution.
	X []float64
	// Value is the optimal objective value.
	Value float64
	// Iterations counts simplex pivots.
	Iterations int
}

// Errors returned by Solve.
var (
	ErrUnbounded  = errors.New("lp: problem is unbounded")
	ErrInfeasible = errors.New("lp: problem is infeasible")
	ErrCycling    = errors.New("lp: iteration limit reached (possible cycling)")
)

const eps = 1e-9

// Solve optimises the problem with the primal simplex method on the slack
// form tableau.  Negative right-hand sides are handled by a preliminary
// dual-feasibility phase (a simple big-M construction).
func Solve(p *Problem) (*Result, error) {
	return SolveContext(context.Background(), p)
}

// SolveContext is Solve with cooperative cancellation, checked every few
// simplex pivots so that long tableau runs abort promptly when the caller's
// context is cancelled or its deadline expires.
func SolveContext(ctx context.Context, p *Problem) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := len(p.C)
	m := len(p.A)

	// Big-M: add artificial variables for rows with negative b so that the
	// initial slack basis is feasible.
	bigM := 0.0
	for _, c := range p.C {
		bigM += math.Abs(c)
	}
	for _, b := range p.B {
		bigM += math.Abs(b)
	}
	bigM = 1e4 * (bigM + 1)

	artificialRows := []int{}
	for i := 0; i < m; i++ {
		if p.B[i] < -eps {
			artificialRows = append(artificialRows, i)
		}
	}
	na := len(artificialRows)
	total := n + m + na // structural + slack + artificial

	// Tableau: rows 0..m-1 constraints, row m objective (stored negated so
	// that we maximise by driving reduced costs non-negative).
	tab := make([][]float64, m+1)
	for i := range tab {
		tab[i] = make([]float64, total+1)
	}
	basis := make([]int, m)
	for i := 0; i < m; i++ {
		sign := 1.0
		if p.B[i] < -eps {
			sign = -1.0 // flip the row so b >= 0
		}
		for j := 0; j < n; j++ {
			tab[i][j] = sign * p.A[i][j]
		}
		tab[i][n+i] = sign // slack
		tab[i][total] = sign * p.B[i]
		basis[i] = n + i
	}
	for k, row := range artificialRows {
		tab[row][n+m+k] = 1
		basis[row] = n + m + k
	}
	// Objective row: maximise c^T x - M * sum(artificials).
	for j := 0; j < n; j++ {
		tab[m][j] = -p.C[j]
	}
	for k := range artificialRows {
		tab[m][n+m+k] = bigM
	}
	// Price out the artificial columns so the initial basis has zero reduced
	// costs.
	for k, row := range artificialRows {
		_ = k
		for j := 0; j <= total; j++ {
			tab[m][j] -= bigM * tab[row][j]
		}
	}

	res := &Result{}
	maxIter := 5000 * (m + n)
	for iter := 0; iter < maxIter; iter++ {
		if iter&0x3f == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		// Entering variable: most negative reduced cost (Dantzig rule with
		// Bland fallback every 100 iterations to avoid cycling).
		pivotCol := -1
		if iter%100 == 99 {
			for j := 0; j < total; j++ {
				if tab[m][j] < -eps {
					pivotCol = j
					break
				}
			}
		} else {
			best := -eps
			for j := 0; j < total; j++ {
				if tab[m][j] < best {
					best = tab[m][j]
					pivotCol = j
				}
			}
		}
		if pivotCol < 0 {
			break // optimal
		}
		// Leaving variable: minimum ratio test.
		pivotRow := -1
		bestRatio := math.Inf(1)
		for i := 0; i < m; i++ {
			if tab[i][pivotCol] > eps {
				ratio := tab[i][total] / tab[i][pivotCol]
				if ratio < bestRatio-eps || (math.Abs(ratio-bestRatio) <= eps && pivotRow >= 0 && basis[i] < basis[pivotRow]) {
					bestRatio = ratio
					pivotRow = i
				}
			}
		}
		if pivotRow < 0 {
			return nil, ErrUnbounded
		}
		pivot(tab, basis, pivotRow, pivotCol)
		res.Iterations++
	}
	if res.Iterations >= maxIter {
		return nil, ErrCycling
	}

	// Any artificial variable still basic at a nonzero level means the
	// original problem is infeasible.
	for i, b := range basis {
		if b >= n+m && tab[i][total] > 1e-6 {
			return nil, ErrInfeasible
		}
	}

	res.X = make([]float64, n)
	for i, b := range basis {
		if b < n {
			res.X[b] = tab[i][total]
		}
	}
	for j := 0; j < n; j++ {
		res.Value += p.C[j] * res.X[j]
	}
	return res, nil
}

// pivot performs a Gauss-Jordan pivot on (row, col).
func pivot(tab [][]float64, basis []int, row, col int) {
	p := tab[row][col]
	for j := range tab[row] {
		tab[row][j] /= p
	}
	for i := range tab {
		if i == row {
			continue
		}
		factor := tab[i][col]
		if factor == 0 {
			continue
		}
		for j := range tab[i] {
			tab[i][j] -= factor * tab[row][j]
		}
	}
	basis[row] = col
}
