package lp

import (
	"context"
	"fmt"

	"analogflow/internal/graph"
)

// This file builds the two linear programs the paper works with: the primal
// max-flow LP of Section 2 (which the analog circuit solves directly) and the
// dual min-cut LP of Figure 12 (Section 6.3), both in the canonical
// inequality form accepted by Solve.

// MaxFlowProblem formulates the max-flow LP for g:
//
//	maximize   sum_{e out of s} f_e  -  sum_{e into s} f_e
//	subject to 0 <= f_e <= c_e                  (capacity, Section 2.1)
//	           sum_in f = sum_out f  per vertex (conservation, Section 2.2)
//
// Variables are the per-edge flows, in the graph's edge order.  Equalities
// become two inequalities.
func MaxFlowProblem(g *graph.Graph) (*Problem, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	n := g.NumEdges()
	if n == 0 {
		return nil, fmt.Errorf("lp: graph has no edges")
	}
	p := &Problem{C: make([]float64, n)}
	for _, ei := range g.OutEdges(g.Source()) {
		p.C[ei] += 1
	}
	for _, ei := range g.InEdges(g.Source()) {
		p.C[ei] -= 1
	}
	// Capacity constraints: f_e <= c_e (non-negativity is implicit in the
	// canonical form).
	for i := 0; i < n; i++ {
		row := make([]float64, n)
		row[i] = 1
		p.A = append(p.A, row)
		p.B = append(p.B, g.Edge(i).Capacity)
	}
	// Conservation at every interior vertex, as a pair of inequalities.
	for v := 0; v < g.NumVertices(); v++ {
		if v == g.Source() || v == g.Sink() {
			continue
		}
		row := make([]float64, n)
		for _, ei := range g.InEdges(v) {
			row[ei] += 1
		}
		for _, ei := range g.OutEdges(v) {
			row[ei] -= 1
		}
		neg := make([]float64, n)
		for j, x := range row {
			neg[j] = -x
		}
		p.A = append(p.A, row, neg)
		p.B = append(p.B, 0, 0)
	}
	return p, nil
}

// SolveMaxFlowLP formulates and solves the max-flow LP, returning the optimal
// flow in graph.Flow form.
func SolveMaxFlowLP(g *graph.Graph) (*graph.Flow, error) {
	return SolveMaxFlowLPContext(context.Background(), g)
}

// SolveMaxFlowLPContext is SolveMaxFlowLP with cooperative cancellation
// threaded into the simplex pivot loop.
func SolveMaxFlowLPContext(ctx context.Context, g *graph.Graph) (*graph.Flow, error) {
	p, err := MaxFlowProblem(g)
	if err != nil {
		return nil, err
	}
	res, err := SolveContext(ctx, p)
	if err != nil {
		return nil, err
	}
	f := graph.NewFlow(g)
	copy(f.Edge, res.X)
	f.RecomputeValue(g)
	return f, nil
}

// MinCutProblem formulates the dual LP of Figure 12:
//
//	minimize   sum c_ij d_ij
//	subject to d_ij - p_i + p_j >= 0
//	           p_s - p_t >= 1
//	           d, p >= 0
//
// In canonical (maximisation, <=) form the objective is negated and the >=
// rows are flipped.  The variable layout is [d_0..d_{m-1}, p_0..p_{n-1}].
func MinCutProblem(g *graph.Graph) (*Problem, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	m := g.NumEdges()
	nv := g.NumVertices()
	if m == 0 {
		return nil, fmt.Errorf("lp: graph has no edges")
	}
	total := m + nv
	p := &Problem{C: make([]float64, total)}
	for i := 0; i < m; i++ {
		p.C[i] = -g.Edge(i).Capacity // maximize -(cost)
	}
	// d_ij - p_i + p_j >= 0  ->  -d_ij + p_i - p_j <= 0
	for i := 0; i < m; i++ {
		e := g.Edge(i)
		row := make([]float64, total)
		row[i] = -1
		row[m+e.From] += 1
		row[m+e.To] -= 1
		p.A = append(p.A, row)
		p.B = append(p.B, 0)
	}
	// p_s - p_t >= 1  ->  -p_s + p_t <= -1
	row := make([]float64, total)
	row[m+g.Source()] = -1
	row[m+g.Sink()] = 1
	p.A = append(p.A, row)
	p.B = append(p.B, -1)
	// Keep the potentials bounded (any optimal solution fits in the unit
	// box): p_i <= 1.
	for v := 0; v < nv; v++ {
		r := make([]float64, total)
		r[m+v] = 1
		p.A = append(p.A, r)
		p.B = append(p.B, 1)
	}
	return p, nil
}

// MinCutResult is the solved dual: the cut value, the vertex potentials and
// the per-edge cut indicators.
type MinCutResult struct {
	Value         float64
	Potentials    []float64
	CutIndicators []float64
}

// SolveMinCutLP formulates and solves the min-cut LP.
func SolveMinCutLP(g *graph.Graph) (*MinCutResult, error) {
	p, err := MinCutProblem(g)
	if err != nil {
		return nil, err
	}
	res, err := Solve(p)
	if err != nil {
		return nil, err
	}
	m := g.NumEdges()
	out := &MinCutResult{
		Value:         -res.Value, // undo the sign flip of the objective
		CutIndicators: append([]float64(nil), res.X[:m]...),
		Potentials:    append([]float64(nil), res.X[m:]...),
	}
	return out, nil
}
