package lp

import (
	"math"
	"testing"
	"testing/quick"

	"analogflow/internal/graph"
	"analogflow/internal/maxflow"
	"analogflow/internal/rmat"
)

func TestProblemValidate(t *testing.T) {
	ok := &Problem{C: []float64{1}, A: [][]float64{{1}}, B: []float64{1}}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid problem rejected: %v", err)
	}
	bad := []*Problem{
		{C: nil},
		{C: []float64{1}, A: [][]float64{{1}}, B: []float64{}},
		{C: []float64{1}, A: [][]float64{{1, 2}}, B: []float64{1}},
	}
	for i, p := range bad {
		if p.Validate() == nil {
			t.Errorf("case %d: invalid problem accepted", i)
		}
	}
}

func TestSolveSimple2D(t *testing.T) {
	// maximize 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 -> optimum 36 at (2, 6).
	p := &Problem{
		C: []float64{3, 5},
		A: [][]float64{{1, 0}, {0, 2}, {3, 2}},
		B: []float64{4, 12, 18},
	}
	res, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Value-36) > 1e-6 {
		t.Errorf("value %g, want 36", res.Value)
	}
	if math.Abs(res.X[0]-2) > 1e-6 || math.Abs(res.X[1]-6) > 1e-6 {
		t.Errorf("solution %v, want (2, 6)", res.X)
	}
	if res.Iterations == 0 {
		t.Errorf("expected at least one pivot")
	}
}

func TestSolveUnbounded(t *testing.T) {
	p := &Problem{C: []float64{1, 0}, A: [][]float64{{0, 1}}, B: []float64{1}}
	if _, err := Solve(p); err != ErrUnbounded {
		t.Errorf("expected ErrUnbounded, got %v", err)
	}
}

func TestSolveInfeasible(t *testing.T) {
	// x <= 1 and -x <= -3 (i.e. x >= 3) cannot both hold.
	p := &Problem{C: []float64{1}, A: [][]float64{{1}, {-1}}, B: []float64{1, -3}}
	if _, err := Solve(p); err != ErrInfeasible {
		t.Errorf("expected ErrInfeasible, got %v", err)
	}
}

func TestSolveNegativeRHS(t *testing.T) {
	// maximize x s.t. -x <= -2 (x >= 2), x <= 5 -> optimum 5.
	p := &Problem{C: []float64{1}, A: [][]float64{{-1}, {1}}, B: []float64{-2, 5}}
	res, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Value-5) > 1e-6 {
		t.Errorf("value %g, want 5", res.Value)
	}
}

func TestMaxFlowLPOnPaperExamples(t *testing.T) {
	for name, g := range map[string]*graph.Graph{
		"figure5":  graph.PaperFigure5(),
		"figure15": graph.PaperFigure15(),
	} {
		f, err := SolveMaxFlowLP(g)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		want, err := maxflow.OptimalValue(g)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(f.Value-want) > 1e-6 {
			t.Errorf("%s: LP value %g, combinatorial value %g", name, f.Value, want)
		}
		if !f.CheckFeasibility(g).Feasible(1e-6) {
			t.Errorf("%s: LP flow infeasible", name)
		}
	}
	empty := graph.MustNew(2, 0, 1)
	if _, err := MaxFlowProblem(empty); err == nil {
		t.Errorf("edgeless graph accepted")
	}
}

func TestMinCutLPOnPaperExample(t *testing.T) {
	g := graph.PaperFigure5()
	res, err := SolveMinCutLP(g)
	if err != nil {
		t.Fatal(err)
	}
	// Strong duality: the min-cut LP value equals the max-flow value (2).
	if math.Abs(res.Value-graph.PaperFigure5MaxFlow) > 1e-6 {
		t.Errorf("min-cut LP value %g, want %g", res.Value, graph.PaperFigure5MaxFlow)
	}
	if len(res.Potentials) != g.NumVertices() || len(res.CutIndicators) != g.NumEdges() {
		t.Fatalf("result shapes wrong")
	}
	// The potentials separate the terminals.
	if res.Potentials[g.Source()]-res.Potentials[g.Sink()] < 1-1e-6 {
		t.Errorf("terminal potential separation violated: %v", res.Potentials)
	}
	empty := graph.MustNew(2, 0, 1)
	if _, err := MinCutProblem(empty); err == nil {
		t.Errorf("edgeless graph accepted")
	}
}

// Property: on random small instances the max-flow LP, the min-cut LP and the
// combinatorial solvers all agree (strong duality).
func TestLPDualityOnRandomGraphs(t *testing.T) {
	f := func(seed int64) bool {
		n := 5 + int(uint64(seed)%8)
		g, err := rmat.Generate(rmat.DefaultParams(n, 2*n, seed))
		if err != nil {
			return false
		}
		want, err := maxflow.OptimalValue(g)
		if err != nil {
			return false
		}
		fl, err := SolveMaxFlowLP(g)
		if err != nil {
			return false
		}
		cut, err := SolveMinCutLP(g)
		if err != nil {
			return false
		}
		return math.Abs(fl.Value-want) < 1e-5 && math.Abs(cut.Value-want) < 1e-5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
