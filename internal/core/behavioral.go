package core

import (
	"context"
	"math"

	"analogflow/internal/graph"
	"analogflow/internal/maxflow"
	"analogflow/internal/variation"
)

// solveBehavioralPrepared runs the fast substrate model.
//
// The model rests on two observations the paper itself makes:
//
//  1. Under ideal components the steady state of the circuit is the optimum
//     of the max-flow LP on the *quantized* capacities (Section 2 proof +
//     Section 4.1 quantization), and
//  2. the circuit solution depends only on resistance ratios (Section 4.3.1),
//     so mismatch between nominally equal resistors perturbs the effective
//     capacities and conservation weights multiplicatively.
//
// The behavioural solver therefore: quantizes the capacities, perturbs them
// with the residual mismatch left after the enabled mitigations (matching,
// tuning) plus the finite op-amp gain error, solves the perturbed LP exactly,
// and finally adds per-edge readout noise.  Convergence time, programming
// time, power and energy come from the same analytical models the paper uses.
func (s *Solver) solveBehavioralPrepared(ctx context.Context, prep *Prepared) (*Result, error) {
	if prep.Empty() {
		empty := s.emptyResult(prep, ModeBehavioral)
		if err := s.finalizeEmpty(ctx, empty, prep.original); err != nil {
			return nil, err
		}
		return empty, nil
	}
	res := &Result{Mode: ModeBehavioral, Quantization: prep.qres}
	work := prep.work

	// Residual mismatch after the enabled mitigations, combined with the
	// negative-resistor gain error of Section 4.2.
	sigma := variation.EffectiveMismatch(s.params.Variation, s.params.MatchedLayout, s.params.PostFabTuning, s.params.Tuning)
	gainError := s.params.Builder.OpAmp.NegativeResistorPrecision(
		s.params.Builder.WidgetResistance, s.params.Builder.WidgetResistance/2)
	sigmaEff := math.Sqrt(sigma*sigma + gainError*gainError)

	// Perturb the (quantized) work-graph capacities: each clamp level is
	// realised through a resistive divider whose ratio error is sigmaEff.
	perturbed := make([]float64, work.NumEdges())
	for i := 0; i < work.NumEdges(); i++ {
		factor := 1.0
		if sigmaEff > 0 {
			factor = math.Exp(s.rng.NormFloat64() * sigmaEff)
		}
		perturbed[i] = work.Edge(i).Capacity * factor
	}
	pGraph, err := work.WithCapacities(perturbed)
	if err != nil {
		return nil, err
	}

	// The steady state of the (perturbed, quantized) substrate.
	flow, err := maxflow.SolveDinicContext(ctx, pGraph)
	if err != nil {
		return nil, err
	}

	// Per-edge readout: each edge-node voltage is sensed with relative noise
	// ReadoutNoiseSigma of the supply, then mapped back to flow units.  This
	// is the "reading out individual flow values" capability the paper lists
	// as future work (Section 6.1, item 3).
	voltsPerUnit := prep.qres.VoltsPerUnit()
	readFlow := graph.NewFlow(work)
	res.EdgeVoltages = make([]float64, work.NumEdges())
	saturated := 0
	for i := 0; i < work.NumEdges(); i++ {
		v := flow.Edge[i] * voltsPerUnit
		if s.params.ReadoutNoiseSigma > 0 {
			v += s.rng.NormFloat64() * s.params.ReadoutNoiseSigma * s.params.Quantization.Vdd
		}
		if v < 0 {
			v = 0
		}
		if clamp := prep.clampOf(i); v > clamp {
			v = clamp
		}
		res.EdgeVoltages[i] = v
		readFlow.Edge[i] = prep.qres.ToFlowUnits(v)
		if math.Abs(flow.Edge[i]-pGraph.Edge(i).Capacity) < 1e-9 && flow.Edge[i] > 0 {
			saturated++
		}
	}
	readFlow.RecomputeValue(work)

	// Flow-value readout: the paper measures the objective once, through the
	// current of the Vflow source (Equation 7a), so the value sees a single
	// measurement-noise term rather than one per edge.
	flow.RecomputeValue(work)
	value := flow.Value
	if s.params.ReadoutNoiseSigma > 0 {
		value *= 1 + s.rng.NormFloat64()*s.params.ReadoutNoiseSigma
	}
	if value < 0 {
		value = 0
	}
	res.FlowValue = value

	res.ConvergenceTime, res.Waves = s.convergenceTimeModel(work, saturated)
	if err := s.finalize(ctx, res, prep, readFlow); err != nil {
		return nil, err
	}
	return res, nil
}

// finalizeEmpty fills the reference value for instances with no s-t path.
func (s *Solver) finalizeEmpty(ctx context.Context, res *Result, g *graph.Graph) error {
	exact, err := maxflow.OptimalValueContext(ctx, g)
	if err != nil {
		return err
	}
	res.ExactValue = exact
	res.RelativeError = math.Abs(res.FlowValue - exact)
	if exact != 0 {
		res.RelativeError /= exact
	}
	return nil
}
