// Package core is the top of the analogflow stack: it exposes the analog
// max-flow solver the paper proposes as a single reusable component.  A
// Solver owns the full pipeline — graph preprocessing, voltage quantization
// (Section 4.1), circuit construction (Section 2), crossbar configuration
// accounting (Section 3), non-ideality modelling (Section 4), and the
// performance metrics of Section 5 (convergence time, power, energy).
//
// Two solver modes are provided:
//
//   - ModeCircuit runs the full SPICE-style modified-nodal-analysis emulation
//     of the substrate (internal/builder + internal/mna).  It is the highest
//     fidelity path and reproduces the paper's worked examples, but — as
//     documented in docs/solver.md — the ideal-negative-resistance circuit is
//     numerically fragile on arbitrary graphs, exactly the kind of
//     reproduction finding this repository is meant to surface.
//
//   - ModeBehavioral models the substrate at the level the paper's own
//     evaluation operates: the steady state is the optimum of the quantized,
//     non-ideality-perturbed instance (justified by the paper's Section 4.3
//     observation that the solution depends only on resistance ratios), and
//     the convergence time follows the op-amp-dominated settling model of
//     Section 5.1.  This path scales to the paper's 1000-vertex sweeps.
package core

import (
	"fmt"
	"math"

	"analogflow/internal/builder"
	"analogflow/internal/crossbar"
	"analogflow/internal/power"
	"analogflow/internal/quantize"
	"analogflow/internal/variation"
)

// Mode selects the solver fidelity.
type Mode int

const (
	// ModeBehavioral is the fast substrate model used for large sweeps.
	ModeBehavioral Mode = iota
	// ModeCircuit is the full MNA circuit emulation.
	ModeCircuit
)

func (m Mode) String() string {
	switch m {
	case ModeBehavioral:
		return "behavioral"
	case ModeCircuit:
		return "circuit"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Params collects every knob of the substrate.  DefaultParams reproduces
// Table 1 of the paper.
type Params struct {
	// Mode selects the solver fidelity tier.
	Mode Mode
	// Crossbar describes the physical array (size, memristor model,
	// programming voltages).
	Crossbar crossbar.Config
	// Quantization is the voltage-level scheme of Section 4.1.
	Quantization quantize.Scheme
	// Builder holds the circuit-construction options (widget resistance,
	// diode and op-amp models, parasitics).
	Builder builder.Options
	// VflowMultiplier scales the objective drive: the actual Vflow is
	// VflowMultiplier * Vdd, further raised automatically for deep graphs so
	// that the drive can saturate the longest chain of conservation widgets.
	// Table 1 uses 3 V against a 1 V supply.
	VflowMultiplier float64
	// Variation is the resistance-variation profile of the fabricated
	// substrate (Section 4.3).
	Variation variation.Profile
	// MatchedLayout and PostFabTuning enable the two mitigation techniques
	// of Sections 4.3.1 and 4.3.2.
	MatchedLayout bool
	PostFabTuning bool
	// Tuning parameterises the post-fabrication tuning procedure.
	Tuning variation.TuningSpec
	// ReadoutNoiseSigma is the relative error of sensing a node voltage at
	// the periphery (ADC/sense-amp imprecision), applied per edge in the
	// behavioural model.
	ReadoutNoiseSigma float64
	// SettleCyclesPerWave calibrates the convergence-time model: the number
	// of op-amp open-loop time constants one settling wave takes.  The value
	// 3 matches the small-circuit transient simulations of internal/mna.
	SettleCyclesPerWave float64
	// Power is the Section 5.2 analytical power model.
	Power power.Model
	// PruneGraph enables the s-t-core preprocessing pass before mapping the
	// graph onto the substrate.
	PruneGraph bool
	// Seed drives all stochastic models (variation draws, readout noise).
	Seed int64
}

// DefaultParams returns the Table 1 configuration of the paper with the
// behavioural solver and both variation mitigations enabled.
func DefaultParams() Params {
	return Params{
		Mode:                ModeBehavioral,
		Crossbar:            crossbar.DefaultConfig(),
		Quantization:        quantize.DefaultScheme(),
		Builder:             builder.DefaultOptions(),
		VflowMultiplier:     3,
		Variation:           variation.DefaultMatched(),
		MatchedLayout:       true,
		PostFabTuning:       true,
		Tuning:              variation.DefaultTuning(),
		ReadoutNoiseSigma:   0.01,
		SettleCyclesPerWave: 3,
		Power:               power.DefaultModel(),
		PruneGraph:          true,
		Seed:                1,
	}
}

// Validate checks parameter consistency.
func (p Params) Validate() error {
	switch p.Mode {
	case ModeBehavioral, ModeCircuit:
	default:
		return fmt.Errorf("core: unknown mode %v", p.Mode)
	}
	if err := p.Crossbar.Validate(); err != nil {
		return err
	}
	if err := p.Quantization.Validate(); err != nil {
		return err
	}
	if err := p.Builder.Validate(); err != nil {
		return err
	}
	if p.VflowMultiplier <= 0 {
		return fmt.Errorf("core: Vflow multiplier must be positive, got %g", p.VflowMultiplier)
	}
	if err := p.Variation.Validate(); err != nil {
		return err
	}
	if err := p.Tuning.Validate(); err != nil {
		return err
	}
	if p.ReadoutNoiseSigma < 0 {
		return fmt.Errorf("core: negative readout noise sigma")
	}
	if p.SettleCyclesPerWave <= 0 {
		return fmt.Errorf("core: settle cycles per wave must be positive")
	}
	if err := p.Power.Validate(); err != nil {
		return err
	}
	return nil
}

// DefaultCleanVariation returns a variation profile with no process
// variation and no parasitics, for studying the substrate's intrinsic
// (quantization- and gain-limited) accuracy in isolation.
func DefaultCleanVariation() variation.Profile {
	return variation.Profile{}
}

// GBW returns the op-amp gain-bandwidth product used by the substrate; a
// convenience for experiments that sweep it.
func (p Params) GBW() float64 { return p.Builder.OpAmp.GBW }

// SettleTimePerWave returns the settling time of one constraint-activation
// wave under these parameters: SettleCyclesPerWave op-amp open-loop time
// constants (A/(2*pi*GBW)) plus the RC settling of the parasitic capacitance
// through the widget resistance.  The total convergence time of an instance
// is Waves * SettleTimePerWave(); experiments that sweep only the GBW reuse
// one solved instance and rescale with this factor instead of re-solving.
func (p Params) SettleTimePerWave() float64 {
	opAmp := p.Builder.OpAmp
	return p.SettleCyclesPerWave*(opAmp.Gain/(2*math.Pi*opAmp.GBW)) +
		p.SettleCyclesPerWave*p.Builder.WidgetResistance*p.Builder.ParasiticCapacitance
}

// WithGBW returns a copy of the parameters with a different op-amp GBW.
func (p Params) WithGBW(gbw float64) Params {
	p.Builder.OpAmp.GBW = gbw
	return p
}

// WithLevels returns a copy of the parameters with a different number of
// quantization levels.
func (p Params) WithLevels(n int) Params {
	p.Quantization.Levels = n
	return p
}
