package core

import (
	"context"
	"errors"
	"math"
	"testing"

	"analogflow/internal/graph"
)

// TestCircuitPoorConvergenceRetryHonest pins the documented fragile path: the
// circuit solver with the default mismatch-variation profile on the Figure 5
// instance converges to a spurious operating point reading ~3.0 against the
// exact optimum 2.  The solver must detect the poor outcome and retry once
// with the finer homotopy schedule — and because no schedule rescues this
// profile (the poor point is a genuine equilibrium of the perturbed circuit),
// the original honest report must be preserved.
func TestCircuitPoorConvergenceRetryHonest(t *testing.T) {
	params := DefaultParams()
	params.Mode = ModeCircuit
	s, err := NewSolver(params)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Solve(graph.PaperFigure5())
	if err != nil {
		t.Fatalf("the fragile profile regressed from poor-but-converged to an error: %v", err)
	}
	if res.HomotopyRetries != 1 {
		t.Errorf("poor convergence did not trigger the finer-homotopy retry: retries = %d", res.HomotopyRetries)
	}
	if res.RelativeError <= PoorConvergenceRetryThreshold {
		t.Errorf("relative error %.3f no longer exceeds the poor threshold %.2f — update this pin, the retry now rescues the profile",
			res.RelativeError, PoorConvergenceRetryThreshold)
	}
	if res.FlowValue < 2.9 || res.FlowValue > 3.1 {
		t.Errorf("poor operating point moved: flow %.4f, historically ~3.01", res.FlowValue)
	}
	if res.ExactValue != graph.PaperFigure5MaxFlow {
		t.Errorf("exact reference %.4f, want %g", res.ExactValue, graph.PaperFigure5MaxFlow)
	}
}

// TestCircuitCleanProfileNeedsNoRetry guards the other side: the
// clean-variation configuration converges within the substrate's intrinsic
// error band and must not pay for a retry.
func TestCircuitCleanProfileNeedsNoRetry(t *testing.T) {
	params := DefaultParams()
	params.Mode = ModeCircuit
	params.Variation = DefaultCleanVariation()
	s, err := NewSolver(params)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Solve(graph.PaperFigure5())
	if err != nil {
		t.Fatal(err)
	}
	if res.HomotopyRetries != 0 {
		t.Errorf("clean profile triggered %d retries (rel err %.3f)", res.HomotopyRetries, res.RelativeError)
	}
	if res.RelativeError > PoorConvergenceRetryThreshold {
		t.Errorf("clean profile reads %.3f relative error, above the poor threshold", res.RelativeError)
	}
}

// cleanCircuitParams returns a deterministic circuit configuration for the
// session-update tests.
func cleanCircuitParams() Params {
	p := DefaultParams()
	p.Mode = ModeCircuit
	p.Variation = DefaultCleanVariation()
	return p
}

// TestSessionRebindWarmCircuit walks an updatable circuit session through a
// capacity update and pins the warm invariants: the clamp re-stamp keeps the
// frozen sparsity pattern (zero new symbolic factorizations), and the warm
// result matches a cold solve of the updated instance to solver tolerance.
func TestSessionRebindWarmCircuit(t *testing.T) {
	params := cleanCircuitParams()
	g := graph.PaperFigure5()
	prep, err := Prepare(g, params)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := NewUpdatableSessionPrepared(params, prep)
	if err != nil {
		t.Fatal(err)
	}
	if !sess.Updatable() {
		t.Fatal("session not marked updatable")
	}
	ctx := context.Background()
	if _, err := sess.Solve(ctx); err != nil {
		t.Fatal(err)
	}
	base, ok := sess.EngineStats()
	if !ok {
		t.Fatal("no engine after first circuit solve")
	}

	// Capacity-only mutation: x2 (edge 1) gains capacity, x4 (edge 3) loses
	// none of its positivity.
	g2 := g.Clone()
	if _, err := g2.ApplyCapacityUpdate(graph.CapacityUpdate{Edges: []int{1, 4}, Capacities: []float64{3, 3}}); err != nil {
		t.Fatal(err)
	}
	prep2, err := Prepare(g2, params)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Rebind(prep2); err != nil {
		t.Fatal(err)
	}
	warm, err := sess.Solve(ctx)
	if err != nil {
		t.Fatal(err)
	}
	after, _ := sess.EngineStats()
	if after.Factorizations != base.Factorizations {
		t.Errorf("capacity update cost %d new symbolic factorizations (%d -> %d)",
			after.Factorizations-base.Factorizations, base.Factorizations, after.Factorizations)
	}
	if after.Refactorizations <= base.Refactorizations {
		t.Errorf("warm re-solve did not run on the refactor path: %d -> %d refactorizations",
			base.Refactorizations, after.Refactorizations)
	}

	// Cold baseline: a fresh updatable session on the mutated instance (the
	// same private-clamp build the warm path uses, minus all warm state).
	coldSess, err := NewUpdatableSessionPrepared(params, mustPrepare(t, g2, params))
	if err != nil {
		t.Fatal(err)
	}
	cold, err := coldSess.Solve(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(warm.FlowValue-cold.FlowValue) > 1e-6*math.Max(1, math.Abs(cold.FlowValue)) {
		t.Errorf("warm flow %.9f, cold flow %.9f", warm.FlowValue, cold.FlowValue)
	}
	if warm.ExactValue != cold.ExactValue {
		t.Errorf("warm exact %.9f, cold exact %.9f", warm.ExactValue, cold.ExactValue)
	}
}

// TestSessionRebindRejections pins the failure modes: plain sessions refuse
// Rebind, and structural changes are refused with ErrIncompatibleUpdate.
func TestSessionRebindRejections(t *testing.T) {
	params := cleanCircuitParams()
	g := graph.PaperFigure5()
	prep, err := Prepare(g, params)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := NewSessionPrepared(params, prep)
	if err != nil {
		t.Fatal(err)
	}
	if err := plain.Rebind(prep); !errors.Is(err, ErrSessionNotUpdatable) {
		t.Errorf("plain session Rebind: want ErrSessionNotUpdatable, got %v", err)
	}

	sess, err := NewUpdatableSessionPrepared(params, prep)
	if err != nil {
		t.Fatal(err)
	}
	// Zeroing edge 2 removes it (and its whole branch) from the s-t core:
	// a structural change the warm state must refuse.
	g2 := g.Clone()
	if _, err := g2.ApplyCapacityUpdate(graph.CapacityUpdate{Edges: []int{2}, Capacities: []float64{0}}); err != nil {
		t.Fatal(err)
	}
	prep2, err := Prepare(g2, params)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Rebind(prep2); !errors.Is(err, ErrIncompatibleUpdate) {
		t.Errorf("structural change: want ErrIncompatibleUpdate, got %v", err)
	}
	if err := sess.Rebind(nil); err == nil {
		t.Error("nil prep accepted")
	}
}

// TestSessionRebindWarmBehavioral pins warm/cold bit-identity for the
// behavioral model: the behavioral solve is a deterministic function of the
// prepared instance and the seed, and the warm exact-reference network must
// reproduce the cold reference value exactly on integral instances.
func TestSessionRebindWarmBehavioral(t *testing.T) {
	params := DefaultParams()
	g := graph.PaperFigure5()
	prep, err := Prepare(g, params)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := NewUpdatableSessionPrepared(params, prep)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := sess.Solve(ctx); err != nil {
		t.Fatal(err)
	}
	g2 := g.Clone()
	if _, err := g2.ApplyCapacityUpdate(graph.CapacityUpdate{Edges: []int{3}, Capacities: []float64{2}}); err != nil {
		t.Fatal(err)
	}
	prep2, err := Prepare(g2, params)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Rebind(prep2); err != nil {
		t.Fatal(err)
	}
	warm, err := sess.Solve(ctx)
	if err != nil {
		t.Fatal(err)
	}
	coldSess, err := NewSessionPrepared(params, mustPrepare(t, g2, params))
	if err != nil {
		t.Fatal(err)
	}
	cold, err := coldSess.Solve(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if warm.FlowValue != cold.FlowValue || warm.ExactValue != cold.ExactValue || warm.RelativeError != cold.RelativeError {
		t.Errorf("behavioral warm/cold mismatch:\nwarm: %.12g %.12g %.12g\ncold: %.12g %.12g %.12g",
			warm.FlowValue, warm.ExactValue, warm.RelativeError, cold.FlowValue, cold.ExactValue, cold.RelativeError)
	}
	for i := range warm.Flow.Edge {
		if warm.Flow.Edge[i] != cold.Flow.Edge[i] {
			t.Errorf("edge %d: warm flow %.12g, cold flow %.12g", i, warm.Flow.Edge[i], cold.Flow.Edge[i])
		}
	}
}

func mustPrepare(t *testing.T, g *graph.Graph, p Params) *Prepared {
	t.Helper()
	prep, err := Prepare(g, p)
	if err != nil {
		t.Fatal(err)
	}
	return prep
}
