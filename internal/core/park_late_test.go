package core

import (
	"context"
	"testing"

	"analogflow/internal/graph"
)

// Park an edge on a circuit session whose circuit was built with zero parked
// edges (no park shunts instantiated).
func TestParkAfterUnparkedBuild(t *testing.T) {
	params := cleanCircuitParams()
	g := graph.MustNew(3, 0, 2)
	g.MustAddEdge(0, 1, 3)
	g.MustAddEdge(1, 2, 2)
	g.MustAddEdge(1, 2, 2)
	sess, err := NewUpdatableSessionPrepared(params, mustPrepare(t, g, params))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	res, err := sess.Solve(ctx)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("base exact=%v flow=%v edges=%v", res.ExactValue, res.FlowValue, res.Flow.Edge)

	gParked := g.Clone()
	if _, err := gParked.ApplyStructuralUpdate(graph.StructuralUpdate{RemoveEdges: []int{2}}); err != nil {
		t.Fatal(err)
	}
	if err := sess.RebindStructural(mustPrepare(t, gParked, params)); err != nil {
		t.Fatalf("RebindStructural(park): %v", err)
	}
	warm, err := sess.Solve(ctx)
	if err != nil {
		t.Fatalf("warm solve after late park: %v", err)
	}
	t.Logf("parked exact=%v flow=%v edges=%v", warm.ExactValue, warm.FlowValue, warm.Flow.Edge)
	if warm.ExactValue != 2 {
		t.Errorf("parked exact value %v, want 2", warm.ExactValue)
	}
	if warm.Flow.Edge[2] != 0 {
		t.Errorf("parked edge carries flow %g, want 0", warm.Flow.Edge[2])
	}
}
