package core

import (
	"context"
	"errors"
	"fmt"

	"analogflow/internal/builder"
	"analogflow/internal/circuit"
	"analogflow/internal/graph"
	"analogflow/internal/mna"
	"analogflow/internal/variation"
)

// solveCircuitPrepared runs the full MNA circuit emulation: build the
// Section 2 circuit for the quantized instance, find its DC steady state
// (direct Newton first, source-stepping homotopy as a fallback), read the
// edge-node voltages back and de-quantize them into flows.
func (s *Solver) solveCircuitPrepared(ctx context.Context, prep *Prepared) (*Result, error) {
	if prep.Empty() {
		empty := s.emptyResult(prep, ModeCircuit)
		if err := s.finalizeEmpty(ctx, empty, prep.original); err != nil {
			return nil, err
		}
		return empty, nil
	}
	c, eng, err := s.buildCircuit(prep.work, prep.clamps)
	if err != nil {
		return nil, err
	}
	return s.solveCircuitWith(ctx, prep, c, eng)
}

// PoorConvergenceRetryThreshold is the relative error above which a converged
// circuit operating point is considered "poor" and re-attempted once with the
// finer homotopy schedule below.  The substrate's intrinsic quantization and
// gain error sit around 10-15% on the worked examples; an operating point off
// by more than this threshold is a spurious equilibrium of the perturbed
// constraint network (docs/solver.md, "circuit-mode fragility"), which a
// slower quasi-static ramp sometimes avoids.
const PoorConvergenceRetryThreshold = 0.25

// poorRetryHomotopySteps is the finer source-stepping schedule of the retry
// (the standard fallback uses 8 levels).
const poorRetryHomotopySteps = 64

// solveCircuitWith runs the circuit emulation on an already-built circuit and
// engine.  It is the reusable back half behind both one-shot solves and
// Session, whose cached engine makes repeated solves hit the numeric-only
// refactorization path of internal/mna.  The context is threaded into the
// Newton iteration through the engine interrupt hook.
func (s *Solver) solveCircuitWith(ctx context.Context, prep *Prepared, c *builder.Circuit, eng *mna.Engine) (*Result, error) {
	res, _, err := s.solveCircuitWithGuess(ctx, prep, c, eng, nil)
	return res, err
}

// solveCircuitWithGuess is solveCircuitWith with an optional Newton warm
// start (the previous operating point of an updatable session) and the solved
// raw operating point returned alongside, so the caller can keep it as the
// next warm start.
func (s *Solver) solveCircuitWithGuess(ctx context.Context, prep *Prepared, c *builder.Circuit, eng *mna.Engine, guess []float64) (*Result, *mna.Solution, error) {
	work := prep.work
	eng.SetInterrupt(ctx.Err)
	defer eng.SetInterrupt(nil)

	sol, waves, err := s.solveOperatingPointWarm(eng, guess)
	if err != nil {
		if isContextError(err) {
			// A cancelled or expired context is the caller's decision, not a
			// convergence failure; surface it undisguised.
			return nil, nil, err
		}
		return nil, nil, fmt.Errorf("core: circuit solve failed (the ideal-negative-resistance substrate is "+
			"numerically fragile on general graphs; see docs/solver.md): %w", err)
	}

	// readout converts a solved operating point into a finalized result.
	readout := func(sol *mna.Solution, waves int) (*Result, error) {
		res := &Result{Mode: ModeCircuit, Quantization: prep.qres}
		res.CircuitDescription = c.Describe()
		res.EdgeVoltages = c.EdgeVoltages(sol.Voltage)
		readFlow := graph.NewFlow(work)
		saturated := 0
		for i, v := range res.EdgeVoltages {
			if v < 0 {
				v = 0
			}
			if clamp := prep.clampOf(i); v > clamp {
				v = clamp
			}
			readFlow.Edge[i] = prep.qres.ToFlowUnits(v)
			if v >= prep.clampOf(i)*0.999 {
				saturated++
			}
		}
		res.FlowValue = prep.qres.ToFlowUnits(c.FlowValueVolts(sol.Voltage))
		readFlow.RecomputeValue(work)
		res.ConvergenceTime, _ = s.convergenceTimeModel(work, saturated)
		res.Waves = waves
		if err := s.finalize(ctx, res, prep, readFlow); err != nil {
			return nil, err
		}
		return res, nil
	}

	res, err := readout(sol, waves)
	if err != nil {
		return nil, nil, err
	}
	if res.RelativeError > PoorConvergenceRetryThreshold {
		// The point converged but reads far off the optimum: a spurious
		// equilibrium of the fragile constraint network.  Retry once with a
		// finer quasi-static ramp; keep whichever operating point reads
		// closer to the optimum, so a failed rescue still reports the
		// original honest result.
		res.HomotopyRetries = 1
		if hres, rerr := eng.OperatingPointHomotopy(0, poorRetryHomotopySteps); rerr == nil {
			res2, rerr2 := readout(hres.Solution, hres.TotalNewtonIterations)
			if rerr2 != nil {
				if isContextError(rerr2) {
					return nil, nil, rerr2
				}
			} else if res2.RelativeError < res.RelativeError {
				res2.HomotopyRetries = 1
				res, sol = res2, hres.Solution
			}
		} else if isContextError(rerr) {
			return nil, nil, rerr
		}
	}
	return res, sol, nil
}

// buildCircuit constructs the quantized-domain circuit for a (pruned) graph.
func (s *Solver) buildCircuit(pruned *graph.Graph, clampVoltages []float64) (*builder.Circuit, *mna.Engine, error) {
	return s.buildCircuitOpts(pruned, clampVoltages, false)
}

// buildCircuitOpts is buildCircuit with the clamp-source layout exposed:
// updatable sessions build with one private clamp source per edge so that a
// later capacity update is a pure element-value re-stamp (see
// builder.Options.PrivateClampSources).
func (s *Solver) buildCircuitOpts(pruned *graph.Graph, clampVoltages []float64, privateClamps bool) (*builder.Circuit, *mna.Engine, error) {
	opts := s.params.Builder
	opts.PrivateClampSources = privateClamps
	// Parked edges (structurally resident slots of removed or pre-declared
	// edges) carry a 0 V clamp: physically present, pinned to zero flow.
	opts.AllowZeroClamp = privateClamps || pruned.NumParked() > 0
	opts.VflowVoltage = s.vflowVoltage(pruned)
	if s.params.Variation.MismatchSigma > 0 || s.params.Variation.GlobalSigma > 0 || s.params.Variation.ParasiticResistance > 0 {
		profile := s.params.Variation
		if s.params.MatchedLayout || s.params.PostFabTuning {
			profile.MismatchSigma = variation.EffectiveMismatch(profile, s.params.MatchedLayout, s.params.PostFabTuning, s.params.Tuning)
		}
		profile.Seed = s.params.Seed
		sampler, err := variation.NewSampler(profile)
		if err != nil {
			return nil, nil, err
		}
		opts.PerturbResistance = sampler.PerturbFunc()
	}
	c, err := builder.BuildMaxFlow(pruned, clampVoltages, opts)
	if err != nil {
		return nil, nil, err
	}
	eng, err := mna.NewEngine(c.Netlist, mna.DefaultOptions())
	if err != nil {
		return nil, nil, err
	}
	return c, eng, nil
}

// solveOperatingPointWarm is solveOperatingPoint with an optional warm start:
// when a previous operating point is supplied (an updatable session after a
// capacity-only re-stamp), the Newton iteration starts there — the analog
// analogue of the substrate keeping its node voltages while the clamp levels
// are re-programmed.  A failed warm start falls back to the cold sequence.
func (s *Solver) solveOperatingPointWarm(eng *mna.Engine, guess []float64) (*mna.Solution, int, error) {
	if guess != nil {
		sol, err := eng.OperatingPointWithGuess(0, guess)
		if err == nil {
			return sol, sol.NewtonIterations, nil
		}
		if isContextError(err) {
			return nil, 0, err
		}
	}
	return s.solveOperatingPoint(eng)
}

// solveOperatingPoint finds the DC steady state, falling back to source
// stepping when the direct Newton solve does not converge.  It returns the
// solution and the total Newton iteration count (a proxy for the number of
// constraint-activation waves).
func (s *Solver) solveOperatingPoint(eng *mna.Engine) (*mna.Solution, int, error) {
	sol, err := eng.OperatingPoint(0)
	if err == nil {
		return sol, sol.NewtonIterations, nil
	}
	if isContextError(err) {
		// The direct solve was aborted by cancellation, not by the
		// numerics; starting the homotopy fallback would just burn time
		// until its own first interrupt poll.
		return nil, 0, err
	}
	hres, err := eng.OperatingPointHomotopy(0, 8)
	if err != nil {
		return nil, 0, err
	}
	return hres.Solution, hres.TotalNewtonIterations, nil
}

// isContextError reports whether err stems from context cancellation or an
// expired deadline (possibly wrapped by the engine layers).
func isContextError(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// WaveformResult is the outcome of a transient emulation of the compute
// phase (Section 3.2): Vflow steps up at t=0 and the node voltages settle
// toward the max-flow solution, reproducing Figure 5c.
type WaveformResult struct {
	// Times are the recorded simulation times.
	Times []float64
	// EdgeVoltages[i] is the waveform of edge node x_i (volts, quantized
	// domain), indexed [edge][time].
	EdgeVoltages [][]float64
	// FlowValueSeries is the de-quantized net source outflow over time.
	FlowValueSeries []float64
	// ConvergenceTime is the measured time at which the flow value settles
	// within 0.1% of its final value (the paper's definition), or -1.
	ConvergenceTime float64
	// FinalFlowValue is the settled flow value in capacity units.
	FinalFlowValue float64
	// CircuitDescription summarises the simulated netlist.
	CircuitDescription string
}

// SimulateWaveform runs a full transient of the substrate's compute phase on
// g and records the edge-node waveforms.  Intended for small instances (the
// paper's Figure 5); the cost grows with both circuit size and the number of
// time steps.
func (s *Solver) SimulateWaveform(g *graph.Graph, duration float64, steps int) (*WaveformResult, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if duration <= 0 || steps < 10 {
		return nil, fmt.Errorf("core: waveform needs a positive duration and at least 10 steps")
	}
	prep, err := s.prepare(g)
	if err != nil {
		return nil, err
	}
	if prep.Empty() {
		return nil, fmt.Errorf("core: instance has no s-t structure to simulate")
	}
	work := prep.work
	opts := s.params.Builder
	// The waveform study uses the terminal-level negative-resistance model
	// with the parasitic capacitance attached to the edge nodes only: the
	// internal widget nodes are driven by op-amp outputs in the real
	// substrate, so their settling is not limited by the wire parasitics.
	// (The full op-amp expansion is available through builder.NegResOpAmp
	// for DC studies; its conditional NIC stability makes long transients
	// fragile, which docs/solver.md discusses.)
	opts.NegResMode = builder.NegResIdeal
	opts.ParasiticOnEdgeNodesOnly = true
	opts.VflowVoltage = s.vflowVoltage(work)
	opts.VflowWaveform = circuit.Step{Initial: 0, Final: opts.VflowVoltage, T0: 0, RiseTime: duration / 100}
	c, err := builder.BuildMaxFlow(work, prep.clamps, opts)
	if err != nil {
		return nil, err
	}
	eng, err := mna.NewEngine(c.Netlist, mna.DefaultOptions())
	if err != nil {
		return nil, err
	}
	spec := mna.TransientSpec{
		Stop:                 duration,
		Step:                 duration / float64(steps),
		Monitor:              func(sol *mna.Solution) float64 { return c.FlowValueVolts(sol.Voltage) },
		ConvergenceTolerance: 1e-3,
	}
	tr, err := eng.Transient(spec)
	if err != nil {
		return nil, err
	}
	out := &WaveformResult{
		Times:              tr.Times,
		ConvergenceTime:    tr.ConvergenceTime,
		FinalFlowValue:     prep.qres.ToFlowUnits(tr.FinalMonitorValue),
		CircuitDescription: c.Describe(),
	}
	out.EdgeVoltages = make([][]float64, work.NumEdges())
	for i := 0; i < work.NumEdges(); i++ {
		out.EdgeVoltages[i] = tr.VoltageSeries(c.EdgeNode[i])
	}
	out.FlowValueSeries = make([]float64, len(tr.MonitorValues))
	for i, v := range tr.MonitorValues {
		out.FlowValueSeries[i] = prep.qres.ToFlowUnits(v)
	}
	return out, nil
}
