package core

import (
	"context"
	"errors"
	"fmt"

	"analogflow/internal/builder"
	"analogflow/internal/circuit"
	"analogflow/internal/graph"
	"analogflow/internal/mna"
	"analogflow/internal/variation"
)

// solveCircuitPrepared runs the full MNA circuit emulation: build the
// Section 2 circuit for the quantized instance, find its DC steady state
// (direct Newton first, source-stepping homotopy as a fallback), read the
// edge-node voltages back and de-quantize them into flows.
func (s *Solver) solveCircuitPrepared(ctx context.Context, prep *Prepared) (*Result, error) {
	if prep.Empty() {
		empty := s.emptyResult(prep, ModeCircuit)
		if err := s.finalizeEmpty(ctx, empty, prep.original); err != nil {
			return nil, err
		}
		return empty, nil
	}
	c, eng, err := s.buildCircuit(prep.work, prep.clamps)
	if err != nil {
		return nil, err
	}
	return s.solveCircuitWith(ctx, prep, c, eng)
}

// solveCircuitWith runs the circuit emulation on an already-built circuit and
// engine.  It is the reusable back half behind both one-shot solves and
// Session, whose cached engine makes repeated solves hit the numeric-only
// refactorization path of internal/mna.  The context is threaded into the
// Newton iteration through the engine interrupt hook.
func (s *Solver) solveCircuitWith(ctx context.Context, prep *Prepared, c *builder.Circuit, eng *mna.Engine) (*Result, error) {
	res := &Result{Mode: ModeCircuit, Quantization: prep.qres}
	work := prep.work
	res.CircuitDescription = c.Describe()
	eng.SetInterrupt(ctx.Err)
	defer eng.SetInterrupt(nil)

	sol, waves, err := s.solveOperatingPoint(eng)
	if err != nil {
		if isContextError(err) {
			// A cancelled or expired context is the caller's decision, not a
			// convergence failure; surface it undisguised.
			return nil, err
		}
		return nil, fmt.Errorf("core: circuit solve failed (the ideal-negative-resistance substrate is "+
			"numerically fragile on general graphs; see docs/solver.md): %w", err)
	}

	// Read the edge voltages and convert back to flow units.
	res.EdgeVoltages = c.EdgeVoltages(sol.Voltage)
	readFlow := graph.NewFlow(work)
	saturated := 0
	for i, v := range res.EdgeVoltages {
		if v < 0 {
			v = 0
		}
		if clamp := prep.clampOf(i); v > clamp {
			v = clamp
		}
		readFlow.Edge[i] = prep.qres.ToFlowUnits(v)
		if v >= prep.clampOf(i)*0.999 {
			saturated++
		}
	}
	res.FlowValue = prep.qres.ToFlowUnits(c.FlowValueVolts(sol.Voltage))
	readFlow.RecomputeValue(work)

	res.ConvergenceTime, _ = s.convergenceTimeModel(work, saturated)
	res.Waves = waves
	if err := s.finalize(ctx, res, prep, readFlow); err != nil {
		return nil, err
	}
	return res, nil
}

// buildCircuit constructs the quantized-domain circuit for a (pruned) graph.
func (s *Solver) buildCircuit(pruned *graph.Graph, clampVoltages []float64) (*builder.Circuit, *mna.Engine, error) {
	opts := s.params.Builder
	opts.VflowVoltage = s.vflowVoltage(pruned)
	if s.params.Variation.MismatchSigma > 0 || s.params.Variation.GlobalSigma > 0 || s.params.Variation.ParasiticResistance > 0 {
		profile := s.params.Variation
		if s.params.MatchedLayout || s.params.PostFabTuning {
			profile.MismatchSigma = variation.EffectiveMismatch(profile, s.params.MatchedLayout, s.params.PostFabTuning, s.params.Tuning)
		}
		profile.Seed = s.params.Seed
		sampler, err := variation.NewSampler(profile)
		if err != nil {
			return nil, nil, err
		}
		opts.PerturbResistance = sampler.PerturbFunc()
	}
	c, err := builder.BuildMaxFlow(pruned, clampVoltages, opts)
	if err != nil {
		return nil, nil, err
	}
	eng, err := mna.NewEngine(c.Netlist, mna.DefaultOptions())
	if err != nil {
		return nil, nil, err
	}
	return c, eng, nil
}

// solveOperatingPoint finds the DC steady state, falling back to source
// stepping when the direct Newton solve does not converge.  It returns the
// solution and the total Newton iteration count (a proxy for the number of
// constraint-activation waves).
func (s *Solver) solveOperatingPoint(eng *mna.Engine) (*mna.Solution, int, error) {
	sol, err := eng.OperatingPoint(0)
	if err == nil {
		return sol, sol.NewtonIterations, nil
	}
	if isContextError(err) {
		// The direct solve was aborted by cancellation, not by the
		// numerics; starting the homotopy fallback would just burn time
		// until its own first interrupt poll.
		return nil, 0, err
	}
	hres, err := eng.OperatingPointHomotopy(0, 8)
	if err != nil {
		return nil, 0, err
	}
	return hres.Solution, hres.TotalNewtonIterations, nil
}

// isContextError reports whether err stems from context cancellation or an
// expired deadline (possibly wrapped by the engine layers).
func isContextError(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// WaveformResult is the outcome of a transient emulation of the compute
// phase (Section 3.2): Vflow steps up at t=0 and the node voltages settle
// toward the max-flow solution, reproducing Figure 5c.
type WaveformResult struct {
	// Times are the recorded simulation times.
	Times []float64
	// EdgeVoltages[i] is the waveform of edge node x_i (volts, quantized
	// domain), indexed [edge][time].
	EdgeVoltages [][]float64
	// FlowValueSeries is the de-quantized net source outflow over time.
	FlowValueSeries []float64
	// ConvergenceTime is the measured time at which the flow value settles
	// within 0.1% of its final value (the paper's definition), or -1.
	ConvergenceTime float64
	// FinalFlowValue is the settled flow value in capacity units.
	FinalFlowValue float64
	// CircuitDescription summarises the simulated netlist.
	CircuitDescription string
}

// SimulateWaveform runs a full transient of the substrate's compute phase on
// g and records the edge-node waveforms.  Intended for small instances (the
// paper's Figure 5); the cost grows with both circuit size and the number of
// time steps.
func (s *Solver) SimulateWaveform(g *graph.Graph, duration float64, steps int) (*WaveformResult, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if duration <= 0 || steps < 10 {
		return nil, fmt.Errorf("core: waveform needs a positive duration and at least 10 steps")
	}
	prep, err := s.prepare(g)
	if err != nil {
		return nil, err
	}
	if prep.Empty() {
		return nil, fmt.Errorf("core: instance has no s-t structure to simulate")
	}
	work := prep.work
	opts := s.params.Builder
	// The waveform study uses the terminal-level negative-resistance model
	// with the parasitic capacitance attached to the edge nodes only: the
	// internal widget nodes are driven by op-amp outputs in the real
	// substrate, so their settling is not limited by the wire parasitics.
	// (The full op-amp expansion is available through builder.NegResOpAmp
	// for DC studies; its conditional NIC stability makes long transients
	// fragile, which docs/solver.md discusses.)
	opts.NegResMode = builder.NegResIdeal
	opts.ParasiticOnEdgeNodesOnly = true
	opts.VflowVoltage = s.vflowVoltage(work)
	opts.VflowWaveform = circuit.Step{Initial: 0, Final: opts.VflowVoltage, T0: 0, RiseTime: duration / 100}
	c, err := builder.BuildMaxFlow(work, prep.clamps, opts)
	if err != nil {
		return nil, err
	}
	eng, err := mna.NewEngine(c.Netlist, mna.DefaultOptions())
	if err != nil {
		return nil, err
	}
	spec := mna.TransientSpec{
		Stop:                 duration,
		Step:                 duration / float64(steps),
		Monitor:              func(sol *mna.Solution) float64 { return c.FlowValueVolts(sol.Voltage) },
		ConvergenceTolerance: 1e-3,
	}
	tr, err := eng.Transient(spec)
	if err != nil {
		return nil, err
	}
	out := &WaveformResult{
		Times:              tr.Times,
		ConvergenceTime:    tr.ConvergenceTime,
		FinalFlowValue:     prep.qres.ToFlowUnits(tr.FinalMonitorValue),
		CircuitDescription: c.Describe(),
	}
	out.EdgeVoltages = make([][]float64, work.NumEdges())
	for i := 0; i < work.NumEdges(); i++ {
		out.EdgeVoltages[i] = tr.VoltageSeries(c.EdgeNode[i])
	}
	out.FlowValueSeries = make([]float64, len(tr.MonitorValues))
	for i, v := range tr.MonitorValues {
		out.FlowValueSeries[i] = prep.qres.ToFlowUnits(v)
	}
	return out, nil
}
