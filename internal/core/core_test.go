package core

import (
	"math"
	"testing"
	"testing/quick"

	"analogflow/internal/graph"
	"analogflow/internal/rmat"
)

func TestModeString(t *testing.T) {
	if ModeBehavioral.String() != "behavioral" || ModeCircuit.String() != "circuit" {
		t.Errorf("mode names wrong")
	}
	if Mode(9).String() == "" {
		t.Errorf("unknown mode should stringify")
	}
}

func TestParamsValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
	cases := []func(*Params){
		func(p *Params) { p.Mode = Mode(9) },
		func(p *Params) { p.Crossbar.Rows = 1 },
		func(p *Params) { p.Quantization.Levels = 0 },
		func(p *Params) { p.Builder.WidgetResistance = 0 },
		func(p *Params) { p.VflowMultiplier = 0 },
		func(p *Params) { p.Variation.GlobalSigma = -1 },
		func(p *Params) { p.Tuning.MaxIterations = 0 },
		func(p *Params) { p.ReadoutNoiseSigma = -1 },
		func(p *Params) { p.SettleCyclesPerWave = 0 },
		func(p *Params) { p.Power.StaticOverhead = -1 },
	}
	for i, mutate := range cases {
		p := DefaultParams()
		mutate(&p)
		if p.Validate() == nil {
			t.Errorf("case %d: invalid params accepted", i)
		}
	}
	if _, err := NewSolver(Params{}); err == nil {
		t.Errorf("zero params accepted")
	}
}

func TestParamsHelpers(t *testing.T) {
	p := DefaultParams()
	if p.GBW() != p.Builder.OpAmp.GBW {
		t.Errorf("GBW accessor wrong")
	}
	if p.WithGBW(50e9).Builder.OpAmp.GBW != 50e9 {
		t.Errorf("WithGBW did not apply")
	}
	if p.WithLevels(40).Quantization.Levels != 40 {
		t.Errorf("WithLevels did not apply")
	}
	// The originals are unchanged (value semantics).
	if p.Builder.OpAmp.GBW == 50e9 || p.Quantization.Levels == 40 {
		t.Errorf("With* helpers mutated the receiver")
	}
}

func TestSolveRejectsBadInput(t *testing.T) {
	s, err := NewSolver(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Solve(nil); err == nil {
		t.Errorf("nil graph accepted")
	}
	p := DefaultParams()
	p.Crossbar.Rows, p.Crossbar.Cols = 4, 4
	small, err := NewSolver(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := small.Solve(graph.PaperFigure5()); err == nil {
		t.Errorf("graph larger than the crossbar accepted")
	}
}

func TestBehavioralFigure5(t *testing.T) {
	s, err := NewSolver(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	g := graph.PaperFigure5()
	res, err := s.Solve(g)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != ModeBehavioral {
		t.Errorf("mode %v", res.Mode)
	}
	if res.ExactValue != graph.PaperFigure5MaxFlow {
		t.Errorf("exact value %g", res.ExactValue)
	}
	// The paper reports ~5 % deviation for this instance at N=20 levels;
	// allow up to 15 % (quantization pushes both unit edges down to 0.9).
	if res.RelativeError > 0.15 {
		t.Errorf("relative error %.3f too large", res.RelativeError)
	}
	if res.FlowValue <= 0 {
		t.Errorf("flow value %g", res.FlowValue)
	}
	// Convergence time lands in the paper's sub-10-microsecond band.
	if res.ConvergenceTime <= 0 || res.ConvergenceTime > 1e-4 {
		t.Errorf("convergence time %g outside expected band", res.ConvergenceTime)
	}
	// Power: (|V| + |E|) * 500 µW = 10 * 500 µW.
	if math.Abs(res.SubstratePower-10*500e-6) > 1e-9 {
		t.Errorf("substrate power %g", res.SubstratePower)
	}
	if res.Energy <= 0 || res.Energy > res.SubstratePower*1e-3 {
		t.Errorf("energy %g inconsistent", res.Energy)
	}
	if res.ProgrammingTime != 5*s.params.Crossbar.CycleTime {
		t.Errorf("programming time %g", res.ProgrammingTime)
	}
	// Flow is feasible on the original graph within quantization slack.
	rep := res.Flow.CheckFeasibility(g)
	if rep.MaxCapacityViolation > 0.01 || rep.MaxNegativeFlow > 0.01 {
		t.Errorf("behavioural flow violates capacities: %v", rep)
	}
	if len(res.EdgeVoltages) != g.NumEdges() {
		t.Errorf("edge voltages length %d", len(res.EdgeVoltages))
	}
	if res.Quantization == nil || res.Waves <= 0 {
		t.Errorf("missing metadata")
	}
}

func TestBehavioralGBWSpeedup(t *testing.T) {
	g := rmat.MustGenerate(rmat.SparseParams(128, 5))
	slow, err := NewSolver(DefaultParams().WithGBW(10e9))
	if err != nil {
		t.Fatal(err)
	}
	fast, err := NewSolver(DefaultParams().WithGBW(50e9))
	if err != nil {
		t.Fatal(err)
	}
	rs, err := slow.Solve(g)
	if err != nil {
		t.Fatal(err)
	}
	rf, err := fast.Solve(g)
	if err != nil {
		t.Fatal(err)
	}
	ratio := rs.ConvergenceTime / rf.ConvergenceTime
	// 5x GBW should give roughly 5x faster settling (the RC term makes it
	// slightly less).
	if ratio < 3 || ratio > 6 {
		t.Errorf("GBW speedup ratio %g, want ~5", ratio)
	}
}

func TestBehavioralQuantizationLevelsReduceError(t *testing.T) {
	g := rmat.MustGenerate(rmat.DefaultParams(96, 400, 11))
	coarseParams := DefaultParams().WithLevels(4)
	coarseParams.ReadoutNoiseSigma = 0
	fineParams := DefaultParams().WithLevels(64)
	fineParams.ReadoutNoiseSigma = 0
	coarse, _ := NewSolver(coarseParams)
	fine, _ := NewSolver(fineParams)
	rc, err := coarse.Solve(g)
	if err != nil {
		t.Fatal(err)
	}
	rf, err := fine.Solve(g)
	if err != nil {
		t.Fatal(err)
	}
	if rf.RelativeError > rc.RelativeError+0.02 {
		t.Errorf("finer quantization should not be much worse: N=4 err %.3f vs N=64 err %.3f",
			rc.RelativeError, rf.RelativeError)
	}
}

func TestBehavioralErrorBandOnRMATSweep(t *testing.T) {
	// The headline claim reproduced from Figure 10: relative error stays in
	// the single-digit percent range on R-MAT instances.
	var worst, sum float64
	n := 0
	for _, seed := range []int64{1, 2, 3, 4, 5, 6} {
		g := rmat.MustGenerate(rmat.SparseParams(192, seed))
		s, err := NewSolver(DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Solve(g)
		if err != nil {
			t.Fatal(err)
		}
		if res.ExactValue == 0 {
			continue
		}
		sum += res.RelativeError
		n++
		if res.RelativeError > worst {
			worst = res.RelativeError
		}
	}
	if n == 0 {
		t.Fatal("no instances evaluated")
	}
	mean := sum / float64(n)
	t.Logf("behavioural relative error: mean %.2f%%, worst %.2f%%", 100*mean, 100*worst)
	if mean > 0.10 {
		t.Errorf("mean relative error %.2f%% exceeds 10%%", 100*mean)
	}
	if worst > 0.20 {
		t.Errorf("worst relative error %.2f%% exceeds 20%%", 100*worst)
	}
}

func TestBehavioralNoPathInstance(t *testing.T) {
	g := graph.MustNew(4, 0, 3)
	g.MustAddEdge(0, 1, 5)
	g.MustAddEdge(2, 3, 5)
	s, _ := NewSolver(DefaultParams())
	res, err := s.Solve(g)
	if err != nil {
		t.Fatal(err)
	}
	if res.FlowValue != 0 || res.ExactValue != 0 {
		t.Errorf("no-path instance should give zero flow: %+v", res)
	}
}

func TestBehavioralDeterminism(t *testing.T) {
	g := rmat.MustGenerate(rmat.SparseParams(96, 3))
	s1, _ := NewSolver(DefaultParams())
	s2, _ := NewSolver(DefaultParams())
	r1, err := s1.Solve(g)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s2.Solve(g)
	if err != nil {
		t.Fatal(err)
	}
	if r1.FlowValue != r2.FlowValue || r1.ConvergenceTime != r2.ConvergenceTime {
		t.Errorf("same seed produced different results")
	}
	p3 := DefaultParams()
	p3.Seed = 99
	s3, _ := NewSolver(p3)
	r3, err := s3.Solve(g)
	if err != nil {
		t.Fatal(err)
	}
	if r3.FlowValue == r1.FlowValue && r3.EdgeVoltages[0] == r1.EdgeVoltages[0] {
		t.Logf("different seeds produced identical readings (possible but unlikely)")
	}
}

func TestCircuitModeFigure5(t *testing.T) {
	p := DefaultParams()
	p.Mode = ModeCircuit
	p.Variation = DefaultCleanVariation()
	s, err := NewSolver(p)
	if err != nil {
		t.Fatal(err)
	}
	g := graph.PaperFigure5()
	res, err := s.Solve(g)
	if err != nil {
		t.Fatalf("circuit mode failed on Figure 5: %v", err)
	}
	if res.Mode != ModeCircuit {
		t.Errorf("mode %v", res.Mode)
	}
	// Quantization plus circuit non-idealities: allow 15 %.
	if res.RelativeError > 0.15 {
		t.Errorf("circuit-mode relative error %.3f", res.RelativeError)
	}
	if res.CircuitDescription == "" {
		t.Errorf("missing circuit description")
	}
	rep := res.Flow.CheckFeasibility(g)
	if rep.MaxCapacityViolation > 0.05 {
		t.Errorf("circuit flow violates capacities: %v", rep)
	}
}

func TestCircuitModeMatchesBehavioralOnFigure15(t *testing.T) {
	g := graph.PaperFigure15()
	pc := DefaultParams()
	pc.Mode = ModeCircuit
	pc.Variation = DefaultCleanVariation()
	pb := DefaultParams()
	pb.ReadoutNoiseSigma = 0
	sc, _ := NewSolver(pc)
	sb, _ := NewSolver(pb)
	rc, err := sc.Solve(g)
	if err != nil {
		t.Fatalf("circuit mode: %v", err)
	}
	rb, err := sb.Solve(g)
	if err != nil {
		t.Fatalf("behavioural mode: %v", err)
	}
	if math.Abs(rc.FlowValue-rb.FlowValue) > 0.25*rb.ExactValue {
		t.Errorf("modes disagree: circuit %.3f vs behavioural %.3f (exact %g)",
			rc.FlowValue, rb.FlowValue, rb.ExactValue)
	}
}

func TestSimulateWaveformFigure5(t *testing.T) {
	p := DefaultParams()
	p.Variation = DefaultCleanVariation()
	s, err := NewSolver(p)
	if err != nil {
		t.Fatal(err)
	}
	g := graph.PaperFigure5()
	wf, err := s.SimulateWaveform(g, 25e-9, 250)
	if err != nil {
		t.Fatalf("SimulateWaveform: %v", err)
	}
	if len(wf.Times) == 0 || len(wf.EdgeVoltages) != g.NumEdges() {
		t.Fatalf("waveform shape wrong")
	}
	// The flow value rises from zero toward its final value.
	first := wf.FlowValueSeries[0]
	last := wf.FinalFlowValue
	if first > 0.2 {
		t.Errorf("flow should start near zero, got %g", first)
	}
	if last < 1.0 || last > 2.5 {
		t.Errorf("final flow %g outside the plausible range around 2", last)
	}
	// Edge voltages never exceed the supply by more than a diode drop.
	for i := range wf.EdgeVoltages {
		for _, v := range wf.EdgeVoltages[i] {
			if v > s.params.Quantization.Vdd+0.1 || v < -0.1 {
				t.Fatalf("edge %d voltage %g outside [0, Vdd]", i, v)
			}
		}
	}
	if wf.CircuitDescription == "" {
		t.Errorf("missing circuit description")
	}
	// Bad arguments are rejected.
	if _, err := s.SimulateWaveform(g, 0, 100); err == nil {
		t.Errorf("zero duration accepted")
	}
	if _, err := s.SimulateWaveform(g, 1e-9, 2); err == nil {
		t.Errorf("too few steps accepted")
	}
}

// Property: the behavioural solver always produces a flow that is feasible
// for the original instance (within quantization slack) and never reports a
// flow value above the exact optimum by more than the readout noise allows.
func TestBehavioralInvariants(t *testing.T) {
	f := func(seed int64) bool {
		n := 16 + int(uint64(seed)%48)
		g, err := rmat.Generate(rmat.DefaultParams(n, 4*n, seed))
		if err != nil {
			return false
		}
		p := DefaultParams()
		p.Seed = seed
		s, err := NewSolver(p)
		if err != nil {
			return false
		}
		res, err := s.Solve(g)
		if err != nil {
			return false
		}
		if res.Flow == nil || len(res.Flow.Edge) != g.NumEdges() {
			return false
		}
		rep := res.Flow.CheckFeasibility(g)
		step := res.ExactValue*0.0 + g.MaxCapacity()/float64(p.Quantization.Levels)
		if rep.MaxCapacityViolation > step+3*p.ReadoutNoiseSigma*g.MaxCapacity() {
			return false
		}
		// The reading cannot exceed the true optimum by more than the
		// quantization step times the cut size plus readout noise; use a
		// generous bound.  (The floor quantizer under-approximates, so the
		// reading is normally below the optimum.)
		if res.FlowValue > res.ExactValue*1.3+1 {
			return false
		}
		// A positive reading implies the substrate actually settled.
		if res.FlowValue > 0 && res.ConvergenceTime <= 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
