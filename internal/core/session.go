package core

import (
	"context"
	"fmt"
	"sync"

	"analogflow/internal/builder"
	"analogflow/internal/graph"
	"analogflow/internal/mna"
)

// Session binds one parameter set to one problem instance and caches every
// reusable artifact across repeated solves: the preprocessing front half
// (prune + quantization) and, in circuit mode, the constructed circuit and
// its MNA engine.  Because an Engine keeps its frozen sparsity pattern and
// cached symbolic LU for its lifetime, every solve after the first runs on
// the numeric-only refactorization path of internal/mna — this is the warm
// path the batch service of internal/solve keeps per cached fingerprint.
//
// Unlike Solver.Solve, whose RNG state advances across calls, a Session
// draws a fresh RNG (seeded from Params.Seed) for every solve, so repeated
// Session solves of the same instance are bit-identical and independent of
// how many solves ran before — the determinism contract concurrent batch
// evaluation needs.
//
// A Session serialises its solves internally and is safe for concurrent use.
type Session struct {
	params Params

	mu     sync.Mutex
	prep   *Prepared
	circ   *builder.Circuit
	eng    *mna.Engine
	solves int
}

// NewSession validates the parameters, runs the preprocessing front half on
// g and returns a session bound to the pair.
func NewSession(p Params, g *graph.Graph) (*Session, error) {
	prep, err := Prepare(g, p)
	if err != nil {
		return nil, err
	}
	return NewSessionPrepared(p, prep)
}

// NewSessionPrepared builds a session around an externally prepared
// instance (from Prepare / PrepareWithCore).  The caller must have prepared
// with the same PruneGraph and Quantization settings as p; the session trusts
// the artifact.
func NewSessionPrepared(p Params, prep *Prepared) (*Session, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if prep == nil || prep.original == nil {
		return nil, fmt.Errorf("core: nil prepared instance")
	}
	if n := prep.original.NumVertices(); n > p.Crossbar.Rows || n > p.Crossbar.Cols {
		return nil, fmt.Errorf("core: graph with %d vertices exceeds the %dx%d crossbar",
			n, p.Crossbar.Rows, p.Crossbar.Cols)
	}
	return &Session{params: p, prep: prep}, nil
}

// Params returns the session's parameters.
func (sess *Session) Params() Params { return sess.params }

// Prepared returns the cached preprocessing artifacts.
func (sess *Session) Prepared() *Prepared { return sess.prep }

// Solves returns how many solves the session has completed.
func (sess *Session) Solves() int {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	return sess.solves
}

// EngineStats returns the cumulative linear-algebra counters of the cached
// circuit engine.  The second return is false until the first circuit-mode
// solve has built the engine (and always for behavioral sessions).
func (sess *Session) EngineStats() (mna.Stats, bool) {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if sess.eng == nil {
		return mna.Stats{}, false
	}
	return sess.eng.Stats(), true
}

// Solve runs one solve on the session's cached artifacts.  Concurrent calls
// are serialised (the cached engine is single-threaded by design); each call
// re-seeds the stochastic models so the result does not depend on the
// session's history.
func (sess *Session) Solve(ctx context.Context) (*Result, error) {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// A fresh Solver per solve resets the RNG; construction is a couple of
	// allocations, far below the cost of any solve.
	solver, err := NewSolver(sess.params)
	if err != nil {
		return nil, err
	}
	var res *Result
	switch sess.params.Mode {
	case ModeCircuit:
		res, err = sess.solveCircuitLocked(ctx, solver)
	default:
		res, err = solver.solveBehavioralPrepared(ctx, sess.prep)
	}
	if err != nil {
		return nil, err
	}
	sess.solves++
	return res, nil
}

// solveCircuitLocked is the circuit-mode path with the engine cache.
func (sess *Session) solveCircuitLocked(ctx context.Context, solver *Solver) (*Result, error) {
	prep := sess.prep
	if prep.Empty() {
		empty := solver.emptyResult(prep, ModeCircuit)
		if err := solver.finalizeEmpty(ctx, empty, prep.original); err != nil {
			return nil, err
		}
		return empty, nil
	}
	if sess.eng == nil {
		c, eng, err := solver.buildCircuit(prep.work, prep.clamps)
		if err != nil {
			return nil, err
		}
		sess.circ, sess.eng = c, eng
	}
	return solver.solveCircuitWith(ctx, prep, sess.circ, sess.eng)
}
