package core

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"analogflow/internal/builder"
	"analogflow/internal/graph"
	"analogflow/internal/maxflow"
	"analogflow/internal/mna"
)

// Errors of the incremental-update path.
var (
	// ErrSessionNotUpdatable is returned by Rebind on a session created with
	// NewSession/NewSessionPrepared (their circuit builds share clamp
	// sources between same-level edges, which an update cannot re-stamp).
	ErrSessionNotUpdatable = errors.New("core: session was not created updatable")
	// ErrIncompatibleUpdate is returned by Rebind when the new instance is
	// not a capacity-only mutation of the session's current one (the work
	// graph or a prune mapping changed), so the warm state cannot absorb it.
	ErrIncompatibleUpdate = errors.New("core: update changes the instance structure; warm state cannot absorb it")
)

// Session binds one parameter set to one problem instance and caches every
// reusable artifact across repeated solves: the preprocessing front half
// (prune + quantization) and, in circuit mode, the constructed circuit and
// its MNA engine.  Because an Engine keeps its frozen sparsity pattern and
// cached symbolic LU for its lifetime, every solve after the first runs on
// the numeric-only refactorization path of internal/mna — this is the warm
// path the batch service of internal/solve keeps per cached fingerprint.
//
// Unlike Solver.Solve, whose RNG state advances across calls, a Session
// draws a fresh RNG (seeded from Params.Seed) for every solve, so repeated
// Session solves of the same instance are bit-identical and independent of
// how many solves ran before — the determinism contract concurrent batch
// evaluation needs.
//
// A Session serialises its solves internally and is safe for concurrent use.
type Session struct {
	params Params

	mu     sync.Mutex
	prep   *Prepared
	circ   *builder.Circuit
	eng    *mna.Engine
	solves int

	// Incremental-update state (updatable sessions only, see Rebind).
	updatable bool
	// lastX is the previous circuit operating point, the Newton warm start
	// after a capacity re-stamp.
	lastX []float64
	// refNet is the warm exact-reference residual network on the s-t core;
	// it absorbs capacity updates incrementally so the reference Dinic solve
	// of every re-solve is an incremental re-augmentation, not a cold run.
	refNet *maxflow.Network
}

// NewSession validates the parameters, runs the preprocessing front half on
// g and returns a session bound to the pair.
func NewSession(p Params, g *graph.Graph) (*Session, error) {
	prep, err := Prepare(g, p)
	if err != nil {
		return nil, err
	}
	return NewSessionPrepared(p, prep)
}

// NewSessionPrepared builds a session around an externally prepared
// instance (from Prepare / PrepareWithCore).  The caller must have prepared
// with the same PruneGraph and Quantization settings as p; the session trusts
// the artifact.
func NewSessionPrepared(p Params, prep *Prepared) (*Session, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if prep == nil || prep.original == nil {
		return nil, fmt.Errorf("core: nil prepared instance")
	}
	if n := prep.original.NumVertices(); n > p.Crossbar.Rows || n > p.Crossbar.Cols {
		return nil, fmt.Errorf("core: graph with %d vertices exceeds the %dx%d crossbar",
			n, p.Crossbar.Rows, p.Crossbar.Cols)
	}
	return &Session{params: p, prep: prep}, nil
}

// NewUpdatableSessionPrepared is NewSessionPrepared for a session that will
// absorb capacity-only updates through Rebind.  Updatable sessions differ
// from plain ones in two value-level ways: the circuit is built with one
// private clamp source per edge (so clamp levels are re-stampable element
// values), and the exact-reference solve runs on a warm residual network that
// updates re-augment instead of re-solving.  Flow values and errors agree
// with plain sessions to solver tolerance; they are not bit-identical,
// because the private-clamp circuit has a few more MNA unknowns and the warm
// Newton iteration starts from the previous operating point.
func NewUpdatableSessionPrepared(p Params, prep *Prepared) (*Session, error) {
	sess, err := NewSessionPrepared(p, prep)
	if err != nil {
		return nil, err
	}
	sess.updatable = true
	return sess, nil
}

// Updatable reports whether the session accepts Rebind.
func (sess *Session) Updatable() bool { return sess.updatable }

// Rebind absorbs a capacity-only update: prep must be a Prepared of the same
// instance structure (Prepared.StructurallyCompatible) with possibly
// different capacities, quantization values and clamp levels.  The warm
// artifacts survive: the cached circuit gets its clamp sources re-stamped in
// place (pattern-frozen, so the engine's cached symbolic LU stays valid), the
// previous operating point becomes the next Newton warm start, and the
// reference residual network drains/extends to the new capacities.  A
// structural change returns ErrIncompatibleUpdate and leaves the session
// untouched; the caller then builds a fresh session.
func (sess *Session) Rebind(prep *Prepared) error {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if err := sess.checkRebindLocked(prep); err != nil {
		return err
	}
	if !sess.prep.StructurallyCompatible(prep) {
		return ErrIncompatibleUpdate
	}
	return sess.rebindValueLocked(prep)
}

// RebindStructural is Rebind for updates that may also change the instance
// structure through park/unpark and bounded edge insertion.
//
// Two shapes are absorbable warm:
//
//   - Same-shape updates (StructurallyCompatible), which is what park/unpark
//     produces: a removed edge stays structurally resident with a 0 V clamp
//     and capacity 0, an unpark restores positive values in place.  These take
//     the exact Rebind path — clamp re-stamp, warm Newton start, reference
//     network drain — so the cached circuit and its frozen sparsity pattern
//     survive, including for circuit-mode sessions.
//   - Structural extensions (StructurallyExtends), produced by insertions that
//     append edges.  The warm reference network splices fresh arcs in
//     (maxflow.Network.StructureTo) and re-augments; the Newton operating
//     point is dropped because the circuit would need new widgets.  Circuit
//     sessions that already built their engine cannot absorb an appended
//     widget and return ErrIncompatibleUpdate — the solve layer then rebuilds
//     the circuit cold while keeping everything else warm.
//
// Anything else returns ErrIncompatibleUpdate and leaves the session
// untouched.
func (sess *Session) RebindStructural(prep *Prepared) error {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if err := sess.checkRebindLocked(prep); err != nil {
		return err
	}
	if sess.prep.StructurallyCompatible(prep) {
		return sess.rebindValueLocked(prep)
	}
	if !sess.prep.StructurallyExtends(prep) {
		return ErrIncompatibleUpdate
	}
	if sess.eng != nil {
		// The cached circuit has no widgets for the appended edges; a
		// re-stamp cannot create them.
		return ErrIncompatibleUpdate
	}
	if sess.refNet != nil {
		// Splice the appended edges into the warm reference network and apply
		// the capacity deltas; the next solve re-augments incrementally.  A
		// failure only costs the warm reference — drop it and rebuild cold.
		if err := sess.refNet.StructureTo(prep.core); err != nil {
			sess.refNet = nil
		}
	}
	// The operating point indexes the old circuit's unknown vector; after a
	// structural extension it no longer lines up.
	sess.lastX = nil
	sess.prep = prep
	return nil
}

// parkStateChanged reports whether any work edge switched between parked
// (clamp 0) and active between two same-shape prepared instances.
func parkStateChanged(a, b *Prepared) bool {
	if len(a.clamps) != len(b.clamps) {
		return true
	}
	for i := range a.clamps {
		if (a.clamps[i] == 0) != (b.clamps[i] == 0) {
			return true
		}
	}
	return false
}

// checkRebindLocked validates the common Rebind preconditions.
func (sess *Session) checkRebindLocked(prep *Prepared) error {
	if !sess.updatable {
		return ErrSessionNotUpdatable
	}
	if prep == nil || prep.original == nil {
		return fmt.Errorf("core: nil prepared instance")
	}
	return nil
}

// rebindValueLocked absorbs a same-shape (capacity/clamp-level only) update
// into the warm artifacts.
func (sess *Session) rebindValueLocked(prep *Prepared) error {
	if sess.circ != nil && !prep.Empty() {
		if err := sess.circ.SetClampVoltages(prep.clamps); err != nil {
			return err
		}
	}
	if parkStateChanged(sess.prep, prep) {
		// A park or unpark moves the equilibrium discontinuously (a clamp
		// band collapses to [0,0] or reopens); the previous operating point
		// is then a misleading Newton start that costs far more iterations
		// than the homotopy's cold ramp.  The engine and its cached symbolic
		// LU stay — only the guess resets.
		sess.lastX = nil
	}
	if sess.refNet != nil {
		// Drain/extend the warm reference network; the next solve
		// re-augments it.  A failure here only costs the warm reference —
		// drop it and let the next solve rebuild cold.
		if err := sess.refNet.UpdateTo(prep.core); err != nil {
			sess.refNet = nil
		}
	}
	sess.prep = prep
	return nil
}

// ensureReferenceLocked keeps the warm exact-reference memo of an updatable
// session: the first call builds the residual network of the s-t core and
// solves it; after a Rebind the same network only re-augments.  Either way
// the resulting exact value seeds the Prepared memo, so finalize never runs
// a cold reference solve.  Callers hold sess.mu.
func (sess *Session) ensureReferenceLocked(ctx context.Context) error {
	prep := sess.prep
	if prep.core == nil || prep.core.NumEdges() == 0 {
		return nil
	}
	if sess.refNet == nil {
		prep.exactMu.Lock()
		done := prep.exactDone
		prep.exactMu.Unlock()
		if done {
			// Someone already paid for the reference (a cold Dinic through
			// the memo); building a warm network now would duplicate it.
			// The next Rebind starts the warm network from the new core.
			return nil
		}
		net, err := maxflow.NewNetwork(prep.core)
		if err != nil {
			return err
		}
		sess.refNet = net
	}
	f, err := sess.refNet.Solve(ctx, maxflow.Dinic)
	if err != nil {
		// Per the Network.Solve contract a failed solve poisons the warm
		// state; drop it so the next attempt rebuilds from the core.
		sess.refNet = nil
		return err
	}
	prep.SeedExactValue(f.Value)
	return nil
}

// Params returns the session's parameters.
func (sess *Session) Params() Params { return sess.params }

// Prepared returns the cached preprocessing artifacts.
func (sess *Session) Prepared() *Prepared { return sess.prep }

// Solves returns how many solves the session has completed.
func (sess *Session) Solves() int {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	return sess.solves
}

// EngineStats returns the cumulative linear-algebra counters of the cached
// circuit engine.  The second return is false until the first circuit-mode
// solve has built the engine (and always for behavioral sessions).
func (sess *Session) EngineStats() (mna.Stats, bool) {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if sess.eng == nil {
		return mna.Stats{}, false
	}
	return sess.eng.Stats(), true
}

// Solve runs one solve on the session's cached artifacts.  Concurrent calls
// are serialised (the cached engine is single-threaded by design); each call
// re-seeds the stochastic models so the result does not depend on the
// session's history.
func (sess *Session) Solve(ctx context.Context) (*Result, error) {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// A fresh Solver per solve resets the RNG; construction is a couple of
	// allocations, far below the cost of any solve.
	solver, err := NewSolver(sess.params)
	if err != nil {
		return nil, err
	}
	if sess.updatable {
		// Keep the warm exact-reference memo ahead of the mode dispatch, so
		// finalize reads the incrementally maintained value.
		if err := sess.ensureReferenceLocked(ctx); err != nil {
			return nil, err
		}
	}
	var res *Result
	switch sess.params.Mode {
	case ModeCircuit:
		res, err = sess.solveCircuitLocked(ctx, solver)
	default:
		res, err = solver.solveBehavioralPrepared(ctx, sess.prep)
	}
	if err != nil {
		return nil, err
	}
	sess.solves++
	return res, nil
}

// solveCircuitLocked is the circuit-mode path with the engine cache.
func (sess *Session) solveCircuitLocked(ctx context.Context, solver *Solver) (*Result, error) {
	prep := sess.prep
	if prep.Empty() {
		empty := solver.emptyResult(prep, ModeCircuit)
		if err := solver.finalizeEmpty(ctx, empty, prep.original); err != nil {
			return nil, err
		}
		return empty, nil
	}
	if sess.eng == nil {
		c, eng, err := solver.buildCircuitOpts(prep.work, prep.clamps, sess.updatable)
		if err != nil {
			return nil, err
		}
		if sess.updatable {
			// Pin the diagonal coordinates of every parked edge's node into
			// the frozen sparsity pattern before the first factorization.
			// Parked widgets already stamp nonzero at all their coordinates
			// (a 0 V clamp changes element values, not element presence), so
			// this is the formal guarantee that unparking stays on the
			// numeric-only refactorization path whatever the stamp values do.
			if parked := prep.work.ParkedEdges(); len(parked) > 0 {
				eng.ReserveSlack(len(parked))
				for _, i := range parked {
					eng.ReserveSlackAt(int(c.EdgeNode[i]), int(c.EdgeNode[i]))
				}
			}
		}
		sess.circ, sess.eng = c, eng
	}
	if !sess.updatable {
		return solver.solveCircuitWith(ctx, prep, sess.circ, sess.eng)
	}
	res, sol, err := solver.solveCircuitWithGuess(ctx, prep, sess.circ, sess.eng, sess.lastX)
	if err != nil {
		return nil, err
	}
	sess.lastX = append(sess.lastX[:0], sol.X...)
	return res, nil
}
