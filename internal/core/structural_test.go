package core

import (
	"context"
	"errors"
	"math"
	"testing"

	"analogflow/internal/graph"
)

// TestSessionStructuralParkUnparkCircuit pins the structural warm path for
// circuit sessions: a parked edge is structurally resident (0 V clamp,
// capacity 0), so unparking it — and re-parking it — is a value-level re-stamp
// that must keep the engine's frozen sparsity pattern: zero new symbolic
// factorizations across the whole park/unpark cycle.
func TestSessionStructuralParkUnparkCircuit(t *testing.T) {
	params := cleanCircuitParams()
	// Two parallel 1->2 lanes: parking one leaves every vertex alive through
	// the other, which is the prune's condition for keeping the slot.
	g := graph.MustNew(3, 0, 2)
	g.MustAddEdge(0, 1, 3)
	g.MustAddEdge(1, 2, 2)
	g.MustAddEdge(1, 2, 2)
	// Park the second lane from the start so the slot is resident.
	gParked := g.Clone()
	if _, err := gParked.ApplyStructuralUpdate(graph.StructuralUpdate{RemoveEdges: []int{2}}); err != nil {
		t.Fatal(err)
	}
	sess, err := NewUpdatableSessionPrepared(params, mustPrepare(t, gParked, params))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	parkedRes, err := sess.Solve(ctx)
	if err != nil {
		t.Fatalf("solve with parked edge: %v", err)
	}
	// With the second lane parked only the first carries flow.
	if parkedRes.ExactValue != 2 {
		t.Fatalf("parked instance exact value %.4f, want 2", parkedRes.ExactValue)
	}
	if parkedRes.Flow.Edge[2] != 0 {
		t.Fatalf("parked edge carries flow %g", parkedRes.Flow.Edge[2])
	}
	base, ok := sess.EngineStats()
	if !ok {
		t.Fatal("no engine after first circuit solve")
	}

	// Unpark: insert an edge with the parked slot's endpoints; the update
	// reclaims the slot in place, so the instance shape is unchanged.
	gBack := gParked.Clone()
	if _, err := gBack.ApplyStructuralUpdate(graph.StructuralUpdate{
		AddEdges: []graph.Edge{{From: 1, To: 2, Capacity: 2}},
	}); err != nil {
		t.Fatal(err)
	}
	if gBack.NumParked() != 0 {
		t.Fatalf("unpark left %d parked edges", gBack.NumParked())
	}
	if err := sess.RebindStructural(mustPrepare(t, gBack, params)); err != nil {
		t.Fatalf("RebindStructural(unpark): %v", err)
	}
	warm, err := sess.Solve(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// Both lanes open: the s->1 capacity 3 binds.
	if warm.ExactValue != 3 {
		t.Errorf("unparked exact value %.4f, want 3", warm.ExactValue)
	}

	// Park it again: the edge stays resident with a 0 V clamp.
	gPark2 := gBack.Clone()
	if _, err := gPark2.ApplyStructuralUpdate(graph.StructuralUpdate{RemoveEdges: []int{2}}); err != nil {
		t.Fatal(err)
	}
	if err := sess.RebindStructural(mustPrepare(t, gPark2, params)); err != nil {
		t.Fatalf("RebindStructural(re-park): %v", err)
	}
	reparked, err := sess.Solve(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if reparked.ExactValue != 2 {
		t.Errorf("re-parked exact value %.4f, want 2", reparked.ExactValue)
	}

	after, _ := sess.EngineStats()
	if after.Factorizations != base.Factorizations {
		t.Errorf("park/unpark cycle cost %d new symbolic factorizations (%d -> %d)",
			after.Factorizations-base.Factorizations, base.Factorizations, after.Factorizations)
	}
	if after.Refactorizations <= base.Refactorizations {
		t.Errorf("structural re-solves did not run on the refactor path: %d -> %d",
			base.Refactorizations, after.Refactorizations)
	}

	// Warm unparked solve must agree with a cold solve of the same instance.
	coldSess, err := NewUpdatableSessionPrepared(params, mustPrepare(t, gBack, params))
	if err != nil {
		t.Fatal(err)
	}
	cold, err := coldSess.Solve(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(warm.FlowValue-cold.FlowValue) > 1e-6*math.Max(1, math.Abs(cold.FlowValue)) {
		t.Errorf("warm flow %.9f, cold flow %.9f", warm.FlowValue, cold.FlowValue)
	}
}

// TestSessionStructuralExtensionBehavioral pins the appended-edge warm path
// for behavioral sessions: an insertion that cannot reclaim a parked slot
// appends to the work graph; the session absorbs it (no circuit engine to
// invalidate) and the warm reference network splices the new arcs in, so the
// result is bit-identical to a cold session of the extended instance.
func TestSessionStructuralExtensionBehavioral(t *testing.T) {
	params := DefaultParams()
	g := graph.PaperFigure5()
	sess, err := NewUpdatableSessionPrepared(params, mustPrepare(t, g, params))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := sess.Solve(ctx); err != nil {
		t.Fatal(err)
	}

	// Append a crossover n2->n3: no parked slot matches, so the edge appends.
	g2 := g.Clone()
	if _, err := g2.ApplyStructuralUpdate(graph.StructuralUpdate{
		AddEdges: []graph.Edge{{From: 2, To: 3, Capacity: 1}},
	}); err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != g.NumEdges()+1 {
		t.Fatalf("expected an appended edge, got %d edges", g2.NumEdges())
	}
	if err := sess.RebindStructural(mustPrepare(t, g2, params)); err != nil {
		t.Fatalf("RebindStructural(extension): %v", err)
	}
	warm, err := sess.Solve(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// The crossover opens s->n1->n2->n3->t, raising the optimum from 2 to 3.
	if warm.ExactValue != 3 {
		t.Errorf("extended exact value %.4f, want 3", warm.ExactValue)
	}
	coldSess, err := NewSessionPrepared(params, mustPrepare(t, g2, params))
	if err != nil {
		t.Fatal(err)
	}
	cold, err := coldSess.Solve(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if warm.FlowValue != cold.FlowValue || warm.ExactValue != cold.ExactValue {
		t.Errorf("behavioral warm/cold mismatch: warm %.12g/%.12g, cold %.12g/%.12g",
			warm.FlowValue, warm.ExactValue, cold.FlowValue, cold.ExactValue)
	}
	for i := range warm.Flow.Edge {
		if warm.Flow.Edge[i] != cold.Flow.Edge[i] {
			t.Errorf("edge %d: warm flow %.12g, cold flow %.12g", i, warm.Flow.Edge[i], cold.Flow.Edge[i])
		}
	}
}

// TestSessionStructuralExtensionCircuitRefused pins the honest boundary: a
// circuit session that has already built its engine has no widgets for an
// appended edge, so a true extension must be refused with
// ErrIncompatibleUpdate (the solve layer then rebuilds the circuit cold).
func TestSessionStructuralExtensionCircuitRefused(t *testing.T) {
	params := cleanCircuitParams()
	g := graph.PaperFigure5()
	sess, err := NewUpdatableSessionPrepared(params, mustPrepare(t, g, params))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Solve(context.Background()); err != nil {
		t.Fatal(err)
	}
	g2 := g.Clone()
	if _, err := g2.ApplyStructuralUpdate(graph.StructuralUpdate{
		AddEdges: []graph.Edge{{From: 2, To: 3, Capacity: 1}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := sess.RebindStructural(mustPrepare(t, g2, params)); !errors.Is(err, ErrIncompatibleUpdate) {
		t.Errorf("extension with a built engine: want ErrIncompatibleUpdate, got %v", err)
	}
	// Plain Rebind must also keep refusing structural changes.
	if err := sess.Rebind(mustPrepare(t, g2, params)); !errors.Is(err, ErrIncompatibleUpdate) {
		t.Errorf("Rebind of structural change: want ErrIncompatibleUpdate, got %v", err)
	}
}
