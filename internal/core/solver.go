package core

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync"

	"analogflow/internal/graph"
	"analogflow/internal/maxflow"
	"analogflow/internal/quantize"
)

// Result is the outcome of one analog max-flow solve.
type Result struct {
	// Flow is the recovered flow on the original graph's edge indexing, in
	// the original capacity units.
	Flow *graph.Flow
	// FlowValue is the net flow out of the source as read from the
	// substrate, in capacity units.
	FlowValue float64
	// ExactValue is the true maximum flow of the instance (computed with
	// Dinic's algorithm for reference), and RelativeError the deviation of
	// the analog reading from it — the right-hand axis of Figure 10.
	ExactValue    float64
	RelativeError float64
	// EdgeVoltages are the steady-state voltages of the edge nodes x_i, in
	// volts (quantized domain).
	EdgeVoltages []float64
	// Quantization is the voltage-level assignment used.
	Quantization *quantize.Result
	// ConvergenceTime is the modelled (behavioural) or measured (circuit
	// transient) settling time of the substrate, in seconds.
	ConvergenceTime float64
	// ProgrammingTime is the crossbar configuration time (Section 3.1).
	ProgrammingTime float64
	// SubstratePower and Energy follow the Section 5.2 analytical model.
	SubstratePower float64
	Energy         float64
	// Waves is the number of settling waves the convergence model assumed
	// (circuit mode reports Newton iterations here).
	Waves int
	// HomotopyRetries counts the finer-homotopy re-attempts the circuit
	// solver made after detecting a poor (spurious-equilibrium) operating
	// point — see PoorConvergenceRetryThreshold.  The reported result is the
	// better of the attempts either way.
	HomotopyRetries int
	// PrunedVertices / PrunedEdges report the preprocessing reductions.
	PrunedVertices, PrunedEdges int
	// Mode records which solver produced the result.
	Mode Mode
	// CircuitDescription summarises the constructed netlist (circuit mode
	// and waveform runs only).
	CircuitDescription string
}

// Solver is a configured analog max-flow substrate.
type Solver struct {
	params Params
	rng    *rand.Rand
}

// NewSolver validates the parameters and returns a solver.
func NewSolver(p Params) (*Solver, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Solver{params: p, rng: rand.New(rand.NewSource(p.Seed))}, nil
}

// Params returns the solver's parameters.
func (s *Solver) Params() Params { return s.params }

// Solve runs the configured pipeline on g.
func (s *Solver) Solve(g *graph.Graph) (*Result, error) {
	return s.SolveContext(context.Background(), g)
}

// SolveContext runs the configured pipeline on g with cooperative
// cancellation: the context is threaded into the Newton iteration of the
// circuit engine and into the augmenting-path loops of the exact reference
// solves, so a cancelled or expired context aborts a solve promptly and
// returns the context's error.
func (s *Solver) SolveContext(ctx context.Context, g *graph.Graph) (*Result, error) {
	if g == nil {
		return nil, fmt.Errorf("core: nil graph")
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if err := s.CheckFits(g); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	prep, err := s.prepare(g)
	if err != nil {
		return nil, err
	}
	return s.solvePrepared(ctx, prep)
}

// CheckFits verifies that g fits the configured crossbar array.
func (s *Solver) CheckFits(g *graph.Graph) error {
	if g.NumVertices() > s.params.Crossbar.Rows || g.NumVertices() > s.params.Crossbar.Cols {
		return fmt.Errorf("core: graph with %d vertices exceeds the %dx%d crossbar",
			g.NumVertices(), s.params.Crossbar.Rows, s.params.Crossbar.Cols)
	}
	return nil
}

// solvePrepared dispatches an already-preprocessed instance to the
// mode-specific back half.
func (s *Solver) solvePrepared(ctx context.Context, prep *Prepared) (*Result, error) {
	switch s.params.Mode {
	case ModeCircuit:
		return s.solveCircuitPrepared(ctx, prep)
	default:
		return s.solveBehavioralPrepared(ctx, prep)
	}
}

// Prepared is the common front half of both pipelines, exported so that the
// unified solve layer (internal/solve) can compute it once per problem and
// share it across backends and across repeated solves of a cached instance.
//
// The original graph is first reduced to its s-t core (optional), then
// quantized onto the voltage levels, and finally reduced again because
// capacities below one quantization step map to level 0 and disappear from
// the substrate.  The bookkeeping needed to map flows on the final "work"
// graph back to the original indexing is kept alongside.
type Prepared struct {
	original *graph.Graph
	pr1      *graph.PruneResult // original -> core (nil when pruning disabled)
	core     *graph.Graph       // s-t core of the original
	qres     *quantize.Result   // quantization of core (per core edge)
	pr2      *graph.PruneResult // quantized core -> work
	work     *graph.Graph       // the graph actually mapped onto the substrate
	clamps   []float64          // clamp voltage per work edge

	// exact memoises the instance's exact maximum flow (one Dinic run on
	// the s-t core, shared by every solve and every mode of this instance).
	exactMu   sync.Mutex
	exactDone bool
	exact     float64
}

// Original returns the graph the instance was prepared from.
func (p *Prepared) Original() *graph.Graph { return p.original }

// Core returns the s-t core of the original graph (the original itself when
// pruning was disabled).
func (p *Prepared) Core() *graph.Graph { return p.core }

// Work returns the graph actually mapped onto the substrate, or nil when the
// instance reduced to nothing.
func (p *Prepared) Work() *graph.Graph { return p.work }

// Quantization returns the voltage-level assignment of the core graph, or
// nil when the instance reduced to nothing before quantization.
func (p *Prepared) Quantization() *quantize.Result { return p.qres }

// Empty reports whether nothing can be mapped onto the substrate (max-flow 0
// after preprocessing).
func (p *Prepared) Empty() bool { return p == nil || p.work == nil || p.work.NumEdges() == 0 }

// ExactValue returns the exact maximum flow of the instance, computed once
// with Dinic's algorithm on the s-t core (which preserves the max-flow value
// by construction) and memoised for every later solve, mode and session that
// shares this Prepared.  A cancelled computation is not memoised.
func (p *Prepared) ExactValue(ctx context.Context) (float64, error) {
	p.exactMu.Lock()
	defer p.exactMu.Unlock()
	if p.exactDone {
		return p.exact, nil
	}
	v, err := maxflow.OptimalValueContext(ctx, p.core)
	if err != nil {
		return 0, err
	}
	p.exact, p.exactDone = v, true
	return v, nil
}

// SeedExactValue records an externally computed exact maximum flow (e.g. a
// caller that just ran Dinic on the instance anyway), so the memo never has
// to re-derive it.  A value recorded first wins; later seeds are ignored.
func (p *Prepared) SeedExactValue(v float64) {
	p.exactMu.Lock()
	defer p.exactMu.Unlock()
	if !p.exactDone {
		p.exact, p.exactDone = v, true
	}
}

// StructurallyCompatible reports whether q describes the same instance
// structure as p — same original graph shape, same prune mappings at both
// stages, same work graph shape — differing at most in capacity-derived
// values (clamp levels, quantization scale).  It is the gate the incremental
// re-solve pipeline checks before absorbing a capacity-only update into warm
// state: when it holds, the circuit topology and the residual-network
// structure built from p remain valid for q.
func (p *Prepared) StructurallyCompatible(q *Prepared) bool {
	if p == nil || q == nil {
		return false
	}
	if !sameGraphShape(p.original, q.original) || !sameGraphShape(p.core, q.core) {
		return false
	}
	if !graph.SamePruneEdges(p.pr1, q.pr1) || !graph.SamePruneEdges(p.pr2, q.pr2) {
		return false
	}
	if (p.work == nil) != (q.work == nil) {
		return false
	}
	if p.work != nil && !sameGraphShape(p.work, q.work) {
		return false
	}
	return len(p.clamps) == len(q.clamps)
}

// StructurallyExtends reports whether q is a structural extension of p: the
// same instance with zero or more edges appended at every stage.  The original,
// core and work graphs of q must each extend (graph.Extends) their counterpart
// in p, and both prune mappings must keep p's kept-edge list as a prefix with
// an identical vertex mapping — appended edges may only append to the pruned
// graphs, never resurrect or reorder previously pruned structure.  When it
// holds, value-level warm state built from p (a residual network, a Newton
// operating point on the shared vertex set) remains meaningful for q after a
// structural splice; when an insertion changes reachability enough to break
// the prefix property, the extension is not absorbable and callers fall back
// to an honest cold rebuild.
func (p *Prepared) StructurallyExtends(q *Prepared) bool {
	if p == nil || q == nil || p.Empty() || q.Empty() {
		return false
	}
	if !graph.Extends(p.original, q.original) || !graph.Extends(p.core, q.core) {
		return false
	}
	if !graph.PruneExtends(p.pr1, q.pr1) || !graph.PruneExtends(p.pr2, q.pr2) {
		return false
	}
	if !graph.Extends(p.work, q.work) {
		return false
	}
	return len(p.clamps) <= len(q.clamps)
}

// sameGraphShape reports whether two graphs have identical topology
// (capacities excluded).
func sameGraphShape(a, b *graph.Graph) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() ||
		a.Source() != b.Source() || a.Sink() != b.Sink() {
		return false
	}
	for i, n := 0, a.NumEdges(); i < n; i++ {
		ea, eb := a.Edge(i), b.Edge(i)
		if ea.From != eb.From || ea.To != eb.To {
			return false
		}
	}
	return true
}

// removedVertices / removedEdges aggregate both pruning passes.
func (p *Prepared) removedVertices() int {
	n := 0
	if p.pr1 != nil {
		n += p.pr1.RemovedVertices
	}
	if p.pr2 != nil {
		n += p.pr2.RemovedVertices
	}
	return n
}

func (p *Prepared) removedEdges() int {
	n := 0
	if p.pr1 != nil {
		n += p.pr1.RemovedEdges
	}
	if p.pr2 != nil {
		n += p.pr2.RemovedEdges
	}
	return n
}

// clampOf returns the clamp voltage of work edge i.
func (p *Prepared) clampOf(i int) float64 { return p.clamps[i] }

// expandFlow maps a flow on the work graph back to the original indexing.
func (p *Prepared) expandFlow(f *graph.Flow) *graph.Flow {
	onCore := f
	if p.pr2 != nil {
		onCore = p.pr2.ExpandFlow(p.core, f)
	}
	if p.pr1 != nil {
		return p.pr1.ExpandFlow(p.original, onCore)
	}
	out := onCore.Clone()
	out.RecomputeValue(p.original)
	return out
}

// prepare runs pruning and quantization with the solver's parameters.
func (s *Solver) prepare(g *graph.Graph) (*Prepared, error) {
	return prepareWith(g, nil, s.params.PruneGraph, s.params.Quantization)
}

// Prepare runs the preprocessing front half (prune to the s-t core, quantize,
// fused re-prune) under the given parameters without solving.  The result is
// reusable across solver modes and across repeated solves: only PruneGraph
// and Quantization influence it.
func Prepare(g *graph.Graph, p Params) (*Prepared, error) {
	return PrepareWithCore(g, nil, p)
}

// PrepareWithCore is Prepare with an externally computed s-t-core prune of g
// (from graph.PruneToSTCore).  Passing a precomputed prune lets a caller that
// already reduced the instance — the staged pipeline of internal/solve —
// share that artifact instead of re-pruning; pr1 is ignored when the
// parameters disable pruning, and computed on demand when they enable it and
// pr1 is nil.
func PrepareWithCore(g *graph.Graph, pr1 *graph.PruneResult, p Params) (*Prepared, error) {
	if g == nil {
		return nil, fmt.Errorf("core: nil graph")
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if !p.PruneGraph {
		pr1 = nil
	} else if pr1 == nil {
		pr1 = graph.PruneToSTCore(g)
	}
	return prepareWith(g, pr1, p.PruneGraph, p.Quantization)
}

// prepareWith runs pruning (reusing pr1 when supplied) and quantization.
func prepareWith(g *graph.Graph, pr1 *graph.PruneResult, prune bool, scheme quantize.Scheme) (*Prepared, error) {
	p := &Prepared{original: g}
	coreGraph := g
	if prune {
		if pr1 == nil {
			pr1 = graph.PruneToSTCore(g)
		}
		p.pr1 = pr1
		coreGraph = p.pr1.Graph
	}
	p.core = coreGraph
	if coreGraph.NumEdges() == 0 {
		return p, nil
	}
	qres, err := quantize.Quantize(coreGraph, scheme)
	if err != nil {
		return nil, err
	}
	p.qres = qres
	// Drop edges that quantized to level 0 (and whatever becomes dead
	// because of it); the fused prune applies the quantized capacities
	// without materialising the intermediate graph.
	p.pr2, err = graph.PruneToSTCoreWithCapacities(coreGraph, qres.QuantizedCapacities())
	if err != nil {
		return nil, err
	}
	p.work = p.pr2.Graph
	p.clamps = make([]float64, p.work.NumEdges())
	for i := range p.clamps {
		p.clamps[i] = qres.EdgeVoltages[p.pr2.EdgeMap[i]]
	}
	return p, nil
}

// finalize fills the metrics common to both modes and maps the work-domain
// flow back onto the original graph.
func (s *Solver) finalize(ctx context.Context, res *Result, prep *Prepared, workFlow *graph.Flow) error {
	res.PrunedVertices = prep.removedVertices()
	res.PrunedEdges = prep.removedEdges()
	res.Flow = prep.expandFlow(workFlow)
	// The s-t core has the same max-flow value as the original instance by
	// construction (pruning only removes structures that cannot carry s-t
	// flow), so the reference solve runs on the smaller graph — and only
	// once per Prepared, however many solves share it.
	exact, err := prep.ExactValue(ctx)
	if err != nil {
		return err
	}
	res.ExactValue = exact
	if exact != 0 {
		res.RelativeError = math.Abs(res.FlowValue-exact) / exact
	} else {
		res.RelativeError = math.Abs(res.FlowValue)
	}
	res.ProgrammingTime = float64(prep.work.NumVertices()) * s.params.Crossbar.CycleTime
	res.SubstratePower = s.params.Power.SubstratePower(prep.work.NumVertices(), prep.work.NumEdges())
	res.Energy = s.params.Power.Energy(prep.work.NumVertices(), prep.work.NumEdges(), res.ConvergenceTime)
	return nil
}

// emptyResult handles instances with no usable s-t structure (max-flow 0).
func (s *Solver) emptyResult(prep *Prepared, mode Mode) *Result {
	res := &Result{
		Flow:      graph.NewFlow(prep.original),
		FlowValue: 0,
		Mode:      mode,
	}
	res.PrunedVertices = prep.removedVertices()
	res.PrunedEdges = prep.removedEdges()
	return res
}

// convergenceTimeModel implements the settling-time model used for the
// Figure 10 reproduction: the substrate converges through a sequence of
// constraint-activation "waves" (roughly, a capacity clamp engaging and the
// conservation widgets re-balancing around it); each wave settles with the
// op-amp-dominated time constant A/(2*pi*GBW), plus the RC settling of the
// parasitic capacitance through the widget resistance.
func (s *Solver) convergenceTimeModel(pruned *graph.Graph, saturatedEdges int) (float64, int) {
	// pruned is the work graph, already an s-t core fixpoint.
	depth := graph.LongestAugmentingDepthPruned(pruned)
	if depth < 1 {
		depth = 1
	}
	waves := depth + int(math.Ceil(math.Log2(float64(saturatedEdges+2))))
	return float64(waves) * s.params.SettleTimePerWave(), waves
}

// vflowVoltage picks the objective drive level: the Table 1 multiplier of the
// supply, automatically raised for deep graphs so that the drive saturates
// the longest chain of conservation widgets (the voltage-divider attenuation
// along a chain of k widgets is roughly 1/(2k+1)).
func (s *Solver) vflowVoltage(pruned *graph.Graph) float64 {
	depth := graph.LongestAugmentingDepthPruned(pruned)
	base := s.params.VflowMultiplier * s.params.Quantization.Vdd
	needed := float64(2*depth+4) * s.params.Quantization.Vdd
	if needed > base {
		return needed
	}
	return base
}
