package core

import (
	"fmt"
	"math"
	"math/rand"

	"analogflow/internal/graph"
	"analogflow/internal/maxflow"
	"analogflow/internal/quantize"
)

// Result is the outcome of one analog max-flow solve.
type Result struct {
	// Flow is the recovered flow on the original graph's edge indexing, in
	// the original capacity units.
	Flow *graph.Flow
	// FlowValue is the net flow out of the source as read from the
	// substrate, in capacity units.
	FlowValue float64
	// ExactValue is the true maximum flow of the instance (computed with
	// Dinic's algorithm for reference), and RelativeError the deviation of
	// the analog reading from it — the right-hand axis of Figure 10.
	ExactValue    float64
	RelativeError float64
	// EdgeVoltages are the steady-state voltages of the edge nodes x_i, in
	// volts (quantized domain).
	EdgeVoltages []float64
	// Quantization is the voltage-level assignment used.
	Quantization *quantize.Result
	// ConvergenceTime is the modelled (behavioural) or measured (circuit
	// transient) settling time of the substrate, in seconds.
	ConvergenceTime float64
	// ProgrammingTime is the crossbar configuration time (Section 3.1).
	ProgrammingTime float64
	// SubstratePower and Energy follow the Section 5.2 analytical model.
	SubstratePower float64
	Energy         float64
	// Waves is the number of settling waves the convergence model assumed
	// (circuit mode reports Newton iterations here).
	Waves int
	// PrunedVertices / PrunedEdges report the preprocessing reductions.
	PrunedVertices, PrunedEdges int
	// Mode records which solver produced the result.
	Mode Mode
	// CircuitDescription summarises the constructed netlist (circuit mode
	// and waveform runs only).
	CircuitDescription string
}

// Solver is a configured analog max-flow substrate.
type Solver struct {
	params Params
	rng    *rand.Rand
}

// NewSolver validates the parameters and returns a solver.
func NewSolver(p Params) (*Solver, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Solver{params: p, rng: rand.New(rand.NewSource(p.Seed))}, nil
}

// Params returns the solver's parameters.
func (s *Solver) Params() Params { return s.params }

// Solve runs the configured pipeline on g.
func (s *Solver) Solve(g *graph.Graph) (*Result, error) {
	if g == nil {
		return nil, fmt.Errorf("core: nil graph")
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if g.NumVertices() > s.params.Crossbar.Rows || g.NumVertices() > s.params.Crossbar.Cols {
		return nil, fmt.Errorf("core: graph with %d vertices exceeds the %dx%d crossbar",
			g.NumVertices(), s.params.Crossbar.Rows, s.params.Crossbar.Cols)
	}
	switch s.params.Mode {
	case ModeCircuit:
		return s.solveCircuit(g)
	default:
		return s.solveBehavioral(g)
	}
}

// prepared is the common front half of both pipelines.
//
// The original graph is first reduced to its s-t core (optional), then
// quantized onto the voltage levels, and finally reduced again because
// capacities below one quantization step map to level 0 and disappear from
// the substrate.  The bookkeeping needed to map flows on the final "work"
// graph back to the original indexing is kept alongside.
type prepared struct {
	original *graph.Graph
	pr1      *graph.PruneResult // original -> core (nil when pruning disabled)
	core     *graph.Graph       // s-t core of the original
	qres     *quantize.Result   // quantization of core (per core edge)
	pr2      *graph.PruneResult // quantized core -> work
	work     *graph.Graph       // the graph actually mapped onto the substrate
	clamps   []float64          // clamp voltage per work edge
}

// empty reports whether nothing can be mapped onto the substrate (max-flow 0
// after preprocessing).
func (p *prepared) empty() bool { return p == nil || p.work == nil || p.work.NumEdges() == 0 }

// removedVertices / removedEdges aggregate both pruning passes.
func (p *prepared) removedVertices() int {
	n := 0
	if p.pr1 != nil {
		n += p.pr1.RemovedVertices
	}
	if p.pr2 != nil {
		n += p.pr2.RemovedVertices
	}
	return n
}

func (p *prepared) removedEdges() int {
	n := 0
	if p.pr1 != nil {
		n += p.pr1.RemovedEdges
	}
	if p.pr2 != nil {
		n += p.pr2.RemovedEdges
	}
	return n
}

// clampOf returns the clamp voltage of work edge i.
func (p *prepared) clampOf(i int) float64 { return p.clamps[i] }

// expandFlow maps a flow on the work graph back to the original indexing.
func (p *prepared) expandFlow(f *graph.Flow) *graph.Flow {
	onCore := f
	if p.pr2 != nil {
		onCore = p.pr2.ExpandFlow(p.core, f)
	}
	if p.pr1 != nil {
		return p.pr1.ExpandFlow(p.original, onCore)
	}
	out := onCore.Clone()
	out.RecomputeValue(p.original)
	return out
}

// prepare runs pruning and quantization.
func (s *Solver) prepare(g *graph.Graph) (*prepared, error) {
	p := &prepared{original: g}
	coreGraph := g
	if s.params.PruneGraph {
		p.pr1 = graph.PruneToSTCore(g)
		coreGraph = p.pr1.Graph
	}
	p.core = coreGraph
	if coreGraph.NumEdges() == 0 {
		return p, nil
	}
	qres, err := quantize.Quantize(coreGraph, s.params.Quantization)
	if err != nil {
		return nil, err
	}
	p.qres = qres
	// Drop edges that quantized to level 0 (and whatever becomes dead
	// because of it); the fused prune applies the quantized capacities
	// without materialising the intermediate graph.
	p.pr2, err = graph.PruneToSTCoreWithCapacities(coreGraph, qres.QuantizedCapacities())
	if err != nil {
		return nil, err
	}
	p.work = p.pr2.Graph
	p.clamps = make([]float64, p.work.NumEdges())
	for i := range p.clamps {
		p.clamps[i] = qres.EdgeVoltages[p.pr2.EdgeMap[i]]
	}
	return p, nil
}

// finalize fills the metrics common to both modes and maps the work-domain
// flow back onto the original graph.
func (s *Solver) finalize(res *Result, prep *prepared, workFlow *graph.Flow) error {
	res.PrunedVertices = prep.removedVertices()
	res.PrunedEdges = prep.removedEdges()
	res.Flow = prep.expandFlow(workFlow)
	// The s-t core has the same max-flow value as the original instance by
	// construction (pruning only removes structures that cannot carry s-t
	// flow), so the reference solve runs on the smaller graph.
	exact, err := maxflow.OptimalValue(prep.core)
	if err != nil {
		return err
	}
	res.ExactValue = exact
	if exact != 0 {
		res.RelativeError = math.Abs(res.FlowValue-exact) / exact
	} else {
		res.RelativeError = math.Abs(res.FlowValue)
	}
	res.ProgrammingTime = float64(prep.work.NumVertices()) * s.params.Crossbar.CycleTime
	res.SubstratePower = s.params.Power.SubstratePower(prep.work.NumVertices(), prep.work.NumEdges())
	res.Energy = s.params.Power.Energy(prep.work.NumVertices(), prep.work.NumEdges(), res.ConvergenceTime)
	return nil
}

// emptyResult handles instances with no usable s-t structure (max-flow 0).
func (s *Solver) emptyResult(prep *prepared, mode Mode) *Result {
	res := &Result{
		Flow:      graph.NewFlow(prep.original),
		FlowValue: 0,
		Mode:      mode,
	}
	res.PrunedVertices = prep.removedVertices()
	res.PrunedEdges = prep.removedEdges()
	return res
}

// convergenceTimeModel implements the settling-time model used for the
// Figure 10 reproduction: the substrate converges through a sequence of
// constraint-activation "waves" (roughly, a capacity clamp engaging and the
// conservation widgets re-balancing around it); each wave settles with the
// op-amp-dominated time constant A/(2*pi*GBW), plus the RC settling of the
// parasitic capacitance through the widget resistance.
func (s *Solver) convergenceTimeModel(pruned *graph.Graph, saturatedEdges int) (float64, int) {
	// pruned is the work graph, already an s-t core fixpoint.
	depth := graph.LongestAugmentingDepthPruned(pruned)
	if depth < 1 {
		depth = 1
	}
	waves := depth + int(math.Ceil(math.Log2(float64(saturatedEdges+2))))
	return float64(waves) * s.params.SettleTimePerWave(), waves
}

// vflowVoltage picks the objective drive level: the Table 1 multiplier of the
// supply, automatically raised for deep graphs so that the drive saturates
// the longest chain of conservation widgets (the voltage-divider attenuation
// along a chain of k widgets is roughly 1/(2k+1)).
func (s *Solver) vflowVoltage(pruned *graph.Graph) float64 {
	depth := graph.LongestAugmentingDepthPruned(pruned)
	base := s.params.VflowMultiplier * s.params.Quantization.Vdd
	needed := float64(2*depth+4) * s.params.Quantization.Vdd
	if needed > base {
		return needed
	}
	return base
}
