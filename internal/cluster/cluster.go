// Package cluster implements the clustered island-style architectures of
// Section 6.2 of the paper.  A monolithic n x n crossbar wastes almost all of
// its cells on sparse graphs (utilisation |E|/|V|² — a fraction of a percent
// for the paper's sparse workloads), so the proposal is an FPGA-like fabric
// of small mesh "processing islands" joined by a routing network: highly
// connected subgraphs map into islands, and only the comparatively few edges
// between subgraphs use the inter-island routing resources.
//
// The package provides the two architecture variants the paper sketches
// (one-dimensional connection-box routing and two-dimensional switch-box
// routing), a capacity-aware greedy partitioner that assigns vertices to
// islands, and the utilisation/routing statistics used by the Section 6.2
// evaluation in the benchmark harness.
package cluster

import (
	"errors"
	"fmt"
	"sort"

	"analogflow/internal/graph"
	"analogflow/internal/parallel"
)

// Topology selects the inter-island routing structure.
type Topology int

const (
	// Topology1D is the one-dimensional structure of Figure 11a: islands in
	// a row, each connected to a shared routing channel through a
	// connection box.  Simple to map, limited in routing flexibility.
	Topology1D Topology = iota
	// Topology2D is the two-dimensional structure of Figure 11b: islands on
	// a grid with switch boxes at the corners, more flexible but costlier.
	Topology2D
)

func (t Topology) String() string {
	switch t {
	case Topology1D:
		return "1d"
	case Topology2D:
		return "2d"
	default:
		return fmt.Sprintf("topology(%d)", int(t))
	}
}

// Architecture describes a clustered substrate.
type Architecture struct {
	// Topology is the routing structure.
	Topology Topology
	// IslandSize is the mesh dimension of one island (an island hosts up to
	// IslandSize vertices and IslandSize x IslandSize potential edges).
	IslandSize int
	// Islands is the number of islands in the fabric.
	Islands int
	// ChannelCapacity is the number of inter-island connections one routing
	// channel (1-D) or switch box (2-D) can carry.
	ChannelCapacity int
}

// DefaultArchitecture returns a 2-D fabric of 32-vertex islands sized to host
// the paper's largest evaluation graphs.
func DefaultArchitecture() Architecture {
	return Architecture{
		Topology:        Topology2D,
		IslandSize:      32,
		Islands:         32,
		ChannelCapacity: 256,
	}
}

// Validate checks the architecture.
func (a Architecture) Validate() error {
	switch a.Topology {
	case Topology1D, Topology2D:
	default:
		return fmt.Errorf("cluster: unknown topology %v", a.Topology)
	}
	if a.IslandSize < 2 {
		return fmt.Errorf("cluster: island size must be at least 2, got %d", a.IslandSize)
	}
	if a.Islands < 1 {
		return fmt.Errorf("cluster: need at least one island, got %d", a.Islands)
	}
	if a.ChannelCapacity < 1 {
		return fmt.Errorf("cluster: channel capacity must be positive, got %d", a.ChannelCapacity)
	}
	return nil
}

// VertexCapacity is the total number of vertices the fabric can host.
func (a Architecture) VertexCapacity() int { return a.IslandSize * a.Islands }

// CellsTotal is the total number of crossbar cells across all islands.
func (a Architecture) CellsTotal() int { return a.Islands * a.IslandSize * a.IslandSize }

// Mapping is the result of placing a graph onto a clustered architecture.
type Mapping struct {
	Architecture Architecture
	// IslandOf[v] is the island index assigned to vertex v.
	IslandOf []int
	// IntraEdges / InterEdges count edges whose endpoints share an island
	// versus edges that need inter-island routing.
	IntraEdges, InterEdges int
	// ChannelLoad is the number of inter-island connections routed through
	// each channel (1-D: one entry per island boundary; 2-D: one entry per
	// switch box).
	ChannelLoad []int
	// Utilization is the fraction of island cells used by intra-island
	// edges — the quantity Section 6.2 wants to improve over the monolithic
	// crossbar.
	Utilization float64
	// MonolithicUtilization is the utilisation of a single |V| x |V|
	// crossbar hosting the same graph, for comparison.
	MonolithicUtilization float64
}

// ErrDoesNotFit is returned when the graph exceeds the fabric's capacity.
var ErrDoesNotFit = errors.New("cluster: graph does not fit the clustered architecture")

// Map places g onto the architecture with a capacity-aware greedy clustering:
// vertices are visited in descending degree order and each is assigned to the
// island that already contains most of its neighbours and still has room.
// Inter-island edges are then routed and the channel loads accumulated.
func Map(g *graph.Graph, arch Architecture) (*Mapping, error) {
	if err := arch.Validate(); err != nil {
		return nil, err
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	n := g.NumVertices()
	if n > arch.VertexCapacity() {
		return nil, fmt.Errorf("%w: %d vertices onto %d islands of %d", ErrDoesNotFit, n, arch.Islands, arch.IslandSize)
	}

	// Vertices in descending degree order; hubs get placed first so their
	// neighbourhoods cluster around them.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		da, db := g.Degree(order[a]), g.Degree(order[b])
		if da != db {
			return da > db
		}
		return order[a] < order[b]
	})

	islandOf := make([]int, n)
	for i := range islandOf {
		islandOf[i] = -1
	}
	load := make([]int, arch.Islands)
	for _, v := range order {
		// Count already-placed neighbours per island.
		affinity := make(map[int]int)
		neighbours := func(edges []int, other func(graph.Edge) int) {
			for _, ei := range edges {
				o := other(g.Edge(ei))
				if islandOf[o] >= 0 {
					affinity[islandOf[o]]++
				}
			}
		}
		neighbours(g.OutEdges(v), func(e graph.Edge) int { return e.To })
		neighbours(g.InEdges(v), func(e graph.Edge) int { return e.From })
		best, bestScore := -1, -1
		for island := 0; island < arch.Islands; island++ {
			if load[island] >= arch.IslandSize {
				continue
			}
			score := affinity[island]
			if score > bestScore || (score == bestScore && best >= 0 && load[island] < load[best]) {
				best, bestScore = island, score
			}
		}
		if best < 0 {
			return nil, ErrDoesNotFit
		}
		islandOf[v] = best
		load[best]++
	}

	m := &Mapping{Architecture: arch, IslandOf: islandOf}
	switch arch.Topology {
	case Topology1D:
		// One routing channel between consecutive islands; an edge from
		// island a to island b loads every channel it crosses.
		m.ChannelLoad = make([]int, arch.Islands-1)
	default:
		// One switch box per island for the 2-D abstraction.
		m.ChannelLoad = make([]int, arch.Islands)
	}
	for _, e := range g.Edges() {
		a, b := islandOf[e.From], islandOf[e.To]
		if a == b {
			m.IntraEdges++
			continue
		}
		m.InterEdges++
		switch arch.Topology {
		case Topology1D:
			lo, hi := a, b
			if lo > hi {
				lo, hi = hi, lo
			}
			for ch := lo; ch < hi; ch++ {
				m.ChannelLoad[ch]++
			}
		default:
			m.ChannelLoad[a]++
			m.ChannelLoad[b]++
		}
	}
	usedCells := m.IntraEdges
	m.Utilization = float64(usedCells) / float64(arch.CellsTotal())
	m.MonolithicUtilization = float64(g.NumEdges()) / float64(n*n)
	return m, nil
}

// Routable reports whether every channel load stays within the architecture's
// channel capacity.
func (m *Mapping) Routable() bool {
	for _, l := range m.ChannelLoad {
		if l > m.Architecture.ChannelCapacity {
			return false
		}
	}
	return true
}

// MaxChannelLoad returns the highest channel load.
func (m *Mapping) MaxChannelLoad() int {
	max := 0
	for _, l := range m.ChannelLoad {
		if l > max {
			max = l
		}
	}
	return max
}

// CutFraction returns the fraction of edges that cross island boundaries —
// the clustering quality metric the partitioner minimises.
func (m *Mapping) CutFraction() float64 {
	total := m.IntraEdges + m.InterEdges
	if total == 0 {
		return 0
	}
	return float64(m.InterEdges) / float64(total)
}

// AreaAdvantage returns the ratio between the cell count of a monolithic
// |V| x |V| crossbar and the clustered fabric's cell count — the area saving
// the Section 6.2 proposal is after.
func AreaAdvantage(g *graph.Graph, arch Architecture) float64 {
	mono := g.NumVertices() * g.NumVertices()
	return float64(mono) / float64(arch.CellsTotal())
}

// SweepIslandSizes maps g onto fabrics with the given island sizes (keeping
// the vertex capacity roughly constant) and reports the resulting mappings,
// the data behind the architecture-exploration experiment.  The greedy
// partitioner only reads g and is deterministic per size, so the sizes fan
// out across the bounded worker pool of internal/parallel.
func SweepIslandSizes(g *graph.Graph, sizes []int, topology Topology) (map[int]*Mapping, error) {
	mappings := make([]*Mapping, len(sizes))
	err := parallel.ForEach(len(sizes), func(idx int) error {
		size := sizes[idx]
		islands := (g.NumVertices() + size - 1) / size
		if islands < 1 {
			islands = 1
		}
		arch := Architecture{
			Topology:        topology,
			IslandSize:      size,
			Islands:         islands,
			ChannelCapacity: 1 << 20, // capacity analysed separately
		}
		m, err := Map(g, arch)
		if err != nil {
			return fmt.Errorf("cluster: island size %d: %w", size, err)
		}
		mappings[idx] = m
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make(map[int]*Mapping, len(sizes))
	for i, size := range sizes {
		out[size] = mappings[i]
	}
	return out, nil
}
