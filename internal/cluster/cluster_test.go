package cluster

import (
	"testing"
	"testing/quick"

	"analogflow/internal/graph"
	"analogflow/internal/rmat"
)

func TestArchitectureValidate(t *testing.T) {
	if err := DefaultArchitecture().Validate(); err != nil {
		t.Errorf("default architecture invalid: %v", err)
	}
	cases := []func(*Architecture){
		func(a *Architecture) { a.Topology = Topology(9) },
		func(a *Architecture) { a.IslandSize = 1 },
		func(a *Architecture) { a.Islands = 0 },
		func(a *Architecture) { a.ChannelCapacity = 0 },
	}
	for i, mutate := range cases {
		a := DefaultArchitecture()
		mutate(&a)
		if a.Validate() == nil {
			t.Errorf("case %d: invalid architecture accepted", i)
		}
	}
	if Topology1D.String() != "1d" || Topology2D.String() != "2d" || Topology(9).String() == "" {
		t.Errorf("topology names wrong")
	}
	a := DefaultArchitecture()
	if a.VertexCapacity() != 32*32 || a.CellsTotal() != 32*32*32 {
		t.Errorf("capacity computations wrong")
	}
}

func TestMapRejectsBadInput(t *testing.T) {
	g := graph.PaperFigure5()
	bad := DefaultArchitecture()
	bad.IslandSize = 0
	if _, err := Map(g, bad); err == nil {
		t.Errorf("invalid architecture accepted")
	}
	tiny := Architecture{Topology: Topology1D, IslandSize: 2, Islands: 1, ChannelCapacity: 4}
	if _, err := Map(g, tiny); err == nil {
		t.Errorf("oversized graph accepted")
	}
}

func TestMapFigure5SingleIsland(t *testing.T) {
	g := graph.PaperFigure5()
	arch := Architecture{Topology: Topology1D, IslandSize: 8, Islands: 2, ChannelCapacity: 8}
	m, err := Map(g, arch)
	if err != nil {
		t.Fatal(err)
	}
	// Five vertices fit one island, so the greedy clustering should place
	// them together: no inter-island edges.
	if m.InterEdges != 0 || m.IntraEdges != g.NumEdges() {
		t.Errorf("expected all edges intra-island: %+v", m)
	}
	if m.CutFraction() != 0 {
		t.Errorf("cut fraction %g, want 0", m.CutFraction())
	}
	if !m.Routable() {
		t.Errorf("mapping with no inter-island edges must be routable")
	}
	if m.MaxChannelLoad() != 0 {
		t.Errorf("channel load should be zero")
	}
	for v, island := range m.IslandOf {
		if island < 0 || island >= arch.Islands {
			t.Errorf("vertex %d unassigned or out of range: %d", v, island)
		}
	}
}

func TestMapSparseGraphBeatsMonolithicUtilisation(t *testing.T) {
	g := rmat.MustGenerate(rmat.SparseParams(256, 7))
	arch := Architecture{Topology: Topology2D, IslandSize: 32, Islands: 8, ChannelCapacity: 1 << 20}
	m, err := Map(g, arch)
	if err != nil {
		t.Fatal(err)
	}
	if m.IntraEdges+m.InterEdges != g.NumEdges() {
		t.Fatalf("edge accounting wrong: %d + %d != %d", m.IntraEdges, m.InterEdges, g.NumEdges())
	}
	// The whole point of Section 6.2: the clustered fabric uses its cells
	// far better than one 256x256 crossbar.
	if m.Utilization <= m.MonolithicUtilization {
		t.Errorf("clustered utilisation %.4f not better than monolithic %.4f",
			m.Utilization, m.MonolithicUtilization)
	}
	if adv := AreaAdvantage(g, arch); adv <= 1 {
		t.Errorf("area advantage %.2f should exceed 1", adv)
	}
}

func TestTopology1DChannelLoads(t *testing.T) {
	// A path graph split across islands loads the channels between them.
	g := graph.MustNew(8, 0, 7)
	for v := 0; v < 7; v++ {
		g.MustAddEdge(v, v+1, 1)
	}
	arch := Architecture{Topology: Topology1D, IslandSize: 2, Islands: 4, ChannelCapacity: 4}
	m, err := Map(g, arch)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.ChannelLoad) != 3 {
		t.Fatalf("1-D fabric with 4 islands should have 3 channels, got %d", len(m.ChannelLoad))
	}
	if m.InterEdges == 0 {
		t.Errorf("a path over 4 islands must use inter-island edges")
	}
	if m.MaxChannelLoad() == 0 {
		t.Errorf("channels should carry load")
	}
}

func TestRoutabilityLimit(t *testing.T) {
	// A dense bipartite-ish graph with a tiny channel capacity becomes
	// unroutable on a 1-D fabric.
	g := graph.MustNew(16, 0, 15)
	for u := 0; u < 8; u++ {
		for v := 8; v < 16; v++ {
			if u != v {
				g.MustAddEdge(u, v, 1)
			}
		}
	}
	arch := Architecture{Topology: Topology1D, IslandSize: 4, Islands: 4, ChannelCapacity: 2}
	m, err := Map(g, arch)
	if err != nil {
		t.Fatal(err)
	}
	if m.Routable() {
		t.Errorf("expected an unroutable mapping with channel capacity 2 and %d inter edges", m.InterEdges)
	}
}

func TestSweepIslandSizes(t *testing.T) {
	g := rmat.MustGenerate(rmat.SparseParams(128, 3))
	sweep, err := SweepIslandSizes(g, []int{8, 16, 32, 64}, Topology2D)
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep) != 4 {
		t.Fatalf("sweep size %d", len(sweep))
	}
	// Larger islands capture more edges internally: the cut fraction is
	// non-increasing (within noise) as island size grows.
	if sweep[64].CutFraction() > sweep[8].CutFraction()+0.05 {
		t.Errorf("cut fraction should shrink with island size: 8 -> %.3f, 64 -> %.3f",
			sweep[8].CutFraction(), sweep[64].CutFraction())
	}
	if _, err := SweepIslandSizes(g, []int{1}, Topology2D); err == nil {
		t.Errorf("invalid island size accepted")
	}
}

// Property: every mapping assigns all vertices, respects island capacity, and
// accounts for every edge exactly once.
func TestMapInvariants(t *testing.T) {
	f := func(seed int64) bool {
		n := 16 + int(uint64(seed)%64)
		g, err := rmat.Generate(rmat.DefaultParams(n, 3*n, seed))
		if err != nil {
			return false
		}
		arch := Architecture{Topology: Topology2D, IslandSize: 16, Islands: (n + 15) / 16, ChannelCapacity: 1 << 20}
		m, err := Map(g, arch)
		if err != nil {
			return false
		}
		perIsland := make([]int, arch.Islands)
		for _, island := range m.IslandOf {
			if island < 0 || island >= arch.Islands {
				return false
			}
			perIsland[island]++
		}
		for _, load := range perIsland {
			if load > arch.IslandSize {
				return false
			}
		}
		return m.IntraEdges+m.InterEdges == g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
