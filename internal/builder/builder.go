// Package builder constructs the analog max-flow circuit of Section 2 of the
// paper from a flow graph: one capacity-clamp widget per edge (two diodes and
// a shared clamp voltage source), one flow-conservation widget per interior
// vertex (an inverter sub-widget per incoming edge plus the vertex summing
// node with its negative resistor), and the objective row that couples every
// source-adjacent edge node to the Vflow drive through the widget resistance r.
//
// The same package also builds the min-cut dual circuit of Section 6.3.
//
// The builder does not decide voltage levels itself: callers pass the clamp
// voltage of every edge (exact capacities or the quantized levels produced by
// internal/quantize), which keeps the quantization policy out of the circuit
// topology.
package builder

import (
	"fmt"

	"analogflow/internal/circuit"
	"analogflow/internal/device"
	"analogflow/internal/graph"
)

// NegativeResistorMode selects how negative resistances are realised.
type NegativeResistorMode int

const (
	// NegResIdeal stamps an ideal negative conductance whose magnitude is
	// degraded by the finite op-amp gain error of Section 4.2 (the realised
	// value is -(1+δ)R with δ = (R0/R)/A).  This is the default and is what
	// the crossbar-scale experiments use.
	NegResIdeal NegativeResistorMode = iota
	// NegResOpAmp expands every negative resistor into the op-amp based
	// negative-impedance-converter circuit of Figure 9a, including the
	// op-amp's single-pole gain-bandwidth dynamics.  Intended for small
	// circuits and for validating the ideal mode.
	NegResOpAmp
)

func (m NegativeResistorMode) String() string {
	switch m {
	case NegResIdeal:
		return "ideal"
	case NegResOpAmp:
		return "opamp"
	default:
		return fmt.Sprintf("negres-mode(%d)", int(m))
	}
}

// Options configures circuit construction.
type Options struct {
	// WidgetResistance is the common positive resistance r of the widgets,
	// equal to the memristor LRS resistance when the circuit is mapped onto
	// the crossbar (Table 1: 10 kOhm).
	WidgetResistance float64
	// VflowVoltage is the drive voltage applied by the objective source
	// (Table 1: 3 V).
	VflowVoltage float64
	// Diode is the clamp diode model.
	Diode device.DiodeModel
	// OpAmp is the op-amp model used for negative resistors (its gain sets
	// the ideal-mode gain error; its GBW sets the op-amp-mode dynamics).
	OpAmp device.OpAmpModel
	// NegResMode selects ideal or op-amp negative resistors.
	NegResMode NegativeResistorMode
	// ParasiticCapacitance, when positive, attaches this capacitance from
	// every circuit node to ground (the paper adds 20 fF per net).
	ParasiticCapacitance float64
	// ParasiticOnEdgeNodesOnly restricts the parasitic capacitors to the
	// edge nodes x_i and the Vflow rail.  The internal widget nodes are
	// driven by op-amp outputs (low impedance) in the real substrate, so for
	// transient studies with ideal negative resistors this avoids the
	// artificial slow poles that the high-impedance ideal model would
	// otherwise exhibit at those nodes.
	ParasiticOnEdgeNodesOnly bool
	// NegResSaturation, when positive, bounds the output of the negative
	// resistance converters at the given voltage (the supply-rail limit of
	// their op-amps).  Saturation keeps runaway modes of pathological graph
	// structures bounded, but it also creates spurious equilibria in which a
	// constraint widget gives up; it is therefore disabled by default and
	// enabled only for robustness studies.
	NegResSaturation float64
	// VflowWaveform optionally overrides the objective drive waveform; when
	// nil a DC source at VflowVoltage is used (steady-state analyses) — pass
	// a circuit.Step to reproduce the paper's compute-phase step drive.
	VflowWaveform circuit.Waveform
	// PrivateClampSources gives every edge its own clamp voltage source
	// instead of sharing one source per distinct voltage level.  The shared
	// layout matches the physical substrate (one source per quantization
	// level); the private layout costs a few extra MNA unknowns but makes
	// the clamp voltage of each edge an independent element *value*, so a
	// capacity-only update can be re-stamped through SetClampVoltages
	// without changing the circuit topology — the property the incremental
	// re-solve pipeline of internal/core relies on.
	PrivateClampSources bool
	// AllowZeroClamp accepts clamp voltages of exactly 0 V.  A 0 V clamp
	// pins its edge node into the [0, 0] band — the edge exists physically
	// but can carry no flow — which is how parked edges (structurally
	// resident slots of a removed or not-yet-inserted edge) are realised:
	// all their widget stamps stay nonzero, so the MNA sparsity pattern is
	// identical to the unparked circuit and a later unpark is a pure
	// SetClampVoltages re-stamp.  Negative voltages remain invalid.
	AllowZeroClamp bool
	// PerturbResistance, when non-nil, maps a nominal resistance to the
	// value actually instantiated, modelling process variation and parasitic
	// series resistance (Section 4.3).  It is applied to every widget
	// resistor and negative-resistor magnitude.
	PerturbResistance func(nominal float64) float64
}

// DefaultOptions returns the Table 1 configuration.
func DefaultOptions() Options {
	return Options{
		WidgetResistance:     10e3,
		VflowVoltage:         3,
		Diode:                device.DefaultDiode(),
		OpAmp:                device.DefaultOpAmp(),
		NegResMode:           NegResIdeal,
		ParasiticCapacitance: 20e-15,
	}
}

// Validate checks the options.
func (o Options) Validate() error {
	if o.WidgetResistance <= 0 {
		return fmt.Errorf("builder: widget resistance must be positive, got %g", o.WidgetResistance)
	}
	if o.VflowVoltage <= 0 {
		return fmt.Errorf("builder: Vflow must be positive, got %g", o.VflowVoltage)
	}
	if err := o.Diode.Validate(); err != nil {
		return err
	}
	if err := o.OpAmp.Validate(); err != nil {
		return err
	}
	if o.ParasiticCapacitance < 0 {
		return fmt.Errorf("builder: negative parasitic capacitance %g", o.ParasiticCapacitance)
	}
	if o.NegResSaturation < 0 {
		return fmt.Errorf("builder: negative saturation voltage %g", o.NegResSaturation)
	}
	switch o.NegResMode {
	case NegResIdeal, NegResOpAmp:
	default:
		return fmt.Errorf("builder: unknown negative resistor mode %v", o.NegResMode)
	}
	return nil
}

// Circuit is the constructed analog max-flow circuit together with the
// bookkeeping needed to read the solution back out.
type Circuit struct {
	Netlist *circuit.Netlist
	Options Options
	Graph   *graph.Graph

	// EdgeNode[i] is the circuit node x_i carrying the flow of edge i.
	EdgeNode []circuit.NodeID
	// EdgeNegNode[i] is the negated node x_i^- of edge i, or -2 when the
	// edge terminates at the sink and needs no inverter widget.
	EdgeNegNode []circuit.NodeID
	// VertexNode[v] is the conservation summing node nt of interior vertex
	// v, or -2 for the source and sink.
	VertexNode []circuit.NodeID
	// ClampVoltage[i] is the capacity clamp voltage of edge i as built.
	ClampVoltage []float64
	// VflowNode is the node driven by the objective source.
	VflowNode circuit.NodeID
	// VflowElementIndex is the netlist element index of the Vflow source,
	// used to read the delivered current I_flow.
	VflowElementIndex int
	// SourceEdgeIndices are the graph edges incident to the source (the x_i
	// of Figure 3); the flow value is the sum of their node voltages.
	SourceEdgeIndices []int
	// ClampSourceNodes maps each distinct clamp voltage to the node of the
	// shared voltage source that provides it.
	ClampSourceNodes map[float64]circuit.NodeID
	// NumNegativeResistors counts the negative resistances instantiated
	// (one per inverter widget plus one per interior vertex), which the
	// power model translates into op-amp count.
	NumNegativeResistors int

	negResSaturation float64
	// clampSources[i] is edge i's private clamp voltage source, populated
	// only when the circuit was built with Options.PrivateClampSources.
	clampSources []*circuit.VoltageSource
	// parkShunts[i] is edge i's park shunt (see addCapacityClamp), populated
	// only when the circuit was built with Options.AllowZeroClamp.
	parkShunts []*circuit.Resistor
}

// NoNode marks a node that does not exist for a particular edge or vertex.
const NoNode circuit.NodeID = -2

// BuildMaxFlow constructs the analog circuit for g.  clampVoltages[i] is the
// clamp (capacity) voltage of edge i; pass the raw capacities for an
// un-quantized build or quantize.Result.EdgeVoltages for a quantized one.
func BuildMaxFlow(g *graph.Graph, clampVoltages []float64, opts Options) (*Circuit, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if len(clampVoltages) != g.NumEdges() {
		return nil, fmt.Errorf("builder: %d clamp voltages for %d edges", len(clampVoltages), g.NumEdges())
	}
	for i, v := range clampVoltages {
		if v < 0 || (v == 0 && !opts.AllowZeroClamp) {
			return nil, fmt.Errorf("builder: clamp voltage of edge %d must be positive, got %g", i, v)
		}
	}

	perturb := opts.PerturbResistance
	if perturb == nil {
		perturb = func(r float64) float64 { return r }
	}
	r := opts.WidgetResistance

	c := &Circuit{
		Netlist:          circuit.NewNetlist(),
		Options:          opts,
		Graph:            g,
		EdgeNode:         make([]circuit.NodeID, g.NumEdges()),
		EdgeNegNode:      make([]circuit.NodeID, g.NumEdges()),
		VertexNode:       make([]circuit.NodeID, g.NumVertices()),
		ClampVoltage:     append([]float64(nil), clampVoltages...),
		ClampSourceNodes: make(map[float64]circuit.NodeID),
	}
	c.negResSaturation = opts.NegResSaturation
	nl := c.Netlist

	// --- objective drive node and source.
	c.VflowNode = nl.AddNode("vflow")
	wave := opts.VflowWaveform
	if wave == nil {
		wave = circuit.DC{Value: opts.VflowVoltage}
	}
	c.VflowElementIndex = nl.NumElements()
	nl.Add(circuit.NewVoltageSource("Vflow", c.VflowNode, circuit.Ground, wave))

	// --- one node x_i per edge, plus its capacity clamp widget.
	for i := 0; i < g.NumEdges(); i++ {
		c.EdgeNode[i] = nl.AddNode(fmt.Sprintf("x%d", i))
		c.EdgeNegNode[i] = NoNode
		c.addCapacityClamp(i)
	}

	// --- conservation widget per interior vertex.
	for v := 0; v < g.NumVertices(); v++ {
		c.VertexNode[v] = NoNode
		if v == g.Source() || v == g.Sink() {
			continue
		}
		c.addConservationWidget(v, perturb)
	}

	// --- objective row: every source-adjacent edge connects to Vflow via r.
	for _, ei := range g.OutEdges(g.Source()) {
		c.SourceEdgeIndices = append(c.SourceEdgeIndices, ei)
		nl.Add(circuit.NewResistor(fmt.Sprintf("Robj_e%d", ei),
			c.VflowNode, c.EdgeNode[ei], perturb(r)))
	}
	if len(c.SourceEdgeIndices) == 0 {
		return nil, fmt.Errorf("builder: source vertex has no outgoing edges")
	}

	// --- parasitic capacitance on the circuit nodes.
	if opts.ParasiticCapacitance > 0 {
		if opts.ParasiticOnEdgeNodesOnly {
			attach := append([]circuit.NodeID{c.VflowNode}, c.EdgeNode...)
			for _, n := range attach {
				nl.Add(circuit.NewCapacitor(fmt.Sprintf("Cpar_%s", nl.NodeName(n)),
					n, circuit.Ground, opts.ParasiticCapacitance))
			}
		} else {
			for n := 0; n < nl.NumNodes(); n++ {
				nl.Add(circuit.NewCapacitor(fmt.Sprintf("Cpar_%s", nl.NodeName(circuit.NodeID(n))),
					circuit.NodeID(n), circuit.Ground, opts.ParasiticCapacitance))
			}
		}
	}
	if err := nl.CheckNodes(); err != nil {
		return nil, err
	}
	return c, nil
}

// addCapacityClamp adds the Figure 1 widget for edge i: a diode to ground
// keeping V(x_i) >= 0 and a diode into the clamp source keeping V(x_i) <= c_i.
// Clamp sources are shared between edges with the same voltage, exactly as
// the quantized substrate shares one source per voltage level.
func (c *Circuit) addCapacityClamp(i int) {
	nl := c.Netlist
	x := c.EdgeNode[i]
	v := c.ClampVoltage[i]
	var src circuit.NodeID
	if c.Options.PrivateClampSources {
		// One source per edge: the clamp level becomes a per-edge element
		// value that SetClampVoltages can re-stamp in place.
		src = nl.AddNode(fmt.Sprintf("vcap_e%d", i))
		vs := circuit.NewVoltageSource(fmt.Sprintf("Vcap_e%d", i), src, circuit.Ground, circuit.DC{Value: v})
		nl.Add(vs)
		if c.clampSources == nil {
			c.clampSources = make([]*circuit.VoltageSource, len(c.EdgeNode))
		}
		c.clampSources[i] = vs
	} else {
		var ok bool
		src, ok = c.ClampSourceNodes[v]
		if !ok {
			src = nl.AddNode(fmt.Sprintf("vcap_%g", v))
			nl.Add(circuit.NewVoltageSource(fmt.Sprintf("Vcap_%g", v), src, circuit.Ground, circuit.DC{Value: v}))
			c.ClampSourceNodes[v] = src
		}
	}
	// Lower clamp: anode at ground, cathode at x_i -> conducts when V(x_i)<0.
	nl.Add(circuit.NewDiode(fmt.Sprintf("Dlo_e%d", i), circuit.Ground, x, c.Options.Diode))
	// Upper clamp: anode at x_i, cathode at the clamp source -> conducts when
	// V(x_i) > c_i.
	nl.Add(circuit.NewDiode(fmt.Sprintf("Dhi_e%d", i), x, src, c.Options.Diode))
	if c.Options.AllowZeroClamp && c.Graph.NumParked() > 0 {
		// Park shunt: a grounded resistor at x_i, strongly conducting when
		// the edge is parked (clamp 0) and negligible otherwise.  A parked
		// edge's clamp diode only pins its node at the diode forward drop
		// (~0.4 V), which would leave a phantom level's worth of "flow" in
		// the conservation balance of its endpoints; the shunt pins the
		// parked node to within microvolts of 0 V instead.  Shunts are
		// instantiated for every edge — uniformly, so the sparsity pattern
		// never depends on which edges are parked — but only in circuits
		// whose graph carries parked slots at build time: a plain circuit is
		// element-for-element identical to one built before structural
		// dynamics existed.  Only the shunt's value re-stamps on park/unpark.
		shunt := circuit.NewResistor(fmt.Sprintf("Rpark_e%d", i), x, circuit.Ground, c.parkShuntResistance(v))
		nl.Add(shunt)
		if c.parkShunts == nil {
			c.parkShunts = make([]*circuit.Resistor, len(c.EdgeNode))
		}
		c.parkShunts[i] = shunt
	}
}

// parkShuntResistance returns the park-shunt value for clamp voltage v: far
// below the widget resistance when parked (v == 0), far above it otherwise.
// The on/off ratio is kept moderate (1e3 below / 1e12 above the widget
// resistance) so that toggling a shunt re-uses the engine's cached LU pivot
// order — a harder pin would make the re-stamped matrix numerically
// incompatible with the pivots chosen for the previous park state and force
// a fresh symbolic factorization.
func (c *Circuit) parkShuntResistance(v float64) float64 {
	if v == 0 {
		return c.Options.WidgetResistance * 1e-3
	}
	return c.Options.WidgetResistance * 1e12
}

// addConservationWidget adds the Figure 2 widget for interior vertex v.
func (c *Circuit) addConservationWidget(v int, perturb func(float64) float64) {
	nl := c.Netlist
	g := c.Graph
	r := c.Options.WidgetResistance
	nt := nl.AddNode(fmt.Sprintf("nt%d", v))
	c.VertexNode[v] = nt

	inEdges := g.InEdges(v)
	outEdges := g.OutEdges(v)
	degree := len(inEdges) + len(outEdges)

	// Inverter sub-widget per incoming edge: x_i -- r -- P -- r -- x_i^-,
	// with a negative resistor of magnitude r/2 from P to ground enforcing
	// V(x_i^-) = -V(x_i).  The negated node then joins the summing node nt
	// through another r.
	for _, ei := range inEdges {
		p := nl.AddNode(fmt.Sprintf("p_e%d_v%d", ei, v))
		neg := nl.AddNode(fmt.Sprintf("xneg%d_v%d", ei, v))
		c.EdgeNegNode[ei] = neg
		nl.Add(circuit.NewResistor(fmt.Sprintf("Rinv_a_e%d_v%d", ei, v), c.EdgeNode[ei], p, perturb(r)))
		nl.Add(circuit.NewResistor(fmt.Sprintf("Rinv_b_e%d_v%d", ei, v), neg, p, perturb(r)))
		c.addNegativeResistor(fmt.Sprintf("NRinv_e%d_v%d", ei, v), p, perturb(r/2))
		nl.Add(circuit.NewResistor(fmt.Sprintf("Rcons_in_e%d_v%d", ei, v), neg, nt, perturb(r)))
	}
	// Outgoing edges connect their x nodes directly to nt through r.
	for _, ei := range outEdges {
		nl.Add(circuit.NewResistor(fmt.Sprintf("Rcons_out_e%d_v%d", ei, v), c.EdgeNode[ei], nt, perturb(r)))
	}
	// The vertex negative resistor of magnitude r/N closes the KCL identity
	// sum(V(x_in)) = sum(V(y_out)).
	if degree > 0 {
		c.addNegativeResistor(fmt.Sprintf("NRcons_v%d", v), nt, perturb(r/float64(degree)))
	}
}

// addNegativeResistor instantiates a negative resistance of the given
// magnitude between node n and ground, in whichever realisation the options
// select.
func (c *Circuit) addNegativeResistor(label string, n circuit.NodeID, magnitude float64) {
	nl := c.Netlist
	c.NumNegativeResistors++
	switch c.Options.NegResMode {
	case NegResOpAmp:
		// Negative impedance converter (Figure 9a): op-amp with its
		// non-inverting input at the port, feedback resistors R0/R0, and the
		// target resistance from the output back to the port.
		r0 := c.Options.WidgetResistance
		fb := nl.AddNode(label + ".fb")
		out := nl.AddNode(label + ".out")
		nl.Add(circuit.NewOpAmp(nl, label+".oa", n, fb, out, c.Options.OpAmp))
		nl.Add(circuit.NewResistor(label+".r0a", out, fb, r0))
		nl.Add(circuit.NewResistor(label+".r0b", fb, circuit.Ground, r0))
		nl.Add(circuit.NewResistor(label+".rt", out, n, magnitude))
	default:
		nr := circuit.NewNegativeResistor(label, n, circuit.Ground, magnitude)
		// Finite op-amp gain degrades the realised magnitude (Section 4.2),
		// and the converter saturates at its op-amp's supply rail.
		nr.GainError = c.Options.OpAmp.NegativeResistorPrecision(c.Options.WidgetResistance, magnitude)
		nr.Saturation = c.negResSaturation
		nl.Add(nr)
	}
}

// SetClampVoltages re-programs the capacity clamp voltage of every edge in
// place.  It is only available on circuits built with
// Options.PrivateClampSources (the shared-source layout would require
// re-wiring edges between sources, i.e. a topology change): the per-edge
// sources keep their nodes and branches, only their DC values move, so a
// bound mna.Engine keeps its frozen sparsity pattern and cached symbolic
// factorisation across the update.
func (c *Circuit) SetClampVoltages(v []float64) error {
	if c.clampSources == nil {
		return fmt.Errorf("builder: circuit was built without PrivateClampSources; clamp voltages are frozen")
	}
	if len(v) != len(c.EdgeNode) {
		return fmt.Errorf("builder: %d clamp voltages for %d edges", len(v), len(c.EdgeNode))
	}
	for i, vi := range v {
		if vi < 0 || (vi == 0 && !c.Options.AllowZeroClamp) {
			return fmt.Errorf("builder: clamp voltage of edge %d must be positive, got %g", i, vi)
		}
	}
	for i, vi := range v {
		c.ClampVoltage[i] = vi
		c.clampSources[i].Waveform = circuit.DC{Value: vi}
		if c.parkShunts != nil {
			// Park or release the edge's shunt along with its clamp level;
			// the element re-stamps at the same coordinates either way.
			c.parkShunts[i].Resistance = c.parkShuntResistance(vi)
		}
	}
	return nil
}

// EdgeVoltages extracts the per-edge node voltages from a solved unknown
// vector accessor.
func (c *Circuit) EdgeVoltages(voltage func(circuit.NodeID) float64) []float64 {
	out := make([]float64, len(c.EdgeNode))
	for i, n := range c.EdgeNode {
		out[i] = voltage(n)
	}
	return out
}

// FlowValueVolts returns the objective value in volts: the net flow out of
// the source, i.e. the sum of the source-outgoing edge node voltages
// (Equation 7a of the paper re-expressed through the node voltages rather
// than I_flow) minus the voltages of any edges directed back into the source.
// The subtraction matters on synthetic graphs with cycles through the source,
// where circulating flow would otherwise inflate the reading.
func (c *Circuit) FlowValueVolts(voltage func(circuit.NodeID) float64) float64 {
	var sum float64
	for _, ei := range c.SourceEdgeIndices {
		sum += voltage(c.EdgeNode[ei])
	}
	for _, ei := range c.Graph.InEdges(c.Graph.Source()) {
		sum -= voltage(c.EdgeNode[ei])
	}
	return sum
}

// Describe returns a short multi-line summary of the constructed circuit,
// used by the CLI tools.
func (c *Circuit) Describe() string {
	st := c.Netlist.Stats()
	return fmt.Sprintf("analog max-flow circuit: %d nodes, %d elements (%d resistors, %d negative resistors, %d diodes, %d sources, %d capacitors), %d MNA unknowns",
		c.Netlist.NumNodes(), c.Netlist.NumElements(),
		st["resistor"], st["negative-resistor"]+st["opamp"], st["diode"], st["vsource"], st["capacitor"],
		c.Netlist.Size())
}
