package builder

import (
	"math"
	"testing"

	"analogflow/internal/circuit"
	"analogflow/internal/graph"
	"analogflow/internal/maxflow"
	"analogflow/internal/mna"
	"analogflow/internal/rmat"
)

// rawCapacities returns the un-quantized clamp voltages (1 V per flow unit).
func rawCapacities(g *graph.Graph) []float64 {
	caps := make([]float64, g.NumEdges())
	for i := 0; i < g.NumEdges(); i++ {
		caps[i] = g.Edge(i).Capacity
	}
	return caps
}

// solveDC builds and solves the DC operating point of the max-flow circuit.
func solveDC(t *testing.T, g *graph.Graph, opts Options) (*Circuit, *mna.Solution) {
	t.Helper()
	c, err := BuildMaxFlow(g, rawCapacities(g), opts)
	if err != nil {
		t.Fatalf("BuildMaxFlow: %v", err)
	}
	eng, err := mna.NewEngine(c.Netlist, mna.DefaultOptions())
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	sol, err := eng.OperatingPoint(0)
	if err != nil {
		t.Fatalf("OperatingPoint: %v", err)
	}
	return c, sol
}

func TestOptionsValidate(t *testing.T) {
	if err := DefaultOptions().Validate(); err != nil {
		t.Errorf("default options invalid: %v", err)
	}
	cases := []func(*Options){
		func(o *Options) { o.WidgetResistance = 0 },
		func(o *Options) { o.VflowVoltage = 0 },
		func(o *Options) { o.Diode.ROn = 0 },
		func(o *Options) { o.OpAmp.Gain = 0 },
		func(o *Options) { o.ParasiticCapacitance = -1 },
		func(o *Options) { o.NegResMode = NegativeResistorMode(9) },
	}
	for i, mutate := range cases {
		o := DefaultOptions()
		mutate(&o)
		if o.Validate() == nil {
			t.Errorf("case %d: invalid options accepted", i)
		}
	}
	if NegResIdeal.String() != "ideal" || NegResOpAmp.String() != "opamp" {
		t.Errorf("mode names wrong")
	}
	if NegativeResistorMode(7).String() == "" {
		t.Errorf("unknown mode should stringify")
	}
}

func TestBuildRejectsBadInput(t *testing.T) {
	g := graph.PaperFigure5()
	if _, err := BuildMaxFlow(g, []float64{1}, DefaultOptions()); err == nil {
		t.Errorf("short clamp slice accepted")
	}
	if _, err := BuildMaxFlow(g, []float64{1, 1, 1, 1, 0}, DefaultOptions()); err == nil {
		t.Errorf("zero clamp voltage accepted")
	}
	bad := DefaultOptions()
	bad.WidgetResistance = -1
	if _, err := BuildMaxFlow(g, rawCapacities(g), bad); err == nil {
		t.Errorf("invalid options accepted")
	}
	// A graph whose source has no outgoing edges cannot host the objective.
	iso := graph.MustNew(3, 0, 2)
	iso.MustAddEdge(1, 2, 1)
	if _, err := BuildMaxFlow(iso, []float64{1}, DefaultOptions()); err == nil {
		t.Errorf("source without outgoing edges accepted")
	}
}

func TestBuildStructure(t *testing.T) {
	g := graph.PaperFigure5()
	c, err := BuildMaxFlow(g, rawCapacities(g), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(c.EdgeNode) != 5 || len(c.VertexNode) != 5 {
		t.Fatalf("node maps wrong size")
	}
	// Every edge has a distinct x node.
	seen := map[circuit.NodeID]bool{}
	for _, n := range c.EdgeNode {
		if n < 0 || seen[n] {
			t.Fatalf("edge nodes not distinct: %v", c.EdgeNode)
		}
		seen[n] = true
	}
	// Interior vertices n1, n2, n3 have conservation nodes; s and t do not.
	if c.VertexNode[0] != NoNode || c.VertexNode[4] != NoNode {
		t.Errorf("terminals should not have conservation nodes")
	}
	for v := 1; v <= 3; v++ {
		if c.VertexNode[v] == NoNode {
			t.Errorf("interior vertex %d missing conservation node", v)
		}
	}
	// Edges into interior vertices have inverter (negated) nodes: x1, x2, x3.
	for _, ei := range []int{0, 1, 2} {
		if c.EdgeNegNode[ei] == NoNode {
			t.Errorf("edge %d missing negated node", ei)
		}
	}
	// Edges into the sink need no inverter: x4, x5.
	for _, ei := range []int{3, 4} {
		if c.EdgeNegNode[ei] != NoNode {
			t.Errorf("sink edge %d should not have a negated node", ei)
		}
	}
	// Source-adjacent edges: just x1.
	if len(c.SourceEdgeIndices) != 1 || c.SourceEdgeIndices[0] != 0 {
		t.Errorf("source edge indices %v", c.SourceEdgeIndices)
	}
	// Shared clamp sources: capacities {3, 2, 1} -> 3 distinct sources.
	if len(c.ClampSourceNodes) != 3 {
		t.Errorf("clamp sources %d, want 3", len(c.ClampSourceNodes))
	}
	// Negative resistors: one per incoming-edge inverter (3) plus one per
	// interior vertex (3).
	if c.NumNegativeResistors != 6 {
		t.Errorf("negative resistors %d, want 6", c.NumNegativeResistors)
	}
	stats := c.Netlist.Stats()
	// Diodes: two per edge.
	if stats["diode"] != 10 {
		t.Errorf("diodes %d, want 10", stats["diode"])
	}
	// Parasitic capacitor on every node.
	if stats["capacitor"] != c.Netlist.NumNodes() {
		t.Errorf("capacitors %d, nodes %d", stats["capacitor"], c.Netlist.NumNodes())
	}
	if c.Describe() == "" {
		t.Errorf("empty description")
	}
}

// paperDriveOptions returns the builder options with the objective drive set
// high enough to saturate the instance (the paper only says Vflow is "set to
// a high voltage value"; empirically about ten times the largest capacity
// saturates the worked examples without degrading the constraint accuracy).
func paperDriveOptions(g *graph.Graph) Options {
	opts := DefaultOptions()
	opts.VflowVoltage = 10 * g.MaxCapacity()
	return opts
}

// The central correctness test: the DC steady state of the Figure 5 circuit
// reproduces the paper's solution — V(x1)=2, V(x2)=1, V(x3)=1, V(x4)=1,
// V(x5)=1 — to within a few percent (finite op-amp gain, diode on-resistance).
func TestFigure5SteadyState(t *testing.T) {
	g := graph.PaperFigure5()
	c, sol := solveDC(t, g, paperDriveOptions(g))
	want := []float64{2, 1, 1, 1, 1}
	voltages := c.EdgeVoltages(sol.Voltage)
	for i, w := range want {
		if math.Abs(voltages[i]-w) > 0.08*w {
			t.Errorf("V(x%d) = %.4f, want %.1f (+/-8%%)", i+1, voltages[i], w)
		}
	}
	// Flow value (sum over source-adjacent nodes) matches the optimum 2.
	if fv := c.FlowValueVolts(sol.Voltage); math.Abs(fv-2) > 0.16 {
		t.Errorf("flow value %.4f, want 2 (+/-8%%)", fv)
	}
	// No edge exceeds its capacity clamp by more than the diode drop.
	for i, v := range voltages {
		if v > g.Edge(i).Capacity+0.05 || v < -0.05 {
			t.Errorf("V(x%d) = %.4f outside [0, %g]", i+1, v, g.Edge(i).Capacity)
		}
	}
}

// The conservation constraint holds at every interior vertex of the solved
// Figure 5 circuit: sum of incoming edge voltages equals sum of outgoing edge
// voltages.
func TestFigure5Conservation(t *testing.T) {
	g := graph.PaperFigure5()
	c, sol := solveDC(t, g, paperDriveOptions(g))
	voltages := c.EdgeVoltages(sol.Voltage)
	for v := 0; v < g.NumVertices(); v++ {
		if v == g.Source() || v == g.Sink() {
			continue
		}
		var in, out float64
		for _, ei := range g.InEdges(v) {
			in += voltages[ei]
		}
		for _, ei := range g.OutEdges(v) {
			out += voltages[ei]
		}
		if math.Abs(in-out) > 0.05*math.Max(in, 1) {
			t.Errorf("vertex %d conservation violated: in=%.4f out=%.4f", v, in, out)
		}
	}
	// The inverter widgets hold V(x^-) = -V(x).
	for ei, neg := range c.EdgeNegNode {
		if neg == NoNode {
			continue
		}
		x := sol.Voltage(c.EdgeNode[ei])
		xn := sol.Voltage(neg)
		if math.Abs(x+xn) > 0.02*math.Max(math.Abs(x), 0.1) {
			t.Errorf("edge %d inverter violated: V(x)=%.4f V(x-)=%.4f", ei, x, xn)
		}
	}
}

// Figure 15 instance: the steady state should reach x1=4, x2=1, x3=3.
func TestFigure15SteadyState(t *testing.T) {
	g := graph.PaperFigure15()
	// The Figure 15 instance mixes small binding capacities (1, 4) with the
	// large "unconstrained" edges (8); the drive level that saturates the
	// binding constraints without overloading the widgets sits lower than
	// the 10x rule of thumb, so try a short ladder and use the first level
	// at which the circuit converges.
	var (
		c   *Circuit
		sol *mna.Solution
	)
	for _, mult := range []float64{4, 5, 7, 10} {
		opts := DefaultOptions()
		opts.VflowVoltage = mult * g.MaxCapacity()
		cc, err := BuildMaxFlow(g, rawCapacities(g), opts)
		if err != nil {
			t.Fatal(err)
		}
		eng, err := mna.NewEngine(cc.Netlist, mna.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		s, err := eng.OperatingPoint(0)
		if err != nil {
			continue
		}
		c, sol = cc, s
		break
	}
	if sol == nil {
		t.Fatal("circuit did not converge at any drive level")
	}
	voltages := c.EdgeVoltages(sol.Voltage)
	want := []float64{4, 1, 3}
	for i, w := range want {
		if math.Abs(voltages[i]-w) > 0.15*w {
			t.Errorf("V(x%d) = %.4f, want %g", i+1, voltages[i], w)
		}
	}
}

// The op-amp realisation of the negative resistors produces the same steady
// state as the ideal realisation on the Figure 5 instance.
func TestFigure5OpAmpMode(t *testing.T) {
	g := graph.PaperFigure5()
	opts := paperDriveOptions(g)
	opts.NegResMode = NegResOpAmp
	opts.ParasiticCapacitance = 0 // DC only; keep the system small
	c, err := BuildMaxFlow(g, rawCapacities(g), opts)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := mna.NewEngine(c.Netlist, mna.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	sol, err := eng.OperatingPoint(0)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 1, 1, 1, 1}
	voltages := c.EdgeVoltages(sol.Voltage)
	for i, w := range want {
		if math.Abs(voltages[i]-w) > 0.1*w {
			t.Errorf("op-amp mode V(x%d) = %.4f, want %g", i+1, voltages[i], w)
		}
	}
	// The op-amp mode instantiates one op-amp per negative resistance.
	if c.Netlist.Stats()["opamp"] != c.NumNegativeResistors {
		t.Errorf("op-amp count %d, want %d", c.Netlist.Stats()["opamp"], c.NumNegativeResistors)
	}
}

// Random small instances: the full circuit emulation is *fragile* on general
// graphs (documented in docs/solver.md) — the ideal-negative-resistance
// constraint network can fail to converge or settle on poor solutions for
// structures like interior cycles.  This test pins down the contract that is
// actually guaranteed: on instances pruned to their s-t core, whenever the
// solve converges the result respects the capacity clamps and never exceeds
// the true optimum by more than a clamp-accuracy margin; and the solve must
// succeed on a majority of small instances.
func TestRandomInstancesCircuitContract(t *testing.T) {
	seeds := []int64{1, 2, 3, 4, 5, 6, 7, 8}
	solved := 0
	var worst float64
	for _, seed := range seeds {
		raw := rmat.MustGenerate(rmat.DefaultParams(12, 30, seed))
		g := graph.PruneToSTCore(raw).Graph
		if g.NumEdges() == 0 {
			continue
		}
		exact, err := maxflow.OptimalValue(g)
		if err != nil {
			t.Fatal(err)
		}
		if exact == 0 {
			continue
		}
		opts := DefaultOptions()
		opts.VflowVoltage = 10 * g.MaxCapacity()
		c, err := BuildMaxFlow(g, rawCapacities(g), opts)
		if err != nil {
			t.Fatal(err)
		}
		eng, err := mna.NewEngine(c.Netlist, mna.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		sol, err := eng.OperatingPoint(0)
		if err != nil {
			// Source-stepping homotopy rescues a subset of the instances the
			// direct Newton solve cannot handle.
			hres, herr := eng.OperatingPointHomotopy(0, 8)
			if herr != nil {
				t.Logf("seed %d: circuit solve did not converge (known fragility): %v", seed, err)
				continue
			}
			sol = hres.Solution
		}
		solved++
		got := c.FlowValueVolts(sol.Voltage)
		relErr := math.Abs(got-exact) / exact
		if relErr > worst {
			worst = relErr
		}
		voltages := c.EdgeVoltages(sol.Voltage)
		for i, v := range voltages {
			if v > g.Edge(i).Capacity+0.1*g.MaxCapacity() {
				t.Errorf("seed %d: edge %d voltage %.3f far above capacity %g", seed, i, v, g.Edge(i).Capacity)
			}
		}
		if got > exact*1.3+1 {
			t.Errorf("seed %d: analog flow %.3f exceeds exact %.3f by more than the error margin", seed, got, exact)
		}
	}
	if solved < 2 {
		t.Errorf("circuit emulation solved only %d of %d pruned small instances", solved, len(seeds))
	}
	t.Logf("circuit emulation solved %d/%d instances, worst relative error %.1f%%", solved, len(seeds), 100*worst)
}

func TestPerturbResistanceHook(t *testing.T) {
	g := graph.PaperFigure5()
	calls := 0
	opts := DefaultOptions()
	opts.PerturbResistance = func(r float64) float64 {
		calls++
		return r * 1.01
	}
	if _, err := BuildMaxFlow(g, rawCapacities(g), opts); err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Errorf("perturbation hook never called")
	}
}

func TestMinCutBuildAndSolve(t *testing.T) {
	g := graph.PaperFigure5()
	opts := DefaultOptions()
	opts.ParasiticCapacitance = 0
	c, err := BuildMinCut(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.EdgeCutNode) != g.NumEdges() || len(c.VertexPotentialNode) != g.NumVertices() {
		t.Fatalf("node maps wrong size")
	}
	eng, err := mna.NewEngine(c.Netlist, mna.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	sol, err := eng.OperatingPoint(0)
	if err != nil {
		t.Fatal(err)
	}
	// Structural sanity of the analog dual solution: source potential 1,
	// sink potential 0, all potentials and cut indicators within [0, 1] up
	// to clamp tolerances.
	p := c.VertexPotentials(sol.Voltage)
	if math.Abs(p[g.Source()]-1) > 1e-6 || math.Abs(p[g.Sink()]) > 1e-6 {
		t.Errorf("terminal potentials wrong: %v", p)
	}
	for v, pv := range p {
		if pv < -0.05 || pv > 1.05 {
			t.Errorf("potential of vertex %d out of range: %g", v, pv)
		}
	}
	d := c.CutIndicators(sol.Voltage)
	for i, dv := range d {
		if dv < -0.05 || dv > 1.2 {
			t.Errorf("cut indicator of edge %d out of range: %g", i, dv)
		}
	}
	// Thresholding the potentials yields a valid s-t partition whose cut
	// capacity is at least the max-flow value (weak duality) and no worse
	// than cutting all source-adjacent edges.
	part := c.Partition(sol.Voltage)
	cut, err := graph.CutFromPartition(g, part)
	if err != nil {
		t.Fatalf("analog partition invalid: %v", err)
	}
	if cut.Capacity < graph.PaperFigure5MaxFlow-1e-9 {
		t.Errorf("cut capacity %g below max-flow value", cut.Capacity)
	}
	if cut.Capacity > g.SourceCapacity()+1e-9 {
		t.Errorf("cut capacity %g worse than the trivial source cut %g", cut.Capacity, g.SourceCapacity())
	}
}

func TestMinCutRejectsBadInput(t *testing.T) {
	bad := DefaultOptions()
	bad.WidgetResistance = 0
	if _, err := BuildMinCut(graph.PaperFigure5(), bad); err == nil {
		t.Errorf("invalid options accepted")
	}
	zero := graph.MustNew(2, 0, 1)
	zero.MustAddEdge(0, 1, 0)
	if _, err := BuildMinCut(zero, DefaultOptions()); err == nil {
		t.Errorf("all-zero capacities accepted")
	}
}
