package builder

import (
	"math"
	"testing"

	"analogflow/internal/graph"
	"analogflow/internal/maxflow"
	"analogflow/internal/mna"
)

// TestProbeStructuralPatterns checks which small graph patterns break the
// analog solve.  Diagnostic only.
func TestProbeStructuralPatterns(t *testing.T) {
	type pattern struct {
		name  string
		build func() *graph.Graph
	}
	patterns := []pattern{
		{"chain3", func() *graph.Graph {
			g := graph.MustNew(5, 0, 4)
			g.MustAddEdge(0, 1, 2)
			g.MustAddEdge(1, 2, 2)
			g.MustAddEdge(2, 3, 2)
			g.MustAddEdge(3, 4, 2)
			return g
		}},
		{"two-cycle", func() *graph.Graph {
			g := graph.MustNew(4, 0, 3)
			g.MustAddEdge(0, 1, 2)
			g.MustAddEdge(1, 2, 2)
			g.MustAddEdge(2, 1, 2)
			g.MustAddEdge(2, 3, 2)
			return g
		}},
		{"dead-end vertex", func() *graph.Graph {
			g := graph.MustNew(5, 0, 4)
			g.MustAddEdge(0, 1, 2)
			g.MustAddEdge(1, 4, 2)
			g.MustAddEdge(1, 2, 1) // vertex 2 has no outgoing edge
			g.MustAddEdge(0, 3, 1) // vertex 3 likewise
			return g
		}},
		{"source-only vertex", func() *graph.Graph {
			g := graph.MustNew(4, 0, 3)
			g.MustAddEdge(0, 1, 2)
			g.MustAddEdge(1, 3, 2)
			g.MustAddEdge(2, 1, 1) // vertex 2 has no incoming edge
			return g
		}},
		{"edge into source", func() *graph.Graph {
			g := graph.MustNew(3, 0, 2)
			g.MustAddEdge(0, 1, 2)
			g.MustAddEdge(1, 2, 2)
			g.MustAddEdge(1, 0, 1)
			return g
		}},
		{"edge out of sink", func() *graph.Graph {
			g := graph.MustNew(3, 0, 2)
			g.MustAddEdge(0, 1, 2)
			g.MustAddEdge(1, 2, 2)
			g.MustAddEdge(2, 1, 1)
			return g
		}},
		{"triangle cycle", func() *graph.Graph {
			g := graph.MustNew(5, 0, 4)
			g.MustAddEdge(0, 1, 2)
			g.MustAddEdge(1, 2, 2)
			g.MustAddEdge(2, 3, 2)
			g.MustAddEdge(3, 1, 2)
			g.MustAddEdge(2, 4, 2)
			return g
		}},
		{"parallel paths", func() *graph.Graph {
			g := graph.MustNew(6, 0, 5)
			g.MustAddEdge(0, 1, 3)
			g.MustAddEdge(0, 2, 3)
			g.MustAddEdge(1, 3, 2)
			g.MustAddEdge(2, 4, 2)
			g.MustAddEdge(1, 4, 1)
			g.MustAddEdge(2, 3, 1)
			g.MustAddEdge(3, 5, 3)
			g.MustAddEdge(4, 5, 3)
			return g
		}},
	}
	for _, p := range patterns {
		g := p.build()
		exact, _ := maxflow.OptimalValue(g)
		opts := DefaultOptions()
		opts.VflowVoltage = 10 * g.MaxCapacity()
		c, err := BuildMaxFlow(g, rawCapacities(g), opts)
		if err != nil {
			t.Fatalf("%s: %v", p.name, err)
		}
		eng, err := mna.NewEngine(c.Netlist, mna.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		sol, err := eng.OperatingPoint(0)
		if err != nil {
			t.Logf("%-18s FAILED: %v", p.name, err)
			continue
		}
		got := c.FlowValueVolts(sol.Voltage)
		t.Logf("%-18s flow=%8.3f exact=%g relerr=%6.2f%% newton=%d",
			p.name, got, exact, 100*math.Abs(got-exact)/math.Max(exact, 1e-9), sol.NewtonIterations)
	}
}
