package builder

import (
	"fmt"

	"analogflow/internal/circuit"
	"analogflow/internal/graph"
)

// This file implements the min-cut dual circuit of Section 6.3 of the paper.
//
// The min-cut linear program (Figure 12) is
//
//	minimize   sum c_ij * d_ij
//	subject to d_ij - p_i + p_j >= 0   for every edge (i, j)
//	           p_s - p_t        >= 1
//	           p_i >= 0, d_ij >= 0
//
// where p_i indicates which side of the cut vertex i is on and d_ij whether
// edge (i, j) is cut.  The circuit (Figure 13) drives the d and p node
// voltages DOWN through per-variable resistors weighted by the edge
// capacities (objective), while constraint widgets built from negative
// resistors and diodes keep every constraint satisfied, mirroring the
// max-flow construction with the inequality directions reversed.

// MinCutCircuit is the constructed dual circuit with its readout maps.
type MinCutCircuit struct {
	Netlist *circuit.Netlist
	Options Options
	Graph   *graph.Graph

	// EdgeCutNode[i] is the node carrying d_ij for edge i.
	EdgeCutNode []circuit.NodeID
	// VertexPotentialNode[v] is the node carrying p_v.
	VertexPotentialNode []circuit.NodeID
	// ObjectiveNode is the node the objective source pulls down.
	ObjectiveNode circuit.NodeID
	// ObjectiveElementIndex is the netlist index of the objective source.
	ObjectiveElementIndex int

	railNodes map[float64]circuit.NodeID
}

// BuildMinCut constructs the dual (min-cut) circuit for g.
//
// Construction summary, per element of the LP:
//
//   - d_ij >= 0 and p_i >= 0: ground-clamp diodes, exactly as the max-flow
//     lower clamps.
//   - d_ij - p_i + p_j >= 0: a three-input summing widget (resistors into a
//     summing node with a negative resistor of magnitude r/3) produces the
//     combination; a diode to ground prevents it from going negative.
//     The p_i term enters through an inverter widget identical to the
//     max-flow one.
//   - p_s - p_t >= 1: the source potential node is tied to 1 V and the sink
//     potential to 0 V, the standard normalisation of the dual LP.
//   - objective: each d_ij node is pulled toward ground through a resistor
//     proportional to 1/c_ij from a 0 V objective rail (Figure 13a), so the
//     circuit minimises sum c_ij d_ij subject to the constraints.
func BuildMinCut(g *graph.Graph, opts Options) (*MinCutCircuit, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	r := opts.WidgetResistance
	c := &MinCutCircuit{
		Netlist:             circuit.NewNetlist(),
		Options:             opts,
		Graph:               g,
		EdgeCutNode:         make([]circuit.NodeID, g.NumEdges()),
		VertexPotentialNode: make([]circuit.NodeID, g.NumVertices()),
	}
	nl := c.Netlist

	// Objective rail at 0 V: the pull-down reference.
	c.ObjectiveNode = nl.AddNode("obj")
	c.ObjectiveElementIndex = nl.NumElements()
	nl.Add(circuit.NewVoltageSource("Vobj", c.ObjectiveNode, circuit.Ground, circuit.DC{Value: 0}))

	// Vertex potential nodes.  Source fixed at 1 V, sink at 0 V.
	for v := 0; v < g.NumVertices(); v++ {
		c.VertexPotentialNode[v] = nl.AddNode(fmt.Sprintf("p%d", v))
	}
	nl.Add(circuit.NewVoltageSource("Vps", c.VertexPotentialNode[g.Source()], circuit.Ground, circuit.DC{Value: 1}))
	nl.Add(circuit.NewVoltageSource("Vpt", c.VertexPotentialNode[g.Sink()], circuit.Ground, circuit.DC{Value: 0}))

	maxCap := g.MaxCapacity()
	if maxCap <= 0 {
		return nil, fmt.Errorf("builder: min-cut requires at least one positive capacity")
	}

	for v := 0; v < g.NumVertices(); v++ {
		if v == g.Source() || v == g.Sink() {
			continue
		}
		p := c.VertexPotentialNode[v]
		// p_v >= 0 clamp.
		nl.Add(circuit.NewDiode(fmt.Sprintf("Dp%d", v), circuit.Ground, p, opts.Diode))
		// p_v <= 1 clamp keeps the potentials in the unit box (any optimal
		// dual solution can be normalised into it).
		oneNode, ok := findOrAddRail(c, nl, 1)
		if ok {
			nl.Add(circuit.NewDiode(fmt.Sprintf("Dp%d_hi", v), p, oneNode, opts.Diode))
		}
		// A weak pull-down keeps unconstrained potentials at 0 (minimal cut
		// side assignment); magnitude chosen much weaker than the constraint
		// widgets so it never fights an active constraint.
		nl.Add(circuit.NewResistor(fmt.Sprintf("Rleak_p%d", v), p, circuit.Ground, 100*r))
	}

	for i := 0; i < g.NumEdges(); i++ {
		e := g.Edge(i)
		d := nl.AddNode(fmt.Sprintf("d%d", i))
		c.EdgeCutNode[i] = d
		// d_ij >= 0 clamp.
		nl.Add(circuit.NewDiode(fmt.Sprintf("Dd%d", i), circuit.Ground, d, opts.Diode))
		// Objective pull-down: resistance inversely proportional to the edge
		// capacity (Figure 13a uses conductance proportional to c_ij), so
		// cutting a fat edge costs proportionally more current.
		robj := r * maxCap / e.Capacity
		nl.Add(circuit.NewResistor(fmt.Sprintf("Robj_d%d", i), d, c.ObjectiveNode, robj))

		// Constraint d_ij - p_i + p_j >= 0, rearranged as d_ij + p_j >= p_i:
		// a diode from a summing node that carries (p_i - p_j) into d_ij
		// pulls d_ij up whenever p_i - p_j would exceed it.
		pi := c.VertexPotentialNode[e.From]
		pj := c.VertexPotentialNode[e.To]
		diff := nl.AddNode(fmt.Sprintf("diff%d", i))
		inv := nl.AddNode(fmt.Sprintf("pinv%d", i))
		pnode := nl.AddNode(fmt.Sprintf("pw%d", i))
		// Inverter producing -p_j (same widget as the max-flow inverter).
		nl.Add(circuit.NewResistor(fmt.Sprintf("Rinv_a_d%d", i), pj, pnode, r))
		nl.Add(circuit.NewResistor(fmt.Sprintf("Rinv_b_d%d", i), inv, pnode, r))
		c.addMinCutNegativeResistor(fmt.Sprintf("NRinv_d%d", i), pnode, r/2)
		// Summing node: with equal resistors from p_i and from the inverted
		// -p_j, the open-circuit voltage of the divider is exactly
		// V(diff) = (p_i - p_j) / 2.
		nl.Add(circuit.NewResistor(fmt.Sprintf("Rsum_a_d%d", i), pi, diff, r))
		nl.Add(circuit.NewResistor(fmt.Sprintf("Rsum_b_d%d", i), inv, diff, r))
		// Coupling diode: the d_ij node is halved by an identical divider,
		// so the diode conducts whenever (p_i - p_j)/2 > d_ij/2 and drags
		// d_ij up until d_ij >= p_i - p_j; the factor of two cancels.
		half := nl.AddNode(fmt.Sprintf("dhalf%d", i))
		nl.Add(circuit.NewResistor(fmt.Sprintf("Rhalf_a_d%d", i), d, half, r))
		nl.Add(circuit.NewResistor(fmt.Sprintf("Rhalf_b_d%d", i), half, circuit.Ground, r))
		nl.Add(circuit.NewDiode(fmt.Sprintf("Dcons_d%d", i), diff, half, opts.Diode))
	}

	if opts.ParasiticCapacitance > 0 {
		for n := 0; n < nl.NumNodes(); n++ {
			nl.Add(circuit.NewCapacitor(fmt.Sprintf("Cpar_%s", nl.NodeName(circuit.NodeID(n))),
				circuit.NodeID(n), circuit.Ground, opts.ParasiticCapacitance))
		}
	}
	if err := nl.CheckNodes(); err != nil {
		return nil, err
	}
	return c, nil
}

// findOrAddRail returns the node of a DC rail at the given voltage, creating
// it on first use.  The bool result is always true and exists only to keep
// the call sites short.
func findOrAddRail(c *MinCutCircuit, nl *circuit.Netlist, v float64) (circuit.NodeID, bool) {
	if c.railNodes == nil {
		c.railNodes = make(map[float64]circuit.NodeID)
	}
	if n, ok := c.railNodes[v]; ok {
		return n, true
	}
	n := nl.AddNode(fmt.Sprintf("rail_%g", v))
	nl.Add(circuit.NewVoltageSource(fmt.Sprintf("Vrail_%g", v), n, circuit.Ground, circuit.DC{Value: v}))
	c.railNodes[v] = n
	return n, true
}

// addMinCutNegativeResistor mirrors Circuit.addNegativeResistor for the dual
// circuit (always the ideal realisation with gain-error degradation; the dual
// prototype does not support the op-amp expansion).
func (c *MinCutCircuit) addMinCutNegativeResistor(label string, n circuit.NodeID, magnitude float64) {
	nr := circuit.NewNegativeResistor(label, n, circuit.Ground, magnitude)
	nr.GainError = c.Options.OpAmp.NegativeResistorPrecision(c.Options.WidgetResistance, magnitude)
	nr.Saturation = c.Options.NegResSaturation
	c.Netlist.Add(nr)
}

// CutIndicators extracts the d_ij voltages from a solved circuit; values near
// or above 0.5 indicate edges the analog solution wants in the cut set.
func (c *MinCutCircuit) CutIndicators(voltage func(circuit.NodeID) float64) []float64 {
	out := make([]float64, len(c.EdgeCutNode))
	for i, n := range c.EdgeCutNode {
		out[i] = voltage(n)
	}
	return out
}

// VertexPotentials extracts the p_v voltages.
func (c *MinCutCircuit) VertexPotentials(voltage func(circuit.NodeID) float64) []float64 {
	out := make([]float64, len(c.VertexPotentialNode))
	for i, n := range c.VertexPotentialNode {
		out[i] = voltage(n)
	}
	return out
}

// Partition thresholds the vertex potentials into a source-side indicator
// (p_v >= 0.5 joins the source side), giving a discrete cut that can be
// compared against the exact minimum cut.
func (c *MinCutCircuit) Partition(voltage func(circuit.NodeID) float64) []bool {
	p := c.VertexPotentials(voltage)
	out := make([]bool, len(p))
	for i, v := range p {
		out[i] = v >= 0.5
	}
	out[c.Graph.Source()] = true
	out[c.Graph.Sink()] = false
	return out
}
