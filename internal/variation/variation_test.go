package variation

import (
	"math"
	"testing"
	"testing/quick"

	"analogflow/internal/device"
)

func TestProfileValidate(t *testing.T) {
	if err := DefaultUnmatched().Validate(); err != nil {
		t.Errorf("default unmatched invalid: %v", err)
	}
	if err := DefaultMatched().Validate(); err != nil {
		t.Errorf("default matched invalid: %v", err)
	}
	if (Profile{GlobalSigma: -1}).Validate() == nil {
		t.Errorf("negative sigma accepted")
	}
	if (Profile{ParasiticResistance: -1}).Validate() == nil {
		t.Errorf("negative parasitic accepted")
	}
	if _, err := NewSampler(Profile{GlobalSigma: -1}); err == nil {
		t.Errorf("sampler accepted invalid profile")
	}
}

func TestSamplerGlobalVsMismatch(t *testing.T) {
	p := Profile{GlobalSigma: 0.25, MismatchSigma: 0.005, Seed: 3}
	s, err := NewSampler(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.GlobalFactor() <= 0 {
		t.Fatalf("global factor must be positive")
	}
	// All perturbed values share the global factor, so their pairwise ratios
	// stay within a few mismatch sigmas even when the global factor is large.
	const nominal = 10e3
	values := make([]float64, 200)
	for i := range values {
		values[i] = s.Perturb(nominal)
	}
	for _, v := range values {
		ratio := v / values[0]
		if ratio < 0.95 || ratio > 1.05 {
			t.Fatalf("ratio between matched resistors too large: %g", ratio)
		}
	}
	// Ratio error helper stays in the same few-percent band.
	if e := s.RatioError(nominal); e > 0.05 {
		t.Errorf("ratio error %g too large for matched profile", e)
	}
}

func TestPerturbIncludesParasitics(t *testing.T) {
	p := Profile{ParasiticResistance: 100, Seed: 1}
	s, err := NewSampler(p)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Perturb(10e3); math.Abs(got-10100) > 1e-9 {
		t.Errorf("parasitic not added: %g", got)
	}
	if s.PerturbFunc()(10e3) != s.Perturb(10e3) {
		t.Errorf("PerturbFunc should behave like Perturb")
	}
}

func TestSamplerDeterminism(t *testing.T) {
	a, _ := NewSampler(DefaultUnmatched())
	b, _ := NewSampler(DefaultUnmatched())
	for i := 0; i < 10; i++ {
		if a.Perturb(10e3) != b.Perturb(10e3) {
			t.Fatalf("same seed produced different sequences")
		}
	}
}

func TestTuningSpecValidate(t *testing.T) {
	if err := DefaultTuning().Validate(); err != nil {
		t.Errorf("default tuning invalid: %v", err)
	}
	bad := []TuningSpec{
		{TargetPrecision: 0, MaxIterations: 5, StepFraction: 0.5},
		{TargetPrecision: 2, MaxIterations: 5, StepFraction: 0.5},
		{TargetPrecision: 0.001, MaxIterations: 0, StepFraction: 0.5},
		{TargetPrecision: 0.001, MaxIterations: 5, StepFraction: 0},
		{TargetPrecision: 0.001, MaxIterations: 5, StepFraction: 1.5},
	}
	for i, s := range bad {
		if s.Validate() == nil {
			t.Errorf("case %d: invalid tuning spec accepted", i)
		}
	}
}

func TestTuneMemristor(t *testing.T) {
	model := device.DefaultMemristor()
	m := device.NewMemristor(model)
	// Fabricated 20 % high.
	if err := m.Tune(12e3); err != nil {
		t.Fatal(err)
	}
	res, err := TuneMemristor(m, 10e3, DefaultTuning())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("tuning did not converge: %+v", res)
	}
	if res.FinalError > 1e-3 {
		t.Errorf("final error %g above target precision", res.FinalError)
	}
	if res.Iterations == 0 {
		t.Errorf("tuning should have taken at least one iteration")
	}
	// Already-tuned device converges immediately.
	res2, err := TuneMemristor(m, m.LRSResistance(), DefaultTuning())
	if err != nil {
		t.Fatal(err)
	}
	if res2.Iterations != 0 || !res2.Converged {
		t.Errorf("already-tuned device should need no iterations: %+v", res2)
	}
	// Invalid arguments.
	if _, err := TuneMemristor(m, -1, DefaultTuning()); err == nil {
		t.Errorf("negative target accepted")
	}
	if _, err := TuneMemristor(m, 10e3, TuningSpec{}); err == nil {
		t.Errorf("invalid spec accepted")
	}
}

func TestTuneMemristorLimitedIterations(t *testing.T) {
	model := device.DefaultMemristor()
	m := device.NewMemristor(model)
	if err := m.Tune(20e3); err != nil {
		t.Fatal(err)
	}
	spec := TuningSpec{TargetPrecision: 1e-6, MaxIterations: 2, StepFraction: 0.3}
	res, err := TuneMemristor(m, 10e3, spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Errorf("tuning should not converge in 2 coarse iterations to 1e-6")
	}
	if res.FinalError >= 1 {
		t.Errorf("tuning should still have reduced the error: %g", res.FinalError)
	}
}

func TestTuneAll(t *testing.T) {
	model := device.DefaultMemristor()
	model.VariationSigma = 0.2
	var ms []*device.Memristor
	sampler, _ := NewSampler(Profile{Seed: 5})
	_ = sampler
	rngDevices := []*device.Memristor{}
	for i := 0; i < 50; i++ {
		m := device.NewMemristor(model)
		// Spread initial resistances deterministically.
		if err := m.Tune(10e3 * (1 + 0.3*float64(i-25)/25)); err != nil {
			t.Fatal(err)
		}
		rngDevices = append(rngDevices, m)
	}
	ms = rngDevices
	worst, mean, iters, err := TuneAll(ms, 10e3, DefaultTuning())
	if err != nil {
		t.Fatal(err)
	}
	if worst > 1e-3 || mean > 1e-3 {
		t.Errorf("tuning left errors worst=%g mean=%g", worst, mean)
	}
	if iters == 0 {
		t.Errorf("tuning iterations should be positive")
	}
	// Empty slice is a no-op.
	if w, m2, i2, err := TuneAll(nil, 10e3, DefaultTuning()); err != nil || w != 0 || m2 != 0 || i2 != 0 {
		t.Errorf("empty TuneAll misbehaved")
	}
}

func TestEffectiveMismatch(t *testing.T) {
	p := DefaultUnmatched()
	raw := EffectiveMismatch(p, false, false, DefaultTuning())
	if raw != p.MismatchSigma {
		t.Errorf("raw mismatch should be unchanged")
	}
	matched := EffectiveMismatch(p, true, false, DefaultTuning())
	if matched >= raw {
		t.Errorf("matching should reduce mismatch: %g vs %g", matched, raw)
	}
	tuned := EffectiveMismatch(p, true, true, DefaultTuning())
	if tuned > DefaultTuning().TargetPrecision {
		t.Errorf("tuning should clamp mismatch to the tuning precision, got %g", tuned)
	}
	// A profile already better than the matched default is not made worse.
	good := Profile{MismatchSigma: 0.0001}
	if EffectiveMismatch(good, true, false, DefaultTuning()) != 0.0001 {
		t.Errorf("matching should never increase mismatch")
	}
}

// Property: perturbed resistances are always positive and the ratio of two
// devices from the same substrate is within exp(6*sigma) of unity.
func TestPerturbInvariants(t *testing.T) {
	f := func(seed int64) bool {
		p := Profile{GlobalSigma: 0.3, MismatchSigma: 0.02, ParasiticResistance: 10, Seed: seed}
		s, err := NewSampler(p)
		if err != nil {
			return false
		}
		prev := -1.0
		for i := 0; i < 50; i++ {
			v := s.Perturb(10e3)
			if v <= 0 {
				return false
			}
			if prev > 0 {
				ratio := v / prev
				if ratio < math.Exp(-6*0.02)*0.9 || ratio > math.Exp(6*0.02)*1.1 {
					return false
				}
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
