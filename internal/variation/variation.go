// Package variation models the process-variation and parasitic-resistance
// effects of Section 4.3 of the paper, together with the two mitigation
// techniques it proposes: resistance matching through layout (Section 4.3.1)
// and post-fabrication resistance tuning of the memristors (Section 4.3.2).
//
// The key observation the paper relies on is that the circuit solution
// depends only on resistance *ratios*, so a common multiplicative shift of
// all resistances is harmless; only the mismatch between resistors degrades
// solution quality.  The models here therefore separate a global lot-to-lot
// component (irrelevant) from a local mismatch component (what matters), and
// the tuning procedure reduces the local component to the tuning precision.
package variation

import (
	"fmt"
	"math"
	"math/rand"

	"analogflow/internal/device"
)

// Profile describes the statistical variation of the resistances on a
// substrate.
type Profile struct {
	// GlobalSigma is the lot-to-lot (common-mode) lognormal sigma.  The
	// paper quotes absolute tolerances of 20-30 % for integrated resistors.
	GlobalSigma float64
	// MismatchSigma is the device-to-device (local) lognormal sigma before
	// any mitigation.  Matched layout brings it to better than 1 % and often
	// 0.1 % (paper, citing Hastings).
	MismatchSigma float64
	// ParasiticResistance is a deterministic series resistance added to
	// every resistor (wiring, crossbar electrodes), in Ohm.
	ParasiticResistance float64
	// Seed makes the drawn variations reproducible.
	Seed int64
}

// DefaultUnmatched returns the paper's "raw" integrated-resistor tolerances:
// 25 % global, 5 % local mismatch, 50 Ohm parasitics.
func DefaultUnmatched() Profile {
	return Profile{GlobalSigma: 0.25, MismatchSigma: 0.05, ParasiticResistance: 50, Seed: 1}
}

// DefaultMatched returns the matched-layout profile: the same global
// tolerance but 0.5 % mismatch.
func DefaultMatched() Profile {
	return Profile{GlobalSigma: 0.25, MismatchSigma: 0.005, ParasiticResistance: 50, Seed: 1}
}

// Validate checks the profile.
func (p Profile) Validate() error {
	if p.GlobalSigma < 0 || p.MismatchSigma < 0 {
		return fmt.Errorf("variation: negative sigma")
	}
	if p.ParasiticResistance < 0 {
		return fmt.Errorf("variation: negative parasitic resistance")
	}
	return nil
}

// Sampler draws per-device resistance values under a profile.  One Sampler
// corresponds to one fabricated substrate: the global factor is drawn once,
// the mismatch independently per device.
type Sampler struct {
	profile Profile
	rng     *rand.Rand
	global  float64
}

// NewSampler creates a sampler for one substrate instance.
func NewSampler(p Profile) (*Sampler, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(p.Seed))
	global := 1.0
	if p.GlobalSigma > 0 {
		global = math.Exp(rng.NormFloat64() * p.GlobalSigma)
	}
	return &Sampler{profile: p, rng: rng, global: global}, nil
}

// GlobalFactor returns the common-mode factor of this substrate instance.
func (s *Sampler) GlobalFactor() float64 { return s.global }

// Perturb returns the fabricated value of a resistor with the given nominal
// resistance: nominal * global * mismatch + parasitic.
func (s *Sampler) Perturb(nominal float64) float64 {
	mismatch := 1.0
	if s.profile.MismatchSigma > 0 {
		mismatch = math.Exp(s.rng.NormFloat64() * s.profile.MismatchSigma)
	}
	return nominal*s.global*mismatch + s.profile.ParasiticResistance
}

// PerturbFunc adapts the sampler to the builder's PerturbResistance hook.
func (s *Sampler) PerturbFunc() func(float64) float64 {
	return s.Perturb
}

// RatioError reports the relative error of the ratio between two perturbed
// resistors that were nominally equal; the solution-quality analysis of
// Section 4.3.1 is driven by this quantity rather than by absolute errors.
func (s *Sampler) RatioError(nominal float64) float64 {
	a := s.Perturb(nominal)
	b := s.Perturb(nominal)
	return math.Abs(a/b - 1)
}

// TuningSpec describes the post-fabrication tuning procedure of
// Section 4.3.2: the substrate is reconfigured into the Figure 9b tuning
// circuit and each memristor is adjusted until the inverter gain is -1 within
// the given precision, over a bounded number of refinement iterations.
type TuningSpec struct {
	// TargetPrecision is the relative precision the tuning loop aims for
	// (e.g. 0.001 for 0.1 %).
	TargetPrecision float64
	// MaxIterations bounds the iterative refinement of the two-step tuning
	// procedure.
	MaxIterations int
	// StepFraction is the fraction of the measured error corrected per
	// iteration (models finite programming-pulse resolution).
	StepFraction float64
}

// DefaultTuning returns a practical tuning specification.
func DefaultTuning() TuningSpec {
	return TuningSpec{TargetPrecision: 1e-3, MaxIterations: 10, StepFraction: 0.8}
}

// Validate checks the spec.
func (t TuningSpec) Validate() error {
	if t.TargetPrecision <= 0 || t.TargetPrecision >= 1 {
		return fmt.Errorf("variation: tuning precision must be in (0,1), got %g", t.TargetPrecision)
	}
	if t.MaxIterations < 1 {
		return fmt.Errorf("variation: tuning needs at least one iteration")
	}
	if t.StepFraction <= 0 || t.StepFraction > 1 {
		return fmt.Errorf("variation: step fraction must be in (0,1], got %g", t.StepFraction)
	}
	return nil
}

// TuneResult reports the outcome of tuning one memristor.
type TuneResult struct {
	// Iterations is how many refinement steps were used.
	Iterations int
	// FinalError is the remaining relative error versus the target.
	FinalError float64
	// Converged reports whether the target precision was reached.
	Converged bool
}

// TuneMemristor adjusts the memristor's LRS resistance toward the target
// value using the iterative procedure of Section 4.3.2.  Each iteration
// "measures" the current error (through the tuning circuit, modelled here as
// an exact measurement) and corrects a StepFraction of it.
func TuneMemristor(m *device.Memristor, target float64, spec TuningSpec) (TuneResult, error) {
	if err := spec.Validate(); err != nil {
		return TuneResult{}, err
	}
	if target <= 0 {
		return TuneResult{}, fmt.Errorf("variation: tuning target must be positive, got %g", target)
	}
	var res TuneResult
	for i := 0; i < spec.MaxIterations; i++ {
		current := m.LRSResistance()
		err := (current - target) / target
		res.FinalError = math.Abs(err)
		if res.FinalError <= spec.TargetPrecision {
			res.Converged = true
			return res, nil
		}
		res.Iterations++
		next := current - spec.StepFraction*(current-target)
		if tuneErr := m.Tune(next); tuneErr != nil {
			return res, tuneErr
		}
	}
	res.FinalError = math.Abs(m.LRSResistance()-target) / target
	res.Converged = res.FinalError <= spec.TargetPrecision
	return res, nil
}

// TuneAll tunes a slice of memristors toward a common target and returns the
// worst-case remaining error, the mean error, and the total number of tuning
// iterations (a proxy for tuning time, which matters because tuning has to be
// repeated when memristance drifts).
func TuneAll(ms []*device.Memristor, target float64, spec TuningSpec) (worst, mean float64, iterations int, err error) {
	if len(ms) == 0 {
		return 0, 0, 0, nil
	}
	for _, m := range ms {
		res, terr := TuneMemristor(m, target, spec)
		if terr != nil {
			return 0, 0, iterations, terr
		}
		iterations += res.Iterations
		mean += res.FinalError
		if res.FinalError > worst {
			worst = res.FinalError
		}
	}
	mean /= float64(len(ms))
	return worst, mean, iterations, nil
}

// EffectiveMismatch returns the residual mismatch sigma of a substrate after
// applying the selected mitigations: matched layout replaces the raw
// mismatch, and tuning clamps whatever remains to the tuning precision.
func EffectiveMismatch(p Profile, matched bool, tuned bool, tuning TuningSpec) float64 {
	sigma := p.MismatchSigma
	if matched {
		matchedProfile := DefaultMatched()
		if sigma > matchedProfile.MismatchSigma {
			sigma = matchedProfile.MismatchSigma
		}
	}
	if tuned {
		if sigma > tuning.TargetPrecision {
			sigma = tuning.TargetPrecision
		}
	}
	return sigma
}
