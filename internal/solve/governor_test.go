// Governor tests: the adaptive capacity loop raises effective workers and
// shrinks the substrate budget under synthetic saturation, walks both back
// under slack, and never leaves its clamps — driven through governorTick so
// every control step is deterministic (no timers).
package solve

import (
	"context"
	"sync"
	"testing"
	"time"

	"analogflow/internal/core"
)

// governorService builds a single-worker service with a vertex budget and a
// governor clamped to [1, 4] workers, configured but not running its loop —
// the test drives governorTick by hand.
func governorService(t *testing.T, gate *gateSolver) *Service {
	t.Helper()
	reg := NewRegistry()
	if err := reg.Register(gate); err != nil {
		t.Fatal(err)
	}
	return NewService(Config{
		Registry: reg,
		Workers:  1,
		MaxQueue: 8,
		Budget:   Budget{MaxVertices: 200},
		Governor: GovernorConfig{
			Interval:   time.Hour, // effectively never: ticks are manual
			MaxWorkers: 4,
			TargetWait: 250 * time.Millisecond,
		},
	})
}

// TestGovernorRaisesAndLowersWithinClamps is the synthetic-load acceptance
// test: saturation (pinned worker, deep queue, slow EMA) makes successive
// ticks grow the worker pool to its clamp and halve the effective budget to
// its floor; releasing the load makes successive ticks walk both all the
// way back — and no tick ever steps outside [MinWorkers, MaxWorkers] or
// [MinBudgetVertices, Budget.MaxVertices].
func TestGovernorRaisesAndLowersWithinClamps(t *testing.T) {
	gate := newGateSolver("gate")
	svc := governorService(t, gate)
	prob := figure5Problem(t, core.DefaultParams())

	// Synthetic load: the single worker pinned, four more solves queued,
	// and an EMA that says each takes a second — estimated wait far above
	// TargetWait.
	svc.ema.observe("gate", time.Second)
	done := occupy(t, svc, gate, prob, 1)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := svc.Solve(context.Background(), Request{Solver: "gate", Problem: prob}); err != nil {
				t.Errorf("queued solve failed: %v", err)
			}
		}()
	}
	waitQueueDepth(t, svc, 4)

	if got := svc.adm.capacityNow(); got != 1 {
		t.Fatalf("initial capacity %d, want 1", got)
	}
	if got := svc.effMaxVertices.Load(); got != 200 {
		t.Fatalf("initial effective budget %d, want 200", got)
	}

	// Saturated ticks grow the pool and shrink the budget, monotonically,
	// until both pin at their clamps.  Each resize admits queued waiters,
	// so drain the started tokens as the pool widens.
	prevCap, prevBudget := 1, int64(200)
	for i := 0; i < 6; i++ {
		svc.governorTick()
		c, b := svc.adm.capacityNow(), svc.effMaxVertices.Load()
		if c < prevCap || c > 4 {
			t.Fatalf("tick %d: capacity %d left [%d, 4]", i, c, prevCap)
		}
		if b > prevBudget || b < 50 {
			t.Fatalf("tick %d: budget %d left [50, %d]", i, b, prevBudget)
		}
		for j := prevCap; j < c; j++ { // newly admitted waiters start solving
			select {
			case <-gate.started:
			case <-time.After(5 * time.Second):
				t.Fatal("granted waiter never started")
			}
		}
		prevCap, prevBudget = c, b
	}
	if prevCap != 4 {
		t.Errorf("saturation never reached the MaxWorkers clamp: capacity %d, want 4", prevCap)
	}
	if prevBudget != 50 {
		t.Errorf("saturation never reached the budget floor: %d, want 50 (a quarter of 200)", prevBudget)
	}
	snap := svc.gov.snapshot(svc)
	if snap.Adjustments < 4 {
		t.Errorf("snapshot records %d adjustments, want >= 4", snap.Adjustments)
	}

	// Release the load entirely; relaxed ticks walk both knobs back.
	done()
	wg.Wait()
	if st := svc.Stats(); st.QueueDepth != 0 || st.InFlight != 0 {
		t.Fatalf("load did not drain: %+v", st)
	}
	for i := 0; i < 8; i++ {
		svc.governorTick()
		c, b := svc.adm.capacityNow(), svc.effMaxVertices.Load()
		if c < 1 || c > prevCap {
			t.Fatalf("relax tick %d: capacity %d left [1, %d]", i, c, prevCap)
		}
		if b < prevBudget || b > 200 {
			t.Fatalf("relax tick %d: budget %d left [%d, 200]", i, b, prevBudget)
		}
		prevCap, prevBudget = c, b
	}
	if prevCap != 1 {
		t.Errorf("relaxation never returned to MinWorkers: capacity %d, want 1", prevCap)
	}
	if prevBudget != 200 {
		t.Errorf("relaxation never restored the configured budget: %d, want 200", prevBudget)
	}

	// The gauges track the knobs.
	if got := svc.gov.workersGauge.Value(); got != 1 {
		t.Errorf("workers gauge %v, want 1", got)
	}
	if got := svc.gov.budgetGauge.Value(); got != 200 {
		t.Errorf("budget gauge %v, want 200", got)
	}
}

// TestGovernorShedTriggersGrowth pins the other saturation signal: a shed
// since the last tick grows the pool even when the queue is empty by the
// time the governor looks.
func TestGovernorShedTriggersGrowth(t *testing.T) {
	gate := newGateSolver("gate")
	svc := governorService(t, gate)
	svc.shedRequests.Inc() // a shed happened between ticks
	svc.governorTick()
	if got := svc.adm.capacityNow(); got != 2 {
		t.Errorf("capacity after shed tick %d, want 2", got)
	}
	// Same shed count next tick: no new sheds, queue empty, pool idle —
	// the governor relaxes instead.
	svc.governorTick()
	if got := svc.adm.capacityNow(); got != 1 {
		t.Errorf("capacity after relax tick %d, want 1", got)
	}
}

// TestGovernorDisabledLeavesServiceFixed: with no governor configured the
// tick is inert and the effective budget equals the configured one.
func TestGovernorDisabledKeepsConfiguredShape(t *testing.T) {
	gate := newGateSolver("gate")
	reg := NewRegistry()
	if err := reg.Register(gate); err != nil {
		t.Fatal(err)
	}
	svc := NewService(Config{Registry: reg, Workers: 2, Budget: Budget{MaxVertices: 100}})
	snap := svc.gov.snapshot(svc)
	if snap.Enabled {
		t.Error("governor reports enabled without configuration")
	}
	if snap.EffectiveWorkers != 2 || snap.EffectiveMaxVertices != 100 {
		t.Errorf("snapshot %+v, want the configured 2 workers / 100 vertices", snap)
	}
	if got := svc.fanout(); got != 2 {
		t.Errorf("fanout %d, want the configured workers", got)
	}
	svc.Close() // no-op without a loop
}

// TestGovernorLoopRunsAndCloses covers the real ticker path: an enabled
// governor under persistent queue pressure raises capacity on its own, and
// Close is idempotent.
func TestGovernorLoopRunsAndCloses(t *testing.T) {
	gate := newGateSolver("gate")
	reg := NewRegistry()
	if err := reg.Register(gate); err != nil {
		t.Fatal(err)
	}
	svc := NewService(Config{
		Registry: reg,
		Workers:  1,
		MaxQueue: 8,
		Governor: GovernorConfig{
			Enabled:    true,
			Interval:   2 * time.Millisecond,
			MaxWorkers: 2,
			TargetWait: time.Nanosecond,
		},
	})
	prob := figure5Problem(t, core.DefaultParams())
	svc.ema.observe("gate", time.Second)
	done := occupy(t, svc, gate, prob, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := svc.Solve(context.Background(), Request{Solver: "gate", Problem: prob}); err != nil {
			t.Errorf("queued solve failed: %v", err)
		}
	}()
	waitQueueDepth(t, svc, 1)

	deadline := time.Now().Add(10 * time.Second)
	for svc.adm.capacityNow() != 2 {
		if time.Now().After(deadline) {
			t.Fatal("governor loop never raised capacity")
		}
		time.Sleep(time.Millisecond)
	}
	select {
	case <-gate.started: // the queued solve was admitted by the resize
	case <-time.After(5 * time.Second):
		t.Fatal("resize never admitted the queued solve")
	}
	done()
	wg.Wait()
	svc.Close()
	svc.Close() // idempotent
}

// TestAdmitterResize pins the resize semantics directly: growing grants
// queued waiters, shrinking lets in-flight work drain without handoff until
// usage falls under the new capacity.
func TestAdmitterResize(t *testing.T) {
	gate := newGateSolver("gate")
	svc := gateService(t, gate, nil, 2, 8)
	prob := figure5Problem(t, core.DefaultParams())
	done := occupy(t, svc, gate, prob, 2)

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := svc.Solve(context.Background(), Request{Solver: "gate", Problem: prob}); err != nil {
				t.Errorf("queued solve failed: %v", err)
			}
		}()
	}
	waitQueueDepth(t, svc, 2)
	if got := svc.adm.busy(); got != 2 {
		t.Fatalf("busy %d, want 2", got)
	}

	// Growing to 4 grants both waiters immediately.
	svc.adm.resize(4)
	for i := 0; i < 2; i++ {
		select {
		case <-gate.started:
		case <-time.After(5 * time.Second):
			t.Fatal("resize never granted a queued waiter")
		}
	}
	waitQueueDepth(t, svc, 0)
	if got := svc.adm.busy(); got != 4 {
		t.Fatalf("busy after grow %d, want 4", got)
	}

	// Shrinking below usage retires slots as they free: capacity reads 1
	// at once, busy drains to it only when the work finishes.
	svc.adm.resize(1)
	if got := svc.adm.capacityNow(); got != 1 {
		t.Fatalf("capacity after shrink %d, want 1", got)
	}
	done()
	wg.Wait()
	if got := svc.adm.busy(); got != 0 {
		t.Errorf("busy after drain %d, want 0", got)
	}
	// The pool still serves at the shrunken capacity.
	if _, err := svc.Solve(context.Background(), Request{Solver: "gate", Problem: prob}); err != nil {
		t.Fatalf("post-shrink solve failed: %v", err)
	}
}
