package solve

import (
	"sort"
	"sync"
	"time"

	"analogflow/internal/metrics"
)

// emaAlpha weights the newest latency observation in the admission
// estimator; 0.2 smooths over ~5 recent solves, enough to ride out one
// outlier without going stale under shifting problem sizes.
const emaAlpha = 0.2

// latencyWindow is the time constant of the per-backend dynamic-window EMA:
// a burst of samples in one instant barely moves it, a sample after a long
// gap nearly replaces it — the right shape for the governor, which reads it
// under irregular traffic.
const latencyWindow = 30 * time.Second

// smaWindow is the sample count of the per-backend simple moving average.
const smaWindow = 32

// durationBuckets are the latency histogram bounds in seconds: 1 ms to
// ~65 s, doubling — wide enough to hold both microsecond behavioral solves
// and multi-second large-grid shards in one family.
var durationBuckets = metrics.ExponentialBuckets(0.001, 2, 17)

// backendWindow is one backend's latency view: the fixed-alpha EMA the
// admission queue multiplies by queue depth (PR 6's estimator, now on the
// shared metrics types), a time-decayed window EMA and an SMA for smoother
// operator-facing readings, and a histogram for p50/p99.
type backendWindow struct {
	ema  *metrics.EMA        // milliseconds; admission estimate
	win  *metrics.DynamicEMA // milliseconds; governor/operator reading
	sma  *metrics.SMA        // milliseconds
	hist *metrics.Histogram  // seconds
}

// backendWindows tracks latency per backend and op (solve/update), creating
// each backend's instruments — including its exposition series — on first
// observation.
type backendWindows struct {
	mu  sync.Mutex
	m   map[string]*backendWindow
	reg *metrics.Registry
	ops map[[2]string]*metrics.Counter // (backend, op) -> completions
}

func newBackendWindows(reg *metrics.Registry) *backendWindows {
	return &backendWindows{
		m:   make(map[string]*backendWindow),
		reg: reg,
		ops: make(map[[2]string]*metrics.Counter),
	}
}

// window returns (creating if needed) the backend's instrument set.
func (b *backendWindows) window(solver string) *backendWindow {
	b.mu.Lock()
	defer b.mu.Unlock()
	w, ok := b.m[solver]
	if !ok {
		w = &backendWindow{
			ema: metrics.NewEMA(emaAlpha),
			win: metrics.NewDynamicEMA(latencyWindow),
			sma: metrics.NewSMA(smaWindow),
			hist: b.reg.Histogram("analogflow_request_duration_seconds",
				"Wall time of completed solve/update requests by backend.",
				metrics.Labels{"backend": solver}, durationBuckets),
		}
		ema := w.ema
		b.reg.GaugeFunc("analogflow_backend_latency_ema_milliseconds",
			"Fixed-alpha latency EMA per backend (the admission estimator).",
			metrics.Labels{"backend": solver}, ema.Value)
		win := w.win
		b.reg.GaugeFunc("analogflow_backend_latency_window_milliseconds",
			"Dynamic-window latency EMA per backend.",
			metrics.Labels{"backend": solver}, win.Value)
		b.m[solver] = w
	}
	return w
}

// observe folds one completed solve's wall time into the backend's windows.
func (b *backendWindows) observe(solver string, d time.Duration) {
	b.observeOp(solver, "solve", d)
}

// observeOp folds one completed request of the given op.
func (b *backendWindows) observeOp(solver, op string, d time.Duration) {
	if d <= 0 {
		return
	}
	w := b.window(solver)
	ms := float64(d) / float64(time.Millisecond)
	w.ema.Observe(ms)
	w.win.Observe(ms)
	w.sma.Observe(ms)
	w.hist.Observe(d.Seconds())

	key := [2]string{solver, op}
	b.mu.Lock()
	c, ok := b.ops[key]
	if !ok {
		c = b.reg.Counter("analogflow_backend_requests_total",
			"Completed requests per backend and op.",
			metrics.Labels{"backend": solver, "op": op})
		b.ops[key] = c
	}
	b.mu.Unlock()
	c.Inc()
}

// estimate returns the backend's admission estimate, or 0 when nothing has
// been observed yet (which disables deadline shedding for that backend).
func (b *backendWindows) estimate(solver string) time.Duration {
	b.mu.Lock()
	w := b.m[solver]
	b.mu.Unlock()
	if w == nil {
		return 0
	}
	return time.Duration(w.ema.Value() * float64(time.Millisecond))
}

// maxEstimate returns the largest per-backend admission estimate — the
// conservative latency the governor multiplies by queue depth.
func (b *backendWindows) maxEstimate() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	var max float64
	for _, w := range b.m {
		if v := w.ema.Value(); v > max {
			max = v
		}
	}
	return time.Duration(max * float64(time.Millisecond))
}

// snapshot returns the fixed-alpha EMAs in milliseconds (the legacy
// Stats.BackendEMAms shape).
func (b *backendWindows) snapshot() map[string]float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.m) == 0 {
		return nil
	}
	out := make(map[string]float64, len(b.m))
	for k, w := range b.m {
		out[k] = w.ema.Value()
	}
	return out
}

// BackendWindow is the full per-backend latency snapshot Stats exposes.
type BackendWindow struct {
	// EMAms is the fixed-alpha EMA (the admission estimator), WindowEMAms
	// the dynamic-window EMA, SMAms the simple moving average over the last
	// 32 requests — all in milliseconds of wall time.
	EMAms       float64 `json:"ema_ms"`
	WindowEMAms float64 `json:"window_ema_ms"`
	SMAms       float64 `json:"sma_ms"`
	// P50ms / P99ms are histogram-estimated latency quantiles.
	P50ms float64 `json:"p50_ms"`
	P99ms float64 `json:"p99_ms"`
	// Observations counts completed requests folded into the windows.
	Observations int64 `json:"observations"`
}

// windows returns the full per-backend snapshot.
func (b *backendWindows) windows() map[string]BackendWindow {
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.m) == 0 {
		return nil
	}
	out := make(map[string]BackendWindow, len(b.m))
	for k, w := range b.m {
		out[k] = BackendWindow{
			EMAms:        w.ema.Value(),
			WindowEMAms:  w.win.Value(),
			SMAms:        w.sma.Value(),
			P50ms:        w.hist.Quantile(0.5) * 1000,
			P99ms:        w.hist.Quantile(0.99) * 1000,
			Observations: w.ema.Count(),
		}
	}
	return out
}

// backends returns the observed backend names, sorted (for stable output).
func (b *backendWindows) backends() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	names := make([]string, 0, len(b.m))
	for k := range b.m {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// ratio is hits/(hits+misses), or 0 when nothing has been counted.
func ratio(hits, misses int64) float64 {
	if hits+misses == 0 {
		return 0
	}
	return float64(hits) / float64(hits+misses)
}
