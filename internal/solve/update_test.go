package solve

import (
	"context"
	"errors"
	"math"
	"reflect"
	"sync"
	"testing"

	"analogflow/internal/core"
	"analogflow/internal/graph"
	"analogflow/internal/maxflow"
	"analogflow/internal/rmat"
)

// chainUpdates is a deterministic sequence of capacity-only updates for a
// graph: step k bumps a few edges up and halves a few others, cycling so the
// drain path (decrease below carried flow) is exercised.
func chainUpdates(g *graph.Graph, steps int) []graph.CapacityUpdate {
	out := make([]graph.CapacityUpdate, 0, steps)
	ne := g.NumEdges()
	caps := make([]float64, ne)
	for i := 0; i < ne; i++ {
		caps[i] = g.Edge(i).Capacity
	}
	for k := 0; k < steps; k++ {
		var u graph.CapacityUpdate
		for j := 0; j < 4; j++ {
			e := (k*7 + j*3) % ne
			dup := false
			for _, seen := range u.Edges {
				if seen == e {
					dup = true
				}
			}
			if dup {
				continue
			}
			var c float64
			if (k+j)%2 == 0 {
				c = caps[e] + float64(5+k)
			} else {
				c = math.Max(1, math.Floor(caps[e]/2))
			}
			u.Edges = append(u.Edges, e)
			u.Capacities = append(u.Capacities, c)
			caps[e] = c
		}
		out = append(out, u)
	}
	return out
}

func TestProblemWithUpdate(t *testing.T) {
	base, err := NewProblem(graph.PaperFigure5())
	if err != nil {
		t.Fatal(err)
	}
	upd := graph.CapacityUpdate{Edges: []int{0, 3}, Capacities: []float64{5, 2}}
	p2, err := base.WithUpdate(upd)
	if err != nil {
		t.Fatal(err)
	}
	// The base problem is untouched; the derived one carries the new values.
	if base.Graph().Edge(0).Capacity != 3 || p2.Graph().Edge(0).Capacity != 5 {
		t.Fatalf("update leaked into the base problem or did not apply")
	}
	// Chained fingerprints: deterministic, distinct from the base, distinct
	// from a content-equal from-scratch problem (warm chains never alias
	// cold cache entries).
	p2b, err := base.WithUpdate(upd)
	if err != nil {
		t.Fatal(err)
	}
	if p2.Fingerprint() != p2b.Fingerprint() {
		t.Errorf("identical chains produced different fingerprints")
	}
	if p2.Fingerprint() == base.Fingerprint() {
		t.Errorf("update did not change the fingerprint")
	}
	fresh, err := NewProblem(p2.Graph().Clone())
	if err != nil {
		t.Fatal(err)
	}
	if p2.Fingerprint() == fresh.Fingerprint() {
		t.Errorf("chained fingerprint aliases the content fingerprint")
	}

	// Prune reuse: positivity unchanged ⇒ the core shares the base's edge
	// mapping (same backing slice, not just equal values).
	_, basePr := base.STCore()
	_, pr2 := p2.STCore()
	if basePr == nil || pr2 == nil {
		t.Fatal("expected prune results on both problems")
	}
	if len(basePr.EdgeMap) > 0 && &basePr.EdgeMap[0] != &pr2.EdgeMap[0] {
		t.Errorf("prune mapping was recomputed despite unchanged positivity")
	}
	// Zeroing an edge forces a fresh prune.
	p3, err := base.WithUpdate(graph.CapacityUpdate{Edges: []int{2}, Capacities: []float64{0}})
	if err != nil {
		t.Fatal(err)
	}
	core3, pr3 := p3.STCore()
	if pr3 != nil && len(pr3.EdgeMap) == len(basePr.EdgeMap) && &pr3.EdgeMap[0] == &basePr.EdgeMap[0] {
		t.Errorf("positivity change still reused the base prune mapping")
	}
	if core3.NumEdges() >= base.Graph().NumEdges() {
		t.Errorf("zeroing edge 2 should shrink the core: %d edges", core3.NumEdges())
	}

	// Validation failures surface as typed errors.
	var verr *ValidationError
	if _, err := base.WithUpdate(graph.CapacityUpdate{Edges: []int{99}, Capacities: []float64{1}}); !errors.As(err, &verr) {
		t.Errorf("bad edge index: want *ValidationError, got %v", err)
	}
	if _, err := base.WithUpdate(graph.CapacityUpdate{Edges: []int{0}, Capacities: []float64{-1}}); !errors.As(err, &verr) {
		t.Errorf("negative capacity: want *ValidationError, got %v", err)
	}
}

// TestServiceUpdateWarmMatchesCold is the warm-vs-cold contract per backend,
// over a chain of updates on an integral R-MAT instance:
//
//   - every backend: warm FlowValue and ExactValue equal the cold solve of
//     the mutated problem exactly (integral capacities make the reference
//     and the exact optima float-exact);
//   - behavioral: the full normalized report is bit-identical (the model is
//     a deterministic function of the prepared instance and the seed);
//   - CPU backends: the warm edge assignment is a verified optimal flow of
//     the mutated graph (it may be a different optimum than the cold one).
func TestServiceUpdateWarmMatchesCold(t *testing.T) {
	g := rmat.MustGenerate(rmat.SparseParams(48, 11))
	updates := chainUpdates(g, 6)
	for _, backend := range []string{"behavioral", "dinic", "edmonds-karp", "push-relabel"} {
		backend := backend
		t.Run(backend, func(t *testing.T) {
			svc := NewService(Config{Workers: 2})
			params := core.DefaultParams()
			prob, err := NewProblem(g, WithParams(params))
			if err != nil {
				t.Fatal(err)
			}
			if _, err := svc.Solve(context.Background(), Request{Solver: backend, Problem: prob}); err != nil {
				t.Fatal(err)
			}
			sawWarm := false
			for step, u := range updates {
				res, err := svc.Update(context.Background(), UpdateRequest{Solver: backend, Problem: prob, Update: u})
				if err != nil {
					t.Fatalf("step %d: %v", step, err)
				}
				prob = res.Problem
				sawWarm = sawWarm || res.Warm

				coldProb, err := NewProblem(prob.Graph().Clone(), WithParams(params))
				if err != nil {
					t.Fatal(err)
				}
				cold, err := DefaultRegistry().Solve(context.Background(), backend, coldProb)
				if err != nil {
					t.Fatalf("step %d cold: %v", step, err)
				}
				warm := res.Report
				if warm.FlowValue != cold.FlowValue {
					t.Fatalf("step %d: warm flow %.12g, cold flow %.12g", step, warm.FlowValue, cold.FlowValue)
				}
				if warm.ExactValue != cold.ExactValue {
					t.Fatalf("step %d: warm exact %.12g, cold exact %.12g", step, warm.ExactValue, cold.ExactValue)
				}
				switch backend {
				case "behavioral":
					if !reflect.DeepEqual(warm.Normalized(), cold.Normalized()) {
						t.Fatalf("step %d: behavioral reports differ:\nwarm: %+v\ncold: %+v", step, warm.Normalized(), cold.Normalized())
					}
				default:
					f := graph.NewFlow(prob.Graph())
					copy(f.Edge, warm.EdgeFlows)
					f.RecomputeValue(prob.Graph())
					if err := maxflow.VerifyOptimal(prob.Graph(), f, 1e-6); err != nil {
						t.Fatalf("step %d: warm flow is not a verified optimum: %v", step, err)
					}
				}
			}
			if !sawWarm {
				t.Errorf("no update of the chain was absorbed warm")
			}
			if st := svc.Stats(); st.Updates != int64(len(updates)) || st.UpdateWarmHits == 0 {
				t.Errorf("update counters: %+v", st)
			}
		})
	}
}

// TestServiceUpdateCircuitWarm is the circuit-mode contract on the worked
// example: warm results match a cold updatable build to solver tolerance.
func TestServiceUpdateCircuitWarm(t *testing.T) {
	params := core.DefaultParams()
	params.Variation = core.DefaultCleanVariation()
	svc := NewService(Config{Workers: 1})
	prob, err := NewProblem(graph.PaperFigure5(), WithParams(params))
	if err != nil {
		t.Fatal(err)
	}
	updates := []graph.CapacityUpdate{
		{Edges: []int{1, 4}, Capacities: []float64{3, 3}},
		{Edges: []int{0}, Capacities: []float64{4}},
		{Edges: []int{1, 4}, Capacities: []float64{2, 2}},
	}
	for step, u := range updates {
		res, err := svc.Update(context.Background(), UpdateRequest{Solver: "circuit", Problem: prob, Update: u})
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		prob = res.Problem

		reg := DefaultRegistry()
		coldProb, err := NewProblem(prob.Graph().Clone(), WithParams(params))
		if err != nil {
			t.Fatal(err)
		}
		us := mustUpdatableSolver(t, reg, "circuit")
		coldInst, err := us.NewUpdatableInstance(coldProb)
		if err != nil {
			t.Fatal(err)
		}
		cold, err := coldInst.Solve(context.Background())
		if err != nil {
			t.Fatalf("step %d cold: %v", step, err)
		}
		warm := res.Report
		tol := 1e-6 * math.Max(1, math.Abs(cold.FlowValue))
		if math.Abs(warm.FlowValue-cold.FlowValue) > tol {
			t.Fatalf("step %d: warm flow %.9f, cold flow %.9f", step, warm.FlowValue, cold.FlowValue)
		}
		if warm.ExactValue != cold.ExactValue {
			t.Fatalf("step %d: warm exact %.9f, cold exact %.9f", step, warm.ExactValue, cold.ExactValue)
		}
		for i := range warm.EdgeFlows {
			if math.Abs(warm.EdgeFlows[i]-cold.EdgeFlows[i]) > 1e-6 {
				t.Fatalf("step %d edge %d: warm %.9f, cold %.9f", step, i, warm.EdgeFlows[i], cold.EdgeFlows[i])
			}
		}
	}
}

func mustUpdatableSolver(t *testing.T, reg *Registry, name string) UpdatableSolver {
	t.Helper()
	sol, err := reg.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	us, ok := sol.(UpdatableSolver)
	if !ok {
		t.Fatalf("%s is not an UpdatableSolver", name)
	}
	return us
}

// TestServiceUpdateEngineStatsPin is the acceptance pin of the tentpole: once
// a circuit update chain is warm, N further capacity-only updates add
// refactorizations but zero symbolic factorizations — the frozen sparsity
// pattern and cached symbolic LU survive every clamp re-stamp.
func TestServiceUpdateEngineStatsPin(t *testing.T) {
	params := core.DefaultParams()
	params.Variation = core.DefaultCleanVariation()
	svc := NewService(Config{Workers: 1})
	prob, err := NewProblem(graph.PaperFigure5(), WithParams(params))
	if err != nil {
		t.Fatal(err)
	}
	// Step 0 starts the chain (builds the updatable instance cold).
	res, err := svc.Update(context.Background(), UpdateRequest{
		Solver: "circuit", Problem: prob,
		Update: graph.CapacityUpdate{Edges: []int{0}, Capacities: []float64{4}},
	})
	if err != nil {
		t.Fatal(err)
	}
	prob = res.Problem
	sess := cachedSession(t, svc, prob, "circuit")
	base, ok := sess.EngineStats()
	if !ok {
		t.Fatal("no engine after the first circuit update")
	}

	const n = 5
	for k := 0; k < n; k++ {
		c := float64(3 + (k % 3))
		res, err = svc.Update(context.Background(), UpdateRequest{
			Solver: "circuit", Problem: prob,
			Update: graph.CapacityUpdate{Edges: []int{0, 1}, Capacities: []float64{c, c}},
		})
		if err != nil {
			t.Fatalf("update %d: %v", k, err)
		}
		if !res.Warm {
			t.Fatalf("update %d was not absorbed warm", k)
		}
		prob = res.Problem
	}
	after, ok := cachedSession(t, svc, prob, "circuit").EngineStats()
	if !ok {
		t.Fatal("warm chain lost its engine")
	}
	if after.Factorizations != base.Factorizations {
		t.Errorf("%d updates cost %d new symbolic factorizations (%d -> %d)",
			n, after.Factorizations-base.Factorizations, base.Factorizations, after.Factorizations)
	}
	if after.Refactorizations <= base.Refactorizations {
		t.Errorf("updates did not run on the refactor path: %d -> %d",
			base.Refactorizations, after.Refactorizations)
	}
}

// TestServiceUpdateSerialVsConcurrent pins determinism across concurrency:
// independent update chains produce identical reports whether the chains run
// one after another or all at once.
func TestServiceUpdateSerialVsConcurrent(t *testing.T) {
	type chain struct {
		backend string
		g       *graph.Graph
		updates []graph.CapacityUpdate
	}
	var chains []chain
	for i, backend := range []string{"dinic", "behavioral", "push-relabel", "edmonds-karp"} {
		g := rmat.MustGenerate(rmat.SparseParams(32, int64(3+i)))
		chains = append(chains, chain{backend: backend, g: g, updates: chainUpdates(g, 4)})
	}
	runChain := func(svc *Service, c chain) []Report {
		prob, err := NewProblem(c.g, WithParams(core.DefaultParams()))
		if err != nil {
			t.Error(err)
			return nil
		}
		var reports []Report
		for _, u := range c.updates {
			res, err := svc.Update(context.Background(), UpdateRequest{Solver: c.backend, Problem: prob, Update: u})
			if err != nil {
				t.Error(err)
				return nil
			}
			prob = res.Problem
			reports = append(reports, res.Report.Normalized())
		}
		return reports
	}

	serialSvc := NewService(Config{Workers: 1})
	serial := make([][]Report, len(chains))
	for i, c := range chains {
		serial[i] = runChain(serialSvc, c)
	}

	concSvc := NewService(Config{Workers: 8})
	concurrent := make([][]Report, len(chains))
	var wg sync.WaitGroup
	for i, c := range chains {
		i, c := i, c
		wg.Add(1)
		go func() {
			defer wg.Done()
			concurrent[i] = runChain(concSvc, c)
		}()
	}
	wg.Wait()

	for i := range chains {
		if !reflect.DeepEqual(serial[i], concurrent[i]) {
			t.Errorf("chain %d (%s): serial and concurrent reports differ", i, chains[i].backend)
		}
	}
}

// TestServiceUpdateStructuralFallback: zeroing an edge changes the s-t core,
// so the warm state must be bypassed — the update still succeeds, cold.
func TestServiceUpdateStructuralFallback(t *testing.T) {
	svc := NewService(Config{Workers: 1})
	prob, err := NewProblem(graph.PaperFigure5(), WithParams(core.DefaultParams()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Solve(context.Background(), Request{Solver: "dinic", Problem: prob}); err != nil {
		t.Fatal(err)
	}
	res, err := svc.Update(context.Background(), UpdateRequest{
		Solver: "dinic", Problem: prob,
		Update: graph.CapacityUpdate{Edges: []int{2}, Capacities: []float64{0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Warm {
		t.Errorf("structural change was reported as a warm absorption")
	}
	if res.Report.FlowValue != 1 { // only the x2/x4 path remains, capacity 1
		t.Errorf("flow after zeroing x3: %g, want 1", res.Report.FlowValue)
	}
	// The chain keeps working from the structurally changed problem.
	res2, err := svc.Update(context.Background(), UpdateRequest{
		Solver: "dinic", Problem: res.Problem,
		Update: graph.CapacityUpdate{Edges: []int{3}, Capacities: []float64{2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Warm {
		t.Errorf("follow-up capacity-only update did not go warm")
	}
	if res2.Report.FlowValue != 2 {
		t.Errorf("flow after widening x4: %g, want 2", res2.Report.FlowValue)
	}
}

// TestServiceSolveUpdateRaceKeepsBindings pins the claim race: a Solve of
// the base problem that fetched the warm instance just before an Update
// claimed and rebound it must never return the updated problem's flow value.
// The racy interleaving (cache fetch, then rebind, then instance solve) is
// reconstructed deterministically by re-keying the rebound instance under
// the base fingerprint — exactly the view the raced goroutine holds — and
// the post-solve binding check must detect it and re-solve fresh.
func TestServiceSolveUpdateRaceKeepsBindings(t *testing.T) {
	params := core.DefaultParams()
	upd := graph.CapacityUpdate{Edges: []int{1, 3}, Capacities: []float64{3, 3}} // base flow 2 -> updated flow 3
	for _, backend := range []string{"dinic", "behavioral"} {
		svc := NewService(Config{Workers: 4})
		base := figure5Problem(t, params)
		baseRep, err := svc.Solve(context.Background(), Request{Solver: backend, Problem: base})
		if err != nil {
			t.Fatal(err)
		}
		res, err := svc.Update(context.Background(), UpdateRequest{Solver: backend, Problem: base, Update: upd})
		if err != nil {
			t.Fatal(err)
		}
		// Re-key the rebound instance under the base fingerprint: the state a
		// goroutine that fetched the entry before the claim deleted it sees.
		baseKey := base.Fingerprint() + "|" + backend
		targetKey := res.Problem.Fingerprint() + "|" + backend
		svc.mu.Lock()
		svc.cache[baseKey] = svc.cache[targetKey]
		svc.mu.Unlock()

		rep, err := svc.Solve(context.Background(), Request{Solver: backend, Problem: base})
		if err != nil {
			t.Fatal(err)
		}
		if rep.FlowValue != baseRep.FlowValue {
			t.Errorf("%s: Solve(base) through the rebound instance returned flow %g, want the base problem's %g",
				backend, rep.FlowValue, baseRep.FlowValue)
		}
	}

	// And a short nondeterministic hammer over the real interleaving.
	for round := 0; round < 10; round++ {
		svc := NewService(Config{Workers: 4})
		base := figure5Problem(t, params)
		if _, err := svc.Solve(context.Background(), Request{Solver: "dinic", Problem: base}); err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		wg.Add(2)
		var solveFlow float64
		var solveErr error
		go func() {
			defer wg.Done()
			rep, err := svc.Solve(context.Background(), Request{Solver: "dinic", Problem: base})
			if err != nil {
				solveErr = err
				return
			}
			solveFlow = rep.FlowValue
		}()
		go func() {
			defer wg.Done()
			if _, err := svc.Update(context.Background(), UpdateRequest{Solver: "dinic", Problem: base, Update: upd}); err != nil {
				t.Errorf("round %d: update: %v", round, err)
			}
		}()
		wg.Wait()
		if solveErr != nil {
			t.Fatalf("round %d: solve: %v", round, solveErr)
		}
		if solveFlow != 2 {
			t.Fatalf("round %d: Solve(base) returned the updated problem's flow %g, want 2", round, solveFlow)
		}
	}
}

// gridGraph builds an n x n grid with right/down edges and varied caps — an
// instance on which push-relabel performs far more than 4096 discharges, so
// its periodic cancellation check fires mid-run.
func gridGraph(n int) *graph.Graph {
	g := graph.MustNew(n*n, 0, n*n-1)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v := i*n + j
			c := float64((i*31+j*17)%97 + 3)
			if j+1 < n {
				g.MustAddEdge(v, v+1, c)
			}
			if i+1 < n {
				g.MustAddEdge(v, v+n, c+11)
			}
		}
	}
	return g
}

// TestCPUInstanceDropsPoisonedStateAfterAbort pins the cancellation-safety
// fix: a push-relabel solve aborted mid-discharge leaves a preflow (not a
// feasible flow) in the residual, so the warm instance must drop that state
// — the next solve has to produce the exact cold optimum, not a silently
// corrupted value re-augmented from the preflow.
func TestCPUInstanceDropsPoisonedStateAfterAbort(t *testing.T) {
	p := mustProblem(t, gridGraph(90), core.DefaultParams())
	us := mustUpdatableSolver(t, DefaultRegistry(), "push-relabel")
	inst, err := us.NewUpdatableInstance(p)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := inst.Solve(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled mid-run solve did not fail with the context error (got %v); grow the instance so the discharge-loop check fires", err)
	}
	rep, err := inst.Solve(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	cold, err := maxflow.Solve(p.Graph(), maxflow.PushRelabel)
	if err != nil {
		t.Fatal(err)
	}
	if rep.FlowValue != cold.Value {
		t.Fatalf("post-abort warm solve returned %g, cold optimum is %g (poisoned preflow survived)", rep.FlowValue, cold.Value)
	}
	f := graph.NewFlow(p.Graph())
	copy(f.Edge, rep.EdgeFlows)
	f.RecomputeValue(p.Graph())
	if err := maxflow.VerifyOptimal(p.Graph(), f, 1e-6); err != nil {
		t.Fatalf("post-abort warm flow is not a verified optimum: %v", err)
	}
}

// TestServiceUpdateNeverClaimsWarmWithoutState: claiming a cached instance
// that holds no warm residual (never solved, or state dropped after an
// abort) must be reported as a cold fallback, not a warm hit.
func TestServiceUpdateNeverClaimsWarmWithoutState(t *testing.T) {
	svc := NewService(Config{Workers: 1})
	prob := figure5Problem(t, core.DefaultParams())
	sol, err := svc.Registry().Get("dinic")
	if err != nil {
		t.Fatal(err)
	}
	// Cache an instance without ever solving it (the state an Update sees
	// when it claims the entry before the first Solve built the network).
	if _, err := svc.instance(sol.(Warmable), prob, true); err != nil {
		t.Fatal(err)
	}
	res, err := svc.Update(context.Background(), UpdateRequest{
		Solver: "dinic", Problem: prob,
		Update: graph.CapacityUpdate{Edges: []int{0}, Capacities: []float64{5}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Warm {
		t.Error("update of a never-solved instance was reported warm")
	}
	if st := svc.Stats(); st.UpdateWarmHits != 0 {
		t.Errorf("update_warm_hits = %d for a cold from-scratch step", st.UpdateWarmHits)
	}
	if res.Report.FlowValue != 2 {
		t.Errorf("flow %g, want 2", res.Report.FlowValue)
	}
}

// TestServiceUpdateUnwarmableBackends: lp and decompose have no warm state;
// Update must still produce a correct cold solve of the mutated problem.
func TestServiceUpdateUnwarmableBackends(t *testing.T) {
	for _, backend := range []string{"lp", "decompose"} {
		svc := NewService(Config{Workers: 1})
		prob, err := NewProblem(graph.PaperFigure5(), WithParams(core.DefaultParams()))
		if err != nil {
			t.Fatal(err)
		}
		res, err := svc.Update(context.Background(), UpdateRequest{
			Solver: backend, Problem: prob,
			Update: graph.CapacityUpdate{Edges: []int{3}, Capacities: []float64{2}},
		})
		if err != nil {
			t.Fatalf("%s: %v", backend, err)
		}
		if res.Warm {
			t.Errorf("%s claims warm state", backend)
		}
		if res.Report.ExactValue != 3 {
			t.Errorf("%s: exact value %g, want 3", backend, res.Report.ExactValue)
		}
	}
}
