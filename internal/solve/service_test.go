package solve

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"analogflow/internal/core"
	"analogflow/internal/graph"
	"analogflow/internal/rmat"
)

// circuitParams returns a parameter set under which the MNA circuit solve of
// the Figure 5 example converges quickly and deterministically.
func circuitParams() core.Params {
	p := core.DefaultParams()
	p.Variation = core.DefaultCleanVariation()
	return p
}

func figure5Problem(t *testing.T, params core.Params) *Problem {
	t.Helper()
	p, err := NewProblem(graph.PaperFigure5(), WithParams(params))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// cachedSession digs the warm core.Session out of the service cache for
// engine-level assertions.
func cachedSession(t *testing.T, s *Service, p *Problem, solver string) *core.Session {
	t.Helper()
	s.mu.Lock()
	e, ok := s.cache[p.Fingerprint()+"|"+solver]
	s.mu.Unlock()
	if !ok {
		t.Fatalf("no cached instance for %s", solver)
	}
	inst, ok := e.inst.(*analogInstance)
	if !ok {
		t.Fatalf("cached instance has type %T", e.inst)
	}
	return inst.session()
}

// TestServiceWarmEngineReuse is the acceptance criterion for the instance
// cache: N concurrent solves of the same problem fingerprint must share one
// cached engine, so the symbolic factorization count stays at the
// single-solve level while the refactorization count grows.
func TestServiceWarmEngineReuse(t *testing.T) {
	params := circuitParams()

	// Baseline: one solve on a fresh service, to learn the single-solve
	// symbolic factorization count.
	base := NewService(Config{Workers: 1})
	baseProb := figure5Problem(t, params)
	if _, err := base.Solve(context.Background(), Request{Solver: "circuit", Problem: baseProb}); err != nil {
		t.Fatal(err)
	}
	baseStats, ok := cachedSession(t, base, baseProb, "circuit").EngineStats()
	if !ok {
		t.Fatal("baseline session has no engine")
	}
	if baseStats.Factorizations == 0 {
		t.Fatal("baseline solve ran no factorization")
	}

	// N concurrent solves of N distinct Problem values with identical
	// content: all must land on one cached instance.
	const n = 8
	svc := NewService(Config{Workers: 4})
	reqs := make([]Request, n)
	for i := range reqs {
		reqs[i] = Request{Solver: "circuit", Problem: figure5Problem(t, params)}
	}
	results := svc.SolveBatch(context.Background(), reqs)
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("batch item %d failed: %v", r.Index, r.Err)
		}
	}
	// Every report must be identical (modulo wall time): same instance, and
	// each solve re-seeds its stochastic models.
	first := results[0].Report.Normalized()
	for _, r := range results[1:] {
		if !reflect.DeepEqual(first, r.Report.Normalized()) {
			t.Fatalf("concurrent solves diverged:\n%+v\nvs\n%+v", first, r.Report.Normalized())
		}
	}

	sess := cachedSession(t, svc, reqs[0].Problem, "circuit")
	if got := sess.Solves(); got != n {
		t.Fatalf("cached session ran %d solves, want %d (cache not shared)", got, n)
	}
	stats, ok := sess.EngineStats()
	if !ok {
		t.Fatal("cached session has no engine")
	}
	if stats.Factorizations != baseStats.Factorizations {
		t.Errorf("symbolic factorizations grew with repeats: %d solves cost %d, single solve costs %d",
			n, stats.Factorizations, baseStats.Factorizations)
	}
	if stats.Refactorizations <= baseStats.Refactorizations {
		t.Errorf("repeated solves did not hit the refactor-only path: %d refactorizations after %d solves (baseline %d)",
			stats.Refactorizations, n, baseStats.Refactorizations)
	}

	st := svc.Stats()
	if st.CacheMisses != 1 || st.CacheHits != n-1 {
		t.Errorf("cache counters: %d misses / %d hits, want 1 / %d", st.CacheMisses, st.CacheHits, n-1)
	}
	if st.Requests != n || st.Completed != n || st.Errors != 0 {
		t.Errorf("request counters: %+v", st)
	}
}

// sleeperSolver blocks until its context is cancelled (or a failsafe timer
// fires); it stands in for a long-running solve in the cancellation test.
type sleeperSolver struct{ started chan struct{} }

func (s *sleeperSolver) Name() string     { return "sleeper" }
func (s *sleeperSolver) Describe() string { return "test backend that blocks until cancelled" }

func (s *sleeperSolver) Solve(ctx context.Context, p *Problem) (*Report, error) {
	close(s.started)
	select {
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-time.After(30 * time.Second):
		return nil, errors.New("sleeper: failsafe timeout — cancellation never arrived")
	}
}

// TestServiceCancellationAbortsPromptly is the acceptance criterion for
// cancellation: cancelling the context of an in-flight solve must abort it
// promptly with the context's error.
func TestServiceCancellationAbortsPromptly(t *testing.T) {
	reg := DefaultRegistry()
	sleeper := &sleeperSolver{started: make(chan struct{})}
	if err := reg.Register(sleeper); err != nil {
		t.Fatal(err)
	}
	svc := NewService(Config{Registry: reg, Workers: 2})
	prob := figure5Problem(t, core.DefaultParams())

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := svc.Solve(ctx, Request{Solver: "sleeper", Problem: prob})
		done <- err
	}()
	<-sleeper.started
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("want context.Canceled, got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled solve did not return within 5s")
	}

	// A real backend with an already-expired deadline must also abort.
	expired, cancel2 := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel2()
	bigProb, err := NewProblem(rmat.MustGenerate(rmat.SparseParams(128, 11)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Solve(expired, Request{Solver: "push-relabel", Problem: bigProb}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want context.DeadlineExceeded, got %v", err)
	}
}

// TestServiceBatchSerialMatchesConcurrent pins the determinism contract of
// the batch engine: a serial service and a concurrent one must produce
// identical reports (modulo wall time) for a mixed-backend batch.
func TestServiceBatchSerialMatchesConcurrent(t *testing.T) {
	build := func() []Request {
		params := core.DefaultParams()
		g1 := graph.PaperFigure5()
		g2 := rmat.MustGenerate(rmat.SparseParams(48, 9))
		var reqs []Request
		for _, solver := range []string{"behavioral", "dinic", "edmonds-karp", "push-relabel", "lp", "decompose"} {
			for _, g := range []*graph.Graph{g1, g2} {
				p, err := NewProblem(g, WithParams(params))
				if err != nil {
					t.Fatal(err)
				}
				reqs = append(reqs, Request{Solver: solver, Problem: p})
			}
		}
		// Duplicate fingerprints exercise the cache under concurrency.
		p, err := NewProblem(graph.PaperFigure5(), WithParams(params))
		if err != nil {
			t.Fatal(err)
		}
		reqs = append(reqs, Request{Solver: "behavioral", Problem: p}, Request{Solver: "behavioral", Problem: p})
		return reqs
	}

	serial := NewService(Config{Workers: 1}).SolveBatch(context.Background(), build())
	concurrent := NewService(Config{Workers: 8}).SolveBatch(context.Background(), build())
	if len(serial) != len(concurrent) {
		t.Fatalf("result lengths differ: %d vs %d", len(serial), len(concurrent))
	}
	for i := range serial {
		if (serial[i].Err == nil) != (concurrent[i].Err == nil) {
			t.Fatalf("item %d: error mismatch: %v vs %v", i, serial[i].Err, concurrent[i].Err)
		}
		if serial[i].Err != nil {
			continue
		}
		a, b := serial[i].Report.Normalized(), concurrent[i].Report.Normalized()
		if !reflect.DeepEqual(a, b) {
			t.Errorf("item %d: reports differ:\nserial:     %+v\nconcurrent: %+v", i, a, b)
		}
	}
}

// gaugeSolver records the maximum number of concurrently executing solves.
type gaugeSolver struct {
	cur, max atomic.Int64
}

func (g *gaugeSolver) Name() string     { return "gauge" }
func (g *gaugeSolver) Describe() string { return "test backend that gauges concurrency" }

func (g *gaugeSolver) Solve(ctx context.Context, p *Problem) (*Report, error) {
	n := g.cur.Add(1)
	for {
		m := g.max.Load()
		if n <= m || g.max.CompareAndSwap(m, n) {
			break
		}
	}
	time.Sleep(5 * time.Millisecond)
	g.cur.Add(-1)
	return &Report{FlowValue: 1}, nil
}

// TestServiceWorkersBoundIsServiceWide pins that the Workers limit caps
// in-flight solves across concurrent batches, not per SolveBatch call.
func TestServiceWorkersBoundIsServiceWide(t *testing.T) {
	reg := NewRegistry()
	gauge := &gaugeSolver{}
	if err := reg.Register(gauge); err != nil {
		t.Fatal(err)
	}
	svc := NewService(Config{Registry: reg, Workers: 2})
	prob := figure5Problem(t, core.DefaultParams())
	var wg sync.WaitGroup
	for b := 0; b < 4; b++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			reqs := make([]Request, 5)
			for i := range reqs {
				reqs[i] = Request{Solver: "gauge", Problem: prob}
			}
			for _, r := range svc.SolveBatch(context.Background(), reqs) {
				if r.Err != nil {
					t.Errorf("item failed: %v", r.Err)
				}
			}
		}()
	}
	wg.Wait()
	if got := gauge.max.Load(); got > 2 {
		t.Errorf("observed %d concurrent solves across batches, want <= 2", got)
	}
}

func TestServiceUnknownSolver(t *testing.T) {
	svc := NewService(Config{})
	_, err := svc.Solve(context.Background(), Request{Solver: "no-such", Problem: figure5Problem(t, core.DefaultParams())})
	if !errors.Is(err, ErrUnknownSolver) {
		t.Fatalf("want ErrUnknownSolver, got %v", err)
	}
	if st := svc.Stats(); st.Errors != 1 {
		t.Errorf("error not counted: %+v", st)
	}
}

// gatedWarmSolver is a Warmable whose NewInstance blocks on a per-problem
// gate and counts construction calls, for the eviction-under-construction
// regression test.
type gatedWarmSolver struct {
	mu    sync.Mutex
	calls map[string]int
	gates map[string]chan struct{} // closed to release construction
	began map[string]chan struct{} // closed when construction starts
}

func newGatedWarmSolver() *gatedWarmSolver {
	return &gatedWarmSolver{
		calls: map[string]int{},
		gates: map[string]chan struct{}{},
		began: map[string]chan struct{}{},
	}
}

func (g *gatedWarmSolver) Name() string     { return "gated-warm" }
func (g *gatedWarmSolver) Describe() string { return "test backend with gated construction" }

func (g *gatedWarmSolver) arm(fp string) (began, gate chan struct{}) {
	g.mu.Lock()
	defer g.mu.Unlock()
	began, gate = make(chan struct{}), make(chan struct{})
	g.began[fp], g.gates[fp] = began, gate
	return began, gate
}

func (g *gatedWarmSolver) Solve(ctx context.Context, p *Problem) (*Report, error) {
	inst, err := g.NewInstance(p)
	if err != nil {
		return nil, err
	}
	return inst.Solve(ctx)
}

func (g *gatedWarmSolver) NewInstance(p *Problem) (Instance, error) {
	fp := p.Fingerprint()
	g.mu.Lock()
	g.calls[fp]++
	began, gate := g.began[fp], g.gates[fp]
	g.mu.Unlock()
	if began != nil {
		close(began)
		g.mu.Lock()
		g.began[fp] = nil
		g.mu.Unlock()
	}
	if gate != nil {
		<-gate
	}
	return fakeInstance{}, nil
}

type fakeInstance struct{}

func (fakeInstance) Solve(ctx context.Context) (*Report, error) { return &Report{FlowValue: 1}, nil }

// TestServiceEvictionSkipsEntriesUnderConstruction is the regression test
// for the insert-time eviction race: with maxCached=1, inserting problem B
// while problem A's instance is still being constructed must NOT evict A's
// entry — evicting it would orphan the in-flight construction and force a
// concurrent request for A to rebuild from scratch.
func TestServiceEvictionSkipsEntriesUnderConstruction(t *testing.T) {
	gs := newGatedWarmSolver()
	reg := NewRegistry()
	if err := reg.Register(gs); err != nil {
		t.Fatal(err)
	}
	svc := NewService(Config{Registry: reg, Workers: 4, MaxCachedInstances: 1})

	probA := figure5Problem(t, core.DefaultParams())
	probB, err := NewProblem(rmat.MustGenerate(rmat.SparseParams(16, 5)), WithParams(core.DefaultParams()))
	if err != nil {
		t.Fatal(err)
	}
	beganA, gateA := gs.arm(probA.Fingerprint())

	// Start A; its construction blocks on the gate.
	doneA := make(chan error, 1)
	go func() {
		_, err := svc.Solve(context.Background(), Request{Solver: "gated-warm", Problem: probA})
		doneA <- err
	}()
	<-beganA

	// B inserts while A is under construction; with maxCached=1 the old code
	// evicted A's entry here.
	if _, err := svc.Solve(context.Background(), Request{Solver: "gated-warm", Problem: probB}); err != nil {
		t.Fatal(err)
	}

	close(gateA)
	if err := <-doneA; err != nil {
		t.Fatal(err)
	}
	// A second request for A must hit the cached entry, not reconstruct.
	if _, err := svc.Solve(context.Background(), Request{Solver: "gated-warm", Problem: probA}); err != nil {
		t.Fatal(err)
	}
	gs.mu.Lock()
	callsA := gs.calls[probA.Fingerprint()]
	gs.mu.Unlock()
	if callsA != 1 {
		t.Fatalf("problem A was constructed %d times; the in-flight entry was evicted and orphaned", callsA)
	}
}

// TestServiceEvictionHammered runs many concurrent solves of two alternating
// fingerprints through a maxCached=1 service, checking that nothing
// deadlocks or fails under constant eviction pressure (race detector
// coverage for the claim/evict paths).
func TestServiceEvictionHammered(t *testing.T) {
	svc := NewService(Config{Workers: 4, MaxCachedInstances: 1})
	params := core.DefaultParams()
	probs := []*Problem{
		figure5Problem(t, params),
		mustProblem(t, rmat.MustGenerate(rmat.SparseParams(16, 3)), params),
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 20; k++ {
				p := probs[(w+k)%2]
				if _, err := svc.Solve(context.Background(), Request{Solver: "dinic", Problem: p}); err != nil {
					t.Errorf("solve failed under eviction pressure: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if st := svc.Stats(); st.CachedInstances > 2 {
		t.Errorf("cache failed to shrink back: %d instances", st.CachedInstances)
	}
}

func mustProblem(t *testing.T, g *graph.Graph, params core.Params) *Problem {
	t.Helper()
	p, err := NewProblem(g, WithParams(params))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestServiceCacheEviction(t *testing.T) {
	svc := NewService(Config{Workers: 1, MaxCachedInstances: 1})
	params := core.DefaultParams()
	p1 := figure5Problem(t, params)
	p2, err := NewProblem(rmat.MustGenerate(rmat.SparseParams(24, 2)), WithParams(params))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []*Problem{p1, p2, p1} {
		if _, err := svc.Solve(context.Background(), Request{Solver: "behavioral", Problem: p}); err != nil {
			t.Fatal(err)
		}
	}
	if st := svc.Stats(); st.CachedInstances != 1 {
		t.Errorf("cache holds %d instances, want 1", st.CachedInstances)
	}
}

// TestServiceStreamingOrder checks that SolveBatchFunc reports every item
// exactly once and that the returned slice is index-ordered.
func TestServiceStreamingOrder(t *testing.T) {
	svc := NewService(Config{Workers: 4})
	var reqs []Request
	for i := 0; i < 6; i++ {
		reqs = append(reqs, Request{Solver: "dinic", Problem: figure5Problem(t, core.DefaultParams())})
	}
	seen := make(map[int]bool)
	results := svc.SolveBatchFunc(context.Background(), reqs, func(r BatchResult) {
		if seen[r.Index] {
			t.Errorf("index %d streamed twice", r.Index)
		}
		seen[r.Index] = true
	})
	if len(seen) != len(reqs) {
		t.Errorf("streamed %d results, want %d", len(seen), len(reqs))
	}
	for i, r := range results {
		if r.Index != i {
			t.Errorf("result %d has index %d", i, r.Index)
		}
		if r.Err != nil {
			t.Errorf("item %d failed: %v", i, r.Err)
		}
	}
}
