package solve

import (
	"context"
	"sync"
	"testing"

	"analogflow/internal/core"
	"analogflow/internal/decompose"
	"analogflow/internal/graph"
	"analogflow/internal/rmat"
	"analogflow/internal/testutil"
)

// interiorOwnedEdges returns the edges whose endpoints both belong to exactly
// one region — the same one — and that touch neither terminal.  Updating such
// an edge changes exactly one region subproblem's capacities and can never
// flip a boundary-wiring decision or the value-scale clamp, so a warm chain
// built from these edges must absorb every step without a cold region
// rebuild.
func interiorOwnedEdges(g *graph.Graph, part decompose.Partition) []int {
	regionsOf := func(v int) (count, region int) {
		for r, in := range part.In {
			if in[v] {
				count++
				region = r
			}
		}
		return count, region
	}
	var out []int
	for ei, e := range g.Edges() {
		if e.From == g.Source() || e.From == g.Sink() || e.To == g.Source() || e.To == g.Sink() {
			continue
		}
		cf, rf := regionsOf(e.From)
		ct, rt := regionsOf(e.To)
		if cf == 1 && ct == 1 && rf == rt {
			out = append(out, ei)
		}
	}
	return out
}

// shardedChainStep builds step k of a warm-compatible capacity chain over the
// given interior edges: alternating increases and halvings that never cross
// zero, so the chain is capacity-only from every region's point of view.
func shardedChainStep(g *graph.Graph, edges []int, k int) graph.CapacityUpdate {
	var u graph.CapacityUpdate
	for j := 0; j < 3; j++ {
		e := edges[(k*5+j*2)%len(edges)]
		dup := false
		for _, seen := range u.Edges {
			if seen == e {
				dup = true
			}
		}
		if dup {
			continue
		}
		c := g.Edge(e).Capacity
		switch {
		case (k+j)%2 == 0:
			c += 7
		case c >= 2:
			c = float64(int(c) / 2)
		default:
			c++
		}
		u.Edges = append(u.Edges, e)
		u.Capacities = append(u.Capacities, c)
	}
	return u
}

// testOracle digs the single cached region oracle out of a service, for
// engine-level assertions.
func testOracle(t *testing.T, s *Service) *regionOracle {
	t.Helper()
	s.oracles.mu.Lock()
	defer s.oracles.mu.Unlock()
	if len(s.oracles.m) != 1 {
		t.Fatalf("oracle cache holds %d entries, want exactly 1", len(s.oracles.m))
	}
	for _, slot := range s.oracles.m {
		return slot.oracle
	}
	return nil
}

// TestShardedUpdateChainWarmFromStepOne is the acceptance pin of the warm
// sharded-chain contract: an update chain over a problem above the budget
// claims the region oracle the base solve published, absorbs every step as
// per-region capacity updates — warm from step 1, zero cold region rebuilds —
// and keeps re-publishing the oracle so the whole chain stays warm.
func TestShardedUpdateChainWarmFromStepOne(t *testing.T) {
	g := rmat.MustGenerate(rmat.SparseParams(200, 3))
	budget := Budget{MaxVertices: 80}
	svc := NewService(Config{Workers: 2, Budget: budget})
	prob, err := NewProblem(g)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := svc.Solve(context.Background(), Request{Solver: "dinic", Problem: prob})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Plan == nil || !rep.Plan.Sharded {
		t.Fatalf("base solve not sharded: %+v", rep.Plan)
	}
	if got := svc.Stats().CachedOracles; got != 1 {
		t.Fatalf("base solve cached %d oracles, want 1", got)
	}
	plan, part, err := planFor(prob, budget)
	if err != nil || !plan.Sharded {
		t.Fatalf("planFor: %+v, %v", plan, err)
	}
	edges := interiorOwnedEdges(g, part)
	if len(edges) < 6 {
		t.Fatalf("only %d interior owned edges; pick a different instance", len(edges))
	}
	const steps = 4
	for k := 0; k < steps; k++ {
		upd := shardedChainStep(prob.Graph(), edges, k)
		res, err := svc.Update(context.Background(), UpdateRequest{Solver: "dinic", Problem: prob, Update: upd})
		if err != nil {
			t.Fatalf("step %d: %v", k, err)
		}
		if res.Report.Plan == nil || !res.Report.Plan.Sharded {
			t.Fatalf("step %d not sharded: %+v", k, res.Report.Plan)
		}
		if !res.Warm {
			t.Errorf("step %d ran cold; sharded chains must be warm from step 1", k)
		}
		if res.Report.RelativeError > 0.25 {
			t.Errorf("step %d: sharded flow %.2f vs exact %.2f (%.0f%% error)",
				k, res.Report.FlowValue, res.Report.ExactValue, 100*res.Report.RelativeError)
		}
		prob = res.Problem
	}
	stats := svc.Stats()
	if stats.ShardedUpdates != steps || stats.ShardedUpdateWarmHits != steps {
		t.Errorf("sharded update stats %d/%d warm, want %d/%d",
			stats.ShardedUpdates, stats.ShardedUpdateWarmHits, steps, steps)
	}
	if stats.RegionColdRebuilds != 0 {
		t.Errorf("%d cold region rebuilds across a capacity-only chain, want 0", stats.RegionColdRebuilds)
	}
	if stats.CachedOracles != 1 {
		t.Errorf("oracle cache population %d after the chain, want 1 (re-published per step)", stats.CachedOracles)
	}
}

// TestShardedUpdateStructuralStepRepublishes is the poisoning regression: a
// step that zeroes an edge inside one region flips that region's positivity,
// so its warm instance cannot absorb the delta — exactly that one region must
// be rebuilt cold (the delta is routed to the owning region, the others stay
// warm), and the oracle must be re-published under the new fingerprint in its
// healed state so the chain continues warm right after the structural step.
func TestShardedUpdateStructuralStepRepublishes(t *testing.T) {
	g := rmat.MustGenerate(rmat.SparseParams(200, 3))
	budget := Budget{MaxVertices: 80}
	svc := NewService(Config{Workers: 2, Budget: budget})
	prob, err := NewProblem(g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Solve(context.Background(), Request{Solver: "dinic", Problem: prob}); err != nil {
		t.Fatal(err)
	}
	_, part, err := planFor(prob, budget)
	if err != nil {
		t.Fatal(err)
	}
	edges := interiorOwnedEdges(g, part)
	if len(edges) < 6 {
		t.Fatalf("only %d interior owned edges", len(edges))
	}

	// One warm step to prove the chain is warm before the structural hit.
	res, err := svc.Update(context.Background(), UpdateRequest{
		Solver: "dinic", Problem: prob, Update: shardedChainStep(prob.Graph(), edges[1:], 0)})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Warm {
		t.Fatal("pre-structural step ran cold")
	}
	prob = res.Problem

	// The structural step: capacity -> 0 inside exactly one region.
	res, err = svc.Update(context.Background(), UpdateRequest{
		Solver: "dinic", Problem: prob,
		Update: graph.CapacityUpdate{Edges: []int{edges[0]}, Capacities: []float64{0}}})
	if err != nil {
		t.Fatalf("structural step: %v", err)
	}
	if !res.Warm {
		t.Error("structural step lost the claimed oracle entirely; only the owning region should go cold")
	}
	stats := svc.Stats()
	if stats.RegionColdRebuilds != 1 {
		t.Errorf("%d cold region rebuilds after zeroing one interior edge, want exactly 1 (the owning region)",
			stats.RegionColdRebuilds)
	}
	if stats.CachedOracles != 1 {
		t.Fatalf("oracle not re-published after the structural step (cache holds %d entries)", stats.CachedOracles)
	}
	prob = res.Problem

	// The chain continues warm on the healed oracle.
	for k := 2; k < 4; k++ {
		res, err = svc.Update(context.Background(), UpdateRequest{
			Solver: "dinic", Problem: prob, Update: shardedChainStep(prob.Graph(), edges[1:], k)})
		if err != nil {
			t.Fatalf("post-structural step %d: %v", k, err)
		}
		if !res.Warm {
			t.Errorf("post-structural step %d ran cold; the healed oracle was not reused", k)
		}
		if res.Report.RelativeError > 0.25 {
			t.Errorf("post-structural step %d: %.0f%% error vs exact", k, 100*res.Report.RelativeError)
		}
		prob = res.Problem
	}
	final := svc.Stats()
	if final.RegionColdRebuilds != 1 {
		t.Errorf("cold rebuilds grew to %d after the structural step, want to stay at 1", final.RegionColdRebuilds)
	}
	if final.ShardedUpdateWarmHits != 4 {
		t.Errorf("%d warm hits over 4 steps, want 4 (the structural step still rides the claimed oracle)",
			final.ShardedUpdateWarmHits)
	}
}

// TestShardedUpdateBehavioralWarmMatchesCold: a warm sharded step seeds the
// consensus outer loop from the chain's carried state, so its trajectory —
// and with it the final reading — legitimately differs from a cold
// from-scratch solve of the same mutated problem (before the consensus
// warm-start the behavioral chains agreed exactly; that contract is gone by
// design).  What holds instead is the escalation band: a warm value is only
// ever accepted within warmAcceptSlack of the chain's full-consensus
// accuracy against the exact reference, so warm and cold must agree to the
// consensus tolerance.
func TestShardedUpdateBehavioralWarmMatchesCold(t *testing.T) {
	g := rmat.MustGenerate(rmat.SparseParams(200, 3))
	budget := Budget{MaxVertices: 80}
	params := core.DefaultParams()
	svc := NewService(Config{Workers: 2, Budget: budget})
	prob, err := NewProblem(g, WithParams(params))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Solve(context.Background(), Request{Solver: "behavioral", Problem: prob}); err != nil {
		t.Fatal(err)
	}
	_, part, err := planFor(prob, budget)
	if err != nil {
		t.Fatal(err)
	}
	edges := interiorOwnedEdges(g, part)
	for k := 0; k < 3; k++ {
		upd := shardedChainStep(prob.Graph(), edges, k)
		res, err := svc.Update(context.Background(), UpdateRequest{Solver: "behavioral", Problem: prob, Update: upd})
		if err != nil {
			t.Fatalf("warm step %d: %v", k, err)
		}
		if !res.Warm {
			t.Errorf("step %d ran cold", k)
		}
		prob = res.Problem

		coldSvc := NewService(Config{Workers: 2, Budget: budget})
		coldProb, err := NewProblem(prob.Graph().Clone(), WithParams(params))
		if err != nil {
			t.Fatal(err)
		}
		cold, err := coldSvc.Solve(context.Background(), Request{Solver: "behavioral", Problem: coldProb})
		if err != nil {
			t.Fatalf("cold step %d: %v", k, err)
		}
		if !testutil.AlmostEqual(res.Report.FlowValue, cold.FlowValue, 0.25) {
			t.Errorf("step %d: warm flow %g vs cold flow %g, beyond the consensus band", k, res.Report.FlowValue, cold.FlowValue)
		}
	}
}

// TestShardedUpdateChainZeroNewSymbolicFactorizations is the substrate-level
// pin: across a whole warm sharded update chain with the circuit backend as
// the region oracle, every region keeps its one MNA engine — symbolic
// factorizations stay at exactly one per region while numeric
// refactorizations accumulate step over step.
func TestShardedUpdateChainZeroNewSymbolicFactorizations(t *testing.T) {
	const n = 12
	g := graph.MustNew(n, 0, n-1)
	for v := 0; v < n-1; v++ {
		capacity := 10.0
		if v == 3 {
			capacity = 4
		}
		g.MustAddEdge(v, v+1, capacity)
	}
	params := core.DefaultParams()
	params.Variation = core.DefaultCleanVariation()
	opts := decompose.DefaultOptions()
	opts.MaxIterations = 8
	prob, err := NewProblem(g, WithParams(params), WithDecomposeOptions(opts))
	if err != nil {
		t.Fatal(err)
	}
	// MaxRegions 2: three bands would give the middle region virtual
	// terminals on both sides, the circuit-fragile configuration.
	budget := Budget{MaxVertices: 9, MaxRegions: 2}
	svc := NewService(Config{Workers: 1, Budget: budget})
	rep, err := svc.Solve(context.Background(), Request{Solver: "circuit", Problem: prob})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Plan == nil || !rep.Plan.Sharded {
		t.Fatalf("12-vertex path not sharded under an 8-vertex budget: %+v", rep.Plan)
	}
	_, part, err := planFor(prob, budget)
	if err != nil {
		t.Fatal(err)
	}
	edges := interiorOwnedEdges(g, part)
	if len(edges) == 0 {
		t.Fatal("no interior owned edges on the path instance")
	}
	for k := 0; k < 3; k++ {
		// Oscillate one interior edge between two capacity sets the fragile
		// circuit substrate is known to converge on — the pin is about the
		// warm path, not about widening the substrate's convergence region.
		c := 11.0
		if k%2 == 1 {
			c = 10
		}
		upd := graph.CapacityUpdate{Edges: []int{edges[0]}, Capacities: []float64{c}}
		res, err := svc.Update(context.Background(), UpdateRequest{Solver: "circuit", Problem: prob, Update: upd})
		if err != nil {
			t.Fatalf("step %d: %v", k, err)
		}
		if !res.Warm {
			t.Errorf("circuit step %d ran cold", k)
		}
		prob = res.Problem
	}
	if got := svc.Stats().RegionColdRebuilds; got != 0 {
		t.Errorf("%d cold region rebuilds across the circuit chain, want 0", got)
	}
	stats := testOracle(t, svc).engineStats()
	if len(stats) == 0 {
		t.Fatal("no region engines recorded")
	}
	for r, st := range stats {
		if st.Factorizations != 1 {
			t.Errorf("region %d: %d symbolic factorizations across the chain, want exactly 1", r, st.Factorizations)
		}
		if st.Refactorizations == 0 {
			t.Errorf("region %d: no numeric refactorizations — the warm path did not run", r)
		}
	}
}

// TestShardedOracleConcurrencyMatrix races re-solves of the base problem
// against several update chains branching off it on one service.  Exactly one
// racer can own the warm oracle at a time (claim removes it), the rest build
// cold; every report must stay within the decomposition tolerance of its own
// exact value, and the service must end quiescent.  The -race CI job runs
// this against the detector.
func TestShardedOracleConcurrencyMatrix(t *testing.T) {
	g := rmat.MustGenerate(rmat.SparseParams(200, 3))
	svc := NewService(Config{Workers: 4, Budget: Budget{MaxVertices: 80}})
	base, err := NewProblem(g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Solve(context.Background(), Request{Solver: "dinic", Problem: base}); err != nil {
		t.Fatal(err)
	}
	_, part, err := planFor(base, Budget{MaxVertices: 80})
	if err != nil {
		t.Fatal(err)
	}
	edges := interiorOwnedEdges(g, part)

	const chains = 3
	var wg sync.WaitGroup
	for i := 0; i < chains; i++ {
		wg.Add(2)
		go func(i int) { // one independent 3-step chain branching off base
			defer wg.Done()
			prob := base
			for k := 0; k < 3; k++ {
				upd := shardedChainStep(prob.Graph(), edges[i:], k)
				res, err := svc.Update(context.Background(), UpdateRequest{Solver: "dinic", Problem: prob, Update: upd})
				if err != nil {
					t.Errorf("chain %d step %d: %v", i, k, err)
					return
				}
				if res.Report.Plan == nil || !res.Report.Plan.Sharded {
					t.Errorf("chain %d step %d not sharded", i, k)
				}
				if res.Report.RelativeError > 0.25 {
					t.Errorf("chain %d step %d: %.0f%% error", i, k, 100*res.Report.RelativeError)
				}
				prob = res.Problem
			}
		}(i)
		go func() { // concurrent re-solves of the base problem
			defer wg.Done()
			rep, err := svc.Solve(context.Background(), Request{Solver: "dinic", Problem: base})
			if err != nil {
				t.Error(err)
				return
			}
			if rep.RelativeError > 0.25 {
				t.Errorf("base re-solve: %.0f%% error", 100*rep.RelativeError)
			}
		}()
	}
	wg.Wait()
	stats := svc.Stats()
	if stats.ShardedUpdates != chains*3 {
		t.Errorf("%d sharded updates recorded, want %d", stats.ShardedUpdates, chains*3)
	}
	if stats.InFlight != 0 {
		t.Errorf("in-flight gauge %d after completion, want 0", stats.InFlight)
	}
}

// TestShardedSerialVsConcurrentUpdateIdentity pins what the warm sharded
// chain still promises about scheduling:
//
//  1. One chain is exactly deterministic: re-running the same behavioral
//     update chain on a fresh service produces bit-identical per-step values
//     for any worker count (the decomposition, the active-region scheduler
//     and the warm accept/escalate decision are all worker-count invariant).
//  2. Two chains racing for one base's oracle are only tolerance-identical:
//     whoever claims the warm oracle seeds its consensus from carried state
//     while the loser runs cold, and with the consensus warm-start those two
//     trajectories legitimately differ — the escalation band keeps every
//     report within the consensus tolerance, but exact serial-vs-concurrent
//     equality is no longer a contract (it held before this warm start only
//     because warm and cold consensus ran identically).
func TestShardedSerialVsConcurrentUpdateIdentity(t *testing.T) {
	g := rmat.MustGenerate(rmat.SparseParams(200, 3))
	budget := Budget{MaxVertices: 80}
	params := core.DefaultParams()
	_, part, err := planFor(mustProblem(t, g, params), budget)
	if err != nil {
		t.Fatal(err)
	}
	edges := interiorOwnedEdges(g, part)

	// runOne executes a single 3-step chain on a fresh service with the given
	// worker count and returns its per-step flow values.
	runOne := func(workers int) []float64 {
		svc := NewService(Config{Workers: workers, Budget: budget})
		prob := mustProblem(t, g, params)
		if _, err := svc.Solve(context.Background(), Request{Solver: "behavioral", Problem: prob}); err != nil {
			t.Fatal(err)
		}
		var out []float64
		for k := 0; k < 3; k++ {
			upd := shardedChainStep(prob.Graph(), edges, k)
			res, err := svc.Update(context.Background(), UpdateRequest{Solver: "behavioral", Problem: prob, Update: upd})
			if err != nil {
				t.Fatalf("workers=%d step %d: %v", workers, k, err)
			}
			out = append(out, res.Report.FlowValue)
			prob = res.Problem
		}
		return out
	}
	ref := runOne(1)
	for _, workers := range []int{2, 4} {
		got := runOne(workers)
		for k := range ref {
			if got[k] != ref[k] {
				t.Errorf("workers=%d step %d: flow %g != workers=1 flow %g", workers, k, got[k], ref[k])
			}
		}
	}

	// run executes two chains branching off one base, serially or
	// concurrently, and returns the per-chain per-step flow values.
	run := func(concurrent bool) [2][]float64 {
		svc := NewService(Config{Workers: 4, Budget: budget})
		base := mustProblem(t, g, params)
		if _, err := svc.Solve(context.Background(), Request{Solver: "behavioral", Problem: base}); err != nil {
			t.Fatal(err)
		}
		var out [2][]float64
		chain := func(i int) {
			prob := base
			for k := 0; k < 3; k++ {
				upd := shardedChainStep(prob.Graph(), edges[i:], k)
				res, err := svc.Update(context.Background(), UpdateRequest{Solver: "behavioral", Problem: prob, Update: upd})
				if err != nil {
					t.Errorf("chain %d step %d: %v", i, k, err)
					return
				}
				out[i] = append(out[i], res.Report.FlowValue)
				prob = res.Problem
			}
		}
		if concurrent {
			var wg sync.WaitGroup
			for i := 0; i < 2; i++ {
				wg.Add(1)
				go func(i int) { defer wg.Done(); chain(i) }(i)
			}
			wg.Wait()
		} else {
			chain(0)
			chain(1)
		}
		return out
	}
	serial := run(false)
	concurrent := run(true)
	for i := 0; i < 2; i++ {
		if len(serial[i]) != 3 || len(concurrent[i]) != 3 {
			t.Fatalf("chain %d incomplete: serial %v concurrent %v", i, serial[i], concurrent[i])
		}
		for k := range serial[i] {
			if !testutil.AlmostEqual(serial[i][k], concurrent[i][k], 0.25) {
				t.Errorf("chain %d step %d: serial %g vs concurrent %g, beyond the consensus band",
					i, k, serial[i][k], concurrent[i][k])
			}
		}
	}
}

// TestOracleCacheSemantics covers the cache's ownership discipline directly:
// claim removes, publish keeps the first entry on a key collision, and the
// LRU bound evicts the stalest entry.
func TestOracleCacheSemantics(t *testing.T) {
	c := newOracleCache(2)
	sol, err := DefaultRegistry().Get("dinic")
	if err != nil {
		t.Fatal(err)
	}
	a, b, d := newRegionOracle(sol, core.DefaultParams()), newRegionOracle(sol, core.DefaultParams()), newRegionOracle(sol, core.DefaultParams())

	c.publish("a", a)
	if got := c.claim("a"); got != a {
		t.Fatal("claim did not return the published oracle")
	}
	if got := c.claim("a"); got != nil {
		t.Fatal("claim did not remove the entry")
	}

	c.publish("a", a)
	c.publish("a", b)
	if got := c.claim("a"); got != a {
		t.Error("publish collision did not keep the first oracle")
	}

	c.publish("k1", a)
	c.publish("k2", b)
	c.publish("k3", d) // evicts k1, the least recently used
	if c.size() != 2 {
		t.Fatalf("cache size %d over bound 2", c.size())
	}
	if got := c.claim("k1"); got != nil {
		t.Error("LRU entry not evicted")
	}
	if c.claim("k2") == nil || c.claim("k3") == nil {
		t.Error("recently used entries evicted")
	}
}

// TestShardedRepeatSolveReusesOracle: repeated sharded solves of one problem
// claim and re-publish the same oracle — the circuit regions' engines show
// exactly one symbolic factorization after two full solves.
func TestShardedRepeatSolveReusesOracle(t *testing.T) {
	const n = 12
	g := graph.MustNew(n, 0, n-1)
	for v := 0; v < n-1; v++ {
		g.MustAddEdge(v, v+1, 10)
	}
	params := core.DefaultParams()
	params.Variation = core.DefaultCleanVariation()
	prob, err := NewProblem(g, WithParams(params))
	if err != nil {
		t.Fatal(err)
	}
	svc := NewService(Config{Workers: 1, Budget: Budget{MaxVertices: 9, MaxRegions: 2}})
	for i := 0; i < 2; i++ {
		if _, err := svc.Solve(context.Background(), Request{Solver: "circuit", Problem: prob}); err != nil {
			t.Fatalf("solve %d: %v", i, err)
		}
	}
	for r, st := range testOracle(t, svc).engineStats() {
		if st.Factorizations != 1 {
			t.Errorf("region %d: %d symbolic factorizations after two sharded solves, want 1", r, st.Factorizations)
		}
	}
}
