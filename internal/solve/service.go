package solve

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"analogflow/internal/parallel"
)

// Config configures a Service.
type Config struct {
	// Registry resolves solver names; nil selects DefaultRegistry().
	Registry *Registry
	// Workers bounds the number of concurrently executing solves per batch;
	// <= 0 selects GOMAXPROCS.
	Workers int
	// MaxCachedInstances bounds the warm-instance cache; <= 0 selects 64.
	// When the bound is exceeded the least-recently-used instance is
	// evicted (its engine and factorisations are garbage once no in-flight
	// solve still holds it).
	MaxCachedInstances int
}

// Service is the concurrent batch engine on top of the registry: it fans a
// batch of requests across a bounded worker pool (internal/parallel) and
// caches one warm Instance per (problem fingerprint, solver) pair, so that
// repeated solves of the same instance reuse the same core.Session — and,
// in circuit mode, the same mna.Engine, whose cached symbolic LU turns every
// solve after the first into numeric-only refactorizations.
//
// The Workers bound is service-wide: a semaphore caps in-flight solves
// across every concurrent Solve and SolveBatch call, so N parallel batches
// against one service still execute at most Workers solves at a time (the
// contract analogflowd's -workers flag exposes).
//
// A Service is safe for concurrent use.
type Service struct {
	reg       *Registry
	workers   int
	maxCached int
	slots     chan struct{} // service-wide in-flight solve semaphore

	mu    sync.Mutex
	cache map[string]*cacheEntry
	tick  int64

	requests  atomic.Int64
	errors    atomic.Int64
	hits      atomic.Int64
	misses    atomic.Int64
	inFlight  atomic.Int64
	completed atomic.Int64
}

// cacheEntry is one warm instance slot.  The sync.Once makes instance
// construction race-free without holding the service lock across the
// (potentially expensive) preprocessing.
type cacheEntry struct {
	once    sync.Once
	inst    Instance
	err     error
	lastUse atomic.Int64
}

// NewService builds a service from the configuration.
func NewService(cfg Config) *Service {
	reg := cfg.Registry
	if reg == nil {
		reg = DefaultRegistry()
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	maxCached := cfg.MaxCachedInstances
	if maxCached <= 0 {
		maxCached = 64
	}
	return &Service{
		reg:       reg,
		workers:   workers,
		maxCached: maxCached,
		slots:     make(chan struct{}, workers),
		cache:     make(map[string]*cacheEntry),
	}
}

// Registry returns the registry the service resolves names against.
func (s *Service) Registry() *Registry { return s.reg }

// Stats is a snapshot of the service counters.
type Stats struct {
	// Requests counts Solve calls (batch items included); Errors the subset
	// that failed; Completed the subset that finished either way.
	Requests  int64 `json:"requests"`
	Errors    int64 `json:"errors"`
	Completed int64 `json:"completed"`
	// CacheHits / CacheMisses count warm-instance lookups.
	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`
	// CachedInstances is the current cache population, InFlight the solves
	// currently executing.
	CachedInstances int   `json:"cached_instances"`
	InFlight        int64 `json:"in_flight"`
}

// Stats returns a snapshot of the service counters.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	cached := len(s.cache)
	s.mu.Unlock()
	return Stats{
		Requests:        s.requests.Load(),
		Errors:          s.errors.Load(),
		Completed:       s.completed.Load(),
		CacheHits:       s.hits.Load(),
		CacheMisses:     s.misses.Load(),
		CachedInstances: cached,
		InFlight:        s.inFlight.Load(),
	}
}

// Request is one unit of batch work.
type Request struct {
	// Solver is the registry name of the backend to run.
	Solver string
	// Problem is the instance to solve.
	Problem *Problem
}

// BatchResult pairs a request index with its outcome.
type BatchResult struct {
	Index  int
	Report *Report
	Err    error
}

// Solve runs one request, going through the warm-instance cache when the
// backend supports it.  The call waits for a free service-wide worker slot
// (or the context) before executing.
func (s *Service) Solve(ctx context.Context, req Request) (*Report, error) {
	s.requests.Add(1)
	var rep *Report
	var err error
	select {
	case s.slots <- struct{}{}:
		s.inFlight.Add(1)
		rep, err = s.solve(ctx, req)
		s.inFlight.Add(-1)
		<-s.slots
	case <-ctx.Done():
		err = ctx.Err()
	}
	s.completed.Add(1)
	if err != nil {
		s.errors.Add(1)
	}
	return rep, err
}

func (s *Service) solve(ctx context.Context, req Request) (*Report, error) {
	if req.Problem == nil {
		return nil, fmt.Errorf("solve: nil problem")
	}
	sol, err := s.reg.Get(req.Solver)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	start := time.Now()
	var rep *Report
	if w, ok := sol.(Warmable); ok {
		inst, err := s.instance(w, req.Problem)
		if err != nil {
			return nil, err
		}
		rep, err = inst.Solve(ctx)
		if err != nil {
			return nil, err
		}
	} else {
		rep, err = sol.Solve(ctx, req.Problem)
		if err != nil {
			return nil, err
		}
	}
	rep.Solver = sol.Name()
	if rep.WallTime == 0 {
		rep.WallTime = time.Since(start)
	}
	return rep, nil
}

// instance returns the warm instance for the (problem, solver) pair,
// creating and caching it on first use.
func (s *Service) instance(w Warmable, p *Problem) (Instance, error) {
	key := p.Fingerprint() + "|" + w.Name()
	s.mu.Lock()
	e, ok := s.cache[key]
	if !ok {
		e = &cacheEntry{}
		s.cache[key] = e
		s.evictLocked(e)
	}
	s.tick++
	e.lastUse.Store(s.tick)
	s.mu.Unlock()
	if ok {
		s.hits.Add(1)
	} else {
		s.misses.Add(1)
	}

	e.once.Do(func() { e.inst, e.err = w.NewInstance(p) })
	if e.err != nil {
		// A failed construction is not worth caching: drop the entry so a
		// later (possibly fixed) problem with the same fingerprint retries.
		s.mu.Lock()
		if s.cache[key] == e {
			delete(s.cache, key)
		}
		s.mu.Unlock()
		return nil, e.err
	}
	return e.inst, nil
}

// evictLocked drops least-recently-used entries (never keep) until the cache
// respects its bound.  Callers hold s.mu.
func (s *Service) evictLocked(keep *cacheEntry) {
	for len(s.cache) > s.maxCached {
		var victimKey string
		var victim *cacheEntry
		for k, e := range s.cache {
			if e == keep {
				continue
			}
			if victim == nil || e.lastUse.Load() < victim.lastUse.Load() {
				victimKey, victim = k, e
			}
		}
		if victim == nil {
			return
		}
		delete(s.cache, victimKey)
	}
}

// SolveBatch runs every request across the service's bounded worker pool
// and returns the results in request order.  Item failures are reported per
// item, never as a batch-level error, so one bad instance cannot sink its
// batch; a cancelled context fails the not-yet-started items with the
// context's error.
func (s *Service) SolveBatch(ctx context.Context, reqs []Request) []BatchResult {
	return s.SolveBatchFunc(ctx, reqs, nil)
}

// SolveBatchFunc is SolveBatch with a streaming hook: when onResult is
// non-nil it is invoked once per completed item, in completion order, from
// at most one goroutine at a time.  The returned slice is always in request
// order regardless of completion order or worker count.
func (s *Service) SolveBatchFunc(ctx context.Context, reqs []Request, onResult func(BatchResult)) []BatchResult {
	results := make([]BatchResult, len(reqs))
	var emitMu sync.Mutex
	_ = parallel.ForEachLimit(len(reqs), s.workers, func(i int) error {
		var res BatchResult
		res.Index = i
		if err := ctx.Err(); err != nil {
			res.Err = err
			s.requests.Add(1)
			s.completed.Add(1)
			s.errors.Add(1)
		} else {
			res.Report, res.Err = s.Solve(ctx, reqs[i])
		}
		results[i] = res
		if onResult != nil {
			emitMu.Lock()
			onResult(res)
			emitMu.Unlock()
		}
		return nil
	})
	return results
}
