package solve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"analogflow/internal/decompose"
	"analogflow/internal/graph"
	"analogflow/internal/parallel"
)

// Config configures a Service.
type Config struct {
	// Registry resolves solver names; nil selects DefaultRegistry().
	Registry *Registry
	// Workers bounds the number of concurrently executing solves per batch;
	// <= 0 selects GOMAXPROCS.
	Workers int
	// MaxCachedInstances bounds the warm-instance cache; <= 0 selects 64.
	// When the bound is exceeded the least-recently-used instance is
	// evicted (its engine and factorisations are garbage once no in-flight
	// solve still holds it).
	MaxCachedInstances int
	// Budget is the service-wide substrate budget the partition planner
	// enforces for problems that carry none of their own: a request whose
	// instance exceeds it is automatically sharded into budget-sized regions
	// and solved through the N-region dual decomposition, with the requested
	// backend as the per-region oracle.  The zero budget disables the
	// planner for budget-less problems.
	Budget Budget
}

// Service is the concurrent batch engine on top of the registry: it fans a
// batch of requests across a bounded worker pool (internal/parallel) and
// caches one warm Instance per (problem fingerprint, solver) pair, so that
// repeated solves of the same instance reuse the same core.Session — and,
// in circuit mode, the same mna.Engine, whose cached symbolic LU turns every
// solve after the first into numeric-only refactorizations.
//
// The Workers bound is service-wide: a semaphore caps in-flight solves
// across every concurrent Solve and SolveBatch call, so N parallel batches
// against one service still execute at most Workers solves at a time (the
// contract analogflowd's -workers flag exposes).
//
// A Service is safe for concurrent use.
type Service struct {
	reg       *Registry
	workers   int
	maxCached int
	budget    Budget
	slots     chan struct{} // service-wide in-flight solve semaphore

	mu    sync.Mutex
	cache map[string]*cacheEntry
	tick  int64

	requests    atomic.Int64
	errors      atomic.Int64
	hits        atomic.Int64
	misses      atomic.Int64
	inFlight    atomic.Int64
	completed   atomic.Int64
	updates     atomic.Int64
	updatesWarm atomic.Int64
	planned     atomic.Int64
	sharded     atomic.Int64
}

// cacheEntry is one warm instance slot.  The sync.Once makes instance
// construction race-free without holding the service lock across the
// (potentially expensive) preprocessing.
type cacheEntry struct {
	once    sync.Once
	inst    Instance
	err     error
	lastUse atomic.Int64
	// ready flips to true when once.Do has completed.  The eviction pass
	// skips entries that are still under construction: evicting one would
	// orphan the instance being built while a concurrent request for the
	// same fingerprint rebuilds it from scratch.
	ready atomic.Bool
}

// NewService builds a service from the configuration.
func NewService(cfg Config) *Service {
	reg := cfg.Registry
	if reg == nil {
		reg = DefaultRegistry()
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	maxCached := cfg.MaxCachedInstances
	if maxCached <= 0 {
		maxCached = 64
	}
	return &Service{
		reg:       reg,
		workers:   workers,
		maxCached: maxCached,
		budget:    cfg.Budget,
		slots:     make(chan struct{}, workers),
		cache:     make(map[string]*cacheEntry),
	}
}

// Registry returns the registry the service resolves names against.
func (s *Service) Registry() *Registry { return s.reg }

// Stats is a snapshot of the service counters.
type Stats struct {
	// Requests counts Solve calls (batch items included); Errors the subset
	// that failed; Completed the subset that finished either way.
	Requests  int64 `json:"requests"`
	Errors    int64 `json:"errors"`
	Completed int64 `json:"completed"`
	// CacheHits / CacheMisses count warm-instance lookups.
	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`
	// CachedInstances is the current cache population, InFlight the solves
	// currently executing.
	CachedInstances int   `json:"cached_instances"`
	InFlight        int64 `json:"in_flight"`
	// Updates counts Update calls; UpdateWarmHits the subset a warm instance
	// absorbed in place (the remainder fell back to a cold build).
	Updates        int64 `json:"updates"`
	UpdateWarmHits int64 `json:"update_warm_hits"`
	// PlannedSolves counts requests the partition planner examined under a
	// non-zero budget; ShardedSolves the subset it split into regions and
	// routed through the N-region decomposition.
	PlannedSolves int64 `json:"planned_solves"`
	ShardedSolves int64 `json:"sharded_solves"`
}

// Stats returns a snapshot of the service counters.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	cached := len(s.cache)
	s.mu.Unlock()
	return Stats{
		Requests:        s.requests.Load(),
		Errors:          s.errors.Load(),
		Completed:       s.completed.Load(),
		CacheHits:       s.hits.Load(),
		CacheMisses:     s.misses.Load(),
		CachedInstances: cached,
		InFlight:        s.inFlight.Load(),
		Updates:         s.updates.Load(),
		UpdateWarmHits:  s.updatesWarm.Load(),
		PlannedSolves:   s.planned.Load(),
		ShardedSolves:   s.sharded.Load(),
	}
}

// Request is one unit of batch work.
type Request struct {
	// Solver is the registry name of the backend to run.
	Solver string
	// Problem is the instance to solve.
	Problem *Problem
	// Updatable asks the service to build the warm instance through
	// UpdatableSolver.NewUpdatableInstance when the backend supports it, so
	// a later Update chain starting from this problem is warm from its
	// first step (the session-create path of analogflowd).  It only
	// influences instance construction; an already-cached instance for the
	// fingerprint is used either way.
	Updatable bool
}

// BatchResult pairs a request index with its outcome.
type BatchResult struct {
	Index  int
	Report *Report
	Err    error
}

// Solve runs one request, going through the warm-instance cache when the
// backend supports it.  The call waits for a free service-wide worker slot
// (or the context) before executing.
func (s *Service) Solve(ctx context.Context, req Request) (*Report, error) {
	s.requests.Add(1)
	var rep *Report
	var err error
	select {
	case s.slots <- struct{}{}:
		s.inFlight.Add(1)
		rep, err = s.solve(ctx, req)
		s.inFlight.Add(-1)
		<-s.slots
	case <-ctx.Done():
		err = ctx.Err()
	}
	s.completed.Add(1)
	if err != nil {
		s.errors.Add(1)
	}
	return rep, err
}

func (s *Service) solve(ctx context.Context, req Request) (*Report, error) {
	if req.Problem == nil {
		return nil, fmt.Errorf("solve: nil problem")
	}
	sol, err := s.reg.Get(req.Solver)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if rep, routed, err := s.planAndRoute(ctx, sol, req.Problem); routed {
		return rep, err
	}
	start := time.Now()
	var rep *Report
	if w, ok := sol.(Warmable); ok {
		inst, err := s.instance(w, req.Problem, req.Updatable)
		if err != nil {
			return nil, err
		}
		rep, err = inst.Solve(ctx)
		if err != nil {
			return nil, err
		}
		// A concurrent Update may have claimed this instance after the cache
		// lookup and rebound it to the updated problem before (or right
		// after) our solve ran.  The binding is published before the rebind,
		// so a fingerprint mismatch here catches every interleaving in which
		// the report could belong to the wrong problem; re-solve on a fresh
		// uncached instance (the claim already removed this entry).
		if b, ok := inst.(interface{ BoundFingerprint() string }); ok &&
			b.BoundFingerprint() != req.Problem.Fingerprint() {
			fresh, err := buildInstance(w, req.Problem, req.Updatable)
			if err != nil {
				return nil, err
			}
			rep, err = fresh.Solve(ctx)
			if err != nil {
				return nil, err
			}
		}
	} else {
		rep, err = sol.Solve(ctx, req.Problem)
		if err != nil {
			return nil, err
		}
	}
	rep.Solver = sol.Name()
	if rep.WallTime == 0 {
		rep.WallTime = time.Since(start)
	}
	return rep, nil
}

// effectiveBudget resolves the budget that applies to p: its own when set,
// the service default otherwise.
func (s *Service) effectiveBudget(p *Problem) Budget {
	if b := p.Budget(); !b.IsZero() {
		return b
	}
	return s.budget
}

// planAndRoute is the planner gate in front of every service solve: under a
// non-zero effective budget it decides monolithic-vs-sharded execution and,
// for oversized instances, runs the N-region decomposition with the
// requested backend as the warm region oracle.  routed reports whether the
// request was handled here (sharded); monolithic decisions fall through to
// the normal path with no report, and the decompose backend plans for itself.
func (s *Service) planAndRoute(ctx context.Context, sol Solver, p *Problem) (rep *Report, routed bool, err error) {
	b := s.effectiveBudget(p)
	if b.IsZero() {
		return nil, false, nil
	}
	if ds, ok := sol.(*decomposeSolver); ok {
		// The decompose backend shards by design; what the service adds is
		// the budget a budget-less problem would otherwise miss.  Its region
		// oracle is the exact solver, so the solve runs in-call under the
		// request's own slot.
		if !p.Budget().IsZero() {
			return nil, false, nil // the backend reads the problem's budget itself
		}
		s.planned.Add(1)
		rep, err := ds.solveWithBudget(ctx, p, b)
		if err != nil {
			return nil, true, err
		}
		// A budget-forced split carries the budget in its plan; the
		// backend's default small-instance decomposition does not count as a
		// planner shard.
		if rep.Plan != nil && rep.Plan.Sharded && rep.Plan.BudgetMaxVertices > 0 {
			s.sharded.Add(1)
		}
		return rep, true, nil
	}
	s.planned.Add(1)
	plan, part, err := planFor(p, b)
	if err != nil {
		return nil, true, err
	}
	if !plan.Sharded {
		return nil, false, nil
	}
	s.sharded.Add(1)
	// Region solves are real solves and must respect the service-wide
	// worker bound.  The caller holds one slot for this request; release it
	// for the duration of the decomposition (a coordinator waiting on its
	// regions does no solving) and make every region solve acquire its own
	// slot — holding the request slot across the fan-out would deadlock as
	// soon as Workers oversized requests each waited for region slots.  The
	// slot is re-acquired before returning so the caller's release stays
	// balanced.
	s.releaseSlot()
	defer s.reacquireSlot()
	rep, err = solvePlanned(ctx, sol, p, plan, part, s.workers, s.slotBound)
	return rep, true, err
}

// releaseSlot hands the caller's worker slot back during a nested fan-out.
func (s *Service) releaseSlot() {
	s.inFlight.Add(-1)
	<-s.slots
}

// reacquireSlot takes a worker slot back after a nested fan-out.  It blocks
// unconditionally: the caller's own regions have completed, so slot holders
// are live solves that terminate, and the caller must hold a slot again for
// its (unconditional) release to stay balanced.
func (s *Service) reacquireSlot() {
	s.slots <- struct{}{}
	s.inFlight.Add(1)
}

// slotBound wraps a region oracle so that every region solve holds one
// service worker slot, keeping the service-wide in-flight bound intact for
// sharded requests.
func (s *Service) slotBound(inner decompose.Oracle) decompose.Oracle {
	return decompose.OracleFunc(func(ctx context.Context, region int, g *graph.Graph) (*graph.Flow, error) {
		select {
		case s.slots <- struct{}{}:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		s.inFlight.Add(1)
		defer func() {
			s.inFlight.Add(-1)
			<-s.slots
		}()
		return inner.SolveRegion(ctx, region, g)
	})
}

// instance returns the warm instance for the (problem, solver) pair,
// creating and caching it on first use.  updatable selects the
// update-absorbing construction for a fresh instance (no effect on a cache
// hit).
func (s *Service) instance(w Warmable, p *Problem, updatable bool) (Instance, error) {
	key := p.Fingerprint() + "|" + w.Name()
	s.mu.Lock()
	e, ok := s.cache[key]
	if !ok {
		e = &cacheEntry{}
		s.cache[key] = e
		s.evictLocked(e)
	}
	s.tick++
	e.lastUse.Store(s.tick)
	s.mu.Unlock()
	if ok {
		s.hits.Add(1)
	} else {
		s.misses.Add(1)
	}

	e.once.Do(func() {
		e.inst, e.err = buildInstance(w, p, updatable)
		e.ready.Store(true)
	})
	if e.err != nil {
		// A failed construction is not worth caching: drop the entry so a
		// later (possibly fixed) problem with the same fingerprint retries.
		s.mu.Lock()
		if s.cache[key] == e {
			delete(s.cache, key)
		}
		s.mu.Unlock()
		return nil, e.err
	}
	return e.inst, nil
}

// evictLocked drops least-recently-used entries (never keep, never an entry
// whose construction is still in flight — see cacheEntry.ready) until the
// cache respects its bound.  When every other entry is under construction the
// cache is allowed to run over its bound temporarily; the next insert evicts
// once those constructions finish.  Callers hold s.mu.
func (s *Service) evictLocked(keep *cacheEntry) {
	for len(s.cache) > s.maxCached {
		var victimKey string
		var victim *cacheEntry
		for k, e := range s.cache {
			if e == keep || !e.ready.Load() {
				continue
			}
			if victim == nil || e.lastUse.Load() < victim.lastUse.Load() {
				victimKey, victim = k, e
			}
		}
		if victim == nil {
			return
		}
		delete(s.cache, victimKey)
	}
}

// SolveBatch runs every request across the service's bounded worker pool
// and returns the results in request order.  Item failures are reported per
// item, never as a batch-level error, so one bad instance cannot sink its
// batch; a cancelled context fails the not-yet-started items with the
// context's error.
func (s *Service) SolveBatch(ctx context.Context, reqs []Request) []BatchResult {
	return s.SolveBatchFunc(ctx, reqs, nil)
}

// SolveBatchFunc is SolveBatch with a streaming hook: when onResult is
// non-nil it is invoked once per completed item, in completion order, from
// at most one goroutine at a time.  The returned slice is always in request
// order regardless of completion order or worker count.
func (s *Service) SolveBatchFunc(ctx context.Context, reqs []Request, onResult func(BatchResult)) []BatchResult {
	results := make([]BatchResult, len(reqs))
	var emitMu sync.Mutex
	_ = parallel.ForEachLimit(len(reqs), s.workers, func(i int) error {
		var res BatchResult
		res.Index = i
		if err := ctx.Err(); err != nil {
			res.Err = err
			s.requests.Add(1)
			s.completed.Add(1)
			s.errors.Add(1)
		} else {
			res.Report, res.Err = s.Solve(ctx, reqs[i])
		}
		results[i] = res
		if onResult != nil {
			emitMu.Lock()
			onResult(res)
			emitMu.Unlock()
		}
		return nil
	})
	return results
}

// UpdateRequest is one capacity-only re-solve step: apply Update to Problem
// (the previous problem of the chain) and solve the result with Solver.
type UpdateRequest struct {
	Solver  string
	Problem *Problem
	Update  graph.CapacityUpdate
}

// UpdateResult is the outcome of one Update step.
type UpdateResult struct {
	// Report is the solve report of the updated problem.
	Report *Report
	// Problem is the updated problem — pass it as the next UpdateRequest's
	// Problem to continue the chain.
	Problem *Problem
	// Warm reports whether a warm instance absorbed the update in place
	// (false on the first step of a chain, after a structural change, and
	// for backends without warm state).
	Warm bool
}

// Update is the stateful sibling of Solve: it derives the updated problem
// (Problem.WithUpdate), routes it to the warm instance the cache holds for
// the base problem when one exists and can absorb the mutation — the analog
// backends re-stamp clamp values into their frozen circuit pattern and
// re-solve from the previous operating point, the CPU backends drain/extend
// their residual network and re-augment — and falls back to building a fresh
// update-capable instance otherwise.  Either way the instance ends up cached
// under the updated problem's fingerprint, so chains of updates stay warm.
//
// Claiming the warm instance moves it: the base problem's cache entry is
// re-keyed to the updated problem, and concurrent updates branching off the
// same base race for the warm state — one wins, the rest build cold (their
// reports agree to solver tolerance; exactly for the deterministic CPU
// backends).  Like Solve, the call waits for a free service-wide worker slot.
func (s *Service) Update(ctx context.Context, req UpdateRequest) (*UpdateResult, error) {
	s.requests.Add(1)
	s.updates.Add(1)
	var res *UpdateResult
	var err error
	select {
	case s.slots <- struct{}{}:
		s.inFlight.Add(1)
		res, err = s.update(ctx, req)
		s.inFlight.Add(-1)
		<-s.slots
	case <-ctx.Done():
		err = ctx.Err()
	}
	s.completed.Add(1)
	if err != nil {
		s.errors.Add(1)
	}
	return res, err
}

func (s *Service) update(ctx context.Context, req UpdateRequest) (*UpdateResult, error) {
	if req.Problem == nil {
		return nil, fmt.Errorf("solve: nil problem")
	}
	sol, err := s.reg.Get(req.Solver)
	if err != nil {
		return nil, err
	}
	target, err := req.Problem.WithUpdate(req.Update)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// An oversized chain stays sharded: the planner re-solves the updated
	// problem region by region.  The region oracle is rebuilt per step (the
	// warm-chain machinery below is per-instance, not per-region), so the
	// step is never a warm hit.
	if rep, routed, err := s.planAndRoute(ctx, sol, target); routed {
		if err != nil {
			return nil, err
		}
		return &UpdateResult{Report: rep, Problem: target}, nil
	}
	start := time.Now()
	w, warmable := sol.(Warmable)
	if !warmable {
		// Backends without per-problem state (lp, decompose) just solve the
		// updated problem.
		rep, err := sol.Solve(ctx, target)
		if err != nil {
			return nil, err
		}
		rep.Solver = sol.Name()
		if rep.WallTime == 0 {
			rep.WallTime = time.Since(start)
		}
		return &UpdateResult{Report: rep, Problem: target}, nil
	}
	inst, warm, err := s.updateInstance(w, req.Problem, target)
	if err != nil {
		return nil, err
	}
	rep, err := inst.Solve(ctx)
	if err != nil {
		return nil, err
	}
	// Same guard as Service.solve: the instance is published under the
	// target fingerprint before this solve runs, so an identical-chain
	// Update branching off the target may already have claimed and rebound
	// it.  On a binding mismatch, re-solve the target on a fresh instance.
	if b, ok := inst.(interface{ BoundFingerprint() string }); ok &&
		b.BoundFingerprint() != target.Fingerprint() {
		fresh, err := buildInstance(w, target, true)
		if err != nil {
			return nil, err
		}
		warm = false
		rep, err = fresh.Solve(ctx)
		if err != nil {
			return nil, err
		}
	}
	if warm {
		// Counted only after the binding guard, so the stat never claims a
		// warm hit for a step that fell back to a cold re-solve.
		s.updatesWarm.Add(1)
	}
	rep.Solver = sol.Name()
	if rep.WallTime == 0 {
		rep.WallTime = time.Since(start)
	}
	return &UpdateResult{Report: rep, Problem: target, Warm: warm}, nil
}

// updateInstance routes an update to the warm instance cached for the base
// problem, or builds a fresh update-capable instance for the target.
func (s *Service) updateInstance(w Warmable, base, target *Problem) (Instance, bool, error) {
	baseKey := base.Fingerprint() + "|" + w.Name()
	targetKey := target.Fingerprint() + "|" + w.Name()

	// Claim the base entry: removing it from the map makes this goroutine
	// the instance's only owner for the in-place mutation.
	s.mu.Lock()
	e := s.cache[baseKey]
	var claimed *cacheEntry
	if e != nil && e.ready.Load() && e.err == nil {
		if _, ok := e.inst.(UpdatableInstance); ok {
			delete(s.cache, baseKey)
			claimed = e
		}
	}
	s.mu.Unlock()

	if claimed != nil {
		err := claimed.inst.(UpdatableInstance).Update(target)
		if err == nil {
			s.hits.Add(1)
			s.putEntry(targetKey, claimed)
			return claimed.inst, true, nil
		}
		// The instance could not absorb the update, but it is still a valid
		// warm instance for the base problem: put it back so base-problem
		// solve traffic keeps its warm state.
		s.putEntry(baseKey, claimed)
		if !errors.Is(err, ErrIncompatibleUpdate) {
			return nil, false, err
		}
		// Structural change (or a non-updatable instance): fall through to a
		// cold build for the target.
	}

	s.misses.Add(1)
	inst, err := buildInstance(w, target, true)
	if err != nil {
		return nil, false, err
	}
	ne := &cacheEntry{inst: inst}
	ne.once.Do(func() {})
	ne.ready.Store(true)
	s.putEntry(targetKey, ne)
	return inst, false, nil
}

// buildInstance constructs a warm instance for p, preferring the
// update-absorbing construction when asked for and supported.
func buildInstance(w Warmable, p *Problem, updatable bool) (Instance, error) {
	if us, ok := w.(UpdatableSolver); ok && updatable {
		return us.NewUpdatableInstance(p)
	}
	return w.NewInstance(p)
}

// putEntry inserts a pre-built entry under key, keeping an already-present
// entry (two racers produced equivalent instances; first one wins, the loser
// keeps solving its uncached instance).
func (s *Service) putEntry(key string, e *cacheEntry) {
	s.mu.Lock()
	if _, exists := s.cache[key]; !exists {
		s.cache[key] = e
		s.evictLocked(e)
	}
	s.tick++
	e.lastUse.Store(s.tick)
	s.mu.Unlock()
}
