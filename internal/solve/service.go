package solve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"analogflow/internal/decompose"
	"analogflow/internal/graph"
	"analogflow/internal/metrics"
	"analogflow/internal/parallel"
)

// Config configures a Service.
type Config struct {
	// Registry resolves solver names; nil selects DefaultRegistry().
	Registry *Registry
	// Workers bounds the number of concurrently executing solves per batch;
	// <= 0 selects GOMAXPROCS.
	Workers int
	// MaxCachedInstances bounds the warm-instance cache; <= 0 selects 64.
	// When the bound is exceeded the least-recently-used instance is
	// evicted (its engine and factorisations are garbage once no in-flight
	// solve still holds it).
	MaxCachedInstances int
	// MaxCachedOracles bounds the warm region-oracle cache sharded solves
	// and update chains draw from; <= 0 selects 8.  One cached oracle holds
	// one warm instance per region, so the bound is deliberately smaller
	// than the flat instance cache's.
	MaxCachedOracles int
	// Budget is the service-wide substrate budget the partition planner
	// enforces for problems that carry none of their own: a request whose
	// instance exceeds it is automatically sharded into budget-sized regions
	// and solved through the N-region dual decomposition, with the requested
	// backend as the per-region oracle.  The zero budget disables the
	// planner for budget-less problems.
	Budget Budget
	// MaxQueue bounds how many requests may wait for a worker slot before
	// the admission queue starts shedding with ErrOverloaded; <= 0 selects
	// 8 × Workers.  Requests with a Deadline may be shed earlier, as soon as
	// the estimated queue wait (depth × the backend's recent-latency EMA)
	// overruns the deadline.
	MaxQueue int
	// Governor configures the adaptive capacity governor: a background loop
	// that tunes the effective worker-slot count and the effective
	// Budget.MaxVertices from observed saturation.  The zero value leaves
	// the governor disabled (fixed Workers, fixed budget).
	Governor GovernorConfig
}

// Service is the concurrent batch engine on top of the registry: it fans a
// batch of requests across a bounded worker pool (internal/parallel) and
// caches one warm Instance per (problem fingerprint, solver) pair, so that
// repeated solves of the same instance reuse the same core.Session — and,
// in circuit mode, the same mna.Engine, whose cached symbolic LU turns every
// solve after the first into numeric-only refactorizations.
//
// The Workers bound is service-wide: a semaphore caps in-flight solves
// across every concurrent Solve and SolveBatch call, so N parallel batches
// against one service still execute at most Workers solves at a time (the
// contract analogflowd's -workers flag exposes).
//
// A Service is safe for concurrent use.
type Service struct {
	reg       *Registry
	workers   int
	maxCached int
	budget    Budget
	// adm is the service-wide admission queue: a priority-laned worker-slot
	// semaphore that sheds requests whose deadline the queue cannot meet
	// (see admitter).  Update traffic rides the priority lane, so warm
	// session chains are never shed behind queued cold batch solves.
	adm *admitter
	// ema tracks recent solve latency per backend — the admission queue's
	// wait estimator, plus the windowed views /v1/stats and the governor
	// read.  The name survives from the PR 6 latencyEMA it generalizes.
	ema *backendWindows

	// mreg is the instrument registry every service counter lives in; the
	// HTTP plane renders it at /v1/metrics.  meter measures completed
	// requests per second.
	mreg  *metrics.Registry
	meter *metrics.Meter

	// gov is the adaptive governor state (nil-safe zero value when
	// disabled); effMaxVertices is the governor-adjusted substrate budget
	// consulted by effectiveBudget for problems that carry no budget of
	// their own.
	gov            governor
	effMaxVertices atomic.Int64

	mu    sync.Mutex
	cache map[string]*cacheEntry
	tick  int64

	// oracles is the warm region-oracle cache: one entry per sharded
	// problem chain, claimed exclusively for the duration of a sharded
	// solve and re-published under the fingerprint it then answers for.
	oracles *oracleCache

	inFlight atomic.Int64

	requests       *metrics.Counter
	errors         *metrics.Counter
	hits           *metrics.Counter
	misses         *metrics.Counter
	completed      *metrics.Counter
	updates        *metrics.Counter
	updatesWarm    *metrics.Counter
	structUpdates  *metrics.Counter
	slackExhausted *metrics.Counter
	planned        *metrics.Counter
	sharded        *metrics.Counter
	shardedUpd     *metrics.Counter
	shardedUpdWarm *metrics.Counter
	regionRebuilds *metrics.Counter
	consensusWarm  *metrics.Counter
	consensusEsc   *metrics.Counter
	regionsSkipped *metrics.Counter
	outerIters     *metrics.Counter
	outerRuns      *metrics.Counter
	shedRequests   *metrics.Counter
	solverPanics   *metrics.Counter
}

// cacheEntry is one warm instance slot.  The sync.Once makes instance
// construction race-free without holding the service lock across the
// (potentially expensive) preprocessing.
type cacheEntry struct {
	once    sync.Once
	inst    Instance
	err     error
	lastUse atomic.Int64
	// ready flips to true when once.Do has completed.  The eviction pass
	// skips entries that are still under construction: evicting one would
	// orphan the instance being built while a concurrent request for the
	// same fingerprint rebuilds it from scratch.
	ready atomic.Bool
}

// NewService builds a service from the configuration.
func NewService(cfg Config) *Service {
	reg := cfg.Registry
	if reg == nil {
		reg = DefaultRegistry()
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	maxCached := cfg.MaxCachedInstances
	if maxCached <= 0 {
		maxCached = 64
	}
	mreg := metrics.NewRegistry()
	s := &Service{
		reg:       reg,
		workers:   workers,
		maxCached: maxCached,
		budget:    cfg.Budget,
		adm:       newAdmitter(workers, cfg.MaxQueue),
		ema:       newBackendWindows(mreg),
		mreg:      mreg,
		meter:     metrics.NewMeter(10 * time.Second),
		cache:     make(map[string]*cacheEntry),
		oracles:   newOracleCache(cfg.MaxCachedOracles),
	}
	s.registerInstruments()
	s.startGovernor(cfg.Governor)
	return s
}

// registerInstruments creates every service-level counter and gauge in the
// instrument registry.  Registration order is exposition order.
func (s *Service) registerInstruments() {
	m := s.mreg
	s.requests = m.Counter("analogflow_requests_total", "Solve and update requests accepted for counting (batch items included).", nil)
	s.errors = m.Counter("analogflow_errors_total", "Requests that completed with an error.", nil)
	s.completed = m.Counter("analogflow_completed_total", "Requests that finished either way.", nil)
	s.hits = m.Counter("analogflow_cache_events_total", "Warm-instance cache lookups by outcome.", metrics.Labels{"cache": "instance", "event": "hit"})
	s.misses = m.Counter("analogflow_cache_events_total", "Warm-instance cache lookups by outcome.", metrics.Labels{"cache": "instance", "event": "miss"})
	s.updates = m.Counter("analogflow_updates_total", "Update steps.", nil)
	s.updatesWarm = m.Counter("analogflow_update_warm_hits_total", "Update steps a warm instance absorbed in place.", nil)
	s.structUpdates = m.Counter("analogflow_structural_updates_total", "Update steps that carried a topology component.", nil)
	s.slackExhausted = m.Counter("analogflow_slack_exhausted_rebuilds_total", "Structural steps that exhausted reserved slack and forced a cold rebuild.", nil)
	s.planned = m.Counter("analogflow_planned_solves_total", "Requests the partition planner examined under a budget.", nil)
	s.sharded = m.Counter("analogflow_sharded_solves_total", "Requests the planner split into regions.", nil)
	s.shardedUpd = m.Counter("analogflow_sharded_updates_total", "Update steps routed through the N-region decomposition.", nil)
	s.shardedUpdWarm = m.Counter("analogflow_sharded_update_warm_hits_total", "Sharded update steps that ran on the chain's cached region oracle.", nil)
	s.regionRebuilds = m.Counter("analogflow_region_cold_rebuilds_total", "Per-region cold rebuilds inside sharded solves.", nil)
	s.consensusWarm = m.Counter("analogflow_consensus_warm_starts_total", "Sharded solves whose consensus loop was seeded from carried state.", nil)
	s.consensusEsc = m.Counter("analogflow_consensus_escalations_total", "Warm consensus attempts rejected and re-run in full.", nil)
	s.regionsSkipped = m.Counter("analogflow_regions_skipped_total", "Clean regions replayed from carried state instead of re-solved.", nil)
	s.outerIters = m.Counter("analogflow_consensus_outer_iterations_total", "Consensus outer iterations across sharded solves.", nil)
	s.outerRuns = m.Counter("analogflow_consensus_outer_runs_total", "Sharded solves contributing outer iterations.", nil)
	s.shedRequests = m.Counter("analogflow_shed_requests_total", "Requests the admission queue rejected with ErrOverloaded.", nil)
	s.solverPanics = m.Counter("analogflow_solver_panics_total", "Backend panics recovered at the isolation boundary.", nil)

	m.GaugeFunc("analogflow_in_flight_solves", "Solves currently executing.", nil,
		func() float64 { return float64(s.inFlight.Load()) })
	m.GaugeFunc("analogflow_workers_effective", "Current worker-slot capacity (governor-adjusted).", nil,
		func() float64 { return float64(s.adm.capacityNow()) })
	m.GaugeFunc("analogflow_workers_busy", "Worker slots currently held.", nil,
		func() float64 { return float64(s.adm.busy()) })
	for lane, name := range map[int]string{laneUrgent: "urgent", lanePriority: "priority", laneNormal: "normal"} {
		lane := lane
		m.GaugeFunc("analogflow_queue_depth", "Admission-queue waiters per lane.", metrics.Labels{"lane": name},
			func() float64 { return float64(s.adm.laneDepths()[lane]) })
	}
	m.GaugeFunc("analogflow_cached_instances", "Warm-instance cache population.", nil, func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(len(s.cache))
	})
	m.GaugeFunc("analogflow_cached_oracles", "Warm region-oracle cache population.", nil,
		func() float64 { return float64(s.oracles.size()) })
	m.GaugeFunc("analogflow_warm_hit_ratio", "Warm-hit rate per cache.", metrics.Labels{"cache": "instance"},
		func() float64 { return ratio(s.hits.Value(), s.misses.Value()) })
	m.GaugeFunc("analogflow_warm_hit_ratio", "Warm-hit rate per cache.", metrics.Labels{"cache": "oracle"},
		func() float64 { return ratio(s.shardedUpdWarm.Value(), s.shardedUpd.Value()-s.shardedUpdWarm.Value()) })
	m.GaugeFunc("analogflow_warm_hit_ratio", "Warm-hit rate per cache.", metrics.Labels{"cache": "consensus"},
		func() float64 { return ratio(s.consensusWarm.Value(), s.outerRuns.Value()-s.consensusWarm.Value()) })
	m.GaugeFunc("analogflow_throughput_rps", "Completed requests per second (10s meter).", nil, s.meter.Rate)
}

// Registry returns the registry the service resolves names against.
func (s *Service) Registry() *Registry { return s.reg }

// Metrics returns the service's instrument registry, for exposition.
func (s *Service) Metrics() *metrics.Registry { return s.mreg }

// Stats is a snapshot of the service counters.
type Stats struct {
	// Requests counts Solve calls (batch items included); Errors the subset
	// that failed; Completed the subset that finished either way.
	Requests  int64 `json:"requests"`
	Errors    int64 `json:"errors"`
	Completed int64 `json:"completed"`
	// CacheHits / CacheMisses count warm-instance lookups.
	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`
	// CachedInstances is the current cache population, InFlight the solves
	// currently executing.
	CachedInstances int   `json:"cached_instances"`
	InFlight        int64 `json:"in_flight"`
	// Updates counts Update calls; UpdateWarmHits the subset a warm instance
	// absorbed in place (the remainder fell back to a cold build).
	Updates        int64 `json:"updates"`
	UpdateWarmHits int64 `json:"update_warm_hits"`
	// StructuralUpdates counts Update steps that carried a topology component
	// (edge insertions/removals); SlackExhaustedRebuilds the subset whose
	// insertion found no parked slot to reclaim and forced one honest cold
	// rebuild of the warm instance (the chain continues warm from it).
	StructuralUpdates      int64 `json:"structural_updates"`
	SlackExhaustedRebuilds int64 `json:"slack_exhausted_rebuilds"`
	// PlannedSolves counts requests the partition planner examined under a
	// non-zero budget; ShardedSolves the subset it split into regions and
	// routed through the N-region decomposition.
	PlannedSolves int64 `json:"planned_solves"`
	ShardedSolves int64 `json:"sharded_solves"`
	// ShardedUpdates counts Update steps routed through the planner's
	// N-region decomposition; ShardedUpdateWarmHits the subset that ran on
	// the chain's cached region oracle (claimed, rebound region by region,
	// re-published).  RegionColdRebuilds totals the per-region cold rebuilds
	// across every sharded solve — structural fallbacks inside otherwise
	// warm chains land here, not in a lost warm hit.  CachedOracles is the
	// oracle cache population.
	ShardedUpdates        int64 `json:"sharded_updates"`
	ShardedUpdateWarmHits int64 `json:"sharded_update_warm_hits"`
	RegionColdRebuilds    int64 `json:"region_cold_rebuilds"`
	CachedOracles         int   `json:"cached_oracles"`
	// ConsensusWarmStarts counts sharded solves whose consensus outer loop
	// was seeded from the chain's carried state; ConsensusEscalations the
	// subset whose warm quick attempt was rejected (unconverged or outside
	// the acceptance band) and re-ran the full consensus.  RegionsSkipped
	// totals the clean regions replayed from carried state instead of
	// re-solved, and AvgOuterIterations is the mean consensus outer-iteration
	// count per sharded solve — the number the warm start exists to shrink.
	ConsensusWarmStarts  int64   `json:"consensus_warm_starts"`
	ConsensusEscalations int64   `json:"consensus_escalations"`
	RegionsSkipped       int64   `json:"regions_skipped"`
	AvgOuterIterations   float64 `json:"avg_outer_iterations"`
	// ShedRequests counts requests the admission queue rejected with
	// ErrOverloaded (deadline unmeetable or queue full) — they never held a
	// worker slot.  QueueDepth is the current sheddable-waiter population.
	ShedRequests int64 `json:"shed_requests"`
	QueueDepth   int64 `json:"queue_depth"`
	// SolverPanics counts backend panics recovered at the isolation
	// boundary and converted into ErrSolverPanic failures (the poisoned
	// warm state was dropped; the process kept serving).
	SolverPanics int64 `json:"solver_panics"`
	// BackendEMAms is the recent-solve-latency EMA per backend, in
	// milliseconds — the admission queue's deadline estimator.
	BackendEMAms map[string]float64 `json:"backend_ema_ms,omitempty"`
	// BackendWindows is the full windowed latency view per backend: fixed
	// EMA, dynamic-window EMA, SMA, and histogram quantiles.
	BackendWindows map[string]BackendWindow `json:"backend_windows,omitempty"`
	// EffectiveWorkers is the current worker-slot capacity (equal to the
	// configured Workers unless the governor has adjusted it); BusyWorkers
	// the slots currently held; LaneDepths the admission waiters per lane.
	EffectiveWorkers int              `json:"effective_workers"`
	BusyWorkers      int              `json:"busy_workers"`
	LaneDepths       LaneDepths       `json:"lane_depths"`
	Governor         GovernorSnapshot `json:"governor"`
	// ThroughputRPS is completed requests per second over a 10s meter.
	ThroughputRPS float64 `json:"throughput_rps"`
}

// LaneDepths is the admission-queue waiter count per priority lane.
type LaneDepths struct {
	Urgent   int `json:"urgent"`
	Priority int `json:"priority"`
	Normal   int `json:"normal"`
}

// Stats returns a snapshot of the service counters.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	cached := len(s.cache)
	s.mu.Unlock()
	var avgOuter float64
	if runs := s.outerRuns.Value(); runs > 0 {
		avgOuter = float64(s.outerIters.Value()) / float64(runs)
	}
	depths := s.adm.laneDepths()
	return Stats{
		Requests:               s.requests.Value(),
		Errors:                 s.errors.Value(),
		Completed:              s.completed.Value(),
		CacheHits:              s.hits.Value(),
		CacheMisses:            s.misses.Value(),
		CachedInstances:        cached,
		InFlight:               s.inFlight.Load(),
		Updates:                s.updates.Value(),
		UpdateWarmHits:         s.updatesWarm.Value(),
		StructuralUpdates:      s.structUpdates.Value(),
		SlackExhaustedRebuilds: s.slackExhausted.Value(),
		PlannedSolves:          s.planned.Value(),
		ShardedSolves:          s.sharded.Value(),

		ShardedUpdates:        s.shardedUpd.Value(),
		ShardedUpdateWarmHits: s.shardedUpdWarm.Value(),
		RegionColdRebuilds:    s.regionRebuilds.Value(),
		CachedOracles:         s.oracles.size(),
		ConsensusWarmStarts:   s.consensusWarm.Value(),
		ConsensusEscalations:  s.consensusEsc.Value(),
		RegionsSkipped:        s.regionsSkipped.Value(),
		AvgOuterIterations:    avgOuter,
		ShedRequests:          s.shedRequests.Value(),
		QueueDepth:            int64(s.adm.queueDepth()),
		SolverPanics:          s.solverPanics.Value(),
		BackendEMAms:          s.ema.snapshot(),
		BackendWindows:        s.ema.windows(),
		EffectiveWorkers:      s.adm.capacityNow(),
		BusyWorkers:           s.adm.busy(),
		LaneDepths: LaneDepths{
			Urgent:   depths[laneUrgent],
			Priority: depths[lanePriority],
			Normal:   depths[laneNormal],
		},
		Governor:      s.gov.snapshot(s),
		ThroughputRPS: s.meter.Rate(),
	}
}

// Request is one unit of batch work.
type Request struct {
	// Solver is the registry name of the backend to run.
	Solver string
	// Problem is the instance to solve.
	Problem *Problem
	// Updatable asks the service to build the warm instance through
	// UpdatableSolver.NewUpdatableInstance when the backend supports it, so
	// a later Update chain starting from this problem is warm from its
	// first step (the session-create path of analogflowd).  It only
	// influences instance construction; an already-cached instance for the
	// fingerprint is used either way.
	Updatable bool
	// Deadline, when non-zero, bounds the whole request — queue wait plus
	// execution.  The admission queue sheds the request immediately with
	// ErrOverloaded when its estimated queue wait already overruns the
	// deadline; an admitted request runs under a context capped at it.
	Deadline time.Time
}

// BatchResult pairs a request index with its outcome.
type BatchResult struct {
	Index  int
	Report *Report
	Err    error
}

// Solve runs one request, going through the warm-instance cache when the
// backend supports it.  The call waits for a free service-wide worker slot
// (or the context, or the request deadline) before executing; under overload
// it may be shed immediately with ErrOverloaded instead of queueing past its
// deadline (see Config.MaxQueue and Request.Deadline).
func (s *Service) Solve(ctx context.Context, req Request) (*Report, error) {
	s.requests.Add(1)
	rep, err := s.run(ctx, laneNormal, req.Deadline, req.Solver, "solve", func(ctx context.Context) (*Report, error) {
		return s.solve(ctx, req)
	})
	s.completed.Add(1)
	if err != nil {
		s.noteFailure(err)
	}
	return rep, err
}

// run executes one admitted unit of work under the service-wide worker
// bound: it wraps the context with the request deadline (so the deadline
// covers queue wait and execution alike), takes a slot through the admission
// queue in the given lane, runs f, feeds the backend's latency EMA on
// success, and releases the slot.
func (s *Service) run(ctx context.Context, lane int, deadline time.Time, solver, op string, f func(context.Context) (*Report, error)) (*Report, error) {
	if !deadline.IsZero() {
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, deadline)
		defer cancel()
	}
	if err := s.adm.acquire(ctx, lane, deadline, s.ema.estimate(solver)); err != nil {
		return nil, err
	}
	s.inFlight.Add(1)
	start := time.Now()
	rep, err := f(ctx)
	if err == nil {
		s.ema.observeOp(solver, op, time.Since(start))
	}
	s.meter.Mark(1)
	s.inFlight.Add(-1)
	s.adm.release()
	return rep, err
}

// noteFailure attributes one failed request to the error counters.
func (s *Service) noteFailure(err error) {
	s.errors.Add(1)
	if errors.Is(err, ErrOverloaded) {
		s.shedRequests.Add(1)
	}
	if errors.Is(err, ErrSolverPanic) {
		s.solverPanics.Add(1)
	}
}

func (s *Service) solve(ctx context.Context, req Request) (*Report, error) {
	if req.Problem == nil {
		return nil, fmt.Errorf("solve: nil problem")
	}
	sol, err := s.reg.Get(req.Solver)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if rep, routed, _, err := s.planAndRoute(ctx, sol, nil, req.Problem); routed {
		return rep, err
	}
	start := time.Now()
	var rep *Report
	if w, ok := sol.(Warmable); ok {
		inst, err := s.instance(w, req.Problem, req.Updatable)
		if err != nil {
			return nil, err
		}
		rep, err = guardSolve(sol.Name(), func() (*Report, error) { return inst.Solve(ctx) })
		if err != nil {
			if errors.Is(err, ErrSolverPanic) {
				// The panic left the warm instance in an unknown state:
				// drop it from the cache so the fingerprint's next solve
				// builds cold instead of inheriting poisoned engines.
				s.dropInstance(req.Problem.Fingerprint()+"|"+w.Name(), inst)
			}
			return nil, err
		}
		// A concurrent Update may have claimed this instance after the cache
		// lookup and rebound it to the updated problem before (or right
		// after) our solve ran.  The binding is published before the rebind,
		// so a fingerprint mismatch here catches every interleaving in which
		// the report could belong to the wrong problem; re-solve on a fresh
		// uncached instance (the claim already removed this entry).
		if b, ok := inst.(interface{ BoundFingerprint() string }); ok &&
			b.BoundFingerprint() != req.Problem.Fingerprint() {
			fresh, err := buildInstance(w, req.Problem, req.Updatable)
			if err != nil {
				return nil, err
			}
			rep, err = guardSolve(sol.Name(), func() (*Report, error) { return fresh.Solve(ctx) })
			if err != nil {
				return nil, err
			}
		}
	} else {
		rep, err = guardSolve(sol.Name(), func() (*Report, error) { return sol.Solve(ctx, req.Problem) })
		if err != nil {
			return nil, err
		}
	}
	rep.Solver = sol.Name()
	if rep.WallTime == 0 {
		rep.WallTime = time.Since(start)
	}
	return rep, nil
}

// effectiveBudget resolves the budget that applies to p: its own when set,
// the service default — with the governor's MaxVertices adjustment, when
// one is active — otherwise.  A problem-carried budget is a caller contract
// and is never governor-adjusted.
func (s *Service) effectiveBudget(p *Problem) Budget {
	if b := p.Budget(); !b.IsZero() {
		return b
	}
	b := s.budget
	if eff := s.effMaxVertices.Load(); eff > 0 && b.MaxVertices > 0 {
		b.MaxVertices = int(eff)
	}
	return b
}

// planAndRoute is the planner gate in front of every service solve: under a
// non-zero effective budget it decides monolithic-vs-sharded execution and,
// for oversized instances, runs the N-region decomposition with the
// requested backend as the warm region oracle.  routed reports whether the
// request was handled here (sharded); monolithic decisions fall through to
// the normal path with no report, and the decompose backend plans for itself.
//
// base is non-nil for Update steps: target is then base's capacity-only
// derivative, and the sharded path claims the region oracle cached for base
// — the warm per-region instances of the chain's previous step — instead of
// building cold.  Plain solves (base == nil) claim their own fingerprint's
// oracle, so repeated sharded solves of one problem are warm too.  warm
// reports whether the solve ran on a claimed oracle; individual regions may
// still have rebuilt cold inside it — a positivity flip in one region, or an
// analog region whose quantized structure moved — and RegionColdRebuilds
// counts those per region, so a warm step with one structural region is one
// warm hit plus one cold rebuild, not a lost warm hit.
func (s *Service) planAndRoute(ctx context.Context, sol Solver, base, target *Problem) (rep *Report, routed, warm bool, err error) {
	b := s.effectiveBudget(target)
	if b.IsZero() {
		return nil, false, false, nil
	}
	if ds, ok := sol.(*decomposeSolver); ok {
		// The decompose backend shards by design; what the service adds is
		// the budget a budget-less problem would otherwise miss.  Its region
		// oracle is the exact solver — stateless, so there is nothing for
		// the oracle cache to keep warm — and the solve runs in-call under
		// the request's own slot.
		if !target.Budget().IsZero() {
			return nil, false, false, nil // the backend reads the problem's budget itself
		}
		s.planned.Add(1)
		rep, err := ds.solveWithBudget(ctx, target, b)
		if err != nil {
			return nil, true, false, err
		}
		// A budget-forced split carries the budget in its plan; the
		// backend's default small-instance decomposition does not count as a
		// planner shard.
		if rep.Plan != nil && rep.Plan.Sharded && rep.Plan.BudgetMaxVertices > 0 {
			s.sharded.Add(1)
		}
		return rep, true, false, nil
	}
	s.planned.Add(1)
	plan, part, err := planFor(target, b)
	if err != nil {
		return nil, true, false, err
	}
	if !plan.Sharded {
		return nil, false, false, nil
	}
	s.sharded.Add(1)
	if base != nil {
		s.shardedUpd.Add(1)
	}
	// Claim the chain's warm region oracle: the base problem's for an
	// update step, the target's own for a repeated solve.  claim removes
	// the entry, so this goroutine owns the per-region instances outright —
	// racers (concurrent updates branching off one base, or a solve racing
	// an update) find the cache empty and run cold, which is why no
	// binding guard is needed here: an oracle is never shared between two
	// in-flight solves.
	claimKey := oracleKey(target.Fingerprint(), sol, b)
	if base != nil {
		claimKey = oracleKey(base.Fingerprint(), sol, b)
	}
	oracle := s.oracles.claim(claimKey)
	claimed := oracle != nil
	if oracle == nil {
		oracle = newRegionOracle(sol, target.Params())
	}
	// Region solves are real solves and must respect the service-wide
	// worker bound.  The caller holds one slot for this request; release it
	// for the duration of the decomposition (a coordinator waiting on its
	// regions does no solving) and make every region solve acquire its own
	// slot — holding the request slot across the fan-out would deadlock as
	// soon as Workers oversized requests each waited for region slots.  The
	// slot is re-acquired before returning so the caller's release stays
	// balanced.
	s.releaseSlot()
	defer s.reacquireSlot()
	rep, err = solvePlanned(ctx, sol, target, plan, part, s.workers, s.slotBound, oracle)
	rebuilds := oracle.takeRebuilds()
	s.regionRebuilds.Add(int64(rebuilds))
	if err != nil {
		// A failed (or aborted) sharded solve leaves the oracle's region
		// problems somewhere between base and target, so it answers for
		// neither fingerprint; drop it rather than re-publish a poisoned
		// entry.  The per-region instances have already dropped any state an
		// aborted solve corrupted (cpuInstance/Session poisoning contract).
		return nil, true, false, err
	}
	// Consensus accounting: the plan records what the outer loop actually did
	// (warm seed, escalation, skips, iterations); the counters aggregate it.
	if pl := rep.Plan; pl != nil {
		s.outerIters.Add(int64(pl.OuterIterations))
		s.outerRuns.Add(1)
		s.regionsSkipped.Add(int64(pl.RegionSkips))
		if pl.WarmStart {
			s.consensusWarm.Add(1)
		}
		if pl.Escalated {
			s.consensusEsc.Add(1)
		}
	}
	// Re-publish under the fingerprint the oracle now answers for.  A
	// structural step (positivity flip inside a region, a flipped boundary
	// wiring) rebuilt the affected regions cold during the solve, so the
	// oracle is usable again by construction — never a poisoned cache entry —
	// and the chain continues warm from the next step.
	s.oracles.publish(oracleKey(target.Fingerprint(), sol, b), oracle)
	if base != nil && claimed {
		s.shardedUpdWarm.Add(1)
	}
	return rep, true, claimed, nil
}

// releaseSlot hands the caller's worker slot back during a nested fan-out.
func (s *Service) releaseSlot() {
	s.inFlight.Add(-1)
	s.adm.release()
}

// reacquireSlot takes a worker slot back after a nested fan-out.  It blocks
// unconditionally in the urgent lane — never shed, never cancelled: the
// caller's own regions have completed, so slot holders are live solves that
// terminate, and the caller must hold a slot again for its (unconditional)
// release to stay balanced.
func (s *Service) reacquireSlot() {
	s.adm.acquireBlocking(laneUrgent)
	s.inFlight.Add(1)
}

// slotBound wraps a region oracle so that every region solve holds one
// service worker slot, keeping the service-wide in-flight bound intact for
// sharded requests.  Region solves ride the urgent lane: an in-flight
// sharded request depends on them for progress, so they are never shed and
// admit ahead of queued requests.
func (s *Service) slotBound(inner decompose.Oracle) decompose.Oracle {
	return decompose.OracleFunc(func(ctx context.Context, region int, g *graph.Graph) (*graph.Flow, error) {
		if err := s.adm.acquire(ctx, laneUrgent, time.Time{}, 0); err != nil {
			return nil, err
		}
		s.inFlight.Add(1)
		defer func() {
			s.inFlight.Add(-1)
			s.adm.release()
		}()
		return inner.SolveRegion(ctx, region, g)
	})
}

// dropInstance removes the cache entry under key only when it still holds
// exactly inst — the identity check keeps a poisoned-instance drop from
// evicting a fresh replacement a concurrent request already rebuilt.
func (s *Service) dropInstance(key string, inst Instance) {
	s.mu.Lock()
	if e, ok := s.cache[key]; ok && e.ready.Load() && e.inst == inst {
		delete(s.cache, key)
	}
	s.mu.Unlock()
}

// Release drops the warm state the service holds for (p, solver): the flat
// warm instance cached under the problem's fingerprint and, when a budget
// applies, the sharded region oracle cached for the chain.  It exists for
// session eviction — an expired session must not pin warm engines against
// the cache bounds forever.  Unknown solvers and uncached fingerprints are
// no-ops.
func (s *Service) Release(p *Problem, solver string) {
	if p == nil {
		return
	}
	sol, err := s.reg.Get(solver)
	if err != nil {
		return
	}
	s.mu.Lock()
	delete(s.cache, p.Fingerprint()+"|"+sol.Name())
	s.mu.Unlock()
	if b := s.effectiveBudget(p); !b.IsZero() {
		// claim removes the entry; dropping the returned oracle (if any)
		// releases its per-region instances.
		s.oracles.claim(oracleKey(p.Fingerprint(), sol, b))
	}
}

// instance returns the warm instance for the (problem, solver) pair,
// creating and caching it on first use.  updatable selects the
// update-absorbing construction for a fresh instance (no effect on a cache
// hit).
func (s *Service) instance(w Warmable, p *Problem, updatable bool) (Instance, error) {
	key := p.Fingerprint() + "|" + w.Name()
	s.mu.Lock()
	e, ok := s.cache[key]
	if !ok {
		e = &cacheEntry{}
		s.cache[key] = e
		s.evictLocked(e)
	}
	s.tick++
	e.lastUse.Store(s.tick)
	s.mu.Unlock()
	if ok {
		s.hits.Add(1)
	} else {
		s.misses.Add(1)
	}

	e.once.Do(func() {
		e.inst, e.err = buildInstance(w, p, updatable)
		e.ready.Store(true)
	})
	if e.err != nil {
		// A failed construction is not worth caching: drop the entry so a
		// later (possibly fixed) problem with the same fingerprint retries.
		s.mu.Lock()
		if s.cache[key] == e {
			delete(s.cache, key)
		}
		s.mu.Unlock()
		return nil, e.err
	}
	return e.inst, nil
}

// evictLocked drops least-recently-used entries (never keep, never an entry
// whose construction is still in flight — see cacheEntry.ready) until the
// cache respects its bound.  When every other entry is under construction the
// cache is allowed to run over its bound temporarily; the next insert evicts
// once those constructions finish.  Callers hold s.mu.
func (s *Service) evictLocked(keep *cacheEntry) {
	for len(s.cache) > s.maxCached {
		var victimKey string
		var victim *cacheEntry
		for k, e := range s.cache {
			if e == keep || !e.ready.Load() {
				continue
			}
			if victim == nil || e.lastUse.Load() < victim.lastUse.Load() {
				victimKey, victim = k, e
			}
		}
		if victim == nil {
			return
		}
		delete(s.cache, victimKey)
	}
}

// SolveBatch runs every request across the service's bounded worker pool
// and returns the results in request order.  Item failures are reported per
// item, never as a batch-level error, so one bad instance cannot sink its
// batch; a cancelled context fails the not-yet-started items with the
// context's error.
func (s *Service) SolveBatch(ctx context.Context, reqs []Request) []BatchResult {
	return s.SolveBatchFunc(ctx, reqs, nil)
}

// SolveBatchFunc is SolveBatch with a streaming hook: when onResult is
// non-nil it is invoked once per completed item, in completion order, from
// at most one goroutine at a time.  The returned slice is always in request
// order regardless of completion order or worker count.
func (s *Service) SolveBatchFunc(ctx context.Context, reqs []Request, onResult func(BatchResult)) []BatchResult {
	return s.solveBatch(ctx, reqs, onResult, nil)
}

// ErrStopped fails batch items that were skipped before starting because the
// batch's stop hook fired (server drain, client disconnect).  Items already
// in flight finish normally; stopped items consume no worker slot and no
// service counters.
var ErrStopped = errors.New("solve: batch stopped before item started")

// SolveBatchDrain is SolveBatchFunc with a cooperative stop hook: stop is
// polled before each item starts, and once it returns true the remaining
// not-yet-started items fail with ErrStopped while in-flight items run to
// completion — the draining-server contract, where the current NDJSON record
// finishes and the rest of the batch is cut short.  stop must be safe for
// concurrent calls; nil behaves like SolveBatchFunc.
func (s *Service) SolveBatchDrain(ctx context.Context, reqs []Request, onResult func(BatchResult), stop func() bool) []BatchResult {
	return s.solveBatch(ctx, reqs, onResult, stop)
}

func (s *Service) solveBatch(ctx context.Context, reqs []Request, onResult func(BatchResult), stop func() bool) []BatchResult {
	results := make([]BatchResult, len(reqs))
	var emitMu sync.Mutex
	_ = parallel.ForEachLimit(len(reqs), s.fanout(), func(i int) error {
		var res BatchResult
		res.Index = i
		if stop != nil && stop() {
			res.Err = ErrStopped
		} else if err := ctx.Err(); err != nil {
			res.Err = err
			s.requests.Add(1)
			s.completed.Add(1)
			s.errors.Add(1)
		} else {
			res.Report, res.Err = s.Solve(ctx, reqs[i])
		}
		results[i] = res
		if onResult != nil {
			emitMu.Lock()
			onResult(res)
			emitMu.Unlock()
		}
		return nil
	})
	return results
}

// UpdateRequest is one re-solve step: apply Update and/or Structural to
// Problem (the previous problem of the chain) and solve the result with
// Solver.
type UpdateRequest struct {
	Solver  string
	Problem *Problem
	// Update is the capacity-only component of the step; it may be empty when
	// Structural is set.
	Update graph.CapacityUpdate
	// Structural, when non-nil, is the topology component: edge insertions
	// and removals (graph.StructuralUpdate).  A mixed step applies the
	// capacity component first — its edge indices refer to the base problem's
	// edge list — then the structural one.  Removals park their edges and
	// stay value-level; insertions reclaim parked slots when endpoints match
	// and append (consuming structural slack) otherwise.
	Structural *graph.StructuralUpdate
	// Deadline, when non-zero, bounds queue wait plus execution, exactly as
	// Request.Deadline does for Solve.  Update steps queue in the priority
	// lane, so they are only shed once the queue holds nothing but other
	// priority traffic exceeding the bound.
	Deadline time.Time
}

// UpdateResult is the outcome of one Update step.
type UpdateResult struct {
	// Report is the solve report of the updated problem.
	Report *Report
	// Problem is the updated problem — pass it as the next UpdateRequest's
	// Problem to continue the chain.
	Problem *Problem
	// Warm reports whether warm state absorbed the update: for flat chains,
	// a warm instance updated in place (false on the first step of a chain,
	// after a structural change, and for backends without warm state); for
	// sharded chains, the chain's cached region oracle was claimed and
	// rebound — individual regions may still have rebuilt cold on a
	// structural change (Stats.RegionColdRebuilds counts those).
	Warm bool
	// Structural reports whether the step carried a topology component, and
	// SlackRemaining how many parked slots the updated problem still holds —
	// the number of future insertions (per endpoint pair) the warm state can
	// absorb before an append forces a cold rebuild.
	Structural     bool
	SlackRemaining int
}

// Update is the stateful sibling of Solve: it derives the updated problem
// (Problem.WithUpdate), routes it to the warm instance the cache holds for
// the base problem when one exists and can absorb the mutation — the analog
// backends re-stamp clamp values into their frozen circuit pattern and
// re-solve from the previous operating point, the CPU backends drain/extend
// their residual network and re-augment — and falls back to building a fresh
// update-capable instance otherwise.  Either way the instance ends up cached
// under the updated problem's fingerprint, so chains of updates stay warm.
//
// Claiming the warm instance moves it: the base problem's cache entry is
// re-keyed to the updated problem, and concurrent updates branching off the
// same base race for the warm state — one wins, the rest build cold (their
// reports agree to solver tolerance; exactly for the deterministic CPU
// backends).  Like Solve, the call waits for a free service-wide worker slot.
//
// A chain whose problems exceed the effective substrate budget runs sharded
// and follows the same discipline one level up: the whole region oracle —
// one warm instance per region — is claimed from the oracle cache, rebound
// region by region, and re-published under the new fingerprint (see
// planAndRoute).  For the CPU backends a warm sharded step may recover a
// different — equally optimal — per-region flow than a cold one, which can
// steer the consensus iteration down a different path: warm and cold sharded
// reports agree to the decomposition tolerance, not bit-for-bit (the
// behavioral backend, being deterministic warm or cold, does agree exactly).
func (s *Service) Update(ctx context.Context, req UpdateRequest) (*UpdateResult, error) {
	s.requests.Add(1)
	s.updates.Add(1)
	var res *UpdateResult
	_, err := s.run(ctx, lanePriority, req.Deadline, req.Solver, "update", func(ctx context.Context) (*Report, error) {
		var err error
		res, err = s.update(ctx, req)
		return nil, err
	})
	s.completed.Add(1)
	if err != nil {
		res = nil
		s.noteFailure(err)
	}
	return res, err
}

func (s *Service) update(ctx context.Context, req UpdateRequest) (*UpdateResult, error) {
	if req.Problem == nil {
		return nil, fmt.Errorf("solve: nil problem")
	}
	sol, err := s.reg.Get(req.Solver)
	if err != nil {
		return nil, err
	}
	structural := req.Structural != nil
	target := req.Problem
	if structural {
		s.structUpdates.Add(1)
		// Mixed steps apply the capacity component first (its edge indices
		// refer to the base problem's edge list), then the topology component.
		if len(req.Update.Edges) > 0 {
			if target, err = target.WithUpdate(req.Update); err != nil {
				return nil, err
			}
		}
		if target, err = target.WithStructuralUpdate(*req.Structural); err != nil {
			return nil, err
		}
	} else if target, err = target.WithUpdate(req.Update); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// An oversized chain stays sharded — and stays warm: the planner claims
	// the region oracle cached for the base problem's fingerprint, each
	// region absorbs its share of the capacity delta through the same
	// WithUpdate/UpdatableInstance.Update path flat chains use, and the
	// oracle is re-published under the updated fingerprint for the next
	// step.  Structural steps (a capacity crossing zero inside a region)
	// rebuild only the affected regions cold — counted in
	// Stats.RegionColdRebuilds — and the rest of the oracle stays warm.
	if rep, routed, warm, err := s.planAndRoute(ctx, sol, req.Problem, target); routed {
		if err != nil {
			return nil, err
		}
		return &UpdateResult{Report: rep, Problem: target, Warm: warm,
			Structural: structural, SlackRemaining: target.StructuralSlack()}, nil
	}
	start := time.Now()
	w, warmable := sol.(Warmable)
	if !warmable {
		// Backends without per-problem state (lp, decompose) just solve the
		// updated problem.
		rep, err := guardSolve(sol.Name(), func() (*Report, error) { return sol.Solve(ctx, target) })
		if err != nil {
			return nil, err
		}
		rep.Solver = sol.Name()
		if rep.WallTime == 0 {
			rep.WallTime = time.Since(start)
		}
		return &UpdateResult{Report: rep, Problem: target,
			Structural: structural, SlackRemaining: target.StructuralSlack()}, nil
	}
	inst, warm, err := s.updateInstance(w, req.Problem, target)
	if err != nil {
		return nil, err
	}
	rep, err := guardSolve(sol.Name(), func() (*Report, error) { return inst.Solve(ctx) })
	if err != nil {
		if errors.Is(err, ErrSolverPanic) {
			// updateInstance published this instance under the target
			// fingerprint; a panic mid-solve poisons it, so drop that entry
			// and let the chain's next touch rebuild cold.
			s.dropInstance(target.Fingerprint()+"|"+w.Name(), inst)
		}
		return nil, err
	}
	// Same guard as Service.solve: the instance is published under the
	// target fingerprint before this solve runs, so an identical-chain
	// Update branching off the target may already have claimed and rebound
	// it.  On a binding mismatch, re-solve the target on a fresh instance.
	if b, ok := inst.(interface{ BoundFingerprint() string }); ok &&
		b.BoundFingerprint() != target.Fingerprint() {
		fresh, err := buildInstance(w, target, true)
		if err != nil {
			return nil, err
		}
		warm = false
		rep, err = guardSolve(sol.Name(), func() (*Report, error) { return fresh.Solve(ctx) })
		if err != nil {
			return nil, err
		}
	}
	if warm {
		// Counted only after the binding guard, so the stat never claims a
		// warm hit for a step that fell back to a cold re-solve.
		s.updatesWarm.Add(1)
	}
	rep.Solver = sol.Name()
	if rep.WallTime == 0 {
		rep.WallTime = time.Since(start)
	}
	return &UpdateResult{Report: rep, Problem: target, Warm: warm,
		Structural: structural, SlackRemaining: target.StructuralSlack()}, nil
}

// updateInstance routes an update to the warm instance cached for the base
// problem, or builds a fresh update-capable instance for the target.
func (s *Service) updateInstance(w Warmable, base, target *Problem) (Instance, bool, error) {
	baseKey := base.Fingerprint() + "|" + w.Name()
	targetKey := target.Fingerprint() + "|" + w.Name()

	// Claim the base entry: removing it from the map makes this goroutine
	// the instance's only owner for the in-place mutation.
	s.mu.Lock()
	e := s.cache[baseKey]
	var claimed *cacheEntry
	if e != nil && e.ready.Load() && e.err == nil {
		if _, ok := e.inst.(UpdatableInstance); ok {
			delete(s.cache, baseKey)
			claimed = e
		}
	}
	s.mu.Unlock()

	if claimed != nil {
		err := guardErr(w.Name(), func() error { return claimed.inst.(UpdatableInstance).Update(target) })
		if err == nil {
			s.hits.Add(1)
			s.putEntry(targetKey, claimed)
			return claimed.inst, true, nil
		}
		if errors.Is(err, ErrSolverPanic) {
			// The panic may have left the instance half-mutated — valid for
			// neither base nor target — so drop it instead of putting it
			// back (the claim already removed it from the cache).
			return nil, false, err
		}
		// The instance could not absorb the update, but it is still a valid
		// warm instance for the base problem: put it back so base-problem
		// solve traffic keeps its warm state.
		s.putEntry(baseKey, claimed)
		if !errors.Is(err, ErrIncompatibleUpdate) {
			return nil, false, err
		}
		if errors.Is(err, ErrSlackExhausted) {
			// An insertion had to append past the warm pattern's slot pool:
			// this is the one honest cold rebuild of the slack contract.
			s.slackExhausted.Add(1)
		}
		// Structural change (or a non-updatable instance): fall through to a
		// cold build for the target.
	}

	s.misses.Add(1)
	inst, err := buildInstance(w, target, true)
	if err != nil {
		return nil, false, err
	}
	ne := &cacheEntry{inst: inst}
	ne.once.Do(func() {})
	ne.ready.Store(true)
	s.putEntry(targetKey, ne)
	return inst, false, nil
}

// buildInstance constructs a warm instance for p, preferring the
// update-absorbing construction when asked for and supported.
func buildInstance(w Warmable, p *Problem, updatable bool) (Instance, error) {
	if us, ok := w.(UpdatableSolver); ok && updatable {
		return us.NewUpdatableInstance(p)
	}
	return w.NewInstance(p)
}

// putEntry inserts a pre-built entry under key, keeping an already-present
// entry (two racers produced equivalent instances; first one wins, the loser
// keeps solving its uncached instance).
func (s *Service) putEntry(key string, e *cacheEntry) {
	s.mu.Lock()
	if _, exists := s.cache[key]; !exists {
		s.cache[key] = e
		s.evictLocked(e)
	}
	s.tick++
	e.lastUse.Store(s.tick)
	s.mu.Unlock()
}
