package solve

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"

	"analogflow/internal/core"
	"analogflow/internal/decompose"
	"analogflow/internal/graph"
	"analogflow/internal/lp"
	"analogflow/internal/maxflow"
	"analogflow/internal/rmat"
)

// outcome is a solve result reduced to what the equivalence test compares:
// the flow value, or the error when the backend failed.
type outcome struct {
	value float64
	err   error
}

// directOutcome runs a backend's pre-refactor entry point on g.
func directOutcome(t *testing.T, name string, g *graph.Graph, params core.Params) outcome {
	t.Helper()
	switch name {
	case "behavioral", "circuit":
		p := params
		if name == "circuit" {
			p.Mode = core.ModeCircuit
		} else {
			p.Mode = core.ModeBehavioral
		}
		s, err := core.NewSolver(p)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Solve(g)
		if err != nil {
			return outcome{err: err}
		}
		return outcome{value: res.FlowValue}
	case "dinic", "edmonds-karp", "push-relabel":
		alg := map[string]maxflow.Algorithm{
			"dinic":        maxflow.Dinic,
			"edmonds-karp": maxflow.EdmondsKarp,
			"push-relabel": maxflow.PushRelabel,
		}[name]
		f, err := maxflow.Solve(g, alg)
		if err != nil {
			return outcome{err: err}
		}
		return outcome{value: f.Value}
	case "lp":
		f, err := lp.SolveMaxFlowLP(g)
		if err != nil {
			return outcome{err: err}
		}
		return outcome{value: f.Value}
	case "decompose":
		res, err := decompose.Solve(g, decompose.BisectByBFS(g), decompose.DefaultOptions())
		if err != nil {
			return outcome{err: err}
		}
		return outcome{value: res.FlowValue}
	default:
		t.Fatalf("unknown backend %q", name)
		return outcome{}
	}
}

// TestBackendsMatchPreRefactorEntryPoints is the acceptance criterion of the
// unification: every backend, invoked by name through the registry, must
// produce the same flow value (or, for the documented circuit-mode fragility
// on general graphs, the same failure) as the entry point callers used
// before the refactor — on the paper's worked example and on an R-MAT
// instance.
func TestBackendsMatchPreRefactorEntryPoints(t *testing.T) {
	params := core.DefaultParams()
	workloads := []struct {
		name string
		g    *graph.Graph
	}{
		{"figure5", graph.PaperFigure5()},
		{"rmat-sparse-16", rmat.MustGenerate(rmat.SparseParams(16, 7))},
	}
	reg := DefaultRegistry()
	for _, w := range workloads {
		prob, err := NewProblem(w.g, WithParams(params))
		if err != nil {
			t.Fatal(err)
		}
		for _, name := range reg.Names() {
			t.Run(w.name+"/"+name, func(t *testing.T) {
				want := directOutcome(t, name, w.g, params)
				rep, err := reg.Solve(context.Background(), name, prob)
				if want.err != nil {
					if err == nil {
						t.Fatalf("direct entry point failed (%v) but unified solve succeeded", want.err)
					}
					if err.Error() != want.err.Error() {
						t.Fatalf("error mismatch:\n  direct:  %v\n  unified: %v", want.err, err)
					}
					return
				}
				if err != nil {
					t.Fatalf("unified solve failed where direct succeeded: %v", err)
				}
				tol := 1e-9 * math.Max(1, math.Abs(want.value))
				if math.Abs(rep.FlowValue-want.value) > tol {
					t.Fatalf("flow value mismatch: direct %.12g, unified %.12g", want.value, rep.FlowValue)
				}
				if rep.Solver != name {
					t.Errorf("report names solver %q, want %q", rep.Solver, name)
				}
				if rep.ExactValue == 0 && want.value != 0 {
					t.Errorf("report is missing the exact reference value")
				}
			})
		}
	}
}

func TestNewProblemValidation(t *testing.T) {
	var verr *ValidationError
	if _, err := NewProblem(nil); err == nil || !errors.As(err, &verr) {
		t.Fatalf("nil graph: want *ValidationError, got %v", err)
	}
	bad := core.DefaultParams()
	bad.VflowMultiplier = -1
	if _, err := NewProblem(graph.PaperFigure5(), WithParams(bad)); err == nil || !errors.As(err, &verr) {
		t.Fatalf("bad params: want *ValidationError, got %v", err)
	}
	badDec := decompose.Options{MaxIterations: 0, StepSize: 1, Tolerance: 1}
	if _, err := NewProblem(graph.PaperFigure5(), WithDecomposeOptions(badDec)); err == nil || !errors.As(err, &verr) {
		t.Fatalf("bad decompose options: want *ValidationError, got %v", err)
	}
}

// TestSameSourceSinkRejectedTyped pins the fix for the silent-acceptance
// issue: an instance whose source equals its sink can only arrive through a
// parse (the in-memory constructors already reject it), and the problem
// constructor must surface the typed cause.
func TestSameSourceSinkRejectedTyped(t *testing.T) {
	dimacs := "p max 3 1\nn 1 s\nn 1 t\na 1 2 5\n"
	_, err := FromDIMACS(strings.NewReader(dimacs))
	if err == nil {
		t.Fatal("source == sink accepted")
	}
	var verr *ValidationError
	if !errors.As(err, &verr) {
		t.Fatalf("want *ValidationError, got %T: %v", err, err)
	}
	if !errors.Is(err, graph.ErrSameSourceSink) {
		t.Fatalf("want errors.Is(err, graph.ErrSameSourceSink), got %v", err)
	}
}

func TestFingerprint(t *testing.T) {
	p1, err := NewProblem(graph.PaperFigure5())
	if err != nil {
		t.Fatal(err)
	}
	p2, err := NewProblem(graph.PaperFigure5())
	if err != nil {
		t.Fatal(err)
	}
	if p1.Fingerprint() != p2.Fingerprint() {
		t.Errorf("same content, different fingerprints")
	}
	if p1.Fingerprint() != p1.Fingerprint() {
		t.Errorf("fingerprint not stable")
	}
	g := graph.PaperFigure5()
	caps := make([]float64, g.NumEdges())
	for i := range caps {
		caps[i] = g.Edge(i).Capacity
	}
	caps[0]++
	g2, err := g.WithCapacities(caps)
	if err != nil {
		t.Fatal(err)
	}
	p3, err := NewProblem(g2)
	if err != nil {
		t.Fatal(err)
	}
	if p3.Fingerprint() == p1.Fingerprint() {
		t.Errorf("different capacities, same fingerprint")
	}
	other := core.DefaultParams().WithLevels(10)
	p4, err := NewProblem(graph.PaperFigure5(), WithParams(other))
	if err != nil {
		t.Fatal(err)
	}
	if p4.Fingerprint() == p1.Fingerprint() {
		t.Errorf("different params, same fingerprint")
	}
	// The mode field is ignored by the backends (each forces its own), so it
	// must not fragment the cache key.
	modeParams := core.DefaultParams()
	modeParams.Mode = core.ModeCircuit
	p5, err := NewProblem(graph.PaperFigure5(), WithParams(modeParams))
	if err != nil {
		t.Fatal(err)
	}
	if p5.Fingerprint() != p1.Fingerprint() {
		t.Errorf("params.Mode fragmented the fingerprint")
	}
	// Function-valued hooks are not content-hashable: such problems must be
	// unique, never aliased.
	fp := core.DefaultParams()
	fp.Builder.PerturbResistance = func(r float64) float64 { return r }
	p6, err := NewProblem(graph.PaperFigure5(), WithParams(fp))
	if err != nil {
		t.Fatal(err)
	}
	p7, err := NewProblem(graph.PaperFigure5(), WithParams(fp))
	if err != nil {
		t.Fatal(err)
	}
	if p6.Fingerprint() == p1.Fingerprint() || p6.Fingerprint() == p7.Fingerprint() {
		t.Errorf("closure-carrying problems must have unique fingerprints")
	}
}

// TestPipelineArtifactsShared pins that the staged pipeline computes each
// artifact once: the prune stage's core graph is the same object every time
// and is the graph the quantize stage's Prepared bundle wraps.
func TestPipelineArtifactsShared(t *testing.T) {
	p, err := NewProblem(rmat.MustGenerate(rmat.SparseParams(32, 3)))
	if err != nil {
		t.Fatal(err)
	}
	c1, pr1 := p.STCore()
	c2, pr2 := p.STCore()
	if c1 != c2 || pr1 != pr2 {
		t.Fatalf("prune stage recomputed")
	}
	prep, err := p.Prepared()
	if err != nil {
		t.Fatal(err)
	}
	if prep.Core() != c1 {
		t.Errorf("Prepared did not reuse the shared s-t core")
	}
	prep2, err := p.Prepared()
	if err != nil {
		t.Fatal(err)
	}
	if prep2 != prep {
		t.Errorf("quantize stage recomputed")
	}
	v1, err := p.ExactValue(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	v2, err := p.ExactValue(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if v1 != v2 {
		t.Errorf("exact value changed between calls: %g vs %g", v1, v2)
	}
}

// TestContextCancellationReachesBackends verifies that an already-cancelled
// context aborts every backend with the context's error — the cancellation
// checks are threaded into the inner loops, not just the entry points.
func TestContextCancellationReachesBackends(t *testing.T) {
	prob, err := NewProblem(rmat.MustGenerate(rmat.SparseParams(64, 5)))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	reg := DefaultRegistry()
	for _, name := range reg.Names() {
		t.Run(name, func(t *testing.T) {
			// A fresh problem per backend keeps lazily cached artifacts
			// (exact value, prepared bundle) from masking the cancellation.
			p, err := NewProblem(prob.Graph())
			if err != nil {
				t.Fatal(err)
			}
			_, err = reg.Solve(ctx, name, p)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("want context.Canceled, got %v", err)
			}
		})
	}
}
