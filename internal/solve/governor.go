package solve

import (
	"sync"
	"sync/atomic"
	"time"

	"analogflow/internal/metrics"
)

// GovernorConfig configures the adaptive capacity governor.  The governor
// closes the observability loop: every tick it reads the admission queue
// (depth, sheds since the last tick) and the per-backend latency EMA, and
// adjusts two knobs within hard clamps — the effective worker-slot count
// (the admitter's capacity) and the effective Budget.MaxVertices the
// partition planner applies to budget-less problems.  Saturation grows
// workers and shrinks the substrate budget (smaller regions admit sooner);
// sustained slack walks both back toward their configured values.
type GovernorConfig struct {
	// Enabled starts the background loop.  Disabled, the service behaves
	// exactly as configured: fixed Workers, fixed Budget.
	Enabled bool
	// Interval is the tick period; <= 0 selects 500ms.
	Interval time.Duration
	// MinWorkers / MaxWorkers clamp the effective worker count; <= 0 select
	// the configured Workers and 4 × Workers respectively.
	MinWorkers int
	MaxWorkers int
	// MinBudgetVertices clamps how far saturation may shrink the effective
	// Budget.MaxVertices; <= 0 selects a quarter of the configured value.
	// Ignored when the service has no vertex budget.
	MinBudgetVertices int
	// TargetWait is the queue-wait the governor steers under: when queue
	// depth × the worst backend EMA ÷ capacity exceeds it, the pool is
	// saturated.  <= 0 selects 250ms.
	TargetWait time.Duration
}

// withDefaults resolves the zero fields against the service configuration.
func (g GovernorConfig) withDefaults(workers, budgetVertices int) GovernorConfig {
	if g.Interval <= 0 {
		g.Interval = 500 * time.Millisecond
	}
	if g.MinWorkers <= 0 {
		g.MinWorkers = workers
	}
	if g.MaxWorkers <= 0 {
		g.MaxWorkers = 4 * workers
	}
	if g.MaxWorkers < g.MinWorkers {
		g.MaxWorkers = g.MinWorkers
	}
	if g.MinBudgetVertices <= 0 && budgetVertices > 0 {
		g.MinBudgetVertices = budgetVertices / 4
		if g.MinBudgetVertices < 1 {
			g.MinBudgetVertices = 1
		}
	}
	if g.TargetWait <= 0 {
		g.TargetWait = 250 * time.Millisecond
	}
	return g
}

// governor is the service-embedded loop state.  The zero value is a
// disabled governor (every method is a no-op), so services built without
// one pay nothing.
type governor struct {
	cfg     GovernorConfig
	enabled bool

	lastSheds atomic.Int64

	workersGauge *metrics.Gauge
	budgetGauge  *metrics.Gauge
	adjustments  map[[2]string]*metrics.Counter

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// GovernorSnapshot is the governor view Stats exposes.
type GovernorSnapshot struct {
	Enabled bool `json:"enabled"`
	// EffectiveWorkers / EffectiveMaxVertices are the current knob values
	// (EffectiveMaxVertices is 0 when the service has no vertex budget);
	// Adjustments counts every raise or lower since start.
	EffectiveWorkers     int   `json:"effective_workers"`
	EffectiveMaxVertices int64 `json:"effective_max_vertices"`
	Adjustments          int64 `json:"adjustments"`
}

// startGovernor wires the governor's instruments and, when enabled, starts
// the tick loop.  Called from NewService.
func (s *Service) startGovernor(cfg GovernorConfig) {
	g := &s.gov
	g.cfg = cfg.withDefaults(s.workers, s.budget.MaxVertices)
	g.enabled = cfg.Enabled
	s.effMaxVertices.Store(int64(s.budget.MaxVertices))

	g.workersGauge = s.mreg.Gauge("analogflow_governor_effective_workers",
		"Worker-slot capacity the governor currently targets.", nil)
	g.workersGauge.Set(float64(s.workers))
	g.budgetGauge = s.mreg.Gauge("analogflow_governor_effective_budget_vertices",
		"Effective Budget.MaxVertices for budget-less problems (0 = no budget).", nil)
	g.budgetGauge.Set(float64(s.budget.MaxVertices))
	g.adjustments = make(map[[2]string]*metrics.Counter)
	for _, target := range []string{"workers", "budget_vertices"} {
		for _, dir := range []string{"raise", "lower"} {
			g.adjustments[[2]string{target, dir}] = s.mreg.Counter(
				"analogflow_governor_adjustments_total",
				"Governor knob adjustments by target and direction.",
				metrics.Labels{"target": target, "direction": dir})
		}
	}

	if !g.enabled {
		return
	}
	g.stop = make(chan struct{})
	g.done = make(chan struct{})
	go func() {
		defer close(g.done)
		t := time.NewTicker(g.cfg.Interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				s.governorTick()
			case <-g.stop:
				return
			}
		}
	}()
}

// Close stops the governor loop (idempotent; a no-op when disabled).  The
// service itself remains usable — Close only ends background adjustment.
func (s *Service) Close() {
	g := &s.gov
	if g.stop == nil {
		return
	}
	g.stopOnce.Do(func() {
		close(g.stop)
		<-g.done
	})
}

// governorTick runs one control step.  Exposed on the service (unexported)
// so tests can drive the loop deterministically without timers.
func (s *Service) governorTick() {
	g := &s.gov
	cfg := g.cfg

	sheds := s.shedRequests.Value()
	shedDelta := sheds - g.lastSheds.Swap(sheds)
	depth := s.adm.queueDepth()
	capacity := s.adm.capacityNow()
	busy := s.adm.busy()
	est := s.ema.maxEstimate()

	// Estimated wait for the last queued request: depth waves of the worst
	// backend latency spread over the current capacity.
	var estWait time.Duration
	if depth > 0 && est > 0 && capacity > 0 {
		estWait = time.Duration(float64(est) * float64(depth) / float64(capacity))
	}
	saturated := shedDelta > 0 || estWait > cfg.TargetWait
	relaxed := shedDelta == 0 && depth == 0 && busy < capacity

	switch {
	case saturated:
		// Grow aggressively (half the pool again, at least one slot): sheds
		// mean work is being refused right now.
		if next := clampInt(capacity+maxInt(1, capacity/2), cfg.MinWorkers, cfg.MaxWorkers); next > capacity {
			s.adm.resize(next)
			g.workersGauge.Set(float64(next))
			g.adjustments[[2]string{"workers", "raise"}].Inc()
		}
		// Shrink the substrate budget so oversized instances shard into
		// smaller regions that clear workers sooner.
		if cur := s.effMaxVertices.Load(); cur > 0 && cfg.MinBudgetVertices > 0 {
			if next := maxInt64(cur/2, int64(cfg.MinBudgetVertices)); next < cur {
				s.effMaxVertices.Store(next)
				g.budgetGauge.Set(float64(next))
				g.adjustments[[2]string{"budget_vertices", "lower"}].Inc()
			}
		}
	case relaxed:
		// Walk back one slot at a time: shrinking is cheap to undo, and slow
		// decay avoids oscillation against bursty arrivals.
		if next := clampInt(capacity-1, cfg.MinWorkers, cfg.MaxWorkers); next < capacity {
			s.adm.resize(next)
			g.workersGauge.Set(float64(next))
			g.adjustments[[2]string{"workers", "lower"}].Inc()
		}
		if cur := s.effMaxVertices.Load(); cur > 0 && cur < int64(s.budget.MaxVertices) {
			next := minInt64(cur*2, int64(s.budget.MaxVertices))
			s.effMaxVertices.Store(next)
			g.budgetGauge.Set(float64(next))
			g.adjustments[[2]string{"budget_vertices", "raise"}].Inc()
		}
	}
}

// snapshot builds the Stats view.  Safe on a zero-value governor.
func (g *governor) snapshot(s *Service) GovernorSnapshot {
	var adj int64
	for _, c := range g.adjustments {
		adj += c.Value()
	}
	return GovernorSnapshot{
		Enabled:              g.enabled,
		EffectiveWorkers:     s.adm.capacityNow(),
		EffectiveMaxVertices: s.effMaxVertices.Load(),
		Adjustments:          adj,
	}
}

// fanout is the per-batch concurrency limit: the configured Workers, or the
// governor's ceiling when it may grow the pool past them (the admitter
// still bounds actual execution at its current capacity).
func (s *Service) fanout() int {
	if s.gov.enabled && s.gov.cfg.MaxWorkers > s.workers {
		return s.gov.cfg.MaxWorkers
	}
	return s.workers
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func minInt64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
