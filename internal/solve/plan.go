package solve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"analogflow/internal/cluster"
	"analogflow/internal/core"
	"analogflow/internal/decompose"
	"analogflow/internal/graph"
)

// Budget describes the substrate capacity available to one monolithic solve —
// the planner's input.  An instance that exceeds the budget is sharded into
// overlapping regions (Section 6.4 dual decomposition) sized to fit it, each
// region solved by the requested backend.
type Budget struct {
	// MaxVertices is the largest instance a single monolithic solve may
	// take, measured on the original graph (the same quantity the analog
	// crossbar bounds); <= 0 means unbounded and disables the planner.
	MaxVertices int `json:"max_vertices,omitempty"`
	// MaxRegions caps how many regions the planner may shard into (the
	// island count of a clustered fabric); <= 0 selects 16.
	MaxRegions int `json:"max_regions,omitempty"`
	// Partitioner names the region partitioner: "bfs" (default) or
	// "cluster".
	Partitioner string `json:"partitioner,omitempty"`
}

// IsZero reports whether the budget imposes no constraint (planner disabled).
func (b Budget) IsZero() bool { return b.MaxVertices <= 0 }

// Validate checks the budget.  The partitioner name is checked even for a
// zero (planner-disabled) budget, so a typo surfaces instead of going inert.
func (b Budget) Validate() error {
	if _, err := decompose.PartitionerByName(b.Partitioner); err != nil {
		return err
	}
	if b.IsZero() {
		return nil
	}
	if b.MaxVertices < 2 {
		return fmt.Errorf("solve: budget max vertices must be at least 2, got %d", b.MaxVertices)
	}
	return nil
}

// maxRegions returns the region cap, defaulting to 16.
func (b Budget) maxRegions() int {
	if b.MaxRegions <= 0 {
		return 16
	}
	return b.MaxRegions
}

// BudgetFromArchitecture derives the planner budget of a clustered island
// fabric (Section 6.2): each region subproblem must fit one island's mesh,
// and the fabric's island count bounds how many regions can solve at once.
func BudgetFromArchitecture(a cluster.Architecture) Budget {
	return Budget{
		MaxVertices: a.IslandSize,
		MaxRegions:  a.Islands,
		Partitioner: decompose.ClusterPartitioner{}.Name(),
	}
}

// BudgetFromCrossbar derives the planner budget of a monolithic crossbar:
// one region per substrate pass, bounded by the array dimension.
func BudgetFromCrossbar(rows, cols int) Budget {
	n := rows
	if cols < n {
		n = cols
	}
	return Budget{MaxVertices: n}
}

// Plan is the planner's decision for one problem under one budget, exposed in
// the solve Report so clients can see how their instance was executed.
type Plan struct {
	// Sharded reports whether the instance was split into regions; a
	// monolithic plan leaves the remaining fields describing the (single
	// region) instance.
	Sharded bool `json:"sharded"`
	// Vertices is the instance size the decision was made on.
	Vertices int `json:"vertices"`
	// BudgetMaxVertices echoes the budget the decision honoured (0 when no
	// budget applied).
	BudgetMaxVertices int `json:"budget_max_vertices,omitempty"`
	// Regions is the region count of a sharded plan.
	Regions int `json:"regions,omitempty"`
	// Partitioner names the partitioner that produced the regions.
	Partitioner string `json:"partitioner,omitempty"`
	// RegionVertices lists |V| of each region subproblem (virtual terminals
	// included).  When a shallow or skewed instance cannot be cut into
	// budget-sized regions the planner ships the best partition it found;
	// oversized entries here are the signal.
	RegionVertices []int `json:"region_vertices,omitempty"`
	// OuterIterations, RegionSolves and RegionSkips describe the consensus
	// work of a sharded solve: outer iterations executed (a rejected warm
	// quick attempt included), region subproblems the oracle actually solved,
	// and clean regions replayed from carried state instead of re-solved.
	OuterIterations int `json:"outer_iterations,omitempty"`
	RegionSolves    int `json:"region_solves,omitempty"`
	RegionSkips     int `json:"region_skips,omitempty"`
	// WarmStart reports whether carried consensus state seeded the run;
	// Escalated whether the warm quick attempt was rejected (unconverged, or
	// outside the acceptance band against the exact reference) and the full
	// consensus re-ran on the still-warm region instances.
	WarmStart bool `json:"warm_start,omitempty"`
	Escalated bool `json:"escalated,omitempty"`
}

// planFor decides monolithic-vs-sharded execution for p under budget b and,
// for sharded plans, returns the partition to run.  The partition for a given
// (partitioner, regions) pair is memoised on the problem, so re-solves and
// concurrent requests share the work.
func planFor(p *Problem, b Budget) (*Plan, decompose.Partition, error) {
	n := p.Graph().NumVertices()
	plan := &Plan{Vertices: n}
	if b.IsZero() || n <= b.MaxVertices {
		return plan, decompose.Partition{}, nil
	}
	if err := b.Validate(); err != nil {
		return nil, decompose.Partition{}, err
	}
	pt, err := decompose.PartitionerByName(b.Partitioner)
	if err != nil {
		return nil, decompose.Partition{}, err
	}
	plan.BudgetMaxVertices = b.MaxVertices
	plan.Partitioner = pt.Name()

	// Start at the count that would fit with zero overlap and grow while
	// that SHRINKS the largest region, stopping as soon as every region
	// fits the budget or growth stops helping — overlap duplication, split
	// nodes and partitioner granularity can keep some regions above budget
	// on shallow hub-dominated instances, and piling on more regions there
	// only degrades the consensus without fitting anything.  The shipped
	// plan reports any oversized regions honestly.
	want := (n + b.MaxVertices - 1) / b.MaxVertices
	if want < 2 {
		want = 2
	}
	maxR := b.maxRegions()
	if want > maxR {
		want = maxR
	}
	var best decompose.Partition
	var bestSizes []int
	bestMax := 0
	stale := 0
	for k := want; k <= maxR; k++ {
		part, err := p.partitionInto(pt, k)
		if err != nil {
			return nil, decompose.Partition{}, err
		}
		sizes := regionSizes(part, p.Graph())
		maxSize := 0
		for _, s := range sizes {
			if s > maxSize {
				maxSize = s
			}
		}
		if best.NumRegions() == 0 || maxSize < bestMax {
			best, bestSizes, bestMax = part, sizes, maxSize
			stale = 0
		} else {
			stale++
		}
		if bestMax <= b.MaxVertices || stale >= 2 {
			break
		}
	}
	plan.Sharded = best.NumRegions() > 1
	plan.Regions = best.NumRegions()
	plan.RegionVertices = bestSizes
	if !plan.Sharded {
		// The partitioner collapsed to a single region (e.g. a shallow
		// instance); execution is monolithic after all.
		plan.BudgetMaxVertices = b.MaxVertices
		return plan, decompose.Partition{}, nil
	}
	return plan, best, nil
}

// regionSizes computes |V| of each region subproblem as the decomposition
// will build it: region members, plus the virtual terminals a region without
// the real source or sink gains, plus one out-half node per non-terminal
// overlap vertex (the split-vertex consensus gadget).
func regionSizes(part decompose.Partition, g *graph.Graph) []int {
	sizes := make([]int, part.NumRegions())
	for r, in := range part.In {
		count := 0
		for v, b := range in {
			if !b {
				continue
			}
			count++
			if v != g.Source() && v != g.Sink() {
				shared := 0
				for _, other := range part.In {
					if other[v] {
						shared++
					}
				}
				if shared > 1 {
					count++ // the ov_out half of the split
				}
			}
		}
		if !in[g.Source()] {
			count++
		}
		if !in[g.Sink()] {
			count++
		}
		sizes[r] = count
	}
	return sizes
}

// --- registry-backed region oracle ------------------------------------------

// regionOracle solves decomposition subproblems with a registry backend,
// keeping one warm instance per region across outer iterations: the region
// index is stable, the iteration-to-iteration retargeting is capacity-only,
// so a warm instance absorbs it through the same update path dynamic graphs
// use — the analog sessions re-stamp their pattern-frozen circuits (zero new
// symbolic factorizations after the first iteration), the CPU backends drain
// and re-augment their residual networks.
//
// The same mechanism extends across decomposition RUNS: a capacity-only
// update of the parent problem reaches each region as a capacity-only change
// of its subproblem graph (the partition depends only on adjacency, which
// capacity updates never touch), so an oracle carried from one SolveContext
// call to the next — the service's oracleCache does exactly that for sharded
// Service.Update chains — absorbs the next step's regions warm.  A region
// whose structure did change (a positivity flip moved its s-t core, or new
// capacities flipped a boundary-wiring decision) falls back to a cold rebuild
// of that region alone and the chain continues; coldRebuilds counts these.
type regionOracle struct {
	sol    Solver
	params core.Params

	mu      sync.Mutex
	regions map[int]*oracleRegion
	// coldRebuilds counts post-first-build instance reconstructions — the
	// warm-path regressions the planner tests pin to zero.
	coldRebuilds int

	// consensus is the decomposition state of this oracle's last sharded
	// solve (decompose.WarmState), carried across Service.Update steps by the
	// oracle cache so the next step can seed its outer loop instead of
	// re-running consensus from the structural relaxation.  baselineRelErr is
	// the relative error of the last FULL consensus run — the acceptance
	// reference for warm quick attempts (a warm result is only accepted while
	// it stays within a small band of what full consensus achieves on this
	// chain).  Both are touched only by the single solvePlanned run that has
	// claimed the oracle, never by concurrent region solves, so they ride
	// outside the mutex.
	consensus      *decompose.WarmState
	baselineRelErr float64
	hasBaseline    bool
}

// oracleRegion is the warm state of one region's solver chain.
type oracleRegion struct {
	prob *Problem
	inst Instance
}

// newRegionOracle builds an oracle around a backend and the parent problem's
// substrate parameters.
func newRegionOracle(sol Solver, params core.Params) *regionOracle {
	return &regionOracle{sol: sol, params: params, regions: make(map[int]*oracleRegion)}
}

// SolveRegion implements decompose.Oracle.  Calls for distinct regions may
// run concurrently (the decomposition fans them over the bounded pool); the
// outer loop serialises calls for the same region, so the per-region state
// needs no lock beyond the registry map's.
func (o *regionOracle) SolveRegion(ctx context.Context, region int, g *graph.Graph) (*graph.Flow, error) {
	o.mu.Lock()
	st := o.regions[region]
	if st == nil {
		st = &oracleRegion{}
		o.regions[region] = st
	}
	o.mu.Unlock()

	if st.prob == nil {
		prob, err := NewProblem(g, WithParams(o.params))
		if err != nil {
			return nil, err
		}
		st.prob = prob
	} else if upd, ok := capacityDiff(st.prob.Graph(), g); !ok {
		// The decomposition only retargets capacities; a structural change
		// means the caller handed us a different region — rebuild.
		o.noteRebuild(st)
		prob, err := NewProblem(g, WithParams(o.params))
		if err != nil {
			return nil, err
		}
		st.prob = prob
	} else if len(upd.Edges) > 0 {
		next, err := st.prob.WithUpdate(upd)
		if err != nil {
			return nil, err
		}
		if ui, isUpd := st.inst.(UpdatableInstance); isUpd {
			switch err := guardErr(o.sol.Name(), func() error { return ui.Update(next) }); {
			case err == nil:
			case errors.Is(err, ErrSolverPanic):
				// The panic may have left the warm instance half-retargeted;
				// drop it and fail this region — the whole sharded solve
				// fails and the service drops the claimed oracle.
				o.noteRebuild(st)
				return nil, err
			case errors.Is(err, ErrIncompatibleUpdate):
				// The warm state cannot absorb this retarget (e.g. the
				// region's quantized work graph changed shape); fall back to
				// a cold build for the new problem.
				o.noteRebuild(st)
			default:
				return nil, err
			}
		} else {
			o.noteRebuild(st)
		}
		st.prob = next
	}

	if st.inst == nil {
		if w, ok := o.sol.(Warmable); ok {
			inst, err := buildInstance(w, st.prob, true)
			if err != nil {
				return nil, err
			}
			st.inst = inst
		}
	}
	// Region solves run under the panic guard: a backend panic inside one
	// region becomes an ErrSolverPanic failure of that region (and so of the
	// whole sharded solve), not a process crash.  The region's warm instance
	// is poisoned by the panic — noteRebuild drops it and counts the cold
	// rebuild the region will pay if the (dropped-by-the-service) oracle is
	// ever solved on again.
	var rep *Report
	var err error
	if st.inst != nil {
		rep, err = guardSolve(o.sol.Name(), func() (*Report, error) { return st.inst.Solve(ctx) })
		if err != nil && errors.Is(err, ErrSolverPanic) {
			o.noteRebuild(st)
		}
	} else {
		rep, err = guardSolve(o.sol.Name(), func() (*Report, error) { return o.sol.Solve(ctx, st.prob) })
	}
	if err != nil {
		return nil, err
	}
	if rep.EdgeFlows == nil {
		return nil, fmt.Errorf("solve: backend %q reports no edge flows; it cannot serve as a region oracle", o.sol.Name())
	}
	return &graph.Flow{Value: rep.FlowValue, Edge: rep.EdgeFlows}, nil
}

// noteRebuild drops the region's warm instance and counts the cold rebuild
// (only when there was something warm to lose).
func (o *regionOracle) noteRebuild(st *oracleRegion) {
	if st.inst == nil {
		return
	}
	st.inst = nil
	o.mu.Lock()
	o.coldRebuilds++
	o.mu.Unlock()
}

// rebuilds returns how many times a warm region instance had to be rebuilt
// cold after its first construction.
func (o *regionOracle) rebuilds() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.coldRebuilds
}

// takeRebuilds returns the cold-rebuild count and resets it, so a caller
// reusing one oracle across solves can attribute rebuilds to the solve that
// caused them (the per-step warm/cold accounting of sharded update chains).
func (o *regionOracle) takeRebuilds() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	n := o.coldRebuilds
	o.coldRebuilds = 0
	return n
}

// engineStats collects the per-region MNA engine counters of analog-backed
// oracles, for the warm-region invariants the tests pin (region index order;
// regions without a circuit engine are skipped).
func (o *regionOracle) engineStats() map[int]struct {
	Factorizations, Refactorizations int
} {
	o.mu.Lock()
	defer o.mu.Unlock()
	out := make(map[int]struct{ Factorizations, Refactorizations int })
	for r, st := range o.regions {
		ai, ok := st.inst.(*analogInstance)
		if !ok {
			continue
		}
		stats, ok := ai.session().EngineStats()
		if !ok {
			continue
		}
		out[r] = struct{ Factorizations, Refactorizations int }{
			Factorizations:   stats.Factorizations,
			Refactorizations: stats.Refactorizations,
		}
	}
	return out
}

// capacityDiff compares two structurally identical graphs and returns the
// capacity update that transforms old into new.  ok is false when the graphs
// differ structurally: vertex count, terminals, edge endpoints — or parked
// flags, because a park/unpark changes which edges the region's s-t core
// keeps resident.  A structural parent update therefore reaches the region
// oracle as a per-region structural change of exactly the regions owning the
// touched edges (an appended edge changes the owner's edge count, a park flips
// the owner's flag), and SolveRegion rebuilds those regions cold while every
// untouched region — whose subproblem graph is byte-identical or differs only
// in boundary capacities — stays warm.
func capacityDiff(oldG, newG *graph.Graph) (graph.CapacityUpdate, bool) {
	if oldG.NumVertices() != newG.NumVertices() ||
		oldG.NumEdges() != newG.NumEdges() ||
		oldG.Source() != newG.Source() || oldG.Sink() != newG.Sink() {
		return graph.CapacityUpdate{}, false
	}
	var u graph.CapacityUpdate
	for i, n := 0, oldG.NumEdges(); i < n; i++ {
		eo, en := oldG.Edge(i), newG.Edge(i)
		if eo.From != en.From || eo.To != en.To || oldG.ParkedEdge(i) != newG.ParkedEdge(i) {
			return graph.CapacityUpdate{}, false
		}
		if eo.Capacity != en.Capacity {
			u.Edges = append(u.Edges, i)
			u.Capacities = append(u.Capacities, en.Capacity)
		}
	}
	return u, true
}

// warmQuickIterations bounds the outer loop of a warm quick attempt: a
// seeded consensus either settles within a few iterations (the common case —
// one dirty region, readings re-agree immediately) or it is cheaper to
// escalate to the full run than to grind the truncated one.
const warmQuickIterations = 8

// warmAcceptSlack widens the acceptance band for warm quick attempts: a warm
// result is accepted only while its relative error stays within this factor
// of what the last full consensus run achieved on the same chain.  Carried
// consensus allowances are binding, so a capacity increase can converge below
// the new optimum — the band (measured against the memoised exact reference
// the sharded reports compute anyway) is what catches that and forces the
// escalation the decompose.WarmState contract demands.
const warmAcceptSlack = 1.25

// solvePlanned executes a sharded plan: the dual decomposition of the
// problem's graph under the plan's partition, with the requested backend as
// the warm region oracle.  The report carries the backend's name and the
// plan, so clients see both what solved the regions and how the instance was
// split.  wrap, when non-nil, decorates the oracle (the service binds each
// region solve to a worker slot through it).  The caller owns the oracle: a
// fresh one makes the solve cold, one claimed from the oracle cache carries
// the previous solve's warm region instances — and the consensus state of
// the previous step — into this run.
//
// With carried consensus state the run is two-phase: a warm quick attempt
// seeds the outer loop from that state under a small iteration budget, and
// its result is accepted only if it converged AND lands inside the
// warmAcceptSlack band of the chain's full-consensus accuracy; otherwise the
// full consensus re-runs from the structural relaxation (still on the warm
// region instances, which absorb the retargets incrementally).  The full run
// refreshes the acceptance baseline; accepted quick attempts never do, so a
// drifting warm value cannot ratchet its own acceptance band.
func solvePlanned(ctx context.Context, sol Solver, p *Problem, plan *Plan, part decompose.Partition, workers int, wrap func(decompose.Oracle) decompose.Oracle, oracle *regionOracle) (*Report, error) {
	opts := p.DecomposeOptions()
	opts.Oracle = oracle
	if wrap != nil {
		opts.Oracle = wrap(oracle)
	}
	if workers > 0 {
		opts.Workers = workers
	}
	opts.CarryState = true
	start := time.Now()
	var res *decompose.Result
	warmStart, escalated := false, false
	quickIters, quickSolves, quickSkips := 0, 0, 0
	if oracle.consensus != nil {
		quick := opts
		quick.WarmState = oracle.consensus
		if quick.MaxIterations > warmQuickIterations {
			quick.MaxIterations = warmQuickIterations
		}
		qres, err := decompose.SolveContext(ctx, p.Graph(), part, quick)
		if err != nil {
			return nil, err
		}
		warmStart = qres.WarmStarted
		accept := qres.Converged
		if accept {
			exact, err := p.ExactValue(ctx)
			if err != nil {
				return nil, err
			}
			band := oracle.baselineRelErr*warmAcceptSlack + 1e-9
			if !oracle.hasBaseline {
				band = p.DecomposeOptions().Tolerance
			}
			accept = graph.RelativeError(qres.FlowValue, exact) <= band
		}
		if accept {
			res = qres
		} else {
			escalated = true
			quickIters = qres.Iterations
			quickSolves = qres.RegionSolves
			quickSkips = qres.RegionSkips
		}
	}
	if res == nil {
		full := opts
		full.WarmState = nil
		fres, err := decompose.SolveContext(ctx, p.Graph(), part, full)
		if err != nil {
			return nil, err
		}
		exact, err := p.ExactValue(ctx)
		if err != nil {
			return nil, err
		}
		oracle.baselineRelErr = graph.RelativeError(fres.FlowValue, exact)
		oracle.hasBaseline = true
		res = fres
	}
	oracle.consensus = res.State
	elapsed := time.Since(start)
	planned := *plan
	planned.Regions = res.Regions
	planned.RegionVertices = res.SubproblemSizes
	planned.OuterIterations = res.Iterations + quickIters
	planned.RegionSolves = res.RegionSolves + quickSolves
	planned.RegionSkips = res.RegionSkips + quickSkips
	planned.WarmStart = warmStart
	planned.Escalated = escalated
	rep := &Report{
		Solver:     sol.Name(),
		FlowValue:  res.FlowValue,
		Iterations: res.Iterations,
		Converged:  res.Converged,
		Plan:       &planned,
		WallTime:   elapsed,
	}
	if err := p.fillExact(ctx, rep); err != nil {
		return nil, err
	}
	return rep, nil
}
