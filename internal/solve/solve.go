// Package solve is the unified solver layer of analogflow: one stable
// Solve(ctx, *Problem) (*Report, error) interface over every max-flow
// substrate the repository implements — the analog behavioral and circuit
// models of internal/core, the classical CPU algorithms of internal/maxflow,
// the LP formulation of internal/lp and the dual decomposition of
// internal/decompose.
//
// The package has three layers:
//
//   - Problem / Pipeline: a validated instance plus a staged preprocessing
//     pipeline (parse → prune-to-s-t-core → quantize → optional decompose)
//     whose artifacts are computed lazily, exactly once, and shared by every
//     backend that solves the problem.
//   - Registry: a name-keyed registry of Solver implementations; the seven
//     built-in backends are available from DefaultRegistry.
//   - Service: a bounded-concurrency batch engine with per-fingerprint
//     instance caching, which keeps one warm core.Session (and hence one
//     warm mna.Engine) per cached problem so repeated solves hit the
//     numeric-only refactorization path of internal/mna.
//
// Every entry point takes a context.Context; cancellation is threaded down
// into the Newton iterations of the circuit engine, the augmenting-path
// loops of the combinatorial algorithms and the simplex pivot loop.
package solve

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"analogflow/internal/graph"
)

// Solver is one max-flow backend behind the unified interface.
type Solver interface {
	// Name is the registry key, e.g. "dinic" or "behavioral".
	Name() string
	// Describe returns a one-line human-readable description.
	Describe() string
	// Solve runs the backend on the problem.  Implementations must honour
	// context cancellation and must not mutate the problem's graph.
	Solve(ctx context.Context, p *Problem) (*Report, error)
}

// Instance is a warm, problem-bound solver created by a Warmable backend.
// Instances may cache arbitrary state between solves (preprocessing,
// circuits, factorisations); they serialise their own solves and are safe
// for concurrent use.
type Instance interface {
	Solve(ctx context.Context) (*Report, error)
}

// Warmable is implemented by backends that benefit from per-problem state
// reuse across repeated solves.  The batch service caches one Instance per
// (problem fingerprint, solver) pair.
type Warmable interface {
	Solver
	NewInstance(p *Problem) (Instance, error)
}

// ErrIncompatibleUpdate is returned by UpdatableInstance.Update when the
// target problem is not a capacity-only mutation the warm state can absorb
// (the s-t core or the quantized work graph changed structurally).  The
// service reacts by building a fresh instance for the target instead.
var ErrIncompatibleUpdate = errors.New("solve: update incompatible with warm instance state")

// ErrSlackExhausted is the structural-slack refinement of
// ErrIncompatibleUpdate: a structural insertion had to append a genuinely new
// edge (no parked slot with matching endpoints was left to reclaim), and the
// warm instance's frozen pattern has no position for it.  The service reacts
// like any incompatible update — one honest cold rebuild, counted in
// Stats.SlackExhaustedRebuilds, after which the chain continues warm —
// and errors.Is(err, ErrIncompatibleUpdate) holds.
var ErrSlackExhausted = fmt.Errorf("%w: structural slack exhausted", ErrIncompatibleUpdate)

// UpdatableInstance is an Instance that can absorb a capacity-only problem
// update in place, carrying its warm state (residual networks, circuits,
// factorisations, previous operating points) over to the updated problem.
// After a successful Update the instance answers Solve for the new problem;
// the caller owns re-keying any cache.  A structural change fails with
// ErrIncompatibleUpdate and leaves the instance bound to its old problem.
type UpdatableInstance interface {
	Instance
	Update(p *Problem) error
}

// UpdatableSolver is a Warmable whose purpose-built instances absorb
// capacity-only updates.  NewUpdatableInstance may construct differently from
// NewInstance (e.g. the circuit backend builds per-edge clamp sources), so
// the service uses it when an update chain starts cold.
type UpdatableSolver interface {
	Warmable
	NewUpdatableInstance(p *Problem) (UpdatableInstance, error)
}

// Report is the unified outcome of one solve — a superset of core.Result's
// metrics so that every backend can be compared field by field.  Fields that
// a backend does not produce are left at their zero value.
type Report struct {
	// Solver is the registry name of the backend that produced the report.
	Solver string `json:"solver"`
	// FlowValue is the flow value the backend reported, in original
	// capacity units.
	FlowValue float64 `json:"flow_value"`
	// ExactValue is the exact maximum flow of the instance (computed once
	// per problem with Dinic's algorithm on the s-t core) and RelativeError
	// the deviation of FlowValue from it.
	ExactValue    float64 `json:"exact_value"`
	RelativeError float64 `json:"relative_error"`
	// EdgeFlows is the per-edge flow on the original graph's edge indexing,
	// when the backend recovers one (the decomposition reports only a value).
	EdgeFlows []float64 `json:"edge_flows,omitempty"`
	// ConvergenceTime, ProgrammingTime, SubstratePower, Energy and Waves are
	// the analog-substrate metrics of core.Result (analog backends only).
	ConvergenceTime float64 `json:"convergence_time,omitempty"`
	ProgrammingTime float64 `json:"programming_time,omitempty"`
	SubstratePower  float64 `json:"substrate_power,omitempty"`
	Energy          float64 `json:"energy,omitempty"`
	Waves           int     `json:"waves,omitempty"`
	// PrunedVertices / PrunedEdges report the preprocessing reductions that
	// applied to the backend's input.
	PrunedVertices int `json:"pruned_vertices,omitempty"`
	PrunedEdges    int `json:"pruned_edges,omitempty"`
	// Iterations and Converged describe iterative backends (decompose: outer
	// multiplier updates; lp: simplex pivots; circuit: Newton iterations are
	// reported through Waves).
	Iterations int  `json:"iterations,omitempty"`
	Converged  bool `json:"converged,omitempty"`
	// Plan is the partition planner's decision when one was made — by the
	// decompose backend, or by the batch service routing an instance that
	// exceeds the configured substrate budget through the N-region
	// decomposition.  Nil when the solve ran without a planner.
	Plan *Plan `json:"plan,omitempty"`
	// WallTime is the host wall-clock duration of the solver proper —
	// backends stamp it around their core computation, excluding the
	// problem's shared lazy preprocessing and the exact-reference solve
	// that may run on the first request, so cross-backend timings compare
	// like for like.  It is the one non-deterministic field; comparisons of
	// otherwise identical runs must ignore it (Normalized strips it).
	WallTime time.Duration `json:"wall_time_ns"`
}

// Normalized returns a copy of the report with the non-deterministic
// wall-clock field zeroed, for report equality comparisons.
func (r *Report) Normalized() Report {
	cp := *r
	cp.WallTime = 0
	return cp
}

// flowReport converts a flow on the original graph into the common report
// fields shared by the exact backends.
func flowReport(name string, f *graph.Flow) *Report {
	return &Report{
		Solver:    name,
		FlowValue: f.Value,
		EdgeFlows: append([]float64(nil), f.Edge...),
	}
}

// ErrUnknownSolver is returned when a registry lookup fails; the error
// string names the missing solver.
var ErrUnknownSolver = errors.New("solve: unknown solver")

// Registry is a name-keyed set of solvers.  The zero value is unusable; use
// NewRegistry or DefaultRegistry.
type Registry struct {
	mu sync.RWMutex
	m  map[string]Solver
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{m: make(map[string]Solver)}
}

// DefaultRegistry returns a fresh registry with the seven built-in backends:
// behavioral, circuit, dinic, edmonds-karp, push-relabel, lp and decompose.
func DefaultRegistry() *Registry {
	r := NewRegistry()
	for _, s := range builtinSolvers() {
		if err := r.Register(s); err != nil {
			panic(err) // built-in names are unique by construction
		}
	}
	return r
}

// Register adds a solver under its name; duplicate names are rejected.
func (r *Registry) Register(s Solver) error {
	if s == nil || s.Name() == "" {
		return fmt.Errorf("solve: cannot register a nil or unnamed solver")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.m[s.Name()]; dup {
		return fmt.Errorf("solve: solver %q already registered", s.Name())
	}
	r.m[s.Name()] = s
	return nil
}

// Get returns the solver registered under name.
func (r *Registry) Get(name string) (Solver, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s, ok := r.m[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q (known: %v)", ErrUnknownSolver, name, r.namesLocked())
	}
	return s, nil
}

// Names returns the registered solver names in sorted order.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.namesLocked()
}

func (r *Registry) namesLocked() []string {
	names := make([]string, 0, len(r.m))
	for n := range r.m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Solve looks up the named solver, runs it and stamps the report with the
// solver name and wall time.  It is the convenience path for one-shot
// clients (cmd/maxflow); batch traffic should go through Service, which adds
// instance caching and bounded concurrency.
func (r *Registry) Solve(ctx context.Context, name string, p *Problem) (*Report, error) {
	s, err := r.Get(name)
	if err != nil {
		return nil, err
	}
	if p == nil {
		return nil, fmt.Errorf("solve: nil problem")
	}
	start := time.Now()
	rep, err := s.Solve(ctx, p)
	if err != nil {
		return nil, err
	}
	rep.Solver = s.Name()
	if rep.WallTime == 0 {
		rep.WallTime = time.Since(start)
	}
	return rep, nil
}
