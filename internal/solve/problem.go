package solve

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"io"
	"math"
	"sort"
	"sync/atomic"

	"analogflow/internal/core"
	"analogflow/internal/decompose"
	"analogflow/internal/graph"
)

// ValidationError is the typed error every Problem constructor returns for a
// structurally invalid instance or configuration.  It wraps the underlying
// cause (e.g. graph.ErrSameSourceSink), so errors.Is works through it.
type ValidationError struct {
	// Reason is a short description of what was invalid.
	Reason string
	// Err is the underlying cause, when one exists.
	Err error
}

func (e *ValidationError) Error() string {
	if e.Err != nil {
		return fmt.Sprintf("solve: invalid problem: %s: %v", e.Reason, e.Err)
	}
	return fmt.Sprintf("solve: invalid problem: %s", e.Reason)
}

// Unwrap exposes the cause to errors.Is / errors.As.
func (e *ValidationError) Unwrap() error { return e.Err }

// invalid builds a ValidationError.
func invalid(reason string, err error) *ValidationError {
	return &ValidationError{Reason: reason, Err: err}
}

// Problem is one validated max-flow instance plus the configuration every
// backend shares.  A Problem owns the staged preprocessing pipeline (see
// pipeline.go): its artifacts are computed lazily, exactly once, and shared
// by all backends that solve the problem.
//
// A Problem is immutable after construction and safe for concurrent use.
type Problem struct {
	g      *graph.Graph
	params core.Params
	dec    decompose.Options
	budget Budget

	pipe pipeline
}

// Option configures a Problem at construction time.
type Option func(*Problem)

// WithParams sets the analog-substrate parameters (quantization scheme,
// variation profile, crossbar, pruning flag).  The mode field is ignored:
// each analog backend forces its own mode.
func WithParams(p core.Params) Option {
	return func(pr *Problem) { pr.params = p }
}

// WithDecomposeOptions sets the options used by the "decompose" backend and
// by sharded (planner-routed) solves.
func WithDecomposeOptions(o decompose.Options) Option {
	return func(pr *Problem) { pr.dec = o }
}

// WithBudget sets the problem's substrate budget.  A non-zero budget makes
// the partition planner decide monolithic-vs-sharded execution for this
// problem: the decompose backend honours it directly, and the batch service
// routes any backend through the planner when the instance exceeds it.
func WithBudget(b Budget) Option {
	return func(pr *Problem) { pr.budget = b }
}

// NewProblem validates g and the configuration and returns the problem.
// All structural defects — a nil graph, a graph whose source equals its sink
// (graph.ErrSameSourceSink), out-of-range endpoints, negative capacities,
// inconsistent parameters — surface here as a *ValidationError, so backends
// can assume a well-formed instance.
func NewProblem(g *graph.Graph, opts ...Option) (*Problem, error) {
	p := &Problem{
		g:      g,
		params: core.DefaultParams(),
		dec:    decompose.DefaultOptions(),
	}
	for _, opt := range opts {
		opt(p)
	}
	if g == nil {
		return nil, invalid("nil graph", nil)
	}
	if err := g.Validate(); err != nil {
		return nil, invalid("graph validation failed", err)
	}
	if err := p.params.Validate(); err != nil {
		return nil, invalid("substrate parameters", err)
	}
	if err := p.dec.Validate(); err != nil {
		return nil, invalid("decompose options", err)
	}
	if err := p.budget.Validate(); err != nil {
		return nil, invalid("substrate budget", err)
	}
	return p, nil
}

// WithUpdate derives the problem that results from applying a validated
// capacity-only update to this one.  The receiver is never mutated: the graph
// is cloned (one allocation pass) and patched, so in-flight solves of the old
// problem stay valid and a session can keep a whole chain of problems alive.
//
// Three artifacts are carried over instead of recomputed:
//
//   - The fingerprint is chained — hash(base fingerprint, update) — so
//     deriving it costs O(|update|) instead of re-hashing the whole edge
//     list.  Two identical chains share a fingerprint; a chained problem
//     deliberately does not alias the fingerprint of a from-scratch problem
//     with equal content, which keeps a warm update chain's cache entries
//     separate from cold solves of the same instance.
//
//   - When no capacity crossed zero, the s-t core of the base problem is
//     structurally valid for the update (pruning depends on capacities only
//     through positivity), so the prune stage is seeded with a
//     capacity-patched copy of the base core instead of re-running the
//     reachability passes.
//
//   - The memoised partitions are inherited unconditionally: a capacity
//     update never changes adjacency, so BFS partitions are identical by
//     construction, and for the capacity-aware cluster partitioner the
//     inheritance deliberately freezes the chain's decomposition — a warm
//     sharded update chain keeps the region structure its cached per-region
//     instances were built for instead of re-clustering on drifted
//     capacities every step.
func (p *Problem) WithUpdate(u graph.CapacityUpdate) (*Problem, error) {
	if err := u.Validate(p.g); err != nil {
		return nil, invalid("capacity update", err)
	}
	g2 := p.g.Clone()
	rec, err := g2.ApplyCapacityUpdate(u)
	if err != nil {
		return nil, invalid("capacity update", err)
	}
	p2 := &Problem{g: g2, params: p.params, dec: p.dec, budget: p.budget}

	// Chained fingerprint.
	base := p.Fingerprint()
	h := sha256.New()
	h.Write([]byte(base))
	var buf [8]byte
	order := make([]int, len(u.Edges))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return u.Edges[order[a]] < u.Edges[order[b]] })
	for _, k := range order {
		binary.LittleEndian.PutUint64(buf[:], uint64(u.Edges[k]))
		h.Write(buf[:])
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(u.Capacities[k]))
		h.Write(buf[:])
	}
	fp := hex.EncodeToString(h.Sum(nil)[:16])
	p2.pipe.fpOnce.Do(func() { p2.pipe.fp = fp })

	// Prune-stage reuse: positivity unchanged ⇒ the core's vertex and edge
	// sets are unchanged, only capacity values moved.
	if !rec.PositivityChanged && p.params.PruneGraph {
		_, pr := p.STCore()
		if pr != nil {
			newCaps := make([]float64, len(pr.EdgeMap))
			for i, orig := range pr.EdgeMap {
				newCaps[i] = g2.Edge(orig).Capacity
			}
			core2, err := pr.Graph.WithCapacities(newCaps)
			if err != nil {
				return nil, invalid("capacity update", err)
			}
			pr2 := &graph.PruneResult{
				Graph:           core2,
				EdgeMap:         pr.EdgeMap,
				VertexMap:       pr.VertexMap,
				RemovedEdges:    pr.RemovedEdges,
				RemovedVertices: pr.RemovedVertices,
			}
			p2.pipe.pruneOnce.Do(func() {
				p2.pipe.prune = pr2
				p2.pipe.coreG = core2
			})
		}
	}

	// Partition inheritance (see the doc comment above).  Partitions are
	// immutable once memoised, so sharing the values is safe; the map is
	// copied so the two problems' memos grow independently.
	p.pipe.partMu.Lock()
	if len(p.pipe.parts) > 0 {
		p2.pipe.parts = make(map[partKey]decompose.Partition, len(p.pipe.parts))
		for k, v := range p.pipe.parts {
			p2.pipe.parts[k] = v
		}
	}
	p.pipe.partMu.Unlock()
	return p2, nil
}

// WithStructuralUpdate derives the problem that results from applying a
// validated topology update — edge insertions and removals — to this one.
// Like WithUpdate, the receiver is never mutated: the graph is cloned and
// patched, so in-flight solves of the old problem stay valid and a session can
// keep a whole chain of problems alive.
//
// Removals park their edges (capacity 0, slot resident); insertions reclaim a
// parked slot with matching endpoints when one exists and append a genuinely
// new edge otherwise (see graph.ApplyStructuralUpdate).  Two artifacts are
// carried over:
//
//   - The fingerprint is chained — hash(base fingerprint, update) — exactly
//     like WithUpdate's, under a distinct domain tag so a structural step can
//     never alias a capacity step of equal bytes.
//
//   - The memoised partitions are inherited: partitions assign vertices to
//     regions and a structural update never adds vertices, so every inherited
//     partition remains a valid cover.  This deliberately freezes the chain's
//     decomposition — the regions owning touched edges rebuild cold inside the
//     claimed oracle (Stats.RegionColdRebuilds) while every untouched region
//     keeps its warm instance and consensus state, which is the selective
//     invalidation sharded structural steps need.
//
// The prune stage is NOT seeded: topology moved, so the s-t core must be
// recomputed from scratch (a park can strand a branch, an insertion can revive
// one).
func (p *Problem) WithStructuralUpdate(u graph.StructuralUpdate) (*Problem, error) {
	if err := u.Validate(p.g); err != nil {
		return nil, invalid("structural update", err)
	}
	g2 := p.g.Clone()
	if _, err := g2.ApplyStructuralUpdate(u); err != nil {
		return nil, invalid("structural update", err)
	}
	p2 := &Problem{g: g2, params: p.params, dec: p.dec, budget: p.budget}

	// Chained fingerprint.  Removals are order-insensitive (sorted);
	// insertions are hashed in order, because append order decides the new
	// edges' indices.
	base := p.Fingerprint()
	h := sha256.New()
	h.Write([]byte(base))
	h.Write([]byte("|structural"))
	var buf [8]byte
	writeInt := func(v int) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	removed := append([]int(nil), u.RemoveEdges...)
	sort.Ints(removed)
	writeInt(len(removed))
	for _, e := range removed {
		writeInt(e)
	}
	writeInt(len(u.AddEdges))
	for _, e := range u.AddEdges {
		writeInt(e.From)
		writeInt(e.To)
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(e.Capacity))
		h.Write(buf[:])
	}
	fp := hex.EncodeToString(h.Sum(nil)[:16])
	p2.pipe.fpOnce.Do(func() { p2.pipe.fp = fp })

	// Partition inheritance (see the doc comment above).
	p.pipe.partMu.Lock()
	if len(p.pipe.parts) > 0 {
		p2.pipe.parts = make(map[partKey]decompose.Partition, len(p.pipe.parts))
		for k, v := range p.pipe.parts {
			p2.pipe.parts[k] = v
		}
	}
	p.pipe.partMu.Unlock()
	return p2, nil
}

// StructuralSlack returns the number of parked edge slots the problem's graph
// currently carries — the pool of structurally resident positions a future
// insertion can reclaim as a pure value-level update.  An insertion whose
// endpoints match no parked slot appends instead, which warm circuit state
// cannot absorb (ErrSlackExhausted → one cold rebuild).
func (p *Problem) StructuralSlack() int { return p.g.NumParked() }

// FromDIMACS is the parse stage of the pipeline for on-the-wire instances:
// it reads a DIMACS max-flow instance and validates it into a Problem.
func FromDIMACS(r io.Reader, opts ...Option) (*Problem, error) {
	g, err := graph.ReadDIMACS(r)
	if err != nil {
		return nil, invalid("DIMACS parse failed", err)
	}
	return NewProblem(g, opts...)
}

// Graph returns the problem's graph.  Callers must not mutate it.
func (p *Problem) Graph() *graph.Graph { return p.g }

// Params returns the analog-substrate parameters.
func (p *Problem) Params() core.Params { return p.params }

// DecomposeOptions returns the decomposition backend's options.
func (p *Problem) DecomposeOptions() decompose.Options { return p.dec }

// Budget returns the problem's substrate budget (zero when unset).
func (p *Problem) Budget() Budget { return p.budget }

// fingerprintNonce makes problems carrying non-content-hashable
// configuration (function-valued hooks) unique instead of wrongly shared.
var fingerprintNonce atomic.Int64

// Fingerprint returns a content hash identifying the problem for instance
// caching: two problems with the same graph (vertices, terminals, edge list
// with capacities) and the same configuration share a fingerprint.  The
// configuration part hashes the rendered parameter struct, so it is stable
// within a process — which is all the in-memory instance cache needs.
// Function-valued hooks (builder.Options.PerturbResistance) have no
// comparable content; a problem carrying one gets a process-unique
// fingerprint so the warm-instance cache can never alias two different
// perturbation closures.
func (p *Problem) Fingerprint() string {
	p.pipe.fpOnce.Do(func() {
		h := sha256.New()
		var buf [8]byte
		writeInt := func(v int) {
			binary.LittleEndian.PutUint64(buf[:], uint64(v))
			h.Write(buf[:])
		}
		writeFloat := func(f float64) {
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(f))
			h.Write(buf[:])
		}
		writeInt(p.g.NumVertices())
		writeInt(p.g.Source())
		writeInt(p.g.Sink())
		writeInt(p.g.NumEdges())
		for i := 0; i < p.g.NumEdges(); i++ {
			e := p.g.Edge(i)
			writeInt(e.From)
			writeInt(e.To)
			writeFloat(e.Capacity)
		}
		// Parked slots are structurally resident but carry no flow; a parked
		// edge and an ordinary capacity-0 edge hash identically above, yet
		// their instances differ (the slot survives pruning and reserves a
		// pattern position), so the parked set joins the hash.
		if np := p.g.NumParked(); np > 0 {
			writeInt(np)
			for _, i := range p.g.ParkedEdges() {
				writeInt(i)
			}
		}
		params := p.params
		// The mode field is ignored by WithParams (each analog backend
		// forces its own); hashing it would fragment the warm-instance
		// cache between otherwise identical problems.
		params.Mode = core.ModeBehavioral
		if params.Builder.PerturbResistance != nil {
			// %+v would render the closure as a heap address, which both
			// defeats sharing and — worse — could alias after reuse.
			params.Builder.PerturbResistance = nil
			fmt.Fprintf(h, "|uniq:%d", fingerprintNonce.Add(1))
		}
		fmt.Fprintf(h, "|params:%+v", params)
		// Workers is excluded: the serial==concurrent identity makes it
		// result-invisible, so hashing it would only fragment the cache.
		fmt.Fprintf(h, "|dec:%d:%g:%g:%d", p.dec.MaxIterations, p.dec.StepSize, p.dec.Tolerance,
			p.dec.NumRegions())
		if p.dec.Oracle != nil {
			// A custom oracle is function-valued configuration with no
			// comparable content; like PerturbResistance, it gets a
			// process-unique fingerprint so the warm-instance cache can never
			// alias two different oracles.
			fmt.Fprintf(h, "|oracle-uniq:%d", fingerprintNonce.Add(1))
		}
		fmt.Fprintf(h, "|budget:%d:%d:%s", p.budget.MaxVertices, p.budget.MaxRegions, p.budget.Partitioner)
		p.pipe.fp = hex.EncodeToString(h.Sum(nil)[:16])
	})
	return p.pipe.fp
}
