// Fault-injection matrix: drives the internal/faultinject harness through
// the service's failure domains and pins the isolation contracts — a backend
// panic becomes a typed error for exactly that caller, poisoned warm state is
// dropped (never served again), and the process-level counters account for
// every incident.  Lives in package solve_test because faultinject imports
// solve.
package solve_test

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"

	"analogflow/internal/decompose"
	"analogflow/internal/faultinject"
	"analogflow/internal/graph"
	"analogflow/internal/rmat"
	"analogflow/internal/solve"
)

// faultyService builds a service whose sole backend is the real "dinic"
// solver wrapped by a fault injector, preserving its warmable/updatable
// capability surface.
func faultyService(t *testing.T, inj *faultinject.Injector, cfg solve.Config) *solve.Service {
	t.Helper()
	inner, err := solve.DefaultRegistry().Get("dinic")
	if err != nil {
		t.Fatal(err)
	}
	reg := solve.NewRegistry()
	if err := reg.Register(faultinject.WrapSolver(inner, inj)); err != nil {
		t.Fatal(err)
	}
	cfg.Registry = reg
	return solve.NewService(cfg)
}

func figure5SolveProblem(t *testing.T) *solve.Problem {
	t.Helper()
	p, err := solve.NewProblem(graph.PaperFigure5())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestFaultPanicFlatWarmChain pins the flat-cache isolation contract: a
// panic inside a warm instance surfaces as ErrSolverPanic carrying the
// backend name and a stack, the poisoned instance is evicted, and the next
// solve of the same fingerprint rebuilds cold and produces the original
// value — the process never stops serving.
func TestFaultPanicFlatWarmChain(t *testing.T) {
	inj := faultinject.New(faultinject.Plan{})
	svc := faultyService(t, inj, solve.Config{Workers: 1})
	prob := figure5SolveProblem(t)

	rep, err := svc.Solve(context.Background(), solve.Request{Solver: "dinic", Problem: prob})
	if err != nil {
		t.Fatal(err)
	}
	want := rep.FlowValue
	if got := svc.Stats().CachedInstances; got != 1 {
		t.Fatalf("warm cache holds %d instances after base solve, want 1", got)
	}

	inj.SetPlan(faultinject.Plan{PanicOnSolve: int(inj.Calls()) + 1})
	_, err = svc.Solve(context.Background(), solve.Request{Solver: "dinic", Problem: prob})
	if !errors.Is(err, solve.ErrSolverPanic) {
		t.Fatalf("want ErrSolverPanic, got %v", err)
	}
	var pe *solve.SolverPanicError
	if !errors.As(err, &pe) {
		t.Fatalf("error %v carries no *SolverPanicError", err)
	}
	if pe.Solver != "dinic" {
		t.Errorf("panic attributed to %q, want dinic", pe.Solver)
	}
	if len(pe.Stack) == 0 || !strings.Contains(string(pe.Stack), "faultinject") {
		t.Errorf("panic stack does not reach the faulting frame:\n%s", pe.Stack)
	}
	st := svc.Stats()
	if st.SolverPanics != 1 {
		t.Errorf("solver_panics = %d, want 1", st.SolverPanics)
	}
	if st.CachedInstances != 0 {
		t.Errorf("poisoned instance still cached (%d entries)", st.CachedInstances)
	}

	inj.SetPlan(faultinject.Plan{})
	missesBefore := st.CacheMisses
	rep, err = svc.Solve(context.Background(), solve.Request{Solver: "dinic", Problem: prob})
	if err != nil {
		t.Fatalf("post-panic solve failed: %v", err)
	}
	if rep.FlowValue != want {
		t.Errorf("post-panic value %v, want %v", rep.FlowValue, want)
	}
	if st = svc.Stats(); st.CacheMisses != missesBefore+1 {
		t.Errorf("post-panic solve was not a cold cache miss (misses %d -> %d)",
			missesBefore, st.CacheMisses)
	}
}

// bumpUpdate builds a warm-compatible capacity step: pure increases on a few
// non-terminal edges never cross zero, so they are capacity-only from every
// region's point of view.
func bumpUpdate(p *solve.Problem, k int) graph.CapacityUpdate {
	g := p.Graph()
	edges := g.Edges()
	var u graph.CapacityUpdate
	for i := 0; i < len(edges) && len(u.Edges) < 3; i++ {
		idx := (i*7 + k*13) % len(edges)
		e := edges[idx]
		if e.From == g.Source() || e.To == g.Source() || e.From == g.Sink() || e.To == g.Sink() {
			continue
		}
		dup := false
		for _, seen := range u.Edges {
			if seen == idx {
				dup = true
			}
		}
		if dup {
			continue
		}
		u.Edges = append(u.Edges, idx)
		u.Capacities = append(u.Capacities, e.Capacity+5)
	}
	return u
}

// TestFaultPanicMidShardedUpdateChain is the acceptance scenario: a backend
// panic in the middle of a sharded warm update chain (a) surfaces as
// ErrSolverPanic to that caller, (b) drops the claimed region oracle so the
// cache is clean, (c) is accounted by solver_panics and region_cold_rebuilds,
// and (d) the next solve of the same fingerprint runs cold, sharded and
// value-correct.
func TestFaultPanicMidShardedUpdateChain(t *testing.T) {
	g := rmat.MustGenerate(rmat.SparseParams(200, 3))
	inj := faultinject.New(faultinject.Plan{})
	svc := faultyService(t, inj, solve.Config{Workers: 2, Budget: solve.Budget{MaxVertices: 80}})
	prob, err := solve.NewProblem(g)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := svc.Solve(context.Background(), solve.Request{Solver: "dinic", Problem: prob})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Plan == nil || !rep.Plan.Sharded {
		t.Fatalf("base solve not sharded: %+v", rep.Plan)
	}
	if got := svc.Stats().CachedOracles; got != 1 {
		t.Fatalf("cached_oracles = %d after base solve, want 1", got)
	}

	// Warm the chain with one clean step so the panic lands mid-chain, on a
	// claimed oracle, not on the cold base solve.
	res, err := svc.Update(context.Background(), solve.UpdateRequest{
		Solver: "dinic", Problem: prob, Update: bumpUpdate(prob, 0),
	})
	if err != nil {
		t.Fatalf("warm-up step: %v", err)
	}
	if !res.Warm {
		t.Fatalf("warm-up step ran cold")
	}
	prob = res.Problem

	// Arm: the very next guarded solve — the first region re-solve of the
	// next update step — panics.
	inj.SetPlan(faultinject.Plan{PanicOnSolve: int(inj.Calls()) + 1})
	_, err = svc.Update(context.Background(), solve.UpdateRequest{
		Solver: "dinic", Problem: prob, Update: bumpUpdate(prob, 1),
	})
	if !errors.Is(err, solve.ErrSolverPanic) {
		t.Fatalf("mid-chain panic surfaced as %v, want ErrSolverPanic", err)
	}
	var pe *solve.SolverPanicError
	if !errors.As(err, &pe) || pe.Solver != "dinic" {
		t.Fatalf("panic error %v not attributed to dinic", err)
	}
	st := svc.Stats()
	if st.SolverPanics != 1 {
		t.Errorf("solver_panics = %d, want 1", st.SolverPanics)
	}
	if st.CachedOracles != 0 {
		t.Errorf("claimed oracle not dropped after panic: cached_oracles = %d", st.CachedOracles)
	}
	if st.RegionColdRebuilds < 1 {
		t.Errorf("region_cold_rebuilds = %d, want >= 1 (the panicked region)", st.RegionColdRebuilds)
	}

	// The cache is clean: re-solving the chain's fingerprint rebuilds cold,
	// still sharded, and converges to a correct value.
	inj.SetPlan(faultinject.Plan{})
	rep, err = svc.Solve(context.Background(), solve.Request{Solver: "dinic", Problem: prob})
	if err != nil {
		t.Fatalf("post-panic cold solve failed: %v", err)
	}
	if rep.Plan == nil || !rep.Plan.Sharded {
		t.Fatalf("post-panic solve not sharded: %+v", rep.Plan)
	}
	if rep.RelativeError > 0.25 {
		t.Errorf("post-panic solve %.2f vs exact %.2f (%.0f%% error)",
			rep.FlowValue, rep.ExactValue, 100*rep.RelativeError)
	}
	if got := svc.Stats().CachedOracles; got != 1 {
		t.Errorf("cold re-solve did not republish the oracle: cached_oracles = %d", got)
	}
}

// TestFaultCancelMidChain pins the context fault: a cancellation fired just
// before a solve runs surfaces as context.Canceled — not as a panic, not as
// an overload — and the service serves the next request normally.
func TestFaultCancelMidChain(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	inj := faultinject.New(faultinject.Plan{CancelOnSolve: 1, Cancel: cancel})
	svc := faultyService(t, inj, solve.Config{Workers: 1})
	prob := figure5SolveProblem(t)

	_, err := svc.Solve(ctx, solve.Request{Solver: "dinic", Problem: prob})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	st := svc.Stats()
	if st.SolverPanics != 0 || st.ShedRequests != 0 {
		t.Errorf("cancellation miscounted: panics=%d shed=%d", st.SolverPanics, st.ShedRequests)
	}
	if _, err := svc.Solve(context.Background(), solve.Request{Solver: "dinic", Problem: prob}); err != nil {
		t.Fatalf("post-cancel solve failed: %v", err)
	}
}

// TestFaultInjectedError pins the plain-error fault: the Nth solve fails
// with ErrInjected, counted as an ordinary error (no panic, no shed), and
// the next solve succeeds.
func TestFaultInjectedError(t *testing.T) {
	inj := faultinject.New(faultinject.Plan{ErrorOnSolve: 1})
	svc := faultyService(t, inj, solve.Config{Workers: 1})
	prob := figure5SolveProblem(t)

	_, err := svc.Solve(context.Background(), solve.Request{Solver: "dinic", Problem: prob})
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("want ErrInjected, got %v", err)
	}
	st := svc.Stats()
	if st.Errors != 1 || st.SolverPanics != 0 {
		t.Errorf("errors=%d panics=%d after injected error, want 1/0", st.Errors, st.SolverPanics)
	}
	if _, err := svc.Solve(context.Background(), solve.Request{Solver: "dinic", Problem: prob}); err != nil {
		t.Fatalf("second solve failed: %v", err)
	}
}

// TestFaultRegionOracle drives WrapOracle against the raw decompose fan-out:
// an injected region error propagates wrapped (errors.Is reaches ErrInjected
// through the region attribution), an injected region panic is contained by
// the fan-out's own recover, and a clean plan converges to the exact value.
func TestFaultRegionOracle(t *testing.T) {
	g := rmat.MustGenerate(rmat.SparseParams(120, 5))
	part := decompose.BisectByBFS(g)
	opts := decompose.DefaultOptions()

	t.Run("error", func(t *testing.T) {
		inj := faultinject.New(faultinject.Plan{
			Regions: []faultinject.RegionFault{{Region: 1, Call: 1, Mode: faultinject.ModeError}},
		})
		opts := opts
		opts.Oracle = faultinject.WrapOracle(decompose.ExactOracle(), inj)
		_, err := decompose.SolveContext(context.Background(), g, part, opts)
		if !errors.Is(err, faultinject.ErrInjected) {
			t.Fatalf("want ErrInjected through region attribution, got %v", err)
		}
		if !strings.Contains(err.Error(), "region 1") {
			t.Errorf("error %v does not name the faulted region", err)
		}
	})

	t.Run("panic", func(t *testing.T) {
		inj := faultinject.New(faultinject.Plan{
			Regions: []faultinject.RegionFault{{Region: 0, Call: 1, Mode: faultinject.ModePanic}},
		})
		opts := opts
		opts.Oracle = faultinject.WrapOracle(decompose.ExactOracle(), inj)
		_, err := decompose.SolveContext(context.Background(), g, part, opts)
		if err == nil || !strings.Contains(err.Error(), "oracle panicked") {
			t.Fatalf("raw-oracle panic not contained by the fan-out: %v", err)
		}
	})

	t.Run("clean", func(t *testing.T) {
		inj := faultinject.New(faultinject.Plan{})
		ref, err := decompose.SolveContext(context.Background(), g, part, opts)
		if err != nil {
			t.Fatal(err)
		}
		opts := opts
		opts.Oracle = faultinject.WrapOracle(decompose.ExactOracle(), inj)
		got, err := decompose.SolveContext(context.Background(), g, part, opts)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got.FlowValue-ref.FlowValue) > 1e-9 {
			t.Errorf("wrapped oracle changed the result: %v vs %v", got.FlowValue, ref.FlowValue)
		}
		if inj.Calls() != 0 {
			// WrapOracle routes through beforeRegion, not beforeSolve; the
			// solve counter must not move.
			t.Errorf("region wrapper consumed %d solve counts", inj.Calls())
		}
	})
}
