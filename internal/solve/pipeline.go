package solve

import (
	"context"
	"sync"
	"sync/atomic"

	"analogflow/internal/core"
	"analogflow/internal/decompose"
	"analogflow/internal/graph"
	"analogflow/internal/maxflow"
)

// pipeline holds the staged preprocessing artifacts of a Problem.  The
// stages mirror how an instance travels toward a substrate:
//
//	parse      — done by the Problem constructor / the FromDIMACS helper
//	prune      — reduce to the s-t core (stage shared by every backend)
//	quantize   — map capacities onto voltage levels (analog backends; the
//	             core.Prepared bundle also re-runs the fused prune on the
//	             quantized capacities)
//	decompose  — split into overlapping regions (decompose backend only)
//
// Each artifact is computed lazily, exactly once, under its own sync.Once,
// and then shared: the CPU backends solve on the pruned core, the exact
// reference value is computed on the same core, and the two analog backends
// share one core.Prepared built from the same prune result.
type pipeline struct {
	pruneOnce sync.Once
	prune     *graph.PruneResult // nil when pruning is disabled
	coreG     *graph.Graph

	prepOnce  sync.Once
	prep      *core.Prepared
	prepErr   error
	prepBuilt atomic.Pointer[core.Prepared] // set inside prepOnce; lock-free "is it built yet" probe

	exactMu   sync.Mutex
	exactDone bool
	exact     float64

	partMu sync.Mutex
	parts  map[partKey]decompose.Partition

	fpOnce sync.Once
	fp     string
}

// partKey identifies one memoised partition: which partitioner produced it
// and how many regions were requested.
type partKey struct {
	partitioner string
	regions     int
}

// STCore returns the prune stage's output: the s-t core of the graph and the
// prune mapping needed to expand core-domain flows back to the original edge
// indexing.  When the problem's parameters disable pruning the original
// graph is returned with a nil mapping.
func (p *Problem) STCore() (*graph.Graph, *graph.PruneResult) {
	p.pipe.pruneOnce.Do(func() {
		if !p.params.PruneGraph {
			p.pipe.coreG = p.g
			return
		}
		p.pipe.prune = graph.PruneToSTCore(p.g)
		p.pipe.coreG = p.pipe.prune.Graph
	})
	return p.pipe.coreG, p.pipe.prune
}

// Prepared returns the quantize stage's output: the substrate preprocessing
// bundle of internal/core (prune + voltage quantization + fused re-prune),
// built once from the shared prune artifact and reused by both analog
// backends and by every cached warm instance.
func (p *Problem) Prepared() (*core.Prepared, error) {
	p.pipe.prepOnce.Do(func() {
		_, pr := p.STCore()
		p.pipe.prep, p.pipe.prepErr = core.PrepareWithCore(p.g, pr, p.params)
		if p.pipe.prep != nil {
			// Publish the bundle BEFORE the seed check: together with the
			// post-compute re-check in ExactValue, the exactMu ordering then
			// guarantees that whichever of {this seed check, a concurrent
			// pipeline-memo computation} runs second sees the other's work,
			// so the two memos can never both stay cold.
			p.pipe.prepBuilt.Store(p.pipe.prep)
			p.pipe.exactMu.Lock()
			if p.pipe.exactDone {
				p.pipe.prep.SeedExactValue(p.pipe.exact)
			}
			p.pipe.exactMu.Unlock()
		}
	})
	return p.pipe.prep, p.pipe.prepErr
}

// ExactValue returns the exact maximum flow of the instance, computed once
// with Dinic's algorithm on the s-t core (which has the same max-flow value
// as the original by construction) and then shared by every backend's
// relative-error reporting.  The pipeline memo and the core.Prepared
// bundle's memo (which the analog finalize step reads) seed each other, so
// the whole problem runs at most one reference solve — without the pure-CPU
// backends ever forcing the quantize stage just to reach a memo.  A
// cancelled computation is not memoised, so a later call with a live context
// retries.
func (p *Problem) ExactValue(ctx context.Context) (float64, error) {
	if prep := p.pipe.prepBuilt.Load(); prep != nil {
		// The analog bundle exists; use (and share) its memo.
		return prep.ExactValue(ctx)
	}
	p.pipe.exactMu.Lock()
	defer p.pipe.exactMu.Unlock()
	if p.pipe.exactDone {
		return p.pipe.exact, nil
	}
	coreG, _ := p.STCore()
	v, err := maxflow.OptimalValueContext(ctx, coreG)
	if err != nil {
		return 0, err
	}
	p.pipe.exact, p.pipe.exactDone = v, true
	// Re-check under the lock: if the bundle appeared while we computed,
	// its seed check ran before our memoisation (exactMu orders the two),
	// so it is on us to hand the value over.
	if prep := p.pipe.prepBuilt.Load(); prep != nil {
		prep.SeedExactValue(v)
	}
	return v, nil
}

// seedExact records an exact maximum flow a backend just computed (always a
// Dinic value bit-identical to what the memos would derive), so neither memo
// ever re-runs the reference solve.
func (p *Problem) seedExact(v float64) {
	p.pipe.exactMu.Lock()
	if !p.pipe.exactDone {
		p.pipe.exact, p.pipe.exactDone = v, true
	}
	p.pipe.exactMu.Unlock()
	if prep := p.pipe.prepBuilt.Load(); prep != nil {
		prep.SeedExactValue(v)
	}
}

// PartitionInto returns the decompose stage's output: the N-region overlap
// partition of the named partitioner ("bfs" or "cluster"; "" selects bfs).
// Each (partitioner, regions) pair is computed once per problem and shared —
// by the decompose backend, by the partition planner, and by every re-solve
// of a cached instance.  The effective region count may be lower than asked
// for on shallow or small instances (see decompose.Partitioner).
func (p *Problem) PartitionInto(partitioner string, regions int) (decompose.Partition, error) {
	pt, err := decompose.PartitionerByName(partitioner)
	if err != nil {
		return decompose.Partition{}, err
	}
	return p.partitionInto(pt, regions)
}

// partitionInto is PartitionInto with a resolved partitioner.
func (p *Problem) partitionInto(pt decompose.Partitioner, regions int) (decompose.Partition, error) {
	key := partKey{pt.Name(), regions}
	p.pipe.partMu.Lock()
	defer p.pipe.partMu.Unlock()
	if part, ok := p.pipe.parts[key]; ok {
		return part, nil
	}
	part, err := pt.Partition(p.g, regions)
	if err != nil {
		return decompose.Partition{}, err
	}
	if p.pipe.parts == nil {
		p.pipe.parts = make(map[partKey]decompose.Partition)
	}
	p.pipe.parts[key] = part
	return part, nil
}

// fillExact stamps the shared exact reference value and the resulting
// relative error onto a report.
func (p *Problem) fillExact(ctx context.Context, rep *Report) error {
	exact, err := p.ExactValue(ctx)
	if err != nil {
		return err
	}
	rep.ExactValue = exact
	rep.RelativeError = graph.RelativeError(rep.FlowValue, exact)
	return nil
}
