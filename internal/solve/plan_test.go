package solve

import (
	"context"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"analogflow/internal/cluster"
	"analogflow/internal/core"
	"analogflow/internal/decompose"
	"analogflow/internal/graph"
	"analogflow/internal/maxflow"
	"analogflow/internal/rmat"
	"analogflow/internal/testutil"
)

func TestBudgetValidate(t *testing.T) {
	if err := (Budget{}).Validate(); err != nil {
		t.Errorf("zero budget invalid: %v", err)
	}
	if err := (Budget{MaxVertices: 64}).Validate(); err != nil {
		t.Errorf("plain budget invalid: %v", err)
	}
	if err := (Budget{MaxVertices: 1}).Validate(); err == nil {
		t.Errorf("max vertices 1 accepted")
	}
	if err := (Budget{MaxVertices: 64, Partitioner: "voronoi"}).Validate(); err == nil {
		t.Errorf("unknown partitioner accepted")
	}
	if _, err := NewProblem(graph.PaperFigure5(), WithBudget(Budget{MaxVertices: 64, Partitioner: "voronoi"})); err == nil {
		t.Errorf("NewProblem accepted an invalid budget")
	}
}

func TestBudgetFromArchitecture(t *testing.T) {
	arch := cluster.Architecture{Topology: cluster.Topology2D, IslandSize: 32, Islands: 8, ChannelCapacity: 64}
	b := BudgetFromArchitecture(arch)
	if b.MaxVertices != 32 || b.MaxRegions != 8 || b.Partitioner != "cluster" {
		t.Errorf("unexpected budget from architecture: %+v", b)
	}
	if b := BudgetFromCrossbar(64, 48); b.MaxVertices != 48 {
		t.Errorf("crossbar budget %+v does not take the binding dimension", b)
	}
}

func TestPlanForMonolithicUnderBudget(t *testing.T) {
	p, err := NewProblem(graph.PaperFigure5())
	if err != nil {
		t.Fatal(err)
	}
	plan, _, err := planFor(p, Budget{MaxVertices: 64})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Sharded {
		t.Errorf("five vertices sharded under a 64-vertex budget: %+v", plan)
	}
	if plan.Vertices != 5 {
		t.Errorf("plan vertices %d, want 5", plan.Vertices)
	}
}

func TestPlanForShardsOversizedInstance(t *testing.T) {
	g := rmat.MustGenerate(rmat.SparseParams(200, 9))
	p, err := NewProblem(g)
	if err != nil {
		t.Fatal(err)
	}
	for _, partitioner := range []string{"bfs", "cluster"} {
		plan, part, err := planFor(p, Budget{MaxVertices: 80, Partitioner: partitioner})
		if err != nil {
			t.Fatal(err)
		}
		if !plan.Sharded {
			t.Fatalf("%s: 200 vertices not sharded under an 80-vertex budget: %+v", partitioner, plan)
		}
		if plan.Regions != part.NumRegions() || plan.Regions < 2 {
			t.Errorf("%s: plan regions %d vs partition %d", partitioner, plan.Regions, part.NumRegions())
		}
		if len(plan.RegionVertices) != plan.Regions {
			t.Errorf("%s: %d region sizes for %d regions", partitioner, len(plan.RegionVertices), plan.Regions)
		}
		if err := part.Validate(g); err != nil {
			t.Errorf("%s: planned partition invalid: %v", partitioner, err)
		}
	}
}

// TestServiceAutoShardsOversizedProblem is the acceptance path: a service
// configured with a substrate budget routes an oversized instance through the
// N-region decomposition automatically — for a CPU backend and for the
// behavioral analog backend — the report carries the plan, the flow value
// stays within tolerance of the exact value, and the planner counters move.
func TestServiceAutoShardsOversizedProblem(t *testing.T) {
	g := rmat.MustGenerate(rmat.SparseParams(200, 9))
	exact, err := maxflow.OptimalValue(g)
	if err != nil {
		t.Fatal(err)
	}
	for _, solver := range []string{"dinic", "push-relabel", "behavioral"} {
		svc := NewService(Config{Workers: 2, Budget: Budget{MaxVertices: 80}})
		p, err := NewProblem(g)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := svc.Solve(context.Background(), Request{Solver: solver, Problem: p})
		if err != nil {
			t.Fatalf("%s: %v", solver, err)
		}
		if rep.Plan == nil || !rep.Plan.Sharded {
			t.Fatalf("%s: report carries no sharded plan: %+v", solver, rep.Plan)
		}
		if rep.Solver != solver {
			t.Errorf("%s: report solver %q", solver, rep.Solver)
		}
		if rep.Plan.Regions < 2 {
			t.Errorf("%s: sharded into %d regions", solver, rep.Plan.Regions)
		}
		tol := 0.25
		if solver == "behavioral" {
			tol = 0.35 // quantization + perturbation noise on top of the consensus gap
		}
		testutil.AssertAlmostEqual(t, rep.FlowValue, exact, tol, solver+" sharded flow vs exact")
		stats := svc.Stats()
		if stats.PlannedSolves != 1 || stats.ShardedSolves != 1 {
			t.Errorf("%s: planner stats %+v, want 1 planned / 1 sharded", solver, stats)
		}
	}
}

// TestServiceBudgetMonolithicWhenFits: the planner leaves an in-budget
// problem on the normal (warm-cache) path and does not stamp a plan.
func TestServiceBudgetMonolithicWhenFits(t *testing.T) {
	svc := NewService(Config{Workers: 1, Budget: Budget{MaxVertices: 64}})
	p, err := NewProblem(graph.PaperFigure5())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := svc.Solve(context.Background(), Request{Solver: "dinic", Problem: p})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Plan != nil {
		t.Errorf("monolithic solve unexpectedly carries a plan: %+v", rep.Plan)
	}
	stats := svc.Stats()
	if stats.PlannedSolves != 1 || stats.ShardedSolves != 0 {
		t.Errorf("planner stats %+v, want 1 planned / 0 sharded", stats)
	}
}

// TestShardedSerialVsConcurrentIdentical pins the service-level contract: a
// sharded solve produces an identical (normalized) report for one worker and
// for many, for every N in {2, 4, 8}.
func TestShardedSerialVsConcurrentIdentical(t *testing.T) {
	g := rmat.MustGenerate(rmat.SparseParams(200, 9))
	for _, regions := range []int{2, 4, 8} {
		budget := Budget{MaxVertices: 210/regions + 40, MaxRegions: regions}
		run := func(workers int) Report {
			svc := NewService(Config{Workers: workers, Budget: budget})
			p, err := NewProblem(g)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := svc.Solve(context.Background(), Request{Solver: "dinic", Problem: p})
			if err != nil {
				t.Fatal(err)
			}
			return rep.Normalized()
		}
		serial := run(1)
		concurrent := run(8)
		if serial.Plan == nil || !serial.Plan.Sharded {
			t.Fatalf("regions=%d: not sharded: %+v", regions, serial.Plan)
		}
		if !reflect.DeepEqual(serial.Plan, concurrent.Plan) {
			t.Errorf("regions=%d: plans differ:\nserial:     %+v\nconcurrent: %+v", regions, *serial.Plan, *concurrent.Plan)
		}
		serial.Plan, concurrent.Plan = nil, nil
		if serial.FlowValue != concurrent.FlowValue || serial.Iterations != concurrent.Iterations ||
			serial.Converged != concurrent.Converged || serial.ExactValue != concurrent.ExactValue {
			t.Errorf("regions=%d: reports differ:\nserial:     %+v\nconcurrent: %+v", regions, serial, concurrent)
		}
	}
}

// TestRegionOracleWarmCPU: across outer iterations the CPU region oracle
// never rebuilds an instance cold — every retarget is absorbed by the warm
// residual network.
func TestRegionOracleWarmCPU(t *testing.T) {
	g := rmat.MustGenerate(rmat.SparseParams(200, 9))
	p, err := NewProblem(g)
	if err != nil {
		t.Fatal(err)
	}
	plan, part, err := planFor(p, Budget{MaxVertices: 80})
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Sharded {
		t.Fatal("instance not sharded")
	}
	sol, err := DefaultRegistry().Get("dinic")
	if err != nil {
		t.Fatal(err)
	}
	oracle := newRegionOracle(sol, p.Params())
	opts := p.DecomposeOptions()
	opts.Oracle = oracle
	res, err := decompose.SolveContext(context.Background(), p.Graph(), part, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations < 2 {
		t.Fatalf("decomposition converged in %d iteration(s); the warm path was never exercised", res.Iterations)
	}
	if n := oracle.rebuilds(); n != 0 {
		t.Errorf("%d cold region rebuilds across %d iterations, want 0", n, res.Iterations)
	}
}

// TestRegionOracleWarmAnalogZeroSymbolicRefactorizations is the Section 6.4
// warm-substrate invariant: with the circuit backend as the region oracle,
// every region keeps one session (and one MNA engine) across outer
// iterations, so after the first iteration the retargeted capacities are
// re-stamped into the frozen sparsity pattern — numeric refactorizations
// accumulate, symbolic factorizations stay pinned at one per region.
func TestRegionOracleWarmAnalogZeroSymbolicRefactorizations(t *testing.T) {
	// A path instance with a mid-chain bottleneck: deep enough to split,
	// disagreeing enough that consensus needs several iterations, and
	// retargets that never cross a quantization-structure boundary.
	const n = 12
	g := graph.MustNew(n, 0, n-1)
	for v := 0; v < n-1; v++ {
		cap := 10.0
		if v == 3 {
			cap = 4
		}
		g.MustAddEdge(v, v+1, cap)
	}
	params := core.DefaultParams()
	params.Variation = core.DefaultCleanVariation()
	p, err := NewProblem(g, WithParams(params))
	if err != nil {
		t.Fatal(err)
	}
	part, err := p.PartitionInto("bfs", 2)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := DefaultRegistry().Get("circuit")
	if err != nil {
		t.Fatal(err)
	}
	oracle := newRegionOracle(sol, params)
	opts := p.DecomposeOptions()
	opts.Oracle = oracle
	opts.MaxIterations = 6
	opts.Tolerance = 1e-4 // keep iterating: the pin needs several warm re-solves
	res, err := decompose.SolveContext(context.Background(), g, part, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations < 2 {
		t.Fatalf("decomposition stopped after %d iteration(s); the warm path was never exercised", res.Iterations)
	}
	if n := oracle.rebuilds(); n != 0 {
		t.Fatalf("%d cold region rebuilds, want 0 (warm sessions lost)", n)
	}
	stats := oracle.engineStats()
	if len(stats) == 0 {
		t.Fatal("no region engines recorded")
	}
	for r, st := range stats {
		if st.Factorizations != 1 {
			t.Errorf("region %d: %d symbolic factorizations after %d iterations, want exactly 1",
				r, st.Factorizations, res.Iterations)
		}
		if st.Refactorizations == 0 {
			t.Errorf("region %d: no numeric refactorizations — the warm path did not run", r)
		}
	}
}

// TestDecomposeBackendCarriesPlan: the decompose backend reports its region
// plan for default (two-region) runs and honours the problem budget.
func TestDecomposeBackendCarriesPlan(t *testing.T) {
	g := rmat.MustGenerate(rmat.SparseParams(200, 9))
	p, err := NewProblem(g)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := DefaultRegistry().Solve(context.Background(), "decompose", p)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Plan == nil || rep.Plan.Regions != 2 || rep.Plan.Partitioner != "bfs" {
		t.Errorf("default decompose plan: %+v, want two bfs regions", rep.Plan)
	}
	budgeted, err := NewProblem(g, WithBudget(Budget{MaxVertices: 60, MaxRegions: 8}))
	if err != nil {
		t.Fatal(err)
	}
	rep, err = DefaultRegistry().Solve(context.Background(), "decompose", budgeted)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Plan == nil || !rep.Plan.Sharded || rep.Plan.Regions < 3 {
		t.Errorf("budgeted decompose plan: %+v, want >= 3 regions under a 60-vertex budget", rep.Plan)
	}
	if rep.Plan.BudgetMaxVertices != 60 {
		t.Errorf("plan does not echo the budget: %+v", rep.Plan)
	}
}

// TestNRegionProblemOptionsMatchTwoRegion: through the public problem API,
// N-region decompose options agree with the two-region default on the
// paper's Figure 5 instance (the N-vs-2 acceptance gate at the solve layer).
func TestNRegionProblemOptionsMatchTwoRegion(t *testing.T) {
	for _, regions := range []int{2, 4, 8} {
		opts := decompose.DefaultOptions()
		opts.Regions = regions
		p, err := NewProblem(graph.PaperFigure5(), WithDecomposeOptions(opts))
		if err != nil {
			t.Fatal(err)
		}
		rep, err := DefaultRegistry().Solve(context.Background(), "decompose", p)
		if err != nil {
			t.Fatal(err)
		}
		testutil.AssertAlmostEqual(t, rep.FlowValue, graph.PaperFigure5MaxFlow, 0.05,
			"figure5 decompose flow")
		if rep.Plan == nil {
			t.Fatal("no plan on decompose report")
		}
	}
}

// TestCapacityDiff covers the oracle's structural guard.
func TestCapacityDiff(t *testing.T) {
	g := graph.PaperFigure5()
	same, ok := capacityDiff(g, g)
	if !ok || len(same.Edges) != 0 {
		t.Errorf("self diff: %+v ok=%v", same, ok)
	}
	caps := make([]float64, g.NumEdges())
	for i := range caps {
		caps[i] = g.Edge(i).Capacity
	}
	caps[2] = 7
	changed, err := g.WithCapacities(caps)
	if err != nil {
		t.Fatal(err)
	}
	u, ok := capacityDiff(g, changed)
	if !ok || len(u.Edges) != 1 || u.Edges[0] != 2 || u.Capacities[0] != 7 {
		t.Errorf("capacity diff: %+v ok=%v", u, ok)
	}
	other := graph.MustNew(g.NumVertices(), g.Source(), g.Sink())
	other.MustAddEdge(0, 2, 1) // different edge list
	if _, ok := capacityDiff(g, other); ok {
		t.Errorf("structural difference not detected")
	}
}

// shardGaugeSolver counts concurrent entries into a delegated backend, for
// sharded worker-bound assertions (region oracles need real edge flows, so
// this wraps an exact solver instead of faking a report).
type shardGaugeSolver struct {
	inner    Solver
	inFlight atomic.Int64
	peak     atomic.Int64
}

func (g *shardGaugeSolver) Name() string     { return "gauged" }
func (g *shardGaugeSolver) Describe() string { return "concurrency-gauged exact solver" }

func (g *shardGaugeSolver) Solve(ctx context.Context, p *Problem) (*Report, error) {
	n := g.inFlight.Add(1)
	defer g.inFlight.Add(-1)
	for {
		cur := g.peak.Load()
		if n <= cur || g.peak.CompareAndSwap(cur, n) {
			break
		}
	}
	time.Sleep(2 * time.Millisecond) // widen the overlap window
	return g.inner.Solve(ctx, p)
}

// TestShardedSolvesRespectWorkerBound: the service-wide worker bound holds
// for sharded requests too — a sharded request releases its own slot and
// every region solve acquires one, so N concurrent oversized requests never
// exceed Workers in-flight backend solves.
func TestShardedSolvesRespectWorkerBound(t *testing.T) {
	g := rmat.MustGenerate(rmat.SparseParams(200, 9))
	inner, err := DefaultRegistry().Get("dinic")
	if err != nil {
		t.Fatal(err)
	}
	gauge := &shardGaugeSolver{inner: inner}
	reg := NewRegistry()
	if err := reg.Register(gauge); err != nil {
		t.Fatal(err)
	}
	const workers = 2
	svc := NewService(Config{Registry: reg, Workers: workers, Budget: Budget{MaxVertices: 80}})
	var wg sync.WaitGroup
	for i := 0; i < 2*workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p, err := NewProblem(g)
			if err != nil {
				t.Error(err)
				return
			}
			rep, err := svc.Solve(context.Background(), Request{Solver: "gauged", Problem: p})
			if err != nil {
				t.Error(err)
				return
			}
			if rep.Plan == nil || !rep.Plan.Sharded {
				t.Errorf("request not sharded: %+v", rep.Plan)
			}
		}()
	}
	wg.Wait()
	if peak := gauge.peak.Load(); peak > workers {
		t.Errorf("peak of %d concurrent backend solves exceeds the worker bound %d", peak, workers)
	}
	if got := svc.Stats().InFlight; got != 0 {
		t.Errorf("in-flight gauge %d after completion, want 0", got)
	}
}

// TestServiceBudgetReachesDecomposeBackend: the service-wide budget applies
// to the decompose backend too — a budget-less oversized problem routed to
// "decompose" is split to the service budget, not to the default two regions.
func TestServiceBudgetReachesDecomposeBackend(t *testing.T) {
	g := rmat.MustGenerate(rmat.SparseParams(200, 9))
	svc := NewService(Config{Workers: 1, Budget: Budget{MaxVertices: 80, MaxRegions: 8}})
	p, err := NewProblem(g)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := svc.Solve(context.Background(), Request{Solver: "decompose", Problem: p})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Plan == nil || !rep.Plan.Sharded || rep.Plan.BudgetMaxVertices != 80 || rep.Plan.Regions < 3 {
		t.Errorf("service budget did not reach the decompose backend: plan %+v", rep.Plan)
	}
	stats := svc.Stats()
	if stats.PlannedSolves != 1 || stats.ShardedSolves != 1 {
		t.Errorf("planner stats %+v, want 1 planned / 1 sharded", stats)
	}
	// A problem carrying its own budget wins over the service default.
	own, err := NewProblem(g, WithBudget(Budget{MaxVertices: 120}))
	if err != nil {
		t.Fatal(err)
	}
	rep, err = svc.Solve(context.Background(), Request{Solver: "decompose", Problem: own})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Plan == nil || rep.Plan.BudgetMaxVertices != 120 {
		t.Errorf("problem budget not honoured: plan %+v", rep.Plan)
	}
}
