package solve

import (
	"context"
	"math/rand"
	"testing"

	"analogflow/internal/core"
	"analogflow/internal/graph"
	"analogflow/internal/maxflow"
	"analogflow/internal/rmat"
)

// lanesGraph is a two-lane diamond whose structural churn never strands a
// vertex: parking one 1->2 lane leaves the other carrying flow, so parks and
// reclaims stay value-level for every warmable backend.
func lanesGraph() *graph.Graph {
	g, err := graph.New(4, 0, 3)
	if err != nil {
		panic(err)
	}
	g.MustAddEdge(0, 1, 3)
	g.MustAddEdge(1, 2, 2)
	g.MustAddEdge(1, 2, 2)
	g.MustAddEdge(2, 3, 3)
	return g
}

func TestProblemWithStructuralUpdate(t *testing.T) {
	base, err := NewProblem(lanesGraph())
	if err != nil {
		t.Fatal(err)
	}
	// Park a lane: the derived problem gains one unit of structural slack,
	// the base problem is untouched.
	parked, err := base.WithStructuralUpdate(graph.StructuralUpdate{RemoveEdges: []int{2}})
	if err != nil {
		t.Fatal(err)
	}
	if base.StructuralSlack() != 0 || parked.StructuralSlack() != 1 {
		t.Fatalf("slack base=%d parked=%d, want 0/1", base.StructuralSlack(), parked.StructuralSlack())
	}
	if base.Graph().NumParked() != 0 {
		t.Fatal("structural update leaked into the base problem")
	}
	// Chained fingerprints: deterministic, distinct from the base, and
	// distinct from a content-equal from-scratch problem.
	parked2, err := base.WithStructuralUpdate(graph.StructuralUpdate{RemoveEdges: []int{2}})
	if err != nil {
		t.Fatal(err)
	}
	if parked.Fingerprint() != parked2.Fingerprint() {
		t.Error("identical structural chains produced different fingerprints")
	}
	if parked.Fingerprint() == base.Fingerprint() {
		t.Error("structural update did not change the fingerprint")
	}
	fresh, err := NewProblem(parked.Graph().Clone())
	if err != nil {
		t.Fatal(err)
	}
	if parked.Fingerprint() == fresh.Fingerprint() {
		t.Error("chained fingerprint aliases the content fingerprint")
	}
	// A parked slot is not a plain capacity-0 edge: the content fingerprints
	// must differ, or a cold cache entry for one would serve the other.
	zeroed, err := base.WithUpdate(graph.CapacityUpdate{Edges: []int{2}, Capacities: []float64{0}})
	if err != nil {
		t.Fatal(err)
	}
	freshZero, err := NewProblem(zeroed.Graph().Clone())
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Fingerprint() == freshZero.Fingerprint() {
		t.Error("parked-slot fingerprint aliases the capacity-0 fingerprint")
	}
	// Reclaim restores the lane; validation errors surface before any clone.
	reclaimed, err := parked.WithStructuralUpdate(graph.StructuralUpdate{AddEdges: []graph.Edge{{From: 1, To: 2, Capacity: 2}}})
	if err != nil {
		t.Fatal(err)
	}
	if reclaimed.StructuralSlack() != 0 || reclaimed.Graph().NumEdges() != 4 {
		t.Fatalf("reclaim: slack=%d edges=%d, want 0/4", reclaimed.StructuralSlack(), reclaimed.Graph().NumEdges())
	}
	if _, err := base.WithStructuralUpdate(graph.StructuralUpdate{}); err == nil {
		t.Error("empty structural update was accepted")
	}
	if _, err := base.WithStructuralUpdate(graph.StructuralUpdate{RemoveEdges: []int{99}}); err == nil {
		t.Error("out-of-range removal was accepted")
	}
}

// TestServiceStructuralWarmParkReclaim: a remove step parks an edge warm, an
// insert step reclaims the slot warm, and both match the cold solve of the
// mutated problem exactly — for the behavioral model and every CPU backend.
func TestServiceStructuralWarmParkReclaim(t *testing.T) {
	steps := []struct {
		structural graph.StructuralUpdate
		want       float64
	}{
		{graph.StructuralUpdate{RemoveEdges: []int{2}}, 2},
		{graph.StructuralUpdate{AddEdges: []graph.Edge{{From: 1, To: 2, Capacity: 2}}}, 3},
	}
	for _, backend := range []string{"behavioral", "dinic", "edmonds-karp", "push-relabel"} {
		backend := backend
		t.Run(backend, func(t *testing.T) {
			svc := NewService(Config{Workers: 1})
			params := core.DefaultParams()
			prob, err := NewProblem(lanesGraph(), WithParams(params))
			if err != nil {
				t.Fatal(err)
			}
			if _, err := svc.Solve(context.Background(), Request{Solver: backend, Problem: prob, Updatable: true}); err != nil {
				t.Fatal(err)
			}
			wantSlack := []int{1, 0}
			for k, st := range steps {
				res, err := svc.Update(context.Background(), UpdateRequest{
					Solver: backend, Problem: prob, Structural: &st.structural})
				if err != nil {
					t.Fatalf("step %d: %v", k, err)
				}
				if !res.Warm {
					t.Errorf("step %d ran cold; parks and reclaims must stay value-level", k)
				}
				if !res.Structural || res.SlackRemaining != wantSlack[k] {
					t.Errorf("step %d: structural=%v slack=%d, want true/%d", k, res.Structural, res.SlackRemaining, wantSlack[k])
				}
				if backend != "behavioral" && res.Report.FlowValue != st.want {
					t.Errorf("step %d: flow %g, want %g", k, res.Report.FlowValue, st.want)
				}
				coldProb, err := NewProblem(res.Problem.Graph().Clone(), WithParams(params))
				if err != nil {
					t.Fatal(err)
				}
				cold, err := DefaultRegistry().Solve(context.Background(), backend, coldProb)
				if err != nil {
					t.Fatalf("step %d cold: %v", k, err)
				}
				if res.Report.FlowValue != cold.FlowValue || res.Report.ExactValue != cold.ExactValue {
					t.Errorf("step %d: warm %.12g/%.12g, cold %.12g/%.12g",
						k, res.Report.FlowValue, res.Report.ExactValue, cold.FlowValue, cold.ExactValue)
				}
				prob = res.Problem
			}
			if st := svc.Stats(); st.StructuralUpdates != 2 || st.SlackExhaustedRebuilds != 0 {
				t.Errorf("structural counters %d/%d, want 2/0", st.StructuralUpdates, st.SlackExhaustedRebuilds)
			}
		})
	}
}

// churnStep is one randomized mutation of a structural churn chain.
type churnStep struct {
	capacity   graph.CapacityUpdate
	structural *graph.StructuralUpdate
}

// churnSequence generates a seeded add/remove/capacity mix, applying each
// step to sim so later steps are valid against the evolving topology.
func churnSequence(r *rand.Rand, sim *graph.Graph, steps int) []churnStep {
	var out []churnStep
	for len(out) < steps {
		var st churnStep
		switch r.Intn(4) {
		case 0: // capacity retarget of a few live edges
			seen := map[int]bool{}
			for j := 0; j < 1+r.Intn(3); j++ {
				e := r.Intn(sim.NumEdges())
				if seen[e] || sim.ParkedEdge(e) {
					continue
				}
				seen[e] = true
				st.capacity.Edges = append(st.capacity.Edges, e)
				st.capacity.Capacities = append(st.capacity.Capacities, float64(1+r.Intn(9)))
			}
			if len(st.capacity.Edges) == 0 {
				continue
			}
		case 1: // park a random live edge
			var live []int
			for i := 0; i < sim.NumEdges(); i++ {
				if !sim.ParkedEdge(i) {
					live = append(live, i)
				}
			}
			if len(live) == 0 {
				continue
			}
			st.structural = &graph.StructuralUpdate{RemoveEdges: []int{live[r.Intn(len(live))]}}
		case 2: // insert a random edge (reclaims a slot or appends)
			from, to := r.Intn(sim.NumVertices()), r.Intn(sim.NumVertices())
			if from == to {
				continue
			}
			st.structural = &graph.StructuralUpdate{AddEdges: []graph.Edge{{From: from, To: to, Capacity: float64(1 + r.Intn(9))}}}
		case 3: // mixed step: capacity first (base-list indices), then insert
			e := r.Intn(sim.NumEdges())
			if sim.ParkedEdge(e) {
				continue
			}
			st.capacity = graph.CapacityUpdate{Edges: []int{e}, Capacities: []float64{float64(1 + r.Intn(9))}}
			from, to := r.Intn(sim.NumVertices()), r.Intn(sim.NumVertices())
			if from == to {
				continue
			}
			st.structural = &graph.StructuralUpdate{AddEdges: []graph.Edge{{From: from, To: to, Capacity: float64(1 + r.Intn(9))}}}
		}
		if len(st.capacity.Edges) > 0 {
			if _, err := sim.ApplyCapacityUpdate(st.capacity); err != nil {
				continue
			}
		}
		if st.structural != nil {
			if _, err := sim.ApplyStructuralUpdate(*st.structural); err != nil {
				continue
			}
		}
		out = append(out, st)
	}
	return out
}

// TestServiceStructuralRandomizedChurnMatchesCold is the randomized
// equivalence contract: over seeded add/remove/capacity mixes, every step's
// warm (or honestly-cold) result equals the cold solve of the mutated
// problem exactly, and CPU edge flows stay verified optima of the current
// graph — parked slots, reclaims and appends included.
func TestServiceStructuralRandomizedChurnMatchesCold(t *testing.T) {
	for _, backend := range []string{"behavioral", "dinic", "edmonds-karp", "push-relabel"} {
		backend := backend
		for _, seed := range []int64{7, 23} {
			seed := seed
			t.Run(backend+"/seed"+string(rune('0'+seed%10)), func(t *testing.T) {
				g := rmat.MustGenerate(rmat.SparseParams(40, seed))
				steps := churnSequence(rand.New(rand.NewSource(seed)), g.Clone(), 10)
				svc := NewService(Config{Workers: 2})
				params := core.DefaultParams()
				prob, err := NewProblem(g, WithParams(params))
				if err != nil {
					t.Fatal(err)
				}
				if _, err := svc.Solve(context.Background(), Request{Solver: backend, Problem: prob}); err != nil {
					t.Fatal(err)
				}
				sawWarm := false
				for k, st := range steps {
					res, err := svc.Update(context.Background(), UpdateRequest{
						Solver: backend, Problem: prob, Update: st.capacity, Structural: st.structural})
					if err != nil {
						t.Fatalf("step %d: %v", k, err)
					}
					sawWarm = sawWarm || res.Warm
					prob = res.Problem
					if st.structural != nil {
						if !res.Structural {
							t.Errorf("step %d carried a structural component but the result is not marked structural", k)
						}
						if res.SlackRemaining != prob.StructuralSlack() {
							t.Errorf("step %d: reported slack %d, problem holds %d", k, res.SlackRemaining, prob.StructuralSlack())
						}
					}
					coldProb, err := NewProblem(prob.Graph().Clone(), WithParams(params))
					if err != nil {
						t.Fatal(err)
					}
					cold, err := DefaultRegistry().Solve(context.Background(), backend, coldProb)
					if err != nil {
						t.Fatalf("step %d cold: %v", k, err)
					}
					if res.Report.FlowValue != cold.FlowValue || res.Report.ExactValue != cold.ExactValue {
						t.Fatalf("step %d: warm %.12g/%.12g, cold %.12g/%.12g",
							k, res.Report.FlowValue, res.Report.ExactValue, cold.FlowValue, cold.ExactValue)
					}
					if backend != "behavioral" {
						f := graph.NewFlow(prob.Graph())
						copy(f.Edge, res.Report.EdgeFlows)
						f.RecomputeValue(prob.Graph())
						if err := maxflow.VerifyOptimal(prob.Graph(), f, 1e-6); err != nil {
							t.Fatalf("step %d: flow is not a verified optimum: %v", k, err)
						}
					}
				}
				if !sawWarm {
					t.Error("no step of the churn chain was absorbed warm")
				}
			})
		}
	}
}

// TestShardedStructuralStepRebuildsOwningRegionOnly is the sharded acceptance
// pin: in an 8-region chain, a 1-edge structural step (park, then reclaim)
// rebuilds exactly the region owning the touched edge — every other region
// keeps its warm instance, and the chain's consensus state keeps the steps
// around the structural ones warm.
func TestShardedStructuralStepRebuildsOwningRegionOnly(t *testing.T) {
	g := gridGraph(12)
	budget := Budget{MaxVertices: 40, MaxRegions: 8}
	svc := NewService(Config{Workers: 2, Budget: budget})
	prob, err := NewProblem(g)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := svc.Solve(context.Background(), Request{Solver: "dinic", Problem: prob})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Plan == nil || !rep.Plan.Sharded || rep.Plan.Regions != 8 {
		t.Fatalf("base plan %+v, want sharded with 8 regions", rep.Plan)
	}
	_, part, err := planFor(prob, budget)
	if err != nil {
		t.Fatal(err)
	}
	edges := interiorOwnedEdges(g, part)
	if len(edges) < 8 {
		t.Fatalf("only %d interior owned edges", len(edges))
	}
	target := edges[0]
	owner := -1
	for r, in := range part.In {
		if in[g.Edge(target).From] {
			owner = r
		}
	}
	if owner < 0 {
		t.Fatalf("no region owns edge %d", target)
	}

	// One warm capacity step so every region holds a warm instance.
	res, err := svc.Update(context.Background(), UpdateRequest{
		Solver: "dinic", Problem: prob, Update: shardedChainStep(prob.Graph(), edges[1:], 0)})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Warm {
		t.Fatal("pre-structural step ran cold")
	}
	prob = res.Problem

	oracle := testOracle(t, svc)
	regionInsts := func() map[int]Instance {
		oracle.mu.Lock()
		defer oracle.mu.Unlock()
		m := make(map[int]Instance, len(oracle.regions))
		for r, st := range oracle.regions {
			m[r] = st.inst
		}
		return m
	}

	structSteps := []graph.StructuralUpdate{
		{RemoveEdges: []int{target}},
		{AddEdges: []graph.Edge{{From: g.Edge(target).From, To: g.Edge(target).To, Capacity: g.Edge(target).Capacity}}},
	}
	for k, su := range structSteps {
		before := regionInsts()
		res, err = svc.Update(context.Background(), UpdateRequest{
			Solver: "dinic", Problem: prob, Structural: &su})
		if err != nil {
			t.Fatalf("structural step %d: %v", k, err)
		}
		if !res.Warm {
			t.Errorf("structural step %d lost the claimed oracle; only the owning region should rebuild", k)
		}
		if !res.Structural {
			t.Errorf("structural step %d not marked structural", k)
		}
		after := regionInsts()
		for r, inst := range after {
			switch {
			case r == owner && inst == before[r]:
				t.Errorf("step %d: owning region %d kept its pre-structural instance; expected a cold rebuild", k, r)
			case r != owner && inst != before[r]:
				t.Errorf("step %d: region %d (not the owner %d) lost its warm instance", k, r, owner)
			}
		}
		if got := svc.Stats().RegionColdRebuilds; got != int64(k+1) {
			t.Errorf("after structural step %d: %d cold region rebuilds, want %d", k, got, k+1)
		}
		prob = res.Problem
	}

	// The chain continues warm on the spliced regions, with no further cold
	// rebuilds.
	for k := 1; k < 3; k++ {
		res, err = svc.Update(context.Background(), UpdateRequest{
			Solver: "dinic", Problem: prob, Update: shardedChainStep(prob.Graph(), edges[1:], k)})
		if err != nil {
			t.Fatalf("post-structural step %d: %v", k, err)
		}
		if !res.Warm {
			t.Errorf("post-structural step %d ran cold", k)
		}
		prob = res.Problem
	}
	final := svc.Stats()
	if final.RegionColdRebuilds != 2 {
		t.Errorf("cold rebuilds grew to %d, want to stay at 2 (one per structural step)", final.RegionColdRebuilds)
	}
	if final.StructuralUpdates != 2 {
		t.Errorf("StructuralUpdates = %d, want 2", final.StructuralUpdates)
	}
}

// TestServiceStructuralSlackExhaustionPin is the slack acceptance pin for the
// circuit backend: k insertions into reserved slots are absorbed with zero
// new symbolic factorizations; the k+1-th insertion has to append past the
// slot pool — one honest cold rebuild, counted in SlackExhaustedRebuilds —
// and the chain continues warm on the rebuilt instance.
func TestServiceStructuralSlackExhaustionPin(t *testing.T) {
	params := core.DefaultParams()
	params.Variation = core.DefaultCleanVariation()
	g := lanesGraph()
	// Two pre-declared slots: bounded slack for two warm insertions.
	if _, err := g.AddParkedEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddParkedEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	svc := NewService(Config{Workers: 1})
	prob, err := NewProblem(g, WithParams(params))
	if err != nil {
		t.Fatal(err)
	}
	if prob.StructuralSlack() != 2 {
		t.Fatalf("pre-declared slack %d, want 2", prob.StructuralSlack())
	}
	// Step 0 starts the chain (builds the updatable instance cold).
	res, err := svc.Update(context.Background(), UpdateRequest{
		Solver: "circuit", Problem: prob,
		Update: graph.CapacityUpdate{Edges: []int{0}, Capacities: []float64{4}}})
	if err != nil {
		t.Fatal(err)
	}
	prob = res.Problem
	base, ok := cachedSession(t, svc, prob, "circuit").EngineStats()
	if !ok {
		t.Fatal("no engine after the first circuit update")
	}

	// Two slot-reclaiming insertions: warm, value-level, zero new symbolic
	// factorizations.
	for k := 0; k < 2; k++ {
		res, err = svc.Update(context.Background(), UpdateRequest{
			Solver: "circuit", Problem: prob,
			Structural: &graph.StructuralUpdate{AddEdges: []graph.Edge{{From: 1, To: 2, Capacity: 1}}}})
		if err != nil {
			t.Fatalf("insertion %d: %v", k, err)
		}
		if !res.Warm {
			t.Fatalf("insertion %d into reserved slack ran cold", k)
		}
		if res.SlackRemaining != 1-k {
			t.Errorf("insertion %d: slack %d, want %d", k, res.SlackRemaining, 1-k)
		}
		prob = res.Problem
	}
	after, ok := cachedSession(t, svc, prob, "circuit").EngineStats()
	if !ok {
		t.Fatal("warm chain lost its engine")
	}
	if after.Factorizations != base.Factorizations {
		t.Errorf("slot insertions cost %d new symbolic factorizations (%d -> %d)",
			after.Factorizations-base.Factorizations, base.Factorizations, after.Factorizations)
	}

	// The slack is spent: the next insertion appends a genuinely new edge and
	// must pay exactly one honest cold rebuild.
	res, err = svc.Update(context.Background(), UpdateRequest{
		Solver: "circuit", Problem: prob,
		Structural: &graph.StructuralUpdate{AddEdges: []graph.Edge{{From: 0, To: 2, Capacity: 1}}}})
	if err != nil {
		t.Fatalf("appending insertion: %v", err)
	}
	if res.Warm {
		t.Error("insertion past the slot pool claimed to be warm")
	}
	if st := svc.Stats(); st.SlackExhaustedRebuilds != 1 {
		t.Errorf("SlackExhaustedRebuilds = %d, want 1", st.SlackExhaustedRebuilds)
	}
	prob = res.Problem

	// The chain continues warm on the rebuilt instance.
	res, err = svc.Update(context.Background(), UpdateRequest{
		Solver: "circuit", Problem: prob,
		Update: graph.CapacityUpdate{Edges: []int{0}, Capacities: []float64{5}}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Warm {
		t.Error("post-exhaustion capacity step ran cold; the rebuild did not re-arm the chain")
	}
	if st := svc.Stats(); st.SlackExhaustedRebuilds != 1 {
		t.Errorf("SlackExhaustedRebuilds grew to %d, want to stay at 1", st.SlackExhaustedRebuilds)
	}
}
