package solve

import (
	"errors"
	"fmt"
	"runtime/debug"
)

// ErrSolverPanic is the sentinel every recovered backend panic wraps: a
// solver or region oracle that panicked mid-solve is a failed request, not a
// dead process.  Match with errors.Is; the concrete *SolverPanicError carries
// the backend name and the stack.
var ErrSolverPanic = errors.New("solve: solver panicked")

// SolverPanicError is a backend panic converted into an error at the
// isolation boundary (Service.solve, Service.update, the region-oracle
// workers).  The warm state the panicking solve was running on — a cached
// instance, a claimed region oracle — is considered poisoned and dropped by
// the service, so the fingerprint's next solve runs cold; the process itself
// keeps serving (Stats.SolverPanics counts the conversions).
type SolverPanicError struct {
	// Solver is the registry name of the backend that panicked.
	Solver string
	// Value is the recovered panic value.
	Value any
	// Stack is the stack captured at the recovery point.
	Stack []byte
}

func (e *SolverPanicError) Error() string {
	return fmt.Sprintf("solve: solver %q panicked: %v", e.Solver, e.Value)
}

// Unwrap makes errors.Is(err, ErrSolverPanic) match.
func (e *SolverPanicError) Unwrap() error { return ErrSolverPanic }

// guardSolve runs one solver invocation under recover, converting a panic
// into a *SolverPanicError.  It is the failure-domain boundary between a
// backend and the process: everything that calls third-party-shaped solver
// code (instance solves, one-shot solves, in-place updates, region oracle
// calls) goes through it.
func guardSolve(solver string, f func() (*Report, error)) (rep *Report, err error) {
	defer func() {
		if r := recover(); r != nil {
			rep = nil
			err = &SolverPanicError{Solver: solver, Value: r, Stack: debug.Stack()}
		}
	}()
	return f()
}

// guardErr is guardSolve for invocations that return only an error
// (UpdatableInstance.Update).
func guardErr(solver string, f func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &SolverPanicError{Solver: solver, Value: r, Stack: debug.Stack()}
		}
	}()
	return f()
}
