package solve

import (
	"context"
	"math/rand"
	"testing"

	"analogflow/internal/core"
	"analogflow/internal/graph"
	"analogflow/internal/rmat"
	"analogflow/internal/testutil"
)

// layeredGraph builds a width×layers ladder of straight parallel chains:
// source feeds every chain at terminalCap, chains run through the layers at
// interiorCap, the last layer drains into the sink at terminalCap.  With
// interiorCap comfortably above terminalCap the max flow is
// width*terminalCap, the flow distribution is UNIQUE (each chain carries
// exactly terminalCap), and every interior capacity carries slack — so the
// consensus settles exactly and bumping one interior edge changes neither the
// exact value nor any other region's subproblem.  That uniqueness matters:
// with cross edges between chains, the warm region instances' incremental
// re-augmentation redistributes flow across the split vertices every
// iteration and the overlap imbalance never settles.  BFS levels grow one per
// layer, so the BFS partitioner can cut the ladder into any band count up to
// layers+1.
func layeredGraph(width, layers int, interiorCap, terminalCap float64) *graph.Graph {
	n := width*layers + 2
	g := graph.MustNew(n, 0, n-1)
	id := func(l, i int) int { return 1 + l*width + i }
	for i := 0; i < width; i++ {
		g.MustAddEdge(0, id(0, i), terminalCap)
	}
	for l := 0; l < layers-1; l++ {
		for i := 0; i < width; i++ {
			g.MustAddEdge(id(l, i), id(l+1, i), interiorCap)
		}
	}
	for i := 0; i < width; i++ {
		g.MustAddEdge(id(layers-1, i), n-1, terminalCap)
	}
	return g
}

// TestShardedOneEdgeUpdateEightRegions is the acceptance pin of the
// active-region scheduler: on an 8-region plan, a 1-edge capacity update must
// re-solve at most 2 regions per outer iteration — the other regions' carried
// readings are replayed — and the warm quick attempt must be accepted without
// escalation at zero relative error.
func TestShardedOneEdgeUpdateEightRegions(t *testing.T) {
	g := layeredGraph(4, 20, 10, 5)
	budget := Budget{MaxVertices: 11, MaxRegions: 8}
	svc := NewService(Config{Workers: 4, Budget: budget})
	prob := mustProblem(t, g, core.DefaultParams())

	rep, err := svc.Solve(context.Background(), Request{Solver: "dinic", Problem: prob})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Plan == nil || !rep.Plan.Sharded || rep.Plan.Regions != 8 {
		t.Fatalf("base plan is not the 8-region shard this pin needs: %+v", rep.Plan)
	}

	_, part, err := planFor(prob, budget)
	if err != nil {
		t.Fatal(err)
	}
	edges := interiorOwnedEdges(g, part)
	if len(edges) == 0 {
		t.Fatal("no interior owned edges on the ladder instance")
	}

	upd := graph.CapacityUpdate{
		Edges:      []int{edges[0]},
		Capacities: []float64{g.Edge(edges[0]).Capacity + 5},
	}
	res, err := svc.Update(context.Background(), UpdateRequest{Solver: "dinic", Problem: prob, Update: upd})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Warm {
		t.Fatal("1-edge update ran cold; the claimed oracle was lost")
	}
	pl := res.Report.Plan
	if pl == nil || !pl.Sharded || pl.Regions != 8 {
		t.Fatalf("update plan: %+v", pl)
	}
	if !pl.WarmStart {
		t.Error("consensus did not warm-start from the carried state")
	}
	if pl.Escalated {
		t.Error("slack-only interior bump was escalated; the warm value should have been accepted")
	}
	if pl.OuterIterations < 1 {
		t.Fatalf("plan reports %d outer iterations", pl.OuterIterations)
	}
	if pl.RegionSolves+pl.RegionSkips != pl.Regions*pl.OuterIterations {
		t.Errorf("solves %d + skips %d != regions %d * iterations %d",
			pl.RegionSolves, pl.RegionSkips, pl.Regions, pl.OuterIterations)
	}
	// The acceptance criterion: at most 2 of the 8 regions re-solved per
	// outer iteration, everything else replayed from carried readings.
	if pl.RegionSolves > 2*pl.OuterIterations {
		t.Errorf("%d region solves over %d outer iterations; a 1-edge update must re-solve <= 2 regions per iteration",
			pl.RegionSolves, pl.OuterIterations)
	}
	if pl.RegionSkips < 6*pl.OuterIterations {
		t.Errorf("only %d region skips over %d outer iterations, want >= 6 per iteration",
			pl.RegionSkips, pl.OuterIterations)
	}
	if res.Report.RelativeError > 1e-9 {
		t.Errorf("accepted warm value has %.3g relative error vs exact; the dinic chain's band is exact",
			res.Report.RelativeError)
	}

	stats := svc.Stats()
	if stats.ConsensusWarmStarts < 1 {
		t.Errorf("consensus_warm_starts = %d, want >= 1", stats.ConsensusWarmStarts)
	}
	if stats.RegionsSkipped < 6 {
		t.Errorf("regions_skipped = %d, want >= 6", stats.RegionsSkipped)
	}
	if stats.AvgOuterIterations <= 0 {
		t.Errorf("avg_outer_iterations = %g, want > 0", stats.AvgOuterIterations)
	}
}

// TestShardedWarmIncreaseEscalates pins the soundness half of the warm-start
// contract: carried consensus allowances are binding at the previous optimum,
// so a capacity increase that raises the true max flow must NOT be answered
// from the warm state — the quick attempt lands outside the acceptance band
// and the full consensus re-runs, finding the new optimum.
func TestShardedWarmIncreaseEscalates(t *testing.T) {
	const n = 20
	g := graph.MustNew(n, 0, n-1)
	for v := 0; v < n-1; v++ {
		capacity := 10.0
		if v == 9 {
			capacity = 4
		}
		g.MustAddEdge(v, v+1, capacity)
	}
	budget := Budget{MaxVertices: 7}
	svc := NewService(Config{Workers: 2, Budget: budget})
	prob := mustProblem(t, g, core.DefaultParams())
	rep, err := svc.Solve(context.Background(), Request{Solver: "dinic", Problem: prob})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Plan == nil || !rep.Plan.Sharded {
		t.Fatalf("20-vertex path not sharded under a 7-vertex budget: %+v", rep.Plan)
	}
	if !testutil.AlmostEqual(rep.FlowValue, 4.0, 0.05) {
		t.Fatalf("base flow %g, want ~4 (the bottleneck)", rep.FlowValue)
	}

	// Raise the bottleneck to the line capacity: the exact value jumps 4 -> 10.
	res, err := svc.Update(context.Background(), UpdateRequest{
		Solver: "dinic", Problem: prob,
		Update: graph.CapacityUpdate{Edges: []int{9}, Capacities: []float64{10}}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Warm {
		t.Fatal("update ran cold")
	}
	pl := res.Report.Plan
	if pl == nil || !pl.Escalated {
		t.Fatalf("bottleneck increase was not escalated (plan %+v); the warm value would be stuck at the old optimum", pl)
	}
	if !testutil.AlmostEqual(res.Report.FlowValue, 10.0, 0.05) {
		t.Errorf("post-escalation flow %g, want ~10 (the new optimum)", res.Report.FlowValue)
	}
	if res.Report.RelativeError > 0.05 {
		t.Errorf("post-escalation relative error %.3g vs exact, beyond the consensus tolerance", res.Report.RelativeError)
	}
	if got := svc.Stats().ConsensusEscalations; got < 1 {
		t.Errorf("consensus_escalations = %d, want >= 1", got)
	}
}

// TestShardedUpdateChainRandomizedWarmMatchesCold runs a seeded random
// capacity chain — arbitrary edges, boundary and terminal edges included —
// per backend, asserting every warm step stays within the consensus band of
// both its exact reference and a cold from-scratch solve of the same mutated
// problem.  This is the randomized warm==cold contract of the escalation
// band: whatever the scheduler skips or the quick attempt accepts, the
// published value may never drift beyond what a cold solve would report.
func TestShardedUpdateChainRandomizedWarmMatchesCold(t *testing.T) {
	base := rmat.MustGenerate(rmat.SparseParams(200, 3))
	budget := Budget{MaxVertices: 80}
	params := core.DefaultParams()
	for _, backend := range []string{"dinic", "behavioral"} {
		t.Run(backend, func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			svc := NewService(Config{Workers: 2, Budget: budget})
			prob := mustProblem(t, base, params)
			if _, err := svc.Solve(context.Background(), Request{Solver: backend, Problem: prob}); err != nil {
				t.Fatal(err)
			}
			for k := 0; k < 5; k++ {
				var upd graph.CapacityUpdate
				seen := map[int]bool{}
				for j := 0; j < 4; j++ {
					e := rng.Intn(prob.Graph().NumEdges())
					if seen[e] {
						continue
					}
					seen[e] = true
					c := prob.Graph().Edge(e).Capacity
					if rng.Intn(2) == 0 {
						c += 1 + 20*rng.Float64()
					} else if c >= 2 {
						c = float64(int(c) / 2)
					} else {
						c++
					}
					upd.Edges = append(upd.Edges, e)
					upd.Capacities = append(upd.Capacities, c)
				}
				res, err := svc.Update(context.Background(), UpdateRequest{Solver: backend, Problem: prob, Update: upd})
				if err != nil {
					t.Fatalf("step %d: %v", k, err)
				}
				if !res.Warm {
					t.Errorf("step %d ran cold", k)
				}
				if res.Report.RelativeError > 0.25 {
					t.Errorf("step %d: warm flow %g vs exact %g (%.0f%% error)",
						k, res.Report.FlowValue, res.Report.ExactValue, 100*res.Report.RelativeError)
				}
				prob = res.Problem

				coldSvc := NewService(Config{Workers: 2, Budget: budget})
				coldProb := mustProblem(t, prob.Graph().Clone(), params)
				cold, err := coldSvc.Solve(context.Background(), Request{Solver: backend, Problem: coldProb})
				if err != nil {
					t.Fatalf("cold step %d: %v", k, err)
				}
				if !testutil.AlmostEqual(res.Report.FlowValue, cold.FlowValue, 0.25) {
					t.Errorf("step %d: warm flow %g vs cold flow %g, beyond the consensus band",
						k, res.Report.FlowValue, cold.FlowValue)
				}
			}
		})
	}
}
