package solve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"analogflow/internal/core"
	"analogflow/internal/decompose"
	"analogflow/internal/graph"
	"analogflow/internal/lp"
	"analogflow/internal/maxflow"
)

// builtinSolvers returns the seven built-in backends.
func builtinSolvers() []Solver {
	return []Solver{
		&analogSolver{mode: core.ModeBehavioral, name: "behavioral",
			desc: "analog substrate, behavioral model (quantized + perturbed LP steady state)"},
		&analogSolver{mode: core.ModeCircuit, name: "circuit",
			desc: "analog substrate, full MNA circuit emulation (Newton on the Section 2 circuit)"},
		&cpuSolver{alg: maxflow.Dinic,
			desc: "Dinitz blocking-flow algorithm (exact reference)"},
		&cpuSolver{alg: maxflow.EdmondsKarp,
			desc: "Edmonds-Karp shortest augmenting paths (exact)"},
		&cpuSolver{alg: maxflow.PushRelabel,
			desc: "Goldberg-Tarjan push-relabel: highest-label selection, gap heuristic, periodic global relabelling (exact, the paper's CPU baseline)"},
		&lpSolver{desc: "primal simplex on the Section 2 max-flow LP (exact, dense tableau)"},
		&decomposeSolver{desc: "Section 6.4 dual decomposition into substrate-sized overlapping subproblems"},
	}
}

// --- analog backends (behavioral, circuit) ---------------------------------

// analogSolver adapts core.Solver/core.Session to the unified interface.  It
// is Warmable: a warm instance is a core.Session whose cached MNA engine
// turns repeated circuit solves into numeric-only refactorizations.
type analogSolver struct {
	mode core.Mode
	name string
	desc string
}

func (a *analogSolver) Name() string     { return a.name }
func (a *analogSolver) Describe() string { return a.desc }

func (a *analogSolver) Solve(ctx context.Context, p *Problem) (*Report, error) {
	inst, err := a.NewInstance(p)
	if err != nil {
		return nil, err
	}
	return inst.Solve(ctx)
}

// stamped sets rep.WallTime to the elapsed solver-proper time.  Backends
// stamp their own reports so the figure measures the algorithm, not the
// shared lazy preprocessing or the exact-reference solve that may piggyback
// on the first call (Registry/Service only fill WallTime when it is unset).
func stamped(rep *Report, start time.Time) *Report {
	rep.WallTime = time.Since(start)
	return rep
}

// NewInstance builds a session around the problem's shared preprocessing
// artifacts, with the backend's mode forced onto the parameters.
func (a *analogSolver) NewInstance(p *Problem) (Instance, error) {
	prep, err := p.Prepared()
	if err != nil {
		return nil, err
	}
	params := p.Params()
	params.Mode = a.mode
	sess, err := core.NewSessionPrepared(params, prep)
	if err != nil {
		return nil, err
	}
	return &analogInstance{name: a.name, sess: sess, bound: p}, nil
}

// NewUpdatableInstance builds an update-absorbing session: private per-edge
// clamp sources (circuit mode) and a warm exact-reference network, so a
// capacity-only update re-stamps values and re-augments instead of
// rebuilding.  Results agree with plain instances to solver tolerance; see
// core.NewUpdatableSessionPrepared for the exact contract.
func (a *analogSolver) NewUpdatableInstance(p *Problem) (UpdatableInstance, error) {
	prep, err := p.Prepared()
	if err != nil {
		return nil, err
	}
	params := p.Params()
	params.Mode = a.mode
	sess, err := core.NewUpdatableSessionPrepared(params, prep)
	if err != nil {
		return nil, err
	}
	return &analogInstance{name: a.name, sess: sess, bound: p}, nil
}

type analogInstance struct {
	name string
	sess *core.Session

	// boundMu guards bound, the problem the session currently answers for.
	// The service compares it against the requested problem after a cached
	// solve, so a Solve racing an Update that claimed and rebound the
	// instance is detected instead of returning the wrong problem's report.
	boundMu sync.Mutex
	bound   *Problem
}

// BoundFingerprint implements the service's post-solve rebind check.
func (i *analogInstance) BoundFingerprint() string {
	i.boundMu.Lock()
	defer i.boundMu.Unlock()
	if i.bound == nil {
		return ""
	}
	return i.bound.Fingerprint()
}

func (i *analogInstance) setBound(p *Problem) {
	i.boundMu.Lock()
	i.bound = p
	i.boundMu.Unlock()
}

// Update rebinds the warm session to the updated problem.  Capacity-only
// mutations and park/unpark cycles are value-level re-stamps; a structural
// extension (appended edges) is absorbed when the session can splice it in
// (behavioral sessions; see Session.RebindStructural) and refused with
// ErrSlackExhausted when the frozen circuit pattern has no position for the
// new edge — the slot pool was exhausted, so the insertion had to append.
func (i *analogInstance) Update(p *Problem) error {
	prep, err := p.Prepared()
	if err != nil {
		return err
	}
	// Publish the new binding before the rebind: a Solve racing this update
	// must see a fingerprint that differs from its own problem on either
	// side of the swap, never a stale match against a re-stamped session.
	i.boundMu.Lock()
	old := i.bound
	i.boundMu.Unlock()
	i.setBound(p)
	if err := i.sess.RebindStructural(prep); err != nil {
		i.setBound(old)
		if errors.Is(err, core.ErrSessionNotUpdatable) || errors.Is(err, core.ErrIncompatibleUpdate) {
			if old != nil && p.Graph().NumEdges() > old.Graph().NumEdges() {
				// The target grew past the warm instance's edge list: the
				// insertion consumed slack that wasn't there.
				return fmt.Errorf("%w: %v", ErrSlackExhausted, err)
			}
			return fmt.Errorf("%w: %v", ErrIncompatibleUpdate, err)
		}
		return err
	}
	return nil
}

func (i *analogInstance) Solve(ctx context.Context) (*Report, error) {
	start := time.Now()
	res, err := i.sess.Solve(ctx)
	if err != nil {
		return nil, err
	}
	return stamped(reportFromCore(i.name, res), start), nil
}

// session exposes the underlying session for engine-level assertions in
// tests and diagnostics.
func (i *analogInstance) session() *core.Session { return i.sess }

// reportFromCore lifts a core.Result into the unified report.
func reportFromCore(name string, res *core.Result) *Report {
	rep := &Report{
		Solver:          name,
		FlowValue:       res.FlowValue,
		ExactValue:      res.ExactValue,
		RelativeError:   res.RelativeError,
		ConvergenceTime: res.ConvergenceTime,
		ProgrammingTime: res.ProgrammingTime,
		SubstratePower:  res.SubstratePower,
		Energy:          res.Energy,
		Waves:           res.Waves,
		PrunedVertices:  res.PrunedVertices,
		PrunedEdges:     res.PrunedEdges,
	}
	if res.Flow != nil {
		rep.EdgeFlows = append([]float64(nil), res.Flow.Edge...)
	}
	return rep
}

// --- exact CPU backends (dinic, edmonds-karp, push-relabel) ----------------

// cpuSolver adapts the combinatorial algorithms.  It solves on the shared
// s-t core and expands the flow back to the original edge indexing; the
// max-flow value is preserved exactly by construction of the prune.
//
// It is Warmable: an instance keeps the residual network of its last solve,
// so a capacity-only update drains/extends the residual and re-augments
// instead of re-solving from scratch.  A warm re-solve reaches exactly the
// cold maximum value (the optimum is unique); the per-edge assignment it
// recovers is a — possibly different — optimal flow, because augmentation
// order from a warm residual differs from a cold run (docs/solver.md).
type cpuSolver struct {
	alg  maxflow.Algorithm
	desc string
}

func (c *cpuSolver) Name() string     { return c.alg.String() }
func (c *cpuSolver) Describe() string { return c.desc }

// NewInstance returns a warm residual-network instance.  Its first Solve is
// the exact computation of the one-shot path below (same residual layout,
// same traversal order), so cached and uncached solves report identically.
func (c *cpuSolver) NewInstance(p *Problem) (Instance, error) {
	return &cpuInstance{alg: c.alg, name: c.Name(), p: p}, nil
}

// NewUpdatableInstance: cpu instances are always update-absorbing.
func (c *cpuSolver) NewUpdatableInstance(p *Problem) (UpdatableInstance, error) {
	return &cpuInstance{alg: c.alg, name: c.Name(), p: p}, nil
}

// cpuInstance is the warm state of one CPU backend on one problem chain: the
// pruned core, the residual network of the last solve, and the solved flow.
type cpuInstance struct {
	alg  maxflow.Algorithm
	name string

	mu      sync.Mutex
	p       *Problem
	net     *maxflow.Network
	solved  bool
	flow    *graph.Flow // core-domain flow of the last completed solve
	elapsed time.Duration
}

// BoundFingerprint implements the service's post-solve rebind check.
func (i *cpuInstance) BoundFingerprint() string {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.p.Fingerprint()
}

func (i *cpuInstance) Solve(ctx context.Context) (*Report, error) {
	i.mu.Lock()
	defer i.mu.Unlock()
	coreG, pr := i.p.STCore()
	if i.net == nil {
		net, err := maxflow.NewNetwork(coreG)
		if err != nil {
			return nil, err
		}
		i.net = net
	}
	if !i.solved {
		start := time.Now()
		f, err := i.net.Solve(ctx, i.alg)
		if err != nil {
			// An aborted solve may leave the residual mid-computation —
			// push-relabel in particular is cancelled mid-discharge and
			// leaves a preflow, not a feasible flow.  Drop the warm state
			// so the next request re-solves from scratch instead of
			// silently augmenting a corrupted network.
			i.net, i.flow, i.solved = nil, nil, false
			return nil, err
		}
		i.flow, i.elapsed = f, time.Since(start)
		i.solved = true
	}
	if i.alg == maxflow.Dinic {
		i.p.seedExact(i.flow.Value)
	}
	rep, err := expandedFlowReport(ctx, i.p, i.name, i.flow, pr)
	if err != nil {
		return nil, err
	}
	rep.WallTime = i.elapsed
	return rep, nil
}

// Update absorbs a capacity-only or structural update.  Capacity changes (a
// park/unpark cycle included — the prune keeps parked slots resident) drain
// the overflow of shrunken edges and keep everything else; appended edges are
// spliced into the residual as fresh zero-flow arc pairs (Network.StructureTo)
// when the new core extends the old one edge-for-edge.  Either way the next
// Solve re-augments incrementally.  A prune whose kept-edge prefix broke — a
// park that stranded a branch, an insertion that revived one — is an honest
// structural change the residual cannot absorb.
func (i *cpuInstance) Update(p *Problem) error {
	i.mu.Lock()
	defer i.mu.Unlock()
	if i.net == nil {
		// Nothing warm to absorb the update into (never solved, or the
		// state was dropped after an aborted solve).  Report it as such so
		// the service counts the step as a cold fallback instead of
		// claiming a warm hit for a from-scratch solve.
		return fmt.Errorf("%w: instance holds no warm residual state", ErrIncompatibleUpdate)
	}
	_, oldPr := i.p.STCore()
	newCore, newPr := p.STCore()
	if !graph.PruneExtends(oldPr, newPr) {
		return fmt.Errorf("%w: the s-t core changed", ErrIncompatibleUpdate)
	}
	if err := i.net.StructureTo(newCore); err != nil {
		// The residual may have absorbed part of the pass before failing; it
		// is no longer trustworthy for either problem, so drop the warm
		// state — the instance stays valid for its base problem, just cold.
		i.net, i.flow, i.solved = nil, nil, false
		return fmt.Errorf("%w: %v", ErrIncompatibleUpdate, err)
	}
	i.p = p
	i.solved = false
	return nil
}

func (c *cpuSolver) Solve(ctx context.Context, p *Problem) (*Report, error) {
	coreG, pr := p.STCore()
	start := time.Now()
	f, err := maxflow.SolveContext(ctx, coreG, c.alg)
	if err != nil {
		return nil, err
	}
	elapsed := time.Since(start)
	// A Dinic solve of the core is bit-identical to the reference
	// computation the memo would run, so seed it instead of solving twice.
	// The other exact algorithms may differ in the last ulp, and seeding
	// from them would make the shared reference depend on backend order.
	if c.alg == maxflow.Dinic {
		p.seedExact(f.Value)
	}
	rep, err := expandedFlowReport(ctx, p, c.Name(), f, pr)
	if err != nil {
		return nil, err
	}
	rep.WallTime = elapsed
	return rep, nil
}

// expandedFlowReport maps a core-domain flow back onto the original graph
// and fills the shared reference value and prune accounting.
func expandedFlowReport(ctx context.Context, p *Problem, name string, f *graph.Flow, pr *graph.PruneResult) (*Report, error) {
	if pr != nil {
		f = pr.ExpandFlow(p.Graph(), f)
	}
	rep := flowReport(name, f)
	if pr != nil {
		rep.PrunedVertices = pr.RemovedVertices
		rep.PrunedEdges = pr.RemovedEdges
	}
	if err := p.fillExact(ctx, rep); err != nil {
		return nil, err
	}
	return rep, nil
}

// --- LP backend ------------------------------------------------------------

type lpSolver struct{ desc string }

func (l *lpSolver) Name() string     { return "lp" }
func (l *lpSolver) Describe() string { return l.desc }

func (l *lpSolver) Solve(ctx context.Context, p *Problem) (*Report, error) {
	coreG, pr := p.STCore()
	if coreG.NumEdges() == 0 {
		// The LP formulation rejects edgeless programs; an edgeless core
		// means the max-flow is zero.
		rep := flowReport(l.Name(), graph.NewFlow(p.Graph()))
		if err := p.fillExact(ctx, rep); err != nil {
			return nil, err
		}
		return rep, nil
	}
	// Formulate and solve directly (rather than via lp.SolveMaxFlowLPContext)
	// so the simplex pivot count reaches the report's Iterations field.
	lpProb, err := lp.MaxFlowProblem(coreG)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	res, err := lp.SolveContext(ctx, lpProb)
	if err != nil {
		return nil, err
	}
	elapsed := time.Since(start)
	f := graph.NewFlow(coreG)
	copy(f.Edge, res.X)
	f.RecomputeValue(coreG)
	rep, err := expandedFlowReport(ctx, p, l.Name(), f, pr)
	if err != nil {
		return nil, err
	}
	rep.Iterations = res.Iterations
	rep.Converged = true
	rep.WallTime = elapsed
	return rep, nil
}

// --- decomposition backend -------------------------------------------------

type decomposeSolver struct{ desc string }

func (d *decomposeSolver) Name() string     { return "decompose" }
func (d *decomposeSolver) Describe() string { return d.desc }

// Solve runs the N-region dual decomposition.  The region plan comes from
// the problem's substrate budget when one is set (the planner chooses the
// region count so each subproblem fits); otherwise from the decompose
// options' Regions field (default two, the paper's evaluation setup), split
// by the budget's partitioner or the BFS bands.
func (d *decomposeSolver) Solve(ctx context.Context, p *Problem) (*Report, error) {
	return d.solveWithBudget(ctx, p, p.Budget())
}

// solveWithBudget is Solve under an explicit budget — the service routes its
// service-wide default budget here for problems that carry none of their own.
func (d *decomposeSolver) solveWithBudget(ctx context.Context, p *Problem, b Budget) (*Report, error) {
	plan, part, err := planFor(p, b)
	if err != nil {
		return nil, err
	}
	if !plan.Sharded {
		// No budget pressure (or a shallow instance): decompose anyway —
		// that is this backend's job — at the configured region count.
		opts := p.DecomposeOptions()
		part, err = p.PartitionInto(b.Partitioner, opts.NumRegions())
		if err != nil {
			return nil, err
		}
		plan.Sharded = part.NumRegions() > 1
		plan.Regions = part.NumRegions()
		if plan.Partitioner == "" {
			pt, _ := decompose.PartitionerByName(b.Partitioner)
			plan.Partitioner = pt.Name()
		}
	}
	start := time.Now()
	res, err := decompose.SolveContext(ctx, p.Graph(), part, p.DecomposeOptions())
	if err != nil {
		return nil, err
	}
	elapsed := time.Since(start)
	plan.Regions = res.Regions
	plan.RegionVertices = res.SubproblemSizes
	rep := &Report{
		Solver:     d.Name(),
		FlowValue:  res.FlowValue,
		Iterations: res.Iterations,
		Converged:  res.Converged,
		Plan:       plan,
		WallTime:   elapsed,
	}
	if err := p.fillExact(ctx, rep); err != nil {
		return nil, err
	}
	return rep, nil
}
