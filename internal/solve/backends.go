package solve

import (
	"context"
	"time"

	"analogflow/internal/core"
	"analogflow/internal/decompose"
	"analogflow/internal/graph"
	"analogflow/internal/lp"
	"analogflow/internal/maxflow"
)

// builtinSolvers returns the seven built-in backends.
func builtinSolvers() []Solver {
	return []Solver{
		&analogSolver{mode: core.ModeBehavioral, name: "behavioral",
			desc: "analog substrate, behavioral model (quantized + perturbed LP steady state)"},
		&analogSolver{mode: core.ModeCircuit, name: "circuit",
			desc: "analog substrate, full MNA circuit emulation (Newton on the Section 2 circuit)"},
		&cpuSolver{alg: maxflow.Dinic,
			desc: "Dinitz blocking-flow algorithm (exact reference)"},
		&cpuSolver{alg: maxflow.EdmondsKarp,
			desc: "Edmonds-Karp shortest augmenting paths (exact)"},
		&cpuSolver{alg: maxflow.PushRelabel,
			desc: "Goldberg-Tarjan FIFO push-relabel with gap + global relabelling (exact, the paper's CPU baseline)"},
		&lpSolver{desc: "primal simplex on the Section 2 max-flow LP (exact, dense tableau)"},
		&decomposeSolver{desc: "Section 6.4 dual decomposition into substrate-sized overlapping subproblems"},
	}
}

// --- analog backends (behavioral, circuit) ---------------------------------

// analogSolver adapts core.Solver/core.Session to the unified interface.  It
// is Warmable: a warm instance is a core.Session whose cached MNA engine
// turns repeated circuit solves into numeric-only refactorizations.
type analogSolver struct {
	mode core.Mode
	name string
	desc string
}

func (a *analogSolver) Name() string     { return a.name }
func (a *analogSolver) Describe() string { return a.desc }

func (a *analogSolver) Solve(ctx context.Context, p *Problem) (*Report, error) {
	inst, err := a.NewInstance(p)
	if err != nil {
		return nil, err
	}
	return inst.Solve(ctx)
}

// stamped sets rep.WallTime to the elapsed solver-proper time.  Backends
// stamp their own reports so the figure measures the algorithm, not the
// shared lazy preprocessing or the exact-reference solve that may piggyback
// on the first call (Registry/Service only fill WallTime when it is unset).
func stamped(rep *Report, start time.Time) *Report {
	rep.WallTime = time.Since(start)
	return rep
}

// NewInstance builds a session around the problem's shared preprocessing
// artifacts, with the backend's mode forced onto the parameters.
func (a *analogSolver) NewInstance(p *Problem) (Instance, error) {
	prep, err := p.Prepared()
	if err != nil {
		return nil, err
	}
	params := p.Params()
	params.Mode = a.mode
	sess, err := core.NewSessionPrepared(params, prep)
	if err != nil {
		return nil, err
	}
	return &analogInstance{name: a.name, sess: sess}, nil
}

type analogInstance struct {
	name string
	sess *core.Session
}

func (i *analogInstance) Solve(ctx context.Context) (*Report, error) {
	start := time.Now()
	res, err := i.sess.Solve(ctx)
	if err != nil {
		return nil, err
	}
	return stamped(reportFromCore(i.name, res), start), nil
}

// session exposes the underlying session for engine-level assertions in
// tests and diagnostics.
func (i *analogInstance) session() *core.Session { return i.sess }

// reportFromCore lifts a core.Result into the unified report.
func reportFromCore(name string, res *core.Result) *Report {
	rep := &Report{
		Solver:          name,
		FlowValue:       res.FlowValue,
		ExactValue:      res.ExactValue,
		RelativeError:   res.RelativeError,
		ConvergenceTime: res.ConvergenceTime,
		ProgrammingTime: res.ProgrammingTime,
		SubstratePower:  res.SubstratePower,
		Energy:          res.Energy,
		Waves:           res.Waves,
		PrunedVertices:  res.PrunedVertices,
		PrunedEdges:     res.PrunedEdges,
	}
	if res.Flow != nil {
		rep.EdgeFlows = append([]float64(nil), res.Flow.Edge...)
	}
	return rep
}

// --- exact CPU backends (dinic, edmonds-karp, push-relabel) ----------------

// cpuSolver adapts the combinatorial algorithms.  It solves on the shared
// s-t core and expands the flow back to the original edge indexing; the
// max-flow value is preserved exactly by construction of the prune.
type cpuSolver struct {
	alg  maxflow.Algorithm
	desc string
}

func (c *cpuSolver) Name() string     { return c.alg.String() }
func (c *cpuSolver) Describe() string { return c.desc }

func (c *cpuSolver) Solve(ctx context.Context, p *Problem) (*Report, error) {
	coreG, pr := p.STCore()
	start := time.Now()
	f, err := maxflow.SolveContext(ctx, coreG, c.alg)
	if err != nil {
		return nil, err
	}
	elapsed := time.Since(start)
	// A Dinic solve of the core is bit-identical to the reference
	// computation the memo would run, so seed it instead of solving twice.
	// The other exact algorithms may differ in the last ulp, and seeding
	// from them would make the shared reference depend on backend order.
	if c.alg == maxflow.Dinic {
		p.seedExact(f.Value)
	}
	rep, err := expandedFlowReport(ctx, p, c.Name(), f, pr)
	if err != nil {
		return nil, err
	}
	rep.WallTime = elapsed
	return rep, nil
}

// expandedFlowReport maps a core-domain flow back onto the original graph
// and fills the shared reference value and prune accounting.
func expandedFlowReport(ctx context.Context, p *Problem, name string, f *graph.Flow, pr *graph.PruneResult) (*Report, error) {
	if pr != nil {
		f = pr.ExpandFlow(p.Graph(), f)
	}
	rep := flowReport(name, f)
	if pr != nil {
		rep.PrunedVertices = pr.RemovedVertices
		rep.PrunedEdges = pr.RemovedEdges
	}
	if err := p.fillExact(ctx, rep); err != nil {
		return nil, err
	}
	return rep, nil
}

// --- LP backend ------------------------------------------------------------

type lpSolver struct{ desc string }

func (l *lpSolver) Name() string     { return "lp" }
func (l *lpSolver) Describe() string { return l.desc }

func (l *lpSolver) Solve(ctx context.Context, p *Problem) (*Report, error) {
	coreG, pr := p.STCore()
	if coreG.NumEdges() == 0 {
		// The LP formulation rejects edgeless programs; an edgeless core
		// means the max-flow is zero.
		rep := flowReport(l.Name(), graph.NewFlow(p.Graph()))
		if err := p.fillExact(ctx, rep); err != nil {
			return nil, err
		}
		return rep, nil
	}
	// Formulate and solve directly (rather than via lp.SolveMaxFlowLPContext)
	// so the simplex pivot count reaches the report's Iterations field.
	lpProb, err := lp.MaxFlowProblem(coreG)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	res, err := lp.SolveContext(ctx, lpProb)
	if err != nil {
		return nil, err
	}
	elapsed := time.Since(start)
	f := graph.NewFlow(coreG)
	copy(f.Edge, res.X)
	f.RecomputeValue(coreG)
	rep, err := expandedFlowReport(ctx, p, l.Name(), f, pr)
	if err != nil {
		return nil, err
	}
	rep.Iterations = res.Iterations
	rep.Converged = true
	rep.WallTime = elapsed
	return rep, nil
}

// --- decomposition backend -------------------------------------------------

type decomposeSolver struct{ desc string }

func (d *decomposeSolver) Name() string     { return "decompose" }
func (d *decomposeSolver) Describe() string { return d.desc }

func (d *decomposeSolver) Solve(ctx context.Context, p *Problem) (*Report, error) {
	part := p.Partition()
	start := time.Now()
	res, err := decompose.SolveContext(ctx, p.Graph(), part, p.DecomposeOptions())
	if err != nil {
		return nil, err
	}
	elapsed := time.Since(start)
	rep := &Report{
		Solver:     d.Name(),
		FlowValue:  res.FlowValue,
		Iterations: res.Iterations,
		Converged:  res.Converged,
		WallTime:   elapsed,
	}
	if err := p.fillExact(ctx, rep); err != nil {
		return nil, err
	}
	return rep, nil
}
