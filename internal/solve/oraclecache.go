package solve

import (
	"fmt"
	"sync"

	"analogflow/internal/decompose"
)

// oracleKey identifies one cached region oracle: the fingerprint of the
// problem whose sharded solve built (or last rebound) it, the backend that
// serves the regions, and the effective budget that shaped the partition.
// The budget is part of the key even though a problem-carried budget already
// feeds the fingerprint, because the effective budget may come from the
// service configuration instead — two services with different budgets must
// never share an oracle for the same problem.
func oracleKey(fp string, sol Solver, b Budget) string {
	return fmt.Sprintf("%s|%s|%d:%d:%s", fp, sol.Name(), b.MaxVertices, b.maxRegions(), b.partitionerName())
}

// partitionerName resolves the budget's partitioner to its canonical name
// ("" aliases the default), so key equality matches partition equality.
func (b Budget) partitionerName() string {
	pt, err := decompose.PartitionerByName(b.Partitioner)
	if err != nil {
		return b.Partitioner // invalid budgets never reach a solve; keep the key total
	}
	return pt.Name()
}

// oracleCache keeps warm region oracles across sharded solves of the same
// problem chain.  One entry bundles the per-region warm instances of one
// sharded solve — analog sessions with frozen MNA patterns, CPU residual
// networks — which is exactly the state an oversized Service.Update chain
// needs to stay warm step to step.
//
// Ownership discipline: an oracle is either in the cache or owned by exactly
// one in-flight sharded solve, never both.  claim removes the entry, giving
// the caller exclusive use of the per-region instances (SolveRegion
// serialises same-region calls only within one decomposition run, so shared
// use across runs would race); publish re-inserts the oracle under the
// fingerprint it now answers for.  Because only fully built oracles are ever
// published, eviction can never orphan an entry under construction — the
// in-flight hazard the flat instance cache guards with cacheEntry.ready does
// not arise here by construction.
type oracleCache struct {
	mu   sync.Mutex
	m    map[string]*oracleSlot
	max  int
	tick int64
}

type oracleSlot struct {
	oracle  *regionOracle
	lastUse int64
}

func newOracleCache(max int) *oracleCache {
	if max <= 0 {
		max = 8
	}
	return &oracleCache{m: make(map[string]*oracleSlot), max: max}
}

// claim removes and returns the oracle cached under key, or nil.  The caller
// becomes the oracle's only owner; it must either publish the oracle back
// (possibly under a new key) or drop it.
func (c *oracleCache) claim(key string) *regionOracle {
	c.mu.Lock()
	defer c.mu.Unlock()
	slot, ok := c.m[key]
	if !ok {
		return nil
	}
	delete(c.m, key)
	return slot.oracle
}

// publish inserts an oracle under key.  When two racers publish the same key
// (concurrent identical chains: one claimed the warm oracle, the loser built
// cold), the first one wins and the loser's oracle is dropped — its engines
// are garbage once its solve's report is returned.  Publishing evicts
// least-recently-used entries beyond the bound.
func (c *oracleCache) publish(key string, o *regionOracle) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, exists := c.m[key]; exists {
		return
	}
	c.tick++
	c.m[key] = &oracleSlot{oracle: o, lastUse: c.tick}
	for len(c.m) > c.max {
		var victim string
		var oldest int64
		for k, s := range c.m {
			if victim == "" || s.lastUse < oldest {
				victim, oldest = k, s.lastUse
			}
		}
		delete(c.m, victim)
	}
}

// size reports the current population (for stats).
func (c *oracleCache) size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}
