package solve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrOverloaded is the sentinel a shed request fails with: the admission
// queue judged that the request could not start before its deadline (or the
// queue itself is full), so it was rejected without ever consuming a worker
// slot.  Match with errors.Is; the concrete *OverloadError carries the
// queue state the decision was made on.
var ErrOverloaded = errors.New("solve: service overloaded")

// OverloadError is a load-shedding rejection.  RetryAfter is the admission
// queue's estimate of when capacity frees up — analogflowd surfaces it as an
// HTTP Retry-After header on the 429 it maps this error to.
type OverloadError struct {
	// QueueDepth is the number of sheddable requests that were already
	// queued when this one was rejected.
	QueueDepth int
	// EstimatedWait is queue depth × the backend's recent-latency EMA —
	// the wait the deadline could not absorb (zero for a full-queue shed).
	EstimatedWait time.Duration
	// RetryAfter is the suggested back-off before retrying.
	RetryAfter time.Duration
	// Reason distinguishes "deadline" (estimated wait exceeds the request
	// deadline) from "queue full" (bounded admission queue at capacity).
	Reason string
}

func (e *OverloadError) Error() string {
	return fmt.Sprintf("solve: overloaded (%s): queue depth %d, estimated wait %v",
		e.Reason, e.QueueDepth, e.EstimatedWait)
}

// Unwrap makes errors.Is(err, ErrOverloaded) match.
func (e *OverloadError) Unwrap() error { return ErrOverloaded }

// Admission lanes, highest priority first.  Urgent is internal: region
// solves of an in-flight sharded request and the coordinator's slot
// re-acquisition — work that a running request depends on for progress, so
// it is never shed and always granted ahead of queued requests.  Priority
// carries Update steps (warm session traffic), so a session chain is never
// shed behind a backlog of cold batch solves.  Normal carries Solve traffic.
const (
	laneUrgent = iota
	lanePriority
	laneNormal
	numLanes
)

// waiter is one queued acquire; grant is closed exactly once when a slot is
// handed to it.
type waiter struct {
	grant chan struct{}
}

// admitter is the bounded admission queue in front of the worker pool: a
// counting semaphore with priority lanes, deadline-aware shedding, and a cap
// on how many sheddable requests may queue.  Slots are handed off directly
// from release to the longest-waiting highest-lane waiter, so the invariant
// "waiters exist only while every slot is in use" holds and a free slot
// always admits immediately.
type admitter struct {
	mu       sync.Mutex
	capacity int
	inUse    int
	// queued counts sheddable (priority + normal) waiters against maxQueue;
	// urgent waiters are exempt — shedding them would wedge the sharded
	// request that owns them.
	queued   int
	maxQueue int
	lanes    [numLanes][]*waiter
}

func newAdmitter(capacity, maxQueue int) *admitter {
	if maxQueue <= 0 {
		maxQueue = 8 * capacity
	}
	return &admitter{capacity: capacity, maxQueue: maxQueue}
}

// acquire takes one worker slot, queueing in the given lane when none is
// free.  For sheddable lanes the admission decision happens before queueing:
// a full queue, or a deadline the estimated wait (queue position × estPer)
// already overruns, rejects with *OverloadError without consuming anything.
// estPer <= 0 means "no latency estimate yet" and disables the deadline
// check (the first requests against a cold backend are always admitted).
// The context bounds the queue wait; lane-urgent acquires are never shed but
// still honor cancellation.
func (a *admitter) acquire(ctx context.Context, lane int, deadline time.Time, estPer time.Duration) error {
	a.mu.Lock()
	if a.inUse < a.capacity {
		a.inUse++
		a.mu.Unlock()
		return nil
	}
	if lane != laneUrgent {
		if a.queued >= a.maxQueue {
			depth := a.queued
			a.mu.Unlock()
			return &OverloadError{
				QueueDepth: depth,
				RetryAfter: estPer,
				Reason:     "queue full",
			}
		}
		if !deadline.IsZero() && estPer > 0 {
			// Position among waiters that will be served before us: every
			// waiter in a same-or-higher-priority lane.
			pos := 0
			for l := laneUrgent; l <= lane; l++ {
				pos += len(a.lanes[l])
			}
			// Slots free in waves of `capacity`; this request starts after
			// ceil((pos+1)/capacity) waves of the backend's typical latency.
			waves := (pos + a.capacity) / a.capacity
			est := estPer * time.Duration(waves)
			if time.Now().Add(est).After(deadline) {
				depth := a.queued
				a.mu.Unlock()
				return &OverloadError{
					QueueDepth:    depth,
					EstimatedWait: est,
					RetryAfter:    est,
					Reason:        "deadline",
				}
			}
		}
		a.queued++
	}
	w := &waiter{grant: make(chan struct{})}
	a.lanes[lane] = append(a.lanes[lane], w)
	a.mu.Unlock()

	select {
	case <-w.grant:
		return nil
	case <-ctx.Done():
		a.mu.Lock()
		if a.remove(lane, w) {
			a.mu.Unlock()
			return ctx.Err()
		}
		a.mu.Unlock()
		// Lost the race: release already granted us the slot.  Take it and
		// hand it straight back so the next waiter runs.
		<-w.grant
		a.release()
		return ctx.Err()
	}
}

// acquireBlocking takes a slot in the given lane unconditionally — no
// shedding, no cancellation.  It exists for the coordinator's slot
// re-acquisition after a region fan-out, which must succeed for the caller's
// balanced release (slot holders are live solves that terminate, so the wait
// is bounded).
func (a *admitter) acquireBlocking(lane int) {
	a.mu.Lock()
	if a.inUse < a.capacity {
		a.inUse++
		a.mu.Unlock()
		return
	}
	w := &waiter{grant: make(chan struct{})}
	a.lanes[lane] = append(a.lanes[lane], w)
	a.mu.Unlock()
	<-w.grant
}

// release returns one slot, handing it directly to the longest-waiting
// waiter in the highest-priority non-empty lane, or freeing it when no one
// waits.  After a governor shrink (capacity below inUse) the slot is retired
// instead of handed off, which is how the pool drains down to the new bound.
func (a *admitter) release() {
	a.mu.Lock()
	if a.inUse <= a.capacity {
		if w := a.popLocked(); w != nil {
			a.mu.Unlock()
			close(w.grant)
			return
		}
	}
	a.inUse--
	a.mu.Unlock()
}

// popLocked dequeues the longest-waiting waiter in the highest-priority
// non-empty lane, or nil.  Callers hold a.mu.
func (a *admitter) popLocked() *waiter {
	for lane := 0; lane < numLanes; lane++ {
		if len(a.lanes[lane]) == 0 {
			continue
		}
		w := a.lanes[lane][0]
		a.lanes[lane] = a.lanes[lane][1:]
		if lane != laneUrgent {
			a.queued--
		}
		return w
	}
	return nil
}

// resize changes the worker-slot capacity.  Growing grants freed slots to
// queued waiters immediately; shrinking lets in-flight work finish and
// retires slots as they release (see release).  The governor is the only
// caller.
func (a *admitter) resize(capacity int) {
	if capacity < 1 {
		capacity = 1
	}
	var grants []*waiter
	a.mu.Lock()
	a.capacity = capacity
	for a.inUse < a.capacity {
		w := a.popLocked()
		if w == nil {
			break
		}
		a.inUse++
		grants = append(grants, w)
	}
	a.mu.Unlock()
	for _, w := range grants {
		close(w.grant)
	}
}

// remove unqueues w from lane; false means w was already granted.  Callers
// hold a.mu.
func (a *admitter) remove(lane int, w *waiter) bool {
	for i, q := range a.lanes[lane] {
		if q == w {
			a.lanes[lane] = append(a.lanes[lane][:i], a.lanes[lane][i+1:]...)
			if lane != laneUrgent {
				a.queued--
			}
			return true
		}
	}
	return false
}

// queueDepth reports the current sheddable-waiter count (for stats).
func (a *admitter) queueDepth() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.queued
}

// laneDepths reports the waiter count per lane (urgent waiters included).
func (a *admitter) laneDepths() [numLanes]int {
	a.mu.Lock()
	defer a.mu.Unlock()
	var d [numLanes]int
	for l := range a.lanes {
		d[l] = len(a.lanes[l])
	}
	return d
}

// capacityNow reports the current (possibly governor-adjusted) slot count.
func (a *admitter) capacityNow() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.capacity
}

// busy reports how many slots are currently held.
func (a *admitter) busy() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.inUse
}
