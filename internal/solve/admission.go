package solve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrOverloaded is the sentinel a shed request fails with: the admission
// queue judged that the request could not start before its deadline (or the
// queue itself is full), so it was rejected without ever consuming a worker
// slot.  Match with errors.Is; the concrete *OverloadError carries the
// queue state the decision was made on.
var ErrOverloaded = errors.New("solve: service overloaded")

// OverloadError is a load-shedding rejection.  RetryAfter is the admission
// queue's estimate of when capacity frees up — analogflowd surfaces it as an
// HTTP Retry-After header on the 429 it maps this error to.
type OverloadError struct {
	// QueueDepth is the number of sheddable requests that were already
	// queued when this one was rejected.
	QueueDepth int
	// EstimatedWait is queue depth × the backend's recent-latency EMA —
	// the wait the deadline could not absorb (zero for a full-queue shed).
	EstimatedWait time.Duration
	// RetryAfter is the suggested back-off before retrying.
	RetryAfter time.Duration
	// Reason distinguishes "deadline" (estimated wait exceeds the request
	// deadline) from "queue full" (bounded admission queue at capacity).
	Reason string
}

func (e *OverloadError) Error() string {
	return fmt.Sprintf("solve: overloaded (%s): queue depth %d, estimated wait %v",
		e.Reason, e.QueueDepth, e.EstimatedWait)
}

// Unwrap makes errors.Is(err, ErrOverloaded) match.
func (e *OverloadError) Unwrap() error { return ErrOverloaded }

// Admission lanes, highest priority first.  Urgent is internal: region
// solves of an in-flight sharded request and the coordinator's slot
// re-acquisition — work that a running request depends on for progress, so
// it is never shed and always granted ahead of queued requests.  Priority
// carries Update steps (warm session traffic), so a session chain is never
// shed behind a backlog of cold batch solves.  Normal carries Solve traffic.
const (
	laneUrgent = iota
	lanePriority
	laneNormal
	numLanes
)

// waiter is one queued acquire; grant is closed exactly once when a slot is
// handed to it.
type waiter struct {
	grant chan struct{}
}

// admitter is the bounded admission queue in front of the worker pool: a
// counting semaphore with priority lanes, deadline-aware shedding, and a cap
// on how many sheddable requests may queue.  Slots are handed off directly
// from release to the longest-waiting highest-lane waiter, so the invariant
// "waiters exist only while every slot is in use" holds and a free slot
// always admits immediately.
type admitter struct {
	mu       sync.Mutex
	capacity int
	inUse    int
	// queued counts sheddable (priority + normal) waiters against maxQueue;
	// urgent waiters are exempt — shedding them would wedge the sharded
	// request that owns them.
	queued   int
	maxQueue int
	lanes    [numLanes][]*waiter
}

func newAdmitter(capacity, maxQueue int) *admitter {
	if maxQueue <= 0 {
		maxQueue = 8 * capacity
	}
	return &admitter{capacity: capacity, maxQueue: maxQueue}
}

// acquire takes one worker slot, queueing in the given lane when none is
// free.  For sheddable lanes the admission decision happens before queueing:
// a full queue, or a deadline the estimated wait (queue position × estPer)
// already overruns, rejects with *OverloadError without consuming anything.
// estPer <= 0 means "no latency estimate yet" and disables the deadline
// check (the first requests against a cold backend are always admitted).
// The context bounds the queue wait; lane-urgent acquires are never shed but
// still honor cancellation.
func (a *admitter) acquire(ctx context.Context, lane int, deadline time.Time, estPer time.Duration) error {
	a.mu.Lock()
	if a.inUse < a.capacity {
		a.inUse++
		a.mu.Unlock()
		return nil
	}
	if lane != laneUrgent {
		if a.queued >= a.maxQueue {
			depth := a.queued
			a.mu.Unlock()
			return &OverloadError{
				QueueDepth: depth,
				RetryAfter: estPer,
				Reason:     "queue full",
			}
		}
		if !deadline.IsZero() && estPer > 0 {
			// Position among waiters that will be served before us: every
			// waiter in a same-or-higher-priority lane.
			pos := 0
			for l := laneUrgent; l <= lane; l++ {
				pos += len(a.lanes[l])
			}
			// Slots free in waves of `capacity`; this request starts after
			// ceil((pos+1)/capacity) waves of the backend's typical latency.
			waves := (pos + a.capacity) / a.capacity
			est := estPer * time.Duration(waves)
			if time.Now().Add(est).After(deadline) {
				depth := a.queued
				a.mu.Unlock()
				return &OverloadError{
					QueueDepth:    depth,
					EstimatedWait: est,
					RetryAfter:    est,
					Reason:        "deadline",
				}
			}
		}
		a.queued++
	}
	w := &waiter{grant: make(chan struct{})}
	a.lanes[lane] = append(a.lanes[lane], w)
	a.mu.Unlock()

	select {
	case <-w.grant:
		return nil
	case <-ctx.Done():
		a.mu.Lock()
		if a.remove(lane, w) {
			a.mu.Unlock()
			return ctx.Err()
		}
		a.mu.Unlock()
		// Lost the race: release already granted us the slot.  Take it and
		// hand it straight back so the next waiter runs.
		<-w.grant
		a.release()
		return ctx.Err()
	}
}

// acquireBlocking takes a slot in the given lane unconditionally — no
// shedding, no cancellation.  It exists for the coordinator's slot
// re-acquisition after a region fan-out, which must succeed for the caller's
// balanced release (slot holders are live solves that terminate, so the wait
// is bounded).
func (a *admitter) acquireBlocking(lane int) {
	a.mu.Lock()
	if a.inUse < a.capacity {
		a.inUse++
		a.mu.Unlock()
		return
	}
	w := &waiter{grant: make(chan struct{})}
	a.lanes[lane] = append(a.lanes[lane], w)
	a.mu.Unlock()
	<-w.grant
}

// release returns one slot, handing it directly to the longest-waiting
// waiter in the highest-priority non-empty lane, or freeing it when no one
// waits.
func (a *admitter) release() {
	a.mu.Lock()
	for lane := 0; lane < numLanes; lane++ {
		if len(a.lanes[lane]) == 0 {
			continue
		}
		w := a.lanes[lane][0]
		a.lanes[lane] = a.lanes[lane][1:]
		if lane != laneUrgent {
			a.queued--
		}
		a.mu.Unlock()
		close(w.grant)
		return
	}
	a.inUse--
	a.mu.Unlock()
}

// remove unqueues w from lane; false means w was already granted.  Callers
// hold a.mu.
func (a *admitter) remove(lane int, w *waiter) bool {
	for i, q := range a.lanes[lane] {
		if q == w {
			a.lanes[lane] = append(a.lanes[lane][:i], a.lanes[lane][i+1:]...)
			if lane != laneUrgent {
				a.queued--
			}
			return true
		}
	}
	return false
}

// queueDepth reports the current sheddable-waiter count (for stats).
func (a *admitter) queueDepth() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.queued
}

// latencyEMA tracks an exponential moving average of solve wall time per
// backend — the estimator the admission queue multiplies by queue depth to
// decide whether a deadline is still meetable.
type latencyEMA struct {
	mu sync.Mutex
	m  map[string]time.Duration
}

// emaAlpha weights the newest observation; 0.2 smooths over ~5 recent
// solves, enough to ride out one outlier without going stale under shifting
// problem sizes.
const emaAlpha = 0.2

func newLatencyEMA() *latencyEMA {
	return &latencyEMA{m: make(map[string]time.Duration)}
}

// observe folds one completed solve's wall time into the backend's average.
func (l *latencyEMA) observe(solver string, d time.Duration) {
	if d <= 0 {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	prev, ok := l.m[solver]
	if !ok {
		l.m[solver] = d
		return
	}
	l.m[solver] = time.Duration(emaAlpha*float64(d) + (1-emaAlpha)*float64(prev))
}

// estimate returns the backend's current average, or 0 when nothing has
// been observed yet (which disables deadline shedding for that backend).
func (l *latencyEMA) estimate(solver string) time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.m[solver]
}

// snapshot returns the averages in milliseconds for stats exposure.
func (l *latencyEMA) snapshot() map[string]float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.m) == 0 {
		return nil
	}
	out := make(map[string]float64, len(l.m))
	for k, v := range l.m {
		out[k] = float64(v) / float64(time.Millisecond)
	}
	return out
}
