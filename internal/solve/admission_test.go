package solve

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"analogflow/internal/core"
	"analogflow/internal/graph"
)

// gateSolver blocks each solve until released, so tests can pin the worker
// pool in a known state.  started receives one token per solve that begins;
// release is closed (or fed) to let solves finish.
type gateSolver struct {
	name    string
	started chan struct{}
	release chan struct{}
	calls   atomic.Int64
}

func newGateSolver(name string) *gateSolver {
	return &gateSolver{
		name:    name,
		started: make(chan struct{}, 64),
		release: make(chan struct{}),
	}
}

func (g *gateSolver) Name() string     { return g.name }
func (g *gateSolver) Describe() string { return "test backend gated on a channel" }

func (g *gateSolver) Solve(ctx context.Context, p *Problem) (*Report, error) {
	g.calls.Add(1)
	g.started <- struct{}{}
	select {
	case <-g.release:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return &Report{FlowValue: 1}, nil
}

// orderSolver records the fingerprint of every problem it starts solving.
type orderSolver struct {
	mu    sync.Mutex
	order []string
}

func (o *orderSolver) Name() string     { return "order" }
func (o *orderSolver) Describe() string { return "test backend recording solve order" }

func (o *orderSolver) Solve(ctx context.Context, p *Problem) (*Report, error) {
	o.mu.Lock()
	o.order = append(o.order, p.Fingerprint())
	o.mu.Unlock()
	return &Report{FlowValue: 1}, nil
}

func gateService(t *testing.T, gate *gateSolver, extra []Solver, workers, maxQueue int) *Service {
	t.Helper()
	reg := NewRegistry()
	if err := reg.Register(gate); err != nil {
		t.Fatal(err)
	}
	for _, s := range extra {
		if err := reg.Register(s); err != nil {
			t.Fatal(err)
		}
	}
	return NewService(Config{Registry: reg, Workers: workers, MaxQueue: maxQueue})
}

// occupy fills every worker slot of the service with gated solves and waits
// until they are all executing.  The returned wait function releases them
// and joins the goroutines.
func occupy(t *testing.T, svc *Service, gate *gateSolver, prob *Problem, n int) (wait func()) {
	t.Helper()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := svc.Solve(context.Background(), Request{Solver: gate.name, Problem: prob}); err != nil {
				t.Errorf("occupier failed: %v", err)
			}
		}()
	}
	for i := 0; i < n; i++ {
		select {
		case <-gate.started:
		case <-time.After(5 * time.Second):
			t.Fatal("occupier never started")
		}
	}
	return func() {
		close(gate.release)
		wg.Wait()
	}
}

// waitQueueDepth polls until the admission queue holds exactly want
// sheddable waiters.
func waitQueueDepth(t *testing.T, svc *Service, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for svc.adm.queueDepth() != want {
		if time.Now().After(deadline) {
			t.Fatalf("queue depth never reached %d (at %d)", want, svc.adm.queueDepth())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestShedDeadlineUnmeetable pins the deadline-aware shed: with the single
// worker pinned and the backend's latency EMA far above the request
// deadline, the request is rejected immediately with ErrOverloaded — it
// never queues, never holds a slot, and the solver never sees it.
func TestShedDeadlineUnmeetable(t *testing.T) {
	gate := newGateSolver("block")
	svc := gateService(t, gate, nil, 1, 0)
	prob := figure5Problem(t, core.DefaultParams())
	done := occupy(t, svc, gate, prob, 1)

	// Prime the estimator: the backend "typically" takes an hour, so any
	// millisecond-scale deadline is hopeless once the slot is taken.
	svc.ema.observe("block", time.Hour)
	callsBefore := gate.calls.Load()
	_, err := svc.Solve(context.Background(), Request{
		Solver:   "block",
		Problem:  prob,
		Deadline: time.Now().Add(50 * time.Millisecond),
	})
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("want ErrOverloaded, got %v", err)
	}
	var ovl *OverloadError
	if !errors.As(err, &ovl) {
		t.Fatalf("error %v is not an *OverloadError", err)
	}
	if ovl.Reason != "deadline" {
		t.Errorf("shed reason %q, want deadline", ovl.Reason)
	}
	if ovl.EstimatedWait < time.Hour/2 {
		t.Errorf("estimated wait %v implausibly small", ovl.EstimatedWait)
	}
	if ovl.RetryAfter <= 0 {
		t.Errorf("no retry-after hint: %+v", ovl)
	}
	if got := gate.calls.Load(); got != callsBefore {
		t.Errorf("shed request reached the solver (%d calls, was %d)", got, callsBefore)
	}
	if st := svc.Stats(); st.ShedRequests != 1 {
		t.Errorf("shed_requests = %d, want 1 (%+v)", st.ShedRequests, st)
	}
	done()
	// The service keeps serving after shedding: a no-deadline request runs.
	if _, err := svc.Solve(context.Background(), Request{Solver: "block", Problem: prob}); err != nil {
		t.Fatalf("post-shed solve failed: %v", err)
	}
}

// TestShedQueueFull pins the bounded-queue shed: once MaxQueue sheddable
// waiters queue behind a pinned worker, the next request is rejected with
// reason "queue full" regardless of deadline.
func TestShedQueueFull(t *testing.T) {
	gate := newGateSolver("block")
	svc := gateService(t, gate, nil, 1, 1)
	prob := figure5Problem(t, core.DefaultParams())
	done := occupy(t, svc, gate, prob, 1)

	// One queued request fills the bounded queue.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := svc.Solve(context.Background(), Request{Solver: "block", Problem: prob}); err != nil {
			t.Errorf("queued request failed: %v", err)
		}
	}()
	waitQueueDepth(t, svc, 1)

	_, err := svc.Solve(context.Background(), Request{Solver: "block", Problem: prob})
	var ovl *OverloadError
	if !errors.As(err, &ovl) || ovl.Reason != "queue full" {
		t.Fatalf("want queue-full OverloadError, got %v", err)
	}
	if st := svc.Stats(); st.ShedRequests != 1 || st.QueueDepth != 1 {
		t.Errorf("stats after shed: shed=%d depth=%d, want 1/1", st.ShedRequests, st.QueueDepth)
	}
	done()
	wg.Wait()
	// The queued request drained the queue and released its slot.
	if st := svc.Stats(); st.QueueDepth != 0 || st.InFlight != 0 {
		t.Errorf("stats after drain: %+v", st)
	}
}

// TestShedPriorityLaneAdmitsUpdatesFirst pins the lane contract: with the
// single worker pinned, a queued Update step is granted the freed slot ahead
// of an earlier-queued cold Solve, so warm session traffic is never shed (or
// starved) behind batch backlog.
func TestShedPriorityLaneAdmitsUpdatesFirst(t *testing.T) {
	gate := newGateSolver("block")
	rec := &orderSolver{}
	svc := gateService(t, gate, []Solver{rec}, 1, 0)
	coldProb := figure5Problem(t, core.DefaultParams())
	base, err := NewProblem(graph.PaperFigure5())
	if err != nil {
		t.Fatal(err)
	}
	upd := graph.CapacityUpdate{Edges: []int{0}, Capacities: []float64{9}}
	target, err := base.WithUpdate(upd)
	if err != nil {
		t.Fatal(err)
	}

	done := occupy(t, svc, gate, coldProb, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // queues first, in the normal lane
		defer wg.Done()
		if _, err := svc.Solve(context.Background(), Request{Solver: "order", Problem: coldProb}); err != nil {
			t.Errorf("cold solve failed: %v", err)
		}
	}()
	waitQueueDepth(t, svc, 1)
	wg.Add(1)
	go func() { // queues second, in the priority lane
		defer wg.Done()
		if _, err := svc.Update(context.Background(), UpdateRequest{Solver: "order", Problem: base, Update: upd}); err != nil {
			t.Errorf("update failed: %v", err)
		}
	}()
	waitQueueDepth(t, svc, 2)
	done()
	wg.Wait()

	rec.mu.Lock()
	order := append([]string(nil), rec.order...)
	rec.mu.Unlock()
	if len(order) != 2 {
		t.Fatalf("recorded %d solves, want 2", len(order))
	}
	if order[0] != target.Fingerprint() {
		t.Errorf("update did not run first: order[0] is the cold solve")
	}
}

// TestShedAdmitWorkerBound is the -race pin: a storm of concurrent
// shed/admit decisions — mixed deadlines, some shed, some queued, updates
// and solves interleaved — never lets more than Workers solves execute at
// once, and every failure is a typed admission outcome.
func TestShedAdmitWorkerBound(t *testing.T) {
	const workers = 2
	reg := NewRegistry()
	gauge := &gaugeSolver{}
	if err := reg.Register(gauge); err != nil {
		t.Fatal(err)
	}
	svc := NewService(Config{Registry: reg, Workers: workers, MaxQueue: 4})
	// A realistic EMA makes some tight deadlines shed and loose ones queue.
	svc.ema.observe("gauge", 5*time.Millisecond)
	prob := figure5Problem(t, core.DefaultParams())
	base, err := NewProblem(graph.PaperFigure5())
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	var shed, ok, failed atomic.Int64
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for j := 0; j < 25; j++ {
				var deadline time.Time
				switch rng.Intn(3) {
				case 0:
					deadline = time.Now().Add(time.Duration(rng.Intn(3)) * time.Microsecond)
				case 1:
					deadline = time.Now().Add(time.Second)
				}
				var err error
				if rng.Intn(4) == 0 {
					_, err = svc.Update(context.Background(), UpdateRequest{
						Solver: "gauge", Problem: base,
						Update:   graph.CapacityUpdate{Edges: []int{0}, Capacities: []float64{float64(1 + rng.Intn(50))}},
						Deadline: deadline,
					})
				} else {
					_, err = svc.Solve(context.Background(), Request{Solver: "gauge", Problem: prob, Deadline: deadline})
				}
				switch {
				case err == nil:
					ok.Add(1)
				case errors.Is(err, ErrOverloaded):
					shed.Add(1)
				case errors.Is(err, context.DeadlineExceeded):
					failed.Add(1)
				default:
					t.Errorf("unexpected error class: %v", err)
				}
			}
		}(int64(i + 1))
	}
	wg.Wait()
	if got := gauge.max.Load(); got > workers {
		t.Errorf("observed %d concurrent solves, want <= %d", got, workers)
	}
	if ok.Load() == 0 {
		t.Error("no request ever succeeded under load")
	}
	st := svc.Stats()
	if st.ShedRequests != shed.Load() {
		t.Errorf("shed_requests=%d but %d callers saw ErrOverloaded", st.ShedRequests, shed.Load())
	}
	if st.InFlight != 0 || st.QueueDepth != 0 {
		t.Errorf("service not quiescent after storm: %+v", st)
	}
}

// TestDrainSolveBatchSkipsPendingItems pins SolveBatchDrain: once the stop
// hook fires, in-flight items finish and every not-yet-started item fails
// with ErrStopped without touching the request counters.
func TestDrainSolveBatchSkipsPendingItems(t *testing.T) {
	reg := NewRegistry()
	rec := &orderSolver{}
	if err := reg.Register(rec); err != nil {
		t.Fatal(err)
	}
	svc := NewService(Config{Registry: reg, Workers: 1})
	prob := figure5Problem(t, core.DefaultParams())
	reqs := make([]Request, 5)
	for i := range reqs {
		reqs[i] = Request{Solver: "order", Problem: prob}
	}
	var stopped atomic.Bool
	var emitted int
	results := svc.SolveBatchDrain(context.Background(), reqs, func(res BatchResult) {
		if res.Err == nil {
			emitted++
			if emitted == 2 {
				stopped.Store(true) // drain begins mid-batch
			}
		}
	}, stopped.Load)
	statsAfter := svc.Stats()
	var okN, stoppedN int
	for _, r := range results {
		switch {
		case r.Err == nil:
			okN++
		case errors.Is(r.Err, ErrStopped):
			stoppedN++
		default:
			t.Errorf("item %d: unexpected error %v", r.Index, r.Err)
		}
	}
	if okN != 2 || stoppedN != 3 {
		t.Fatalf("got %d ok / %d stopped, want 2/3", okN, stoppedN)
	}
	// Stopped items never became service requests, errors or solver calls.
	if statsAfter.Requests != 2 || statsAfter.Errors != 0 {
		t.Errorf("stopped items leaked into counters: %+v", statsAfter)
	}
	rec.mu.Lock()
	calls := len(rec.order)
	rec.mu.Unlock()
	if calls != 2 {
		t.Errorf("solver saw %d calls, want 2", calls)
	}
}
