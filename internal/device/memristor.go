package device

import (
	"fmt"
	"math"
	"math/rand"
)

// MemristorState is the binary resistance state of a memristor switch.
type MemristorState int

const (
	// HRS is the high-resistance ("off"/disconnected) state.
	HRS MemristorState = iota
	// LRS is the low-resistance ("on"/connected) state; in the substrate a
	// LRS memristor doubles as the widget resistor r.
	LRS
)

func (s MemristorState) String() string {
	if s == LRS {
		return "LRS"
	}
	return "HRS"
}

// MemristorModel holds the device parameters shared by all memristors on a
// substrate (Table 1 of the paper: LRS 10 kOhm, HRS 1 MOhm).
type MemristorModel struct {
	// RLRS and RHRS are the nominal low- and high-resistance-state values in
	// Ohm.
	RLRS, RHRS float64
	// VThreshold is the programming threshold voltage: an applied voltage
	// with magnitude above the threshold switches the state (positive sets
	// LRS, negative resets to HRS).
	VThreshold float64
	// SwitchTime is the time the stimulus must remain above threshold for
	// the state to flip, modelling finite programming pulses.
	SwitchTime float64
	// DriftRate is the relative resistance drift per second in LRS,
	// modelling long-term retention loss (Section 4.3.2 notes the tuning
	// procedure may need repeating because of drift).
	DriftRate float64
	// VariationSigma is the lognormal sigma of device-to-device LRS
	// resistance variation.
	VariationSigma float64
}

// DefaultMemristor returns the paper's Table 1 memristor parameters.
func DefaultMemristor() MemristorModel {
	return MemristorModel{
		RLRS:           10e3,
		RHRS:           1e6,
		VThreshold:     1.2,
		SwitchTime:     10e-9,
		DriftRate:      1e-6,
		VariationSigma: 0.0,
	}
}

// Validate checks the parameters.
func (m MemristorModel) Validate() error {
	if m.RLRS <= 0 || m.RHRS <= 0 {
		return fmt.Errorf("device: memristor resistances must be positive")
	}
	if m.RHRS <= m.RLRS {
		return fmt.Errorf("device: HRS resistance %g must exceed LRS resistance %g", m.RHRS, m.RLRS)
	}
	if m.VThreshold <= 0 {
		return fmt.Errorf("device: memristor threshold must be positive")
	}
	if m.SwitchTime < 0 || m.DriftRate < 0 || m.VariationSigma < 0 {
		return fmt.Errorf("device: negative memristor dynamics parameter")
	}
	return nil
}

// OffOnRatio returns RHRS / RLRS, the selectivity of the switch.
func (m MemristorModel) OffOnRatio() float64 { return m.RHRS / m.RLRS }

// Memristor is one memristive switch instance with its own state, tuned
// resistance and accumulated drift.  It is the building block of the crossbar
// in internal/crossbar.
type Memristor struct {
	Model MemristorModel
	state MemristorState
	// rLRS is this device's actual LRS resistance after process variation
	// and post-fabrication tuning.
	rLRS float64
	// aboveThresholdTime accumulates how long the programming stimulus has
	// exceeded the threshold.
	aboveThresholdTime float64
	// age tracks elapsed operating time for drift modelling.
	age float64
	// programCycles counts state flips, for endurance accounting.
	programCycles int
}

// NewMemristor creates a memristor in HRS with nominal LRS resistance.
func NewMemristor(model MemristorModel) *Memristor {
	return &Memristor{Model: model, state: HRS, rLRS: model.RLRS}
}

// NewMemristorWithVariation creates a memristor whose LRS resistance is drawn
// from a lognormal distribution around the nominal value, modelling process
// variation.  Pass a deterministic rng for reproducible experiments.
func NewMemristorWithVariation(model MemristorModel, rng *rand.Rand) *Memristor {
	m := NewMemristor(model)
	if model.VariationSigma > 0 {
		m.rLRS = model.RLRS * math.Exp(rng.NormFloat64()*model.VariationSigma)
	}
	return m
}

// State returns the current resistance state.
func (m *Memristor) State() MemristorState { return m.state }

// ProgramCycles returns how many times the device has switched state.
func (m *Memristor) ProgramCycles() int { return m.programCycles }

// Resistance returns the present two-terminal resistance, including drift in
// the LRS state.
func (m *Memristor) Resistance() float64 {
	if m.state == HRS {
		return m.Model.RHRS
	}
	return m.rLRS * (1 + m.Model.DriftRate*m.age)
}

// Conductance returns 1/Resistance.
func (m *Memristor) Conductance() float64 { return 1 / m.Resistance() }

// SetState forces the state, as done by the crossbar programming controller
// once the programming pulse has been verified.
func (m *Memristor) SetState(s MemristorState) {
	if m.state != s {
		m.programCycles++
	}
	m.state = s
	m.aboveThresholdTime = 0
}

// Tune overrides the LRS resistance, modelling the post-fabrication
// fine-grained resistance tuning of Section 4.3.2.  Tuning also resets the
// accumulated drift.
func (m *Memristor) Tune(rLRS float64) error {
	if rLRS <= 0 {
		return fmt.Errorf("device: tuned resistance must be positive, got %g", rLRS)
	}
	m.rLRS = rLRS
	m.age = 0
	return nil
}

// LRSResistance returns the device's (possibly varied/tuned) LRS resistance
// without drift.
func (m *Memristor) LRSResistance() float64 { return m.rLRS }

// ApplyStimulus advances the device by dt seconds with voltage v applied
// across it (top electrode minus bottom electrode).  Sustained voltages above
// +VThreshold set the device to LRS; below -VThreshold reset it to HRS.
// Sub-threshold stimulus only ages the device.  It returns true if the state
// changed.
func (m *Memristor) ApplyStimulus(v, dt float64) bool {
	m.age += dt
	switch {
	case v >= m.Model.VThreshold:
		m.aboveThresholdTime += dt
		if m.state != LRS && m.aboveThresholdTime >= m.Model.SwitchTime {
			m.state = LRS
			m.programCycles++
			m.aboveThresholdTime = 0
			return true
		}
	case v <= -m.Model.VThreshold:
		m.aboveThresholdTime += dt
		if m.state != HRS && m.aboveThresholdTime >= m.Model.SwitchTime {
			m.state = HRS
			m.programCycles++
			m.aboveThresholdTime = 0
			return true
		}
	default:
		m.aboveThresholdTime = 0
	}
	return false
}
