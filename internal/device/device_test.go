package device

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDiodeKindString(t *testing.T) {
	if DiodeIdeal.String() != "ideal" || DiodeShockley.String() != "shockley" {
		t.Errorf("kind names wrong")
	}
	if DiodeKind(9).String() == "" {
		t.Errorf("unknown kind should still stringify")
	}
}

func TestDiodeValidate(t *testing.T) {
	if err := DefaultDiode().Validate(); err != nil {
		t.Errorf("default diode invalid: %v", err)
	}
	if err := ShockleyDiode().Validate(); err != nil {
		t.Errorf("shockley diode invalid: %v", err)
	}
	bad := DefaultDiode()
	bad.ROn = 0
	if bad.Validate() == nil {
		t.Errorf("zero ROn accepted")
	}
	bad = DefaultDiode()
	bad.ROff = 0.5
	if bad.Validate() == nil {
		t.Errorf("ROff < ROn accepted")
	}
	bad = DefaultDiode()
	bad.VForward = -1
	if bad.Validate() == nil {
		t.Errorf("negative VForward accepted")
	}
	badS := ShockleyDiode()
	badS.IS = 0
	if badS.Validate() == nil {
		t.Errorf("zero IS accepted")
	}
	if (DiodeModel{Kind: DiodeKind(9)}).Validate() == nil {
		t.Errorf("unknown kind accepted")
	}
}

func TestIdealDiodeRegions(t *testing.T) {
	d := HardIdealDiode()
	// Reverse biased: tiny conductance, no current offset.
	g, ieq := d.Conductance(-1)
	if g != 1/d.ROff || ieq != 0 {
		t.Errorf("reverse region wrong: g=%g ieq=%g", g, ieq)
	}
	if d.IsOn(-0.1) {
		t.Errorf("reverse-biased diode reported on")
	}
	// Forward biased: large conductance.
	g, _ = d.Conductance(0.5)
	if g != 1/d.ROn {
		t.Errorf("forward conductance %g, want %g", g, 1/d.ROn)
	}
	if !d.IsOn(0.5) {
		t.Errorf("forward-biased diode reported off")
	}
	// Current at exactly VForward is zero.
	if i := d.Current(d.VForward); math.Abs(i) > 1e-15 {
		t.Errorf("current at VForward = %g, want 0", i)
	}
	// Forward current follows (v - VForward)/ROn.
	if i := d.Current(2); math.Abs(i-2/d.ROn) > 1e-9 {
		t.Errorf("forward current %g", i)
	}
}

func TestIdealDiodeForwardVoltage(t *testing.T) {
	d := HardIdealDiode()
	d.VForward = 0.7
	if d.IsOn(0.5) {
		t.Errorf("diode on below VForward")
	}
	if !d.IsOn(0.8) {
		t.Errorf("diode off above VForward")
	}
	if i := d.Current(0.7); math.Abs(i) > 1e-12 {
		t.Errorf("current at VForward = %g", i)
	}
	if i := d.Current(1.7); math.Abs(i-1.0/d.ROn) > 1e-9 {
		t.Errorf("current 1V above VForward = %g", i)
	}
}

func TestSmoothedIdealDiode(t *testing.T) {
	d := DefaultDiode()
	if d.TransitionWidth <= 0 {
		t.Fatalf("default diode should be smoothed")
	}
	// Far from the transition the smoothed model matches the hard model.
	hard := HardIdealDiode()
	for _, v := range []float64{-2, -0.5, 0.5, 2} {
		is, ih := d.Current(v), hard.Current(v)
		if math.Abs(is-ih) > 1e-2*math.Abs(ih)+1e-3 {
			t.Errorf("smoothed current at %g V: %g, hard model %g", v, is, ih)
		}
	}
	// Within the transition the current and conductance are continuous and
	// monotone.
	prevI, prevG := d.Current(-0.01), 0.0
	for v := -0.009; v <= 0.01; v += 0.001 {
		g, _ := d.Conductance(v)
		i := d.Current(v)
		if i < prevI-1e-12 {
			t.Fatalf("smoothed current not monotone at %g", v)
		}
		if g < prevG-1e-12 {
			t.Fatalf("smoothed conductance not monotone at %g", v)
		}
		prevI, prevG = i, g
	}
	// Extreme voltages do not overflow.
	if i := d.Current(1e6); math.IsNaN(i) || math.IsInf(i, 0) {
		t.Errorf("overflow at extreme forward bias")
	}
	if i := d.Current(-1e6); math.IsNaN(i) || math.IsInf(i, 0) {
		t.Errorf("overflow at extreme reverse bias")
	}
	// Negative transition width is rejected.
	bad := DefaultDiode()
	bad.TransitionWidth = -1
	if bad.Validate() == nil {
		t.Errorf("negative transition width accepted")
	}
}

func TestShockleyDiode(t *testing.T) {
	d := ShockleyDiode()
	// Reverse: current ~ -Is.
	if i := d.Current(-1); i > 0 || i < -2*d.IS {
		t.Errorf("reverse current %g", i)
	}
	// Forward current is monotonically increasing.
	prev := d.Current(0)
	for v := 0.05; v < 0.9; v += 0.05 {
		cur := d.Current(v)
		if cur <= prev {
			t.Fatalf("current not monotone at v=%g", v)
		}
		prev = cur
	}
	// Very large voltages do not overflow.
	if i := d.Current(100); math.IsInf(i, 0) || math.IsNaN(i) {
		t.Errorf("overflow at large forward bias: %g", i)
	}
	// Conductance is consistent with the linearisation i = g*v + ieq.
	v := 0.6
	g, ieq := d.Conductance(v)
	if math.Abs(g*v+ieq-d.Current(v)) > 1e-9 {
		t.Errorf("companion model inconsistent")
	}
	if !d.IsOn(0.7) || d.IsOn(0.0) {
		t.Errorf("IsOn thresholds wrong")
	}
}

func TestUnknownDiodeKindConductance(t *testing.T) {
	d := DiodeModel{Kind: DiodeKind(9)}
	g, ieq := d.Conductance(1)
	if g <= 0 || ieq != 0 {
		t.Errorf("unknown kind should fall back to tiny conductance")
	}
	if d.IsOn(1) {
		t.Errorf("unknown kind should never be on")
	}
}

func TestOpAmpValidate(t *testing.T) {
	if err := DefaultOpAmp().Validate(); err != nil {
		t.Errorf("default op-amp invalid: %v", err)
	}
	cases := []func(*OpAmpModel){
		func(m *OpAmpModel) { m.Gain = 0.5 },
		func(m *OpAmpModel) { m.GBW = 0 },
		func(m *OpAmpModel) { m.Rout = -1 },
		func(m *OpAmpModel) { m.SupplyCurrent = -1 },
	}
	for i, mutate := range cases {
		m := DefaultOpAmp()
		mutate(&m)
		if m.Validate() == nil {
			t.Errorf("case %d: invalid op-amp accepted", i)
		}
	}
}

func TestOpAmpMacroParams(t *testing.T) {
	m := DefaultOpAmp()
	gm, r1, c1 := m.MacroParams()
	if math.Abs(gm*r1-m.Gain) > 1e-6*m.Gain {
		t.Errorf("macromodel DC gain %g, want %g", gm*r1, m.Gain)
	}
	gbw := gm / (2 * math.Pi * c1)
	if math.Abs(gbw-m.GBW) > 1e-6*m.GBW {
		t.Errorf("macromodel GBW %g, want %g", gbw, m.GBW)
	}
	if m.PoleFrequency() != m.GBW/m.Gain {
		t.Errorf("pole frequency wrong")
	}
	if m.UnityGainSettlingTime() <= 0 {
		t.Errorf("settling time must be positive")
	}
	fast := FastOpAmp()
	if fast.GBW != 50e9 {
		t.Errorf("FastOpAmp GBW = %g", fast.GBW)
	}
	if fast.UnityGainSettlingTime() >= m.UnityGainSettlingTime() {
		t.Errorf("faster GBW should settle faster")
	}
}

func TestOpAmpPower(t *testing.T) {
	m := DefaultOpAmp()
	if p := m.Power(); math.Abs(p-500e-6) > 1e-12 {
		t.Errorf("Pamp = %g, want 500e-6", p)
	}
}

func TestNegativeResistorPrecision(t *testing.T) {
	m := DefaultOpAmp()
	// Paper: gain > 1000 gives precision of about 0.1 % for R0 ~= Rtarget.
	prec := m.NegativeResistorPrecision(10e3, 10e3)
	if prec > 1.0/m.Gain*1.001 || prec < 1.0/m.Gain*0.999 {
		t.Errorf("precision %g, want ~%g", prec, 1/m.Gain)
	}
	lowGain := m
	lowGain.Gain = 1000
	if p := lowGain.NegativeResistorPrecision(10e3, 10e3); math.Abs(p-0.001) > 1e-9 {
		t.Errorf("gain-1000 precision %g, want 0.001", p)
	}
	if !math.IsInf(m.NegativeResistorPrecision(1, 0), 1) {
		t.Errorf("zero target should give infinite error")
	}
	reff := m.EffectiveNegativeResistance(10e3, 10e3)
	if reff >= 0 {
		t.Errorf("effective negative resistance should be negative: %g", reff)
	}
	if math.Abs(math.Abs(reff)-10e3) > 10e3*2/m.Gain {
		t.Errorf("effective resistance %g too far from -10k", reff)
	}
}

func TestMemristorModelValidate(t *testing.T) {
	if err := DefaultMemristor().Validate(); err != nil {
		t.Errorf("default memristor invalid: %v", err)
	}
	cases := []func(*MemristorModel){
		func(m *MemristorModel) { m.RLRS = 0 },
		func(m *MemristorModel) { m.RHRS = m.RLRS / 2 },
		func(m *MemristorModel) { m.VThreshold = 0 },
		func(m *MemristorModel) { m.DriftRate = -1 },
	}
	for i, mutate := range cases {
		m := DefaultMemristor()
		mutate(&m)
		if m.Validate() == nil {
			t.Errorf("case %d: invalid memristor accepted", i)
		}
	}
	if r := DefaultMemristor().OffOnRatio(); math.Abs(r-100) > 1e-9 {
		t.Errorf("off/on ratio %g, want 100", r)
	}
}

func TestMemristorStates(t *testing.T) {
	m := NewMemristor(DefaultMemristor())
	if m.State() != HRS {
		t.Fatalf("new memristor should start in HRS")
	}
	if m.Resistance() != 1e6 {
		t.Errorf("HRS resistance %g", m.Resistance())
	}
	m.SetState(LRS)
	if m.State() != LRS || m.Resistance() != 10e3 {
		t.Errorf("LRS resistance %g", m.Resistance())
	}
	if m.ProgramCycles() != 1 {
		t.Errorf("program cycles %d, want 1", m.ProgramCycles())
	}
	m.SetState(LRS) // no-op should not count a cycle
	if m.ProgramCycles() != 1 {
		t.Errorf("redundant SetState counted as a cycle")
	}
	if math.Abs(m.Conductance()-1e-4) > 1e-12 {
		t.Errorf("conductance %g", m.Conductance())
	}
	if HRS.String() != "HRS" || LRS.String() != "LRS" {
		t.Errorf("state names wrong")
	}
}

func TestMemristorProgramming(t *testing.T) {
	model := DefaultMemristor()
	m := NewMemristor(model)
	// Sub-threshold stimulus never switches.
	for i := 0; i < 100; i++ {
		if m.ApplyStimulus(model.VThreshold*0.9, model.SwitchTime) {
			t.Fatalf("sub-threshold stimulus switched the device")
		}
	}
	if m.State() != HRS {
		t.Fatalf("state changed under sub-threshold stimulus")
	}
	// A single short pulse above threshold does not switch...
	if m.ApplyStimulus(model.VThreshold*1.5, model.SwitchTime/4) {
		t.Fatalf("switched before SwitchTime elapsed")
	}
	// ...but a sustained pulse does.
	switched := false
	for i := 0; i < 10 && !switched; i++ {
		switched = m.ApplyStimulus(model.VThreshold*1.5, model.SwitchTime/4)
	}
	if !switched || m.State() != LRS {
		t.Fatalf("sustained set pulse did not switch to LRS")
	}
	// Negative pulse resets to HRS.
	switched = false
	for i := 0; i < 10 && !switched; i++ {
		switched = m.ApplyStimulus(-model.VThreshold*1.5, model.SwitchTime/2)
	}
	if !switched || m.State() != HRS {
		t.Fatalf("reset pulse did not switch to HRS")
	}
	if m.ProgramCycles() != 2 {
		t.Errorf("program cycles %d, want 2", m.ProgramCycles())
	}
}

func TestMemristorInterruptedPulse(t *testing.T) {
	model := DefaultMemristor()
	m := NewMemristor(model)
	// Accumulate half the switch time, drop below threshold, accumulate
	// half again: should NOT switch because the accumulator resets.
	m.ApplyStimulus(model.VThreshold*2, model.SwitchTime*0.6)
	m.ApplyStimulus(0, model.SwitchTime)
	if m.ApplyStimulus(model.VThreshold*2, model.SwitchTime*0.6) {
		t.Fatalf("interrupted pulse switched the device")
	}
}

func TestMemristorDriftAndTune(t *testing.T) {
	model := DefaultMemristor()
	model.DriftRate = 0.01 // 1 %/s for test visibility
	m := NewMemristor(model)
	m.SetState(LRS)
	m.ApplyStimulus(0, 10) // age by 10 s
	r := m.Resistance()
	if r <= model.RLRS {
		t.Errorf("drift did not increase resistance: %g", r)
	}
	if err := m.Tune(12e3); err != nil {
		t.Fatal(err)
	}
	if m.LRSResistance() != 12e3 {
		t.Errorf("tuned resistance not applied")
	}
	if m.Resistance() != 12e3 {
		t.Errorf("tuning should reset drift, got %g", m.Resistance())
	}
	if err := m.Tune(-5); err == nil {
		t.Errorf("negative tuned resistance accepted")
	}
}

func TestMemristorVariation(t *testing.T) {
	model := DefaultMemristor()
	model.VariationSigma = 0.2
	rng := rand.New(rand.NewSource(1))
	var values []float64
	for i := 0; i < 200; i++ {
		m := NewMemristorWithVariation(model, rng)
		values = append(values, m.LRSResistance())
	}
	var mean float64
	distinct := false
	for i, v := range values {
		mean += v
		if i > 0 && v != values[0] {
			distinct = true
		}
	}
	mean /= float64(len(values))
	if !distinct {
		t.Fatalf("variation produced identical devices")
	}
	// Lognormal with sigma 0.2 has median RLRS; mean within ~10 %.
	if mean < model.RLRS*0.85 || mean > model.RLRS*1.25 {
		t.Errorf("mean LRS %g too far from nominal %g", mean, model.RLRS)
	}
	// Zero sigma yields exactly nominal.
	model.VariationSigma = 0
	m := NewMemristorWithVariation(model, rng)
	if m.LRSResistance() != model.RLRS {
		t.Errorf("zero-sigma variation changed resistance")
	}
}

// Property: diode companion model is consistent (i = g*v+ieq equals Current)
// for both models over a wide voltage range.
func TestDiodeCompanionConsistency(t *testing.T) {
	models := []DiodeModel{DefaultDiode(), ShockleyDiode()}
	f := func(raw float64) bool {
		v := math.Mod(raw, 5)
		if math.IsNaN(v) {
			return true
		}
		for _, m := range models {
			g, ieq := m.Conductance(v)
			if math.Abs(g*v+ieq-m.Current(v)) > 1e-9*(1+math.Abs(m.Current(v))) {
				return false
			}
			if g <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
