// Package device provides the behavioural device models used by the analog
// max-flow substrate: clamping diodes (ideal piecewise-linear and Shockley),
// operational amplifiers with finite open-loop gain and a single-pole
// gain-bandwidth limit, and threshold-switching memristors with HRS/LRS
// states, programmable LRS resistance, drift and process variation.
//
// The models are deliberately independent of the circuit/MNA machinery so
// that they can be unit-tested as pure physics and reused by the analytical
// power and convergence models.
package device

import (
	"fmt"
	"math"
)

// DiodeKind selects the diode model used in simulation.
type DiodeKind int

const (
	// DiodeIdeal is the paper's idealised clamp: zero forward drop, a small
	// on-resistance and a very large off-resistance, switching piecewise on
	// the sign of the applied voltage.
	DiodeIdeal DiodeKind = iota
	// DiodeShockley is the exponential junction model i = Is(exp(v/nVt)-1),
	// used to study the impact of real turn-on voltages (Section 2.1,
	// footnote 2 of the paper).
	DiodeShockley
)

func (k DiodeKind) String() string {
	switch k {
	case DiodeIdeal:
		return "ideal"
	case DiodeShockley:
		return "shockley"
	default:
		return fmt.Sprintf("diode-kind(%d)", int(k))
	}
}

// DiodeModel collects the parameters of a diode.
type DiodeModel struct {
	Kind DiodeKind
	// ROn and ROff are the piecewise-linear on/off resistances (Ohm) for the
	// ideal model.
	ROn, ROff float64
	// VForward is the forward turn-on voltage of the ideal model.  The paper
	// assumes 0 and notes that real diodes require adjusting the clamp
	// sources by the turn-on voltage; both cases are supported.
	VForward float64
	// TransitionWidth, when positive, smooths the ideal model's on/off
	// switch over a voltage window of this width (a softplus blend between
	// the off and on conductances).  A hard piecewise switch makes the
	// Newton iteration of the circuit simulator chatter between states; a
	// millivolt-scale smoothing is electrically negligible for the volt
	// scale clamp voltages of the substrate but makes the solve robust.
	TransitionWidth float64
	// IS is the saturation current (A) and N the emission coefficient for
	// the Shockley model.  VT is the thermal voltage (V).
	IS, N, VT float64
}

// DefaultDiode returns the clamp diode used throughout the paper's analysis:
// an idealised diode with Ron = 1 Ohm, Roff = 1 GOhm, no forward drop, and a
// 1 mV smoothed transition for simulator robustness.
func DefaultDiode() DiodeModel {
	return DiodeModel{Kind: DiodeIdeal, ROn: 1, ROff: 1e9, VForward: 0, TransitionWidth: 1e-3}
}

// HardIdealDiode returns the strictly piecewise-linear ideal diode (no
// transition smoothing), matching the paper's analytical assumption exactly.
// Prefer DefaultDiode for simulation.
func HardIdealDiode() DiodeModel {
	return DiodeModel{Kind: DiodeIdeal, ROn: 1, ROff: 1e9, VForward: 0}
}

// ShockleyDiode returns a realistic junction diode model.
func ShockleyDiode() DiodeModel {
	return DiodeModel{Kind: DiodeShockley, IS: 1e-14, N: 1.0, VT: 0.02585, ROn: 1, ROff: 1e9}
}

// Validate checks the model parameters.
func (m DiodeModel) Validate() error {
	switch m.Kind {
	case DiodeIdeal:
		if m.ROn <= 0 || m.ROff <= 0 {
			return fmt.Errorf("device: diode on/off resistance must be positive (%g, %g)", m.ROn, m.ROff)
		}
		if m.ROff <= m.ROn {
			return fmt.Errorf("device: diode ROff %g must exceed ROn %g", m.ROff, m.ROn)
		}
		if m.VForward < 0 {
			return fmt.Errorf("device: negative forward voltage %g", m.VForward)
		}
		if m.TransitionWidth < 0 {
			return fmt.Errorf("device: negative transition width %g", m.TransitionWidth)
		}
	case DiodeShockley:
		if m.IS <= 0 || m.N <= 0 || m.VT <= 0 {
			return fmt.Errorf("device: shockley parameters must be positive")
		}
	default:
		return fmt.Errorf("device: unknown diode kind %v", m.Kind)
	}
	return nil
}

// Conductance returns the linearised (companion-model) conductance and
// equivalent current source for the diode at operating voltage v (anode minus
// cathode), as used by Newton iteration:
//
//	i(v) ≈ G*v + Ieq
func (m DiodeModel) Conductance(v float64) (g, ieq float64) {
	switch m.Kind {
	case DiodeIdeal:
		if m.TransitionWidth > 0 {
			return m.smoothedIdeal(v)
		}
		if v >= m.VForward {
			g = 1 / m.ROn
			// Shift the I-V so current is zero exactly at VForward.
			return g, -g * m.VForward
		}
		return 1 / m.ROff, 0
	case DiodeShockley:
		nvt := m.N * m.VT
		// Limit the exponent to avoid overflow during Newton transients.
		x := v / nvt
		if x > 80 {
			x = 80
		}
		e := math.Exp(x)
		i := m.IS * (e - 1)
		g = m.IS * e / nvt
		if g < 1e-12 {
			g = 1e-12
		}
		ieq = i - g*v
		return g, ieq
	default:
		return 1e-12, 0
	}
}

// smoothedIdeal blends the off and on branches of the ideal diode over a
// window of TransitionWidth around VForward using a softplus, so that both
// the current and its derivative are continuous:
//
//	i(v)  = Goff*v + (Gon-Goff) * w * softplus((v-VForward)/w)
//	di/dv = Goff   + (Gon-Goff) * sigmoid((v-VForward)/w)
func (m DiodeModel) smoothedIdeal(v float64) (g, ieq float64) {
	gon := 1 / m.ROn
	goff := 1 / m.ROff
	w := m.TransitionWidth
	x := (v - m.VForward) / w
	var soft, sig float64
	switch {
	case x > 40:
		soft = x
		sig = 1
	case x < -40:
		soft = 0
		sig = 0
	default:
		soft = math.Log1p(math.Exp(x))
		sig = 1 / (1 + math.Exp(-x))
	}
	i := goff*v + (gon-goff)*w*soft
	g = goff + (gon-goff)*sig
	ieq = i - g*v
	return g, ieq
}

// Current returns the diode current at a given applied voltage.
func (m DiodeModel) Current(v float64) float64 {
	g, ieq := m.Conductance(v)
	return g*v + ieq
}

// IsOn reports whether the diode is conducting at voltage v (useful for the
// active-set steady-state solver, which iterates on clamp states).
func (m DiodeModel) IsOn(v float64) bool {
	switch m.Kind {
	case DiodeIdeal:
		return v >= m.VForward
	case DiodeShockley:
		return v >= 3*m.N*m.VT
	default:
		return false
	}
}
