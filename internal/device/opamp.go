package device

import (
	"fmt"
	"math"
)

// OpAmpModel is a single-pole macromodel of an operational amplifier with
// finite open-loop gain and a gain-bandwidth product, matching the Table 1
// parameters of the paper (open-loop gain 1e4, GBW 10-50 GHz).
//
// The macromodel is the standard two-stage behavioural one:
//
//	stage 1: transconductance Gm from the differential input into an internal
//	         node loaded by R1 || C1, giving DC gain A = Gm*R1 and a single
//	         pole at 1/(2π R1 C1);
//	stage 2: an ideal unity-gain buffer driving the output through Rout.
//
// The unity-gain bandwidth is then GBW = A * f_pole = Gm / (2π C1).
type OpAmpModel struct {
	// Gain is the DC open-loop gain A (dimensionless).
	Gain float64
	// GBW is the gain-bandwidth product in Hz.
	GBW float64
	// Rout is the output resistance in Ohm.
	Rout float64
	// SupplyCurrent is the quiescent current draw in A, used by the power
	// model (the paper assumes 500 µA at a 1 V supply).
	SupplyCurrent float64
	// SupplyVoltage is the supply rail in V.
	SupplyVoltage float64
}

// DefaultOpAmp returns the paper's Table 1 op-amp: gain 1e4, GBW 10 GHz,
// 500 µA from a 1 V supply.
func DefaultOpAmp() OpAmpModel {
	return OpAmpModel{Gain: 1e4, GBW: 10e9, Rout: 10, SupplyCurrent: 500e-6, SupplyVoltage: 1}
}

// FastOpAmp returns the 50 GHz GBW variant used for the faster Figure 10
// series.
func FastOpAmp() OpAmpModel {
	m := DefaultOpAmp()
	m.GBW = 50e9
	return m
}

// Validate checks the model for physical consistency.
func (m OpAmpModel) Validate() error {
	if m.Gain <= 1 {
		return fmt.Errorf("device: op-amp gain must exceed 1, got %g", m.Gain)
	}
	if m.GBW <= 0 {
		return fmt.Errorf("device: op-amp GBW must be positive, got %g", m.GBW)
	}
	if m.Rout < 0 {
		return fmt.Errorf("device: negative output resistance %g", m.Rout)
	}
	if m.SupplyCurrent < 0 || m.SupplyVoltage < 0 {
		return fmt.Errorf("device: negative supply parameters")
	}
	return nil
}

// MacroParams returns the internal macromodel parameters (Gm, R1, C1) chosen
// so that the DC gain and GBW match the model.  R1 is fixed at 1 MOhm, a
// conventional choice that keeps the numbers well scaled.
func (m OpAmpModel) MacroParams() (gm, r1, c1 float64) {
	r1 = 1e6
	gm = m.Gain / r1
	c1 = gm / (2 * math.Pi * m.GBW)
	return gm, r1, c1
}

// PoleFrequency returns the open-loop pole frequency f_p = GBW / A in Hz.
func (m OpAmpModel) PoleFrequency() float64 { return m.GBW / m.Gain }

// UnityGainSettlingTime returns an estimate of the 0.1 %-settling time of the
// amplifier in a unity-feedback configuration: about 7 closed-loop time
// constants, τ = 1/(2π GBW).
func (m OpAmpModel) UnityGainSettlingTime() float64 {
	tau := 1 / (2 * math.Pi * m.GBW)
	return 7 * tau
}

// Power returns the quiescent power dissipation Pamp of the amplifier,
// the quantity the paper's Section 5.2 analytical power model multiplies by
// the number of edges and vertices.
func (m OpAmpModel) Power() float64 { return m.SupplyCurrent * m.SupplyVoltage }

// NegativeResistorPrecision returns the relative error of a negative resistor
// realised with this op-amp (Section 4.2 of the paper): the effective
// resistance is Reff = -(1 + (1/A)*(R0/Rtarget)) * Rtarget, so the relative
// error magnitude is roughly (R0/Rtarget)/A.
func (m OpAmpModel) NegativeResistorPrecision(r0, rtarget float64) float64 {
	if rtarget == 0 {
		return math.Inf(1)
	}
	return math.Abs(r0/rtarget) / m.Gain
}

// EffectiveNegativeResistance returns the realised resistance of a negative
// resistor of nominal value -rtarget built from this op-amp with feedback
// resistors R0 (Figure 9a of the paper).
func (m OpAmpModel) EffectiveNegativeResistance(r0, rtarget float64) float64 {
	return -(1 + (r0/rtarget)/m.Gain) * rtarget
}
