package dynamics

import (
	"math"
	"strings"
	"testing"

	"analogflow/internal/graph"
)

func TestOptionsValidate(t *testing.T) {
	g := graph.PaperFigure15()
	if err := DefaultOptions(g).Validate(); err != nil {
		t.Errorf("default options invalid: %v", err)
	}
	bad := DefaultOptions(g)
	bad.MaxVflow = 0
	if bad.Validate() == nil {
		t.Errorf("zero MaxVflow accepted")
	}
	bad2 := DefaultOptions(g)
	bad2.Steps = 1
	if bad2.Validate() == nil {
		t.Errorf("single step accepted")
	}
	bad3 := DefaultOptions(g)
	bad3.Builder.WidgetResistance = 0
	if bad3.Validate() == nil {
		t.Errorf("invalid builder options accepted")
	}
}

func TestSweepRejectsBadInput(t *testing.T) {
	g := graph.PaperFigure15()
	bad := DefaultOptions(g)
	bad.Steps = 0
	if _, err := Sweep(g, bad); err == nil {
		t.Errorf("invalid options accepted")
	}
}

// TestSweepDegenerateGraphNamesRealCause pins the fix for the misleading
// "MaxVflow must be positive, got 0" failure: DefaultOptions on an edgeless
// or zero-capacity graph derives MaxVflow = 0, but the real defect is the
// degenerate graph, and the error must say so.
func TestSweepDegenerateGraphNamesRealCause(t *testing.T) {
	edgeless := graph.MustNew(3, 0, 2)
	zeroCap := graph.MustNew(3, 0, 2)
	zeroCap.MustAddEdge(0, 1, 0)
	zeroCap.MustAddEdge(1, 2, 0)
	for _, g := range []*graph.Graph{edgeless, zeroCap} {
		_, err := Sweep(g, DefaultOptions(g))
		if err == nil {
			t.Fatalf("degenerate graph %v accepted", g)
		}
		if strings.Contains(err.Error(), "MaxVflow must be positive") {
			t.Errorf("degenerate graph %v still reports the misleading option error: %v", g, err)
		}
		if !strings.Contains(err.Error(), "no positive-capacity edges") {
			t.Errorf("degenerate graph %v error does not name the real cause: %v", g, err)
		}
	}
	if _, err := Sweep(nil, Options{}); err == nil {
		t.Error("nil graph accepted")
	}
}

// The Section 6.5 worked example: sweeping Vflow on the Figure 15 instance
// activates the x2 clamp before the x1 clamp, the flow value grows
// monotonically, and the final state is the optimum x1=4, x2=1, x3=3.
func TestSweepFigure15(t *testing.T) {
	g := graph.PaperFigure15()
	opts := DefaultOptions(g)
	opts.MaxVflow = 60 // comfortably past the paper's second activation at 19 V
	opts.Steps = 60
	traj, err := Sweep(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(traj.Points) != opts.Steps {
		t.Fatalf("expected %d trajectory points, got %d", opts.Steps, len(traj.Points))
	}
	// Final state: the optimum of the instance.
	final := traj.Points[len(traj.Points)-1]
	want := []float64{4, 1, 3}
	for i, w := range want {
		if math.Abs(final.EdgeVoltages[i]-w) > 0.15*w {
			t.Errorf("final V(x%d) = %.3f, want %g", i+1, final.EdgeVoltages[i], w)
		}
	}
	if math.Abs(traj.FinalFlowValue-graph.PaperFigure15MaxFlow) > 0.15*graph.PaperFigure15MaxFlow {
		t.Errorf("final flow %.3f, want %g", traj.FinalFlowValue, graph.PaperFigure15MaxFlow)
	}
	// The flow value never decreases along the sweep.
	if !traj.MonotoneFlow(0.05) {
		t.Errorf("flow value not monotone along the quasi-static sweep")
	}
	// x2 (edge index 1) activates before x1 (edge index 0), as in the
	// paper's D -> B trajectory.
	levels := traj.ActivationDriveLevels()
	vx2, ok2 := levels[1]
	vx1, ok1 := levels[0]
	if !ok2 {
		t.Fatalf("x2 clamp never activated; activation map: %v", levels)
	}
	if ok1 && vx1 < vx2 {
		t.Errorf("x1 activated at %g V before x2 at %g V", vx1, vx2)
	}
	// The paper's ideal analysis places the first activation at Vflow = 9 V;
	// the non-ideal widgets shift it upward but it must still happen well
	// before the end of the ramp.
	if vx2 >= opts.MaxVflow {
		t.Errorf("x2 activation only at the final drive level (%g V)", vx2)
	}
	// Early trajectory points are interior points of the feasible region.
	if frac := traj.InteriorFraction(g, 1e-3); frac <= 0 {
		t.Errorf("expected some interior trajectory points, got fraction %g", frac)
	}
	// The answer stops improving (within 2%) before the end of the ramp.
	if sat := traj.SaturationLevel(0.02); sat >= opts.MaxVflow || sat <= 0 {
		t.Errorf("saturation level %g outside (0, %g)", sat, opts.MaxVflow)
	}
}

func TestSweepFigure5ActivationOrder(t *testing.T) {
	g := graph.PaperFigure5()
	opts := DefaultOptions(g)
	opts.Steps = 30
	traj, err := Sweep(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	// The unit-capacity edges x3 and x4 (indices 2 and 3) saturate in the
	// optimum; they must appear in the activation order.
	seen := map[int]bool{}
	for _, e := range traj.ActivationOrder {
		seen[e] = true
	}
	if !seen[2] && !seen[3] {
		t.Errorf("neither bottleneck edge activated; order %v", traj.ActivationOrder)
	}
	// The big source edge x1 (capacity 3) never reaches its own clamp: the
	// optimum only pushes 2 through it.
	if seen[0] {
		t.Errorf("x1 should not reach its capacity clamp (optimum is 2 of 3)")
	}
	if traj.FinalFlowValue < 1.6 || traj.FinalFlowValue > 2.4 {
		t.Errorf("final flow %.3f outside the expected range around 2", traj.FinalFlowValue)
	}
}

func TestTrajectoryHelpersOnEmpty(t *testing.T) {
	empty := &Trajectory{}
	if !math.IsNaN(empty.SaturationLevel(0.01)) {
		t.Errorf("empty trajectory should return NaN saturation level")
	}
	if empty.InteriorFraction(graph.PaperFigure5(), 1e-3) != 0 {
		t.Errorf("empty trajectory should have zero interior fraction")
	}
	if !empty.MonotoneFlow(0) {
		t.Errorf("empty trajectory is trivially monotone")
	}
}
