// Package dynamics implements the quasi-static circuit analysis of
// Section 6.5 of the paper: instead of stepping Vflow abruptly, the drive is
// raised slowly enough that the circuit tracks its steady state at every
// intermediate level, and the trajectory of the node voltages through the
// feasible region is recorded.  The paper uses the Figure 15 instance to show
// that the trajectory moves through the interior of the feasible polytope
// (conjecturing a loose connection to interior-point methods) and activates
// the capacity constraints one by one as the drive grows.
package dynamics

import (
	"fmt"
	"math"

	"analogflow/internal/builder"
	"analogflow/internal/graph"
	"analogflow/internal/mna"
)

// Options configures a quasi-static sweep.
type Options struct {
	// Builder holds the circuit construction options.
	Builder builder.Options
	// MaxVflow is the final drive level; the sweep ramps from 0 to MaxVflow.
	MaxVflow float64
	// Steps is the number of quasi-static levels evaluated.
	Steps int
}

// DefaultOptions returns a sweep suitable for the paper's worked examples:
// the drive ramps to ten times the largest capacity over 40 levels.
func DefaultOptions(g *graph.Graph) Options {
	return Options{
		Builder:  builder.DefaultOptions(),
		MaxVflow: 10 * g.MaxCapacity(),
		Steps:    40,
	}
}

// Validate checks the options.
func (o Options) Validate() error {
	if err := o.Builder.Validate(); err != nil {
		return err
	}
	if o.MaxVflow <= 0 {
		return fmt.Errorf("dynamics: MaxVflow must be positive, got %g", o.MaxVflow)
	}
	if o.Steps < 2 {
		return fmt.Errorf("dynamics: need at least 2 steps, got %d", o.Steps)
	}
	return nil
}

// TrajectoryPoint is the circuit state at one quasi-static drive level.
type TrajectoryPoint struct {
	// Vflow is the drive level of this point.
	Vflow float64
	// EdgeVoltages are the edge-node voltages (flow values in volts).
	EdgeVoltages []float64
	// FlowValue is the net source outflow at this level.
	FlowValue float64
	// ActiveClamps lists the edges whose upper capacity clamp is engaged
	// (voltage within 1% of the clamp level).
	ActiveClamps []int
}

// Trajectory is the full quasi-static sweep result.
type Trajectory struct {
	Points []TrajectoryPoint
	// ActivationOrder lists edges in the order their capacity clamps first
	// became active as the drive grew — the "events" of the paper's
	// Figure 15 narrative (x2 clamps first at Vflow=9, then x1/x3 at 19).
	ActivationOrder []int
	// FinalFlowValue is the flow value at the final drive level.
	FinalFlowValue float64
}

// Sweep runs the quasi-static analysis of g.
func Sweep(g *graph.Graph, opts Options) (*Trajectory, error) {
	if g == nil {
		return nil, fmt.Errorf("dynamics: nil graph")
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	// A graph with no positive-capacity edge has nothing to sweep, and it
	// also poisons DefaultOptions (MaxVflow = 10*MaxCapacity = 0), which
	// would otherwise surface as the misleading "MaxVflow must be positive".
	// Name the real cause before validating the options.
	if g.NumEdges() == 0 || g.MaxCapacity() <= 0 {
		return nil, fmt.Errorf("dynamics: graph %v has no positive-capacity edges, so there is no drive level to ramp to (DefaultOptions derives MaxVflow from the largest capacity)", g)
	}
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	caps := make([]float64, g.NumEdges())
	for i := 0; i < g.NumEdges(); i++ {
		caps[i] = g.Edge(i).Capacity
	}
	bopts := opts.Builder
	bopts.VflowVoltage = opts.MaxVflow
	c, err := builder.BuildMaxFlow(g, caps, bopts)
	if err != nil {
		return nil, err
	}
	eng, err := mna.NewEngine(c.Netlist, mna.DefaultOptions())
	if err != nil {
		return nil, err
	}
	// The engine's homotopy solver is exactly a quasi-static ramp of the
	// independent sources; every intermediate level is one trajectory point.
	hres, err := eng.OperatingPointHomotopy(0, opts.Steps)
	if err != nil {
		return nil, fmt.Errorf("dynamics: quasi-static sweep failed: %w", err)
	}

	traj := &Trajectory{}
	activated := make(map[int]bool)
	for k, sol := range hres.Intermediate {
		pt := TrajectoryPoint{
			Vflow:        hres.Scales[k] * opts.MaxVflow,
			EdgeVoltages: c.EdgeVoltages(sol.Voltage),
			FlowValue:    c.FlowValueVolts(sol.Voltage),
		}
		for i, v := range pt.EdgeVoltages {
			clamp := caps[i]
			// A clamp counts as active once the node is within 3% of the
			// clamp level; with finite op-amp gain the clamped node settles
			// slightly below the ideal level.
			if clamp > 0 && v >= clamp*0.97 {
				pt.ActiveClamps = append(pt.ActiveClamps, i)
				if !activated[i] {
					activated[i] = true
					traj.ActivationOrder = append(traj.ActivationOrder, i)
				}
			}
		}
		traj.Points = append(traj.Points, pt)
	}
	if len(traj.Points) > 0 {
		traj.FinalFlowValue = traj.Points[len(traj.Points)-1].FlowValue
	}
	return traj, nil
}

// InteriorFraction reports the fraction of trajectory points that are strict
// interior points of the feasible region (no clamp active and every
// conservation constraint satisfied within tol) — quantifying the paper's
// observation that the circuit moves through the interior rather than along
// the vertices of the polytope.
func (t *Trajectory) InteriorFraction(g *graph.Graph, tol float64) float64 {
	if len(t.Points) == 0 {
		return 0
	}
	interior := 0
	for _, pt := range t.Points {
		if len(pt.ActiveClamps) > 0 {
			continue
		}
		strict := true
		for i, v := range pt.EdgeVoltages {
			if v <= tol || v >= g.Edge(i).Capacity-tol {
				strict = false
				break
			}
		}
		if strict {
			interior++
		}
	}
	return float64(interior) / float64(len(t.Points))
}

// MonotoneFlow reports whether the flow value is non-decreasing along the
// sweep (the paper's claim that the objective strictly increases with Vflow
// until the optimum is reached), within a small tolerance.
func (t *Trajectory) MonotoneFlow(tol float64) bool {
	for i := 1; i < len(t.Points); i++ {
		if t.Points[i].FlowValue < t.Points[i-1].FlowValue-tol {
			return false
		}
	}
	return true
}

// ActivationDriveLevels returns, for each edge in activation order, the drive
// level at which its clamp first engaged.  For the paper's Figure 15 example
// this reproduces the two events at Vflow = 9 V (x2) and Vflow = 19 V (x1).
func (t *Trajectory) ActivationDriveLevels() map[int]float64 {
	out := make(map[int]float64)
	for _, pt := range t.Points {
		for _, e := range pt.ActiveClamps {
			if _, seen := out[e]; !seen {
				out[e] = pt.Vflow
			}
		}
	}
	return out
}

// SaturationLevel returns the smallest drive level at which the flow value is
// within relTol of its final value — how hard the substrate must be driven
// before the answer stops improving, which sets the Vflow design point.
func (t *Trajectory) SaturationLevel(relTol float64) float64 {
	if len(t.Points) == 0 {
		return math.NaN()
	}
	final := t.FinalFlowValue
	for _, pt := range t.Points {
		if math.Abs(pt.FlowValue-final) <= relTol*math.Abs(final) {
			return pt.Vflow
		}
	}
	return t.Points[len(t.Points)-1].Vflow
}
