package numeric

import (
	"math"
	"testing"
)

// stampTri stamps a well-conditioned tridiagonal system into b.
func stampTri(b *SparseBuilder, n int) {
	for i := 0; i < n; i++ {
		b.Add(i, i, 4)
		if i+1 < n {
			b.Add(i, i+1, -1)
			b.Add(i+1, i, -1)
		}
	}
}

func TestReserveSlackKeepsPatternVersion(t *testing.T) {
	const n = 6
	b := NewSparseBuilder(n)
	b.ReserveSlack(2)
	if !b.ReserveSlackAt(0, n-1) || !b.ReserveSlackAt(n-1, 0) {
		t.Fatal("reservation within budget rejected")
	}
	if b.SlackRemaining() != 0 {
		t.Fatalf("SlackRemaining = %d, want 0", b.SlackRemaining())
	}
	if b.ReserveSlackAt(1, 4) {
		t.Fatal("reservation beyond budget accepted")
	}
	stampTri(b, n)
	a := b.Compile()
	v0 := b.PatternVersion()
	lu, err := FactorizeSparse(a)
	if err != nil {
		t.Fatalf("factorize: %v", err)
	}

	// Stamping the reserved coordinates is a pure value update: the pattern
	// version holds, and a numeric-only refactorization stays exact.
	b.Reset()
	stampTri(b, n)
	b.Add(0, n-1, -0.5)
	b.Add(n-1, 0, -0.5)
	a2 := b.Compile()
	if b.PatternVersion() != v0 {
		t.Fatalf("stamp at reserved coordinate bumped the pattern: %d -> %d", v0, b.PatternVersion())
	}
	if err := lu.Refactor(a2); err != nil {
		t.Fatalf("refactor: %v", err)
	}
	rhs := make([]float64, n)
	for i := range rhs {
		rhs[i] = float64(i + 1)
	}
	x, err := lu.Solve(rhs)
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	ax := a2.MulVec(x)
	for i := range ax {
		if math.Abs(ax[i]-rhs[i]) > 1e-9 {
			t.Fatalf("refactored solve residual %g at %d", ax[i]-rhs[i], i)
		}
	}

	// A stamp at a coordinate that was never reserved is the honest cold
	// path: the pattern grows and the version bumps.
	b.Reset()
	stampTri(b, n)
	b.Add(2, 5, -0.25)
	b.Compile()
	if b.PatternVersion() == v0 {
		t.Fatal("unreserved out-of-pattern stamp must bump the pattern version")
	}
}

func TestReserveSlackAfterFreeze(t *testing.T) {
	const n = 4
	b := NewSparseBuilder(n)
	stampTri(b, n)
	b.Compile()
	v0 := b.PatternVersion()

	// In-pattern coordinates are covered without consuming budget.
	if !b.ReserveSlackAt(0, 1) {
		t.Fatal("in-pattern coordinate should always be covered")
	}
	if b.SlackRemaining() != 0 {
		t.Fatalf("in-pattern reservation consumed budget: %d", b.SlackRemaining())
	}

	// A post-freeze reservation costs exactly one pattern bump at the next
	// compile, after which stamps there are value-level.
	b.ReserveSlack(1)
	if !b.ReserveSlackAt(0, 3) {
		t.Fatal("reservation within budget rejected")
	}
	b.Reset()
	stampTri(b, n)
	b.Compile()
	v1 := b.PatternVersion()
	if v1 != v0+1 {
		t.Fatalf("post-freeze reservation should cost one bump, got %d -> %d", v0, v1)
	}
	b.Reset()
	stampTri(b, n)
	b.Add(0, 3, -0.5)
	b.Compile()
	if b.PatternVersion() != v1 {
		t.Fatalf("stamp at reserved coordinate bumped the pattern: %d -> %d", v1, b.PatternVersion())
	}
}
