package numeric

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Coord is a (row, col) coordinate used while accumulating matrix stamps.
type Coord struct{ Row, Col int }

// SparseBuilder accumulates matrix entries by coordinate, summing duplicates,
// which is exactly the "stamping" pattern of modified nodal analysis.  Call
// Compile (or CompileInto) to obtain a CSC matrix.
//
// The builder has two modes.  A fresh builder accumulates into a hash map.
// The first Compile freezes the observed sparsity pattern; from then on Reset
// keeps the pattern and only zeroes the values, and Add on a known coordinate
// is a direct array accumulation with no hashing or allocation.  Stamps at
// coordinates outside the frozen pattern are collected on the side and merged
// into a new, strictly larger pattern at the next Compile (the pattern only
// ever grows, so it stabilises after the first few Newton iterations even for
// circuits whose device stamps come and go with the operating point).
//
// PatternVersion identifies the current frozen pattern; consumers that cache
// pattern-dependent work (such as a symbolic LU analysis) compare it to decide
// whether their cache is still valid.
type SparseBuilder struct {
	n       int
	entries map[Coord]float64 // dynamic-mode accumulation and frozen-mode misses

	frozen  bool
	pos     map[Coord]int // coordinate -> index into vals (frozen mode)
	colptr  []int         // frozen pattern, shared with compiled matrices
	rowidx  []int         // frozen pattern, shared with compiled matrices
	vals    []float64     // frozen-mode accumulation buffer
	version int           // bumped whenever the frozen pattern changes

	// Slack reservation (ReserveSlack / ReserveSlackAt): explicitly declared
	// coordinates that join the pattern as structural zeros at the next
	// freeze, so later stamps there are in-pattern value updates instead of
	// pattern growth.  reserved holds coordinates awaiting a freeze; slack is
	// the remaining reservation budget.
	reserved map[Coord]bool
	slack    int
}

// NewSparseBuilder creates a builder for an n x n matrix.
func NewSparseBuilder(n int) *SparseBuilder {
	return &SparseBuilder{n: n, entries: make(map[Coord]float64)}
}

// N returns the matrix dimension.
func (b *SparseBuilder) N() int { return b.n }

// Add accumulates v into entry (r, c).
func (b *SparseBuilder) Add(r, c int, v float64) {
	if r < 0 || r >= b.n || c < 0 || c >= b.n {
		panic(fmt.Sprintf("numeric: stamp (%d,%d) outside %dx%d matrix", r, c, b.n, b.n))
	}
	if v == 0 {
		return
	}
	coord := Coord{r, c}
	if b.frozen {
		if i, ok := b.pos[coord]; ok {
			b.vals[i] += v
			return
		}
	}
	b.entries[coord] += v
}

// NNZ returns the current number of stored (possibly zero-summed) entries:
// the frozen pattern size plus any not-yet-merged out-of-pattern stamps.
func (b *SparseBuilder) NNZ() int { return len(b.rowidx) + len(b.entries) }

// Reset clears all accumulated values, keeping the dimension and - once the
// pattern is frozen - the pattern and every buffer, so the stamp/compile cycle
// of an unchanged topology allocates nothing.
func (b *SparseBuilder) Reset() {
	if b.frozen {
		for i := range b.vals {
			b.vals[i] = 0
		}
	}
	clear(b.entries)
}

// PatternVersion identifies the frozen sparsity pattern.  It is 0 before the
// first Compile and increases every time the pattern changes.
func (b *SparseBuilder) PatternVersion() int { return b.version }

// ReserveSlack grows the slack-reservation budget by n positions.  Each unit
// lets one ReserveSlackAt register a coordinate that is not (yet) part of the
// sparsity pattern.
//
// Slack positions exist because the cached symbolic LU analysis is only
// reusable for matrices whose pattern it was computed for: SparseLU.Refactor
// scatters every entry of the input but gathers only at the analysed
// positions, so an out-of-pattern stamp silently corrupts later columns.  A
// coordinate must therefore be IN the pattern — as a structural zero — before
// the symbolic analysis runs for numeric-only refactorization to stay sound.
// Reserving coordinates before the first Compile folds them into the first
// frozen pattern for free; reserving later costs exactly one pattern bump at
// the next Compile, after which stamps there are plain value updates.  A
// stamp at a coordinate that was never reserved (the slack pool is exhausted
// or was never sized for it) still works, but grows the pattern and bumps
// PatternVersion, invalidating cached symbolic analyses — the honest cold
// path.
func (b *SparseBuilder) ReserveSlack(n int) {
	if n > 0 {
		b.slack += n
	}
}

// ReserveSlackAt registers coordinate (r, c) as a reserved slack position and
// reports whether the coordinate is covered.  Coordinates already in the
// frozen pattern (or already reserved) are covered for free; a genuinely new
// coordinate consumes one unit of the ReserveSlack budget.  It returns false
// — and registers nothing — when the budget is exhausted.
func (b *SparseBuilder) ReserveSlackAt(r, c int) bool {
	if r < 0 || r >= b.n || c < 0 || c >= b.n {
		panic(fmt.Sprintf("numeric: slack reservation (%d,%d) outside %dx%d matrix", r, c, b.n, b.n))
	}
	coord := Coord{r, c}
	if b.frozen {
		if _, ok := b.pos[coord]; ok {
			return true
		}
	}
	if b.reserved[coord] {
		return true
	}
	if b.slack <= 0 {
		return false
	}
	if b.reserved == nil {
		b.reserved = make(map[Coord]bool)
	}
	b.reserved[coord] = true
	b.slack--
	return true
}

// SlackRemaining returns the unconsumed slack-reservation budget.
func (b *SparseBuilder) SlackRemaining() int { return b.slack }

// Compile converts the accumulated entries into a CSC matrix.
func (b *SparseBuilder) Compile() *CSC {
	return b.CompileInto(&CSC{})
}

// CompileInto is Compile with a caller-provided destination: the pattern
// slices of the result are shared with the builder (they are immutable until
// the pattern grows, at which point fresh slices are allocated) and the value
// slice of m is reused when large enough.  The same builder must not be
// compiled into two matrices that need to stay independent across a pattern
// change.
func (b *SparseBuilder) CompileInto(m *CSC) *CSC {
	if !b.frozen || len(b.entries) > 0 || len(b.reserved) > 0 {
		b.refreeze()
	}
	m.N = b.n
	m.ColPtr = b.colptr
	m.RowIdx = b.rowidx
	if cap(m.Values) < len(b.vals) {
		m.Values = make([]float64, len(b.vals))
	}
	m.Values = m.Values[:len(b.vals)]
	copy(m.Values, b.vals)
	return m
}

// refreeze merges the frozen pattern (if any) with the out-of-pattern entries
// into a new frozen pattern.
func (b *SparseBuilder) refreeze() {
	type cv struct {
		c Coord
		v float64
	}
	merged := make([]cv, 0, len(b.rowidx)+len(b.entries)+len(b.reserved))
	for col := 0; col+1 < len(b.colptr); col++ {
		for p := b.colptr[col]; p < b.colptr[col+1]; p++ {
			merged = append(merged, cv{Coord{b.rowidx[p], col}, b.vals[p]})
		}
	}
	for c, v := range b.entries {
		merged = append(merged, cv{c, v})
	}
	// Reserved slack coordinates join as structural zeros, so the symbolic
	// analysis of the new pattern already covers their future stamps.
	for c := range b.reserved {
		if _, hit := b.entries[c]; hit {
			continue
		}
		if b.frozen {
			if _, hit := b.pos[c]; hit {
				continue
			}
		}
		merged = append(merged, cv{c, 0})
	}
	sort.Slice(merged, func(i, j int) bool {
		if merged[i].c.Col != merged[j].c.Col {
			return merged[i].c.Col < merged[j].c.Col
		}
		return merged[i].c.Row < merged[j].c.Row
	})
	b.colptr = make([]int, b.n+1)
	b.rowidx = make([]int, len(merged))
	b.vals = make([]float64, len(merged))
	b.pos = make(map[Coord]int, len(merged))
	col := 0
	for i, e := range merged {
		for col < e.c.Col {
			col++
			b.colptr[col] = i
		}
		b.rowidx[i] = e.c.Row
		b.vals[i] = e.v
		b.pos[e.c] = i
	}
	for col < b.n {
		col++
		b.colptr[col] = len(merged)
	}
	clear(b.entries)
	clear(b.reserved)
	b.frozen = true
	b.version++
}

// ToDense materialises the builder into a dense matrix (useful for tests and
// for tiny circuits).
func (b *SparseBuilder) ToDense() *Dense {
	d := NewDense(b.n, b.n)
	for col := 0; col+1 < len(b.colptr); col++ {
		for p := b.colptr[col]; p < b.colptr[col+1]; p++ {
			d.Add(b.rowidx[p], col, b.vals[p])
		}
	}
	for c, v := range b.entries {
		d.Add(c.Row, c.Col, v)
	}
	return d
}

// CSC is a compressed-sparse-column matrix.
type CSC struct {
	N      int
	ColPtr []int // len N+1
	RowIdx []int // len nnz
	Values []float64
}

// NNZ returns the number of stored entries.
func (m *CSC) NNZ() int { return len(m.RowIdx) }

// MulVec computes y = A x.
func (m *CSC) MulVec(x []float64) []float64 {
	return m.MulVecTo(make([]float64, m.N), x)
}

// MulVecTo computes dst = A x in place and returns dst; dst must have length
// N and must not alias x.
func (m *CSC) MulVecTo(dst, x []float64) []float64 {
	if len(x) != m.N || len(dst) != m.N {
		panic(fmt.Sprintf("numeric: MulVecTo dimension mismatch %d/%d vs %d", len(dst), len(x), m.N))
	}
	for i := range dst {
		dst[i] = 0
	}
	for c := 0; c < m.N; c++ {
		xc := x[c]
		if xc == 0 {
			continue
		}
		for p := m.ColPtr[c]; p < m.ColPtr[c+1]; p++ {
			dst[m.RowIdx[p]] += m.Values[p] * xc
		}
	}
	return dst
}

// At returns element (r, c); O(nnz in column c).
func (m *CSC) At(r, c int) float64 {
	for p := m.ColPtr[c]; p < m.ColPtr[c+1]; p++ {
		if m.RowIdx[p] == r {
			return m.Values[p]
		}
	}
	return 0
}

// ToDense converts to a dense matrix.
func (m *CSC) ToDense() *Dense {
	d := NewDense(m.N, m.N)
	for c := 0; c < m.N; c++ {
		for p := m.ColPtr[c]; p < m.ColPtr[c+1]; p++ {
			d.Add(m.RowIdx[p], c, m.Values[p])
		}
	}
	return d
}

// luEntry is one stored nonzero of an L or U column.
type luEntry struct {
	row int
	val float64
}

// SparseLU is a left-looking (Gilbert-Peierls) sparse LU factorisation with
// partial pivoting, the factorisation style used by SPICE-class circuit
// simulators.  The factorisation satisfies P A = L U with L unit lower
// triangular.
//
// The factorisation separates cleanly into a symbolic stage (the fill-in
// pattern of L and U plus the pivot order, which depend only on the sparsity
// pattern of A and on the values seen by the *first* factorisation) and a
// numeric stage (the stored values).  Refactor redoes only the numeric stage
// for a matrix with the same pattern, skipping the reachability DFS, the
// pivot search and every allocation - the dominant cost of re-factorising the
// MNA matrix at each Newton iterate of a fixed netlist.
type SparseLU struct {
	n     int
	lcols [][]luEntry // L columns; row indices in pivot order, diag (==1) omitted
	lorig [][]int     // original row index of each L entry (parallel to lcols)
	ucols [][]luEntry // U columns; rows ascending in pivot order, diagonal last
	pinv  []int       // pinv[origRow] = pivot position
	perm  []int       // perm[k] = original row selected as pivot k

	// Scratch buffers for Refactor / SolveTo / SolveRefinedTo.
	work  []float64
	resid []float64
	corr  []float64
}

// ErrUnstablePivot is returned by Refactor when a reused pivot has become
// too small relative to its column for the cached pivot order to be safe; the
// caller should fall back to a fresh FactorizeSparse.
var ErrUnstablePivot = errors.New("numeric: cached pivot order numerically unstable for the new values")

// refactorPivotFloor is the smallest |pivot| / ||column|| ratio Refactor
// accepts before reporting ErrUnstablePivot.
const refactorPivotFloor = 1e-10

// FactorizeSparse computes the sparse LU factorisation of a.
//
// The stored pattern is structural: every position reachable from the pattern
// of A is kept, even when its value happens to be zero at the factorised
// operating point.  This makes the pattern (and hence the validity of
// Refactor) independent of the matrix values.
func FactorizeSparse(a *CSC) (*SparseLU, error) {
	n := a.N
	lu := &SparseLU{
		n:     n,
		lcols: make([][]luEntry, n),
		lorig: make([][]int, n),
		ucols: make([][]luEntry, n),
		pinv:  make([]int, n),
		perm:  make([]int, n),
	}
	// lrowsOrig[k] holds L column k with original row indices until all
	// pivots are known.
	lrowsOrig := make([][]luEntry, n)
	for i := range lu.pinv {
		lu.pinv[i] = -1
		lu.perm[i] = -1
	}

	x := make([]float64, n)     // dense accumulator
	mark := make([]bool, n)     // visited flags for the DFS
	stack := make([]int, 0, n)  // DFS stack
	topo := make([]int, 0, n)   // reach set in topological order
	pstack := make([]int, 0, n) // per-node position in column traversal
	elim := make([]int, 0, n)   // pivotal reach nodes in ascending pivot order

	for k := 0; k < n; k++ {
		// --- symbolic: reachability of the pattern of A(:,k) in the graph
		// of already-computed L columns.
		topo = topo[:0]
		for p := a.ColPtr[k]; p < a.ColPtr[k+1]; p++ {
			start := a.RowIdx[p]
			if mark[start] {
				continue
			}
			// Iterative DFS from start.
			stack = stack[:0]
			pstack = pstack[:0]
			stack = append(stack, start)
			pstack = append(pstack, 0)
			mark[start] = true
			for len(stack) > 0 {
				i := stack[len(stack)-1]
				col := lu.pinv[i]
				advanced := false
				if col >= 0 {
					ents := lrowsOrig[col]
					for pos := pstack[len(pstack)-1]; pos < len(ents); pos++ {
						r := ents[pos].row
						if !mark[r] {
							pstack[len(pstack)-1] = pos + 1
							stack = append(stack, r)
							pstack = append(pstack, 0)
							mark[r] = true
							advanced = true
							break
						}
					}
				}
				if !advanced {
					stack = stack[:len(stack)-1]
					pstack = pstack[:len(pstack)-1]
					topo = append(topo, i)
				}
			}
		}

		// --- numeric: scatter A(:,k) and eliminate.  Elimination goes in
		// ascending pivot order (any order respecting the column dependencies
		// is valid; ascending is the order Refactor replays, so using it here
		// keeps the two numerically identical).
		elim = elim[:0]
		for _, i := range topo {
			if lu.pinv[i] >= 0 {
				elim = append(elim, i)
			}
		}
		sort.Slice(elim, func(a, b int) bool { return lu.pinv[elim[a]] < lu.pinv[elim[b]] })
		for p := a.ColPtr[k]; p < a.ColPtr[k+1]; p++ {
			x[a.RowIdx[p]] = a.Values[p]
		}
		for _, i := range elim {
			xi := x[i]
			if xi == 0 {
				continue
			}
			for _, e := range lrowsOrig[lu.pinv[i]] {
				x[e.row] -= e.val * xi
			}
		}

		// --- pivot selection: largest magnitude among not-yet-pivotal rows.
		ipiv := -1
		var maxAbs float64
		for _, i := range topo {
			if lu.pinv[i] < 0 {
				if v := math.Abs(x[i]); v > maxAbs {
					maxAbs = v
					ipiv = i
				}
			}
		}
		if ipiv == -1 || maxAbs == 0 || math.IsNaN(maxAbs) {
			return nil, ErrSingular
		}
		pivotVal := x[ipiv]
		lu.pinv[ipiv] = k
		lu.perm[k] = ipiv

		// --- store U column k (pivotal rows ascending, then the diagonal)
		// and L column k (remaining reach rows, original indices for now).
		ucol := make([]luEntry, 0, len(elim)+1)
		for _, i := range elim {
			ucol = append(ucol, luEntry{row: lu.pinv[i], val: x[i]})
		}
		ucol = append(ucol, luEntry{row: k, val: pivotVal})
		lcol := make([]luEntry, 0, len(topo)-len(elim))
		for _, i := range topo {
			if i != ipiv && lu.pinv[i] < 0 {
				lcol = append(lcol, luEntry{row: i, val: x[i] / pivotVal})
			}
		}
		lu.ucols[k] = ucol
		lrowsOrig[k] = lcol

		// --- clear work arrays for the next column.
		for _, i := range topo {
			x[i] = 0
			mark[i] = false
		}
	}

	// Any rows never chosen as pivots indicate structural singularity.
	for i := 0; i < n; i++ {
		if lu.pinv[i] < 0 {
			return nil, ErrSingular
		}
	}

	// Record L with both pivot-order rows (for the triangular solves) and
	// original rows (for Refactor's scatter updates), preserving entry order.
	for k := 0; k < n; k++ {
		src := lrowsOrig[k]
		dst := make([]luEntry, len(src))
		orig := make([]int, len(src))
		for i, e := range src {
			dst[i] = luEntry{row: lu.pinv[e.row], val: e.val}
			orig[i] = e.row
		}
		lu.lcols[k] = dst
		lu.lorig[k] = orig
	}
	return lu, nil
}

// Refactor recomputes the numeric factorisation for a matrix with the same
// sparsity pattern as the one originally factorised (or a sub-pattern of it),
// reusing the cached pivot order and fill-in pattern.  It performs no
// reachability analysis, no pivot search and no allocation, which makes it
// several times cheaper than FactorizeSparse on circuit matrices.
//
// It returns ErrUnstablePivot when a reused pivot has become too small
// relative to its column, and ErrSingular on an exactly zero or NaN pivot;
// in both cases the caller should fall back to FactorizeSparse, and the
// factorisation must not be used for solves until it succeeds.
func (f *SparseLU) Refactor(a *CSC) error {
	if a.N != f.n {
		return fmt.Errorf("numeric: Refactor dimension mismatch %d vs %d", a.N, f.n)
	}
	if f.work == nil {
		f.work = make([]float64, f.n)
	}
	x := f.work
	for k := 0; k < f.n; k++ {
		for p := a.ColPtr[k]; p < a.ColPtr[k+1]; p++ {
			x[a.RowIdx[p]] = a.Values[p]
		}
		ucol := f.ucols[k]
		colMax := 0.0
		for j := 0; j < len(ucol)-1; j++ {
			col := ucol[j].row
			i := f.perm[col]
			xi := x[i]
			ucol[j].val = xi
			x[i] = 0
			if xi == 0 {
				continue
			}
			lor := f.lorig[col]
			lc := f.lcols[col]
			for t := range lor {
				x[lor[t]] -= lc[t].val * xi
			}
		}
		prow := f.perm[k]
		piv := x[prow]
		x[prow] = 0
		ucol[len(ucol)-1].val = piv
		if v := math.Abs(piv); v > colMax {
			colMax = v
		}
		lor := f.lorig[k]
		lc := f.lcols[k]
		for t := range lor {
			v := x[lor[t]]
			x[lor[t]] = 0
			if av := math.Abs(v); av > colMax {
				colMax = av
			}
			lc[t].val = v / piv
		}
		if piv == 0 || math.IsNaN(piv) {
			return ErrSingular
		}
		if math.Abs(piv) < refactorPivotFloor*colMax {
			return ErrUnstablePivot
		}
	}
	return nil
}

// Solve solves A x = b for the factorised matrix.
func (f *SparseLU) Solve(b []float64) ([]float64, error) {
	x := make([]float64, f.n)
	if err := f.SolveTo(x, b); err != nil {
		return nil, err
	}
	return x, nil
}

// SolveTo solves A x = b into dst (len n, must not alias b) without
// allocating.
func (f *SparseLU) SolveTo(dst, b []float64) error {
	if len(b) != f.n || len(dst) != f.n {
		return fmt.Errorf("numeric: rhs length %d/%d, want %d", len(dst), len(b), f.n)
	}
	// dst = P b
	for i := 0; i < f.n; i++ {
		dst[f.pinv[i]] = b[i]
	}
	// Forward solve L w = P b (unit diagonal).
	for k := 0; k < f.n; k++ {
		wk := dst[k]
		if wk == 0 {
			continue
		}
		for _, e := range f.lcols[k] {
			dst[e.row] -= e.val * wk
		}
	}
	// Backward solve U x = w.  U is stored by columns with the diagonal last;
	// iterate columns from right to left.
	for k := f.n - 1; k >= 0; k-- {
		ucol := f.ucols[k]
		diag := ucol[len(ucol)-1].val
		if diag == 0 {
			return ErrSingular
		}
		dst[k] /= diag
		xk := dst[k]
		if xk == 0 {
			continue
		}
		for _, e := range ucol[:len(ucol)-1] {
			dst[e.row] -= e.val * xk
		}
	}
	return nil
}

// NNZ returns the number of stored nonzeros in L and U combined (a measure of
// fill-in used by the experiments).
func (f *SparseLU) NNZ() int {
	nnz := 0
	for k := 0; k < f.n; k++ {
		nnz += len(f.lcols[k]) + len(f.ucols[k])
	}
	return nnz
}

// SolveRefined solves A x = b and then applies iters rounds of iterative
// refinement (x += A\(b - A x)) using the same factorisation.  Refinement
// recovers most of the accuracy lost to ill-conditioning, which matters for
// the MNA matrices of the analog substrate whose conductances span many
// orders of magnitude (diode on-resistances versus op-amp-derived residual
// conductances).
func (f *SparseLU) SolveRefined(a *CSC, b []float64, iters int) ([]float64, error) {
	x := make([]float64, f.n)
	if err := f.SolveRefinedTo(x, a, b, iters); err != nil {
		return nil, err
	}
	return x, nil
}

// SolveRefinedTo is SolveRefined into a caller-provided destination (len n,
// must not alias b); it allocates nothing beyond the factorisation's own
// lazily-created scratch buffers.
func (f *SparseLU) SolveRefinedTo(dst []float64, a *CSC, b []float64, iters int) error {
	if err := f.SolveTo(dst, b); err != nil {
		return err
	}
	if iters <= 0 {
		return nil
	}
	if f.resid == nil {
		f.resid = make([]float64, f.n)
		f.corr = make([]float64, f.n)
	}
	for k := 0; k < iters; k++ {
		// resid = b - A dst
		a.MulVecTo(f.resid, dst)
		for i := range f.resid {
			f.resid[i] = b[i] - f.resid[i]
		}
		if NormInf(f.resid) == 0 {
			break
		}
		if err := f.SolveTo(f.corr, f.resid); err != nil {
			return err
		}
		AxpY(1, f.corr, dst)
	}
	return nil
}

// SolveSparse factorises a and solves a single right-hand side.
func SolveSparse(a *CSC, b []float64) ([]float64, error) {
	f, err := FactorizeSparse(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b)
}

// SolveSparseRefined factorises a and solves with two rounds of iterative
// refinement.
func SolveSparseRefined(a *CSC, b []float64) ([]float64, error) {
	f, err := FactorizeSparse(a)
	if err != nil {
		return nil, err
	}
	return f.SolveRefined(a, b, 2)
}

// ResidualNorm returns ||A x - b||_inf, used by tests and by the iterative
// refinement step of the MNA solver.
func ResidualNorm(a *CSC, x, b []float64) float64 {
	ax := a.MulVec(x)
	return NormInf(Sub(ax, b))
}
