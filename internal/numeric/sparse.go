package numeric

import (
	"fmt"
	"math"
	"sort"
)

// Coord is a (row, col) coordinate used while accumulating matrix stamps.
type Coord struct{ Row, Col int }

// SparseBuilder accumulates matrix entries by coordinate, summing duplicates,
// which is exactly the "stamping" pattern of modified nodal analysis.  Call
// Compile to obtain an immutable CSC matrix.
type SparseBuilder struct {
	n       int
	entries map[Coord]float64
}

// NewSparseBuilder creates a builder for an n x n matrix.
func NewSparseBuilder(n int) *SparseBuilder {
	return &SparseBuilder{n: n, entries: make(map[Coord]float64)}
}

// N returns the matrix dimension.
func (b *SparseBuilder) N() int { return b.n }

// Add accumulates v into entry (r, c).
func (b *SparseBuilder) Add(r, c int, v float64) {
	if r < 0 || r >= b.n || c < 0 || c >= b.n {
		panic(fmt.Sprintf("numeric: stamp (%d,%d) outside %dx%d matrix", r, c, b.n, b.n))
	}
	if v == 0 {
		return
	}
	b.entries[Coord{r, c}] += v
}

// NNZ returns the current number of stored (possibly zero-summed) entries.
func (b *SparseBuilder) NNZ() int { return len(b.entries) }

// Reset clears all accumulated entries, keeping the dimension.
func (b *SparseBuilder) Reset() {
	b.entries = make(map[Coord]float64, len(b.entries))
}

// Compile converts the accumulated entries into a CSC matrix.
func (b *SparseBuilder) Compile() *CSC {
	coords := make([]Coord, 0, len(b.entries))
	for c := range b.entries {
		coords = append(coords, c)
	}
	sort.Slice(coords, func(i, j int) bool {
		if coords[i].Col != coords[j].Col {
			return coords[i].Col < coords[j].Col
		}
		return coords[i].Row < coords[j].Row
	})
	m := &CSC{
		N:      b.n,
		ColPtr: make([]int, b.n+1),
		RowIdx: make([]int, 0, len(coords)),
		Values: make([]float64, 0, len(coords)),
	}
	col := 0
	for _, c := range coords {
		for col < c.Col {
			col++
			m.ColPtr[col] = len(m.RowIdx)
		}
		m.RowIdx = append(m.RowIdx, c.Row)
		m.Values = append(m.Values, b.entries[c])
	}
	for col < b.n {
		col++
		m.ColPtr[col] = len(m.RowIdx)
	}
	return m
}

// ToDense materialises the builder into a dense matrix (useful for tests and
// for tiny circuits).
func (b *SparseBuilder) ToDense() *Dense {
	d := NewDense(b.n, b.n)
	for c, v := range b.entries {
		d.Add(c.Row, c.Col, v)
	}
	return d
}

// CSC is a compressed-sparse-column matrix.
type CSC struct {
	N      int
	ColPtr []int // len N+1
	RowIdx []int // len nnz
	Values []float64
}

// NNZ returns the number of stored entries.
func (m *CSC) NNZ() int { return len(m.RowIdx) }

// MulVec computes y = A x.
func (m *CSC) MulVec(x []float64) []float64 {
	if len(x) != m.N {
		panic(fmt.Sprintf("numeric: MulVec dimension mismatch %d vs %d", len(x), m.N))
	}
	y := make([]float64, m.N)
	for c := 0; c < m.N; c++ {
		xc := x[c]
		if xc == 0 {
			continue
		}
		for p := m.ColPtr[c]; p < m.ColPtr[c+1]; p++ {
			y[m.RowIdx[p]] += m.Values[p] * xc
		}
	}
	return y
}

// At returns element (r, c); O(nnz in column c).
func (m *CSC) At(r, c int) float64 {
	for p := m.ColPtr[c]; p < m.ColPtr[c+1]; p++ {
		if m.RowIdx[p] == r {
			return m.Values[p]
		}
	}
	return 0
}

// ToDense converts to a dense matrix.
func (m *CSC) ToDense() *Dense {
	d := NewDense(m.N, m.N)
	for c := 0; c < m.N; c++ {
		for p := m.ColPtr[c]; p < m.ColPtr[c+1]; p++ {
			d.Add(m.RowIdx[p], c, m.Values[p])
		}
	}
	return d
}

// luEntry is one stored nonzero of an L or U column.
type luEntry struct {
	row int
	val float64
}

// SparseLU is a left-looking (Gilbert–Peierls) sparse LU factorisation with
// partial pivoting, the factorisation style used by SPICE-class circuit
// simulators.  The factorisation satisfies P A = L U with L unit lower
// triangular.
type SparseLU struct {
	n     int
	lcols [][]luEntry // L columns, row indices in pivot order, diag (==1) omitted
	ucols [][]luEntry // U columns, row indices in pivot order, including diagonal
	pinv  []int       // pinv[origRow] = pivot position
}

// FactorizeSparse computes the sparse LU factorisation of a.
func FactorizeSparse(a *CSC) (*SparseLU, error) {
	n := a.N
	lu := &SparseLU{
		n:     n,
		lcols: make([][]luEntry, n),
		ucols: make([][]luEntry, n),
		pinv:  make([]int, n),
	}
	// lrowsOrig[k] holds L column k with original row indices until all
	// pivots are known.
	lrowsOrig := make([][]luEntry, n)
	for i := range lu.pinv {
		lu.pinv[i] = -1
	}

	x := make([]float64, n)     // dense accumulator
	mark := make([]bool, n)     // visited flags for the DFS
	stack := make([]int, 0, n)  // DFS stack
	topo := make([]int, 0, n)   // reach set in topological order
	pstack := make([]int, 0, n) // per-node position in column traversal

	for k := 0; k < n; k++ {
		// --- symbolic: reachability of the pattern of A(:,k) in the graph
		// of already-computed L columns.
		topo = topo[:0]
		for p := a.ColPtr[k]; p < a.ColPtr[k+1]; p++ {
			start := a.RowIdx[p]
			if mark[start] {
				continue
			}
			// Iterative DFS from start.
			stack = stack[:0]
			pstack = pstack[:0]
			stack = append(stack, start)
			pstack = append(pstack, 0)
			mark[start] = true
			for len(stack) > 0 {
				i := stack[len(stack)-1]
				col := lu.pinv[i]
				advanced := false
				if col >= 0 {
					ents := lrowsOrig[col]
					for pos := pstack[len(pstack)-1]; pos < len(ents); pos++ {
						r := ents[pos].row
						if !mark[r] {
							pstack[len(pstack)-1] = pos + 1
							stack = append(stack, r)
							pstack = append(pstack, 0)
							mark[r] = true
							advanced = true
							break
						}
					}
				}
				if !advanced {
					stack = stack[:len(stack)-1]
					pstack = pstack[:len(pstack)-1]
					topo = append(topo, i)
				}
			}
		}
		// topo now lists the reach set with children before parents
		// (post-order); numeric elimination must process parents first, i.e.
		// reverse order.

		// --- numeric: scatter A(:,k) and eliminate.
		for p := a.ColPtr[k]; p < a.ColPtr[k+1]; p++ {
			x[a.RowIdx[p]] = a.Values[p]
		}
		for idx := len(topo) - 1; idx >= 0; idx-- {
			i := topo[idx]
			col := lu.pinv[i]
			if col < 0 {
				continue
			}
			xi := x[i]
			if xi == 0 {
				continue
			}
			for _, e := range lrowsOrig[col] {
				x[e.row] -= e.val * xi
			}
		}

		// --- pivot selection: largest magnitude among not-yet-pivotal rows.
		ipiv := -1
		var maxAbs float64
		for _, i := range topo {
			if lu.pinv[i] < 0 {
				if v := math.Abs(x[i]); v > maxAbs {
					maxAbs = v
					ipiv = i
				}
			}
		}
		if ipiv == -1 || maxAbs == 0 || math.IsNaN(maxAbs) {
			return nil, ErrSingular
		}
		pivotVal := x[ipiv]
		lu.pinv[ipiv] = k

		// --- store U column k (rows already pivotal, plus the diagonal).
		ucol := make([]luEntry, 0, len(topo))
		lcol := make([]luEntry, 0, len(topo))
		for _, i := range topo {
			pi := lu.pinv[i]
			switch {
			case i == ipiv:
				// diagonal of U
			case pi >= 0 && pi < k:
				if x[i] != 0 {
					ucol = append(ucol, luEntry{row: pi, val: x[i]})
				}
			default:
				if x[i] != 0 {
					lcol = append(lcol, luEntry{row: i, val: x[i] / pivotVal})
				}
			}
		}
		ucol = append(ucol, luEntry{row: k, val: pivotVal})
		sort.Slice(ucol, func(a, b int) bool { return ucol[a].row < ucol[b].row })
		lu.ucols[k] = ucol
		lrowsOrig[k] = lcol

		// --- clear work arrays for the next column.
		for _, i := range topo {
			x[i] = 0
			mark[i] = false
		}
	}

	// Any rows never chosen as pivots indicate structural singularity.
	for i := 0; i < n; i++ {
		if lu.pinv[i] < 0 {
			return nil, ErrSingular
		}
	}

	// Remap L row indices to pivot order now that all pivots are known.
	for k := 0; k < n; k++ {
		src := lrowsOrig[k]
		dst := make([]luEntry, len(src))
		for i, e := range src {
			dst[i] = luEntry{row: lu.pinv[e.row], val: e.val}
		}
		sort.Slice(dst, func(a, b int) bool { return dst[a].row < dst[b].row })
		lu.lcols[k] = dst
	}
	return lu, nil
}

// Solve solves A x = b for the factorised matrix.
func (f *SparseLU) Solve(b []float64) ([]float64, error) {
	if len(b) != f.n {
		return nil, fmt.Errorf("numeric: rhs length %d, want %d", len(b), f.n)
	}
	// z = P b
	z := make([]float64, f.n)
	for i := 0; i < f.n; i++ {
		z[f.pinv[i]] = b[i]
	}
	// Forward solve L w = z (unit diagonal).
	for k := 0; k < f.n; k++ {
		wk := z[k]
		if wk == 0 {
			continue
		}
		for _, e := range f.lcols[k] {
			z[e.row] -= e.val * wk
		}
	}
	// Backward solve U x = w.  U is stored by columns; iterate columns from
	// right to left.
	x := z
	for k := f.n - 1; k >= 0; k-- {
		ucol := f.ucols[k]
		// Diagonal is the last entry (row == k after sorting).
		diag := 0.0
		for _, e := range ucol {
			if e.row == k {
				diag = e.val
			}
		}
		if diag == 0 {
			return nil, ErrSingular
		}
		x[k] /= diag
		xk := x[k]
		if xk == 0 {
			continue
		}
		for _, e := range ucol {
			if e.row != k {
				x[e.row] -= e.val * xk
			}
		}
	}
	return x, nil
}

// NNZ returns the number of stored nonzeros in L and U combined (a measure of
// fill-in used by the experiments).
func (f *SparseLU) NNZ() int {
	nnz := 0
	for k := 0; k < f.n; k++ {
		nnz += len(f.lcols[k]) + len(f.ucols[k])
	}
	return nnz
}

// SolveRefined solves A x = b and then applies iters rounds of iterative
// refinement (x += A\(b - A x)) using the same factorisation.  Refinement
// recovers most of the accuracy lost to ill-conditioning, which matters for
// the MNA matrices of the analog substrate whose conductances span many
// orders of magnitude (diode on-resistances versus op-amp-derived residual
// conductances).
func (f *SparseLU) SolveRefined(a *CSC, b []float64, iters int) ([]float64, error) {
	x, err := f.Solve(b)
	if err != nil {
		return nil, err
	}
	for k := 0; k < iters; k++ {
		r := Sub(b, a.MulVec(x))
		if NormInf(r) == 0 {
			break
		}
		dx, err := f.Solve(r)
		if err != nil {
			return nil, err
		}
		AxpY(1, dx, x)
	}
	return x, nil
}

// SolveSparse factorises a and solves a single right-hand side.
func SolveSparse(a *CSC, b []float64) ([]float64, error) {
	f, err := FactorizeSparse(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b)
}

// SolveSparseRefined factorises a and solves with two rounds of iterative
// refinement.
func SolveSparseRefined(a *CSC, b []float64) ([]float64, error) {
	f, err := FactorizeSparse(a)
	if err != nil {
		return nil, err
	}
	return f.SolveRefined(a, b, 2)
}

// ResidualNorm returns ||A x - b||_inf, used by tests and by the iterative
// refinement step of the MNA solver.
func ResidualNorm(a *CSC, x, b []float64) float64 {
	ax := a.MulVec(x)
	return NormInf(Sub(ax, b))
}
