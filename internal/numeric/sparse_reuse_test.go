package numeric

import (
	"math"
	"math/rand"
	"testing"
)

// stampLaplacian stamps a diagonally dominant 1-D Laplacian-like matrix whose
// off-diagonal values are scaled by w; the pattern is independent of w.
func stampLaplacian(b *SparseBuilder, n int, w float64) {
	for i := 0; i < n; i++ {
		b.Add(i, i, 4)
		if i > 0 {
			b.Add(i, i-1, -w)
		}
		if i+1 < n {
			b.Add(i, i+1, -w)
		}
	}
}

func TestSparseBuilderFrozenPatternReuse(t *testing.T) {
	const n = 16
	b := NewSparseBuilder(n)
	stampLaplacian(b, n, 1)
	m1 := b.Compile()
	v1 := b.PatternVersion()
	if v1 == 0 {
		t.Fatalf("pattern not frozen after Compile")
	}

	// Re-stamp the same pattern: values change, pattern version must not.
	b.Reset()
	stampLaplacian(b, n, 2)
	m2 := b.Compile()
	if b.PatternVersion() != v1 {
		t.Errorf("pattern version changed on identical topology: %d -> %d", v1, b.PatternVersion())
	}
	if m2.NNZ() != m1.NNZ() {
		t.Errorf("nnz changed: %d -> %d", m1.NNZ(), m2.NNZ())
	}
	if m2.At(3, 2) != -2 || m2.At(3, 3) != 4 {
		t.Errorf("re-stamped values wrong: %g %g", m2.At(3, 2), m2.At(3, 3))
	}

	// A stamp outside the frozen pattern grows it (union) and bumps the
	// version.
	b.Reset()
	stampLaplacian(b, n, 1)
	b.Add(0, n-1, 7)
	m3 := b.Compile()
	if b.PatternVersion() == v1 {
		t.Errorf("pattern version not bumped on growth")
	}
	if m3.At(0, n-1) != 7 {
		t.Errorf("out-of-pattern stamp lost: %g", m3.At(0, n-1))
	}
	if m3.NNZ() != m1.NNZ()+1 {
		t.Errorf("grown nnz = %d, want %d", m3.NNZ(), m1.NNZ()+1)
	}
	// The old entries survive in the grown pattern.
	if m3.At(3, 2) != -1 || m3.At(0, 0) != 4 {
		t.Errorf("old entries lost on growth")
	}
}

func TestSparseBuilderResetAllocs(t *testing.T) {
	const n = 32
	b := NewSparseBuilder(n)
	stampLaplacian(b, n, 1)
	var m CSC
	b.CompileInto(&m)
	allocs := testing.AllocsPerRun(50, func() {
		b.Reset()
		stampLaplacian(b, n, 1.5)
		b.CompileInto(&m)
	})
	if allocs != 0 {
		t.Errorf("frozen stamp/compile cycle allocates: %.1f allocs/op", allocs)
	}
}

// TestRefactorBitMatchesFactorize checks that a numeric-only refactorization
// reproduces FactorizeSparse bit for bit when the fresh factorisation would
// choose the same pivots (here guaranteed by strong diagonal dominance).
func TestRefactorBitMatchesFactorize(t *testing.T) {
	const n = 40
	rng := rand.New(rand.NewSource(11))
	build := func(scale float64) *CSC {
		b := NewSparseBuilder(n)
		rl := rand.New(rand.NewSource(99))
		for i := 0; i < n; i++ {
			b.Add(i, i, 100+rl.Float64())
			for k := 0; k < 3; k++ {
				j := rl.Intn(n)
				if j != i {
					b.Add(i, j, scale*(rl.Float64()-0.5))
				}
			}
		}
		return b.Compile()
	}
	a1 := build(1)
	f, err := FactorizeSparse(a1)
	if err != nil {
		t.Fatal(err)
	}
	a2 := build(1.75)
	if err := f.Refactor(a2); err != nil {
		t.Fatal(err)
	}
	ref, err := FactorizeSparse(a2)
	if err != nil {
		t.Fatal(err)
	}
	bvec := make([]float64, n)
	for i := range bvec {
		bvec[i] = rng.Float64() - 0.5
	}
	got, err := f.Solve(bvec)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.Solve(bvec)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("refactor solve differs at %d: %v vs %v (diff %g)", i, got[i], want[i], got[i]-want[i])
		}
	}
	// The refactorised matrix really is a2, not a1.
	if rn := ResidualNorm(a2, got, bvec); rn > 1e-10 {
		t.Errorf("refactor residual %g", rn)
	}
}

func TestRefactorAllocs(t *testing.T) {
	const n = 64
	b := NewSparseBuilder(n)
	stampLaplacian(b, n, 1)
	var m CSC
	b.CompileInto(&m)
	f, err := FactorizeSparse(&m)
	if err != nil {
		t.Fatal(err)
	}
	bvec := make([]float64, n)
	x := make([]float64, n)
	for i := range bvec {
		bvec[i] = float64(i%5) - 2
	}
	// Warm up the lazily-created scratch buffers once.
	if err := f.SolveRefinedTo(x, &m, bvec, 2); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		b.Reset()
		stampLaplacian(b, n, 1.2)
		b.CompileInto(&m)
		if err := f.Refactor(&m); err != nil {
			t.Fatal(err)
		}
		if err := f.SolveRefinedTo(x, &m, bvec, 2); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("refactorize+solve path allocates: %.1f allocs/op", allocs)
	}
}

func TestRefactorRejectsDegeneratePivot(t *testing.T) {
	b := NewSparseBuilder(2)
	b.Add(0, 0, 10)
	b.Add(1, 1, 10)
	b.Add(0, 1, 1)
	b.Add(1, 0, 1)
	m := b.Compile()
	f, err := FactorizeSparse(m)
	if err != nil {
		t.Fatal(err)
	}
	// Same pattern, but the cached pivot (the diagonal) is now zero while the
	// off-diagonal dominates: Refactor must refuse rather than divide by ~0.
	b.Reset()
	b.Add(0, 1, 1)
	b.Add(1, 0, 1)
	b.Add(0, 0, 1e-30)
	b.Add(1, 1, 1e-30)
	m2 := b.Compile()
	if err := f.Refactor(m2); err == nil {
		t.Fatalf("degenerate pivot accepted by Refactor")
	}
	// The from-scratch factorisation handles it fine (it re-pivots).
	if _, err := SolveSparse(m2, []float64{1, 1}); err != nil {
		t.Fatalf("fresh factorisation failed: %v", err)
	}
}

func TestMulVecToMatchesMulVec(t *testing.T) {
	const n = 24
	b := NewSparseBuilder(n)
	stampLaplacian(b, n, 3)
	m := b.Compile()
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(float64(i))
	}
	dst := make([]float64, n)
	m.MulVecTo(dst, x)
	want := m.MulVec(x)
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("MulVecTo differs at %d", i)
		}
	}
	if Norm2Sub(dst, want) != 0 {
		t.Errorf("Norm2Sub of identical vectors nonzero")
	}
}
