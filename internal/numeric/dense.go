// Package numeric provides the linear-algebra kernels used by the analog
// circuit simulator in internal/mna: dense LU with partial pivoting for small
// systems, a sparse matrix type with a left-looking (Gilbert-Peierls style)
// sparse LU for the large modified-nodal-analysis systems produced by crossbar
// sized circuits, and the small vector helpers shared across the project.
//
// The sparse kernels are organised for reuse across repeated solves of a
// fixed topology, the access pattern of a Newton iteration on a fixed
// netlist:
//
//   - SparseBuilder freezes its sparsity pattern at the first Compile; after
//     that, Reset/Add/CompileInto re-stamp the same pattern with plain array
//     arithmetic and zero allocation (see PatternVersion for cache keying).
//   - SparseLU separates the symbolic analysis (fill-in pattern, pivot order)
//     from the numeric factorisation: Refactor redoes only the numeric stage
//     for a same-pattern matrix, skipping the reachability DFS and the pivot
//     search.
//   - MulVecTo, SolveTo and SolveRefinedTo are the allocation-free variants
//     of the corresponding one-shot entry points.
//
// docs/solver.md describes how the MNA engine drives this pipeline.
// Everything is written against float64 and the standard library only.
package numeric

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a factorisation encounters a (numerically)
// singular matrix.
var ErrSingular = errors.New("numeric: matrix is singular to working precision")

// Dense is a dense, row-major matrix.
type Dense struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols, Data[r*Cols+c]
}

// NewDense allocates a zero matrix of the given shape.
func NewDense(rows, cols int) *Dense {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("numeric: invalid dense shape %dx%d", rows, cols))
	}
	return &Dense{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// NewDenseFromRows builds a matrix from a slice of equal-length rows.
func NewDenseFromRows(rows [][]float64) (*Dense, error) {
	if len(rows) == 0 {
		return NewDense(0, 0), nil
	}
	cols := len(rows[0])
	d := NewDense(len(rows), cols)
	for r, row := range rows {
		if len(row) != cols {
			return nil, fmt.Errorf("numeric: ragged rows (%d vs %d)", len(row), cols)
		}
		copy(d.Data[r*cols:(r+1)*cols], row)
	}
	return d, nil
}

// At returns element (r, c).
func (d *Dense) At(r, c int) float64 { return d.Data[r*d.Cols+c] }

// Set assigns element (r, c).
func (d *Dense) Set(r, c int, v float64) { d.Data[r*d.Cols+c] = v }

// Add adds v to element (r, c); the natural operation for MNA stamping.
func (d *Dense) Add(r, c int, v float64) { d.Data[r*d.Cols+c] += v }

// Clone returns a deep copy.
func (d *Dense) Clone() *Dense {
	c := NewDense(d.Rows, d.Cols)
	copy(c.Data, d.Data)
	return c
}

// Zero resets all entries to zero, keeping the allocation.
func (d *Dense) Zero() {
	for i := range d.Data {
		d.Data[i] = 0
	}
}

// MulVec computes y = A x.
func (d *Dense) MulVec(x []float64) []float64 {
	if len(x) != d.Cols {
		panic(fmt.Sprintf("numeric: MulVec dimension mismatch %d vs %d", len(x), d.Cols))
	}
	y := make([]float64, d.Rows)
	for r := 0; r < d.Rows; r++ {
		var sum float64
		row := d.Data[r*d.Cols : (r+1)*d.Cols]
		for c, v := range row {
			sum += v * x[c]
		}
		y[r] = sum
	}
	return y
}

// LUDense is an LU factorisation with partial pivoting of a square dense
// matrix: P A = L U.
type LUDense struct {
	lu    *Dense
	pivot []int
	n     int
}

// FactorizeDense computes the LU factorisation of a (square) copy of a.
func FactorizeDense(a *Dense) (*LUDense, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("numeric: LU of non-square %dx%d matrix", a.Rows, a.Cols)
	}
	n := a.Rows
	lu := a.Clone()
	pivot := make([]int, n)
	for i := range pivot {
		pivot[i] = i
	}
	for k := 0; k < n; k++ {
		// Partial pivoting: pick the largest magnitude in column k at or
		// below the diagonal.
		p := k
		maxAbs := math.Abs(lu.At(k, k))
		for i := k + 1; i < n; i++ {
			if v := math.Abs(lu.At(i, k)); v > maxAbs {
				maxAbs = v
				p = i
			}
		}
		if maxAbs == 0 || math.IsNaN(maxAbs) {
			return nil, ErrSingular
		}
		if p != k {
			swapRows(lu, p, k)
			pivot[p], pivot[k] = pivot[k], pivot[p]
		}
		pivV := lu.At(k, k)
		for i := k + 1; i < n; i++ {
			m := lu.At(i, k) / pivV
			lu.Set(i, k, m)
			if m == 0 {
				continue
			}
			for j := k + 1; j < n; j++ {
				lu.Add(i, j, -m*lu.At(k, j))
			}
		}
	}
	return &LUDense{lu: lu, pivot: pivot, n: n}, nil
}

func swapRows(d *Dense, a, b int) {
	ra := d.Data[a*d.Cols : (a+1)*d.Cols]
	rb := d.Data[b*d.Cols : (b+1)*d.Cols]
	for i := range ra {
		ra[i], rb[i] = rb[i], ra[i]
	}
}

// Solve solves A x = b using the factorisation.
func (f *LUDense) Solve(b []float64) ([]float64, error) {
	if len(b) != f.n {
		return nil, fmt.Errorf("numeric: rhs length %d, want %d", len(b), f.n)
	}
	x := make([]float64, f.n)
	// Apply the permutation.
	for i := 0; i < f.n; i++ {
		x[i] = b[f.pivot[i]]
	}
	// Forward substitution (L has unit diagonal).
	for i := 0; i < f.n; i++ {
		for j := 0; j < i; j++ {
			x[i] -= f.lu.At(i, j) * x[j]
		}
	}
	// Backward substitution.
	for i := f.n - 1; i >= 0; i-- {
		for j := i + 1; j < f.n; j++ {
			x[i] -= f.lu.At(i, j) * x[j]
		}
		d := f.lu.At(i, i)
		if d == 0 {
			return nil, ErrSingular
		}
		x[i] /= d
	}
	return x, nil
}

// SolveDense is a convenience that factorises a and solves a single system.
func SolveDense(a *Dense, b []float64) ([]float64, error) {
	f, err := FactorizeDense(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b)
}

// Vector helpers ------------------------------------------------------------

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// NormInf returns the maximum absolute entry of v.
func NormInf(v []float64) float64 {
	var m float64
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// AxpY computes y += alpha*x in place and returns y.
func AxpY(alpha float64, x, y []float64) []float64 {
	for i := range y {
		y[i] += alpha * x[i]
	}
	return y
}

// Norm2Sub returns ||a-b||_2 without materialising the difference; it is the
// allocation-free form of Norm2(Sub(a, b)) used in the Newton residual hot
// path of internal/mna.
func Norm2Sub(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// Sub returns a-b as a new slice.
func Sub(a, b []float64) []float64 {
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] - b[i]
	}
	return out
}

// Dot returns the inner product of a and b.
func Dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// MaxAbsDiff returns the largest absolute element-wise difference between a
// and b; the convergence detector in internal/mna uses it.
func MaxAbsDiff(a, b []float64) float64 {
	var m float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}
