package numeric

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"analogflow/internal/testutil"
)

func TestDenseBasics(t *testing.T) {
	d := NewDense(2, 3)
	d.Set(0, 0, 1)
	d.Add(0, 0, 2)
	d.Set(1, 2, -4)
	if d.At(0, 0) != 3 || d.At(1, 2) != -4 || d.At(0, 1) != 0 {
		t.Fatalf("element access wrong: %+v", d)
	}
	c := d.Clone()
	c.Set(0, 0, 100)
	if d.At(0, 0) != 3 {
		t.Errorf("clone aliases original")
	}
	d.Zero()
	if d.At(1, 2) != 0 {
		t.Errorf("Zero did not clear")
	}
}

func TestNewDenseFromRows(t *testing.T) {
	d, err := NewDenseFromRows([][]float64{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if d.At(1, 0) != 3 {
		t.Errorf("wrong entry")
	}
	if _, err := NewDenseFromRows([][]float64{{1, 2}, {3}}); err == nil {
		t.Errorf("ragged rows accepted")
	}
	empty, err := NewDenseFromRows(nil)
	if err != nil || empty.Rows != 0 {
		t.Errorf("empty rows mishandled")
	}
}

func TestDenseMulVec(t *testing.T) {
	d, _ := NewDenseFromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	y := d.MulVec([]float64{1, -1})
	want := []float64{-1, -1, -1}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("MulVec = %v, want %v", y, want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Errorf("dimension mismatch not detected")
		}
	}()
	d.MulVec([]float64{1})
}

func TestDenseLUSolve(t *testing.T) {
	a, _ := NewDenseFromRows([][]float64{
		{2, 1, -1},
		{-3, -1, 2},
		{-2, 1, 2},
	})
	b := []float64{8, -11, -3}
	x, err := SolveDense(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, -1}
	for i := range want {
		if !testutil.AlmostEqualAbs(x[i], want[i], 1e-10) {
			t.Fatalf("x = %v, want %v", x, want)
		}
	}
}

func TestDenseLUNeedsPivoting(t *testing.T) {
	// Zero on the first diagonal forces a row swap.
	a, _ := NewDenseFromRows([][]float64{
		{0, 1},
		{1, 0},
	})
	x, err := SolveDense(a, []float64{3, 7})
	if err != nil {
		t.Fatal(err)
	}
	if !testutil.AlmostEqualAbs(x[0], 7, 1e-12) || !testutil.AlmostEqualAbs(x[1], 3, 1e-12) {
		t.Fatalf("x = %v", x)
	}
}

func TestDenseLUSingular(t *testing.T) {
	a, _ := NewDenseFromRows([][]float64{
		{1, 2},
		{2, 4},
	})
	if _, err := SolveDense(a, []float64{1, 2}); err != ErrSingular {
		t.Errorf("expected ErrSingular, got %v", err)
	}
	rect := NewDense(2, 3)
	if _, err := FactorizeDense(rect); err == nil {
		t.Errorf("non-square matrix accepted")
	}
}

func TestDenseLUSolveBadRHS(t *testing.T) {
	a, _ := NewDenseFromRows([][]float64{{1, 0}, {0, 1}})
	f, err := FactorizeDense(a)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Solve([]float64{1}); err == nil {
		t.Errorf("short rhs accepted")
	}
}

func TestVectorHelpers(t *testing.T) {
	if !testutil.AlmostEqualAbs(Norm2([]float64{3, 4}), 5, 1e-12) {
		t.Errorf("Norm2 wrong")
	}
	if NormInf([]float64{-7, 2}) != 7 {
		t.Errorf("NormInf wrong")
	}
	y := AxpY(2, []float64{1, 1}, []float64{1, 2})
	if y[0] != 3 || y[1] != 4 {
		t.Errorf("AxpY wrong: %v", y)
	}
	s := Sub([]float64{5, 5}, []float64{2, 3})
	if s[0] != 3 || s[1] != 2 {
		t.Errorf("Sub wrong: %v", s)
	}
	if Dot([]float64{1, 2, 3}, []float64{4, 5, 6}) != 32 {
		t.Errorf("Dot wrong")
	}
	if MaxAbsDiff([]float64{1, 2}, []float64{1.5, 2}) != 0.5 {
		t.Errorf("MaxAbsDiff wrong")
	}
}

func TestSparseBuilderCompile(t *testing.T) {
	b := NewSparseBuilder(3)
	b.Add(0, 0, 1)
	b.Add(0, 0, 1) // duplicate accumulates
	b.Add(2, 1, -3)
	b.Add(1, 2, 5)
	b.Add(1, 2, 0) // zero stamp ignored
	if b.NNZ() != 3 {
		t.Errorf("NNZ = %d, want 3", b.NNZ())
	}
	m := b.Compile()
	if m.At(0, 0) != 2 || m.At(2, 1) != -3 || m.At(1, 2) != 5 || m.At(2, 2) != 0 {
		t.Errorf("compiled matrix wrong")
	}
	d := b.ToDense()
	if d.At(0, 0) != 2 {
		t.Errorf("ToDense wrong")
	}
	b.Reset()
	// Reset keeps the frozen pattern (that is the point of the reuse path)
	// but every stored value must be back to zero.
	if b.NNZ() != 3 {
		t.Errorf("Reset dropped the frozen pattern: NNZ = %d, want 3", b.NNZ())
	}
	if m2 := b.Compile(); m2.At(0, 0) != 0 || m2.At(2, 1) != 0 || m2.At(1, 2) != 0 {
		t.Errorf("Reset did not clear values: %+v", m2)
	}
}

func TestSparseBuilderResetBeforeCompile(t *testing.T) {
	b := NewSparseBuilder(2)
	b.Add(0, 0, 1)
	b.Reset()
	if b.NNZ() != 0 {
		t.Errorf("pre-freeze Reset did not clear: NNZ = %d", b.NNZ())
	}
}

func TestSparseBuilderPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("out-of-range stamp not detected")
		}
	}()
	NewSparseBuilder(2).Add(2, 0, 1)
}

func TestCSCMulVec(t *testing.T) {
	b := NewSparseBuilder(3)
	b.Add(0, 0, 2)
	b.Add(1, 1, 3)
	b.Add(2, 0, -1)
	b.Add(0, 2, 4)
	m := b.Compile()
	y := m.MulVec([]float64{1, 2, 3})
	want := []float64{2*1 + 4*3, 3 * 2, -1}
	for i := range want {
		if !testutil.AlmostEqualAbs(y[i], want[i], 1e-12) {
			t.Fatalf("MulVec = %v, want %v", y, want)
		}
	}
	if m.NNZ() != 4 {
		t.Errorf("NNZ = %d", m.NNZ())
	}
	dd := m.ToDense()
	if dd.At(0, 2) != 4 {
		t.Errorf("ToDense wrong")
	}
}

func TestSparseLUSmall(t *testing.T) {
	b := NewSparseBuilder(3)
	// Same system as the dense test.
	vals := [][]float64{
		{2, 1, -1},
		{-3, -1, 2},
		{-2, 1, 2},
	}
	for r := 0; r < 3; r++ {
		for c := 0; c < 3; c++ {
			b.Add(r, c, vals[r][c])
		}
	}
	x, err := SolveSparse(b.Compile(), []float64{8, -11, -3})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, -1}
	for i := range want {
		if !testutil.AlmostEqualAbs(x[i], want[i], 1e-9) {
			t.Fatalf("x = %v, want %v", x, want)
		}
	}
}

func TestSparseLURequiresPivoting(t *testing.T) {
	b := NewSparseBuilder(2)
	b.Add(0, 1, 1)
	b.Add(1, 0, 1)
	x, err := SolveSparse(b.Compile(), []float64{3, 7})
	if err != nil {
		t.Fatal(err)
	}
	if !testutil.AlmostEqualAbs(x[0], 7, 1e-12) || !testutil.AlmostEqualAbs(x[1], 3, 1e-12) {
		t.Fatalf("x = %v", x)
	}
}

func TestSparseLUSingular(t *testing.T) {
	b := NewSparseBuilder(2)
	b.Add(0, 0, 1)
	b.Add(0, 1, 2)
	// Row 1 empty: structurally singular.
	if _, err := SolveSparse(b.Compile(), []float64{1, 1}); err != ErrSingular {
		t.Errorf("expected ErrSingular, got %v", err)
	}
	// Numerically singular (rank deficient).
	b2 := NewSparseBuilder(2)
	b2.Add(0, 0, 1)
	b2.Add(0, 1, 2)
	b2.Add(1, 0, 2)
	b2.Add(1, 1, 4)
	if _, err := SolveSparse(b2.Compile(), []float64{1, 2}); err != ErrSingular {
		t.Errorf("expected ErrSingular for rank-deficient matrix, got %v", err)
	}
}

func TestSparseLUSolveBadRHS(t *testing.T) {
	b := NewSparseBuilder(2)
	b.Add(0, 0, 1)
	b.Add(1, 1, 1)
	f, err := FactorizeSparse(b.Compile())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Solve([]float64{1}); err == nil {
		t.Errorf("short rhs accepted")
	}
	if f.NNZ() == 0 {
		t.Errorf("NNZ should be positive")
	}
}

// randomDiagonallyDominant builds a random sparse, nonsingular test matrix
// with ~density fraction of off-diagonal entries.
func randomDiagonallyDominant(rng *rand.Rand, n int, density float64) (*CSC, *Dense) {
	b := NewSparseBuilder(n)
	d := NewDense(n, n)
	for r := 0; r < n; r++ {
		rowSum := 0.0
		for c := 0; c < n; c++ {
			if r == c {
				continue
			}
			if rng.Float64() < density {
				v := rng.NormFloat64()
				b.Add(r, c, v)
				d.Add(r, c, v)
				rowSum += math.Abs(v)
			}
		}
		diag := rowSum + 1 + rng.Float64()
		if rng.Intn(2) == 0 {
			diag = -diag
		}
		b.Add(r, r, diag)
		d.Add(r, r, diag)
	}
	return b.Compile(), d
}

// Property: sparse LU and dense LU agree, and the sparse solution has a small
// residual.
func TestSparseVsDenseRandom(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(40)
		sp, de := randomDiagonallyDominant(rng, n, 0.2)
		bvec := make([]float64, n)
		for i := range bvec {
			bvec[i] = rng.NormFloat64()
		}
		xs, err := SolveSparse(sp, bvec)
		if err != nil {
			return false
		}
		xd, err := SolveDense(de, bvec)
		if err != nil {
			return false
		}
		if MaxAbsDiff(xs, xd) > 1e-7*(1+NormInf(xd)) {
			return false
		}
		return ResidualNorm(sp, xs, bvec) < 1e-7*(1+NormInf(bvec))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: for permutation-like matrices with arbitrary structure the solver
// still recovers the known solution (A x0 = b solved back to x0).
func TestSparseRoundTripRandom(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(30)
		sp, _ := randomDiagonallyDominant(rng, n, 0.3)
		x0 := make([]float64, n)
		for i := range x0 {
			x0[i] = rng.NormFloat64()
		}
		b := sp.MulVec(x0)
		x, err := SolveSparse(sp, b)
		if err != nil {
			return false
		}
		return MaxAbsDiff(x, x0) < 1e-7*(1+NormInf(x0))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSparseLUModeratelyLarge(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 500
	sp, _ := randomDiagonallyDominant(rng, n, 0.01)
	x0 := make([]float64, n)
	for i := range x0 {
		x0[i] = rng.NormFloat64()
	}
	b := sp.MulVec(x0)
	x, err := SolveSparse(sp, b)
	if err != nil {
		t.Fatal(err)
	}
	if MaxAbsDiff(x, x0) > 1e-6 {
		t.Fatalf("large system solution error %g", MaxAbsDiff(x, x0))
	}
}
