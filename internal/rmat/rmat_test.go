package rmat

import (
	"testing"
	"testing/quick"
)

func TestValidate(t *testing.T) {
	ok := DefaultParams(100, 400, 1)
	if err := ok.Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Params)
	}{
		{"too few vertices", func(p *Params) { p.Vertices = 1 }},
		{"negative edges", func(p *Params) { p.Edges = -1 }},
		{"zero capacity", func(p *Params) { p.MaxCapacity = 0 }},
		{"probabilities not summing", func(p *Params) { p.A = 0.9 }},
		{"non-positive probability", func(p *Params) { p.A, p.B = 0.76, 0.0 }},
		{"too many simple edges", func(p *Params) { p.Vertices, p.Edges = 5, 100 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := DefaultParams(100, 400, 1)
			tc.mutate(&p)
			if err := p.Validate(); err == nil {
				t.Errorf("expected validation error")
			}
		})
	}
}

func TestGenerateSizesAndDeterminism(t *testing.T) {
	p := DefaultParams(128, 512, 42)
	g1, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	if g1.NumVertices() != 128 {
		t.Errorf("vertices = %d, want 128", g1.NumVertices())
	}
	if g1.NumEdges() < 512 {
		t.Errorf("edges = %d, want >= 512", g1.NumEdges())
	}
	if err := g1.Validate(); err != nil {
		t.Errorf("generated graph invalid: %v", err)
	}
	g2, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	if g1.NumEdges() != g2.NumEdges() {
		t.Fatalf("same seed produced different edge counts: %d vs %d", g1.NumEdges(), g2.NumEdges())
	}
	for i := 0; i < g1.NumEdges(); i++ {
		if g1.Edge(i) != g2.Edge(i) {
			t.Fatalf("same seed produced different edge %d", i)
		}
	}
	g3, err := Generate(DefaultParams(128, 512, 43))
	if err != nil {
		t.Fatal(err)
	}
	same := g3.NumEdges() == g1.NumEdges()
	if same {
		diff := false
		for i := 0; i < g1.NumEdges(); i++ {
			if g1.Edge(i) != g3.Edge(i) {
				diff = true
				break
			}
		}
		if !diff {
			t.Errorf("different seeds produced identical graphs")
		}
	}
}

func TestGenerateEnsuresPath(t *testing.T) {
	// Tiny edge budget makes s-t connectivity unlikely without EnsurePath.
	p := DefaultParams(64, 8, 7)
	g, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	if !g.SinkReachable() {
		t.Errorf("EnsurePath did not make the sink reachable")
	}
}

func TestCapacitiesWithinRange(t *testing.T) {
	p := DefaultParams(64, 256, 3)
	p.MaxCapacity = 17
	g, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < g.NumEdges(); i++ {
		c := g.Edge(i).Capacity
		if c < 1 || c > 17 {
			t.Fatalf("edge %d capacity %g outside [1, 17]", i, c)
		}
	}
}

func TestDenseAndSparsePresets(t *testing.T) {
	d := DenseParams(512, 1)
	if d.Edges != 512*512/128 {
		t.Errorf("dense edges = %d", d.Edges)
	}
	dBig := DenseParams(1024, 1)
	if dBig.Edges != 8000 {
		t.Errorf("dense edges should clamp to 8000, got %d", dBig.Edges)
	}
	s := SparseParams(512, 1)
	if s.Edges != 2048 {
		t.Errorf("sparse edges = %d, want 2048", s.Edges)
	}
	sBig := SparseParams(5000, 1)
	if sBig.Edges != 8000 {
		t.Errorf("sparse edges should clamp to 8000, got %d", sBig.Edges)
	}
	dSmall := DenseParams(64, 1)
	if dSmall.Edges < 64 {
		t.Errorf("dense edges should be at least |V|, got %d", dSmall.Edges)
	}
}

func TestAllowParallel(t *testing.T) {
	p := DefaultParams(16, 200, 9)
	p.AllowParallel = true
	g, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() < 200 {
		t.Errorf("expected 200 edges with parallels allowed, got %d", g.NumEdges())
	}
}

func TestStats(t *testing.T) {
	g := MustGenerate(DefaultParams(256, 1024, 11))
	s := Stats(g)
	if s.MaxOut < 1 || s.MaxIn < 1 {
		t.Errorf("degenerate degree stats: %+v", s)
	}
	meanExpected := float64(g.NumEdges()) / 256
	if s.MeanOut < meanExpected*0.99 || s.MeanOut > meanExpected*1.01 {
		t.Errorf("mean out degree %g inconsistent with edge count", s.MeanOut)
	}
	// R-MAT with skewed quadrant probabilities should show hub behaviour:
	// the max degree well above the mean.
	if float64(s.MaxOut) < 2*s.MeanOut {
		t.Errorf("expected skewed degree distribution, max=%d mean=%g", s.MaxOut, s.MeanOut)
	}
}

// Property: every generated graph validates, has the requested vertex count,
// no self loops, and capacities within range.
func TestGenerateInvariants(t *testing.T) {
	f := func(seed int64) bool {
		n := 16 + int(uint64(seed)%64)
		p := DefaultParams(n, 3*n, seed)
		g, err := Generate(p)
		if err != nil {
			return false
		}
		if g.NumVertices() != n || g.Validate() != nil {
			return false
		}
		for i := 0; i < g.NumEdges(); i++ {
			e := g.Edge(i)
			if e.From == e.To || e.Capacity < 1 || e.Capacity > float64(p.MaxCapacity) {
				return false
			}
		}
		return g.SinkReachable()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
