// Package rmat implements the R-MAT (Recursive MATrix) synthetic graph
// generator of Chakrabarti, Zhan and Faloutsos, the workload generator the
// paper uses for its Figure 10 convergence-time sweep.  Both the dense
// (|E| ∝ |V|²) and sparse (|E| ∝ |V|) presets used in the paper are provided.
//
// The generator places each edge by recursively descending the adjacency
// matrix: at every level one of the four quadrants is chosen with
// probabilities (A, B, C, D), producing the skewed, scale-free degree
// distributions typical of real graphs.  Determinism is guaranteed by an
// explicit seed, so every experiment in this repository is reproducible.
package rmat

import (
	"fmt"
	"math"
	"math/rand"

	"analogflow/internal/graph"
)

// Params configures an R-MAT generation run.
type Params struct {
	// Vertices is the number of vertices |V| (at least 2).  The source is
	// vertex 0 and the sink is vertex |V|-1.
	Vertices int
	// Edges is the number of directed edges to generate.
	Edges int
	// A, B, C, D are the quadrant probabilities.  They must be positive and
	// sum to 1 (within a small tolerance).  The classic R-MAT parameters are
	// (0.57, 0.19, 0.19, 0.05); symmetric Erdos-Renyi-like behaviour is
	// (0.25, 0.25, 0.25, 0.25).
	A, B, C, D float64
	// MinCapacity and MaxCapacity bound the edge capacities, which are drawn
	// uniformly from {MinCapacity, ..., MaxCapacity}.  The paper uses
	// nonzero integral capacities; a MinCapacity of zero is treated as 1.
	// The Figure 10 workloads use a narrowed range (half to full scale) so
	// that the 20-level quantizer of Table 1 resolves every capacity, which
	// keeps the quantization error inside the error band the paper reports.
	MinCapacity int
	MaxCapacity int
	// Seed makes the generation deterministic.
	Seed int64
	// AllowParallel keeps duplicate (u, v) placements as parallel edges.
	// When false (the default for paper workloads), duplicates are re-drawn,
	// which matches the usual R-MAT "fix-up" procedure.
	AllowParallel bool
	// EnsurePath guarantees that the sink is reachable from the source by
	// adding a random s-t path if the raw instance has max-flow zero.  All
	// paper workloads enable this so that speedup numbers are not measured
	// on trivially infeasible instances.
	EnsurePath bool
}

// DefaultParams returns the classic R-MAT probabilities with the given sizes.
func DefaultParams(vertices, edges int, seed int64) Params {
	return Params{
		Vertices:    vertices,
		Edges:       edges,
		A:           0.57,
		B:           0.19,
		C:           0.19,
		D:           0.05,
		MaxCapacity: 100,
		Seed:        seed,
		EnsurePath:  true,
	}
}

// DenseParams returns the paper's dense-graph preset (|E| ∝ |V|²), clamped to
// the paper's maximum of 8000 edges.  Capacities span the upper half of the
// scale so that every capacity is resolvable by the Table 1 quantizer.
func DenseParams(vertices int, seed int64) Params {
	edges := vertices * vertices / 128
	if edges > 8000 {
		edges = 8000
	}
	if edges < vertices {
		edges = vertices
	}
	p := DefaultParams(vertices, edges, seed)
	p.MinCapacity = p.MaxCapacity / 2
	return p
}

// SparseParams returns the paper's sparse-graph preset (|E| ∝ |V|), roughly
// four edges per vertex as in the 500-8000 edge range of the evaluation.
func SparseParams(vertices int, seed int64) Params {
	edges := 4 * vertices
	if edges > 8000 {
		edges = 8000
	}
	p := DefaultParams(vertices, edges, seed)
	p.MinCapacity = p.MaxCapacity / 2
	return p
}

// Validate checks the parameters for consistency.
func (p Params) Validate() error {
	if p.Vertices < 2 {
		return fmt.Errorf("rmat: need at least 2 vertices, got %d", p.Vertices)
	}
	if p.Edges < 0 {
		return fmt.Errorf("rmat: negative edge count %d", p.Edges)
	}
	if p.MaxCapacity < 1 {
		return fmt.Errorf("rmat: MaxCapacity must be >= 1, got %d", p.MaxCapacity)
	}
	if p.MinCapacity < 0 || (p.MinCapacity > 0 && p.MinCapacity > p.MaxCapacity) {
		return fmt.Errorf("rmat: MinCapacity %d outside [0, MaxCapacity=%d]", p.MinCapacity, p.MaxCapacity)
	}
	sum := p.A + p.B + p.C + p.D
	if math.Abs(sum-1) > 1e-9 {
		return fmt.Errorf("rmat: quadrant probabilities sum to %g, want 1", sum)
	}
	if p.A <= 0 || p.B <= 0 || p.C <= 0 || p.D <= 0 {
		return fmt.Errorf("rmat: quadrant probabilities must be positive")
	}
	if !p.AllowParallel {
		// Without parallel edges the number of distinct off-diagonal slots
		// bounds the edge count.
		max := p.Vertices * (p.Vertices - 1)
		if p.Edges > max {
			return fmt.Errorf("rmat: %d edges requested but only %d distinct slots exist", p.Edges, max)
		}
	}
	return nil
}

// Generate builds a graph according to the parameters.
func Generate(p Params) (*graph.Graph, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(p.Seed))
	g, err := graph.New(p.Vertices, 0, p.Vertices-1)
	if err != nil {
		return nil, err
	}
	g.ReserveEdges(p.Edges)
	minCap := p.MinCapacity
	if minCap < 1 {
		minCap = 1
	}
	drawCapacity := func() float64 {
		return float64(minCap + rng.Intn(p.MaxCapacity-minCap+1))
	}

	levels := levelsFor(p.Vertices)
	// Cumulative quadrant thresholds, hoisted out of the placement loop; the
	// comparisons (and hence the RNG consumption pattern) are identical to
	// computing them inline.
	tAB, tABC := p.A+p.B, p.A+p.B+p.C
	seen := make(map[int64]bool, p.Edges)
	placed := 0
	attempts := 0
	maxAttempts := 50*p.Edges + 1000
	for placed < p.Edges && attempts < maxAttempts {
		attempts++
		u, v := placeEdge(rng, levels, p.A, tAB, tABC)
		if u >= p.Vertices || v >= p.Vertices {
			// Vertex counts that are not powers of two can overflow the
			// recursive grid; re-draw.
			continue
		}
		if u == v {
			continue
		}
		// int64 key: u*Vertices+v stays collision-free on 32-bit platforms.
		key := int64(u)*int64(p.Vertices) + int64(v)
		if !p.AllowParallel && seen[key] {
			continue
		}
		seen[key] = true
		if _, err := g.AddEdge(u, v, drawCapacity()); err != nil {
			return nil, err
		}
		placed++
	}
	if placed < p.Edges {
		return nil, fmt.Errorf("rmat: placed only %d of %d edges after %d attempts", placed, p.Edges, attempts)
	}
	if p.EnsurePath && !g.SinkReachable() {
		addRandomPath(g, rng, p)
	}
	return g, nil
}

// MustGenerate is Generate but panics on error; intended for benchmarks and
// examples with literal parameters.
func MustGenerate(p Params) *graph.Graph {
	g, err := Generate(p)
	if err != nil {
		panic(err)
	}
	return g
}

// levelsFor returns the number of quadrant-recursion levels needed to address
// n vertices (ceil(log2 n)).
func levelsFor(n int) int {
	levels := 0
	for (1 << levels) < n {
		levels++
	}
	return levels
}

// placeEdge draws a single (u, v) position by recursive quadrant descent; tA,
// tAB and tABC are the cumulative quadrant thresholds A, A+B and A+B+C.
func placeEdge(rng *rand.Rand, levels int, tA, tAB, tABC float64) (int, int) {
	u, v := 0, 0
	for l := 0; l < levels; l++ {
		r := rng.Float64()
		switch {
		case r < tA:
			// top-left quadrant: no bit set
		case r < tAB:
			v |= 1 << (levels - 1 - l)
		case r < tABC:
			u |= 1 << (levels - 1 - l)
		default:
			u |= 1 << (levels - 1 - l)
			v |= 1 << (levels - 1 - l)
		}
	}
	return u, v
}

// addRandomPath threads a random source-to-sink path through existing
// vertices so that the instance has a nonzero max-flow.
func addRandomPath(g *graph.Graph, rng *rand.Rand, p Params) {
	n := g.NumVertices()
	minCap := p.MinCapacity
	if minCap < 1 {
		minCap = 1
	}
	draw := func() float64 { return float64(minCap + rng.Intn(p.MaxCapacity-minCap+1)) }
	hops := 2 + rng.Intn(3)
	if hops > n-2 {
		hops = n - 2
	}
	prev := g.Source()
	used := map[int]bool{g.Source(): true, g.Sink(): true}
	for i := 0; i < hops; i++ {
		next := 1 + rng.Intn(n-2)
		if used[next] {
			continue
		}
		used[next] = true
		g.MustAddEdge(prev, next, draw())
		prev = next
	}
	g.MustAddEdge(prev, g.Sink(), draw())
}

// DegreeStats summarises the degree distribution of a generated graph; used by
// tests and by the clustered-architecture experiments to verify that the
// generator produces the skew R-MAT is known for.
type DegreeStats struct {
	MaxOut, MaxIn   int
	MeanOut, MeanIn float64
}

// Stats computes degree statistics for g.
func Stats(g *graph.Graph) DegreeStats {
	var s DegreeStats
	n := g.NumVertices()
	for v := 0; v < n; v++ {
		od, id := g.OutDegree(v), g.InDegree(v)
		if od > s.MaxOut {
			s.MaxOut = od
		}
		if id > s.MaxIn {
			s.MaxIn = id
		}
		s.MeanOut += float64(od)
		s.MeanIn += float64(id)
	}
	s.MeanOut /= float64(n)
	s.MeanIn /= float64(n)
	return s
}
