// Package parallel provides the bounded worker pool used by the experiment
// sweeps.  The contract is deliberately narrow so that parallel sweeps stay
// reproducible: ForEach runs one closure per index, each closure owns all of
// its state (graphs, solvers, RNGs seeded per index), and results are written
// to index-addressed slots, so the output is identical for any worker count -
// including the serial limit of one - and the tests pin exactly that.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// limit overrides the worker count when positive; 0 means GOMAXPROCS.
var limit atomic.Int64

// SetLimit bounds the number of workers ForEach uses (n <= 0 restores the
// default of GOMAXPROCS) and returns the previous value.  It exists for tests
// that compare serial and parallel runs; production code should leave the
// default in place.
func SetLimit(n int) (prev int) {
	return int(limit.Swap(int64(max(n, 0))))
}

// Workers returns the number of workers ForEach would use for n tasks.
func Workers(n int) int {
	w := int(limit.Load())
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// ForEach invokes fn(i) for every i in [0, n) across a bounded worker pool
// and waits for all of them.  Every index runs exactly once regardless of
// failures; the returned error is the lowest-index non-nil error, so the
// choice of worker count never changes which error the caller sees.
func ForEach(n int, fn func(i int) error) error {
	return ForEachLimit(n, 0, fn)
}

// ForEachLimit is ForEach with an explicit worker bound for this call only:
// workers <= 0 falls back to the package default (SetLimit / GOMAXPROCS).
// It exists for callers that manage their own concurrency budget — the batch
// service in internal/solve caps its in-flight solves per service instance
// rather than process-wide.
func ForEachLimit(n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = Workers(n)
	} else if workers > n {
		workers = n
	}
	if workers == 1 {
		var first error
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	return runPool(n, workers, fn)
}

func runPool(n, workers int, fn func(i int) error) error {
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
