package parallel

import (
	"errors"
	"sync/atomic"
	"testing"
)

func TestForEachRunsAllIndices(t *testing.T) {
	const n = 100
	var hits [n]atomic.Int32
	if err := ForEach(n, func(i int) error {
		hits[i].Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := range hits {
		if got := hits[i].Load(); got != 1 {
			t.Fatalf("index %d ran %d times", i, got)
		}
	}
}

func TestForEachReturnsLowestIndexError(t *testing.T) {
	errA := errors.New("a")
	errB := errors.New("b")
	for _, workers := range []int{1, 4} {
		restore := SetLimit(workers)
		err := ForEach(10, func(i int) error {
			switch i {
			case 3:
				return errA
			case 7:
				return errB
			}
			return nil
		})
		SetLimit(restore)
		if err != errA {
			t.Errorf("workers=%d: got %v, want lowest-index error %v", workers, err, errA)
		}
	}
}

func TestForEachEmptyAndSerial(t *testing.T) {
	if err := ForEach(0, func(int) error { return errors.New("never") }); err != nil {
		t.Errorf("empty ForEach returned %v", err)
	}
	restore := SetLimit(1)
	defer SetLimit(restore)
	order := make([]int, 0, 5)
	if err := ForEach(5, func(i int) error {
		order = append(order, i)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("serial limit did not run in order: %v", order)
		}
	}
}

func TestWorkersBounds(t *testing.T) {
	restore := SetLimit(8)
	defer SetLimit(restore)
	if w := Workers(3); w != 3 {
		t.Errorf("Workers(3) = %d with limit 8, want 3", w)
	}
	if w := Workers(100); w != 8 {
		t.Errorf("Workers(100) = %d with limit 8, want 8", w)
	}
}
