// Package experiments is the evaluation harness of the repository: one
// function per table or figure of the paper, each returning structured rows
// plus an ASCII rendering, so that the CLI (cmd/experiments), the benchmark
// suite (bench_test.go) and the docs all draw from the same code.
//
// The mapping between paper artifacts and functions:
//
//	Figure 5  -> Figure5Waveform        (node-voltage waveforms of the example)
//	Figure 8  -> Figure8Quantization    (voltage-level quantization example)
//	Table 1   -> Table1Parameters       (substrate design parameters)
//	Figure 10 -> Figure10Sweep          (convergence time + error vs CPU baseline)
//	Sec. 5.2  -> PowerAnalysis          (power budget -> supported edges, energy gain)
//	Figure 15 -> Figure15Trajectory     (quasi-static trajectory of the dual example)
//	Sec. 4.2  -> OpAmpPrecisionSweep    (negative-resistor precision vs gain)
//	Sec. 4.3  -> VariationSweep         (solution quality vs mismatch and mitigation)
//	Sec. 6.2  -> ClusteredUtilization   (clustered vs monolithic crossbar utilisation)
//	Sec. 6.4  -> DualDecomposition      (substrate-sized subproblems vs exact value)
package experiments

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"analogflow/internal/cluster"
	"analogflow/internal/core"
	"analogflow/internal/decompose"
	"analogflow/internal/device"
	"analogflow/internal/dynamics"
	"analogflow/internal/graph"
	"analogflow/internal/maxflow"
	"analogflow/internal/parallel"
	"analogflow/internal/power"
	"analogflow/internal/quantize"
	"analogflow/internal/rmat"
	"analogflow/internal/solve"
	"analogflow/internal/variation"
)

// newSweepService builds a solve.Service for an n-item sweep whose worker
// count honours the package-wide parallel.SetLimit knob, so the serial ==
// parallel identity tests keep exercising both paths through the unified
// batch engine.
func newSweepService(n int) *solve.Service {
	return solve.NewService(solve.Config{Workers: parallel.Workers(n)})
}

// batchReports runs the requests through a sweep service and unwraps the
// per-item errors (lowest index wins, matching parallel.ForEach's contract).
func batchReports(svc *solve.Service, reqs []solve.Request) ([]*solve.Report, error) {
	results := svc.SolveBatch(context.Background(), reqs)
	reports := make([]*solve.Report, len(results))
	for _, r := range results {
		if r.Err != nil {
			return nil, r.Err
		}
		reports[r.Index] = r.Report
	}
	return reports, nil
}

// Table is a generic experiment result: a title, column headers and rows of
// stringified cells, renderable as an aligned ASCII table.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// Render returns the table as aligned text.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	writeRow(t.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteString("\n")
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// --- Figure 5 ---------------------------------------------------------------

// Figure5Waveform reproduces Figure 5c: the waveforms of the five edge-node
// voltages of the worked example after the Vflow step.
func Figure5Waveform() (*Table, *core.WaveformResult, error) {
	params := core.DefaultParams()
	params.Variation = core.DefaultCleanVariation()
	solver, err := core.NewSolver(params)
	if err != nil {
		return nil, nil, err
	}
	wf, err := solver.SimulateWaveform(graph.PaperFigure5(), 25e-9, 250)
	if err != nil {
		return nil, nil, err
	}
	t := &Table{
		Title:   "Figure 5c — node-voltage waveforms of the example instance (quantized domain, V)",
		Columns: []string{"time (ns)", "V(x1)", "V(x2)", "V(x3)", "V(x4)", "V(x5)", "flow value"},
	}
	stride := len(wf.Times) / 25
	if stride < 1 {
		stride = 1
	}
	for i := 0; i < len(wf.Times); i += stride {
		row := []string{fmt.Sprintf("%.2f", wf.Times[i]*1e9)}
		for e := 0; e < len(wf.EdgeVoltages) && e < 5; e++ {
			row = append(row, fmt.Sprintf("%.3f", wf.EdgeVoltages[e][i]))
		}
		row = append(row, fmt.Sprintf("%.3f", wf.FlowValueSeries[i]))
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("final flow value %.3f (exact optimum 2), measured convergence time %.3g s",
			wf.FinalFlowValue, wf.ConvergenceTime))
	return t, wf, nil
}

// --- Figure 8 ---------------------------------------------------------------

// Figure8Quantization reproduces the voltage-level quantization example of
// Figure 8: the Figure 5 instance mapped onto N=20 levels with Vdd=1 V.
func Figure8Quantization() (*Table, error) {
	g := graph.PaperFigure5()
	scheme := quantize.DefaultScheme()
	res, err := quantize.Quantize(g, scheme)
	if err != nil {
		return nil, err
	}
	qg, _, err := quantize.QuantizedGraph(g, scheme)
	if err != nil {
		return nil, err
	}
	exact, err := maxflow.OptimalValue(g)
	if err != nil {
		return nil, err
	}
	qexact, err := maxflow.OptimalValue(qg)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   "Figure 8 — voltage-level quantization of the example instance (N=20, Vdd=1 V)",
		Columns: []string{"edge", "capacity", "level", "voltage (V)", "de-quantized capacity"},
	}
	names := []string{"x1", "x2", "x3", "x4", "x5"}
	for i := 0; i < g.NumEdges(); i++ {
		t.Rows = append(t.Rows, []string{
			names[i],
			fmt.Sprintf("%g", g.Edge(i).Capacity),
			fmt.Sprintf("%d", res.EdgeLevels[i]),
			fmt.Sprintf("%.2f", res.EdgeVoltages[i]),
			fmt.Sprintf("%.2f", res.QuantizedCapacities()[i]),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("exact max-flow %.2f, max-flow of the quantized instance %.2f (%.1f%% deviation; the paper reports ~5%%)",
			exact, qexact, 100*absRel(qexact, exact)),
		fmt.Sprintf("distinct voltage sources needed: %d (out of %d levels)", len(res.UsedLevels), scheme.Levels))
	return t, nil
}

// --- Table 1 ----------------------------------------------------------------

// Table1Parameters reproduces Table 1: the substrate design parameters.
func Table1Parameters() *Table {
	p := core.DefaultParams()
	t := &Table{
		Title:   "Table 1 — design parameters of the max-flow computing substrate",
		Columns: []string{"parameter", "value"},
	}
	add := func(k, v string) { t.Rows = append(t.Rows, []string{k, v}) }
	add("Memristor LRS resistance (kΩ)", fmt.Sprintf("%g", p.Crossbar.Memristor.RLRS/1e3))
	add("Memristor HRS resistance (kΩ)", fmt.Sprintf("%g", p.Crossbar.Memristor.RHRS/1e3))
	add("Objective function voltage Vflow (V)", fmt.Sprintf("%g", p.VflowMultiplier*p.Quantization.Vdd))
	add("Open loop gain of op-amp", fmt.Sprintf("%g", p.Builder.OpAmp.Gain))
	add("Gain-bandwidth product of op-amp (GHz)", fmt.Sprintf("%g to %g", 10.0, 50.0))
	add("Number of columns in the crossbar", fmt.Sprintf("%d", p.Crossbar.Cols))
	add("Number of rows in the crossbar", fmt.Sprintf("%d", p.Crossbar.Rows))
	add("Number of voltage levels", fmt.Sprintf("%d", p.Quantization.Levels))
	add("Parasitic capacitance per net (fF)", fmt.Sprintf("%g", p.Builder.ParasiticCapacitance*1e15))
	add("Op-amp supply power Pamp (µW)", fmt.Sprintf("%g", p.Power.Pamp()*1e6))
	return t
}

// --- Figure 10 --------------------------------------------------------------

// Figure10Row is one point of the convergence-time sweep.
type Figure10Row struct {
	Vertices        int
	Edges           int
	Circuit10GHz    float64 // convergence time at GBW = 10 GHz (s)
	Circuit50GHz    float64 // convergence time at GBW = 50 GHz (s)
	PushRelabelTime float64 // measured CPU time (s)
	RelativeError   float64
	Speedup10GHz    float64
}

// Figure10Result is the full sweep for one graph family.
type Figure10Result struct {
	Family string // "dense" or "sparse"
	Rows   []Figure10Row
}

// Figure10Sweep reproduces Figure 10: convergence time of the substrate (at
// 10 and 50 GHz op-amp GBW) against the measured push-relabel time, plus the
// relative error of the analog solution, for R-MAT graphs of growing size.
//
// The sweep instances are independent, so the substrate solves run across a
// bounded worker pool (internal/parallel).  Each instance owns its graph, its
// solver and its RNG (seeded by seed+|V| exactly as the serial version did),
// so every deterministic column is identical for any worker count.  The
// substrate is solved once per instance: the two GBW points share the same
// steady state and wave count and differ only in the analytic per-wave settle
// time, so the 50 GHz column is the 10 GHz convergence time rescaled by the
// SettleTimePerWave ratio rather than a second full pipeline run.
//
// The push-relabel CPU baseline is a wall-clock measurement, so it runs in a
// second, strictly serial pass: timing it inside the worker pool would let
// concurrent solves contend for the core and inflate the reported speedup.
func Figure10Sweep(family string, sizes []int, seed int64) (*Figure10Result, error) {
	switch family {
	case "dense", "sparse":
	default:
		return nil, fmt.Errorf("experiments: unknown graph family %q", family)
	}
	rows := make([]Figure10Row, len(sizes))
	graphs := make([]*graph.Graph, len(sizes))
	slowParams := core.DefaultParams().WithGBW(10e9)
	fastParams := core.DefaultParams().WithGBW(50e9)
	gbwScale := fastParams.SettleTimePerWave() / slowParams.SettleTimePerWave()
	// Instance generation fans out over the worker pool (deterministic: each
	// index owns its seed), then the substrate solves go through the unified
	// batch service as one request per instance — every instance has its own
	// fingerprint, so the sweep measures distinct solves, not cache hits.
	err := parallel.ForEach(len(sizes), func(idx int) error {
		n := sizes[idx]
		var p rmat.Params
		if family == "dense" {
			p = rmat.DenseParams(n, seed+int64(n))
		} else {
			p = rmat.SparseParams(n, seed+int64(n))
		}
		g, err := rmat.Generate(p)
		if err != nil {
			return err
		}
		graphs[idx] = g
		return nil
	})
	if err != nil {
		return nil, err
	}
	reqs := make([]solve.Request, len(sizes))
	for idx, g := range graphs {
		prob, err := solve.NewProblem(g, solve.WithParams(slowParams))
		if err != nil {
			return nil, err
		}
		reqs[idx] = solve.Request{Solver: "behavioral", Problem: prob}
	}
	reports, err := batchReports(newSweepService(len(reqs)), reqs)
	if err != nil {
		return nil, err
	}
	for idx, rep := range reports {
		rows[idx] = Figure10Row{
			Vertices:      sizes[idx],
			Edges:         graphs[idx].NumEdges(),
			Circuit10GHz:  rep.ConvergenceTime,
			Circuit50GHz:  rep.ConvergenceTime * gbwScale,
			RelativeError: rep.RelativeError,
		}
	}
	// Serial pass: the CPU baseline, timed on this host with the input
	// already in memory (the paper likewise excludes I/O).
	for idx := range rows {
		start := time.Now()
		if _, err := maxflow.SolvePushRelabel(graphs[idx]); err != nil {
			return nil, err
		}
		rows[idx].PushRelabelTime = time.Since(start).Seconds()
		if rows[idx].Circuit10GHz > 0 {
			rows[idx].Speedup10GHz = rows[idx].PushRelabelTime / rows[idx].Circuit10GHz
		}
	}
	return &Figure10Result{Family: family, Rows: rows}, nil
}

// Table converts the sweep to a renderable table.
func (r *Figure10Result) Table() *Table {
	t := &Table{
		Title: fmt.Sprintf("Figure 10 (%s graphs) — convergence time and relative error vs push-relabel", r.Family),
		Columns: []string{"|V|", "|E|", "circuit GBW=10G (s)", "circuit GBW=50G (s)",
			"push-relabel (s)", "speedup (10G)", "rel. error"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", row.Vertices),
			fmt.Sprintf("%d", row.Edges),
			fmt.Sprintf("%.3e", row.Circuit10GHz),
			fmt.Sprintf("%.3e", row.Circuit50GHz),
			fmt.Sprintf("%.3e", row.PushRelabelTime),
			fmt.Sprintf("%.0fx", row.Speedup10GHz),
			fmt.Sprintf("%.1f%%", 100*row.RelativeError),
		})
	}
	return t
}

// MeanRelativeError returns the mean relative error across the sweep.
func (r *Figure10Result) MeanRelativeError() float64 {
	if len(r.Rows) == 0 {
		return 0
	}
	var sum float64
	for _, row := range r.Rows {
		sum += row.RelativeError
	}
	return sum / float64(len(r.Rows))
}

// --- Section 5.2 ------------------------------------------------------------

// PowerAnalysis reproduces the Section 5.2 discussion: the number of active
// edges supported at the embedded (5 W) and server (150 W) power budgets, and
// the energy-efficiency gain over a CPU for a representative instance.
func PowerAnalysis() (*Table, error) {
	model := power.DefaultModel()
	t := &Table{
		Title:   "Section 5.2 — analytical power model",
		Columns: []string{"power budget (W)", "supported edges"},
	}
	for _, row := range model.BudgetTable() {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%g", row.Budget),
			fmt.Sprintf("%d", row.MaxEdges),
		})
	}
	// Representative energy comparison on a mid-sized sparse instance,
	// solved through the unified registry.
	g := rmat.MustGenerate(rmat.SparseParams(512, 7))
	prob, err := solve.NewProblem(g, solve.WithParams(core.DefaultParams()))
	if err != nil {
		return nil, err
	}
	res, err := solve.DefaultRegistry().Solve(context.Background(), "behavioral", prob)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	if _, err := maxflow.SolvePushRelabel(g); err != nil {
		return nil, err
	}
	cpuTime := time.Since(start).Seconds()
	const cpuPower = 100.0 // W, a typical server-class envelope
	gain := power.EfficiencyGain(cpuTime, cpuPower, res.ConvergenceTime, res.SubstratePower)
	t.Notes = append(t.Notes,
		fmt.Sprintf("per-op-amp power Pamp = %.0f µW", model.Pamp()*1e6),
		fmt.Sprintf("|V|=%d |E|=%d instance: substrate %.2g W for %.2g s (%.2g J) vs CPU %.2g s at %.0f W — %.0fx energy-efficiency gain",
			g.NumVertices(), g.NumEdges(), res.SubstratePower, res.ConvergenceTime, res.Energy, cpuTime, cpuPower, gain))
	return t, nil
}

// --- Figure 15 --------------------------------------------------------------

// Figure15Trajectory reproduces the quasi-static trajectory study of
// Section 6.5 on the Figure 15 instance.
func Figure15Trajectory() (*Table, *dynamics.Trajectory, error) {
	g := graph.PaperFigure15()
	opts := dynamics.DefaultOptions(g)
	opts.MaxVflow = 60
	opts.Steps = 30
	traj, err := dynamics.Sweep(g, opts)
	if err != nil {
		return nil, nil, err
	}
	t := &Table{
		Title:   "Figure 15 — quasi-static trajectory of the dual example (V(x1), V(x2), V(x3) vs Vflow)",
		Columns: []string{"Vflow (V)", "V(x1)", "V(x2)", "V(x3)", "flow value", "active clamps"},
	}
	for _, pt := range traj.Points {
		clamps := make([]string, 0, len(pt.ActiveClamps))
		for _, e := range pt.ActiveClamps {
			clamps = append(clamps, fmt.Sprintf("x%d", e+1))
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.1f", pt.Vflow),
			fmt.Sprintf("%.3f", pt.EdgeVoltages[0]),
			fmt.Sprintf("%.3f", pt.EdgeVoltages[1]),
			fmt.Sprintf("%.3f", pt.EdgeVoltages[2]),
			fmt.Sprintf("%.3f", pt.FlowValue),
			strings.Join(clamps, " "),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("final flow value %.3f (optimum %g)", traj.FinalFlowValue, graph.PaperFigure15MaxFlow),
		fmt.Sprintf("interior-point fraction of the trajectory: %.2f", traj.InteriorFraction(g, 1e-3)))
	return t, traj, nil
}

// --- Section 4.2 ------------------------------------------------------------

// OpAmpPrecisionSweep reproduces the Section 4.2 analysis: the precision of
// the op-amp realised negative resistor as a function of open-loop gain.
func OpAmpPrecisionSweep() *Table {
	t := &Table{
		Title:   "Section 4.2 — negative-resistor precision vs op-amp open-loop gain",
		Columns: []string{"open-loop gain", "relative error", "meets 0.1% target"},
	}
	for _, gain := range []float64{100, 300, 1000, 3000, 10000, 100000} {
		m := device.DefaultOpAmp()
		m.Gain = gain
		prec := m.NegativeResistorPrecision(10e3, 10e3)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%g", gain),
			fmt.Sprintf("%.4f%%", 100*prec),
			fmt.Sprintf("%v", prec <= 0.001),
		})
	}
	t.Notes = append(t.Notes, "the paper: gain > 1000 keeps the realised negative resistance within ±0.1%")
	return t
}

// --- Section 4.3 ------------------------------------------------------------

// VariationSweep studies solution quality versus resistance mismatch with and
// without the two mitigations (matched layout, post-fabrication tuning).
// Each (sigma, mitigation) configuration solves the shared instance with its
// own seed-derived solver, so the configurations fan out across the worker
// pool without changing any row.
func VariationSweep(seed int64) (*Table, error) {
	g := rmat.MustGenerate(rmat.SparseParams(192, seed))
	t := &Table{
		Title:   "Section 4.3 — relative error vs resistance mismatch and mitigation",
		Columns: []string{"mismatch sigma", "mitigation", "relative error"},
	}
	type config struct {
		sigma   float64
		matched bool
		tuned   bool
		label   string
	}
	var configs []config
	for _, sigma := range []float64{0.0, 0.01, 0.05, 0.10, 0.20, 0.30} {
		configs = append(configs,
			config{sigma, false, false, "none"},
			config{sigma, true, false, "matched layout"},
			config{sigma, true, true, "matched + tuned"},
		)
	}
	// One request per configuration, fanned out through the unified batch
	// service; every configuration carries its own parameter set (and hence
	// its own fingerprint), so the sweep rows are independent solves.
	reqs := make([]solve.Request, len(configs))
	for idx, cfg := range configs {
		p := core.DefaultParams()
		p.Seed = seed
		p.Variation = variation.Profile{GlobalSigma: 0.25, MismatchSigma: cfg.sigma, Seed: seed}
		p.MatchedLayout = cfg.matched
		p.PostFabTuning = cfg.tuned
		prob, err := solve.NewProblem(g, solve.WithParams(p))
		if err != nil {
			return nil, err
		}
		reqs[idx] = solve.Request{Solver: "behavioral", Problem: prob}
	}
	reports, err := batchReports(newSweepService(len(reqs)), reqs)
	if err != nil {
		return nil, err
	}
	rows := make([][]string, len(configs))
	for idx, rep := range reports {
		rows[idx] = []string{
			fmt.Sprintf("%.0f%%", 100*configs[idx].sigma),
			configs[idx].label,
			fmt.Sprintf("%.1f%%", 100*rep.RelativeError),
		}
	}
	t.Rows = rows
	t.Notes = append(t.Notes, "the solution depends only on resistance ratios (Section 4.3.1), so the 25% global tolerance never appears — only mismatch does")
	return t, nil
}

// --- Section 6.2 ------------------------------------------------------------

// ClusteredUtilization compares cell utilisation of clustered fabrics against
// the monolithic crossbar for a sparse graph.
func ClusteredUtilization(seed int64) (*Table, error) {
	g := rmat.MustGenerate(rmat.SparseParams(512, seed))
	sizes := []int{16, 32, 64, 128}
	sweep, err := cluster.SweepIslandSizes(g, sizes, cluster.Topology2D)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   "Section 6.2 — clustered island architectures vs monolithic crossbar (sparse graph)",
		Columns: []string{"island size", "islands", "utilisation", "monolithic", "cut fraction", "area advantage"},
	}
	keys := make([]int, 0, len(sweep))
	for k := range sweep {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, size := range keys {
		m := sweep[size]
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", size),
			fmt.Sprintf("%d", m.Architecture.Islands),
			fmt.Sprintf("%.2f%%", 100*m.Utilization),
			fmt.Sprintf("%.2f%%", 100*m.MonolithicUtilization),
			fmt.Sprintf("%.1f%%", 100*m.CutFraction()),
			fmt.Sprintf("%.1fx", cluster.AreaAdvantage(g, m.Architecture)),
		})
	}
	return t, nil
}

// --- Section 6.4 ------------------------------------------------------------

// DualDecomposition runs the Section 6.4 N-region decomposition of an
// instance larger than a (deliberately small) substrate, sweeping the region
// count over {2, 4, 8} for both partitioners and comparing every plan
// against the exact value.  The region solves of each configuration fan out
// over the bounded worker pool; the serial==concurrent identity of
// internal/decompose keeps the table deterministic for a fixed seed.
func DualDecomposition(seed int64) (*Table, error) {
	g := rmat.MustGenerate(rmat.SparseParams(400, seed))
	exact, err := maxflow.OptimalValue(g)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title: fmt.Sprintf("Section 6.4 — N-region dual decomposition, sparse R-MAT |V|=%d |E|=%d, exact max-flow %.1f",
			g.NumVertices(), g.NumEdges(), exact),
		Columns: []string{"partitioner", "regions", "effective", "max |V|", "estimate", "rel err", "iterations", "converged"},
	}
	for _, pt := range []decompose.Partitioner{decompose.BFSPartitioner{}, decompose.ClusterPartitioner{}} {
		for _, regions := range []int{2, 4, 8} {
			part, err := pt.Partition(g, regions)
			if err != nil {
				return nil, err
			}
			opts := decompose.DefaultOptions()
			opts.MaxIterations = 100
			res, err := decompose.Solve(g, part, opts)
			if err != nil {
				return nil, err
			}
			maxSub := 0
			for _, s := range res.SubproblemSizes {
				if s > maxSub {
					maxSub = s
				}
			}
			t.Rows = append(t.Rows, []string{
				pt.Name(),
				fmt.Sprintf("%d", regions),
				fmt.Sprintf("%d", res.Regions),
				fmt.Sprintf("%d", maxSub),
				fmt.Sprintf("%.1f", res.FlowValue),
				fmt.Sprintf("%.1f%%", 100*absRel(res.FlowValue, exact)),
				fmt.Sprintf("%d", res.Iterations),
				fmt.Sprintf("%v", res.Converged),
			})
		}
	}
	return t, nil
}

func absRel(got, want float64) float64 {
	if want == 0 {
		if got == 0 {
			return 0
		}
		return 1
	}
	d := (got - want) / want
	if d < 0 {
		return -d
	}
	return d
}

// --- dynamic-graph incremental re-solve -------------------------------------

// DynamicUpdates measures the incremental re-solve pipeline on a dynamic
// max-flow workload: one R-MAT instance of the Figure 10 dense family whose
// capacities drift over a chain of updates, re-solved warm through
// solve.Service.Update (re-stamped circuits / drained residual networks)
// against a cold from-scratch solve of every mutated problem.  Warm and cold
// must agree on the flow value exactly (both are exact on the CPU backends
// and bit-deterministic on the behavioral model); the speedup column is the
// point of the table.
func DynamicUpdates(size, steps int, seed int64) (*Table, error) {
	if size < 4 || steps < 1 {
		return nil, fmt.Errorf("experiments: dynamic updates need size >= 4 and steps >= 1")
	}
	base := rmat.MustGenerate(rmat.DenseParams(size, seed))
	t := &Table{
		Title:   fmt.Sprintf("Dynamic updates — warm incremental re-solve vs cold, dense R-MAT |V|=%d, %d capacity-update steps", size, steps),
		Columns: []string{"backend", "mode", "warm median", "cold median", "speedup", "outer iters/step", "warm==cold value"},
		Notes: []string{
			"warm: solve.Service.Update chains (residual drain/re-augment, pattern-frozen re-stamp)",
			"cold: fresh problem + registry solve of every mutated instance",
			"sharded: instance above Budget.MaxVertices, chain rides the cached region oracle;",
			"  exact warm/cold sharded values agree to the consensus tolerance, not bit-for-bit",
			"outer iters/step (sharded only): consensus outer iterations per step, warm chain vs",
			"  cold re-solve — the work the carried consensus state and region skipping save",
		},
	}
	for _, backend := range []string{"dinic", "push-relabel", "behavioral"} {
		svc := solve.NewService(solve.Config{Workers: 1})
		params := core.DefaultParams()
		prob, err := solve.NewProblem(base, solve.WithParams(params))
		if err != nil {
			return nil, err
		}
		if _, err := svc.Solve(context.Background(), solve.Request{Solver: backend, Problem: prob, Updatable: true}); err != nil {
			return nil, err
		}
		reg := solve.DefaultRegistry()
		var warmTimes, coldTimes []time.Duration
		agree := true
		for k := 0; k < steps; k++ {
			upd := DynamicUpdateStep(prob.Graph(), k)
			start := time.Now()
			res, err := svc.Update(context.Background(), solve.UpdateRequest{Solver: backend, Problem: prob, Update: upd})
			if err != nil {
				return nil, fmt.Errorf("%s warm step %d: %w", backend, k, err)
			}
			warmTimes = append(warmTimes, time.Since(start))
			prob = res.Problem

			coldProb, err := solve.NewProblem(prob.Graph().Clone(), solve.WithParams(params))
			if err != nil {
				return nil, err
			}
			start = time.Now()
			cold, err := reg.Solve(context.Background(), backend, coldProb)
			if err != nil {
				return nil, fmt.Errorf("%s cold step %d: %w", backend, k, err)
			}
			coldTimes = append(coldTimes, time.Since(start))
			if res.Report.FlowValue != cold.FlowValue {
				agree = false
			}
		}
		warm, cold := medianDuration(warmTimes), medianDuration(coldTimes)
		speedup := float64(cold) / float64(warm)
		t.Rows = append(t.Rows, []string{
			backend,
			"flat",
			warm.String(),
			cold.String(),
			fmt.Sprintf("%.1fx", speedup),
			"-",
			fmt.Sprintf("%v", agree),
		})
		if !agree {
			return t, fmt.Errorf("experiments: %s warm and cold flow values diverged", backend)
		}
	}
	if row, err := dynamicShardedRow(base, steps); err != nil {
		return t, err
	} else {
		t.Rows = append(t.Rows, row)
	}
	if row, err := dynamicShedRow(base, steps); err != nil {
		return t, err
	} else {
		t.Rows = append(t.Rows, row)
		t.Notes = append(t.Notes,
			"shed: single oversubscribed worker + microsecond deadlines; the admission queue",
			"  rejects deadline-unmeetable requests (ErrOverloaded, HTTP 429) without ever",
			"  holding a worker slot — the dynamic workload's overload degradation mode")
	}
	return t, nil
}

// dynamicShedRow demonstrates the service's overload degradation on the same
// dynamic instance: one worker, saturated by a background solve loop, faced
// with a burst of microsecond-deadline requests.  With the backend's latency
// EMA primed by the warm-up solve, the admission queue knows the deadlines
// are unmeetable while the slot is taken and sheds those requests up front —
// they never hold a worker slot — while a follow-up request without a
// deadline is served normally.
func dynamicShedRow(base *graph.Graph, steps int) ([]string, error) {
	const backend = "dinic"
	svc := solve.NewService(solve.Config{Workers: 1, MaxQueue: 1})
	params := core.DefaultParams()
	prob, err := solve.NewProblem(base, solve.WithParams(params))
	if err != nil {
		return nil, err
	}
	// Warm-up solve primes the admission queue's per-backend latency EMA.
	if _, err := svc.Solve(context.Background(), solve.Request{Solver: backend, Problem: prob}); err != nil {
		return nil, err
	}

	// Saturate the single worker with a background chain of cold solves.
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			g := rmat.MustGenerate(rmat.DenseParams(base.NumVertices(), int64(1000+i)))
			p, err := solve.NewProblem(g, solve.WithParams(params))
			if err != nil {
				return
			}
			if _, err := svc.Solve(context.Background(), solve.Request{Solver: backend, Problem: p}); err != nil {
				return
			}
		}
	}()
	for start := time.Now(); svc.Stats().InFlight == 0; {
		if time.Since(start) > 10*time.Second {
			close(stop)
			<-done
			return nil, fmt.Errorf("experiments: background load never occupied the worker")
		}
		time.Sleep(100 * time.Microsecond)
	}

	var shed, admitted int
	for k := 0; k < steps; k++ {
		_, err := svc.Solve(context.Background(), solve.Request{
			Solver:   backend,
			Problem:  prob,
			Deadline: time.Now().Add(time.Microsecond),
		})
		switch {
		case err == nil:
			admitted++ // the slot happened to be free: admitted and solved in time
		case errors.Is(err, solve.ErrOverloaded):
			shed++
		case errors.Is(err, context.DeadlineExceeded):
			admitted++ // admitted to a free slot, then overran the deadline
		default:
			close(stop)
			<-done
			return nil, fmt.Errorf("shed burst request %d: %w", k, err)
		}
	}
	close(stop)
	<-done
	if shed == 0 {
		return nil, fmt.Errorf("experiments: no request of the burst was shed; the admission queue never engaged")
	}
	if got := svc.Stats().ShedRequests; got != int64(shed) {
		return nil, fmt.Errorf("experiments: shed_requests counter %d, but %d callers saw ErrOverloaded", got, shed)
	}
	// Degradation, not denial: with the deadline dropped, the same request
	// queues and completes once the worker frees up.
	start := time.Now()
	if _, err := svc.Solve(context.Background(), solve.Request{Solver: backend, Problem: prob}); err != nil {
		return nil, fmt.Errorf("post-burst no-deadline solve: %w", err)
	}
	recovery := time.Since(start)
	return []string{
		backend,
		"shed (1 worker, 1µs deadline)",
		"-",
		recovery.Round(time.Microsecond).String(),
		"-",
		"-",
		fmt.Sprintf("%d/%d shed", shed, steps),
	}, nil
}

// dynamicShardedRow runs the dynamic-update chain in the sharded regime: a
// substrate budget of half the instance forces the partition planner to split
// every step into regions, and the warm chain rides the service's region
// oracle cache while the cold side re-solves each mutated problem through a
// fresh planner pass.  The exact backend's warm and cold values agree to the
// decomposition tolerance (a warm residual can recover a different optimal
// per-region flow, steering the consensus differently); the row reports the
// worst per-step gap.
func dynamicShardedRow(base *graph.Graph, steps int) ([]string, error) {
	const backend = "dinic"
	budget := solve.Budget{MaxVertices: base.NumVertices() / 2}
	params := core.DefaultParams()
	svc := solve.NewService(solve.Config{Workers: 1, Budget: budget})
	coldSvc := solve.NewService(solve.Config{Workers: 1, Budget: budget})
	prob, err := solve.NewProblem(base, solve.WithParams(params))
	if err != nil {
		return nil, err
	}
	rep, err := svc.Solve(context.Background(), solve.Request{Solver: backend, Problem: prob})
	if err != nil {
		return nil, err
	}
	if rep.Plan == nil || !rep.Plan.Sharded {
		return nil, fmt.Errorf("experiments: instance not sharded under budget %+v (plan %+v)", budget, rep.Plan)
	}
	regions := rep.Plan.Regions
	var warmTimes, coldTimes []time.Duration
	var maxGap float64
	var warmIters, coldIters int
	for k := 0; k < steps; k++ {
		upd := DynamicUpdateStep(prob.Graph(), k)
		start := time.Now()
		res, err := svc.Update(context.Background(), solve.UpdateRequest{Solver: backend, Problem: prob, Update: upd})
		if err != nil {
			return nil, fmt.Errorf("sharded warm step %d: %w", k, err)
		}
		warmTimes = append(warmTimes, time.Since(start))
		if !res.Warm {
			return nil, fmt.Errorf("experiments: sharded step %d ran cold; the region-oracle cache was not reused", k)
		}
		if res.Report.Plan != nil {
			warmIters += res.Report.Plan.OuterIterations
		}
		prob = res.Problem

		coldProb, err := solve.NewProblem(prob.Graph().Clone(), solve.WithParams(params))
		if err != nil {
			return nil, err
		}
		start = time.Now()
		cold, err := coldSvc.Solve(context.Background(), solve.Request{Solver: backend, Problem: coldProb})
		if err != nil {
			return nil, fmt.Errorf("sharded cold step %d: %w", k, err)
		}
		coldTimes = append(coldTimes, time.Since(start))
		if cold.Plan != nil {
			coldIters += cold.Plan.OuterIterations
		}
		gap := absRel(res.Report.FlowValue, cold.FlowValue)
		if gap > maxGap {
			maxGap = gap
		}
	}
	if maxGap > 0.25 {
		return nil, fmt.Errorf("experiments: sharded warm and cold values diverged by %.0f%%, beyond the consensus band", 100*maxGap)
	}
	warm, cold := medianDuration(warmTimes), medianDuration(coldTimes)
	return []string{
		backend,
		fmt.Sprintf("sharded n=%d", regions),
		warm.String(),
		cold.String(),
		fmt.Sprintf("%.1fx", float64(cold)/float64(warm)),
		fmt.Sprintf("%.1f vs %.1f", float64(warmIters)/float64(steps), float64(coldIters)/float64(steps)),
		fmt.Sprintf("%.1f%% gap", 100*maxGap),
	}, nil
}

// SlotStableParkTarget returns the first edge whose park leaves the s-t-core
// edge map unchanged (no vertex is stranded, so the parked slot stays
// resident in the prune) — the regime where parking is a pure value-level
// structural update — or -1 if the instance has none.
func SlotStableParkTarget(g *graph.Graph) int {
	pr := graph.PruneToSTCore(g)
	for i := 0; i < g.NumEdges(); i++ {
		c := g.Clone()
		if _, err := c.ApplyStructuralUpdate(graph.StructuralUpdate{RemoveEdges: []int{i}}); err != nil {
			continue
		}
		if graph.SamePruneEdges(pr, graph.PruneToSTCore(c)) {
			return i
		}
	}
	return -1
}

// StructuralDynamics measures the structural-dynamics pipeline on the dynamic
// workload: the same dense R-MAT family, churned by a chain that parks an
// edge, reclaims the slot, and retargets capacities in rotation, re-solved
// warm through solve.Service.Update against a cold from-scratch solve of
// every mutated problem.  Parks drive the clamp level to zero with the slot
// kept resident and reclaims re-arm it, so every step of the rotation must
// stay warm and agree with the cold value exactly.
func StructuralDynamics(size, steps int, seed int64) (*Table, error) {
	if size < 4 || steps < 1 {
		return nil, fmt.Errorf("experiments: structural dynamics need size >= 4 and steps >= 1")
	}
	base := rmat.MustGenerate(rmat.DenseParams(size, seed))
	target := SlotStableParkTarget(base)
	if target < 0 {
		return nil, fmt.Errorf("experiments: no slot-stable park target on the instance")
	}
	reAdd := base.Edge(target)
	t := &Table{
		Title:   fmt.Sprintf("Structural dynamics — warm park/reclaim/capacity churn vs cold, dense R-MAT |V|=%d, %d steps", size, steps),
		Columns: []string{"backend", "warm steps", "warm median", "cold median", "speedup", "structural steps", "warm==cold value"},
		Notes: []string{
			"chain rotation: park the slot-stable edge, reclaim the slot, retarget capacities",
			"warm: solve.Service.Update structural path (parked clamp / slack stamp, no cold rebuild)",
			"cold: fresh problem + registry solve of every mutated instance",
		},
	}
	for _, backend := range []string{"dinic", "push-relabel", "behavioral"} {
		svc := solve.NewService(solve.Config{Workers: 1})
		params := core.DefaultParams()
		prob, err := solve.NewProblem(base, solve.WithParams(params))
		if err != nil {
			return nil, err
		}
		if _, err := svc.Solve(context.Background(), solve.Request{Solver: backend, Problem: prob, Updatable: true}); err != nil {
			return nil, err
		}
		reg := solve.DefaultRegistry()
		var warmTimes, coldTimes []time.Duration
		agree := true
		warmSteps := 0
		for k := 0; k < steps; k++ {
			req := solve.UpdateRequest{Solver: backend, Problem: prob}
			switch k % 3 {
			case 0: // park the target edge
				req.Structural = &graph.StructuralUpdate{RemoveEdges: []int{target}}
			case 1: // reclaim the slot
				req.Structural = &graph.StructuralUpdate{AddEdges: []graph.Edge{{From: reAdd.From, To: reAdd.To, Capacity: reAdd.Capacity}}}
			default: // capacity retarget
				req.Update = DynamicUpdateStep(prob.Graph(), k)
			}
			start := time.Now()
			res, err := svc.Update(context.Background(), req)
			if err != nil {
				return nil, fmt.Errorf("%s structural warm step %d: %w", backend, k, err)
			}
			warmTimes = append(warmTimes, time.Since(start))
			if res.Warm {
				warmSteps++
			}
			prob = res.Problem

			coldProb, err := solve.NewProblem(prob.Graph().Clone(), solve.WithParams(params))
			if err != nil {
				return nil, err
			}
			start = time.Now()
			cold, err := reg.Solve(context.Background(), backend, coldProb)
			if err != nil {
				return nil, fmt.Errorf("%s structural cold step %d: %w", backend, k, err)
			}
			coldTimes = append(coldTimes, time.Since(start))
			if res.Report.FlowValue != cold.FlowValue {
				agree = false
			}
		}
		warm, cold := medianDuration(warmTimes), medianDuration(coldTimes)
		t.Rows = append(t.Rows, []string{
			backend,
			fmt.Sprintf("%d/%d", warmSteps, steps),
			warm.String(),
			cold.String(),
			fmt.Sprintf("%.1fx", float64(cold)/float64(warm)),
			fmt.Sprintf("%d", svc.Stats().StructuralUpdates),
			fmt.Sprintf("%v", agree),
		})
		if !agree {
			return t, fmt.Errorf("experiments: %s warm and cold flow values diverged under structural churn", backend)
		}
		if warmSteps != steps {
			return t, fmt.Errorf("experiments: %s ran %d/%d structural steps warm; the chain must never rebuild cold", backend, warmSteps, steps)
		}
	}
	return t, nil
}

// --- image segmentation (grid workload) -------------------------------------

// ImageSegmentation sweeps the large-instance grid workload — the
// computer-vision motivation the paper cites — across grid sides, CPU
// backends and flat vs budget-sharded routing.  Every instance is a seeded
// graph.SegmentationGrid (bright disc on a dark background); each backend
// solves it flat through the registry, then the service re-solves it under a
// two-region vertex budget with the same backend as the region oracle.  The
// table reports |V|, |E|, the flow value, the relative error against the
// exact optimum and the host wall time per row, so kernel and decomposition
// regressions on grid topologies show up side by side.
//
// Flat exact backends must sit at zero error; the sharded rows must stay
// within the consensus band (two regions converge on grid topologies — see
// docs/solver.md, "Large instances").
func ImageSegmentation(sides []int, seed int64) (*Table, error) {
	if len(sides) == 0 {
		return nil, errors.New("experiments: image segmentation needs at least one grid side")
	}
	t := &Table{
		Title:   "Image segmentation grids (flat kernels vs budget-sharded service)",
		Columns: []string{"grid", "|V|", "|E|", "backend", "mode", "flow", "rel err", "wall time"},
		Notes: []string{
			"rel err is against the exact optimum; flat exact backends must sit at 0",
			"sharded rows run the service under a two-region vertex budget",
		},
	}
	backends := []string{"push-relabel", "dinic"}
	reg := solve.DefaultRegistry()
	for _, side := range sides {
		g, err := graph.SegmentationGrid(side, side, false, seed)
		if err != nil {
			return nil, err
		}
		exact, err := maxflow.OptimalValue(g)
		if err != nil {
			return nil, err
		}
		// Two-thirds of the instance: small enough to force a split on every
		// side in the sweep, large enough that a two-region partition plus
		// its frontier halo fits the budget.
		budget := solve.Budget{MaxVertices: g.NumVertices() * 2 / 3, MaxRegions: 2}
		for _, backend := range backends {
			prob, err := solve.NewProblem(g)
			if err != nil {
				return nil, err
			}
			start := time.Now()
			rep, err := reg.Solve(context.Background(), backend, prob)
			if err != nil {
				return nil, err
			}
			wall := time.Since(start)
			relErr := absRel(rep.FlowValue, exact)
			if relErr > 1e-9 {
				return t, fmt.Errorf("experiments: flat %s flow %g deviates from exact %g on %dx%d",
					backend, rep.FlowValue, exact, side, side)
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%dx%d", side, side),
				fmt.Sprintf("%d", g.NumVertices()),
				fmt.Sprintf("%d", g.NumEdges()),
				backend, "flat",
				fmt.Sprintf("%.2f", rep.FlowValue),
				fmt.Sprintf("%.2f%%", 100*relErr),
				wall.Round(10 * time.Microsecond).String(),
			})
		}
		for _, backend := range backends {
			svc := solve.NewService(solve.Config{Budget: budget})
			prob, err := solve.NewProblem(g)
			if err != nil {
				return nil, err
			}
			start := time.Now()
			rep, err := svc.Solve(context.Background(), solve.Request{Solver: backend, Problem: prob})
			if err != nil {
				return nil, err
			}
			wall := time.Since(start)
			if rep.Plan == nil || !rep.Plan.Sharded {
				return t, fmt.Errorf("experiments: %dx%d grid not sharded under budget %+v", side, side, budget)
			}
			relErr := absRel(rep.FlowValue, exact)
			if relErr > 0.25 {
				return t, fmt.Errorf("experiments: sharded %s flow %g vs exact %g on %dx%d: outside the consensus band",
					backend, rep.FlowValue, exact, side, side)
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%dx%d", side, side),
				fmt.Sprintf("%d", g.NumVertices()),
				fmt.Sprintf("%d", g.NumEdges()),
				backend, fmt.Sprintf("sharded x%d", rep.Plan.Regions),
				fmt.Sprintf("%.2f", rep.FlowValue),
				fmt.Sprintf("%.2f%%", 100*relErr),
				wall.Round(10 * time.Microsecond).String(),
			})
		}
	}
	return t, nil
}

// DynamicUpdateStep generates step k of the deterministic capacity-update
// chain the dynamic-workload measurements share (DynamicUpdates here and
// BenchmarkUpdateResolve in the repository root): up to eight pseudo-randomly
// selected edges, alternating between a capacity increase and an integer
// halving so the residual drain path is exercised without ever zeroing an
// edge (the chain stays structurally warm-compatible).
func DynamicUpdateStep(g *graph.Graph, k int) graph.CapacityUpdate {
	ne := g.NumEdges()
	upd := graph.CapacityUpdate{}
	for j := 0; j < 8; j++ {
		e := (k*131 + j*17) % ne
		dup := false
		for _, s := range upd.Edges {
			if s == e {
				dup = true
			}
		}
		if dup {
			continue
		}
		c := g.Edge(e).Capacity
		if (k+j)%2 == 0 {
			c += 25
		} else if c >= 2 {
			c = float64(int(c) / 2)
		}
		upd.Edges = append(upd.Edges, e)
		upd.Capacities = append(upd.Capacities, c)
	}
	return upd
}

// medianDuration returns the median of a non-empty duration slice.
func medianDuration(ds []time.Duration) time.Duration {
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
	return sorted[len(sorted)/2]
}
