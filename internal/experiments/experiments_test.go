package experiments

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tab := &Table{
		Title:   "demo",
		Columns: []string{"a", "long column"},
		Rows:    [][]string{{"1", "2"}, {"333", "4"}},
		Notes:   []string{"a note"},
	}
	out := tab.Render()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "long column") || !strings.Contains(out, "note: a note") {
		t.Errorf("render missing pieces:\n%s", out)
	}
	if len(strings.Split(strings.TrimSpace(out), "\n")) < 5 {
		t.Errorf("render too short:\n%s", out)
	}
}

func TestFigure8Quantization(t *testing.T) {
	tab, err := Figure8Quantization()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("expected 5 edge rows, got %d", len(tab.Rows))
	}
	// x1 (capacity 3 = C) quantizes to 1.00 V.
	if tab.Rows[0][3] != "1.00" {
		t.Errorf("x1 voltage %q, want 1.00", tab.Rows[0][3])
	}
	if tab.Render() == "" {
		t.Errorf("empty rendering")
	}
}

func TestTable1Parameters(t *testing.T) {
	tab := Table1Parameters()
	if len(tab.Rows) < 8 {
		t.Fatalf("Table 1 should list at least 8 parameters, got %d", len(tab.Rows))
	}
	out := tab.Render()
	for _, want := range []string{"Memristor LRS", "voltage levels", "crossbar"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 missing %q", want)
		}
	}
}

func TestOpAmpPrecisionSweep(t *testing.T) {
	tab := OpAmpPrecisionSweep()
	if len(tab.Rows) < 5 {
		t.Fatalf("too few gain points")
	}
	// The gain-1000 row meets the 0.1% target; the gain-100 row does not.
	foundLow, foundHigh := false, false
	for _, row := range tab.Rows {
		if row[0] == "100" && row[2] == "false" {
			foundLow = true
		}
		if row[0] == "10000" && row[2] == "true" {
			foundHigh = true
		}
	}
	if !foundLow || !foundHigh {
		t.Errorf("precision threshold rows wrong: %+v", tab.Rows)
	}
}

func TestFigure10SweepSmall(t *testing.T) {
	res, err := Figure10Sweep("sparse", []int{64, 96}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("expected 2 rows, got %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Circuit10GHz <= 0 || row.Circuit50GHz <= 0 || row.PushRelabelTime <= 0 {
			t.Errorf("non-positive timing in row %+v", row)
		}
		// 50 GHz must be faster than 10 GHz.
		if row.Circuit50GHz >= row.Circuit10GHz {
			t.Errorf("GBW=50G not faster than 10G: %+v", row)
		}
		if row.RelativeError > 0.25 {
			t.Errorf("relative error %.2f suspiciously high", row.RelativeError)
		}
	}
	if res.MeanRelativeError() < 0 {
		t.Errorf("mean relative error negative")
	}
	if res.Table().Render() == "" {
		t.Errorf("empty rendering")
	}
	if _, err := Figure10Sweep("nonsense", []int{16}, 1); err == nil {
		t.Errorf("unknown family accepted")
	}
}

func TestClusteredUtilization(t *testing.T) {
	tab, err := ClusteredUtilization(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("expected 4 island sizes, got %d", len(tab.Rows))
	}
}

func TestVariationSweepSmall(t *testing.T) {
	tab, err := VariationSweep(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 18 {
		t.Fatalf("expected 18 configuration rows, got %d", len(tab.Rows))
	}
}

func TestDualDecompositionExperiment(t *testing.T) {
	tab, err := DualDecomposition(11)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) < 6 {
		t.Fatalf("too few rows: %d", len(tab.Rows))
	}
}

func TestFigure15TrajectoryExperiment(t *testing.T) {
	tab, traj, err := Figure15Trajectory()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 30 {
		t.Fatalf("expected 30 trajectory rows, got %d", len(tab.Rows))
	}
	if traj.FinalFlowValue < 3 || traj.FinalFlowValue > 5 {
		t.Errorf("final flow %.2f outside the expected range around 4", traj.FinalFlowValue)
	}
}

func TestFigure5WaveformExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("waveform simulation skipped in -short mode")
	}
	tab, wf, err := Figure5Waveform()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) < 10 {
		t.Fatalf("too few waveform rows")
	}
	if wf.FinalFlowValue < 1.0 || wf.FinalFlowValue > 2.5 {
		t.Errorf("final flow %.2f outside expected range", wf.FinalFlowValue)
	}
}

func TestPowerAnalysis(t *testing.T) {
	tab, err := PowerAnalysis()
	if err != nil {
		t.Fatal(err)
	}
	out := tab.Render()
	if !strings.Contains(out, "10000") || !strings.Contains(out, "300000") {
		t.Errorf("power table missing the paper's 1e4 / 3e5 edge counts:\n%s", out)
	}
}

func TestDynamicUpdatesSmall(t *testing.T) {
	tab, err := DynamicUpdates(64, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("want 3 flat backend rows + 1 sharded row + 1 shed row, got %d", len(tab.Rows))
	}
	for _, row := range tab.Rows[:3] {
		if row[1] != "flat" || row[len(row)-1] != "true" {
			t.Errorf("backend %s: mode %q, warm==cold %q — want flat/true", row[0], row[1], row[len(row)-1])
		}
	}
	sharded := tab.Rows[3]
	if !strings.HasPrefix(sharded[1], "sharded n=") {
		t.Errorf("row 3 mode %q, want a sharded row", sharded[1])
	}
	if !strings.Contains(sharded[len(sharded)-1], "gap") {
		t.Errorf("sharded row reports %q, want the warm-vs-cold gap", sharded[len(sharded)-1])
	}
	if !strings.Contains(sharded[len(sharded)-2], " vs ") {
		t.Errorf("sharded row outer-iters cell %q, want warm vs cold iterations per step", sharded[len(sharded)-2])
	}
	shed := tab.Rows[4]
	if !strings.HasPrefix(shed[1], "shed") {
		t.Errorf("last row mode %q, want the overload shed row", shed[1])
	}
	if !strings.Contains(shed[len(shed)-1], "shed") || strings.HasPrefix(shed[len(shed)-1], "0/") {
		t.Errorf("shed row reports %q, want a non-zero shed count", shed[len(shed)-1])
	}
	if _, err := DynamicUpdates(2, 1, 1); err == nil {
		t.Error("degenerate size accepted")
	}
}

func TestStructuralDynamicsSmall(t *testing.T) {
	// Four steps covers one full park/reclaim/capacity rotation plus the
	// second park, so both structural directions run twice-adjacent to a
	// capacity retarget.
	tab, err := StructuralDynamics(64, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("want 3 backend rows, got %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if row[1] != "4/4" {
			t.Errorf("backend %s: warm steps %q, want 4/4", row[0], row[1])
		}
		if row[5] != "3" {
			t.Errorf("backend %s: structural steps %q, want 3 (park, reclaim, park)", row[0], row[5])
		}
		if row[len(row)-1] != "true" {
			t.Errorf("backend %s: warm==cold %q, want true", row[0], row[len(row)-1])
		}
	}
	if _, err := StructuralDynamics(2, 1, 1); err == nil {
		t.Error("degenerate size accepted")
	}
}

func TestImageSegmentationSmall(t *testing.T) {
	tab, err := ImageSegmentation([]int{8, 12}, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Per side: two flat backend rows then two sharded rows.
	if len(tab.Rows) != 8 {
		t.Fatalf("want 2 sides x (2 flat + 2 sharded) = 8 rows, got %d", len(tab.Rows))
	}
	for i, row := range tab.Rows {
		switch i % 4 {
		case 0, 1:
			if row[4] != "flat" {
				t.Errorf("row %d mode %q, want flat", i, row[4])
			}
			if row[6] != "0.00%" {
				t.Errorf("row %d: flat backend rel err %q, want 0.00%%", i, row[6])
			}
		default:
			if !strings.HasPrefix(row[4], "sharded x") {
				t.Errorf("row %d mode %q, want sharded", i, row[4])
			}
		}
	}
	// The two flat backends must print the identical (exact) flow value.
	if tab.Rows[0][5] != tab.Rows[1][5] {
		t.Errorf("flat backends disagree: %s vs %s", tab.Rows[0][5], tab.Rows[1][5])
	}
	if _, err := ImageSegmentation(nil, 1); err == nil {
		t.Error("empty side list accepted")
	}
}
