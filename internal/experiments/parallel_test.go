package experiments

import (
	"reflect"
	"testing"

	"analogflow/internal/parallel"
)

// TestFigure10SweepParallelMatchesSerial pins the determinism contract of the
// parallel sweep: with a fixed seed, every worker count produces the same
// rows.  The wall-clock CPU-baseline fields (PushRelabelTime and the speedup
// derived from it) are measured times and inherently vary between runs, so
// the comparison covers every deterministic field.
func TestFigure10SweepParallelMatchesSerial(t *testing.T) {
	sizes := []int{48, 64, 96}
	const seed = 7

	restore := parallel.SetLimit(1)
	serial, err := Figure10Sweep("sparse", sizes, seed)
	parallel.SetLimit(restore)
	if err != nil {
		t.Fatal(err)
	}

	restore = parallel.SetLimit(4)
	par, err := Figure10Sweep("sparse", sizes, seed)
	parallel.SetLimit(restore)
	if err != nil {
		t.Fatal(err)
	}

	if len(serial.Rows) != len(par.Rows) {
		t.Fatalf("row counts differ: %d vs %d", len(serial.Rows), len(par.Rows))
	}
	for i := range serial.Rows {
		s, p := serial.Rows[i], par.Rows[i]
		s.PushRelabelTime, p.PushRelabelTime = 0, 0
		s.Speedup10GHz, p.Speedup10GHz = 0, 0
		if s != p {
			t.Errorf("row %d differs between serial and parallel runs:\n  serial:   %+v\n  parallel: %+v",
				i, serial.Rows[i], par.Rows[i])
		}
	}
}

// TestVariationSweepParallelMatchesSerial does the same for the mismatch
// sweep, whose rows are fully deterministic (no wall-clock fields).
func TestVariationSweepParallelMatchesSerial(t *testing.T) {
	const seed = 5

	restore := parallel.SetLimit(1)
	serial, err := VariationSweep(seed)
	parallel.SetLimit(restore)
	if err != nil {
		t.Fatal(err)
	}

	restore = parallel.SetLimit(4)
	par, err := VariationSweep(seed)
	parallel.SetLimit(restore)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(serial.Rows, par.Rows) {
		t.Errorf("variation sweep rows differ between serial and parallel runs:\n%v\nvs\n%v",
			serial.Rows, par.Rows)
	}
}
