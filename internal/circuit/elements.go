package circuit

import (
	"fmt"
	"math"

	"analogflow/internal/device"
)

// Resistor is a linear two-terminal resistor.
type Resistor struct {
	Label      string
	A, B       NodeID
	Resistance float64
}

// NewResistor creates a resistor; the resistance must be nonzero (negative
// values are allowed and represent an ideal negative resistor — see
// NegativeResistor for the explicit type the builder uses).
func NewResistor(label string, a, b NodeID, r float64) *Resistor {
	if r == 0 {
		panic(fmt.Sprintf("circuit: resistor %q with zero resistance", label))
	}
	return &Resistor{Label: label, A: a, B: b, Resistance: r}
}

func (r *Resistor) Name() string     { return r.Label }
func (r *Resistor) TypeName() string { return "resistor" }
func (r *Resistor) Nodes() []NodeID  { return []NodeID{r.A, r.B} }
func (r *Resistor) NumBranches() int { return 0 }
func (r *Resistor) Linear() bool     { return true }

// Stamp implements Element.
func (r *Resistor) Stamp(ctx *StampContext) {
	ctx.StampConductance(r.A, r.B, 1/r.Resistance)
}

// NegativeResistor is a behavioural negative resistance of value -Magnitude
// (Magnitude > 0), modelling the op-amp negative-impedance converter of the
// paper's Figure 9a at the terminal level.  Two non-idealities of the real
// realisation are included because both are essential to the behaviour of the
// substrate:
//
//   - GainError degrades the realised magnitude to -(1+GainError)*Magnitude,
//     the finite-open-loop-gain effect of Section 4.2.
//   - Saturation bounds the current the converter can source: the op-amp
//     output saturates at its supply, so beyond |v| = Saturation the element
//     stops behaving as a negative resistance.  Without this bound,
//     graph cycles can create unbounded ideal-circuit modes that no physical
//     substrate exhibits.
//
// The builder uses this element in "ideal" mode; in "op-amp" mode it expands
// negative resistors into the full Figure 9a sub-circuit instead.
type NegativeResistor struct {
	Label     string
	A, B      NodeID
	Magnitude float64
	// GainError degrades the realised magnitude (see above).
	GainError float64
	// Saturation is the voltage beyond which the converter saturates.  Zero
	// disables saturation (a strictly ideal negative conductance).
	Saturation float64
}

// NewNegativeResistor creates a negative resistor of value -magnitude.
func NewNegativeResistor(label string, a, b NodeID, magnitude float64) *NegativeResistor {
	if magnitude <= 0 {
		panic(fmt.Sprintf("circuit: negative resistor %q needs positive magnitude, got %g", label, magnitude))
	}
	return &NegativeResistor{Label: label, A: a, B: b, Magnitude: magnitude}
}

func (r *NegativeResistor) Name() string     { return r.Label }
func (r *NegativeResistor) TypeName() string { return "negative-resistor" }
func (r *NegativeResistor) Nodes() []NodeID  { return []NodeID{r.A, r.B} }
func (r *NegativeResistor) NumBranches() int { return 0 }
func (r *NegativeResistor) Linear() bool     { return r.Saturation <= 0 }

// EffectiveResistance returns the realised (negative) small-signal resistance.
func (r *NegativeResistor) EffectiveResistance() float64 {
	return -(1 + r.GainError) * r.Magnitude
}

// saturatedIV returns the current flowing from A to B through the element and
// its derivative with respect to the applied voltage v = V(A) - V(B):
//
//	i(v) = G * clip(v),  clip(v) = smooth saturation of v at +/-Saturation,
//
// where G = 1/EffectiveResistance() (negative).  Inside the linear window the
// element is the ideal negative conductance; beyond it the current stays at
// its saturated value, so the element can no longer pump energy into runaway
// modes.
func (r *NegativeResistor) saturatedIV(v float64) (i, di float64) {
	g := 1 / r.EffectiveResistance()
	vsat := r.Saturation
	w := vsat / 20
	softplus := func(x float64) float64 {
		switch {
		case x > 40:
			return x
		case x < -40:
			return 0
		default:
			return math.Log1p(math.Exp(x))
		}
	}
	sigmoid := func(x float64) float64 {
		switch {
		case x > 40:
			return 1
		case x < -40:
			return 0
		default:
			return 1 / (1 + math.Exp(-x))
		}
	}
	clip := -vsat + w*softplus((v+vsat)/w) - w*softplus((v-vsat)/w)
	dclip := sigmoid((v+vsat)/w) - sigmoid((v-vsat)/w)
	return g * clip, g * dclip
}

// Stamp implements Element.
func (r *NegativeResistor) Stamp(ctx *StampContext) {
	if r.Saturation <= 0 {
		ctx.StampConductance(r.A, r.B, 1/r.EffectiveResistance())
		return
	}
	v := ctx.V(r.A) - ctx.V(r.B)
	i, di := r.saturatedIV(v)
	ieq := i - di*v
	ctx.StampConductance(r.A, r.B, di)
	ctx.StampCurrentSource(r.A, r.B, ieq)
}

// Capacitor is a linear capacitor; during transient analysis it is replaced
// by its backward-Euler companion model, during DC analysis it is an open
// circuit.
type Capacitor struct {
	Label       string
	A, B        NodeID
	Capacitance float64
}

// NewCapacitor creates a capacitor (C > 0).
func NewCapacitor(label string, a, b NodeID, c float64) *Capacitor {
	if c <= 0 {
		panic(fmt.Sprintf("circuit: capacitor %q needs positive capacitance, got %g", label, c))
	}
	return &Capacitor{Label: label, A: a, B: b, Capacitance: c}
}

func (c *Capacitor) Name() string     { return c.Label }
func (c *Capacitor) TypeName() string { return "capacitor" }
func (c *Capacitor) Nodes() []NodeID  { return []NodeID{c.A, c.B} }
func (c *Capacitor) NumBranches() int { return 0 }
func (c *Capacitor) Linear() bool     { return true }

// Stamp implements Element.
func (c *Capacitor) Stamp(ctx *StampContext) {
	if ctx.Dt <= 0 {
		return // open circuit at DC
	}
	g := c.Capacitance / ctx.Dt
	ctx.StampConductance(c.A, c.B, g)
	vPrev := ctx.VPrev(c.A) - ctx.VPrev(c.B)
	// Companion current source g*vPrev flowing from B to A (it opposes the
	// discharge), i.e. injected into A.
	ctx.StampCurrentSource(c.B, c.A, g*vPrev)
}

// VoltageSource is an independent voltage source with an arbitrary waveform.
// It adds one branch-current unknown.
type VoltageSource struct {
	Label       string
	Plus, Minus NodeID
	Waveform    Waveform
}

// NewVoltageSource creates a voltage source from Plus to Minus.
func NewVoltageSource(label string, plus, minus NodeID, w Waveform) *VoltageSource {
	if w == nil {
		panic(fmt.Sprintf("circuit: voltage source %q with nil waveform", label))
	}
	return &VoltageSource{Label: label, Plus: plus, Minus: minus, Waveform: w}
}

func (v *VoltageSource) Name() string     { return v.Label }
func (v *VoltageSource) TypeName() string { return "vsource" }
func (v *VoltageSource) Nodes() []NodeID  { return []NodeID{v.Plus, v.Minus} }
func (v *VoltageSource) NumBranches() int { return 1 }
func (v *VoltageSource) Linear() bool     { return true }

// Stamp implements Element.
func (v *VoltageSource) Stamp(ctx *StampContext) {
	br := ctx.Branch(0)
	ip, in := index(v.Plus), index(v.Minus)
	ctx.AddA(ip, br, 1)
	ctx.AddA(in, br, -1)
	ctx.AddA(br, ip, 1)
	ctx.AddA(br, in, -1)
	ctx.AddB(br, ctx.Scale()*v.Waveform.At(ctx.Time))
}

// DeliveredCurrent extracts the current the source pushes out of its Plus
// terminal from a solved MNA vector; branchBase must be the branch index the
// MNA engine assigned to this source.  (The raw branch unknown is the current
// flowing into the Plus terminal, hence the sign flip.)
func (v *VoltageSource) DeliveredCurrent(x []float64, branchBase int) float64 {
	return -x[branchBase]
}

// Diode is a two-terminal clamping diode using one of the device.DiodeModel
// variants.  It is the nonlinear element that enforces the paper's edge
// capacity constraints.
type Diode struct {
	Label          string
	Anode, Cathode NodeID
	Model          device.DiodeModel
}

// NewDiode creates a diode with the given model.
func NewDiode(label string, anode, cathode NodeID, model device.DiodeModel) *Diode {
	return &Diode{Label: label, Anode: anode, Cathode: cathode, Model: model}
}

func (d *Diode) Name() string     { return d.Label }
func (d *Diode) TypeName() string { return "diode" }
func (d *Diode) Nodes() []NodeID  { return []NodeID{d.Anode, d.Cathode} }
func (d *Diode) NumBranches() int { return 0 }
func (d *Diode) Linear() bool     { return false }

// Stamp implements Element: the diode is linearised around the current
// iterate with its companion model i = g*v + ieq.
func (d *Diode) Stamp(ctx *StampContext) {
	v := ctx.V(d.Anode) - ctx.V(d.Cathode)
	g, ieq := d.Model.Conductance(v)
	ctx.StampConductance(d.Anode, d.Cathode, g)
	// ieq flows from anode to cathode through the diode.
	ctx.StampCurrentSource(d.Anode, d.Cathode, ieq)
}

// Voltage returns the diode voltage (anode minus cathode) in a solved vector.
func (d *Diode) Voltage(v func(NodeID) float64) float64 {
	return v(d.Anode) - v(d.Cathode)
}

// VCVS is a voltage-controlled voltage source (an ideal "E" element) with an
// optional series output resistance: V(OutP)-V(OutN) = Gain*(V(CtrlP)-V(CtrlN)) - Rout*I.
type VCVS struct {
	Label        string
	OutP, OutN   NodeID
	CtrlP, CtrlN NodeID
	Gain         float64
	Rout         float64
}

func (e *VCVS) Name() string     { return e.Label }
func (e *VCVS) TypeName() string { return "vcvs" }
func (e *VCVS) Nodes() []NodeID  { return []NodeID{e.OutP, e.OutN, e.CtrlP, e.CtrlN} }
func (e *VCVS) NumBranches() int { return 1 }
func (e *VCVS) Linear() bool     { return true }

// Stamp implements Element.
func (e *VCVS) Stamp(ctx *StampContext) {
	br := ctx.Branch(0)
	iop, ion := index(e.OutP), index(e.OutN)
	icp, icn := index(e.CtrlP), index(e.CtrlN)
	ctx.AddA(iop, br, 1)
	ctx.AddA(ion, br, -1)
	ctx.AddA(br, iop, 1)
	ctx.AddA(br, ion, -1)
	ctx.AddA(br, icp, -e.Gain)
	ctx.AddA(br, icn, e.Gain)
	if e.Rout != 0 {
		ctx.AddA(br, br, -e.Rout)
	}
}

// OpAmp is a single-pole op-amp macromodel (see device.OpAmpModel): a
// transconductance input stage into an internal R1||C1 node followed by a
// unity-gain buffer with output resistance.  The internal node is a real
// netlist node allocated at construction time, so the transient engine
// naturally captures the gain-bandwidth-limited settling the paper's
// convergence times depend on.
type OpAmp struct {
	Label      string
	InP, InN   NodeID
	Out        NodeID
	Model      device.OpAmpModel
	internal   NodeID
	gm, r1, c1 float64
}

// NewOpAmp creates an op-amp and allocates its internal pole node on nl.
func NewOpAmp(nl *Netlist, label string, inP, inN, out NodeID, model device.OpAmpModel) *OpAmp {
	gm, r1, c1 := model.MacroParams()
	return &OpAmp{
		Label:    label,
		InP:      inP,
		InN:      inN,
		Out:      out,
		Model:    model,
		internal: nl.AddNode(label + ".pole"),
		gm:       gm,
		r1:       r1,
		c1:       c1,
	}
}

func (o *OpAmp) Name() string     { return o.Label }
func (o *OpAmp) TypeName() string { return "opamp" }
func (o *OpAmp) Nodes() []NodeID  { return []NodeID{o.InP, o.InN, o.Out, o.internal} }
func (o *OpAmp) NumBranches() int { return 1 }
func (o *OpAmp) Linear() bool     { return true }

// InternalNode exposes the pole node (for tests).
func (o *OpAmp) InternalNode() NodeID { return o.internal }

// Stamp implements Element.
func (o *OpAmp) Stamp(ctx *StampContext) {
	// Input transconductance: current gm*(V+ - V-) flows from ground into
	// the internal node.
	ctx.StampVCCS(o.InP, o.InN, Ground, o.internal, o.gm)
	// Pole load R1 || C1 to ground.
	ctx.StampConductance(o.internal, Ground, 1/o.r1)
	if ctx.Dt > 0 {
		g := o.c1 / ctx.Dt
		ctx.StampConductance(o.internal, Ground, g)
		ctx.StampCurrentSource(Ground, o.internal, g*ctx.VPrev(o.internal))
	}
	// Output buffer: unity-gain VCVS from the internal node with Rout.
	br := ctx.Branch(0)
	iout, iint := index(o.Out), index(o.internal)
	ctx.AddA(iout, br, 1)
	ctx.AddA(br, iout, 1)
	ctx.AddA(br, iint, -1)
	if o.Model.Rout != 0 {
		ctx.AddA(br, br, -o.Model.Rout)
	}
}

// MemristorElement wraps a device.Memristor as a circuit element.  During the
// compute phase it behaves as a resistor at its current state resistance;
// during programming transients its state is advanced by PostStep.
type MemristorElement struct {
	Label  string
	A, B   NodeID
	Device *device.Memristor
}

// NewMemristorElement wraps an existing memristor device.
func NewMemristorElement(label string, a, b NodeID, dev *device.Memristor) *MemristorElement {
	if dev == nil {
		panic(fmt.Sprintf("circuit: memristor element %q with nil device", label))
	}
	return &MemristorElement{Label: label, A: a, B: b, Device: dev}
}

func (m *MemristorElement) Name() string     { return m.Label }
func (m *MemristorElement) TypeName() string { return "memristor" }
func (m *MemristorElement) Nodes() []NodeID  { return []NodeID{m.A, m.B} }
func (m *MemristorElement) NumBranches() int { return 0 }
func (m *MemristorElement) Linear() bool     { return true }

// Stamp implements Element.
func (m *MemristorElement) Stamp(ctx *StampContext) {
	ctx.StampConductance(m.A, m.B, m.Device.Conductance())
}

// PostStep implements Stateful: the device integrates the applied voltage to
// decide whether it switches state.
func (m *MemristorElement) PostStep(v func(NodeID) float64, dt float64) {
	m.Device.ApplyStimulus(v(m.A)-v(m.B), dt)
}

// CurrentSource is an independent current source driving Value amperes from
// node A to node B through the source (i.e. injecting current into B).
type CurrentSource struct {
	Label string
	A, B  NodeID
	Value float64
}

func (s *CurrentSource) Name() string     { return s.Label }
func (s *CurrentSource) TypeName() string { return "isource" }
func (s *CurrentSource) Nodes() []NodeID  { return []NodeID{s.A, s.B} }
func (s *CurrentSource) NumBranches() int { return 0 }
func (s *CurrentSource) Linear() bool     { return true }

// Stamp implements Element.
func (s *CurrentSource) Stamp(ctx *StampContext) {
	ctx.StampCurrentSource(s.A, s.B, ctx.Scale()*s.Value)
}
