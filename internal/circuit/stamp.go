package circuit

import (
	"analogflow/internal/numeric"
)

// StampContext carries the linear system being assembled plus the operating
// point information elements need to linearise themselves.  One context is
// created per Newton iteration by the MNA engine and passed to every
// element's Stamp method.
type StampContext struct {
	// NumNodes is the number of non-ground nodes; branch unknowns follow the
	// node unknowns in the vector ordering.
	NumNodes int
	// A is the MNA matrix builder (dimension NumNodes + total branches).
	A *numeric.SparseBuilder
	// B is the right-hand side vector.
	B []float64
	// X is the current Newton iterate (node voltages then branch currents).
	// It may be nil on the very first iteration, in which case V returns 0.
	X []float64
	// XPrev is the solution at the previous accepted time point, used by
	// companion models of reactive elements.  It is nil for DC analyses.
	XPrev []float64
	// Dt is the transient step size; 0 indicates a DC (operating-point)
	// analysis in which capacitors are open circuits.
	Dt float64
	// Time is the simulation time at which sources are evaluated.
	Time float64
	// BranchBase is the index of the first branch unknown belonging to the
	// element currently being stamped; the MNA engine sets it before each
	// element's Stamp call.
	BranchBase int
	// SourceScale scales every independent source value; the MNA engine's
	// homotopy (source-stepping) solver ramps it from a small value to 1 to
	// obtain good Newton starting points for strongly nonlinear circuits.
	// A zero value is treated as 1.
	SourceScale float64
}

// Scale returns the effective independent-source scale factor.
func (c *StampContext) Scale() float64 {
	if c.SourceScale == 0 {
		return 1
	}
	return c.SourceScale
}

// V returns the voltage of node n in the current iterate (0 for ground or
// when no iterate exists yet).
func (c *StampContext) V(n NodeID) float64 {
	if n == Ground || c.X == nil {
		return 0
	}
	return c.X[int(n)]
}

// VPrev returns the voltage of node n at the previous accepted time point.
func (c *StampContext) VPrev(n NodeID) float64 {
	if n == Ground || c.XPrev == nil {
		return 0
	}
	return c.XPrev[int(n)]
}

// Branch returns the global unknown index of the element's k-th branch
// variable.
func (c *StampContext) Branch(k int) int { return c.BranchBase + k }

// BranchValue returns the current iterate value of the element's k-th branch
// variable (0 when no iterate exists yet).
func (c *StampContext) BranchValue(k int) float64 {
	if c.X == nil {
		return 0
	}
	return c.X[c.Branch(k)]
}

// index maps a NodeID to a matrix index, or -1 for ground.
func index(n NodeID) int { return int(n) }

// AddA accumulates v into matrix entry (i, j); negative indices (ground) are
// ignored, implementing the usual MNA convention that the ground row and
// column are dropped.
func (c *StampContext) AddA(i, j int, v float64) {
	if i < 0 || j < 0 {
		return
	}
	c.A.Add(i, j, v)
}

// AddB accumulates v into right-hand-side entry i (ignored for ground).
func (c *StampContext) AddB(i int, v float64) {
	if i < 0 {
		return
	}
	c.B[i] += v
}

// StampConductance adds a two-terminal conductance g between nodes a and b.
func (c *StampContext) StampConductance(a, b NodeID, g float64) {
	ia, ib := index(a), index(b)
	c.AddA(ia, ia, g)
	c.AddA(ib, ib, g)
	c.AddA(ia, ib, -g)
	c.AddA(ib, ia, -g)
}

// StampCurrentSource adds an independent current source driving i amperes
// from node a to node b through the source (the current leaves the circuit at
// a and re-enters at b).
func (c *StampContext) StampCurrentSource(a, b NodeID, i float64) {
	c.AddB(index(a), -i)
	c.AddB(index(b), i)
}

// StampVCCS adds a voltage-controlled current source: a current of
// gm*(V(cp)-V(cn)) flows from node op to node on through the source.
func (c *StampContext) StampVCCS(cp, cn, op, on NodeID, gm float64) {
	icp, icn, iop, ion := index(cp), index(cn), index(op), index(on)
	c.AddA(iop, icp, gm)
	c.AddA(iop, icn, -gm)
	c.AddA(ion, icp, -gm)
	c.AddA(ion, icn, gm)
}
