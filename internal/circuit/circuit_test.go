package circuit

import (
	"math"
	"testing"

	"analogflow/internal/device"
	"analogflow/internal/numeric"
)

func TestNetlistNodes(t *testing.T) {
	nl := NewNetlist()
	a := nl.AddNode("a")
	b := nl.AddNode("b")
	if a != 0 || b != 1 {
		t.Fatalf("node ids %d %d", a, b)
	}
	if nl.NumNodes() != 2 {
		t.Errorf("NumNodes = %d", nl.NumNodes())
	}
	if nl.NodeName(a) != "a" || nl.NodeName(Ground) != "0" {
		t.Errorf("node names wrong")
	}
	if nl.NodeName(NodeID(55)) == "" {
		t.Errorf("out-of-range node name should not be empty")
	}
}

func TestNetlistElementsAndStats(t *testing.T) {
	nl := NewNetlist()
	a := nl.AddNode("a")
	nl.Add(NewResistor("R1", a, Ground, 100))
	nl.Add(NewResistor("R2", a, Ground, 200))
	nl.Add(NewVoltageSource("V1", a, Ground, DC{1}))
	if nl.NumElements() != 3 {
		t.Errorf("NumElements = %d", nl.NumElements())
	}
	if nl.NumBranches() != 1 {
		t.Errorf("NumBranches = %d, want 1", nl.NumBranches())
	}
	if nl.Size() != 2 {
		t.Errorf("Size = %d, want 2", nl.Size())
	}
	stats := nl.Stats()
	if stats["resistor"] != 2 || stats["vsource"] != 1 {
		t.Errorf("stats wrong: %v", stats)
	}
	if err := nl.CheckNodes(); err != nil {
		t.Errorf("CheckNodes: %v", err)
	}
	nl.Add(NewResistor("Rbad", NodeID(42), Ground, 1))
	if err := nl.CheckNodes(); err == nil {
		t.Errorf("CheckNodes accepted dangling node")
	}
}

func TestWaveforms(t *testing.T) {
	if (DC{3}).At(100) != 3 {
		t.Errorf("DC wrong")
	}
	s := Step{Initial: 0, Final: 3, T0: 1, RiseTime: 2}
	if s.At(0.5) != 0 || s.At(10) != 3 {
		t.Errorf("step endpoints wrong")
	}
	if v := s.At(2); math.Abs(v-1.5) > 1e-12 {
		t.Errorf("step mid-rise = %g, want 1.5", v)
	}
	abrupt := Step{Initial: 0, Final: 1, T0: 1}
	if abrupt.At(1) != 1 || abrupt.At(0.999) != 0 {
		t.Errorf("abrupt step wrong")
	}
	r := Ramp{Initial: 0, Final: 10, T0: 0, T1: 10}
	if r.At(-1) != 0 || r.At(11) != 10 || math.Abs(r.At(5)-5) > 1e-12 {
		t.Errorf("ramp wrong")
	}
	p := PWL{Times: []float64{0, 1, 2}, Values: []float64{0, 1, 0}}
	if err := p.Validate(); err != nil {
		t.Errorf("valid PWL rejected: %v", err)
	}
	if p.At(-1) != 0 || p.At(0.5) != 0.5 || p.At(1.5) != 0.5 || p.At(3) != 0 {
		t.Errorf("PWL interpolation wrong")
	}
	if (PWL{}).At(1) != 0 {
		t.Errorf("empty PWL should return 0")
	}
	bad := PWL{Times: []float64{0, 0}, Values: []float64{1, 2}}
	if bad.Validate() == nil {
		t.Errorf("non-increasing PWL accepted")
	}
	bad2 := PWL{Times: []float64{0}, Values: []float64{1, 2}}
	if bad2.Validate() == nil {
		t.Errorf("mismatched PWL accepted")
	}
	for _, w := range []Waveform{DC{1}, s, r, p} {
		if w.String() == "" {
			t.Errorf("empty waveform description")
		}
	}
}

func TestConstructorPanics(t *testing.T) {
	cases := []struct {
		name string
		fn   func()
	}{
		{"zero resistance", func() { NewResistor("r", 0, Ground, 0) }},
		{"negative magnitude", func() { NewNegativeResistor("nr", 0, Ground, -5) }},
		{"zero capacitance", func() { NewCapacitor("c", 0, Ground, 0) }},
		{"nil waveform", func() { NewVoltageSource("v", 0, Ground, nil) }},
		{"nil memristor", func() { NewMemristorElement("m", 0, Ground, nil) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic")
				}
			}()
			tc.fn()
		})
	}
}

func TestElementMetadata(t *testing.T) {
	nl := NewNetlist()
	a, b := nl.AddNode("a"), nl.AddNode("b")
	mem := device.NewMemristor(device.DefaultMemristor())
	elements := []Element{
		NewResistor("R", a, b, 10),
		NewNegativeResistor("NR", a, b, 10),
		NewCapacitor("C", a, b, 1e-12),
		NewVoltageSource("V", a, b, DC{1}),
		NewDiode("D", a, b, device.DefaultDiode()),
		&VCVS{Label: "E", OutP: a, OutN: Ground, CtrlP: b, CtrlN: Ground, Gain: 2},
		NewOpAmp(nl, "OA", a, b, a, device.DefaultOpAmp()),
		NewMemristorElement("M", a, b, mem),
		&CurrentSource{Label: "I", A: a, B: b, Value: 1e-3},
	}
	wantTypes := []string{"resistor", "negative-resistor", "capacitor", "vsource",
		"diode", "vcvs", "opamp", "memristor", "isource"}
	wantBranches := []int{0, 0, 0, 1, 0, 1, 1, 0, 0}
	wantLinear := []bool{true, true, true, true, false, true, true, true, true}
	for i, el := range elements {
		if el.TypeName() != wantTypes[i] {
			t.Errorf("element %d type %q, want %q", i, el.TypeName(), wantTypes[i])
		}
		if el.NumBranches() != wantBranches[i] {
			t.Errorf("element %d branches %d, want %d", i, el.NumBranches(), wantBranches[i])
		}
		if el.Linear() != wantLinear[i] {
			t.Errorf("element %d linear %v, want %v", i, el.Linear(), wantLinear[i])
		}
		if el.Name() == "" || len(el.Nodes()) == 0 {
			t.Errorf("element %d missing metadata", i)
		}
	}
}

func TestNegativeResistorEffective(t *testing.T) {
	nr := NewNegativeResistor("NR", 0, Ground, 10e3)
	if nr.EffectiveResistance() != -10e3 {
		t.Errorf("effective resistance %g", nr.EffectiveResistance())
	}
	nr.GainError = 0.001
	if math.Abs(nr.EffectiveResistance()+10e3*1.001) > 1e-9 {
		t.Errorf("gain error not applied: %g", nr.EffectiveResistance())
	}
}

// newCtx builds a stamping context over n unknowns for direct stamp tests.
func newCtx(nNodes, size int) *StampContext {
	return &StampContext{
		NumNodes: nNodes,
		A:        numeric.NewSparseBuilder(size),
		B:        make([]float64, size),
	}
}

func TestStampConductance(t *testing.T) {
	ctx := newCtx(2, 2)
	ctx.StampConductance(0, 1, 0.5)
	m := ctx.A.ToDense()
	if m.At(0, 0) != 0.5 || m.At(1, 1) != 0.5 || m.At(0, 1) != -0.5 || m.At(1, 0) != -0.5 {
		t.Errorf("conductance stamp wrong: %+v", m)
	}
	// Stamps to ground are dropped.
	ctx2 := newCtx(1, 1)
	ctx2.StampConductance(0, Ground, 2)
	if ctx2.A.ToDense().At(0, 0) != 2 {
		t.Errorf("ground stamp wrong")
	}
}

func TestStampCurrentSourceAndVCCS(t *testing.T) {
	ctx := newCtx(2, 2)
	ctx.StampCurrentSource(0, 1, 1e-3)
	if ctx.B[0] != -1e-3 || ctx.B[1] != 1e-3 {
		t.Errorf("current source stamp wrong: %v", ctx.B)
	}
	ctx2 := newCtx(3, 3)
	ctx2.StampVCCS(0, Ground, Ground, 1, 2e-3)
	m := ctx2.A.ToDense()
	if m.At(1, 0) != -2e-3 {
		t.Errorf("VCCS stamp wrong: %+v", m)
	}
}

func TestStampContextAccessors(t *testing.T) {
	ctx := newCtx(2, 4)
	ctx.X = []float64{1.5, -2, 0.25, 3}
	ctx.XPrev = []float64{1, 1, 1, 1}
	ctx.BranchBase = 2
	if ctx.V(0) != 1.5 || ctx.V(Ground) != 0 {
		t.Errorf("V accessor wrong")
	}
	if ctx.VPrev(1) != 1 || ctx.VPrev(Ground) != 0 {
		t.Errorf("VPrev accessor wrong")
	}
	if ctx.Branch(1) != 3 || ctx.BranchValue(0) != 0.25 {
		t.Errorf("branch accessors wrong")
	}
	empty := newCtx(2, 2)
	if empty.V(0) != 0 || empty.VPrev(0) != 0 || empty.BranchValue(0) != 0 {
		t.Errorf("nil iterate accessors should return 0")
	}
}

func TestCapacitorDCOpen(t *testing.T) {
	c := NewCapacitor("C", 0, Ground, 1e-12)
	ctx := newCtx(1, 1)
	ctx.Dt = 0
	c.Stamp(ctx)
	if ctx.A.NNZ() != 0 {
		t.Errorf("capacitor should not stamp at DC")
	}
	ctx.Dt = 1e-9
	ctx.XPrev = []float64{2}
	c.Stamp(ctx)
	if ctx.A.ToDense().At(0, 0) != 1e-12/1e-9 {
		t.Errorf("companion conductance wrong")
	}
	if math.Abs(ctx.B[0]-2e-3) > 1e-15 {
		t.Errorf("companion current wrong: %g", ctx.B[0])
	}
}

func TestDiodeHelpers(t *testing.T) {
	d := NewDiode("D", 0, 1, device.DefaultDiode())
	v := func(n NodeID) float64 {
		if n == 0 {
			return 0.4
		}
		return 0.1
	}
	if math.Abs(d.Voltage(v)-0.3) > 1e-12 {
		t.Errorf("diode voltage accessor wrong")
	}
}

func TestVoltageSourceDeliveredCurrent(t *testing.T) {
	v := NewVoltageSource("V", 0, Ground, DC{1})
	x := []float64{1, -0.25}
	if v.DeliveredCurrent(x, 1) != 0.25 {
		t.Errorf("delivered current wrong")
	}
}

func TestMemristorElementPostStep(t *testing.T) {
	model := device.DefaultMemristor()
	dev := device.NewMemristor(model)
	m := NewMemristorElement("M", 0, Ground, dev)
	v := func(n NodeID) float64 {
		if n == 0 {
			return model.VThreshold * 2
		}
		return 0
	}
	for i := 0; i < 5; i++ {
		m.PostStep(v, model.SwitchTime)
	}
	if dev.State() != device.LRS {
		t.Errorf("memristor element did not switch under programming stimulus")
	}
	ctx := newCtx(1, 1)
	m.Stamp(ctx)
	if math.Abs(ctx.A.ToDense().At(0, 0)-1/model.RLRS) > 1e-15 {
		t.Errorf("memristor stamp should use LRS conductance")
	}
}
