// Package circuit provides the netlist representation of the analog max-flow
// substrate: circuit nodes, two-terminal and controlled elements, waveform
// sources, and the "stamping" interface through which elements contribute to
// the modified-nodal-analysis system assembled by internal/mna.
//
// The element set is exactly what the paper's substrate needs — resistors,
// parasitic capacitors, (step) voltage sources, clamping diodes, negative
// resistors (ideal or realised with an op-amp macromodel), op-amps and
// memristor switches — but the package is general enough to describe any
// lumped linear/piecewise-nonlinear circuit.
package circuit

import (
	"fmt"
)

// NodeID identifies a circuit node.  Ground is the distinguished reference
// node and is never part of the unknown vector.
type NodeID int

// Ground is the reference node (0 V by definition).
const Ground NodeID = -1

// Netlist is a collection of named nodes and circuit elements.
type Netlist struct {
	nodeNames []string
	elements  []Element
}

// NewNetlist returns an empty netlist.
func NewNetlist() *Netlist {
	return &Netlist{}
}

// AddNode creates a new node with the given name and returns its identifier.
// Names are labels for debugging and netlist export; they need not be unique,
// although the builder in internal/builder always generates unique ones.
func (n *Netlist) AddNode(name string) NodeID {
	n.nodeNames = append(n.nodeNames, name)
	return NodeID(len(n.nodeNames) - 1)
}

// NumNodes returns the number of non-ground nodes.
func (n *Netlist) NumNodes() int { return len(n.nodeNames) }

// NodeName returns the name of a node ("0" for ground).
func (n *Netlist) NodeName(id NodeID) string {
	if id == Ground {
		return "0"
	}
	if int(id) < 0 || int(id) >= len(n.nodeNames) {
		return fmt.Sprintf("node(%d)", int(id))
	}
	return n.nodeNames[id]
}

// Add appends an element to the netlist.
func (n *Netlist) Add(e Element) {
	n.elements = append(n.elements, e)
}

// Elements returns the element list (not a copy; treat as read-only).
func (n *Netlist) Elements() []Element { return n.elements }

// NumElements returns the number of elements.
func (n *Netlist) NumElements() int { return len(n.elements) }

// NumBranches returns the total number of auxiliary (branch-current) unknowns
// required by all elements.
func (n *Netlist) NumBranches() int {
	total := 0
	for _, e := range n.elements {
		total += e.NumBranches()
	}
	return total
}

// Size returns the dimension of the MNA system: nodes plus branch unknowns.
func (n *Netlist) Size() int { return n.NumNodes() + n.NumBranches() }

// Stats summarises the netlist composition by element type name; used by the
// experiments and by DESIGN/EXPERIMENTS reporting.
func (n *Netlist) Stats() map[string]int {
	stats := make(map[string]int)
	for _, e := range n.elements {
		stats[e.TypeName()]++
	}
	return stats
}

// CheckNodes verifies that every element references only ground or nodes that
// exist in this netlist.
func (n *Netlist) CheckNodes() error {
	for _, e := range n.elements {
		for _, nd := range e.Nodes() {
			if nd == Ground {
				continue
			}
			if int(nd) < 0 || int(nd) >= len(n.nodeNames) {
				return fmt.Errorf("circuit: element %q references unknown node %d", e.Name(), int(nd))
			}
		}
	}
	return nil
}

// Element is a circuit element that knows how to stamp its (possibly
// linearised) contribution into the MNA system.
type Element interface {
	// Name is the instance name (e.g. "R_e12_cons").
	Name() string
	// TypeName is the element class ("resistor", "diode", ...).
	TypeName() string
	// Nodes returns every node the element connects to (ground included).
	Nodes() []NodeID
	// NumBranches is the number of auxiliary unknowns (branch currents) the
	// element adds to the MNA system.
	NumBranches() int
	// Linear reports whether the element's stamp is independent of the
	// current iterate; nonlinear elements force Newton iteration.
	Linear() bool
	// Stamp adds the element's contribution for the current iterate into the
	// system described by ctx.
	Stamp(ctx *StampContext)
}

// Stateful is implemented by elements whose internal state advances with
// simulation time (memristors).  The transient engine calls PostStep after
// every accepted timestep with the solved node-voltage accessor and the step
// size.
type Stateful interface {
	PostStep(v func(NodeID) float64, dt float64)
}
