package circuit

import "fmt"

// Waveform describes the time dependence of an independent source.
type Waveform interface {
	// At returns the source value at time t.
	At(t float64) float64
	// String returns a short human-readable description.
	String() string
}

// DC is a constant waveform.
type DC struct{ Value float64 }

// At implements Waveform.
func (w DC) At(float64) float64 { return w.Value }

func (w DC) String() string { return fmt.Sprintf("DC(%g)", w.Value) }

// Step is a step from Initial to Final at time T0, with an optional linear
// rise over RiseTime.  The paper's compute phase applies a step on Vflow.
type Step struct {
	Initial, Final float64
	T0             float64
	RiseTime       float64
}

// At implements Waveform.
func (w Step) At(t float64) float64 {
	switch {
	case t < w.T0:
		return w.Initial
	case w.RiseTime <= 0 || t >= w.T0+w.RiseTime:
		return w.Final
	default:
		frac := (t - w.T0) / w.RiseTime
		return w.Initial + frac*(w.Final-w.Initial)
	}
}

func (w Step) String() string {
	return fmt.Sprintf("Step(%g->%g @%g rise=%g)", w.Initial, w.Final, w.T0, w.RiseTime)
}

// Ramp rises linearly from Initial at T0 to Final at T1 and holds afterwards.
// The quasi-static trajectory study of Section 6.5 drives Vflow with a slow
// ramp.
type Ramp struct {
	Initial, Final float64
	T0, T1         float64
}

// At implements Waveform.
func (w Ramp) At(t float64) float64 {
	switch {
	case t <= w.T0:
		return w.Initial
	case t >= w.T1:
		return w.Final
	default:
		frac := (t - w.T0) / (w.T1 - w.T0)
		return w.Initial + frac*(w.Final-w.Initial)
	}
}

func (w Ramp) String() string {
	return fmt.Sprintf("Ramp(%g->%g over [%g,%g])", w.Initial, w.Final, w.T0, w.T1)
}

// PWL is a piecewise-linear waveform through (Times[i], Values[i]) points.
// Before the first point it holds Values[0]; after the last it holds the last
// value.  Times must be strictly increasing.
type PWL struct {
	Times  []float64
	Values []float64
}

// At implements Waveform.
func (w PWL) At(t float64) float64 {
	if len(w.Times) == 0 {
		return 0
	}
	if t <= w.Times[0] {
		return w.Values[0]
	}
	for i := 1; i < len(w.Times); i++ {
		if t <= w.Times[i] {
			frac := (t - w.Times[i-1]) / (w.Times[i] - w.Times[i-1])
			return w.Values[i-1] + frac*(w.Values[i]-w.Values[i-1])
		}
	}
	return w.Values[len(w.Values)-1]
}

func (w PWL) String() string { return fmt.Sprintf("PWL(%d points)", len(w.Times)) }

// Validate checks that the PWL definition is well formed.
func (w PWL) Validate() error {
	if len(w.Times) != len(w.Values) {
		return fmt.Errorf("circuit: PWL has %d times but %d values", len(w.Times), len(w.Values))
	}
	for i := 1; i < len(w.Times); i++ {
		if w.Times[i] <= w.Times[i-1] {
			return fmt.Errorf("circuit: PWL times not strictly increasing at %d", i)
		}
	}
	return nil
}
