// Package faultinject is the deterministic fault layer the failure-domain
// tests drive: a seedable Plan of faults (panic on the Nth solve, error on
// region K, fixed delay, context-cancel mid-chain) wired behind wrappers
// that drop into the places real faults strike — a Registry-registrable
// solve.Solver (WrapSolver, warm instances included) and a decompose.Oracle
// (WrapOracle).  Everything is counter-based, never clock- or
// scheduler-based, so a fault plan replays identically across runs and under
// -race.
//
// The package exists for tests, but it is not test-only code on purpose:
// wrapping a production registry with a fault plan is how chaos drills
// against a running analogflowd would be staged.
package faultinject

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"analogflow/internal/decompose"
	"analogflow/internal/graph"
	"analogflow/internal/solve"
)

// ErrInjected is the sentinel every injected (non-panic) fault wraps.
var ErrInjected = errors.New("faultinject: injected fault")

// Mode selects what a region fault does.
type Mode string

const (
	// ModeError fails the region solve with ErrInjected.
	ModeError Mode = "error"
	// ModePanic panics inside the region solve (the isolation layers under
	// test must convert it into an error).
	ModePanic Mode = "panic"
	// ModeDelay sleeps Plan.Delay inside the region solve.
	ModeDelay Mode = "delay"
)

// RegionFault is one fault targeted at a decomposition region.
type RegionFault struct {
	// Region is the region index the fault strikes.
	Region int
	// Call is the 1-based per-region call count to strike on; 0 strikes
	// every call for that region.
	Call int
	// Mode is what happens.
	Mode Mode
}

// Plan is one deterministic fault schedule.  The zero Plan injects nothing.
// Solve-counting faults (PanicOnSolve, ErrorOnSolve, CancelOnSolve) trigger
// on the Nth guarded solver invocation, 1-based, counted across every
// wrapper sharing the Injector — warm-instance solves, one-shot solves and
// region solves all count.
type Plan struct {
	// PanicOnSolve panics on the Nth solve; 0 disables.
	PanicOnSolve int
	// ErrorOnSolve fails the Nth solve with ErrInjected; 0 disables.
	ErrorOnSolve int
	// CancelOnSolve invokes Cancel just before the Nth solve runs — the
	// "context cancelled mid-chain" fault; 0 disables.  The solve itself
	// proceeds and observes the cancelled context the way a live request
	// would.
	CancelOnSolve int
	// Cancel is the cancellation hook CancelOnSolve fires.
	Cancel func()
	// Delay is slept (context-aware) before every solve, and inside
	// ModeDelay region faults; 0 disables.
	Delay time.Duration
	// FailRate injects ErrInjected on each solve with this probability,
	// drawn from a rand.Rand seeded with Seed — deterministic for a fixed
	// seed and call order; 0 disables.
	FailRate float64
	// Seed seeds the FailRate stream.
	Seed int64
	// Regions are the per-region faults WrapOracle applies.
	Regions []RegionFault
}

// Injector executes one Plan.  One Injector may back any number of wrappers;
// its counters are shared across them, which is what makes "the Nth solve in
// this chain" well-defined no matter which path the service routes a step
// through.  Safe for concurrent use.
type Injector struct {
	calls atomic.Int64

	mu          sync.Mutex
	plan        Plan
	rng         *rand.Rand
	regionCalls map[int]int
}

// New builds an injector for the plan.
func New(plan Plan) *Injector {
	return &Injector{
		plan:        plan,
		rng:         rand.New(rand.NewSource(plan.Seed)),
		regionCalls: make(map[int]int),
	}
}

// Calls reports how many guarded solve invocations have happened.
func (in *Injector) Calls() int64 { return in.calls.Load() }

// SetPlan replaces the fault plan mid-run (and re-seeds the FailRate
// stream).  Solve counts are absolute, so arming "panic on the next solve"
// after a warm-up phase is SetPlan(Plan{PanicOnSolve: int(in.Calls()) + 1}).
func (in *Injector) SetPlan(plan Plan) {
	in.mu.Lock()
	in.plan = plan
	in.rng = rand.New(rand.NewSource(plan.Seed))
	in.mu.Unlock()
}

// planSnapshot reads the current plan consistently.
func (in *Injector) planSnapshot() Plan {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.plan
}

// beforeSolve applies the solve-counting faults for one invocation and
// returns the error to fail it with, nil to let it run.  Panics are raised
// here — converting them into errors is exactly the isolation contract the
// wrappers exist to test.
func (in *Injector) beforeSolve(ctx context.Context) error {
	n := int(in.calls.Add(1))
	plan := in.planSnapshot()
	if plan.Delay > 0 {
		t := time.NewTimer(plan.Delay)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		}
	}
	if plan.CancelOnSolve == n && plan.Cancel != nil {
		plan.Cancel()
	}
	if plan.PanicOnSolve == n {
		panic(fmt.Sprintf("faultinject: planned panic on solve %d", n))
	}
	if plan.ErrorOnSolve == n {
		return fmt.Errorf("%w: planned error on solve %d", ErrInjected, n)
	}
	if plan.FailRate > 0 {
		in.mu.Lock()
		hit := in.rng.Float64() < plan.FailRate
		in.mu.Unlock()
		if hit {
			return fmt.Errorf("%w: random failure on solve %d", ErrInjected, n)
		}
	}
	return nil
}

// beforeRegion applies region faults for one SolveRegion call.
func (in *Injector) beforeRegion(ctx context.Context, region int) error {
	in.mu.Lock()
	in.regionCalls[region]++
	call := in.regionCalls[region]
	in.mu.Unlock()
	plan := in.planSnapshot()
	for _, f := range plan.Regions {
		if f.Region != region || (f.Call != 0 && f.Call != call) {
			continue
		}
		switch f.Mode {
		case ModePanic:
			panic(fmt.Sprintf("faultinject: planned panic in region %d (call %d)", region, call))
		case ModeError:
			return fmt.Errorf("%w: planned error in region %d (call %d)", ErrInjected, region, call)
		case ModeDelay:
			if plan.Delay > 0 {
				t := time.NewTimer(plan.Delay)
				select {
				case <-t.C:
				case <-ctx.Done():
					t.Stop()
					return ctx.Err()
				}
			}
		}
	}
	return nil
}

// WrapSolver wraps a backend so every solve runs through the injector.  The
// wrapper preserves the inner solver's capability surface: an
// UpdatableSolver stays updatable and a Warmable stays warmable, so the
// solve.Service routes the wrapped backend through exactly the code paths —
// warm-instance cache, update chains, region oracles — a real backend takes.
// The wrapper keeps the inner name, so it substitutes for the backend in a
// custom Registry.
func WrapSolver(inner solve.Solver, in *Injector) solve.Solver {
	fs := faultySolver{inner: inner, in: in}
	if us, ok := inner.(solve.UpdatableSolver); ok {
		return &faultyUpdatableSolver{faultyWarmable{faultySolver: fs, w: us}, us}
	}
	if w, ok := inner.(solve.Warmable); ok {
		return &faultyWarmable{faultySolver: fs, w: w}
	}
	return &fs
}

type faultySolver struct {
	inner solve.Solver
	in    *Injector
}

func (s *faultySolver) Name() string { return s.inner.Name() }
func (s *faultySolver) Describe() string {
	return "fault-injecting wrapper: " + s.inner.Describe()
}

func (s *faultySolver) Solve(ctx context.Context, p *solve.Problem) (*solve.Report, error) {
	if err := s.in.beforeSolve(ctx); err != nil {
		return nil, err
	}
	return s.inner.Solve(ctx, p)
}

type faultyWarmable struct {
	faultySolver
	w solve.Warmable
}

func (s *faultyWarmable) NewInstance(p *solve.Problem) (solve.Instance, error) {
	inst, err := s.w.NewInstance(p)
	if err != nil {
		return nil, err
	}
	return &faultyInstance{inner: inst, in: s.in, fp: p.Fingerprint()}, nil
}

type faultyUpdatableSolver struct {
	faultyWarmable
	us solve.UpdatableSolver
}

func (s *faultyUpdatableSolver) NewUpdatableInstance(p *solve.Problem) (solve.UpdatableInstance, error) {
	inst, err := s.us.NewUpdatableInstance(p)
	if err != nil {
		return nil, err
	}
	return &faultyUpdatableInstance{faultyInstance{inner: inst, in: s.in, fp: p.Fingerprint()}}, nil
}

// faultyInstance forwards the service's optional binding-guard interface:
// the inner instance's binding when it publishes one, the construction
// problem's fingerprint otherwise (kept current across updates), so wrapping
// never makes the service misdiagnose a solve-vs-update race.
type faultyInstance struct {
	inner solve.Instance
	in    *Injector

	mu sync.Mutex
	fp string
}

func (i *faultyInstance) Solve(ctx context.Context) (*solve.Report, error) {
	if err := i.in.beforeSolve(ctx); err != nil {
		return nil, err
	}
	return i.inner.Solve(ctx)
}

func (i *faultyInstance) BoundFingerprint() string {
	if b, ok := i.inner.(interface{ BoundFingerprint() string }); ok {
		return b.BoundFingerprint()
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.fp
}

type faultyUpdatableInstance struct {
	faultyInstance
}

func (i *faultyUpdatableInstance) Update(p *solve.Problem) error {
	if err := i.inner.(solve.UpdatableInstance).Update(p); err != nil {
		return err
	}
	i.mu.Lock()
	i.fp = p.Fingerprint()
	i.mu.Unlock()
	return nil
}

// WrapOracle wraps a decomposition region oracle so region faults
// (Plan.Regions) strike inside SolveRegion — the raw-oracle failure domain
// the decompose fan-out itself must contain.
func WrapOracle(inner decompose.Oracle, in *Injector) decompose.Oracle {
	return decompose.OracleFunc(func(ctx context.Context, region int, g *graph.Graph) (*graph.Flow, error) {
		if err := in.beforeRegion(ctx, region); err != nil {
			return nil, err
		}
		return inner.SolveRegion(ctx, region, g)
	})
}
