package mna

import (
	"math"
	"testing"

	"analogflow/internal/circuit"
	"analogflow/internal/device"

	"analogflow/internal/testutil"
)

func TestEngineValidation(t *testing.T) {
	if _, err := NewEngine(nil, DefaultOptions()); err == nil {
		t.Errorf("nil netlist accepted")
	}
	empty := circuit.NewNetlist()
	if _, err := NewEngine(empty, DefaultOptions()); err == nil {
		t.Errorf("empty netlist accepted")
	}
	nl := circuit.NewNetlist()
	nl.Add(circuit.NewResistor("R", circuit.NodeID(3), circuit.Ground, 1))
	if _, err := NewEngine(nl, DefaultOptions()); err == nil {
		t.Errorf("dangling node accepted")
	}
}

func TestOptionDefaultsApplied(t *testing.T) {
	nl := circuit.NewNetlist()
	a := nl.AddNode("a")
	nl.Add(circuit.NewVoltageSource("V", a, circuit.Ground, circuit.DC{Value: 1}))
	nl.Add(circuit.NewResistor("R", a, circuit.Ground, 1))
	e, err := NewEngine(nl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if e.opts.MaxNewtonIterations <= 0 || e.opts.AbsTol <= 0 || e.opts.RelTol <= 0 || e.opts.Damping != 1 {
		t.Errorf("zero options not defaulted: %+v", e.opts)
	}
	if e.Size() != 2 || e.NumNodes() != 1 {
		t.Errorf("sizes wrong: %d %d", e.Size(), e.NumNodes())
	}
}

// Voltage divider: 1 V through two equal resistors gives 0.5 V at the middle.
func TestVoltageDivider(t *testing.T) {
	nl := circuit.NewNetlist()
	top := nl.AddNode("top")
	mid := nl.AddNode("mid")
	nl.Add(circuit.NewVoltageSource("V", top, circuit.Ground, circuit.DC{Value: 1}))
	nl.Add(circuit.NewResistor("R1", top, mid, 10e3))
	nl.Add(circuit.NewResistor("R2", mid, circuit.Ground, 10e3))
	e, err := NewEngine(nl, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	sol, err := e.OperatingPoint(0)
	if err != nil {
		t.Fatal(err)
	}
	if !testutil.AlmostEqualAbs(sol.Voltage(mid), 0.5, 1e-6) {
		t.Errorf("divider voltage %g, want 0.5", sol.Voltage(mid))
	}
	if !testutil.AlmostEqualAbs(sol.Voltage(top), 1.0, 1e-6) {
		t.Errorf("source node %g, want 1", sol.Voltage(top))
	}
	if sol.Voltage(circuit.Ground) != 0 {
		t.Errorf("ground voltage must be 0")
	}
	// The source delivers 1 V / 20 kOhm = 50 µA.
	vsrc := nl.Elements()[0].(*circuit.VoltageSource)
	i := vsrc.DeliveredCurrent(sol.X, e.BranchBase(0))
	if !testutil.AlmostEqualAbs(i, 50e-6, 1e-9) {
		t.Errorf("delivered current %g, want 50e-6", i)
	}
}

// A negative resistor in series behaves as expected: +10k followed by -5k to
// ground halves... actually the node voltage becomes V*(-5k)/(10k-5k) = -V.
func TestNegativeResistorDC(t *testing.T) {
	nl := circuit.NewNetlist()
	top := nl.AddNode("top")
	mid := nl.AddNode("mid")
	nl.Add(circuit.NewVoltageSource("V", top, circuit.Ground, circuit.DC{Value: 1}))
	nl.Add(circuit.NewResistor("R1", top, mid, 10e3))
	nl.Add(circuit.NewNegativeResistor("NR", mid, circuit.Ground, 5e3))
	e, err := NewEngine(nl, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	sol, err := e.OperatingPoint(0)
	if err != nil {
		t.Fatal(err)
	}
	// Divider with R2 = -5k: Vmid = 1 * (-5k)/(10k + -5k) = -1.
	if !testutil.AlmostEqualAbs(sol.Voltage(mid), -1, 1e-6) {
		t.Errorf("negative divider voltage %g, want -1", sol.Voltage(mid))
	}
}

// Ideal-diode clamp: a 5 V source through a resistor into a diode whose
// cathode is held at 2 V clamps the node to ~2 V.
func TestDiodeClampDC(t *testing.T) {
	nl := circuit.NewNetlist()
	in := nl.AddNode("in")
	x := nl.AddNode("x")
	ref := nl.AddNode("ref")
	nl.Add(circuit.NewVoltageSource("Vin", in, circuit.Ground, circuit.DC{Value: 5}))
	nl.Add(circuit.NewVoltageSource("Vref", ref, circuit.Ground, circuit.DC{Value: 2}))
	nl.Add(circuit.NewResistor("R", in, x, 10e3))
	nl.Add(circuit.NewDiode("D", x, ref, device.DefaultDiode()))
	e, err := NewEngine(nl, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	sol, err := e.OperatingPoint(0)
	if err != nil {
		t.Fatal(err)
	}
	if v := sol.Voltage(x); v < 1.99 || v > 2.01 {
		t.Errorf("clamped voltage %g, want ~2", v)
	}
	// With the source below the clamp level the diode is off and x follows
	// the input.
	nl2 := circuit.NewNetlist()
	in2 := nl2.AddNode("in")
	x2 := nl2.AddNode("x")
	ref2 := nl2.AddNode("ref")
	nl2.Add(circuit.NewVoltageSource("Vin", in2, circuit.Ground, circuit.DC{Value: 1}))
	nl2.Add(circuit.NewVoltageSource("Vref", ref2, circuit.Ground, circuit.DC{Value: 2}))
	nl2.Add(circuit.NewResistor("R", in2, x2, 10e3))
	nl2.Add(circuit.NewDiode("D", x2, ref2, device.DefaultDiode()))
	e2, _ := NewEngine(nl2, DefaultOptions())
	sol2, err := e2.OperatingPoint(0)
	if err != nil {
		t.Fatal(err)
	}
	if v := sol2.Voltage(x2); !testutil.AlmostEqualAbs(v, 1, 1e-3) {
		t.Errorf("unclamped voltage %g, want ~1", v)
	}
}

// The paper's lower clamp: a diode with anode at ground keeps a node driven
// negative at approximately 0 V.
func TestDiodeGroundClamp(t *testing.T) {
	nl := circuit.NewNetlist()
	in := nl.AddNode("in")
	x := nl.AddNode("x")
	nl.Add(circuit.NewVoltageSource("Vin", in, circuit.Ground, circuit.DC{Value: -5}))
	nl.Add(circuit.NewResistor("R", in, x, 10e3))
	nl.Add(circuit.NewDiode("D", circuit.Ground, x, device.DefaultDiode()))
	e, _ := NewEngine(nl, DefaultOptions())
	sol, err := e.OperatingPoint(0)
	if err != nil {
		t.Fatal(err)
	}
	if v := sol.Voltage(x); v < -0.01 || v > 0.01 {
		t.Errorf("ground clamp voltage %g, want ~0", v)
	}
}

func TestVCVSGain(t *testing.T) {
	nl := circuit.NewNetlist()
	in := nl.AddNode("in")
	out := nl.AddNode("out")
	nl.Add(circuit.NewVoltageSource("Vin", in, circuit.Ground, circuit.DC{Value: 0.25}))
	nl.Add(&circuit.VCVS{Label: "E", OutP: out, OutN: circuit.Ground, CtrlP: in, CtrlN: circuit.Ground, Gain: 4})
	nl.Add(circuit.NewResistor("RL", out, circuit.Ground, 1e3))
	e, _ := NewEngine(nl, DefaultOptions())
	sol, err := e.OperatingPoint(0)
	if err != nil {
		t.Fatal(err)
	}
	if !testutil.AlmostEqualAbs(sol.Voltage(out), 1.0, 1e-6) {
		t.Errorf("VCVS output %g, want 1", sol.Voltage(out))
	}
}

// Open-loop op-amp gain: with the inverting input grounded, a small input
// yields Gain * Vin at the output.
func TestOpAmpOpenLoopGain(t *testing.T) {
	nl := circuit.NewNetlist()
	in := nl.AddNode("in")
	out := nl.AddNode("out")
	model := device.DefaultOpAmp()
	nl.Add(circuit.NewVoltageSource("Vin", in, circuit.Ground, circuit.DC{Value: 1e-5}))
	nl.Add(circuit.NewOpAmp(nl, "OA", in, circuit.Ground, out, model))
	nl.Add(circuit.NewResistor("RL", out, circuit.Ground, 100e3))
	e, _ := NewEngine(nl, DefaultOptions())
	sol, err := e.OperatingPoint(0)
	if err != nil {
		t.Fatal(err)
	}
	want := model.Gain * 1e-5 * 100e3 / (100e3 + model.Rout)
	if !testutil.AlmostEqualAbs(sol.Voltage(out), want, 1e-3*want) {
		t.Errorf("open-loop output %g, want %g", sol.Voltage(out), want)
	}
}

// Voltage follower: output tracks input to within 1/gain.
func TestOpAmpFollower(t *testing.T) {
	nl := circuit.NewNetlist()
	in := nl.AddNode("in")
	out := nl.AddNode("out")
	nl.Add(circuit.NewVoltageSource("Vin", in, circuit.Ground, circuit.DC{Value: 2}))
	nl.Add(circuit.NewOpAmp(nl, "OA", in, out, out, device.DefaultOpAmp()))
	nl.Add(circuit.NewResistor("RL", out, circuit.Ground, 10e3))
	e, _ := NewEngine(nl, DefaultOptions())
	sol, err := e.OperatingPoint(0)
	if err != nil {
		t.Fatal(err)
	}
	if !testutil.AlmostEqualAbs(sol.Voltage(out), 2, 2.0/1000) {
		t.Errorf("follower output %g, want ~2", sol.Voltage(out))
	}
}

// The op-amp negative resistance circuit of Figure 9a: with feedback
// resistors R0 = R0 and a target resistor Rtarget, the input impedance seen
// at the op-amp's positive terminal is -Rtarget.  Driving that port from a
// voltage source through a series resistor Rs gives the voltage-divider value
// Vin * (-Rtarget)/(Rs - Rtarget).
func TestOpAmpNegativeResistanceRealisation(t *testing.T) {
	nl := circuit.NewNetlist()
	in := nl.AddNode("in")
	port := nl.AddNode("port")
	fb := nl.AddNode("fb")   // inverting input node
	out := nl.AddNode("out") // op-amp output
	const (
		r0      = 10e3
		rtarget = 5e3
		rs      = 20e3
	)
	nl.Add(circuit.NewVoltageSource("Vin", in, circuit.Ground, circuit.DC{Value: 1}))
	nl.Add(circuit.NewResistor("Rs", in, port, rs))
	// Negative-impedance converter: non-inverting input at the port,
	// feedback network R0 from output to inverting input, R0 from inverting
	// input to ground, and Rtarget from output back to the port.
	nl.Add(circuit.NewOpAmp(nl, "OA", port, fb, out, device.DefaultOpAmp()))
	nl.Add(circuit.NewResistor("R0a", out, fb, r0))
	nl.Add(circuit.NewResistor("R0b", fb, circuit.Ground, r0))
	nl.Add(circuit.NewResistor("Rt", out, port, rtarget))
	e, _ := NewEngine(nl, DefaultOptions())
	sol, err := e.OperatingPoint(0)
	if err != nil {
		t.Fatal(err)
	}
	want := 1.0 * (-rtarget) / (rs - rtarget) // = -1/3
	if !testutil.AlmostEqualAbs(sol.Voltage(port), want, 0.01*math.Abs(want)) {
		t.Errorf("NIC port voltage %g, want %g", sol.Voltage(port), want)
	}
}

// RC charging transient: analytic solution v(t) = V(1 - exp(-t/RC)).
func TestRCTransient(t *testing.T) {
	nl := circuit.NewNetlist()
	in := nl.AddNode("in")
	out := nl.AddNode("out")
	const (
		r = 1e3
		c = 1e-9
	)
	nl.Add(circuit.NewVoltageSource("V", in, circuit.Ground, circuit.Step{Final: 1, T0: 0}))
	nl.Add(circuit.NewResistor("R", in, out, r))
	nl.Add(circuit.NewCapacitor("C", out, circuit.Ground, c))
	e, _ := NewEngine(nl, DefaultOptions())
	tau := r * c
	spec := TransientSpec{
		Stop:                 8 * tau,
		Step:                 tau / 200,
		Monitor:              func(s *Solution) float64 { return s.Voltage(out) },
		ConvergenceTolerance: 1e-3,
	}
	res, err := e.Transient(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Final value close to 1 V.
	if !testutil.AlmostEqualAbs(res.FinalMonitorValue, 1, 1e-3) {
		t.Errorf("final RC voltage %g, want ~1", res.FinalMonitorValue)
	}
	// Check an intermediate point against the analytic curve (backward Euler
	// at 200 steps/tau is accurate to well under 1 %).
	for i, tm := range res.Times {
		if tm == 0 {
			continue
		}
		want := 1 - math.Exp(-tm/tau)
		if math.Abs(res.MonitorValues[i]-want) > 0.01 {
			t.Fatalf("RC waveform at t=%g: %g, want %g", tm, res.MonitorValues[i], want)
		}
	}
	// Convergence time should be around 7 tau (0.1 % band).
	if res.ConvergenceTime < 5*tau || res.ConvergenceTime > 8*tau {
		t.Errorf("convergence time %g, want ~7*tau=%g", res.ConvergenceTime, 7*tau)
	}
	if ok, err := res.SettledWithin(8 * tau); err != nil || !ok {
		t.Errorf("SettledWithin failed: %v %v", ok, err)
	}
	if res.Steps == 0 || res.NewtonIterations == 0 || res.Final() == nil {
		t.Errorf("transient bookkeeping empty")
	}
	if len(res.VoltageSeries(out)) != len(res.Times) {
		t.Errorf("voltage series length mismatch")
	}
}

func TestTransientSpecValidation(t *testing.T) {
	nl := circuit.NewNetlist()
	a := nl.AddNode("a")
	nl.Add(circuit.NewVoltageSource("V", a, circuit.Ground, circuit.DC{Value: 1}))
	nl.Add(circuit.NewResistor("R", a, circuit.Ground, 1e3))
	e, _ := NewEngine(nl, DefaultOptions())
	if _, err := e.Transient(TransientSpec{Stop: 0, Step: 1}); err == nil {
		t.Errorf("zero stop accepted")
	}
	if _, err := e.Transient(TransientSpec{Stop: 1, Step: 0}); err == nil {
		t.Errorf("zero step accepted")
	}
	if _, err := e.Transient(TransientSpec{Stop: 1, Step: 2}); err == nil {
		t.Errorf("step > stop accepted")
	}
	spec := DefaultTransientSpec(1e-6)
	if spec.Validate() != nil {
		t.Errorf("default spec invalid")
	}
}

func TestTransientWithoutMonitor(t *testing.T) {
	nl := circuit.NewNetlist()
	a := nl.AddNode("a")
	nl.Add(circuit.NewVoltageSource("V", a, circuit.Ground, circuit.DC{Value: 1}))
	nl.Add(circuit.NewResistor("R", a, circuit.Ground, 1e3))
	e, _ := NewEngine(nl, DefaultOptions())
	res, err := e.Transient(TransientSpec{Stop: 1e-6, Step: 1e-7})
	if err != nil {
		t.Fatal(err)
	}
	if res.ConvergenceTime != -1 {
		t.Errorf("convergence time should be -1 without monitor")
	}
	if _, err := res.SettledWithin(1); err != ErrNoMonitor {
		t.Errorf("expected ErrNoMonitor, got %v", err)
	}
}

func TestTransientInitialFromOP(t *testing.T) {
	nl := circuit.NewNetlist()
	in := nl.AddNode("in")
	out := nl.AddNode("out")
	nl.Add(circuit.NewVoltageSource("V", in, circuit.Ground, circuit.DC{Value: 1}))
	nl.Add(circuit.NewResistor("R", in, out, 1e3))
	nl.Add(circuit.NewCapacitor("C", out, circuit.Ground, 1e-9))
	e, _ := NewEngine(nl, DefaultOptions())
	res, err := e.Transient(TransientSpec{
		Stop: 1e-6, Step: 1e-8, InitialFromOP: true,
		Monitor: func(s *Solution) float64 { return s.Voltage(out) },
	})
	if err != nil {
		t.Fatal(err)
	}
	// Starting from the DC operating point the capacitor is already charged,
	// so the waveform is flat at 1 V from the start.
	for i, v := range res.MonitorValues {
		if math.Abs(v-1) > 1e-3 {
			t.Fatalf("point %d: %g, want 1", i, v)
		}
	}
}

func TestTransientRecordEvery(t *testing.T) {
	nl := circuit.NewNetlist()
	a := nl.AddNode("a")
	nl.Add(circuit.NewVoltageSource("V", a, circuit.Ground, circuit.DC{Value: 1}))
	nl.Add(circuit.NewResistor("R", a, circuit.Ground, 1e3))
	e, _ := NewEngine(nl, DefaultOptions())
	res, err := e.Transient(TransientSpec{Stop: 1e-6, Step: 1e-8, RecordEvery: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) > 15 {
		t.Errorf("decimation not applied: %d points", len(res.Points))
	}
	if res.Steps != 100 {
		t.Errorf("steps %d, want 100", res.Steps)
	}
}

// Memristor programming inside a transient: a voltage above the threshold
// switches the device from HRS to LRS, visibly changing the divider voltage.
func TestTransientMemristorProgramming(t *testing.T) {
	model := device.DefaultMemristor()
	dev := device.NewMemristor(model)
	nl := circuit.NewNetlist()
	drive := nl.AddNode("drive")
	mid := nl.AddNode("mid")
	nl.Add(circuit.NewVoltageSource("V", drive, circuit.Ground, circuit.DC{Value: 3}))
	nl.Add(circuit.NewMemristorElement("M", drive, mid, dev))
	nl.Add(circuit.NewResistor("R", mid, circuit.Ground, 10e3))
	e, _ := NewEngine(nl, DefaultOptions())
	res, err := e.Transient(TransientSpec{
		Stop: 20 * model.SwitchTime, Step: model.SwitchTime / 2,
		Monitor: func(s *Solution) float64 { return s.Voltage(mid) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if dev.State() != device.LRS {
		t.Fatalf("memristor did not program during transient")
	}
	first := res.MonitorValues[1]
	last := res.FinalMonitorValue
	// Before switching the divider sits near 3*10k/(1M+10k) ~ 0.03 V; after
	// switching it rises to 3*10k/20k = 1.5 V.
	if first > 0.1 {
		t.Errorf("pre-switch voltage %g, want ~0.03", first)
	}
	if !testutil.AlmostEqualAbs(last, 1.5, 0.05) {
		t.Errorf("post-switch voltage %g, want ~1.5", last)
	}
}

func TestConvergenceTimeHelper(t *testing.T) {
	times := []float64{0, 1, 2, 3, 4}
	values := []float64{0, 0.5, 0.995, 0.999, 1.0}
	ct := convergenceTime(times, values, 1e-2)
	if ct != 2 {
		t.Errorf("convergence time %g, want 2", ct)
	}
	// Series still moving at the end: no convergence.
	moving := []float64{0, 0.2, 0.4, 0.6, 1.0}
	if convergenceTime(times, moving, 1e-3) != -1 {
		t.Errorf("moving series should not converge")
	}
	// Flat series converges immediately.
	flat := []float64{1, 1, 1}
	if convergenceTime([]float64{0, 1, 2}, flat, 1e-3) != 0 {
		t.Errorf("flat series should converge at t=0")
	}
	if convergenceTime(nil, nil, 1e-3) != -1 {
		t.Errorf("empty series should return -1")
	}
}

// A pathological circuit (voltage source loop against a diode held in a
// contradictory region) should surface a no-convergence or singular error
// rather than silently returning garbage.
func TestSingularCircuitSurfacesError(t *testing.T) {
	nl := circuit.NewNetlist()
	a := nl.AddNode("a")
	// Two ideal voltage sources in parallel with different values: singular.
	nl.Add(circuit.NewVoltageSource("V1", a, circuit.Ground, circuit.DC{Value: 1}))
	nl.Add(circuit.NewVoltageSource("V2", a, circuit.Ground, circuit.DC{Value: 2}))
	e, err := NewEngine(nl, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.OperatingPoint(0); err == nil {
		t.Errorf("conflicting sources should fail")
	}
}
