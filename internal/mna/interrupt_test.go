package mna

import (
	"errors"
	"testing"

	"analogflow/internal/circuit"
	"analogflow/internal/device"
)

// interruptTestNetlist builds a small nonlinear circuit (diode clamp) so the
// Newton loop actually iterates.
func interruptTestNetlist() *circuit.Netlist {
	nl := circuit.NewNetlist()
	a := nl.AddNode("a")
	nl.Add(circuit.NewVoltageSource("V", a, circuit.Ground, circuit.DC{Value: 2}))
	b := nl.AddNode("b")
	nl.Add(circuit.NewResistor("R", a, b, 1e3))
	nl.Add(circuit.NewDiode("D", b, circuit.Ground, device.DefaultDiode()))
	return nl
}

// TestInterruptAbortsNewton pins the cancellation hook: a poll that reports
// an error must abort the solve with exactly that error, before the
// iteration budget is consumed.
func TestInterruptAbortsNewton(t *testing.T) {
	e, err := NewEngine(interruptTestNetlist(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	sentinel := errors.New("stop now")
	calls := 0
	e.SetInterrupt(func() error {
		calls++
		if calls >= 2 {
			return sentinel
		}
		return nil
	})
	if _, err := e.OperatingPoint(0); !errors.Is(err, sentinel) {
		t.Fatalf("want sentinel error, got %v", err)
	}

	// Clearing the hook restores normal solves on the same engine.
	e.SetInterrupt(nil)
	if _, err := e.OperatingPoint(0); err != nil {
		t.Fatalf("solve after clearing interrupt failed: %v", err)
	}
}

// TestInterruptNilByDefault pins that an engine without a hook solves as
// before.
func TestInterruptNilByDefault(t *testing.T) {
	e, err := NewEngine(interruptTestNetlist(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.OperatingPoint(0); err != nil {
		t.Fatal(err)
	}
}
