package mna

import (
	"errors"
	"fmt"
	"math"

	"analogflow/internal/circuit"
)

// TransientSpec configures a transient analysis.
type TransientSpec struct {
	// Stop is the final simulation time in seconds.
	Stop float64
	// Step is the fixed integration step in seconds (backward Euler).
	Step float64
	// RecordEvery controls output decimation: every n-th accepted point is
	// stored in the result (1 = store all).
	RecordEvery int
	// InitialFromOP seeds the initial condition from a DC operating point at
	// t=0; otherwise the simulation starts from all-zero state.
	InitialFromOP bool
	// Monitor, when non-nil, is evaluated at every accepted time point; the
	// convergence detector below watches this scalar.
	Monitor func(s *Solution) float64
	// ConvergenceTolerance is the relative band around the final value used
	// to report convergence time (the paper uses 0.1 %).  Zero disables the
	// detector.
	ConvergenceTolerance float64
}

// DefaultTransientSpec returns a specification covering dur seconds with
// 1000 steps.
func DefaultTransientSpec(dur float64) TransientSpec {
	return TransientSpec{
		Stop:                 dur,
		Step:                 dur / 1000,
		RecordEvery:          1,
		ConvergenceTolerance: 1e-3,
	}
}

// Validate checks the spec.
func (s TransientSpec) Validate() error {
	if s.Stop <= 0 {
		return fmt.Errorf("mna: transient stop time must be positive, got %g", s.Stop)
	}
	if s.Step <= 0 || s.Step > s.Stop {
		return fmt.Errorf("mna: invalid step %g for stop time %g", s.Step, s.Stop)
	}
	return nil
}

// TransientResult holds the recorded waveform of a transient analysis.
type TransientResult struct {
	// Times are the recorded time points.
	Times []float64
	// Points are the recorded solutions (same indexing as Times).
	Points []*Solution
	// MonitorValues are the monitored scalar at every recorded point (empty
	// when no monitor was supplied).
	MonitorValues []float64
	// ConvergenceTime is the first time at which the monitored value entered
	// and stayed within the tolerance band around its final value, or -1 if
	// no monitor/tolerance was configured.
	ConvergenceTime float64
	// FinalMonitorValue is the monitored value at the last time point.
	FinalMonitorValue float64
	// Steps is the number of accepted integration steps.
	Steps int
	// NewtonIterations is the total Newton iteration count over all steps.
	NewtonIterations int
}

// Final returns the last recorded solution.
func (r *TransientResult) Final() *Solution {
	if len(r.Points) == 0 {
		return nil
	}
	return r.Points[len(r.Points)-1]
}

// VoltageSeries extracts the waveform of one node across the recorded points.
func (r *TransientResult) VoltageSeries(n circuit.NodeID) []float64 {
	out := make([]float64, len(r.Points))
	for i, p := range r.Points {
		out[i] = p.Voltage(n)
	}
	return out
}

// Transient runs a fixed-step backward-Euler transient analysis.
//
// Every time point solves the same circuit topology (the backward-Euler
// companion models only change stamp values, not the sparsity pattern), so
// the whole transient shares the engine's persistent builder and cached
// symbolic LU: after the first Newton iteration of the first step, each
// subsequent iteration costs one incremental re-stamp and one numeric
// refactorization.  The one systematic pattern change is the DC-vs-transient
// switch (capacitor stamps only exist for dt > 0), which triggers exactly one
// extra symbolic factorization when InitialFromOP is set.
func (e *Engine) Transient(spec TransientSpec) (*TransientResult, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	recordEvery := spec.RecordEvery
	if recordEvery < 1 {
		recordEvery = 1
	}

	var xPrev []float64
	if spec.InitialFromOP {
		op, err := e.OperatingPoint(0)
		if err != nil {
			return nil, fmt.Errorf("mna: initial operating point: %w", err)
		}
		xPrev = op.X
	} else {
		xPrev = make([]float64, e.size)
	}

	res := &TransientResult{ConvergenceTime: -1}
	nSteps := int(math.Ceil(spec.Stop / spec.Step))
	record := func(sol *Solution) {
		res.Times = append(res.Times, sol.Time)
		res.Points = append(res.Points, sol)
		if spec.Monitor != nil {
			res.MonitorValues = append(res.MonitorValues, spec.Monitor(sol))
		}
	}
	// Record the initial state as a pseudo-solution at t=0.
	initial := &Solution{Time: 0, X: append([]float64(nil), xPrev...)}
	record(initial)

	stateful := statefulElements(e.netlist)

	for step := 1; step <= nSteps; step++ {
		t := float64(step) * spec.Step
		if t > spec.Stop {
			t = spec.Stop
		}
		sol, err := e.advanceStep(xPrev, t, spec.Step)
		if err != nil {
			return nil, fmt.Errorf("mna: transient step %d: %w", step, err)
		}
		res.Steps++
		res.NewtonIterations += sol.NewtonIterations
		// Advance stateful devices (memristors) with the accepted solution.
		for _, s := range stateful {
			s.PostStep(sol.VoltageFunc(), spec.Step)
		}
		if step%recordEvery == 0 || step == nSteps {
			record(sol)
		}
		xPrev = sol.X
	}

	if spec.Monitor != nil {
		res.FinalMonitorValue = res.MonitorValues[len(res.MonitorValues)-1]
		if spec.ConvergenceTolerance > 0 {
			res.ConvergenceTime = convergenceTime(res.Times, res.MonitorValues, spec.ConvergenceTolerance)
		}
	}
	return res, nil
}

// advanceStep integrates from the state xPrev up to time t with nominal step
// dt.  When the Newton solve of the full step fails (typically because a
// clamp diode switches region mid-step), the step is subdivided into
// progressively smaller sub-steps, up to 16 per nominal step, before giving
// up.  The returned solution carries the accumulated Newton iteration count.
// Sub-stepping changes only the companion-model values (dt enters the stamps
// as a coefficient), so even the subdivided solves reuse the cached
// factorization pattern.
func (e *Engine) advanceStep(xPrev []float64, t, dt float64) (*Solution, error) {
	if sol, err := e.solvePoint(xPrev, xPrev, t, dt); err == nil {
		return sol, nil
	}
	var lastErr error
	for _, pieces := range []int{4, 16} {
		sub := dt / float64(pieces)
		x := xPrev
		total := 0
		ok := true
		for k := 1; k <= pieces; k++ {
			tk := t - dt + float64(k)*sub
			sol, err := e.solvePoint(x, x, tk, sub)
			if err != nil {
				lastErr = err
				ok = false
				break
			}
			x = sol.X
			total += sol.NewtonIterations
		}
		if ok {
			return &Solution{Time: t, X: x, NewtonIterations: total}, nil
		}
	}
	return nil, lastErr
}

// statefulElements collects the elements that need per-step state updates.
func statefulElements(nl *circuit.Netlist) []circuit.Stateful {
	var out []circuit.Stateful
	for _, el := range nl.Elements() {
		if s, ok := el.(circuit.Stateful); ok {
			out = append(out, s)
		}
	}
	return out
}

// convergenceTime returns the earliest time after which the series stays
// within relTol of its final value, mirroring the paper's definition of
// convergence time ("within 0.1 % of the final value").  It returns -1 when
// the series never settles (e.g. the final value is still moving).
func convergenceTime(times, values []float64, relTol float64) float64 {
	if len(values) == 0 {
		return -1
	}
	final := values[len(values)-1]
	band := math.Abs(final) * relTol
	if band == 0 {
		band = relTol
	}
	// Walk backwards to find the last excursion outside the band.
	for i := len(values) - 1; i >= 0; i-- {
		if math.Abs(values[i]-final) > band {
			if i >= len(values)-2 {
				// Only the very last sample is inside the band: the series
				// is still moving, so it has not demonstrably settled.
				return -1
			}
			return times[i+1]
		}
	}
	return times[0]
}

// ErrNoMonitor is returned by ConvergenceTime helpers when the transient was
// run without a monitor.
var ErrNoMonitor = errors.New("mna: transient was run without a monitor")

// SettledWithin reports whether the monitored value converged before the
// given deadline.
func (r *TransientResult) SettledWithin(deadline float64) (bool, error) {
	if len(r.MonitorValues) == 0 {
		return false, ErrNoMonitor
	}
	return r.ConvergenceTime >= 0 && r.ConvergenceTime <= deadline, nil
}
