// Package mna is the analog simulation engine of the repository: it assembles
// and solves the modified-nodal-analysis (MNA) equations of a circuit.Netlist,
// replacing the SPICE simulator the paper used.  Two analyses are provided:
//
//   - Operating point (DC): Newton-Raphson on the nonlinear MNA system with
//     capacitors treated as open circuits.
//   - Transient: fixed-step backward-Euler integration with a full Newton
//     solve at every time point, per-step memristor state updates, and a
//     convergence detector that reports when the monitored quantity settles
//     within a tolerance band (the paper's "within 0.1 % of the final value"
//     definition of convergence time).
//
// The sparse path uses the Gilbert-Peierls LU from internal/numeric, so
// crossbar-scale systems (tens of thousands of unknowns) remain tractable.
// Because the netlist topology is fixed for the lifetime of an Engine, the
// engine assembles into one persistent pattern-frozen SparseBuilder and keeps
// one cached LU factorisation whose symbolic analysis (fill-in pattern, pivot
// order) is reused across Newton iterations, line-search probes, homotopy
// levels and transient time points; only the cheap numeric refactorization
// runs per iterate.  docs/solver.md describes the full pipeline.
//
// An Engine is not safe for concurrent use; parallel sweeps must build one
// engine per goroutine (which internal/experiments does).
package mna

import (
	"errors"
	"fmt"
	"math"

	"analogflow/internal/circuit"
	"analogflow/internal/numeric"
)

// Options configures the engine.
type Options struct {
	// MaxNewtonIterations bounds the Newton loop per solve point.
	MaxNewtonIterations int
	// AbsTol and RelTol define Newton convergence on the solution update:
	// |dx_i| <= AbsTol + RelTol*|x_i| for every unknown.
	AbsTol, RelTol float64
	// ResidualTol is an alternative convergence criterion on the nonlinear
	// KCL residual (in amperes): once the residual drops below it the point
	// is accepted even if high-gain internal nodes are still jittering at
	// the solver's accuracy floor.
	ResidualTol float64
	// Damping scales Newton updates (1 = full Newton).  Values below 1 help
	// circuits with many piecewise diodes converge.
	Damping float64
	// DisableReuse forces the reference from-scratch path: a fresh builder
	// and a full symbolic+numeric factorization on every Newton iteration.
	// It exists so tests can pin the incremental path against the reference
	// one; production callers should leave it false.
	DisableReuse bool
	// Trace, when non-nil, receives a line per Newton iteration describing
	// the step length and residual; useful when debugging convergence of
	// large substrate circuits.
	Trace func(format string, args ...any)
}

// DefaultOptions returns robust defaults for the substrate circuits.
func DefaultOptions() Options {
	return Options{
		MaxNewtonIterations: 200,
		AbsTol:              1e-9,
		RelTol:              1e-6,
		ResidualTol:         1e-9,
		Damping:             1.0,
	}
}

// Stats counts the linear-algebra work an engine has performed; the
// regression tests use it to pin that repeated solves run no symbolic
// factorization after the first one.
type Stats struct {
	// Assemblies is the number of full netlist stamp passes.
	Assemblies int
	// Factorizations counts full symbolic+numeric LU factorizations.
	Factorizations int
	// Refactorizations counts numeric-only refactorizations that reused the
	// cached symbolic analysis.
	Refactorizations int
}

// system is one assembled linearisation: the MNA matrix and right-hand side
// at a specific iterate.  The engine keeps two and ping-pongs between them so
// the line search can probe a candidate without destroying the system of the
// current iterate.
type system struct {
	a   numeric.CSC
	rhs []float64
}

// Engine solves a fixed netlist.  The unknown ordering is: node voltages
// (0..NumNodes-1) followed by element branch currents in element order.
type Engine struct {
	netlist   *circuit.Netlist
	opts      Options
	branchOf  []int // branchOf[i] = base branch index of element i
	numNodes  int
	size      int
	nonlinear bool

	// Incremental-solve state (see the package comment).
	builder   *numeric.SparseBuilder
	lu        *numeric.SparseLU
	luVersion int // builder pattern version the cached LU belongs to
	stats     Stats
	sys       [2]*system
	xFull     []float64 // Newton direction target (solution of the linear system)
	cand      []float64 // line-search candidate
	resid     []float64 // scratch for residual norms

	// interrupt, when non-nil, is polled at the top of every Newton
	// iteration; a non-nil return aborts the solve with that error.  It is
	// how context cancellation reaches the inner loops (SetInterrupt).
	interrupt func() error
}

// ErrNoConvergence is returned when Newton iteration fails to converge.
var ErrNoConvergence = errors.New("mna: Newton iteration did not converge")

// NewEngine prepares an engine for the netlist.
func NewEngine(nl *circuit.Netlist, opts Options) (*Engine, error) {
	if nl == nil {
		return nil, errors.New("mna: nil netlist")
	}
	if err := nl.CheckNodes(); err != nil {
		return nil, err
	}
	if opts.MaxNewtonIterations <= 0 {
		opts.MaxNewtonIterations = DefaultOptions().MaxNewtonIterations
	}
	if opts.AbsTol <= 0 {
		opts.AbsTol = DefaultOptions().AbsTol
	}
	if opts.RelTol <= 0 {
		opts.RelTol = DefaultOptions().RelTol
	}
	if opts.ResidualTol <= 0 {
		opts.ResidualTol = DefaultOptions().ResidualTol
	}
	if opts.Damping <= 0 || opts.Damping > 1 {
		opts.Damping = 1
	}
	e := &Engine{
		netlist:  nl,
		opts:     opts,
		numNodes: nl.NumNodes(),
	}
	base := nl.NumNodes()
	for _, el := range nl.Elements() {
		e.branchOf = append(e.branchOf, base)
		base += el.NumBranches()
		if !el.Linear() {
			e.nonlinear = true
		}
	}
	e.size = base
	if e.size == 0 {
		return nil, errors.New("mna: empty netlist")
	}
	e.builder = numeric.NewSparseBuilder(e.size)
	for i := range e.sys {
		e.sys[i] = &system{rhs: make([]float64, e.size)}
	}
	e.xFull = make([]float64, e.size)
	e.cand = make([]float64, e.size)
	e.resid = make([]float64, e.size)
	return e, nil
}

// Size returns the number of MNA unknowns.
func (e *Engine) Size() int { return e.size }

// NumNodes returns the number of node-voltage unknowns.
func (e *Engine) NumNodes() int { return e.numNodes }

// BranchBase returns the branch index base of the i-th element (in netlist
// order); used to read branch currents out of solutions.
func (e *Engine) BranchBase(i int) int { return e.branchOf[i] }

// Stats returns the cumulative linear-algebra work counters.
func (e *Engine) Stats() Stats { return e.stats }

// ReserveSlack grows the engine builder's slack-reservation budget by n
// positions (see numeric.SparseBuilder.ReserveSlack).  Updatable sessions use
// it before the first solve to pin the coordinates of parked-edge widgets into
// the first frozen pattern, so a later unpark — whose stamps are value changes
// at those coordinates — can never grow the pattern and invalidate the cached
// symbolic factorization.
func (e *Engine) ReserveSlack(n int) { e.builder.ReserveSlack(n) }

// ReserveSlackAt registers (r, c) as a reserved slack coordinate of the MNA
// matrix, drawing on the ReserveSlack budget; it reports whether the
// coordinate is covered (in-pattern coordinates are covered for free).
func (e *Engine) ReserveSlackAt(r, c int) bool { return e.builder.ReserveSlackAt(r, c) }

// SlackRemaining returns the engine builder's unconsumed slack budget.
func (e *Engine) SlackRemaining() int { return e.builder.SlackRemaining() }

// SetInterrupt installs (or clears, with nil) a cancellation poll that every
// Newton iteration checks before doing any work.  Callers that thread a
// context.Context through a solve install `ctx.Err` here; the engine returns
// the poll's error unwrapped so errors.Is(err, context.Canceled) works.
// SetInterrupt must not be called while a solve is in flight (an Engine is
// not safe for concurrent use anyway).
func (e *Engine) SetInterrupt(poll func() error) { e.interrupt = poll }

// checkInterrupt polls the installed cancellation hook.
func (e *Engine) checkInterrupt() error {
	if e.interrupt == nil {
		return nil
	}
	return e.interrupt()
}

// Solution is a solved operating point or time point.
type Solution struct {
	// Time is the simulation time of the solution (0 for DC).
	Time float64
	// X is the raw unknown vector: node voltages then branch currents.
	X []float64
	// NewtonIterations is how many Newton iterations the point needed.
	NewtonIterations int
}

// Voltage returns the node voltage of n (0 for ground).
func (s *Solution) Voltage(n circuit.NodeID) float64 {
	if n == circuit.Ground {
		return 0
	}
	return s.X[int(n)]
}

// VoltageFunc returns an accessor usable by circuit.Stateful elements.
func (s *Solution) VoltageFunc() func(circuit.NodeID) float64 {
	return func(n circuit.NodeID) float64 { return s.Voltage(n) }
}

// stamp runs one full netlist stamp pass into the given builder and rhs.
func (e *Engine) stamp(builder *numeric.SparseBuilder, rhs, x, xPrev []float64, t, dt, srcScale float64) {
	ctx := &circuit.StampContext{
		NumNodes:    e.numNodes,
		A:           builder,
		B:           rhs,
		X:           x,
		XPrev:       xPrev,
		Dt:          dt,
		Time:        t,
		SourceScale: srcScale,
	}
	for i, el := range e.netlist.Elements() {
		ctx.BranchBase = e.branchOf[i]
		el.Stamp(ctx)
	}
	// Tiny conductance from every node to ground keeps structurally floating
	// nodes (e.g. a capacity-source node whose clamp diode is deep in
	// cut-off) numerically well posed without influencing the solution.
	const gmin = 1e-12
	for n := 0; n < e.numNodes; n++ {
		builder.Add(n, n, gmin)
	}
	e.stats.Assemblies++
}

// assembleInto builds the linearised system for the given iterate into s,
// reusing the engine's persistent builder (and hence its frozen sparsity
// pattern) and s's own buffers.
func (e *Engine) assembleInto(s *system, x, xPrev []float64, t, dt, srcScale float64) {
	e.builder.Reset()
	for i := range s.rhs {
		s.rhs[i] = 0
	}
	e.stamp(e.builder, s.rhs, x, xPrev, t, dt, srcScale)
	e.builder.CompileInto(&s.a)
}

// factorize returns an LU factorisation of a, reusing the cached symbolic
// analysis (fill-in pattern and pivot order) whenever the builder's sparsity
// pattern has not changed since it was computed.  A numerically degraded
// pivot order falls back to a fresh full factorization transparently.
func (e *Engine) factorize(a *numeric.CSC) (*numeric.SparseLU, error) {
	if e.lu != nil && e.luVersion == e.builder.PatternVersion() {
		if err := e.lu.Refactor(a); err == nil {
			e.stats.Refactorizations++
			return e.lu, nil
		}
		// Pivot order no longer viable for these values: fall through and
		// redo the symbolic analysis from scratch.
	}
	lu, err := numeric.FactorizeSparse(a)
	if err != nil {
		return nil, err
	}
	e.stats.Factorizations++
	e.lu = lu
	e.luVersion = e.builder.PatternVersion()
	return lu, nil
}

// residualOf evaluates ||A x - b||_2 for an assembled system.  Because every
// nonlinear element is stamped as a companion model linearised exactly at x,
// this is the true residual of the nonlinear MNA equations at x when the
// system was assembled at x.  The Euclidean norm is used because the Newton
// direction is guaranteed to be a descent direction for it, which the
// backtracking line search relies on.
func (e *Engine) residualOf(s *system, x []float64) float64 {
	s.a.MulVecTo(e.resid, x)
	return numeric.Norm2Sub(e.resid, s.rhs)
}

// solvePoint runs Newton iteration for a single time point.  xGuess is the
// starting iterate (may be nil), xPrev the accepted solution of the previous
// time point (nil for DC).
func (e *Engine) solvePoint(xGuess, xPrev []float64, t, dt float64) (*Solution, error) {
	return e.solvePointScaled(xGuess, xPrev, t, dt, 1)
}

// solvePointScaled is solvePoint with an explicit independent-source scale,
// used by the homotopy solver.  The Newton iteration is globalised by a
// backtracking line search on the nonlinear residual norm, which keeps the
// many sharp clamp diodes of the substrate circuits from making the plain
// iteration oscillate between states.
//
// The system assembled for the accepted line-search candidate is reused as
// the linearisation of the next Newton iteration (the candidate *is* the next
// iterate), so each iteration re-stamps the netlist exactly once per probe
// and never re-evaluates an already-computed residual.
func (e *Engine) solvePointScaled(xGuess, xPrev []float64, t, dt, srcScale float64) (*Solution, error) {
	if e.opts.DisableReuse {
		return e.solvePointScaledNoReuse(xGuess, xPrev, t, dt, srcScale)
	}
	x := make([]float64, e.size)
	if xGuess != nil {
		copy(x, xGuess)
	}
	maxIter := e.opts.MaxNewtonIterations
	if !e.nonlinear {
		// A single linear solve suffices, but run two iterations so the
		// convergence check below still validates the result.
		maxIter = 2
	}
	cur, probe := e.sys[0], e.sys[1]
	haveSystem := false
	currentRes := math.Inf(1)
	if e.nonlinear {
		e.assembleInto(cur, x, xPrev, t, dt, srcScale)
		haveSystem = true
		currentRes = e.residualOf(cur, x)
	}
	for iter := 1; iter <= maxIter; iter++ {
		if err := e.checkInterrupt(); err != nil {
			return nil, err
		}
		if !haveSystem {
			e.assembleInto(cur, x, xPrev, t, dt, srcScale)
		}
		haveSystem = false
		lu, err := e.factorize(&cur.a)
		if err == nil {
			err = lu.SolveRefinedTo(e.xFull, &cur.a, cur.rhs, 2)
		}
		if err != nil {
			return nil, fmt.Errorf("mna: linear solve failed at t=%g iter=%d: %w", t, iter, err)
		}
		xFull := e.xFull
		for i := range xFull {
			if math.IsNaN(xFull[i]) || math.IsInf(xFull[i], 0) {
				return nil, fmt.Errorf("mna: solution diverged at t=%g iter=%d", t, iter)
			}
		}

		// Choose the step length.  Linear circuits always take the full
		// step; nonlinear ones backtrack until the residual improves.
		alpha := e.opts.Damping
		xNew := xFull
		if e.nonlinear {
			tryCandidate := func() float64 {
				for i := range e.cand {
					e.cand[i] = x[i] + alpha*(xFull[i]-x[i])
				}
				e.assembleInto(probe, e.cand, xPrev, t, dt, srcScale)
				return e.residualOf(probe, e.cand)
			}
			accepted := false
			for try := 0; try < 8; try++ {
				res := tryCandidate()
				if res <= currentRes*(1-1e-4) || res <= e.opts.AbsTol {
					currentRes = res
					accepted = true
					break
				}
				alpha /= 2
			}
			if !accepted {
				// No improving step exists along the Newton direction; take
				// the smallest trial step so the iteration can still change
				// the active clamp set, and re-linearise from there.
				currentRes = tryCandidate()
			}
			// The accepted candidate's system is the linearisation at the
			// next iterate: keep it for the next Newton iteration.
			xNew = e.cand
			cur, probe = probe, cur
			haveSystem = true
		}

		converged := true
		maxDx := 0.0
		for i := range xNew {
			if d := math.Abs(xNew[i] - x[i]); d > e.opts.AbsTol+e.opts.RelTol*math.Abs(xNew[i]) {
				converged = false
				if d > maxDx {
					maxDx = d
				}
			}
		}
		if e.opts.Trace != nil {
			e.opts.Trace("mna: t=%g iter=%d alpha=%.4g residual=%.4g maxDx=%.4g", t, iter, alpha, currentRes, maxDx)
		}
		copy(x, xNew)
		if e.nonlinear && iter > 1 && currentRes <= e.opts.ResidualTol {
			return &Solution{Time: t, X: x, NewtonIterations: iter}, nil
		}
		if converged && (iter > 1 || !e.nonlinear) {
			return &Solution{Time: t, X: x, NewtonIterations: iter}, nil
		}
	}
	return nil, fmt.Errorf("%w at t=%g after %d iterations", ErrNoConvergence, t, maxIter)
}

// assembleFresh is the reference assembly path: a new builder and freshly
// allocated system per call, exactly the sparsity pattern stamped at this
// iterate.
func (e *Engine) assembleFresh(x, xPrev []float64, t, dt, srcScale float64) (*numeric.CSC, []float64) {
	builder := numeric.NewSparseBuilder(e.size)
	rhs := make([]float64, e.size)
	e.stamp(builder, rhs, x, xPrev, t, dt, srcScale)
	return builder.Compile(), rhs
}

// solvePointScaledNoReuse is the reference Newton loop used when
// Options.DisableReuse is set: every assembly is from scratch and every
// factorization is a full symbolic+numeric one.
func (e *Engine) solvePointScaledNoReuse(xGuess, xPrev []float64, t, dt, srcScale float64) (*Solution, error) {
	x := make([]float64, e.size)
	if xGuess != nil {
		copy(x, xGuess)
	}
	maxIter := e.opts.MaxNewtonIterations
	if !e.nonlinear {
		maxIter = 2
	}
	residualAt := func(at []float64) float64 {
		a, b := e.assembleFresh(at, xPrev, t, dt, srcScale)
		ax := a.MulVec(at)
		return numeric.Norm2(numeric.Sub(ax, b))
	}
	currentRes := math.Inf(1)
	if e.nonlinear {
		currentRes = residualAt(x)
	}
	for iter := 1; iter <= maxIter; iter++ {
		if err := e.checkInterrupt(); err != nil {
			return nil, err
		}
		a, b := e.assembleFresh(x, xPrev, t, dt, srcScale)
		lu, err := numeric.FactorizeSparse(a)
		if err == nil {
			e.stats.Factorizations++
		}
		var xFull []float64
		if err == nil {
			xFull, err = lu.SolveRefined(a, b, 2)
		}
		if err != nil {
			return nil, fmt.Errorf("mna: linear solve failed at t=%g iter=%d: %w", t, iter, err)
		}
		for i := range xFull {
			if math.IsNaN(xFull[i]) || math.IsInf(xFull[i], 0) {
				return nil, fmt.Errorf("mna: solution diverged at t=%g iter=%d", t, iter)
			}
		}
		alpha := e.opts.Damping
		xNew := xFull
		if e.nonlinear {
			cand := make([]float64, e.size)
			tryCandidate := func() float64 {
				for i := range cand {
					cand[i] = x[i] + alpha*(xFull[i]-x[i])
				}
				return residualAt(cand)
			}
			accepted := false
			for try := 0; try < 8; try++ {
				res := tryCandidate()
				if res <= currentRes*(1-1e-4) || res <= e.opts.AbsTol {
					currentRes = res
					accepted = true
					break
				}
				alpha /= 2
			}
			if !accepted {
				currentRes = tryCandidate()
			}
			xNew = cand
		}
		converged := true
		for i := range xNew {
			if d := math.Abs(xNew[i] - x[i]); d > e.opts.AbsTol+e.opts.RelTol*math.Abs(xNew[i]) {
				converged = false
			}
		}
		x = xNew
		if e.nonlinear && iter > 1 && currentRes <= e.opts.ResidualTol {
			return &Solution{Time: t, X: x, NewtonIterations: iter}, nil
		}
		if converged && (iter > 1 || !e.nonlinear) {
			return &Solution{Time: t, X: x, NewtonIterations: iter}, nil
		}
	}
	return nil, fmt.Errorf("%w at t=%g after %d iterations", ErrNoConvergence, t, maxIter)
}

// OperatingPoint computes the DC solution at time t (sources evaluated at t,
// capacitors open).
func (e *Engine) OperatingPoint(t float64) (*Solution, error) {
	return e.solvePoint(nil, nil, t, 0)
}

// OperatingPointWithGuess computes the DC solution at time t starting Newton
// iteration from the supplied guess (typically a previously solved nearby
// operating point).
func (e *Engine) OperatingPointWithGuess(t float64, guess []float64) (*Solution, error) {
	return e.solvePoint(guess, nil, t, 0)
}

// HomotopyResult is the outcome of a source-stepping operating-point solve.
type HomotopyResult struct {
	// Solution is the operating point at full source strength.
	Solution *Solution
	// Steps is the number of source-stepping levels used.
	Steps int
	// TotalNewtonIterations sums the Newton iterations over all levels; the
	// convergence-time model of internal/core uses it as a proxy for the
	// number of constraint-activation waves the analog circuit works
	// through while settling.
	TotalNewtonIterations int
	// Intermediate holds the operating point at every source level
	// (including the final one); the quasi-static trajectory analysis of
	// Section 6.5 reads the per-level node voltages from here.
	Intermediate []*Solution
	// Scales are the source-scale values of the intermediate solutions.
	Scales []float64
}

// OperatingPointHomotopy computes the DC operating point by source stepping:
// all independent sources are ramped from (1/steps) of their value up to full
// strength, each level warm-started from the previous one.  This mirrors the
// physical compute phase of the substrate, where Vflow ramps up and the
// clamp diodes engage progressively, and it makes the Newton solve robust for
// circuits with hundreds of piecewise clamps.  Every level solves the same
// topology, so all of them share the engine's cached symbolic factorisation.
func (e *Engine) OperatingPointHomotopy(t float64, steps int) (*HomotopyResult, error) {
	if steps < 1 {
		steps = 1
	}
	res := &HomotopyResult{Steps: steps}
	var guess []float64
	var lastErr error
	for k := 1; k <= steps; k++ {
		scale := float64(k) / float64(steps)
		sol, err := e.solvePointScaled(guess, nil, t, 0, scale)
		if err != nil {
			// Retry the level once with heavier damping before giving up.
			saved := e.opts.Damping
			e.opts.Damping = saved * 0.5
			sol, err = e.solvePointScaled(guess, nil, t, 0, scale)
			e.opts.Damping = saved
			if err != nil {
				lastErr = err
				return nil, fmt.Errorf("mna: homotopy failed at scale %.3f: %w", scale, lastErr)
			}
		}
		guess = sol.X
		res.Solution = sol
		res.Intermediate = append(res.Intermediate, sol)
		res.Scales = append(res.Scales, scale)
		res.TotalNewtonIterations += sol.NewtonIterations
	}
	return res, nil
}
