package mna

import (
	"testing"

	"analogflow/internal/circuit"
	"analogflow/internal/device"
)

// The three reference circuits of the cached-pattern equivalence tests.

func dividerNetlist() *circuit.Netlist {
	nl := circuit.NewNetlist()
	top := nl.AddNode("top")
	mid := nl.AddNode("mid")
	nl.Add(circuit.NewVoltageSource("V", top, circuit.Ground, circuit.DC{Value: 1}))
	nl.Add(circuit.NewResistor("R1", top, mid, 10e3))
	nl.Add(circuit.NewResistor("R2", mid, circuit.Ground, 10e3))
	return nl
}

func diodeClampNetlist() *circuit.Netlist {
	nl := circuit.NewNetlist()
	in := nl.AddNode("in")
	x := nl.AddNode("x")
	ref := nl.AddNode("ref")
	nl.Add(circuit.NewVoltageSource("Vin", in, circuit.Ground, circuit.DC{Value: 5}))
	nl.Add(circuit.NewVoltageSource("Vref", ref, circuit.Ground, circuit.DC{Value: 2}))
	nl.Add(circuit.NewResistor("R", in, x, 10e3))
	nl.Add(circuit.NewDiode("D", x, ref, device.DefaultDiode()))
	return nl
}

func followerNetlist() *circuit.Netlist {
	nl := circuit.NewNetlist()
	in := nl.AddNode("in")
	out := nl.AddNode("out")
	nl.Add(circuit.NewVoltageSource("Vin", in, circuit.Ground, circuit.DC{Value: 2}))
	nl.Add(circuit.NewOpAmp(nl, "OA", in, out, out, device.DefaultOpAmp()))
	nl.Add(circuit.NewResistor("RL", out, circuit.Ground, 10e3))
	return nl
}

// TestCachedPatternMatchesFromScratch pins that the incremental path (frozen
// builder pattern + cached symbolic LU + line-search system reuse) computes
// bit-identical solutions to the reference from-scratch path on the MNA test
// circuits, including on repeated solves of the same engine.
func TestCachedPatternMatchesFromScratch(t *testing.T) {
	cases := []struct {
		name  string
		build func() *circuit.Netlist
	}{
		{"voltage-divider", dividerNetlist},
		{"diode-clamp", diodeClampNetlist},
		{"opamp-follower", followerNetlist},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			reuse, err := NewEngine(tc.build(), DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			refOpts := DefaultOptions()
			refOpts.DisableReuse = true
			scratch, err := NewEngine(tc.build(), refOpts)
			if err != nil {
				t.Fatal(err)
			}
			for call := 0; call < 3; call++ {
				a, err := reuse.OperatingPoint(0)
				if err != nil {
					t.Fatalf("call %d: cached path: %v", call, err)
				}
				b, err := scratch.OperatingPoint(0)
				if err != nil {
					t.Fatalf("call %d: from-scratch path: %v", call, err)
				}
				if a.NewtonIterations != b.NewtonIterations {
					t.Fatalf("call %d: iteration counts diverge: %d vs %d",
						call, a.NewtonIterations, b.NewtonIterations)
				}
				for i := range a.X {
					if a.X[i] != b.X[i] {
						t.Fatalf("call %d: X[%d] differs: %v vs %v (diff %g)",
							call, i, a.X[i], b.X[i], a.X[i]-b.X[i])
					}
				}
			}
		})
	}
}

// TestNoSymbolicRefactorizationOnRepeatedSolves pins the acceptance criterion
// that repeated OperatingPoint calls on one engine perform no symbolic
// factorization after the first solve.
func TestNoSymbolicRefactorizationOnRepeatedSolves(t *testing.T) {
	for _, tc := range []struct {
		name  string
		build func() *circuit.Netlist
	}{
		{"voltage-divider", dividerNetlist},
		{"diode-clamp", diodeClampNetlist},
		{"opamp-follower", followerNetlist},
	} {
		t.Run(tc.name, func(t *testing.T) {
			e, err := NewEngine(tc.build(), DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			if _, err := e.OperatingPoint(0); err != nil {
				t.Fatal(err)
			}
			after := e.Stats()
			for i := 0; i < 5; i++ {
				if _, err := e.OperatingPoint(0); err != nil {
					t.Fatal(err)
				}
			}
			final := e.Stats()
			if final.Factorizations != after.Factorizations {
				t.Errorf("repeated solves ran %d extra symbolic factorizations",
					final.Factorizations-after.Factorizations)
			}
			if final.Refactorizations <= after.Refactorizations {
				t.Errorf("repeated solves did not use the numeric refactorization path")
			}
		})
	}
}

// TestHomotopySharesFactorization checks that all homotopy levels reuse the
// symbolic analysis of the first one (the topology never changes).
func TestHomotopySharesFactorization(t *testing.T) {
	e, err := NewEngine(diodeClampNetlist(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.OperatingPointHomotopy(0, 6); err != nil {
		t.Fatal(err)
	}
	s := e.Stats()
	if s.Factorizations > 2 {
		t.Errorf("homotopy ran %d symbolic factorizations, want <= 2 (one per pattern)", s.Factorizations)
	}
	if s.Refactorizations == 0 {
		t.Errorf("homotopy never used the numeric refactorization path")
	}
}

// TestTransientReusesFactorization checks the transient loop: after the DC
// and transient patterns have each been analysed once, every further time
// point must run numeric-only refactorizations.
func TestTransientReusesFactorization(t *testing.T) {
	nl := circuit.NewNetlist()
	in := nl.AddNode("in")
	x := nl.AddNode("x")
	nl.Add(circuit.NewVoltageSource("V", in, circuit.Ground, circuit.Step{Final: 3, T0: 0}))
	nl.Add(circuit.NewResistor("R", in, x, 1e3))
	nl.Add(circuit.NewCapacitor("C", x, circuit.Ground, 1e-9))
	nl.Add(circuit.NewDiode("D", x, circuit.Ground, device.DefaultDiode()))
	e, err := NewEngine(nl, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Transient(TransientSpec{Stop: 1e-6, Step: 1e-8, InitialFromOP: true}); err != nil {
		t.Fatal(err)
	}
	s := e.Stats()
	// One pattern for DC (capacitor open) plus one for transient stamps.
	if s.Factorizations > 2 {
		t.Errorf("transient ran %d symbolic factorizations, want <= 2", s.Factorizations)
	}
	if s.Refactorizations < 50 {
		t.Errorf("transient refactorizations = %d, want one per Newton solve (>= 50)", s.Refactorizations)
	}
}

// BenchmarkNewtonSolveReuse measures repeated operating-point solves of one
// engine, the pattern the incremental assembly and symbolic-LU reuse
// accelerate (compare with BenchmarkNewtonSolveFromScratch).
func BenchmarkNewtonSolveReuse(b *testing.B) {
	e, err := NewEngine(followerNetlist(), DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := e.OperatingPoint(0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNewtonSolveFromScratch is the reference path for
// BenchmarkNewtonSolveReuse.
func BenchmarkNewtonSolveFromScratch(b *testing.B) {
	opts := DefaultOptions()
	opts.DisableReuse = true
	e, err := NewEngine(followerNetlist(), opts)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := e.OperatingPoint(0); err != nil {
			b.Fatal(err)
		}
	}
}
