// Package metrics is a small, stdlib-only instrumentation layer: counters,
// gauges, fixed-bucket histograms, and windowed estimators (EMA / SMA /
// rate meters), collected in a Registry that can render itself in the
// Prometheus text exposition format (version 0.0.4).
//
// The package exists so that the solve service, the admission controller,
// and the HTTP plane all read and publish the *same* signals: the admission
// estimate, the governor's saturation inputs, and the /v1/metrics scrape are
// different views of one set of instruments rather than three private
// copies.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Labels is an immutable-by-convention label set attached to one metric
// instance. Keys and values must satisfy the Prometheus charset rules
// (checked at registration).
type Labels map[string]string

// A Counter is a monotonically non-decreasing cumulative count.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds delta, which must be non-negative: counters only go up.
func (c *Counter) Add(delta int64) {
	if delta < 0 {
		panic("metrics: counter decrement")
	}
	c.v.Add(delta)
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// A Gauge is a value that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta (CAS loop; safe under concurrency).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// A Histogram counts observations into fixed, cumulative-on-render buckets.
// Bounds are the inclusive upper edges of the finite buckets; an implicit
// +Inf bucket catches the rest. Observe is lock-free.
type Histogram struct {
	bounds []float64      // ascending, finite
	counts []atomic.Int64 // len(bounds)+1; last is +Inf
	sum    atomic.Uint64  // float bits, CAS-accumulated
	count  atomic.Int64
}

func newHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("metrics: histogram bounds must be strictly ascending")
		}
	}
	h := &Histogram{bounds: append([]float64(nil), bounds...)}
	h.counts = make([]atomic.Int64, len(bounds)+1)
	return h
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	idx := sort.SearchFloat64s(h.bounds, v)
	h.counts[idx].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Quantile estimates the q-quantile (0 <= q <= 1) by linear interpolation
// within the owning bucket, the same estimate Prometheus' histogram_quantile
// computes server-side. Samples in the +Inf bucket clamp to the largest
// finite bound. Returns 0 when empty.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum int64
	for i := range h.counts {
		n := h.counts[i].Load()
		if n == 0 {
			continue
		}
		if float64(cum+n) >= rank {
			if i >= len(h.bounds) { // +Inf bucket
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			frac := (rank - float64(cum)) / float64(n)
			if frac < 0 {
				frac = 0
			} else if frac > 1 {
				frac = 1
			}
			return lo + (hi-lo)*frac
		}
		cum += n
	}
	return h.bounds[len(h.bounds)-1]
}

// ExponentialBuckets returns n bucket bounds starting at start and growing
// by factor, for Histogram construction.
func ExponentialBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("metrics: ExponentialBuckets needs start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}

// kind discriminates what a family holds for TYPE lines and mismatch checks.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindHistogram:
		return "histogram"
	default:
		return "gauge"
	}
}

// series is one labeled instance inside a family.
type series struct {
	labels Labels
	key    string // canonical render of labels, for dedup and stable ordering
	c      *Counter
	g      *Gauge
	gf     func() float64
	h      *Histogram
}

// family is all series sharing one metric name.
type family struct {
	name   string
	help   string
	kind   kind
	order  int
	series []*series
}

// Registry holds metric families and renders them as Prometheus text.
// Registration is idempotent: asking for the same name+labels again returns
// the existing instrument, so packages can Describe their metrics at use
// sites without coordinating initialization order.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	n        int
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

func (r *Registry) family(name, help string, k kind) *family {
	if !validMetricName(name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", name))
	}
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: k, order: r.n}
		r.n++
		r.families[name] = f
		return f
	}
	if f.kind != k {
		panic(fmt.Sprintf("metrics: %s registered as %s, requested as %s", name, f.kind, k))
	}
	return f
}

func (f *family) find(key string) *series {
	for _, s := range f.series {
		if s.key == key {
			return s
		}
	}
	return nil
}

func (f *family) add(labels Labels, key string) *series {
	s := &series{labels: labels, key: key}
	f.series = append(f.series, s)
	sort.Slice(f.series, func(i, j int) bool { return f.series[i].key < f.series[j].key })
	return s
}

// Counter registers (or retrieves) a counter series.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, kindCounter)
	key := labelKey(labels)
	if s := f.find(key); s != nil {
		return s.c
	}
	s := f.add(copyLabels(labels), key)
	s.c = &Counter{}
	return s.c
}

// Gauge registers (or retrieves) a gauge series.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, kindGauge)
	key := labelKey(labels)
	if s := f.find(key); s != nil {
		return s.g
	}
	s := f.add(copyLabels(labels), key)
	s.g = &Gauge{}
	return s.g
}

// GaugeFunc registers a gauge whose value is sampled from fn at render
// time — for values that already live elsewhere (an atomic in-flight count,
// a queue length under a lock). Re-registering replaces the function.
func (r *Registry) GaugeFunc(name, help string, labels Labels, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, kindGaugeFunc)
	key := labelKey(labels)
	s := f.find(key)
	if s == nil {
		s = f.add(copyLabels(labels), key)
	}
	s.gf = fn
}

// Histogram registers (or retrieves) a histogram series with the given
// finite bucket bounds.
func (r *Registry) Histogram(name, help string, labels Labels, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, kindHistogram)
	key := labelKey(labels)
	if s := f.find(key); s != nil {
		return s.h
	}
	s := f.add(copyLabels(labels), key)
	s.h = newHistogram(bounds)
	return s.h
}

// TextContentType is the Content-Type for WriteText output.
const TextContentType = "text/plain; version=0.0.4; charset=utf-8"

// WriteText renders every family in registration order in the Prometheus
// text exposition format (version 0.0.4) and returns the rendered bytes.
func (r *Registry) WriteText(sb *strings.Builder) {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].order < fams[j].order })

	for _, f := range fams {
		if f.help != "" {
			fmt.Fprintf(sb, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(sb, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range f.series {
			switch f.kind {
			case kindCounter:
				fmt.Fprintf(sb, "%s%s %d\n", f.name, s.key, s.c.Value())
			case kindGauge:
				fmt.Fprintf(sb, "%s%s %s\n", f.name, s.key, formatFloat(s.g.Value()))
			case kindGaugeFunc:
				fmt.Fprintf(sb, "%s%s %s\n", f.name, s.key, formatFloat(s.gf()))
			case kindHistogram:
				writeHistogram(sb, f.name, s)
			}
		}
	}
}

// Render returns the full exposition as a string.
func (r *Registry) Render() string {
	var sb strings.Builder
	r.WriteText(&sb)
	return sb.String()
}

func writeHistogram(sb *strings.Builder, name string, s *series) {
	var cum int64
	for i, b := range s.h.bounds {
		cum += s.h.counts[i].Load()
		fmt.Fprintf(sb, "%s_bucket%s %d\n", name, bucketKey(s.labels, formatFloat(b)), cum)
	}
	cum += s.h.counts[len(s.h.bounds)].Load()
	fmt.Fprintf(sb, "%s_bucket%s %d\n", name, bucketKey(s.labels, "+Inf"), cum)
	fmt.Fprintf(sb, "%s_sum%s %s\n", name, s.key, formatFloat(s.h.Sum()))
	fmt.Fprintf(sb, "%s_count%s %d\n", name, s.key, s.h.Count())
}

// labelKey renders labels as a canonical `{k="v",...}` fragment (sorted by
// key), or "" for the empty set. Validates names and escapes values.
func labelKey(labels Labels) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if !validLabelName(k) {
			panic(fmt.Sprintf("metrics: invalid label name %q", k))
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	sb.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%s=%q", k, escapeLabelValue(labels[k]))
	}
	sb.WriteByte('}')
	return sb.String()
}

// bucketKey is labelKey plus the le label histograms need.
func bucketKey(labels Labels, le string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	sb.WriteByte('{')
	for _, k := range keys {
		fmt.Fprintf(&sb, "%s=%q,", k, escapeLabelValue(labels[k]))
	}
	fmt.Fprintf(&sb, "le=%q}", le)
	return sb.String()
}

func copyLabels(labels Labels) Labels {
	if len(labels) == 0 {
		return nil
	}
	out := make(Labels, len(labels))
	for k, v := range labels {
		out[k] = v
	}
	return out
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" || strings.HasPrefix(s, "__") {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// escapeLabelValue handles the text-format escapes (the %q in labelKey adds
// quote and backslash escaping compatible with the exposition format, so
// only raw newlines need pre-normalization; %q renders them as \n already).
// Kept as an explicit hook for clarity at call sites.
func escapeLabelValue(s string) string { return s }

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// formatFloat renders a float the way Prometheus expects: shortest
// round-trippable decimal, with +Inf/-Inf/NaN spelled out.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strings.TrimSuffix(fmt.Sprintf("%g", v), ".0")
}
